package bootes

import (
	"bytes"
	"strings"
	"testing"

	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

func demoMatrix(t *testing.T) *Matrix {
	t.Helper()
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 1024, Cols: 1024, Density: 0.01, Seed: 11, Groups: 8,
	})
}

func TestFromCOOAndNewMatrix(t *testing.T) {
	m, err := FromCOO(2, 3, []int32{0, 1, 0}, []int32{2, 0, 2}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 4 { // duplicates summed
		t.Errorf("At(0,2) = %v, want 4", m.At(0, 2))
	}
	if _, err := FromCOO(2, 2, []int32{0}, []int32{0, 1}, nil); err == nil {
		t.Error("mismatched COO lengths accepted")
	}
	if _, err := NewMatrix(1, 1, []int64{0, 1}, []int32{0}, nil); err != nil {
		t.Errorf("NewMatrix: %v", err)
	}
}

func TestPlanReordersStructuredMatrix(t *testing.T) {
	m := demoMatrix(t)
	plan, err := Plan(m, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Reordered {
		t.Fatal("plan did not reorder a scrambled block matrix")
	}
	if plan.K == 0 {
		t.Error("no k recorded")
	}
	if err := plan.Perm.Validate(m.Rows); err != nil {
		t.Error(err)
	}
	// The exact k is legitimately seed-dependent — the sweep ranks candidates
	// by modeled traffic, and ladder changes (e.g. the auto-k rung) may shift
	// the winner between equally good candidates. Tier-1 pins the traffic
	// contract instead of the chosen k: the plan must strictly beat the
	// unordered baseline on the model it was selected by.
	base, err := trafficmodel.EstimateB(m, m, 64<<10, 12)
	if err != nil {
		t.Fatal(err)
	}
	est, err := trafficmodel.EstimateBWithPerm(m, m, plan.Perm, 64<<10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if est.BTraffic >= base.BTraffic {
		t.Errorf("reordered plan predicts %d bytes, baseline %d — no improvement",
			est.BTraffic, base.BTraffic)
	}
	pm, err := plan.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := plan.Restore(pm)
	if err != nil {
		t.Fatal(err)
	}
	if !patternEq(m, back) {
		t.Error("Apply+Restore did not round-trip")
	}
}

func patternEq(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		if len(ra) != len(rb) {
			return false
		}
		for p := range ra {
			if ra[p] != rb[p] {
				return false
			}
		}
	}
	return true
}

func TestPlanGateSkipsBanded(t *testing.T) {
	m := workloads.Banded(workloads.Params{Rows: 2048, Cols: 2048, Density: 0.003, Seed: 5})
	plan, err := Plan(m, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reordered {
		t.Error("gate should skip a banded matrix")
	}
	// ForceReorder overrides the gate.
	plan, err = Plan(m, &Options{Seed: 1, ForceReorder: true, ForceK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Reordered || plan.K != 4 {
		t.Errorf("ForceReorder/ForceK ignored: %+v", plan)
	}
}

func TestBaselines(t *testing.T) {
	m := demoMatrix(t)
	for _, b := range []Baseline{BaselineOriginal, BaselineGamma, BaselineGraph, BaselineHier} {
		plan, err := ReorderBaseline(m, b, 1)
		if err != nil {
			t.Fatalf("baseline %d: %v", b, err)
		}
		if err := plan.Perm.Validate(m.Rows); err != nil {
			t.Errorf("baseline %d: %v", b, err)
		}
	}
	if _, err := ReorderBaseline(m, Baseline(99), 1); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestSimulateAndReorderingReducesTraffic(t *testing.T) {
	m := demoMatrix(t)
	base, err := Simulate(Flexagon, m, m)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalBytes() < base.CompulsoryBytes {
		t.Error("traffic below compulsory")
	}
	if base.Flops <= 0 || base.OutputNNZ <= 0 || base.Seconds <= 0 {
		t.Error("missing simulation counters")
	}
	if _, err := Simulate(Accelerator(9), m, m); err == nil {
		t.Error("unknown accelerator accepted")
	}
	if Flexagon.String() != "Flexagon" || GAMMA.String() != "GAMMA" || Trapezoid.String() != "Trapezoid" {
		t.Error("accelerator names wrong")
	}
}

func TestSpGEMMPublic(t *testing.T) {
	a, err := FromCOO(2, 2, []int32{0, 1}, []int32{0, 1}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := SpGEMM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 4 || c.At(1, 1) != 9 {
		t.Errorf("SpGEMM wrong: %v", c.Dense())
	}
}

func TestMatrixMarketPublicRoundTrip(t *testing.T) {
	m := demoMatrix(t)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !patternEq(m, got) {
		t.Error("round trip mismatch")
	}
	if _, err := ReadMatrixMarket(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestModelEncodeLoad(t *testing.T) {
	// A tiny training run exercises the full public training path.
	model, stats, err := TrainModel(0.02, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CorpusSize == 0 || stats.ModelBytes == 0 {
		t.Errorf("stats incomplete: %+v", stats)
	}
	data, err := model.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SizeBytes() == 0 {
		t.Error("loaded model empty")
	}
	// A loaded model is usable in Plan.
	m := demoMatrix(t)
	if _, err := Plan(m, &Options{Model: back, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel([]byte("{")); err == nil {
		t.Error("bad model accepted")
	}
}

func TestCandidateKsCopy(t *testing.T) {
	ks := CandidateKs()
	if len(ks) != 5 || ks[0] != 2 || ks[4] != 32 {
		t.Errorf("CandidateKs = %v", ks)
	}
	ks[0] = 99
	if CandidateKs()[0] != 2 {
		t.Error("CandidateKs exposes internal state")
	}
}

func TestApplySymmetricAndBinaryIO(t *testing.T) {
	m := demoMatrix(t)
	plan, err := Plan(m, &Options{Seed: 4, ForceReorder: true, ForceK: 8})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := plan.ApplySymmetric(m)
	if err != nil {
		t.Fatal(err)
	}
	// (PAPᵀ)[i][j] = A[perm[i]][perm[j]] spot check.
	perm := plan.Perm
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if sym.Has(i, j) != m.Has(int(perm[i]), int(perm[j])) {
				t.Fatalf("symmetric permute mismatch at (%d,%d)", i, j)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !patternEq(m, got) {
		t.Error("binary round trip mismatch")
	}
}
