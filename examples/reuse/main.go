// Reuse: the paper's §5.3 amortization argument, made concrete. Reordering
// preprocessing can cost as much as ~1000 multiplications, so it pays off
// only when the same sparsity pattern is multiplied many times (multi-hop
// graph queries, iterative algebra, repeated inference batches). This
// example runs R simulated multiplications with each preprocessing strategy
// and prints the cumulative-time crossover.
//
//	go run ./examples/reuse
package main

import (
	"fmt"
	"log"

	"bootes"
	"bootes/internal/workloads"
)

func main() {
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 8192, Cols: 8192, Density: 0.003, Seed: 77, Groups: 32,
	})
	fmt.Printf("workload: %v, accelerator: %s\n\n", a, bootes.Flexagon)

	type strategy struct {
		name    string
		preproc float64
		perMul  float64
	}
	var strategies []strategy

	// No preprocessing.
	base, err := bootes.Simulate(bootes.Flexagon, a, a)
	if err != nil {
		log.Fatal(err)
	}
	strategies = append(strategies, strategy{"none", 0, base.Seconds})

	// Each reordering method: one-time cost + per-multiplication time.
	run := func(name string, plan *bootes.ReorderPlan, err error) {
		if err != nil {
			log.Fatal(err)
		}
		am := a
		if plan.Reordered {
			am, err = plan.Apply(a)
			if err != nil {
				log.Fatal(err)
			}
		}
		sim, err := bootes.Simulate(bootes.Flexagon, am, a)
		if err != nil {
			log.Fatal(err)
		}
		strategies = append(strategies, strategy{name, plan.PreprocessSeconds, sim.Seconds})
	}
	p, err := bootes.Plan(a, &bootes.Options{Seed: 1})
	run("Bootes", p, err)
	p, err = bootes.ReorderBaseline(a, bootes.BaselineGamma, 1)
	run("Gamma", p, err)
	p, err = bootes.ReorderBaseline(a, bootes.BaselineGraph, 1)
	run("Graph", p, err)
	p, err = bootes.ReorderBaseline(a, bootes.BaselineHier, 1)
	run("Hier", p, err)

	fmt.Printf("%-8s %14s %16s %14s\n", "method", "preproc (s)", "per-multiply (s)", "break-even R")
	baseline := strategies[0].perMul
	for _, s := range strategies {
		be := "-"
		if s.perMul < baseline && s.preproc > 0 {
			be = fmt.Sprintf("%.0f", s.preproc/(baseline-s.perMul))
		} else if s.perMul >= baseline && s.name != "none" {
			be = "never"
		}
		fmt.Printf("%-8s %14.3f %16.6f %14s\n", s.name, s.preproc, s.perMul, be)
	}

	fmt.Println("\ncumulative time after R multiplications (best strategy per R):")
	for _, r := range []float64{1, 10, 100, 1_000, 10_000, 100_000} {
		best, bestT := "", 0.0
		for _, s := range strategies {
			total := s.preproc + r*s.perMul
			if best == "" || total < bestT {
				best, bestT = s.name, total
			}
		}
		fmt.Printf("  R = %7.0f → %-8s (%.3fs total)\n", r, best, bestT)
	}
	fmt.Println("\n(the paper's point: a faster preprocessor — Bootes — moves the")
	fmt.Println(" crossover from 'thousands of reuses' down to workaday reuse counts)")
}
