// Quickstart: reorder a sparse matrix with Bootes and measure the off-chip
// traffic it saves on a simulated row-wise-product accelerator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bootes"
	"bootes/internal/workloads"
)

func main() {
	// A 16384×16384 matrix whose rows fall into 32 hidden groups with
	// similar column supports, shuffled so the structure is invisible to the
	// row order — the pattern the paper's Figure 1 points out in
	// invextr1_new. Its B working set (~6.5 MB) exceeds Flexagon's 1 MB
	// cache, while one group's rows (~200 KB) fit comfortably.
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 16384, Cols: 16384, Density: 0.002, Seed: 42, Groups: 32,
	})
	fmt.Printf("input: %v\n", a)

	// Step 1: plan. Bootes extracts structural features, decides whether
	// reordering will pay off, picks the cluster count k, and runs spectral
	// clustering.
	plan, err := bootes.Plan(a, &bootes.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !plan.Reordered {
		log.Fatal("the gate declined — unexpected for this matrix")
	}
	fmt.Printf("plan: reorder with k=%d (%.3fs preprocessing)\n", plan.K, plan.PreprocessSeconds)

	// Step 2: apply the permutation to A (B stays as-is, per the usual
	// accelerator setup where B is streamed by row index).
	reordered, err := plan.Apply(a)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: run C = A·B on the simulated accelerator, before and after.
	before, err := bootes.Simulate(bootes.Flexagon, a, a)
	if err != nil {
		log.Fatal(err)
	}
	after, err := bootes.Simulate(bootes.Flexagon, reordered, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("off-chip B traffic: %d -> %d bytes (%.2fx less)\n",
		before.BBytes, after.BBytes, float64(before.BBytes)/float64(after.BBytes))
	fmt.Printf("total traffic:      %d -> %d bytes (%.2fx less)\n",
		before.TotalBytes(), after.TotalBytes(),
		float64(before.TotalBytes())/float64(after.TotalBytes()))

	// Step 4: compute on the host and restore the original row order (the
	// paper's post-processing step) — the result matches the unordered run.
	c, err := bootes.SpGEMM(reordered, a)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := plan.Restore(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %v (row order restored)\n", restored)
}
