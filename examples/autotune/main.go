// Autotune: train the decision-tree gate on the synthetic corpus, persist
// it, and watch it route a zoo of matrices — reorder-friendly and
// reorder-hostile — to the right action with the right cluster count,
// reproducing the paper's §3.2 workflow end to end.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bootes"
	"bootes/internal/workloads"
)

func main() {
	// Train a small gate (scale 0.08 keeps this example under ~3 minutes;
	// cmd/trainer trains the full-size one).
	fmt.Println("training the decision-tree gate on the synthetic corpus...")
	model, stats, err := bootes.TrainModel(0.08, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  corpus %d matrices — test accuracy %.0f%%, gate %.0f%%, tolerant %.0f%%, model %d bytes\n\n",
		stats.CorpusSize, 100*stats.TestAccuracy, 100*stats.GateAccuracy,
		100*stats.TolerantAccuracy, stats.ModelBytes)

	// Persist and reload — the model is a few KB of JSON, cheap enough to
	// ship with a deployment (the paper highlights its 11 KB footprint).
	path := filepath.Join(os.TempDir(), "bootes-model.json")
	data, err := model.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	loaded, err := bootes.LoadModel(mustRead(path))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model round-tripped through %s (%d bytes)\n\n", path, len(data))

	// A zoo of unseen matrices. The gate should reorder the hidden-block
	// ones and skip the structure-free and already-ordered ones.
	type entry struct {
		name       string
		arch       workloads.Archetype
		groups     int
		wantAction string
	}
	entries := []entry{
		{"scrambled-block/16", workloads.ArchScrambledBlock, 16, "reorder"},
		{"scrambled-block/4", workloads.ArchScrambledBlock, 4, "reorder"},
		{"banded", workloads.ArchBanded, 0, "skip"},
		{"uniform-random", workloads.ArchRandom, 0, "skip"},
		{"fem-mesh", workloads.ArchFEM, 0, "skip"},
		{"power-law graph", workloads.ArchPowerLaw, 0, "skip"},
	}
	fmt.Printf("%-20s %10s %8s %12s\n", "matrix", "decision", "k", "expected")
	for i, e := range entries {
		m := workloads.Generate(e.arch, workloads.Params{
			Rows: 2048, Cols: 2048, Density: 0.008, Seed: 100 + int64(i), Groups: e.groups,
		})
		plan, err := bootes.Plan(m, &bootes.Options{Model: loaded, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		decision := "skip"
		kStr := "-"
		if plan.Reordered {
			decision = "reorder"
			kStr = fmt.Sprintf("k=%d", plan.K)
		}
		marker := ""
		if decision != e.wantAction {
			marker = "  (differs from rule of thumb — the model judged the realized gain)"
		}
		fmt.Printf("%-20s %10s %8s %12s%s\n", e.name, decision, kStr, e.wantAction, marker)
	}
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return data
}
