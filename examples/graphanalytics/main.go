// Graph analytics: squaring a power-law graph's adjacency matrix (the core
// of common-neighbor counting, triangle enumeration, and 2-hop reachability)
// is a classic SpGEMM workload — and a cautionary one. Power-law graphs owe
// their access pattern to a few hub vertices, which no row ordering can fix,
// so every reordering method burns preprocessing time for nothing. This is
// the case the paper's decision tree exists for: Bootes detects the pattern
// from structural features and declines in milliseconds, while the
// baselines — which have no such gate — spend the better part of a minute
// on Gamma's and Graph's quadratic hub expansions.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"bootes"
	"bootes/internal/workloads"
)

func main() {
	// A preferential-attachment graph like cit-HepPh: a few hub columns,
	// skewed degrees. Hub columns are exactly what Bootes' similarity
	// construction excludes to stay sparse.
	g := workloads.PowerLaw(workloads.Params{
		Rows: 16384, Cols: 16384, Density: 0.0015, Seed: 9,
	})
	fmt.Printf("citation-graph analog: %v\n\n", g)

	methods := []struct {
		name string
		plan func() (*bootes.ReorderPlan, error)
	}{
		{"none", func() (*bootes.ReorderPlan, error) { return bootes.ReorderBaseline(g, bootes.BaselineOriginal, 1) }},
		{"Gamma", func() (*bootes.ReorderPlan, error) { return bootes.ReorderBaseline(g, bootes.BaselineGamma, 1) }},
		{"Graph", func() (*bootes.ReorderPlan, error) { return bootes.ReorderBaseline(g, bootes.BaselineGraph, 1) }},
		{"Hier", func() (*bootes.ReorderPlan, error) { return bootes.ReorderBaseline(g, bootes.BaselineHier, 1) }},
		{"Bootes", func() (*bootes.ReorderPlan, error) { return bootes.Plan(g, &bootes.Options{Seed: 1}) }},
	}
	accels := []bootes.Accelerator{bootes.Flexagon, bootes.GAMMA, bootes.Trapezoid}

	base := map[bootes.Accelerator]int64{}
	fmt.Printf("%-8s %10s", "method", "preproc")
	for _, acc := range accels {
		fmt.Printf(" %22s", acc)
	}
	fmt.Println()
	for _, m := range methods {
		plan, err := m.plan()
		if err != nil {
			log.Fatal(err)
		}
		ga := g
		if plan.Reordered {
			ga, err = plan.Apply(g)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-8s %9.2fs", m.name, plan.PreprocessSeconds)
		for _, acc := range accels {
			rep, err := bootes.Simulate(acc, ga, g)
			if err != nil {
				log.Fatal(err)
			}
			total := rep.TotalBytes()
			if m.name == "none" {
				base[acc] = total
			}
			fmt.Printf(" %13d (%.2fx)", total, float64(base[acc])/float64(total))
		}
		fmt.Println()
	}
	fmt.Println("\nTakeaway: none of the orderings help a hub-dominated graph — but only")
	fmt.Println("Bootes knew that in advance. Its cost-benefit gate declined in ~10ms,")
	fmt.Println("while the gate-less baselines spent seconds to minutes to gain nothing")
	fmt.Println("(the paper's challenge (3): detect when reordering cannot pay off).")
}
