// FEM assembly pipeline: sparse matrix products over assembled finite-
// element operators. A freshly meshed (well-numbered) operator needs no
// reordering — its natural order already groups similar rows — but after
// adaptive refinement or domain decomposition the row numbering is
// effectively scrambled while the underlying block structure survives.
// This example runs both variants through the Bootes pipeline and shows
// (a) the gate skipping the well-ordered operator and (b) the scrambled
// operator recovering its locality, measured on all three accelerators.
//
//	go run ./examples/femsolver
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bootes"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func main() {
	// A well-numbered 2-D mesh stencil: adjacent rows already share columns.
	mesh := workloads.FEMMesh(workloads.Params{
		Rows: 16384, Cols: 16384, Density: 0.0008, Seed: 5, ScramblePct: -1,
	})
	// The same operator after a pathological renumbering (e.g. partition
	// interleaving): identical sparsity structure, scrambled row order.
	scrambled := shuffleSymmetric(mesh, 99)

	for _, tc := range []struct {
		name string
		m    *sparse.CSR
	}{
		{"well-numbered mesh", mesh},
		{"scrambled mesh", scrambled},
	} {
		fmt.Printf("%s: %v\n", tc.name, tc.m)
		plan, err := bootes.Plan(tc.m, &bootes.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if !plan.Reordered {
			fmt.Printf("  gate: skip reordering (nothing to gain) — %.0f ms spent deciding\n\n",
				plan.PreprocessSeconds*1000)
			continue
		}
		fmt.Printf("  gate: reorder with k=%d (%.2fs)\n", plan.K, plan.PreprocessSeconds)
		rm, err := plan.Apply(tc.m)
		if err != nil {
			log.Fatal(err)
		}
		for _, acc := range []bootes.Accelerator{bootes.Flexagon, bootes.GAMMA, bootes.Trapezoid} {
			before, err := bootes.Simulate(acc, tc.m, tc.m)
			if err != nil {
				log.Fatal(err)
			}
			after, err := bootes.Simulate(acc, rm, tc.m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s B traffic %9d -> %9d bytes (%.2fx)\n",
				acc, before.BBytes, after.BBytes,
				float64(before.BBytes)/float64(after.BBytes))
		}
		fmt.Println()
	}
}

// shuffleSymmetric applies the same random permutation to rows and columns,
// preserving the operator's structure while destroying its numbering.
func shuffleSymmetric(m *sparse.CSR, seed int64) *sparse.CSR {
	perm := sparse.IdentityPerm(m.Rows)
	rng := newRand(seed)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	pm, err := sparse.PermuteRows(m, perm)
	if err != nil {
		log.Fatal(err)
	}
	// Relabel columns with the inverse permutation so the pattern stays
	// symmetric-equivalent.
	inv := perm.Inverse()
	coo := sparse.NewCOO(pm.Rows, pm.Cols, true)
	for i := 0; i < pm.Rows; i++ {
		for _, c := range pm.Row(i) {
			coo.AddPattern(i, int(inv[c]))
		}
	}
	out, err := coo.ToCSR()
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
