package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"bootes/internal/faultinject"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// smallMatrix is cheap enough to plan hundreds of times in the concurrent
// cancellation stress test.
func smallMatrix(seed int64) *sparse.CSR {
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 256, Cols: 256, Density: 0.02, Seed: seed, Groups: 4,
	})
}

func TestPipelineReorderContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Pipeline{ForceReorder: true, ForceK: 8, Spectral: SpectralOptions{Seed: 1}}
	start := time.Now()
	res, err := p.ReorderContext(ctx, blockMatrix(1, 8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ReorderContext = (%v, %v), want context.Canceled", res, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled plan took %v; must return before doing real work", elapsed)
	}
}

func TestInjectedNoConvergeDegradesToImplicit(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.EigenNoConverge) // fires once: first rung only
	a := blockMatrix(1, 8)
	p := &Pipeline{ForceReorder: true, ForceK: 8, Spectral: SpectralOptions{Seed: 3}}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatalf("plan errored instead of degrading: %v", err)
	}
	if !res.Degraded {
		t.Fatal("injected non-convergence did not mark the plan Degraded")
	}
	if !strings.Contains(res.DegradedReason, "did not converge") {
		t.Errorf("DegradedReason %q does not mention non-convergence", res.DegradedReason)
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Fatalf("degraded plan has invalid permutation: %v", err)
	}
	if !res.Reordered {
		t.Error("implicit-similarity rung should still produce a real reordering")
	}
}

func TestInjectedFaultsFallToIdentity(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.EigenNoConverge, faultinject.Always())
	faultinject.Arm(faultinject.AllocCapBreach, faultinject.Always())
	a := blockMatrix(2, 8)
	p := &Pipeline{ForceReorder: true, ForceK: 8, Spectral: SpectralOptions{Seed: 3}}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatalf("plan errored instead of degrading to identity: %v", err)
	}
	if !res.Degraded || res.DegradedReason == "" {
		t.Fatalf("want Degraded with a reason, got Degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Fatalf("identity fallback has invalid permutation: %v", err)
	}
	if !res.Perm.IsIdentity() {
		t.Error("with every rung blocked the plan must be the identity")
	}
	if res.Reordered {
		t.Error("identity fallback must report Reordered=false")
	}
}

func TestAllocCapBreachSkipsOneRung(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.AllocCapBreach) // fires once: skips the requested rung
	a := blockMatrix(4, 8)
	p := &Pipeline{ForceReorder: true, ForceK: 8, Spectral: SpectralOptions{Seed: 3}}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatalf("plan errored: %v", err)
	}
	if !res.Degraded {
		t.Fatal("memory-cap breach on the first rung must mark the plan Degraded")
	}
	if !strings.Contains(res.DegradedReason, "memory estimate") {
		t.Errorf("DegradedReason %q does not mention the memory estimate", res.DegradedReason)
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Fatalf("degraded plan invalid: %v", err)
	}
	if !res.Reordered {
		t.Error("the implicit rung should still reorder after one skipped rung")
	}
}

func TestTinyMemoryBudgetFallsToIdentity(t *testing.T) {
	a := blockMatrix(5, 8)
	p := &Pipeline{
		ForceReorder: true, ForceK: 8,
		Spectral: SpectralOptions{Seed: 3},
		Budget:   Budget{MaxFootprintBytes: 64},
	}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatalf("plan errored: %v", err)
	}
	if !res.Degraded || !res.Perm.IsIdentity() {
		t.Fatalf("64-byte budget must yield a degraded identity plan, got Degraded=%v identity=%v",
			res.Degraded, res.Perm.IsIdentity())
	}
	if !strings.Contains(res.DegradedReason, "over budget") {
		t.Errorf("DegradedReason %q does not mention the budget", res.DegradedReason)
	}
}

func TestWallClockBudgetDegradesNotErrors(t *testing.T) {
	a := blockMatrix(6, 8)
	p := &Pipeline{
		ForceReorder: true, ForceK: 8,
		Spectral: SpectralOptions{Seed: 3},
		Budget:   Budget{MaxWallClock: time.Nanosecond},
	}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatalf("an expired wall-clock budget must degrade, not error: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "wall-clock") {
		t.Fatalf("want wall-clock degradation, got Degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Fatalf("degraded plan invalid: %v", err)
	}
}

func TestContainedPanicDescendsLadder(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	// The injection callback panics inside the first rung's eigensolve; the
	// ladder must contain it and succeed on the next rung.
	faultinject.Arm(faultinject.EigenNoConverge, faultinject.OnFire(func() {
		panic("injected eigensolver panic")
	}))
	a := blockMatrix(7, 8)
	p := &Pipeline{ForceReorder: true, ForceK: 8, Spectral: SpectralOptions{Seed: 3}}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatalf("panic escaped or plan errored: %v", err)
	}
	if !res.Degraded {
		t.Fatal("a contained panic must mark the plan Degraded")
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Fatalf("post-panic plan invalid: %v", err)
	}
}

func TestAttemptSpectralContainsPanic(t *testing.T) {
	// A nil matrix makes the spectral pass dereference nil: the guard must
	// convert that into ErrInternalPanic instead of crashing the caller.
	_, err := attemptSpectral(context.Background(), SpectralOptions{K: 4}, nil)
	if !errors.Is(err, ErrInternalPanic) {
		t.Fatalf("attemptSpectral(nil matrix) = %v, want ErrInternalPanic", err)
	}
}

func TestSweepCancelInjection(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The injected fault cancels the context at the start of the first k's
	// work — a mid-sweep cancellation at the worst possible moment.
	faultinject.Arm(faultinject.SweepCancel, faultinject.OnFire(cancel))
	a := blockMatrix(8, 8)
	_, err := SpectralSweepContext(ctx, a, []int{2, 4, 8}, SpectralOptions{Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SpectralSweepContext = %v, want context.Canceled", err)
	}
}

func TestReorderContextMatchesReorderWhenHealthy(t *testing.T) {
	a := blockMatrix(9, 8)
	p := &Pipeline{ForceReorder: true, ForceK: 8, Spectral: SpectralOptions{Seed: 3}}
	r1, err := p.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Degraded || r2.Degraded {
		t.Fatalf("healthy plans must not be Degraded (got %v, %v)", r1.Degraded, r2.Degraded)
	}
	if r1.DegradedReason != "" || r2.DegradedReason != "" {
		t.Fatal("healthy plans must have empty DegradedReason")
	}
	if len(r1.Perm) != len(r2.Perm) {
		t.Fatal("permutation lengths differ")
	}
	for i := range r1.Perm {
		if r1.Perm[i] != r2.Perm[i] {
			t.Fatalf("Reorder and ReorderContext(Background) diverge at %d: %d vs %d",
				i, r1.Perm[i], r2.Perm[i])
		}
	}
}

func TestRecursiveReorderContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Recursive{K: 4, MaxClusterRows: 64}
	_, err := r.ReorderContext(ctx, blockMatrix(10, 8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Recursive.ReorderContext = %v, want context.Canceled", err)
	}
}

// TestConcurrentCancelledPlans drives ~100 plans whose contexts cancel at
// staggered points mid-flight. Run under -race (the Makefile race target
// covers this package) it verifies the pool drains workers and returns
// scratch buffers without data races or leaked goroutines blocking exit.
func TestConcurrentCancelledPlans(t *testing.T) {
	a := smallMatrix(11)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%4 == 0 {
				cancel() // pre-cancelled
			} else {
				time.AfterFunc(time.Duration(i%7)*time.Millisecond, cancel)
			}
			p := &Pipeline{ForceReorder: true, ForceK: 4, Spectral: SpectralOptions{Seed: int64(i)}}
			res, err := p.ReorderContext(ctx, a)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("plan %d: unexpected error %v", i, err)
				}
				return
			}
			// The plan may have finished before its cancel fired; it must
			// then be fully valid.
			if vErr := res.Perm.Validate(a.Rows); vErr != nil {
				t.Errorf("plan %d: completed plan invalid: %v", i, vErr)
			}
		}(i)
	}
	wg.Wait()
}
