package core

import (
	"testing"

	"bootes/internal/sparse"
	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

func TestRecursiveProducesValidPermutation(t *testing.T) {
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 2048, Cols: 2048, Density: 0.006, Seed: 3, Groups: 32,
	})
	res, err := Recursive{K: 4, MaxClusterRows: 128, Opts: SpectralOptions{Seed: 1}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Fatal(err)
	}
	if !res.Reordered {
		t.Error("recursive reorder returned identity on a block matrix")
	}
}

func TestRecursiveBeatsFlatWhenGroupsExceedK(t *testing.T) {
	// 64 hidden groups but flat k is capped at 8: recursion should separate
	// groups the flat clustering merges.
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 4096, Cols: 4096, Density: 0.004, Seed: 5, Groups: 64,
	})
	const cache = 24 << 10
	base, err := trafficmodel.EstimateB(a, a, cache, 12)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Spectral{Opts: SpectralOptions{K: 8, Seed: 1}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recursive{K: 8, MaxClusterRows: 96, Opts: SpectralOptions{Seed: 1}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	flatEst, err := trafficmodel.EstimateBWithPerm(a, a, flat.Perm, cache, 12)
	if err != nil {
		t.Fatal(err)
	}
	recEst, err := trafficmodel.EstimateBWithPerm(a, a, rec.Perm, cache, 12)
	if err != nil {
		t.Fatal(err)
	}
	flatRatio := float64(flatEst.BTraffic) / float64(base.BTraffic)
	recRatio := float64(recEst.BTraffic) / float64(base.BTraffic)
	t.Logf("flat k=8 ratio %.3f, recursive ratio %.3f", flatRatio, recRatio)
	if recRatio >= flatRatio {
		t.Errorf("recursion (%.3f) did not improve on flat clustering (%.3f)", recRatio, flatRatio)
	}
}

func TestRecursiveSmallMatrixIsIdentity(t *testing.T) {
	a := sparse.Identity(50, false)
	res, err := Recursive{K: 8, MaxClusterRows: 256, Opts: SpectralOptions{Seed: 1}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Perm.IsIdentity() {
		t.Error("tiny matrix should not be reordered (below MaxClusterRows)")
	}
}

func TestRecursiveDepthBound(t *testing.T) {
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 1024, Cols: 1024, Density: 0.01, Seed: 7, Groups: 16,
	})
	// Depth 1 means a single flat pass.
	res, err := Recursive{K: 4, MaxClusterRows: 8, MaxDepth: 1, Opts: SpectralOptions{Seed: 1}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Fatal(err)
	}
}

func TestSelectKByEigengap(t *testing.T) {
	// A matrix with 8 clean hidden groups should pick k = 8 (the gap after
	// the 8th eigenvalue of the normalized similarity is the largest).
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 1536, Cols: 1536, Density: 0.012, Seed: 13, Groups: 8,
	})
	k, spectrum, err := SelectKByEigengap(a, SpectralOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(spectrum) < 9 {
		t.Fatalf("spectrum too short: %d", len(spectrum))
	}
	if k < 4 || k > 16 {
		t.Errorf("eigengap picked k=%d for 8 hidden groups (spectrum head %v)", k, spectrum[:10])
	}
	if _, _, err := SelectKByEigengap(sparse.Identity(2, false), SpectralOptions{}); err == nil {
		t.Error("tiny matrix accepted")
	}
}
