// Package core implements the paper's primary contribution: spectral-
// clustering row reordering (Algorithm 4) plus the decision-tree-gated
// preprocessing pipeline that decides whether to reorder at all and which
// cluster count k to use.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"bootes/internal/cluster"
	"bootes/internal/eigen"
	"bootes/internal/lsh"
	"bootes/internal/obs"
	"bootes/internal/sparse"
)

// CandidateKs are the cluster counts the paper found to offer the best
// trade-off across 500 SuiteSparse/SNAP matrices (§3.1.2).
var CandidateKs = []int{2, 4, 8, 16, 32}

// SpectralOptions configures one spectral reordering pass.
type SpectralOptions struct {
	// K is the number of eigenvectors and k-means clusters. It must be ≥ 2;
	// the pipeline restricts it to CandidateKs.
	K int
	// ImplicitSimilarity applies S = Ā·Āᵀ as an operator instead of forming
	// it explicitly — the memory ablation discussed in DESIGN.md. The paper's
	// Algorithm 4 forms S explicitly. Legacy flag: equivalent to Similarity =
	// SimImplicit; ignored when Similarity is set explicitly.
	ImplicitSimilarity bool
	// Similarity selects the similarity construction tier (see
	// SimilarityMode). The zero value SimAuto picks a tier from the matrix
	// size and the modeled similarity bytes.
	Similarity SimilarityMode
	// LSH parameterizes the approximate tier's MinHash/banding sparsifier;
	// the zero value selects lsh.DefaultParams (fixed seed).
	LSH lsh.Params
	// Seed drives Lanczos start vectors and k-means seeding.
	Seed int64
	// Eigen overrides eigensolver options (K is always forced to match).
	Eigen eigen.Options
	// KMeans overrides k-means options (K is always forced to match).
	KMeans cluster.KMeansOptions
	// Order selects the cluster layout policy (default Fiedler-sorted).
	Order cluster.PermutationOrder
	// HubThreshold caps the column degree used when building the similarity
	// matrix: columns denser than this are excluded (see
	// sparse.SimilarityCapped). 0 selects sparse.HubDegreeThreshold(a);
	// negative disables hub exclusion (the ablation baseline).
	HubThreshold int
}

// ErrBadK reports an invalid cluster count.
var ErrBadK = errors.New("core: cluster count must be at least 2")

// Spectral is the Bootes spectral-clustering reorderer for a fixed k. Use
// Bootes (pipeline.go) for the full cost-gated, k-selecting pipeline.
type Spectral struct {
	Opts SpectralOptions
}

// Name implements reorder.Reorderer.
func (s Spectral) Name() string { return fmt.Sprintf("Spectral(k=%d)", s.Opts.K) }

// Reorder runs Algorithm 4: similarity matrix → normalized Laplacian →
// top-k eigenvectors → k-means → cluster-grouped permutation.
func (s Spectral) Reorder(a *sparse.CSR) (*SpectralResult, error) {
	return s.ReorderContext(context.Background(), a)
}

// ReorderContext is Reorder with cooperative cancellation, threaded through
// every phase: similarity construction (per chunk), Lanczos (per matvec) and
// k-means (per restart and iteration). A context that is already done
// returns ctx.Err() before any similarity storage is allocated.
func (s Spectral) ReorderContext(ctx context.Context, a *sparse.CSR) (*SpectralResult, error) {
	start := time.Now()
	opts := s.Opts
	if opts.K < 2 {
		return nil, ErrBadK
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := a.Rows
	if n == 0 {
		return &SpectralResult{Perm: sparse.Permutation{}}, nil
	}
	k := opts.K
	if k > n {
		k = n
	}

	// Step 1-2: similarity matrix and normalized-Laplacian operator.
	// Working with M = D^{-1/2}·S·D^{-1/2} (largest eigenpairs) is
	// equivalent to the smallest eigenpairs of L = I − M. The tier dispatch
	// (exact merge / bitset / LSH-approximate / implicit) is shared with the
	// sweep via buildSimilarityOperator. Stage spans close via defer too so a
	// contained panic cannot leak an open span past the ladder's recovery.
	degreeWork := int64(n) * 8 * 2 // degrees + inv-sqrt arrays
	endSimilarity := obs.StartStage(ctx, obs.StageSimilarity)
	defer endSimilarity()
	op, simBytes, simMode, err := buildSimilarityOperator(ctx, a, opts)
	if err != nil {
		return nil, err
	}
	endSimilarity()

	// Step 3: top-k eigenvectors via Lanczos. Clustering only needs the
	// invariant subspace approximately, so the defaults trade residual
	// precision for speed (callers can override through Opts.Eigen).
	eo := opts.Eigen
	eo.K = k
	if eo.Seed == 0 {
		eo.Seed = opts.Seed
	}
	if eo.Tol == 0 {
		eo.Tol = 1e-5
	}
	if eo.MaxRestarts == 0 {
		eo.MaxRestarts = 12
	}
	if eo.MaxBasis == 0 {
		eo.MaxBasis = 2*k + 16
		if eo.MaxBasis < 48 {
			eo.MaxBasis = 48
		}
	}
	endEigensolve := obs.StartStage(ctx, obs.StageEigensolve)
	defer endEigensolve()
	res, err := eigen.LargestContext(ctx, op, eo)
	endEigensolve()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: eigensolve failed: %w", err)
	}

	// Step 4: k-means on the spectral embedding (rows = points, columns =
	// eigenvector coordinates), with Ng–Jordan–Weiss row normalization so
	// cluster membership is decided by embedding *direction* rather than
	// the degree-dependent magnitude.
	endKMeans := obs.StartStage(ctx, obs.StageKMeans)
	defer endKMeans()
	embedding := buildEmbedding(res.Vectors, n, k)
	ko := opts.KMeans
	ko.K = k
	if ko.Seed == 0 {
		ko.Seed = opts.Seed + 1
	}
	if ko.MaxIters == 0 {
		ko.MaxIters = 40
	}
	if ko.Restarts == 0 {
		ko.Restarts = 2
	}
	km, err := cluster.KMeansContext(ctx, embedding, n, k, ko)
	endKMeans()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: k-means failed: %w", err)
	}
	endPermute := obs.StartStage(ctx, obs.StagePermute)
	defer endPermute()
	perm := cluster.PermutationFromAssignment(km.Assign, k, embedding, k, opts.Order)
	endPermute()

	// Peak footprint model: the similarity matrix coexists with the degree
	// arrays and the Lanczos basis; per the paper S is freed before k-means,
	// so the peak is max(eigend phase, k-means phase).
	basisBytes := int64(eo.MaxBasis+1) * int64(n) * 8 // Lanczos basis vectors
	embedBytes := int64(len(embedding)) * 8
	eigPhase := simBytes + degreeWork + basisBytes
	kmPhase := embedBytes + int64(n)*4 + int64(k*k)*8
	foot := eigPhase
	if kmPhase > foot {
		foot = kmPhase
	}

	return &SpectralResult{
		Perm:           perm,
		Assign:         km.Assign,
		Embedding:      embedding,
		K:              k,
		Eigenvalues:    res.Values,
		MatVecs:        res.MatVecs,
		KMeansIters:    km.Iters,
		Inertia:        km.Inertia,
		Similarity:     simMode,
		PreprocessTime: time.Since(start),
		FootprintBytes: foot + int64(n)*4,
	}, nil
}

// resolveHub maps a SpectralOptions.HubThreshold to the effective cap and
// the column counts backing it (nil when no counts were needed): 0 selects
// the data-driven default, negative disables capping.
func resolveHub(a *sparse.CSR, threshold int) (hub int, colCounts []int) {
	switch {
	case threshold == 0:
		colCounts = sparse.ColCounts(a)
		return sparse.HubDegreeThresholdFromCounts(colCounts), colCounts
	case threshold < 0:
		return 0, nil
	default:
		return threshold, nil
	}
}

// buildEmbedding lays out eigenvectors as row-major point coordinates and
// applies Ng–Jordan–Weiss row normalization (each point scaled to unit
// length; all-zero rows left untouched).
func buildEmbedding(vectors [][]float64, n, k int) []float64 {
	embedding := make([]float64, n*k)
	for j, vec := range vectors {
		for i := 0; i < n; i++ {
			embedding[i*k+j] = vec[i]
		}
	}
	for i := 0; i < n; i++ {
		row := embedding[i*k : (i+1)*k]
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		if s > 0 {
			inv := 1 / sqrtf(s)
			for d := range row {
				row[d] *= inv
			}
		}
	}
	return embedding
}

// SpectralResult carries the permutation plus the intermediate artifacts the
// experiments and the decision-tree labeller inspect.
type SpectralResult struct {
	Perm        sparse.Permutation
	Assign      []int32
	Embedding   []float64 // n×K row-major spectral embedding
	K           int
	Eigenvalues []float64 // of M = D^{-1/2}SD^{-1/2}, descending
	MatVecs     int
	KMeansIters int
	Inertia     float64
	// Similarity is the resolved tier the similarity phase actually ran
	// (never SimAuto).
	Similarity     SimilarityMode
	PreprocessTime time.Duration
	FootprintBytes int64
}

func sqrtf(x float64) float64 { return math.Sqrt(x) }
