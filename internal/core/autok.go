package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"bootes/internal/cluster"
	"bootes/internal/eigen"
	"bootes/internal/faultinject"
	"bootes/internal/lsh"
	"bootes/internal/obs"
	"bootes/internal/refine"
	"bootes/internal/sparse"
)

// Auto-k outcome labels, the prefix of Result.AutoK and the `outcome` label
// of bootes_autok_total. AutoKOutcomeLabel extracts them from a full outcome
// string (which may carry a ": detail" suffix).
const (
	// AutoKSelected: the eigengap was unambiguous and the selected k was used.
	AutoKSelected = "selected"
	// AutoKFallbackAmbiguous: the spectrum showed no clear gap (uniform
	// random, single blob, too-small matrix); the tree's fixed k was used.
	// Not a degradation — an ambiguous spectrum is a property of the matrix.
	AutoKFallbackAmbiguous = "fallback-ambiguous"
	// AutoKFallbackImplicit: the effective similarity tier is matrix-free, so
	// there is no explicit S to refine; the tree's fixed k was used.
	AutoKFallbackImplicit = "fallback-implicit"
	// AutoKDegraded: the auto-k attempt itself failed (eigensolve, refinement,
	// contained panic, memory budget) and planning degraded to the fixed-k
	// ladder. Recorded in Degraded/DegradedReason as well.
	AutoKDegraded = "degraded"
)

// AutoKOutcomeLabel reduces a full auto-k outcome string ("selected: k=24
// gap-ratio=3.10") to its label ("selected") for metrics.
func AutoKOutcomeLabel(outcome string) string {
	if i := strings.IndexByte(outcome, ':'); i >= 0 {
		return outcome[:i]
	}
	return outcome
}

// AutoKOptions configures eigengap-based automatic cluster-count selection.
// When enabled (and no ForceK override is present), the planner attempts the
// auto-k rung before the fixed-k degradation ladder: materialize the explicit
// similarity matrix, refine it (internal/refine), solve the top-(KMax+1)
// spectrum of the refined normalized similarity, and pick k at the largest
// eigengap ratio θ_k/θ_{k+1} within [2, KMax]. An ambiguous spectrum falls
// back to the decision tree's fixed k (not a degradation); a failed attempt
// degrades to the fixed-k ladder with the reason recorded.
type AutoKOptions struct {
	// Enabled turns the auto-k rung on.
	Enabled bool
	// KMax bounds the selected cluster count (and sizes the eigensolve at
	// KMax+1 eigenpairs). 0 selects 64.
	KMax int
	// MinGapRatio is the ambiguity threshold: the best ratio θ_k/θ_{k+1} must
	// reach it or the selection falls back to the tree's k. 0 selects 1.25,
	// calibrated so smooth uniform-random spectra (best observed in-range
	// ratio ≈1.11) fall back while planted block structure (≥1.4) selects.
	MinGapRatio float64
	// StopEigenvalue is the noise floor: eigenvalues below it terminate the
	// gap scan (the spectrum is exhausted) and clamp the ratio denominator.
	// 0 selects 1e-2 (the SpectralCluster stop_eigenvalue).
	StopEigenvalue float64
	// Refine configures the affinity-refinement pipeline run before the
	// spectrum solve. The zero value applies no refinement (eigengap on the
	// raw normalized similarity); callers wanting the production recipe pass
	// refine.Default().
	Refine refine.Options
}

func (o AutoKOptions) withDefaults() AutoKOptions {
	if o.KMax <= 0 {
		o.KMax = 64
	}
	if o.MinGapRatio <= 0 {
		o.MinGapRatio = 1.25
	}
	if o.StopEigenvalue <= 0 {
		o.StopEigenvalue = 1e-2
	}
	return o
}

// selectEigengap scans k ∈ [kmin, kmax] for the largest eigengap ratio
// θ_k/θ_{k+1} over the descending spectrum values. Eigenvalues below stop
// terminate the scan (no more cluster structure) and clamp the denominator so
// noise-floor eigenvalues cannot inflate ratios without bound. ok reports
// whether the best ratio reached minRatio.
func selectEigengap(values []float64, kmin, kmax int, stop, minRatio float64) (bestK int, bestRatio float64, ok bool) {
	if kmax > len(values)-1 {
		kmax = len(values) - 1
	}
	for k := kmin; k <= kmax; k++ {
		hi, lo := values[k-1], values[k]
		if hi < stop {
			break
		}
		if lo < stop {
			lo = stop
		}
		ratio := hi / lo
		if ratio > bestRatio {
			bestRatio, bestK = ratio, k
		}
	}
	return bestK, bestRatio, bestK >= kmin && bestRatio >= minRatio
}

// estimateAutoKFootprint is the pre-allocation memory model for the auto-k
// rung: the spectral footprint at K = KMax+1 plus one extra similarity-sized
// working set for the refinement pipeline (the refined copy coexists with
// its source between ops).
func estimateAutoKFootprint(a *sparse.CSR, base SpectralOptions, ak AutoKOptions) int64 {
	opts := base
	opts.K = ak.withDefaults().KMax + 1
	est := estimateSpectralFootprint(a, opts)
	return est + est/2
}

// attemptAutoK runs the auto-k rung with panic containment. Outcomes:
//
//   - (result, "selected: ...", nil): the eigengap chose k and clustering
//     succeeded with it.
//   - (nil, "fallback-...", nil): auto-k declined (ambiguous spectrum,
//     implicit similarity tier, too-small matrix); the caller proceeds with
//     the tree's fixed k. Not a degradation.
//   - (nil, "", err): the attempt failed; the caller degrades to the fixed-k
//     ladder and records the reason.
func (p *Pipeline) attemptAutoK(ctx context.Context, a *sparse.CSR, base SpectralOptions) (sr *SpectralResult, outcome string, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			sr, outcome, err = nil, "", fmt.Errorf("%w: %v", ErrInternalPanic, rec)
		}
	}()
	start := time.Now()
	ak := p.AutoK.withDefaults()
	n := a.Rows
	kmax := ak.KMax
	if kmax > n-1 {
		kmax = n - 1
	}
	if kmax < 2 {
		return nil, fmt.Sprintf("%s: matrix too small for eigengap selection (n=%d)", AutoKFallbackAmbiguous, n), nil
	}

	eff := EffectiveSimilarityMode(a, base)
	if eff == SimImplicit {
		return nil, AutoKFallbackImplicit + ": refinement needs an explicit similarity matrix", nil
	}

	// Materialize the explicit similarity for the effective tier — the same
	// kernels buildSimilarityOperator dispatches to, but auto-k needs the CSR
	// itself for refinement, not just the operator.
	endSimilarity := obs.StartStage(ctx, obs.StageSimilarity)
	defer endSimilarity()
	hub, colCounts := resolveHub(a, base.HubThreshold)
	var sim *sparse.CSR
	switch eff {
	case SimApprox:
		sim, err = lsh.SparsifiedSimilarity(ctx, a, hub, colCounts, lshParams(base))
	case SimBitset:
		sim, err = sparse.SimilarityBitsetContext(ctx, a, hub, colCounts)
	default: // SimExact
		sim, err = sparse.SimilarityContext(ctx, a, hub, colCounts)
	}
	if err != nil {
		return nil, "", fmt.Errorf("core: auto-k similarity: %w", err)
	}
	obs.SimilarityModeUsed(ctx, eff.String())
	refined, err := refine.Apply(ctx, sim, ak.Refine)
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		return nil, "", fmt.Errorf("core: auto-k refinement: %w", err)
	}
	simBytes := sim.ModeledBytes() + refined.ModeledBytes()
	endSimilarity()

	// One spectrum solve sized for the largest admissible k; it exists only
	// to locate the eigengap (the ordering embedding is solved separately
	// below, over the raw similarity).
	if faultinject.Fire(faultinject.AutoKNoConverge) {
		return nil, "", fmt.Errorf("core: auto-k spectrum solve: %w", eigen.ErrNoConverge)
	}
	// Block subspace iteration, not Lanczos: a k-block matrix's normalized
	// similarity carries the eigenvalue 1 with multiplicity k, and a
	// single-vector Krylov space holds exactly one direction per distinct
	// eigenvalue — it would report a multiplicity of one regardless of k.
	// The block solver's oversampled random block resolves the degeneracy,
	// which here IS the quantity being measured.
	op := eigen.NewNormalizedSimilarity(refined)
	eo := base.Eigen
	eo.K = kmax + 1
	if eo.Seed == 0 {
		eo.Seed = base.Seed
	}
	if eo.Tol == 0 {
		eo.Tol = 1e-5
	}
	if eo.MaxRestarts == 0 {
		eo.MaxRestarts = 12
	}
	if eo.MaxBasis == 0 {
		eo.MaxBasis = 2*eo.K + 16
		if eo.MaxBasis < 48 {
			eo.MaxBasis = 48
		}
	}
	endEigensolve := obs.StartStage(ctx, obs.StageEigensolve)
	defer endEigensolve()
	res, err := eigen.BlockLargestContext(ctx, op, eo)
	endEigensolve()
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		return nil, "", fmt.Errorf("core: auto-k spectrum solve: %w", err)
	}

	k, ratio, ok := selectEigengap(res.Values, 2, kmax, ak.StopEigenvalue, ak.MinGapRatio)
	if !ok {
		return nil, fmt.Sprintf("%s: max eigengap ratio %.3f at k=%d below %.3f",
			AutoKFallbackAmbiguous, ratio, k, ak.MinGapRatio), nil
	}

	// The refined operator's job ends at selecting k. Its eigenvectors make
	// a poor ordering embedding — thresholding and diffusion erase the weak
	// ties that guide within-cluster layout — so the embedding comes from a
	// second, standard eigensolve over the raw similarity, mirroring the
	// fixed-k sweep path (same solver, seeds, and NJW normalization). Auto-k
	// therefore costs one block solve for the spectrum plus one Lanczos
	// solve at the selected k.
	rawOp := eigen.NewNormalizedSimilarity(sim)
	reo := base.Eigen
	reo.K = k
	if reo.Seed == 0 {
		reo.Seed = base.Seed
	}
	endEmbedSolve := obs.StartStage(ctx, obs.StageEigensolve)
	defer endEmbedSolve()
	rawRes, err := eigen.LargestContext(ctx, rawOp, reo)
	endEmbedSolve()
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		return nil, "", fmt.Errorf("core: auto-k embedding solve: %w", err)
	}

	// NJW embedding + k-means + layout, identical to the fixed-k pass.
	endKMeans := obs.StartStage(ctx, obs.StageKMeans)
	defer endKMeans()
	embedding := buildEmbedding(rawRes.Vectors, n, k)
	ko := base.KMeans
	ko.K = k
	if ko.Seed == 0 {
		ko.Seed = base.Seed + int64(k)
	}
	if ko.MaxIters == 0 {
		ko.MaxIters = 40
	}
	if ko.Restarts == 0 {
		ko.Restarts = 2
	}
	km, err := cluster.KMeansContext(ctx, embedding, n, k, ko)
	endKMeans()
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		return nil, "", fmt.Errorf("core: auto-k k-means: %w", err)
	}
	endPermute := obs.StartStage(ctx, obs.StagePermute)
	defer endPermute()
	perm := cluster.PermutationFromAssignment(km.Assign, k, embedding, k, base.Order)
	endPermute()

	basisBytes := int64(eo.MaxBasis+1) * int64(n) * 8
	embedBytes := int64(len(embedding)) * 8
	foot := simBytes + int64(n)*8*2 + basisBytes
	if kmPhase := embedBytes + int64(n)*4 + int64(k*k)*8; kmPhase > foot {
		foot = kmPhase
	}
	return &SpectralResult{
		Perm:           perm,
		Assign:         km.Assign,
		Embedding:      embedding,
		K:              k,
		Eigenvalues:    res.Values,
		MatVecs:        res.MatVecs + rawRes.MatVecs,
		KMeansIters:    km.Iters,
		Inertia:        km.Inertia,
		Similarity:     eff,
		PreprocessTime: time.Since(start),
		FootprintBytes: foot + int64(n)*4,
	}, fmt.Sprintf("%s: k=%d gap-ratio=%.2f", AutoKSelected, k, ratio), nil
}
