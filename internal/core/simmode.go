package core

import (
	"context"
	"fmt"

	"bootes/internal/eigen"
	"bootes/internal/lsh"
	"bootes/internal/obs"
	"bootes/internal/sparse"
)

// SimilarityMode selects how the spectral pass obtains its normalized
// similarity operator — the three-tier fast path plus the two explicit exact
// kernels:
//
//   - SimExact: merge-based S = Ā·Āᵀ (sparse.SimilarityContext), the paper's
//     Algorithm 4 as written.
//   - SimBitset: the same S bit-identically, via packed word-AND + popcount
//     kernels (sparse.SimilarityBitsetContext).
//   - SimApprox: LSH-sparsified S on MinHash/banding candidate pairs with
//     exact counts (lsh.SparsifiedSimilarity).
//   - SimImplicit: the matrix-free operator (eigen.ImplicitSimilarity); S is
//     never formed.
//
// SimAuto (the zero value) lets the selector pick a tier from the matrix
// size and the pre-allocation similarity-size bound.
type SimilarityMode int

// The similarity tiers. SimAuto is the default and resolves to one of the
// others via EffectiveSimilarityMode.
const (
	SimAuto SimilarityMode = iota
	SimExact
	SimBitset
	SimApprox
	SimImplicit
)

// String names the mode as accepted by ParseSimilarityMode.
func (m SimilarityMode) String() string {
	switch m {
	case SimAuto:
		return "auto"
	case SimExact:
		return "exact"
	case SimBitset:
		return "bitset"
	case SimApprox:
		return "approx"
	case SimImplicit:
		return "implicit"
	default:
		return fmt.Sprintf("SimilarityMode(%d)", int(m))
	}
}

// ParseSimilarityMode parses a mode name (the -similarity flag values).
func ParseSimilarityMode(s string) (SimilarityMode, error) {
	switch s {
	case "", "auto":
		return SimAuto, nil
	case "exact":
		return SimExact, nil
	case "bitset":
		return SimBitset, nil
	case "approx":
		return SimApprox, nil
	case "implicit":
		return SimImplicit, nil
	default:
		return SimAuto, fmt.Errorf("core: unknown similarity mode %q (want auto, exact, bitset, approx, or implicit)", s)
	}
}

// SimilarityClass partitions the tiers by the plan they produce: the two
// exact kernels yield bit-identical plans (one cache/plan-key class), while
// the approximate and implicit tiers each change the operator the
// eigensolver sees and therefore the resulting permutation.
type SimilarityClass byte

// The plan-equivalence classes of the similarity tiers.
const (
	SimClassExact SimilarityClass = iota
	SimClassApprox
	SimClassImplicit
)

// Class maps a resolved (non-auto) mode to its plan-equivalence class.
// SimAuto maps to the exact class; resolve it first when the distinction
// matters.
func (m SimilarityMode) Class() SimilarityClass {
	switch m {
	case SimApprox:
		return SimClassApprox
	case SimImplicit:
		return SimClassImplicit
	default:
		return SimClassExact
	}
}

// Selector thresholds for SimAuto, variables so tests can pin tiers on small
// inputs. Row counts pick the tier; the byte cap guards the exact tiers
// against similarity matrices whose degree-sum bound exceeds what the
// planner should ever materialize, overriding to the implicit operator.
var (
	// simBitsetMinRows is where the bitset kernels overtake the merge kernel:
	// below it the packing overhead dominates.
	simBitsetMinRows = 512
	// simApproxMinRows is where even the bitset-exact product is too much
	// work per plan and LSH sparsification takes over.
	simApproxMinRows = 8192
	// simImplicitMinRows is where forming any explicit S — even sparsified —
	// is not worth it and the matrix-free operator becomes the default.
	simImplicitMinRows = 65536
	// simExplicitBytesCap bounds the modeled size of an explicit exact S
	// (12 bytes per entry: int32 index + float64 count).
	simExplicitBytesCap = int64(1) << 28
	// simBitsetMinDensity gates the bitset kernels on matrix density: the
	// word-AND + popcount intersection only amortizes when a packed 64-bit
	// word carries at least one set bit on average. Below 1/64 the per-
	// candidate word merges cost more than the merge kernel's element walk,
	// so sparse mid-size inputs stay on SimExact.
	simBitsetMinDensity = 1.0 / 64
)

// resolveSimilarityMode resolves opts against the selector given the already
// computed hub threshold and column counts. The legacy ImplicitSimilarity
// flag is honored when no explicit mode is set.
func resolveSimilarityMode(a *sparse.CSR, opts SpectralOptions, hub int, colCounts []int) SimilarityMode {
	mode := opts.Similarity
	if mode == SimAuto && opts.ImplicitSimilarity {
		mode = SimImplicit
	}
	if mode != SimAuto {
		return mode
	}
	n := a.Rows
	if n >= simImplicitMinRows {
		return SimImplicit
	}
	if n >= simApproxMinRows {
		return SimApprox
	}
	if sparse.EstimateSimilarityNNZ(a, hub, colCounts)*12 > simExplicitBytesCap {
		return SimImplicit
	}
	if n >= simBitsetMinRows && a.Cols > 0 &&
		float64(a.NNZ()) >= simBitsetMinDensity*float64(n)*float64(a.Cols) {
		return SimBitset
	}
	return SimExact
}

// EffectiveSimilarityMode resolves the tier a spectral pass over a with opts
// will run: an explicit mode wins, the legacy ImplicitSimilarity flag maps
// to SimImplicit, and SimAuto consults the size/density selector. The result
// is never SimAuto. Plan caching keys on the result's Class.
func EffectiveSimilarityMode(a *sparse.CSR, opts SpectralOptions) SimilarityMode {
	mode := opts.Similarity
	if mode == SimAuto && opts.ImplicitSimilarity {
		mode = SimImplicit
	}
	if mode != SimAuto {
		return mode
	}
	hub, colCounts := resolveHub(a, opts.HubThreshold)
	return resolveSimilarityMode(a, opts, hub, colCounts)
}

// lshParams resolves the LSH parameters for the approximate tier: the zero
// value selects the sparsifier defaults — single-row bands for low-Jaccard
// recall plus the per-row degree cap, with a fixed seed (determinism is part
// of the contract).
func lshParams(opts SpectralOptions) lsh.Params {
	if opts.LSH == (lsh.Params{}) {
		return lsh.SparsifyParams()
	}
	return opts.LSH
}

// buildSimilarityOperator constructs the normalized similarity operator for
// the resolved tier, returning the operator, its modeled similarity-phase
// bytes, and the tier that ran (recorded in bootes_similarity_mode_total).
// Shared by the single-k spectral pass and the sweep so the two cannot drift.
func buildSimilarityOperator(ctx context.Context, a *sparse.CSR, opts SpectralOptions) (eigen.Operator, int64, SimilarityMode, error) {
	n := a.Rows
	hub, colCounts := resolveHub(a, opts.HubThreshold)
	mode := resolveSimilarityMode(a, opts, hub, colCounts)
	var (
		op       eigen.Operator
		simBytes int64
	)
	switch mode {
	case SimImplicit:
		impl := eigen.NewImplicitSimilarityCappedWithCounts(a, hub, colCounts)
		op = impl
		simBytes = impl.At.ModeledBytes() + int64(n)*8*2 // Āᵀ + two matvec temps
	case SimApprox:
		sim, err := lsh.SparsifiedSimilarity(ctx, a, hub, colCounts, lshParams(opts))
		if err != nil {
			return nil, 0, mode, err
		}
		simBytes = sim.ModeledBytes() + lsh.ModeledSparsifyBytes(n, lshParams(opts))
		op = eigen.NewNormalizedSimilarity(sim)
	case SimBitset:
		sim, err := sparse.SimilarityBitsetContext(ctx, a, hub, colCounts)
		if err != nil {
			return nil, 0, mode, err
		}
		simBytes = sim.ModeledBytes() + 2*a.NNZ()*(4+8) // plus the two bit packs
		op = eigen.NewNormalizedSimilarity(sim)
	default: // SimExact
		sim, err := sparse.SimilarityContext(ctx, a, hub, colCounts)
		if err != nil {
			return nil, 0, mode, err
		}
		simBytes = sim.ModeledBytes()
		op = eigen.NewNormalizedSimilarity(sim)
	}
	obs.SimilarityModeUsed(ctx, mode.String())
	return op, simBytes, mode, nil
}
