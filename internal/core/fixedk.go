package core

import (
	"fmt"

	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// FixedK adapts the spectral reorderer to the reorder.Reorderer interface at
// a fixed cluster count, bypassing the decision-tree gate. Figure 3's
// cluster-size sweep and the ablation benches use it.
type FixedK struct {
	K    int
	Opts SpectralOptions // K field is overridden
}

// Name implements reorder.Reorderer.
func (f FixedK) Name() string { return fmt.Sprintf("Bootes(k=%d)", f.K) }

// Reorder implements reorder.Reorderer.
func (f FixedK) Reorder(a *sparse.CSR) (*reorder.Result, error) {
	opts := f.Opts
	opts.K = f.K
	sr, err := Spectral{Opts: opts}.Reorder(a)
	if err != nil {
		return nil, err
	}
	return &reorder.Result{
		Perm:           sr.Perm,
		PreprocessTime: sr.PreprocessTime,
		FootprintBytes: sr.FootprintBytes,
		Reordered:      !sr.Perm.IsIdentity(),
		Extra: map[string]float64{
			"k":           float64(sr.K),
			"matvecs":     float64(sr.MatVecs),
			"kmeansIters": float64(sr.KMeansIters),
		},
	}, nil
}

var _ reorder.Reorderer = FixedK{}
