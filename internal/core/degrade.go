package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"bootes/internal/eigen"
	"bootes/internal/obs"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// ErrInternalPanic wraps a panic recovered at the pipeline boundary. Panics
// inside a ladder rung degrade to the next rung; a panic outside any rung
// (feature extraction, gating) surfaces as this typed error instead of
// crossing the API boundary.
var ErrInternalPanic = errors.New("core: internal panic during planning")

// retrySeedMix perturbs the PRNG seed for the fresh-start eigensolve retry
// rung. XOR keeps the retry deterministic while decorrelating the Lanczos
// start vector from the failed attempt.
const retrySeedMix = 0x5DEECE66D

// looseTol is the relaxed eigensolver tolerance used by the retry and
// fixed-small-k rungs: clustering only needs the invariant subspace roughly,
// so a coarse solve is still a useful plan.
const looseTol = 1e-2

// rung is one step of the degradation ladder: a named spectral configuration
// to attempt.
type rung struct {
	name string
	opts SpectralOptions
}

// buildLadder lays out the degradation ladder for a requested configuration
// whose effective similarity tier is eff:
//
//	requested → approx-similarity → implicit-similarity
//	          → retry (fresh seed, loose tol)
//	          → fixed small k (k=2, implicit, loose, small basis) → identity
//
// The first rung is the caller's own configuration. The approx rung — the
// LSH-sparsified similarity, cheaper in both time and memory than any exact
// kernel — is inserted only when the request resolves to an exact tier, so
// budget pressure degrades exact → approx → implicit; when the request
// already runs approximate or implicit similarity the ladder skips straight
// past the corresponding rungs. The identity rung is not in the list — it is
// the unconditional floor the caller falls to when every listed rung is
// skipped or fails.
func buildLadder(base SpectralOptions, eff SimilarityMode) []rung {
	var ladder []rung
	ladder = append(ladder, rung{name: "requested", opts: base})

	if eff.Class() == SimClassExact {
		approx := base
		approx.Similarity = SimApprox
		ladder = append(ladder, rung{name: "approx-similarity", opts: approx})
	}

	impl := base
	impl.ImplicitSimilarity = true
	impl.Similarity = SimImplicit
	if eff != SimImplicit {
		ladder = append(ladder, rung{name: "implicit-similarity", opts: impl})
	}

	retry := impl
	retry.Seed = impl.Seed ^ retrySeedMix
	retry.Eigen.Seed = 0 // re-derive from the mixed Seed
	if retry.Eigen.Tol == 0 || retry.Eigen.Tol < looseTol {
		retry.Eigen.Tol = looseTol
	}
	ladder = append(ladder, rung{name: "retry-loose", opts: retry})

	small := retry
	small.K = 2
	small.Eigen.MaxBasis = 20
	ladder = append(ladder, rung{name: "fixed-k2", opts: small})

	return ladder
}

// attemptSpectral runs one ladder rung with panic containment: a panic
// anywhere inside the spectral pass (including ones re-raised from worker
// goroutines by the parallel pool) comes back as an ErrInternalPanic-wrapped
// error, so the ladder can descend instead of crashing the caller.
func attemptSpectral(ctx context.Context, opts SpectralOptions, a *sparse.CSR) (sr *SpectralResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			sr, err = nil, fmt.Errorf("%w: %v", ErrInternalPanic, rec)
		}
	}()
	return Spectral{Opts: opts}.ReorderContext(ctx, a)
}

// ReorderContext is the fault-tolerant planning entry point: Reorder with
// cooperative cancellation, resource budgets, and the graceful-degradation
// ladder. Outcomes:
//
//   - ctx already done or cancelled mid-flight → (nil, ctx.Err()) promptly,
//     before any similarity storage is allocated when pre-cancelled.
//   - Budget.MaxWallClock expires (ctx itself still live) → identity plan
//     with Degraded=true, never an error.
//   - A rung's memory estimate exceeds Budget.MaxFootprintBytes → that rung
//     is skipped before allocation and the ladder descends.
//   - Eigensolver non-convergence, operator errors, or contained panics →
//     the ladder descends; the identity rung cannot fail.
//
// Every degradation is recorded in Result.Degraded / Result.DegradedReason;
// with no faults and a zero Budget the result is bit-identical to Reorder's.
func (p *Pipeline) ReorderContext(ctx context.Context, a *sparse.CSR) (res *reorder.Result, err error) {
	// Registered before the recover defer so it observes the converted error:
	// every exit from planning lands in bootes_plans_total exactly once.
	defer func() {
		switch {
		case err != nil:
			obs.PlanOutcome(ctx, obs.OutcomeError)
		case res != nil && res.Degraded:
			obs.PlanOutcome(ctx, obs.OutcomeDegraded)
		case res != nil:
			obs.PlanOutcome(ctx, obs.OutcomeHealthy)
		}
	}()
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrInternalPanic, rec)
		}
	}()
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	endFeatures := obs.StartStage(ctx, obs.StageFeatures)
	defer endFeatures()
	label, feats, err := p.Decide(a)
	endFeatures()
	if err != nil {
		return nil, err
	}
	k, err := KForLabel(label)
	if err != nil {
		return nil, err
	}
	if p.ForceK > 0 {
		k = p.ForceK
	} else if p.ForceReorder && k == 0 {
		k = CandidateKs[len(CandidateKs)/2]
	}

	if k == 0 && !p.ForceReorder {
		// Gate says no: identity permutation, near-zero cost. Declining is a
		// *decision*, not a degradation.
		return &reorder.Result{
			Perm:           sparse.IdentityPerm(a.Rows),
			PreprocessTime: time.Since(start),
			FootprintBytes: int64(a.Rows)*4 + modelBytes(p.Model),
			Reordered:      false,
			Extra: map[string]float64{
				"k":        0,
				"decision": float64(label),
				"interAvg": feats.InterAvg,
			},
		}, nil
	}

	// The wall-clock budget is enforced through a derived context so every
	// phase's existing cancellation checks double as budget checks. The
	// caller's ctx stays authoritative: its cancellation is an error, budget
	// expiry is a degradation.
	runCtx := ctx
	if p.Budget.MaxWallClock > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, p.Budget.MaxWallClock)
		defer cancel()
	}

	base := p.Spectral
	base.K = k
	eff := EffectiveSimilarityMode(a, base)
	var reasons []string

	// Auto-k rung: attempted once, before the fixed-k ladder. A successful
	// selection returns directly; a fallback outcome (ambiguous spectrum,
	// implicit tier) proceeds with the tree's k un-degraded; a failure
	// degrades onto the fixed-k ladder with the reason recorded.
	autoK := ""
	if p.AutoK.Enabled && p.ForceK == 0 {
		if est := estimateAutoKFootprint(a, base, p.AutoK); p.Budget.memoryExceeded(est) {
			obs.RungFailure(ctx, "autok")
			obs.AutoKOutcome(ctx, AutoKDegraded)
			reasons = append(reasons,
				fmt.Sprintf("autok: memory estimate %d B over budget", est))
			autoK = AutoKDegraded
		} else {
			obs.RungAttempt(ctx, "autok")
			sr, outcome, err := p.attemptAutoK(runCtx, a, base)
			switch {
			case err == nil && sr != nil:
				obs.AutoKOutcome(ctx, AutoKOutcomeLabel(outcome))
				return &reorder.Result{
					Perm:           sr.Perm,
					PreprocessTime: time.Since(start),
					FootprintBytes: sr.FootprintBytes + modelBytes(p.Model),
					Reordered:      !sr.Perm.IsIdentity(),
					SimilarityMode: sr.Similarity.String(),
					AutoK:          outcome,
					Extra: map[string]float64{
						"k":           float64(sr.K),
						"decision":    float64(label),
						"matvecs":     float64(sr.MatVecs),
						"kmeansIters": float64(sr.KMeansIters),
						"interAvg":    feats.InterAvg,
					},
				}, nil
			case err == nil:
				obs.AutoKOutcome(ctx, AutoKOutcomeLabel(outcome))
				autoK = outcome
			default:
				obs.RungFailure(ctx, "autok")
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				obs.AutoKOutcome(ctx, AutoKDegraded)
				autoK = AutoKDegraded
				if runCtx.Err() != nil {
					reasons = append(reasons, "autok: wall-clock budget exhausted")
				} else {
					switch {
					case errors.Is(err, eigen.ErrNoConverge):
						reasons = append(reasons, "autok: eigensolver did not converge")
					case errors.Is(err, ErrInternalPanic):
						reasons = append(reasons, fmt.Sprintf("autok: contained panic (%v)", err))
					default:
						reasons = append(reasons, fmt.Sprintf("autok: %v", err))
					}
				}
			}
		}
	}

	for _, r := range buildLadder(base, eff) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if runCtx.Err() != nil {
			reasons = append(reasons, "wall-clock budget exhausted")
			break
		}
		if est := estimateSpectralFootprint(a, r.opts); p.Budget.memoryExceeded(est) {
			obs.RungFailure(ctx, r.name)
			reasons = append(reasons,
				fmt.Sprintf("%s: memory estimate %d B over budget", r.name, est))
			continue
		}
		obs.RungAttempt(ctx, r.name)
		sr, err := attemptSpectral(runCtx, r.opts, a)
		if err != nil {
			obs.RungFailure(ctx, r.name)
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			if runCtx.Err() != nil {
				reasons = append(reasons, "wall-clock budget exhausted")
				break
			}
			switch {
			case errors.Is(err, eigen.ErrNoConverge):
				reasons = append(reasons, fmt.Sprintf("%s: eigensolver did not converge", r.name))
			case errors.Is(err, ErrInternalPanic):
				reasons = append(reasons, fmt.Sprintf("%s: contained panic (%v)", r.name, err))
			default:
				reasons = append(reasons, fmt.Sprintf("%s: %v", r.name, err))
			}
			continue
		}
		return &reorder.Result{
			Perm:           sr.Perm,
			PreprocessTime: time.Since(start),
			FootprintBytes: sr.FootprintBytes + modelBytes(p.Model),
			Reordered:      !sr.Perm.IsIdentity(),
			Degraded:       len(reasons) > 0,
			DegradedReason: strings.Join(reasons, "; "),
			SimilarityMode: sr.Similarity.String(),
			AutoK:          autoK,
			Extra: map[string]float64{
				"k":           float64(r.opts.K),
				"decision":    float64(label),
				"matvecs":     float64(sr.MatVecs),
				"kmeansIters": float64(sr.KMeansIters),
				"interAvg":    feats.InterAvg,
			},
		}, nil
	}

	// Identity floor: every rung was skipped or failed (or the budget clock
	// ran out). Still a valid plan — the matrix is simply left as-is.
	if len(reasons) == 0 {
		reasons = append(reasons, "no ladder rung attempted")
	}
	return &reorder.Result{
		Perm:           sparse.IdentityPerm(a.Rows),
		PreprocessTime: time.Since(start),
		FootprintBytes: int64(a.Rows)*4 + modelBytes(p.Model),
		Reordered:      false,
		Degraded:       true,
		DegradedReason: strings.Join(reasons, "; ") + "; fell back to identity",
		AutoK:          autoK,
		Extra: map[string]float64{
			"k":        0,
			"decision": float64(label),
			"interAvg": feats.InterAvg,
		},
	}, nil
}
