package core

import (
	"testing"

	"bootes/internal/dtree"
	"bootes/internal/sparse"
	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

func blockMatrix(seed int64, groups int) *sparse.CSR {
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 2048, Cols: 2048, Density: 0.01, Seed: seed, Groups: groups,
	})
}

func TestSpectralProducesValidPermutation(t *testing.T) {
	a := blockMatrix(1, 8)
	for _, k := range []int{2, 4, 8} {
		res, err := Spectral{Opts: SpectralOptions{K: k, Seed: 3}}.Reorder(a)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := res.Perm.Validate(a.Rows); err != nil {
			t.Errorf("k=%d: invalid perm: %v", k, err)
		}
		if res.K != k {
			t.Errorf("k=%d: reported K=%d", k, res.K)
		}
		if len(res.Eigenvalues) != k {
			t.Errorf("k=%d: %d eigenvalues", k, len(res.Eigenvalues))
		}
		// Top eigenvalue of the normalized similarity must be ≈ 1.
		if res.Eigenvalues[0] < 0.98 || res.Eigenvalues[0] > 1.0001 {
			t.Errorf("k=%d: top eigenvalue %v", k, res.Eigenvalues[0])
		}
	}
}

func TestSpectralRecoversBlockStructure(t *testing.T) {
	// With k equal to the hidden group count — and a cache that can hold one
	// group's B working set (2048/16 rows × ~10 nnz × 12 B ≈ 15 KB) — the
	// spectral reordering should cut B-traffic substantially versus the
	// shuffled original.
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 2048, Cols: 2048, Density: 0.005, Seed: 2, Groups: 16,
	})
	b := a
	const cache = 16 << 10
	const elem = 12
	base, err := trafficmodel.EstimateB(a, b, cache, elem)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Spectral{Opts: SpectralOptions{K: 16, Seed: 3}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	est, err := trafficmodel.EstimateBWithPerm(a, b, res.Perm, cache, elem)
	if err != nil {
		t.Fatal(err)
	}
	if est.BTraffic >= base.BTraffic {
		t.Fatalf("spectral reordering did not reduce traffic: %d vs %d", est.BTraffic, base.BTraffic)
	}
	improvement := float64(base.BTraffic) / float64(est.BTraffic)
	if improvement < 1.5 {
		t.Errorf("improvement %.2fx too small for a block matrix whose groups fit in cache", improvement)
	}
	t.Logf("traffic improvement: %.2fx (matvecs=%d)", improvement, res.MatVecs)
}

func TestSpectralImplicitMatchesExplicitQuality(t *testing.T) {
	a := blockMatrix(3, 4)
	b := a
	const cache = 16 << 10
	explicit, err := Spectral{Opts: SpectralOptions{K: 4, Seed: 5}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	implicit, err := Spectral{Opts: SpectralOptions{K: 4, Seed: 5, ImplicitSimilarity: true}}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	te, err := trafficmodel.EstimateBWithPerm(a, b, explicit.Perm, cache, 12)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := trafficmodel.EstimateBWithPerm(a, b, implicit.Perm, cache, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Same operator, same spectra: traffic within 25% of each other.
	ratio := float64(te.BTraffic) / float64(ti.BTraffic)
	if ratio < 0.75 || ratio > 1.33 {
		t.Errorf("implicit vs explicit traffic diverge: %d vs %d", ti.BTraffic, te.BTraffic)
	}
}

func TestSpectralErrors(t *testing.T) {
	a := blockMatrix(4, 4)
	if _, err := (Spectral{Opts: SpectralOptions{K: 1}}).Reorder(a); err == nil {
		t.Error("K=1 accepted")
	}
	// K clamped to n for tiny matrices.
	tiny := sparse.Identity(3, false)
	res, err := Spectral{Opts: SpectralOptions{K: 8, Seed: 1}}.Reorder(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Perm.Validate(3); err != nil {
		t.Error(err)
	}
}

func TestExtractFeaturesRanges(t *testing.T) {
	a := blockMatrix(5, 8)
	f := ExtractFeatures(a, FeatureOptions{Seed: 1})
	if f.Density <= 0 || f.Density > 1 {
		t.Errorf("density %v out of range", f.Density)
	}
	if f.InterAvg < 0 || f.InterAvg > 1 {
		t.Errorf("interAvg %v out of range", f.InterAvg)
	}
	if f.AvgRowNNZ <= 0 {
		t.Errorf("avgRowNNZ %v", f.AvgRowNNZ)
	}
	if len(f.Vector()) != len(FeatureNames) {
		t.Error("feature vector length mismatch")
	}
	// Banded matrix: almost no inter-row overlap at distance, low variance.
	banded := workloads.Banded(workloads.Params{Rows: 1024, Cols: 1024, Density: 0.003, Seed: 1})
	fb := ExtractFeatures(banded, FeatureOptions{Seed: 1})
	if fb.InterAvg >= f.InterAvg {
		t.Errorf("banded interAvg %v should be below block matrix %v", fb.InterAvg, f.InterAvg)
	}
}

func TestFeatureDeterminism(t *testing.T) {
	a := blockMatrix(6, 4)
	f1 := ExtractFeatures(a, FeatureOptions{Seed: 7})
	f2 := ExtractFeatures(a, FeatureOptions{Seed: 7})
	if f1 != f2 {
		t.Error("feature extraction not deterministic")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	for _, k := range CandidateKs {
		label, err := LabelForK(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := KForLabel(label)
		if err != nil || got != k {
			t.Errorf("round trip k=%d → label=%d → %d", k, label, got)
		}
	}
	if _, err := LabelForK(3); err == nil {
		t.Error("invalid k accepted")
	}
	if _, err := KForLabel(99); err == nil {
		t.Error("invalid label accepted")
	}
	if k, err := KForLabel(ClassNoReorder); err != nil || k != 0 {
		t.Error("no-reorder label wrong")
	}
	if NumClasses != 1+len(CandidateKs) {
		t.Error("NumClasses inconsistent with CandidateKs")
	}
}

func TestPipelineHeuristicGate(t *testing.T) {
	// Without a model: banded matrices should be skipped, block matrices
	// reordered.
	p := &Pipeline{Spectral: SpectralOptions{Seed: 2}}
	banded := workloads.Banded(workloads.Params{Rows: 2048, Cols: 2048, Density: 0.002, Seed: 2})
	res, err := p.Reorder(banded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reordered {
		t.Error("pipeline reordered a banded matrix")
	}
	if !res.Perm.IsIdentity() {
		t.Error("gated result is not identity")
	}

	block := blockMatrix(7, 8)
	res, err = p.Reorder(block)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reordered {
		t.Error("pipeline did not reorder a block matrix")
	}
	if res.Extra["k"] == 0 {
		t.Error("no k recorded for reordered matrix")
	}
}

func TestPipelineForceOptions(t *testing.T) {
	banded := workloads.Banded(workloads.Params{Rows: 512, Cols: 512, Density: 0.004, Seed: 3})
	p := &Pipeline{ForceReorder: true, Spectral: SpectralOptions{Seed: 1}}
	res, err := p.Reorder(banded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["k"] == 0 {
		t.Error("ForceReorder did not reorder")
	}
	p2 := &Pipeline{ForceK: 4, Spectral: SpectralOptions{Seed: 1}}
	res2, err := p2.Reorder(banded)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Extra["k"] != 4 {
		t.Errorf("ForceK: k = %v, want 4", res2.Extra["k"])
	}
}

func TestFixedKAdapter(t *testing.T) {
	a := blockMatrix(8, 4)
	r := FixedK{K: 4, Opts: SpectralOptions{Seed: 1}}
	if r.Name() != "Bootes(k=4)" {
		t.Errorf("Name = %q", r.Name())
	}
	res, err := r.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Perm.Validate(a.Rows); err != nil {
		t.Error(err)
	}
	if res.Extra["k"] != 4 {
		t.Error("k not recorded")
	}
}

func TestNamesAndModelPredictPath(t *testing.T) {
	if (Spectral{Opts: SpectralOptions{K: 4}}).Name() != "Spectral(k=4)" {
		t.Error("Spectral name wrong")
	}
	if (&Pipeline{}).Name() != "Bootes" {
		t.Error("Pipeline name wrong")
	}
	if (Recursive{}).Name() != "BootesRec(k=8)" {
		t.Error("Recursive name wrong")
	}
	// Decide with a trained model follows the model, not the heuristic.
	var samples []dtree.Sample
	for i := 0; i < 20; i++ {
		// Feature vector of the right arity; constant label 0 (no reorder).
		samples = append(samples, dtree.Sample{Features: make([]float64, len(FeatureNames)), Label: ClassNoReorder})
	}
	model, err := dtree.Train(samples, NumClasses, dtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Model: model, Spectral: SpectralOptions{Seed: 1}}
	a := blockMatrix(9, 8)
	label, _, err := p.Decide(a)
	if err != nil {
		t.Fatal(err)
	}
	if label != ClassNoReorder {
		t.Errorf("model label %d, want the trained constant 0", label)
	}
	res, err := p.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reordered {
		t.Error("model said no-reorder but the pipeline reordered")
	}
	// Model bytes are charged to the footprint.
	if res.FootprintBytes <= int64(a.Rows)*4 {
		t.Error("model bytes not accounted in footprint")
	}
}
