package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/refine"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// plantedBlockMatrix builds a clean k-block-diagonal pattern over n rows with
// a symmetric random relabeling: row i of block t draws ~70% of the block's
// columns, so rows within a block overlap heavily and rows across blocks not
// at all. The normalized similarity spectrum has exactly k dominant
// eigenvalues — the canonical eigengap golden fixture.
func plantedBlockMatrix(t *testing.T, n, k int, seed int64) *sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		bl := i * k / n
		lo, hi := bl*n/k, (bl+1)*n/k
		if hi > n {
			hi = n
		}
		var cols []int32
		for j := lo; j < hi; j++ {
			if rng.Float64() < 0.7 || j == i {
				cols = append(cols, int32(perm[j]))
			}
		}
		if len(cols) == 0 {
			cols = []int32{int32(perm[i])}
		}
		rows[perm[i]] = cols
	}
	m, err := sparse.FromRows(n, n, rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// noisyPlanted is plantedBlockMatrix plus cross-block noise: each row also
// draws a handful of uniformly random columns. The noise breaks the exact
// within-block degeneracies of the clean generator, which sharpens the
// eigengap (the clean fixture's secondary within-block structure keeps
// trailing eigenvalues high) — the realistic golden fixture for large k.
func noisyPlanted(t *testing.T, n, k int, noise float64, seed int64) *sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		bl := i * k / n
		lo, hi := bl*n/k, (bl+1)*n/k
		if hi > n {
			hi = n
		}
		set := map[int32]struct{}{}
		for j := lo; j < hi; j++ {
			if rng.Float64() < 0.7 || j == i {
				set[int32(perm[j])] = struct{}{}
			}
		}
		for len(set) < 2 || rng.Float64() < noise*float64(hi-lo) {
			set[int32(rng.Intn(n))] = struct{}{}
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		rows[perm[i]] = cols
	}
	m, err := sparse.FromRows(n, n, rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// autoKPipeline is the golden-test configuration: gate bypassed (the planted
// fixtures are tiny and the decision is not under test), auto-k on with the
// production refinement recipe.
func autoKPipeline(seed int64) *Pipeline {
	return &Pipeline{
		ForceReorder: true,
		Spectral:     SpectralOptions{Seed: seed},
		AutoK:        AutoKOptions{Enabled: true, Refine: refine.Default()},
	}
}

func TestAutoKRecoversPlantedK(t *testing.T) {
	cases := []struct {
		n, k  int
		noise float64
	}{
		{96, 3, 0},
		{144, 6, 0},
		{480, 24, 0.04},
		{640, 64, 0.04},
	}
	for _, c := range cases {
		var m *sparse.CSR
		if c.noise > 0 {
			m = noisyPlanted(t, c.n, c.k, c.noise, int64(c.k))
		} else {
			m = plantedBlockMatrix(t, c.n, c.k, int64(c.k))
		}
		res, err := autoKPipeline(7).ReorderContext(context.Background(), m)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", c.n, c.k, err)
		}
		if res.Degraded {
			t.Fatalf("n=%d k=%d: degraded: %s", c.n, c.k, res.DegradedReason)
		}
		if !strings.HasPrefix(res.AutoK, AutoKSelected+":") {
			t.Fatalf("n=%d k=%d: outcome %q, want selected", c.n, c.k, res.AutoK)
		}
		if got := int(res.Extra["k"]); got != c.k {
			t.Errorf("n=%d planted k=%d: auto-k picked %d (%s)", c.n, c.k, got, res.AutoK)
		}
		if err := res.Perm.Validate(c.n); err != nil {
			t.Errorf("n=%d k=%d: invalid permutation: %v", c.n, c.k, err)
		}
	}
}

func TestAutoKAmbiguousSpectrumFallsBack(t *testing.T) {
	// Uniform random sparsity: the spectrum decays smoothly, no gap clears
	// the ratio threshold. Single blob: every row shares one support, the
	// spectrum is one dominant eigenvalue then noise floor.
	blobRows := make([][]int32, 64)
	for i := range blobRows {
		blobRows[i] = []int32{0, 1, 2, 3, 4, 5, 6, 7}
	}
	blob, err := sparse.FromRows(64, 64, blobRows)
	if err != nil {
		t.Fatal(err)
	}
	fixtures := map[string]*sparse.CSR{
		"uniform-random": workloads.Generate(workloads.ArchRandom,
			workloads.Params{Rows: 200, Cols: 200, Density: 0.04, Seed: 11}),
		"single-blob": blob,
	}
	for name, m := range fixtures {
		res, err := autoKPipeline(7).ReorderContext(context.Background(), m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(res.AutoK, AutoKFallbackAmbiguous) {
			t.Errorf("%s: outcome %q, want %s with a recorded reason", name, res.AutoK, AutoKFallbackAmbiguous)
		}
		if res.Degraded {
			t.Errorf("%s: ambiguous fallback must not be a degradation: %s", name, res.DegradedReason)
		}
		if err := res.Perm.Validate(m.Rows); err != nil {
			t.Errorf("%s: invalid permutation: %v", name, err)
		}
	}
}

func TestAutoKImplicitTierFallsBack(t *testing.T) {
	m := plantedBlockMatrix(t, 96, 3, 3)
	p := autoKPipeline(7)
	p.Spectral.ImplicitSimilarity = true
	p.Spectral.Similarity = SimImplicit
	res, err := p.ReorderContext(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.AutoK, AutoKFallbackImplicit) {
		t.Errorf("outcome %q, want %s", res.AutoK, AutoKFallbackImplicit)
	}
	if res.Degraded {
		t.Errorf("implicit fallback must not degrade: %s", res.DegradedReason)
	}
}

func TestAutoKNoConvergeDegradesToFixedKLadder(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.AutoKNoConverge); err != nil {
		t.Fatal(err)
	}
	m := plantedBlockMatrix(t, 96, 3, 3)
	res, err := autoKPipeline(7).ReorderContext(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoK != AutoKDegraded {
		t.Errorf("outcome %q, want %s", res.AutoK, AutoKDegraded)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "autok: eigensolver did not converge") {
		t.Errorf("degradation not recorded: degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
	// The fixed-k ladder still produced a usable plan: a valid bijection with
	// the tree's k, not the identity floor.
	if err := res.Perm.Validate(m.Rows); err != nil {
		t.Fatalf("ladder plan invalid: %v", err)
	}
	if !res.Reordered || res.Extra["k"] == 0 {
		t.Errorf("expected a fixed-k ladder plan, got reordered=%v k=%v", res.Reordered, res.Extra["k"])
	}
}

func TestAutoKRespectsForceK(t *testing.T) {
	m := plantedBlockMatrix(t, 96, 3, 3)
	p := autoKPipeline(7)
	p.ForceK = 4
	res, err := p.ReorderContext(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoK != "" {
		t.Errorf("auto-k ran despite ForceK: %q", res.AutoK)
	}
	if got := int(res.Extra["k"]); got != 4 {
		t.Errorf("k = %d, want forced 4", got)
	}
}

func TestAutoKMemoryBudgetDegrades(t *testing.T) {
	m := plantedBlockMatrix(t, 96, 3, 3)
	p := autoKPipeline(7)
	p.Budget.MaxFootprintBytes = 1 // below any estimate: every rung skips
	res, err := p.ReorderContext(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoK != AutoKDegraded {
		t.Errorf("outcome %q, want %s", res.AutoK, AutoKDegraded)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "autok: memory estimate") {
		t.Errorf("budget skip not recorded: %q", res.DegradedReason)
	}
}

func TestSelectEigengap(t *testing.T) {
	// Planted 4-cluster spectrum: gap between values[3] and values[4].
	vals := []float64{1.0, 0.98, 0.97, 0.95, 0.21, 0.18, 0.1}
	k, ratio, ok := selectEigengap(vals, 2, 6, 1e-2, 1.1)
	if !ok || k != 4 {
		t.Errorf("k=%d ok=%v ratio=%.2f, want k=4", k, ok, ratio)
	}
	// Smooth decay: no ratio clears the threshold.
	if _, _, ok := selectEigengap([]float64{1.0, 0.99, 0.985, 0.98, 0.975}, 2, 4, 1e-2, 1.1); ok {
		t.Error("smooth spectrum selected a k")
	}
	// Noise floor clamps the denominator: a tiny trailing eigenvalue must
	// not produce an unbounded ratio beyond the stop clamp.
	_, ratio, _ = selectEigengap([]float64{1.0, 0.5, 1e-9}, 2, 2, 1e-2, 1.1)
	if ratio > 0.5/1e-2+1e-9 {
		t.Errorf("noise-floor eigenvalue inflated ratio to %g", ratio)
	}
	// Spectrum exhausted below stop before kmin: nothing selectable.
	if _, _, ok := selectEigengap([]float64{1e-3, 1e-4, 1e-5}, 2, 2, 1e-2, 1.1); ok {
		t.Error("dead spectrum selected a k")
	}
}

func TestAutoKOutcomeLabel(t *testing.T) {
	cases := map[string]string{
		"selected: k=24 gap-ratio=3.10": "selected",
		"fallback-ambiguous: no gap":    "fallback-ambiguous",
		"degraded":                      "degraded",
		"":                              "",
	}
	for in, want := range cases {
		if got := AutoKOutcomeLabel(in); got != want {
			t.Errorf("AutoKOutcomeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
