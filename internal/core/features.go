package core

import (
	"math"
	"math/rand"

	"bootes/internal/sparse"
	"bootes/internal/stats"
)

// Features is the structural fingerprint the decision tree consumes (paper
// §3.2): global sparsity, the variance of nonzeros per row and per column,
// and intersection metrics capturing structural overlap between rows. The
// paper's "intersection average / variation in intersection" are computed
// over *coupled* row pairs — pairs that share at least one column, found via
// Aᵀ — because those are the pairs whose overlap reordering can exploit.
// Two additional locality features (AdjacentAvg, InterAvg over uniform
// pairs) let the model distinguish "similar rows already adjacent" (banded;
// reordering useless) from "similar rows far apart" (reordering pays), and
// two size proxies (log₂ rows, log₂ nnz) capture the working-set scale the
// paper notes influences the optimal k.
type Features struct {
	// Density is the ratio of nonzero to total elements (global sparsity).
	Density float64
	// RowNNZVar and ColNNZVar are the variances of nonzeros per row/column,
	// normalized by the squared mean (coefficient of variation squared) so
	// they are comparable across matrix sizes.
	RowNNZVar float64
	ColNNZVar float64
	// InterAvg is the average Jaccard overlap of uniformly sampled row
	// pairs — the global degree of shared nonzero positions.
	InterAvg float64
	// InterVar is the variance of those overlaps.
	InterVar float64
	// CoupledAvg is the mean Jaccard overlap of sampled row pairs that
	// share at least one column — the paper's intersection average.
	CoupledAvg float64
	// CoupledVar is the variance of the coupled overlaps — whether the
	// overlap follows a consistent pattern or varies widely.
	CoupledVar float64
	// AdjacentAvg is the mean Jaccard overlap of consecutive rows (i, i+1)
	// in the current order: high values mean the order is already good.
	AdjacentAvg float64
	// Rows is log2 of the row count (size proxy).
	Rows float64
	// NNZ is log2 of the stored entry count (working-set proxy).
	NNZ float64
	// Aspect is rows/cols.
	Aspect float64
	// AvgRowNNZ is the mean nonzeros per row.
	AvgRowNNZ float64
}

// FeatureNames lists the feature vector layout used by Vector().
var FeatureNames = []string{
	"density", "rowNNZVar", "colNNZVar", "interAvg", "interVar",
	"coupledAvg", "coupledVar", "adjacentAvg",
	"log2Rows", "log2NNZ", "aspect", "avgRowNNZ",
}

// Vector flattens the features in FeatureNames order for the decision tree.
func (f Features) Vector() []float64 {
	return []float64{
		f.Density, f.RowNNZVar, f.ColNNZVar, f.InterAvg, f.InterVar,
		f.CoupledAvg, f.CoupledVar, f.AdjacentAvg,
		f.Rows, f.NNZ, f.Aspect, f.AvgRowNNZ,
	}
}

// FeatureOptions controls extraction sampling.
type FeatureOptions struct {
	// SamplePairs is the number of random row pairs used for the
	// intersection metrics. 0 selects 512.
	SamplePairs int
	// Seed makes sampling deterministic.
	Seed int64
}

// ExtractFeatures computes the structural fingerprint of a.
func ExtractFeatures(a *sparse.CSR, opts FeatureOptions) Features {
	if opts.SamplePairs == 0 {
		opts.SamplePairs = 512
	}
	n := a.Rows
	var f Features
	f.Density = a.Density()
	if a.Cols > 0 {
		f.Aspect = float64(n) / float64(a.Cols)
	}
	f.Rows = log2(float64(n) + 1)

	rowCounts := make([]float64, n)
	for i := 0; i < n; i++ {
		rowCounts[i] = float64(a.RowNNZ(i))
	}
	colCountsInt := sparse.ColCounts(a)
	colCounts := make([]float64, len(colCountsInt))
	for i, c := range colCountsInt {
		colCounts[i] = float64(c)
	}
	f.AvgRowNNZ = stats.Mean(rowCounts)
	f.RowNNZVar = normalizedVariance(rowCounts)
	f.ColNNZVar = normalizedVariance(colCounts)

	f.NNZ = log2(float64(a.NNZ()) + 1)

	if n >= 2 {
		rng := rand.New(rand.NewSource(opts.Seed ^ 0xfea7))

		// Uniform-pair overlap: global similarity level. Empty-row pairs
		// contribute zero, correctly signalling "nothing to align".
		overlaps := make([]float64, 0, opts.SamplePairs)
		for s := 0; s < opts.SamplePairs; s++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				j = (j + 1) % n
			}
			overlaps = append(overlaps, sparse.Jaccard(a, i, j))
		}
		f.InterAvg = stats.Mean(overlaps)
		f.InterVar = stats.Variance(overlaps)

		// Coupled-pair overlap: sample a nonzero, walk its column through
		// Aᵀ, and pick another row touching the same column. These are the
		// pairs reordering could bring together.
		at := sparse.Transpose(a.Pattern())
		coupled := make([]float64, 0, opts.SamplePairs)
		nnz := a.NNZ()
		if nnz > 0 {
			for s := 0; s < opts.SamplePairs; s++ {
				i := rng.Intn(n)
				row := a.Row(i)
				if len(row) == 0 {
					coupled = append(coupled, 0)
					continue
				}
				c := row[rng.Intn(len(row))]
				peers := at.Row(int(c))
				j := int(peers[rng.Intn(len(peers))])
				if j == i {
					coupled = append(coupled, 1) // only itself: perfect reuse
					continue
				}
				coupled = append(coupled, sparse.Jaccard(a, i, j))
			}
			f.CoupledAvg = stats.Mean(coupled)
			f.CoupledVar = stats.Variance(coupled)
		}

		// Adjacent-row overlap in the current order.
		adj := make([]float64, 0, opts.SamplePairs)
		for s := 0; s < opts.SamplePairs; s++ {
			i := rng.Intn(n - 1)
			adj = append(adj, sparse.Jaccard(a, i, i+1))
		}
		f.AdjacentAvg = stats.Mean(adj)
	}
	return f
}

// normalizedVariance returns Var(x)/Mean(x)² (0 when the mean is 0),
// a size-invariant skewness measure.
func normalizedVariance(xs []float64) float64 {
	m := stats.Mean(xs)
	if m == 0 {
		return 0
	}
	return stats.Variance(xs) / (m * m)
}

func log2(x float64) float64 { return math.Log2(x) }
