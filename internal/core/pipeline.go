package core

import (
	"context"
	"fmt"

	"bootes/internal/dtree"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// Decision-tree class encoding: class 0 means "do not reorder"; class 1+i
// means "reorder with k = CandidateKs[i]".
const (
	ClassNoReorder = 0
	// NumClasses is 1 (no-reorder) + len(CandidateKs).
	NumClasses = 6
)

// LabelForK returns the class label for cluster count k.
func LabelForK(k int) (int, error) {
	for i, c := range CandidateKs {
		if c == k {
			return 1 + i, nil
		}
	}
	return 0, fmt.Errorf("core: k=%d is not a candidate cluster count", k)
}

// KForLabel returns the cluster count for a class label (0 for no-reorder).
func KForLabel(label int) (int, error) {
	if label == ClassNoReorder {
		return 0, nil
	}
	if label < 1 || label > len(CandidateKs) {
		return 0, fmt.Errorf("core: label %d out of range", label)
	}
	return CandidateKs[label-1], nil
}

// Pipeline is the full Bootes preprocessing flow (paper §3.2 workflow
// summary): extract structural features, consult the decision tree, and —
// when reordering is predicted to pay off — run spectral clustering with the
// predicted k. It implements reorder.Reorderer so it can be compared
// directly against the baselines.
type Pipeline struct {
	// Model is the trained cost/benefit predictor. When nil, a structural
	// heuristic stands in (reorder unless row overlap is negligible; pick k
	// by matrix size), so the pipeline is usable before training.
	Model *dtree.Tree
	// Spectral carries the base spectral options; K is overridden by the
	// model's prediction.
	Spectral SpectralOptions
	// Features controls fingerprint extraction.
	Features FeatureOptions
	// ForceReorder bypasses the gate (used by ablations and the labeller).
	ForceReorder bool
	// ForceK overrides the predicted cluster count when > 0.
	ForceK int
	// AutoK, when enabled, attempts eigengap-based cluster-count selection
	// over the refined similarity before the fixed-k ladder (see
	// AutoKOptions). Ignored when ForceK is set.
	AutoK AutoKOptions
	// Budget caps planning resources (wall clock, modeled peak memory). The
	// zero value imposes no limits; exceeding a cap degrades the plan (see
	// ReorderContext) rather than failing it.
	Budget Budget
}

// Name implements reorder.Reorderer.
func (p *Pipeline) Name() string { return "Bootes" }

// Decide runs only the gating step: it returns the predicted class.
func (p *Pipeline) Decide(a *sparse.CSR) (label int, feats Features, err error) {
	feats = ExtractFeatures(a, p.Features)
	if p.Model == nil {
		return heuristicLabel(a, feats), feats, nil
	}
	label, err = p.Model.Predict(feats.Vector())
	return label, feats, err
}

// heuristicLabel is the untrained fallback policy: reorder only when coupled
// rows overlap strongly AND the current order does not already realize that
// overlap (adjacent rows dissimilar) — the banded/FEM versus scrambled-block
// distinction. k then scales with matrix size.
func heuristicLabel(a *sparse.CSR, f Features) int {
	if f.CoupledAvg < 0.05 {
		return ClassNoReorder // nothing substantial to align
	}
	if f.AdjacentAvg > 0.8*f.CoupledAvg {
		return ClassNoReorder // the existing order already captures it
	}
	// Scale k with matrix size: roughly one cluster per few hundred rows,
	// clamped to the candidate set. Over-clustering is cheap insurance —
	// the Fiedler-sorted cluster layout keeps related clusters adjacent —
	// while under-clustering mixes unrelated row groups.
	k := 32
	switch {
	case a.Rows < 256:
		k = 4
	case a.Rows < 512:
		k = 8
	case a.Rows < 1024:
		k = 16
	}
	label, _ := LabelForK(k)
	return label
}

// Reorder implements reorder.Reorderer: gate, then spectrally reorder. It is
// ReorderContext (degrade.go) with a background context — the same ladder and
// panic containment apply, and with no faults and a zero Budget the result is
// bit-identical to the pre-ladder pipeline.
func (p *Pipeline) Reorder(a *sparse.CSR) (*reorder.Result, error) {
	return p.ReorderContext(context.Background(), a)
}

func modelBytes(t *dtree.Tree) int64 {
	if t == nil {
		return 0
	}
	return t.ModeledBytes()
}

// Interface check: the pipeline is a drop-in Reorderer.
var _ reorder.Reorderer = (*Pipeline)(nil)
