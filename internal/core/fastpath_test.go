package core

import (
	"context"
	"strings"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/parallel"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// setSelectorThresholds pins the SimAuto selector to small-row boundaries so
// the tier progression is testable without building huge matrices.
func setSelectorThresholds(t *testing.T, bitset, approx, implicit int, bytesCap int64) {
	t.Helper()
	ob, oa, oi, oc := simBitsetMinRows, simApproxMinRows, simImplicitMinRows, simExplicitBytesCap
	t.Cleanup(func() {
		simBitsetMinRows, simApproxMinRows, simImplicitMinRows, simExplicitBytesCap = ob, oa, oi, oc
	})
	simBitsetMinRows, simApproxMinRows, simImplicitMinRows, simExplicitBytesCap = bitset, approx, implicit, bytesCap
}

func selectorMatrix(rows int) *sparse.CSR {
	return workloads.ScrambledBlock(workloads.Params{
		Rows: rows, Cols: rows, Density: 0.05, Seed: 11, Groups: 4,
	})
}

func TestSimilaritySelectorThresholds(t *testing.T) {
	setSelectorThresholds(t, 64, 128, 256, 1<<28)
	for _, tc := range []struct {
		rows int
		want SimilarityMode
	}{
		{32, SimExact},
		{64, SimBitset},
		{127, SimBitset},
		{128, SimApprox},
		{255, SimApprox},
		{256, SimImplicit},
	} {
		got := EffectiveSimilarityMode(selectorMatrix(tc.rows), SpectralOptions{})
		if got != tc.want {
			t.Errorf("auto tier at %d rows = %v, want %v", tc.rows, got, tc.want)
		}
	}

	// In the bitset row range, a matrix too sparse to fill the packed words
	// (density below 1/64) stays on the merge kernel.
	sparse64 := workloads.ScrambledBlock(workloads.Params{
		Rows: 64, Cols: 2048, Density: 0.002, Seed: 11, Groups: 4,
	})
	if got := EffectiveSimilarityMode(sparse64, SpectralOptions{}); got != SimExact {
		t.Errorf("auto tier for sub-1/64-density matrix = %v, want SimExact", got)
	}

	// The byte cap overrides the exact tiers to implicit even below the
	// approximate row threshold.
	setSelectorThresholds(t, 64, 1<<30, 1<<30, 1)
	if got := EffectiveSimilarityMode(selectorMatrix(96), SpectralOptions{}); got != SimImplicit {
		t.Errorf("byte-capped auto tier = %v, want SimImplicit", got)
	}
}

func TestSimilaritySelectorExplicitWins(t *testing.T) {
	setSelectorThresholds(t, 64, 128, 256, 1<<28)
	m := selectorMatrix(300) // auto would say implicit
	for _, mode := range []SimilarityMode{SimExact, SimBitset, SimApprox, SimImplicit} {
		if got := EffectiveSimilarityMode(m, SpectralOptions{Similarity: mode}); got != mode {
			t.Errorf("explicit %v resolved to %v", mode, got)
		}
	}
	// The legacy flag maps to implicit when no explicit mode is set, and
	// loses to an explicit mode.
	if got := EffectiveSimilarityMode(selectorMatrix(32), SpectralOptions{ImplicitSimilarity: true}); got != SimImplicit {
		t.Errorf("legacy ImplicitSimilarity resolved to %v", got)
	}
	if got := EffectiveSimilarityMode(m, SpectralOptions{ImplicitSimilarity: true, Similarity: SimExact}); got != SimExact {
		t.Errorf("explicit mode should beat the legacy flag, got %v", got)
	}
}

// modeFingerprint runs one spectral pass with the given similarity mode and
// returns the determinism-contract artifacts.
func modeFingerprint(t *testing.T, a *sparse.CSR, mode SimilarityMode, seed int64) spectralFingerprint {
	t.Helper()
	res, err := Spectral{Opts: SpectralOptions{K: 8, Seed: seed, Similarity: mode}}.Reorder(a)
	if err != nil {
		t.Fatalf("Reorder(%v): %v", mode, err)
	}
	if res.Similarity != mode {
		t.Fatalf("result reports tier %v, want %v", res.Similarity, mode)
	}
	return spectralFingerprint{perm: res.Perm, assign: res.Assign, inertia: res.Inertia}
}

// TestBitsetPlanMatchesExactAcrossWorkers: the bitset kernel is an exact
// drop-in — whole-pipeline results must be bit-identical to the merge kernel
// at every worker count.
func TestBitsetPlanMatchesExactAcrossWorkers(t *testing.T) {
	for name, a := range equivWorkloads(5) {
		ref := modeFingerprint(t, a, SimExact, 7)
		for _, w := range []int{1, 2, 8} {
			prev := parallel.SetWorkers(w)
			got := modeFingerprint(t, a, SimBitset, 7)
			parallel.SetWorkers(prev)
			if !sameInt32(ref.perm, got.perm) || !sameInt32(ref.assign, got.assign) || ref.inertia != got.inertia {
				t.Errorf("%s: bitset plan at %d workers diverges from exact", name, w)
			}
		}
	}
}

// TestApproxPlanDeterministicAcrossWorkers: the approximate tier makes no
// bit-identity promise versus exact, but it must agree with itself for any
// worker count.
func TestApproxPlanDeterministicAcrossWorkers(t *testing.T) {
	for name, a := range equivWorkloads(6) {
		prev := parallel.SetWorkers(1)
		ref := modeFingerprint(t, a, SimApprox, 7)
		parallel.SetWorkers(prev)
		for _, w := range []int{2, 8} {
			prev := parallel.SetWorkers(w)
			got := modeFingerprint(t, a, SimApprox, 7)
			parallel.SetWorkers(prev)
			if !sameInt32(ref.perm, got.perm) || !sameInt32(ref.assign, got.assign) || ref.inertia != got.inertia {
				t.Errorf("%s: approx plan at %d workers diverges from workers=1", name, w)
			}
		}
	}
}

// TestApproxFaultDegradesToImplicit: a failing sparsifier must walk the
// ladder to the implicit rung — a real reordering, not the identity floor.
func TestApproxFaultDegradesToImplicit(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.LSHSparsifyFail, faultinject.Always())
	a := smallMatrix(3)
	p := &Pipeline{ForceReorder: true, ForceK: 8,
		Spectral: SpectralOptions{Seed: 3, Similarity: SimApprox}}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		t.Fatalf("plan errored instead of degrading: %v", err)
	}
	if !res.Degraded {
		t.Fatal("failing sparsifier did not mark the plan Degraded")
	}
	if !strings.Contains(res.DegradedReason, "sparsify") {
		t.Errorf("DegradedReason %q does not name the sparsifier fault", res.DegradedReason)
	}
	if strings.Contains(res.DegradedReason, "fell back to identity") {
		t.Errorf("plan fell to the identity floor: %q", res.DegradedReason)
	}
	if res.SimilarityMode != "implicit" {
		t.Errorf("degraded plan ran tier %q, want implicit", res.SimilarityMode)
	}
	if !res.Reordered {
		t.Error("implicit rung should still produce a real reordering")
	}
}

// TestLadderRungOrder: the approx rung exists only for exact-class requests,
// and no rung repeats the tier the request already resolves to.
func TestLadderRungOrder(t *testing.T) {
	names := func(ladder []rung) []string {
		var out []string
		for _, r := range ladder {
			out = append(out, r.name)
		}
		return out
	}
	exact := names(buildLadder(SpectralOptions{K: 8}, SimExact))
	wantExact := []string{"requested", "approx-similarity", "implicit-similarity", "retry-loose", "fixed-k2"}
	if strings.Join(exact, ",") != strings.Join(wantExact, ",") {
		t.Errorf("exact ladder = %v, want %v", exact, wantExact)
	}
	approx := names(buildLadder(SpectralOptions{K: 8, Similarity: SimApprox}, SimApprox))
	wantApprox := []string{"requested", "implicit-similarity", "retry-loose", "fixed-k2"}
	if strings.Join(approx, ",") != strings.Join(wantApprox, ",") {
		t.Errorf("approx ladder = %v, want %v", approx, wantApprox)
	}
	impl := names(buildLadder(SpectralOptions{K: 8, Similarity: SimImplicit}, SimImplicit))
	wantImpl := []string{"requested", "retry-loose", "fixed-k2"}
	if strings.Join(impl, ",") != strings.Join(wantImpl, ",") {
		t.Errorf("implicit ladder = %v, want %v", impl, wantImpl)
	}

	// The inserted approx rung must actually request the approximate tier.
	ladder := buildLadder(SpectralOptions{K: 8}, SimBitset)
	if ladder[1].opts.Similarity != SimApprox {
		t.Errorf("approx rung requests tier %v", ladder[1].opts.Similarity)
	}
}
