package core

import (
	"fmt"
	"testing"

	"bootes/internal/parallel"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// equivWorkloads returns the three structurally distinct archetypes the
// determinism contract is asserted on: a scrambled block matrix (the
// reorder-friendly case), a power-law graph (hub-heavy, exercises hub
// exclusion), and an FEM mesh (banded coupling).
func equivWorkloads(seed int64) map[string]*sparse.CSR {
	return map[string]*sparse.CSR{
		"scrambled": workloads.Generate(workloads.ArchScrambledBlock, workloads.Params{
			Rows: 480, Cols: 480, Density: 0.03, Groups: 6, Seed: seed,
		}),
		"powerlaw": workloads.Generate(workloads.ArchPowerLaw, workloads.Params{
			Rows: 400, Cols: 400, Density: 0.02, Seed: seed,
		}),
		"fem": workloads.Generate(workloads.ArchFEM, workloads.Params{
			Rows: 450, Cols: 450, Density: 0.02, Seed: seed,
		}),
	}
}

// spectralFingerprint captures everything the determinism contract covers
// for one Spectral.Reorder run.
type spectralFingerprint struct {
	perm    []int32
	assign  []int32
	inertia float64
}

func fingerprint(t *testing.T, a *sparse.CSR, seed int64) spectralFingerprint {
	t.Helper()
	res, err := Spectral{Opts: SpectralOptions{K: 8, Seed: seed}}.Reorder(a)
	if err != nil {
		t.Fatalf("Reorder: %v", err)
	}
	return spectralFingerprint{perm: res.Perm, assign: res.Assign, inertia: res.Inertia}
}

func sameInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpectralParallelEquivalence asserts the PR's hard requirement: for
// fixed seeds, the parallel pipeline returns bit-identical permutations,
// assignments, and inertia for every worker count, including the forced
// sequential mode.
func TestSpectralParallelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for name, a := range equivWorkloads(seed) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				restore := parallel.Sequential()
				ref := fingerprint(t, a, seed)
				restore()
				for _, w := range []int{1, 2, 8} {
					prev := parallel.SetWorkers(w)
					got := fingerprint(t, a, seed)
					parallel.SetWorkers(prev)
					if !sameInt32(ref.perm, got.perm) {
						t.Fatalf("workers=%d: permutation differs from sequential", w)
					}
					if !sameInt32(ref.assign, got.assign) {
						t.Fatalf("workers=%d: assignment differs from sequential", w)
					}
					if got.inertia != ref.inertia {
						t.Fatalf("workers=%d: inertia %v != sequential %v", w, got.inertia, ref.inertia)
					}
				}
			})
		}
	}
}

// TestSweepParallelEquivalence asserts the same contract for the per-k
// parallel SpectralSweep: entry order, permutations, and inertia must not
// depend on the worker count.
func TestSweepParallelEquivalence(t *testing.T) {
	ks := []int{2, 4, 8}
	for _, seed := range []int64{1, 2, 3} {
		for name, a := range equivWorkloads(seed) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				restore := parallel.Sequential()
				ref, err := SpectralSweep(a, ks, SpectralOptions{Seed: seed})
				restore()
				if err != nil {
					t.Fatalf("sequential sweep: %v", err)
				}
				for _, w := range []int{1, 2, 8} {
					prev := parallel.SetWorkers(w)
					got, err := SpectralSweep(a, ks, SpectralOptions{Seed: seed})
					parallel.SetWorkers(prev)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if len(got) != len(ref) {
						t.Fatalf("workers=%d: %d entries, want %d", w, len(got), len(ref))
					}
					for i := range ref {
						if got[i].K != ref[i].K {
							t.Fatalf("workers=%d: entry %d has k=%d, want %d", w, i, got[i].K, ref[i].K)
						}
						if !sameInt32(ref[i].Perm, got[i].Perm) {
							t.Fatalf("workers=%d k=%d: permutation differs from sequential", w, ref[i].K)
						}
						if got[i].Inertia != ref[i].Inertia {
							t.Fatalf("workers=%d k=%d: inertia %v != sequential %v", w, ref[i].K, got[i].Inertia, ref[i].Inertia)
						}
					}
				}
			})
		}
	}
}

// TestSimilarityParallelEquivalence pins the two-pass parallel similarity
// construction to the sequential result at the matrix level: identical
// pattern and counts for every worker count.
func TestSimilarityParallelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for name, a := range equivWorkloads(seed) {
			restore := parallel.Sequential()
			ref := sparse.SimilarityCapped(a, sparse.HubDegreeThreshold(a))
			restore()
			for _, w := range []int{1, 2, 8} {
				prev := parallel.SetWorkers(w)
				got := sparse.SimilarityCapped(a, sparse.HubDegreeThreshold(a))
				parallel.SetWorkers(prev)
				if !sparse.Equal(ref, got) {
					t.Fatalf("%s/seed%d workers=%d: similarity matrix differs from sequential", name, seed, w)
				}
			}
		}
	}
}
