package core

import (
	"fmt"
	"testing"

	"bootes/internal/parallel"
	"bootes/internal/workloads"
)

func BenchmarkEigensolve(b *testing.B) {
	a := workloads.Generate(workloads.ArchScrambledBlock, workloads.Params{
		Rows: 3000, Cols: 3000, Density: 0.01, Groups: 16, Seed: 9,
	})
	for _, w := range []int{1, parallel.Workers()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				res, err := Spectral{Opts: SpectralOptions{K: 8, Seed: 1}}.Reorder(a)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Perm) != a.Rows {
					b.Fatal("bad permutation")
				}
			}
		})
	}
}

func BenchmarkSweep(b *testing.B) {
	a := workloads.Generate(workloads.ArchScrambledBlock, workloads.Params{
		Rows: 1500, Cols: 1500, Density: 0.012, Groups: 12, Seed: 4,
	})
	ks := []int{2, 4, 8, 16, 32}
	for _, w := range []int{1, parallel.Workers()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				entries, err := SpectralSweep(a, ks, SpectralOptions{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(entries) != len(ks) {
					b.Fatal("bad sweep")
				}
			}
		})
	}
}
