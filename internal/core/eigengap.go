package core

import (
	"errors"

	"bootes/internal/eigen"
	"bootes/internal/sparse"
)

// SelectKByEigengap chooses a cluster count with the classic eigengap
// heuristic (von Luxburg): compute the spectrum of the normalized similarity
// down to the largest candidate k and pick the candidate k with the largest
// relative gap λ_k/λ_{k+1}. A pronounced gap after k eigenvalues indicates k
// well-separated row groups.
//
// This is the training-free alternative to the paper's decision tree: it
// needs one eigensolve (which the subsequent reordering reuses conceptually)
// but sees only the spectrum, not the realized traffic, so it cannot learn
// hardware-specific trade-offs. The ablation bench compares both.
func SelectKByEigengap(a *sparse.CSR, opts SpectralOptions) (int, []float64, error) {
	n := a.Rows
	if n < 4 {
		return 0, nil, errors.New("core: matrix too small for eigengap selection")
	}
	kmax := CandidateKs[len(CandidateKs)-1]
	if kmax+1 > n {
		kmax = n - 1
	}

	hub := opts.HubThreshold
	if hub == 0 {
		hub = sparse.HubDegreeThreshold(a)
	} else if hub < 0 {
		hub = 0
	}
	var op eigen.Operator
	if opts.ImplicitSimilarity {
		op = eigen.NewImplicitSimilarityCapped(a, hub)
	} else {
		op = eigen.NewNormalizedSimilarity(sparse.SimilarityCapped(a, hub))
	}
	eo := opts.Eigen
	eo.K = kmax + 1 // need λ_{k+1} for the largest candidate
	if eo.Seed == 0 {
		eo.Seed = opts.Seed
	}
	if eo.Tol == 0 {
		eo.Tol = 1e-5
	}
	if eo.MaxRestarts == 0 {
		eo.MaxRestarts = 12
	}
	res, err := eigen.Largest(op, eo)
	if err != nil {
		return 0, nil, err
	}

	bestK, bestGap := CandidateKs[0], -1.0
	for _, k := range CandidateKs {
		if k+1 > len(res.Values) {
			break
		}
		lo, hi := res.Values[k], res.Values[k-1]
		// Relative gap between the k-th and (k+1)-th eigenvalues of M
		// (equivalently between Laplacian eigenvalues λ_k and λ_{k+1}).
		gap := hi - lo
		if gap > bestGap {
			bestGap, bestK = gap, k
		}
	}
	return bestK, res.Values, nil
}
