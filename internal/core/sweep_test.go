package core

import (
	"testing"

	"bootes/internal/workloads"
)

func TestSpectralSweepMatchesFixedK(t *testing.T) {
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 1024, Cols: 1024, Density: 0.01, Seed: 9, Groups: 8,
	})
	entries, err := SpectralSweep(a, []int{2, 4, 8}, SpectralOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries", len(entries))
	}
	for i, e := range entries {
		if e.K != []int{2, 4, 8}[i] {
			t.Errorf("entry %d has K=%d", i, e.K)
		}
		if err := e.Perm.Validate(a.Rows); err != nil {
			t.Errorf("k=%d: %v", e.K, err)
		}
		if e.PreprocessTime <= 0 {
			t.Errorf("k=%d: missing time", e.K)
		}
	}
	// Permutations for different k must generally differ.
	same := true
	for i := range entries[0].Perm {
		if entries[0].Perm[i] != entries[2].Perm[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("k=2 and k=8 produced identical permutations")
	}
}

func TestSpectralSweepErrors(t *testing.T) {
	a := workloads.Random(workloads.Params{Rows: 64, Cols: 64, Density: 0.1, Seed: 1})
	if _, err := SpectralSweep(a, nil, SpectralOptions{}); err == nil {
		t.Error("empty k list accepted")
	}
	if _, err := SpectralSweep(a, []int{1}, SpectralOptions{}); err == nil {
		t.Error("k=1 accepted")
	}
	// k > n clamps rather than failing.
	entries, err := SpectralSweep(a, []int{2, 128}, SpectralOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := entries[1].Perm.Validate(a.Rows); err != nil {
		t.Error(err)
	}
}
