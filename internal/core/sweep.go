package core

import (
	"errors"
	"time"

	"bootes/internal/cluster"
	"bootes/internal/eigen"
	"bootes/internal/parallel"
	"bootes/internal/sparse"
)

// SweepEntry is the result of one cluster count in a spectral sweep.
type SweepEntry struct {
	K              int
	Perm           sparse.Permutation
	Inertia        float64
	PreprocessTime time.Duration // embedding share + this k's k-means
}

// SpectralSweep evaluates several cluster counts with a single eigensolve:
// the embedding is computed once for max(ks) eigenvectors and each k reuses
// its leading k columns (eigenvectors are ordered by eigenvalue, so the
// prefix is exactly the k-dimensional spectral embedding). This is how the
// decision-tree labeller and the Figure 3 sweep keep 5 k-values affordable.
func SpectralSweep(a *sparse.CSR, ks []int, opts SpectralOptions) ([]SweepEntry, error) {
	if len(ks) == 0 {
		return nil, errors.New("core: empty k list")
	}
	n := a.Rows
	kmax := 0
	for _, k := range ks {
		if k < 2 {
			return nil, ErrBadK
		}
		if k > kmax {
			kmax = k
		}
	}
	if kmax > n {
		kmax = n
	}

	embedStart := time.Now()
	hub, colCounts := resolveHub(a, opts.HubThreshold)
	var op eigen.Operator
	if opts.ImplicitSimilarity {
		op = eigen.NewImplicitSimilarityCappedWithCounts(a, hub, colCounts)
	} else {
		op = eigen.NewNormalizedSimilarity(sparse.SimilarityCappedWithCounts(a, hub, colCounts))
	}
	eo := opts.Eigen
	eo.K = kmax
	if eo.Seed == 0 {
		eo.Seed = opts.Seed
	}
	res, err := eigen.Largest(op, eo)
	if err != nil {
		return nil, err
	}
	embedTime := time.Since(embedStart)

	// Row-major full embedding (n × kmax). Each k-prefix is re-normalized
	// below, so the full embedding is kept raw here.
	full := make([]float64, n*kmax)
	for j, vec := range res.Vectors {
		for i := 0; i < n; i++ {
			full[i*kmax+j] = vec[i]
		}
	}

	// Once the shared embedding exists each k's k-means + permutation is
	// independent, so the per-k work fans out across the worker pool. Each k
	// seeds its own PRNGs from opts.Seed, so the fan-out is deterministic;
	// entries are written by index, preserving the ks order.
	entries := make([]SweepEntry, len(ks))
	errs := make([]error, len(ks))
	parallel.For(len(ks), 1, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			k := ks[idx]
			kk := k
			if kk > n {
				kk = n
			}
			kmStart := time.Now()
			sub := make([]float64, n*kk)
			for i := 0; i < n; i++ {
				copy(sub[i*kk:(i+1)*kk], full[i*kmax:i*kmax+kk])
			}
			normalizeRows(sub, n, kk)
			ko := opts.KMeans
			ko.K = kk
			if ko.Seed == 0 {
				ko.Seed = opts.Seed + int64(kk)
			}
			km, err := cluster.KMeans(sub, n, kk, ko)
			if err != nil {
				errs[idx] = err
				continue
			}
			perm := cluster.PermutationFromAssignment(km.Assign, kk, sub, kk, opts.Order)
			entries[idx] = SweepEntry{
				K:              k,
				Perm:           perm,
				Inertia:        km.Inertia,
				PreprocessTime: embedTime/time.Duration(len(ks)) + time.Since(kmStart),
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// normalizeRows applies Ng–Jordan–Weiss row normalization in place.
func normalizeRows(embedding []float64, n, dim int) {
	for i := 0; i < n; i++ {
		row := embedding[i*dim : (i+1)*dim]
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		if s > 0 {
			inv := 1 / sqrtf(s)
			for d := range row {
				row[d] *= inv
			}
		}
	}
}
