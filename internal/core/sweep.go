package core

import (
	"context"
	"errors"
	"time"

	"bootes/internal/cluster"
	"bootes/internal/eigen"
	"bootes/internal/faultinject"
	"bootes/internal/obs"
	"bootes/internal/parallel"
	"bootes/internal/sparse"
)

// SweepEntry is the result of one cluster count in a spectral sweep.
type SweepEntry struct {
	K              int
	Perm           sparse.Permutation
	Inertia        float64
	PreprocessTime time.Duration // embedding share + this k's k-means
}

// SpectralSweep evaluates several cluster counts with a single eigensolve:
// the embedding is computed once for max(ks) eigenvectors and each k reuses
// its leading k columns (eigenvectors are ordered by eigenvalue, so the
// prefix is exactly the k-dimensional spectral embedding). This is how the
// decision-tree labeller and the Figure 3 sweep keep 5 k-values affordable.
func SpectralSweep(a *sparse.CSR, ks []int, opts SpectralOptions) ([]SweepEntry, error) {
	return SpectralSweepContext(context.Background(), a, ks, opts)
}

// SpectralSweepContext is SpectralSweep with cooperative cancellation: the
// context is consulted before the shared eigensolve, inside it per matvec,
// and again before each k's k-means, so a sweep cancelled mid-flight stops
// launching per-k work and returns ctx.Err() promptly.
func SpectralSweepContext(ctx context.Context, a *sparse.CSR, ks []int, opts SpectralOptions) ([]SweepEntry, error) {
	if len(ks) == 0 {
		return nil, errors.New("core: empty k list")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := a.Rows
	kmax := 0
	for _, k := range ks {
		if k < 2 {
			return nil, ErrBadK
		}
		if k > kmax {
			kmax = k
		}
	}
	if kmax > n {
		kmax = n
	}

	// The sweep span covers the whole call; the sequential shared-embedding
	// work additionally gets similarity and eigensolve spans. The per-k
	// k-means fan-out is deliberately left uninstrumented: spans from
	// concurrent workers would interleave clock reads nondeterministically,
	// and the sweep span already accounts for that time.
	endSweep := obs.StartStage(ctx, obs.StageSweep)
	defer endSweep()

	embedStart := time.Now()
	endSimilarity := obs.StartStage(ctx, obs.StageSimilarity)
	defer endSimilarity()
	op, _, _, err := buildSimilarityOperator(ctx, a, opts)
	if err != nil {
		return nil, err
	}
	endSimilarity()
	eo := opts.Eigen
	eo.K = kmax
	if eo.Seed == 0 {
		eo.Seed = opts.Seed
	}
	endEigensolve := obs.StartStage(ctx, obs.StageEigensolve)
	defer endEigensolve()
	res, err := eigen.LargestContext(ctx, op, eo)
	endEigensolve()
	if err != nil {
		return nil, err
	}
	embedTime := time.Since(embedStart)

	// Row-major full embedding (n × kmax). Each k-prefix is re-normalized
	// below, so the full embedding is kept raw here.
	full := make([]float64, n*kmax)
	for j, vec := range res.Vectors {
		for i := 0; i < n; i++ {
			full[i*kmax+j] = vec[i]
		}
	}

	// Once the shared embedding exists each k's k-means + permutation is
	// independent, so the per-k work fans out across the worker pool. Each k
	// seeds its own PRNGs from opts.Seed, so the fan-out is deterministic;
	// entries are written by index, preserving the ks order.
	entries := make([]SweepEntry, len(ks))
	errs := make([]error, len(ks))
	ferr := parallel.ForContext(ctx, len(ks), 1, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			// Injection point for fault-tolerance tests: a mid-sweep
			// cancellation (armed with an OnFire callback that cancels ctx)
			// fires at the start of a k's work, exercising the prompt-return
			// path below.
			faultinject.Fire(faultinject.SweepCancel)
			if ctx.Err() != nil {
				return
			}
			k := ks[idx]
			kk := k
			if kk > n {
				kk = n
			}
			kmStart := time.Now()
			sub := make([]float64, n*kk)
			for i := 0; i < n; i++ {
				copy(sub[i*kk:(i+1)*kk], full[i*kmax:i*kmax+kk])
			}
			normalizeRows(sub, n, kk)
			ko := opts.KMeans
			ko.K = kk
			if ko.Seed == 0 {
				ko.Seed = opts.Seed + int64(kk)
			}
			km, err := cluster.KMeansContext(ctx, sub, n, kk, ko)
			if err != nil {
				errs[idx] = err
				continue
			}
			perm := cluster.PermutationFromAssignment(km.Assign, kk, sub, kk, opts.Order)
			entries[idx] = SweepEntry{
				K:              k,
				Perm:           perm,
				Inertia:        km.Inertia,
				PreprocessTime: embedTime/time.Duration(len(ks)) + time.Since(kmStart),
			}
		}
	})
	if ferr != nil {
		return nil, ferr
	}
	for i, err := range errs {
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		if entries[i].Perm == nil {
			// Chunk abandoned between the Fire above and ctx.Err going
			// non-nil after ForContext returned.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, errors.New("core: sweep entry missing")
		}
	}
	return entries, nil
}

// normalizeRows applies Ng–Jordan–Weiss row normalization in place.
func normalizeRows(embedding []float64, n, dim int) {
	for i := 0; i < n; i++ {
		row := embedding[i*dim : (i+1)*dim]
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		if s > 0 {
			inv := 1 / sqrtf(s)
			for d := range row {
				row[d] *= inv
			}
		}
	}
}
