package core

import (
	"time"

	"bootes/internal/faultinject"
	"bootes/internal/lsh"
	"bootes/internal/sparse"
)

// Budget caps the resources one planning pass may consume. The zero value
// imposes no limits. Budgets never cause planning to fail: exceeding one
// makes the pipeline fall down its degradation ladder (lower-memory operator
// first, identity last) and record why in the result.
type Budget struct {
	// MaxWallClock bounds the planning wall time. When it expires the
	// pipeline abandons in-flight work cooperatively and returns an identity
	// plan marked Degraded, rather than an error: the caller's own context
	// still distinguishes genuine cancellation.
	MaxWallClock time.Duration
	// MaxFootprintBytes bounds the modeled peak host memory of the spectral
	// pass. Candidate configurations whose upper-bound estimate exceeds it
	// are skipped *before* any similarity storage is allocated.
	MaxFootprintBytes int64
}

// memoryExceeded reports whether a configuration with the given modeled
// footprint estimate must be skipped. The fault-injection point lets tests
// force a breach without constructing a matrix that genuinely blows a cap.
func (b Budget) memoryExceeded(estimate int64) bool {
	if faultinject.Fire(faultinject.AllocCapBreach) {
		return true
	}
	return b.MaxFootprintBytes > 0 && estimate > b.MaxFootprintBytes
}

// estimateSpectralFootprint upper-bounds the peak modeled bytes of one
// spectral pass over a with the given options, using only column degrees —
// nothing is allocated. It mirrors the footprint model in
// Spectral.ReorderContext but replaces the exact nnz(S) (known only after
// construction) with the degree-sum bound from sparse.EstimateSimilarityNNZ,
// so the estimate is always ≥ the realized footprint of the similarity phase.
func estimateSpectralFootprint(a *sparse.CSR, opts SpectralOptions) int64 {
	n := a.Rows
	if n == 0 {
		return 0
	}
	k := opts.K
	if k > n {
		k = n
	}
	hub, colCounts := resolveHub(a, opts.HubThreshold)

	var simBytes int64
	switch resolveSimilarityMode(a, opts, hub, colCounts) {
	case SimImplicit:
		// Āᵀ (row pointers + indices + values) plus two matvec temporaries.
		simBytes = int64(a.Cols+1)*8 + a.NNZ()*(4+8) + int64(n)*8*2
	case SimApprox:
		// LSH index structures plus one bit pack plus the sparsified S,
		// bounded by the collision-capped pair count or the exact bound,
		// whichever is smaller.
		p := lshParams(opts)
		bands := int64(1)
		if p.BSize > 0 {
			bands = int64(p.SigLen / p.BSize)
		}
		sNNZ := int64(n) * (1 + 2*bands)
		if p.MaxDegree > 0 {
			if capped := int64(n) * (1 + 2*int64(p.MaxDegree)); capped < sNNZ {
				sNNZ = capped
			}
		}
		if exact := sparse.EstimateSimilarityNNZ(a, hub, colCounts); exact < sNNZ {
			sNNZ = exact
		}
		simBytes = lsh.ModeledSparsifyBytes(n, p) + a.NNZ()*(4+8) + int64(n+1)*8 + sNNZ*(4+8)
	case SimBitset:
		// The exact S plus the two packed bitset structures.
		nnz := sparse.EstimateSimilarityNNZ(a, hub, colCounts)
		simBytes = int64(n+1)*8 + nnz*(4+8) + 2*a.NNZ()*(4+8)
	default: // SimExact
		nnz := sparse.EstimateSimilarityNNZ(a, hub, colCounts)
		simBytes = int64(n+1)*8 + nnz*(4+8)
	}

	maxBasis := opts.Eigen.MaxBasis
	if maxBasis == 0 {
		maxBasis = 2*k + 16
		if maxBasis < 48 {
			maxBasis = 48
		}
	}
	degreeWork := int64(n) * 8 * 2
	basisBytes := int64(maxBasis+1) * int64(n) * 8
	eigPhase := simBytes + degreeWork + basisBytes
	kmPhase := int64(n)*int64(k)*8 + int64(n)*4 + int64(k*k)*8
	foot := eigPhase
	if kmPhase > foot {
		foot = kmPhase
	}
	return foot + int64(n)*4
}
