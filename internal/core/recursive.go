package core

import (
	"context"
	"fmt"
	"time"

	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// Recursive is an extension of the spectral reorderer (DESIGN.md §5): after
// the top-level k-way clustering, any cluster larger than MaxClusterRows is
// extracted as a submatrix and spectrally reordered again, recursively. This
// addresses the regime where the natural group count exceeds the largest
// candidate k (k=32): a flat clustering merges several groups per cluster,
// while the recursion teases them apart at logarithmic extra cost.
type Recursive struct {
	// K is the branching factor per level (a CandidateKs value; default 8).
	K int
	// MaxClusterRows stops recursion once clusters are at most this many
	// rows (default 256).
	MaxClusterRows int
	// MaxDepth bounds recursion depth (default 4).
	MaxDepth int
	// Opts carries the base spectral options.
	Opts SpectralOptions
}

func (r Recursive) withDefaults() Recursive {
	if r.K == 0 {
		r.K = 8
	}
	if r.MaxClusterRows == 0 {
		r.MaxClusterRows = 256
	}
	if r.MaxDepth == 0 {
		r.MaxDepth = 4
	}
	return r
}

// Name implements reorder.Reorderer.
func (r Recursive) Name() string { return fmt.Sprintf("BootesRec(k=%d)", r.withDefaults().K) }

// Reorder implements reorder.Reorderer.
func (r Recursive) Reorder(a *sparse.CSR) (*reorder.Result, error) {
	return r.ReorderContext(context.Background(), a)
}

// ReorderContext is Reorder with cooperative cancellation: the context is
// checked at every recursion node (and inside each node's spectral pass), so
// a cancelled recursion abandons unexplored subtrees and returns ctx.Err().
func (r Recursive) ReorderContext(ctx context.Context, a *sparse.CSR) (*reorder.Result, error) {
	r = r.withDefaults()
	start := time.Now()
	perm, foot, err := r.reorderRows(ctx, a, 0)
	if err != nil {
		return nil, err
	}
	if err := perm.Validate(a.Rows); err != nil {
		return nil, fmt.Errorf("core: recursive reorder produced invalid permutation: %w", err)
	}
	return &reorder.Result{
		Perm:           perm,
		PreprocessTime: time.Since(start),
		FootprintBytes: foot,
		Reordered:      !perm.IsIdentity(),
		Extra:          map[string]float64{"k": float64(r.K), "maxClusterRows": float64(r.MaxClusterRows)},
	}, nil
}

// reorderRows reorders a (which may be a submatrix view) and recurses into
// oversized clusters. It returns a permutation over a's rows and the peak
// modeled footprint seen in the subtree.
func (r Recursive) reorderRows(ctx context.Context, a *sparse.CSR, depth int) (sparse.Permutation, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	n := a.Rows
	if n <= r.MaxClusterRows || depth >= r.MaxDepth || n < 2*r.K {
		return sparse.IdentityPerm(n), int64(n) * 4, nil
	}
	opts := r.Opts
	opts.K = r.K
	sr, err := Spectral{Opts: opts}.ReorderContext(ctx, a)
	if err != nil {
		return nil, 0, err
	}
	peak := sr.FootprintBytes

	// Group rows by cluster in the order the top-level permutation chose,
	// then recurse into each oversized cluster.
	clusterOf := sr.Assign
	// Segment sr.Perm into runs of equal cluster id (PermutationFromAssignment
	// lays clusters out contiguously).
	var out sparse.Permutation
	for lo := 0; lo < n; {
		hi := lo + 1
		c := clusterOf[sr.Perm[lo]]
		for hi < n && clusterOf[sr.Perm[hi]] == c {
			hi++
		}
		segment := sr.Perm[lo:hi]
		if len(segment) > r.MaxClusterRows && depth+1 < r.MaxDepth {
			sub, err := sparse.ExtractRows(a, segment)
			if err != nil {
				return nil, 0, err
			}
			subPerm, subFoot, err := r.reorderRows(ctx, sub, depth+1)
			if err != nil {
				return nil, 0, err
			}
			if subFoot > peak {
				peak = subFoot
			}
			for _, idx := range subPerm {
				out = append(out, segment[idx])
			}
		} else {
			out = append(out, segment...)
		}
		lo = hi
	}
	return out, peak, nil
}

var _ reorder.Reorderer = Recursive{}
