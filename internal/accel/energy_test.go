package accel

import (
	"testing"

	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func TestEnergyDefaults(t *testing.T) {
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 512, Cols: 512, Density: 0.02, Seed: 1, Groups: 8,
	})
	res, err := SimulateRowWise(Config{Name: "e", PEs: 8, CacheBytes: 8 << 10}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Energy(EnergyModel{})
	if e.ComputePJ <= 0 || e.DRAMPJ <= 0 || e.CachePJ <= 0 {
		t.Fatalf("energy components missing: %+v", e)
	}
	if e.TotalPJ() != e.ComputePJ+e.DRAMPJ+e.CachePJ {
		t.Error("TotalPJ inconsistent")
	}
	// The paper's §5.2 point: data movement dominates energy.
	if e.MemoryShare() < 0.5 {
		t.Errorf("memory share %.2f, expected movement-dominated", e.MemoryShare())
	}
	// Custom coefficients are respected.
	e2 := res.Energy(EnergyModel{PJPerMAC: 1000, PJPerDRAMByte: 0.0001, PJPerCacheByte: 0.0001})
	if e2.MemoryShare() > 0.5 {
		t.Error("custom compute-heavy model ignored")
	}
}

func TestEnergyDropsWithTraffic(t *testing.T) {
	// A reordering that cuts traffic must cut energy under the default
	// model (compute is ordering-invariant).
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 2048, Cols: 2048, Density: 0.005, Seed: 2, Groups: 16,
	})
	cfg := Config{Name: "e", PEs: 8, CacheBytes: 16 << 10}
	base, err := SimulateRowWise(cfg, a, a)
	if err != nil {
		t.Fatal(err)
	}
	// Cheating perm: group rows by first column (recovers most locality).
	perm := sparse.IdentityPerm(a.Rows)
	firstCol := func(r int32) int32 {
		row := a.Row(int(r))
		if len(row) == 0 {
			return 1 << 30
		}
		return row[0]
	}
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && firstCol(perm[j]) < firstCol(perm[j-1]); j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	ap, err := sparse.PermuteRows(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	better, err := SimulateRowWise(cfg, ap, a)
	if err != nil {
		t.Fatal(err)
	}
	if better.Traffic.Total() >= base.Traffic.Total() {
		t.Skip("ordering did not help on this instance")
	}
	e0 := base.Energy(EnergyModel{})
	e1 := better.Energy(EnergyModel{})
	if e1.TotalPJ() >= e0.TotalPJ() {
		t.Errorf("energy did not drop: %.0f -> %.0f pJ", e0.TotalPJ(), e1.TotalPJ())
	}
	if e1.ComputePJ != e0.ComputePJ {
		t.Error("compute energy should be ordering-invariant")
	}
}

func TestEmptyEnergy(t *testing.T) {
	z := sparse.Zero(2, 2)
	res, err := SimulateRowWise(Flexagon, z, z)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Energy(EnergyModel{})
	if e.MemoryShare() != 0 && e.TotalPJ() == 0 {
		t.Error("empty run energy inconsistent")
	}
}
