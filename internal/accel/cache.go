// Package accel models the class of row-wise-product SpGEMM accelerators
// Bootes targets (Flexagon, GAMMA, Trapezoid): a PE array sharing a
// set-associative on-chip cache in front of HBM. The model tracks off-chip
// traffic separately for operands A, B and C — the paper's primary metric —
// and provides a first-order cycle model (compute/memory roofline with
// bandwidth contention) for end-to-end speedup studies. Inner-product and
// outer-product dataflow models back the Table 1 comparison.
package accel

// Cache is a set-associative cache with true-LRU replacement over fixed-size
// lines. Addresses are abstract byte addresses in the simulated accelerator
// address space.
type Cache struct {
	lineBytes  int64
	ways       int
	sets       int64
	tags       []int64 // sets×ways; -1 = invalid
	lru        []int64 // per-line last-use stamp
	stamp      int64
	Hits       int64
	Misses     int64
	Evictions  int64
	DirtyLines map[int64]struct{} // tracked only when write-back accounting is on
	writeBack  bool
}

// NewCache builds a cache of capacity bytes with the given line size and
// associativity. Capacity is rounded down to a whole number of sets; a
// minimum of one set is kept.
func NewCache(capacity int64, lineBytes int64, ways int) *Cache {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	if ways <= 0 {
		ways = 16
	}
	sets := capacity / (lineBytes * int64(ways))
	if sets < 1 {
		sets = 1
	}
	// Power-of-two sets make indexing a mask.
	p := int64(1)
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	c := &Cache{
		lineBytes: lineBytes,
		ways:      ways,
		sets:      sets,
		tags:      make([]int64, sets*int64(ways)),
		lru:       make([]int64, sets*int64(ways)),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int64 { return c.lineBytes }

// CapacityBytes returns the effective capacity after set rounding.
func (c *Cache) CapacityBytes() int64 { return c.sets * int64(c.ways) * c.lineBytes }

// Reset invalidates all lines and clears counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.lru[i] = 0
	}
	c.stamp = 0
	c.Hits = 0
	c.Misses = 0
	c.Evictions = 0
}

// AccessLine touches the single line containing addr and returns true on a
// miss (i.e. the line had to be fetched from DRAM).
func (c *Cache) AccessLine(addr int64) bool {
	line := addr / c.lineBytes
	set := line & (c.sets - 1)
	base := set * int64(c.ways)
	c.stamp++
	var victim int64 = base
	oldest := c.lru[base]
	for w := int64(0); w < int64(c.ways); w++ {
		i := base + w
		if c.tags[i] == line {
			c.lru[i] = c.stamp
			c.Hits++
			return false
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	if c.tags[victim] != -1 {
		c.Evictions++
	}
	c.tags[victim] = line
	c.lru[victim] = c.stamp
	c.Misses++
	return true
}

// AccessRange touches every line in [addr, addr+size) and returns the number
// of bytes fetched from DRAM (misses × line size).
func (c *Cache) AccessRange(addr, size int64) (missBytes int64) {
	if size <= 0 {
		return 0
	}
	first := addr / c.lineBytes
	last := (addr + size - 1) / c.lineBytes
	for line := first; line <= last; line++ {
		if c.AccessLine(line * c.lineBytes) {
			missBytes += c.lineBytes
		}
	}
	return missBytes
}
