package accel

import (
	"errors"
	"math"

	"bootes/internal/sparse"
)

// Traffic is an off-chip byte count broken down by operand, the quantity
// Figure 4 of the paper plots.
type Traffic struct {
	ABytes int64 // reads of input matrix A
	BBytes int64 // reads of input matrix B
	CBytes int64 // writes (and psum spills) of output matrix C
}

// Total returns the summed off-chip traffic.
func (t Traffic) Total() int64 { return t.ABytes + t.BBytes + t.CBytes }

// Add accumulates o into t.
func (t *Traffic) Add(o Traffic) {
	t.ABytes += o.ABytes
	t.BBytes += o.BBytes
	t.CBytes += o.CBytes
}

// Result is the outcome of simulating one SpGEMM on one accelerator.
type Result struct {
	Config Config
	// Traffic is the measured off-chip traffic.
	Traffic Traffic
	// Compulsory is the lower-bound traffic with an unbounded cache:
	// read A and (referenced) B once, write C once.
	Compulsory Traffic
	// Flops is the multiply-accumulate count (Gustavson partial products).
	Flops int64
	// OutputNNZ is nnz(C).
	OutputNNZ int64
	// Cycles is the roofline execution estimate:
	// max(compute cycles, memory cycles) with full PE utilization.
	Cycles int64
	// CacheHits/CacheMisses expose the shared-cache behaviour.
	CacheHits, CacheMisses int64
}

// Seconds converts the cycle estimate to seconds at the configured clock.
func (r *Result) Seconds() float64 {
	cfg := r.Config.withDefaults()
	return float64(r.Cycles) / (cfg.ClockGHz * 1e9)
}

// PEUtilization returns the fraction of cycles the PE array spends computing
// (1.0 = compute-bound, <1 = memory-bound) — the paper's §5.4 observation
// that reduced traffic "enables more simultaneous computations" corresponds
// to utilization rising toward 1.
func (r *Result) PEUtilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	cfg := r.Config.withDefaults()
	computeCycles := float64(r.Flops) / float64(cfg.PEs)
	u := computeCycles / float64(r.Cycles)
	if u > 1 {
		u = 1
	}
	return u
}

// NormalizedTraffic returns traffic components divided by total compulsory
// traffic, the normalization Figure 4 uses.
func (r *Result) NormalizedTraffic() (a, b, c float64) {
	total := float64(r.Compulsory.Total())
	if total == 0 {
		return 0, 0, 0
	}
	return float64(r.Traffic.ABytes) / total, float64(r.Traffic.BBytes) / total, float64(r.Traffic.CBytes) / total
}

// ErrDim reports incompatible SpGEMM operands.
var ErrDim = errors.New("accel: dimension mismatch")

// SimulateRowWise runs the row-wise-product (Gustavson) dataflow for C=A·B
// on the configured accelerator and returns traffic and cycle estimates.
//
// The model captures what matters for reordering studies:
//
//   - A is streamed in once (compulsory; its layout is sequential).
//   - Each nonzero A[i,k] triggers a fetch of row k of B through the shared
//     cache; reuse of B rows across nearby rows of A is what reordering
//     improves, and cache misses become DRAM traffic.
//   - PEs process consecutive A rows concurrently (round-robin interleave),
//     so rows mapped to different PEs contend for the shared cache exactly
//     as they do in the real designs.
//   - C rows are written once; output rows whose accumulator exceeds the
//     per-PE buffer spill partial sums (write + re-read).
func SimulateRowWise(cfg Config, a, b *sparse.CSR) (*Result, error) {
	cfg = cfg.withDefaults()
	if a.Cols != b.Rows {
		return nil, ErrDim
	}
	res := &Result{Config: cfg}

	elem := cfg.ElementBytes
	// B's row k occupies [bOffset[k], bOffset[k+1]) in the simulated address
	// space (CSR payload laid out contiguously).
	bOffsets := make([]int64, b.Rows+1)
	for k := 0; k <= b.Rows; k++ {
		bOffsets[k] = b.RowPtr[k] * elem
	}

	cache := NewCache(cfg.CacheBytes, cfg.LineBytes, cfg.Ways)

	// Compulsory: A once, referenced rows of B once, C once.
	res.Compulsory.ABytes = a.NNZ()*elem + int64(a.Rows+1)*8
	bReferenced := make([]bool, b.Rows)
	for _, k := range a.Col {
		bReferenced[k] = true
	}
	for k, ref := range bReferenced {
		if ref {
			res.Compulsory.BBytes += (b.RowPtr[k+1] - b.RowPtr[k]) * elem
		}
	}

	// Output row sizes and flops via a symbolic pass.
	flops, err := sparse.FlopCount(a, b)
	if err != nil {
		return nil, err
	}
	res.Flops = flops
	cPattern, err := sparse.SpGEMMPattern(a.Pattern(), b.Pattern())
	if err != nil {
		return nil, err
	}
	res.OutputNNZ = cPattern.NNZ()
	res.Compulsory.CBytes = res.OutputNNZ*elem + int64(a.Rows+1)*8

	// A traffic: streamed once.
	res.Traffic.ABytes = res.Compulsory.ABytes

	// Interleaved execution: PE p owns rows p, p+PEs, p+2·PEs, … Each PE
	// consumes one A-nonzero per turn, fetching the matching B row through
	// its private buffer (when configured) and then the shared cache. This
	// reproduces the inter-row cache contention that the window-size
	// reasoning in the paper (and GAMMA's W) is about.
	type peState struct {
		row     int   // current A row
		pos     int64 // next A-nonzero position within the row
		done    bool
		private *Cache // optional per-PE buffer in front of the shared cache
	}
	pes := make([]peState, cfg.PEs)
	if cfg.PEPrivateCacheBytes > 0 {
		for i := range pes {
			pes[i].private = NewCache(cfg.PEPrivateCacheBytes, cfg.LineBytes, 4)
		}
	}
	nextRow := 0
	assign := func(p *peState) {
		for {
			if nextRow >= a.Rows {
				p.done = true
				return
			}
			r := nextRow
			nextRow++
			if a.RowNNZ(r) > 0 {
				p.row = r
				p.pos = a.RowPtr[r]
				return
			}
		}
	}
	for i := range pes {
		assign(&pes[i])
	}
	active := 0
	for i := range pes {
		if !pes[i].done {
			active++
		}
	}
	var bTraffic int64
	for active > 0 {
		for i := range pes {
			pe := &pes[i]
			if pe.done {
				continue
			}
			k := int(a.Col[pe.pos])
			size := bOffsets[k+1] - bOffsets[k]
			if size > 0 {
				if pe.private != nil {
					// Only the lines missing in the private buffer reach the
					// shared cache; only shared-cache misses reach DRAM.
					first := bOffsets[k] / cfg.LineBytes
					last := (bOffsets[k] + size - 1) / cfg.LineBytes
					for line := first; line <= last; line++ {
						if pe.private.AccessLine(line * cfg.LineBytes) {
							if cache.AccessLine(line * cfg.LineBytes) {
								bTraffic += cfg.LineBytes
							}
						}
					}
				} else {
					bTraffic += cache.AccessRange(bOffsets[k], size)
				}
			}
			pe.pos++
			if pe.pos >= a.RowPtr[pe.row+1] {
				assign(pe)
				if pe.done {
					active--
				}
			}
		}
	}
	res.Traffic.BBytes = bTraffic

	// C traffic: each output row written once; rows exceeding the PE buffer
	// spill partial sums (one extra write+read round per overflow multiple).
	var cBytes int64
	for i := 0; i < cPattern.Rows; i++ {
		rowBytes := int64(cPattern.RowNNZ(i)) * elem
		cBytes += rowBytes
		if rowBytes > cfg.PERowBufferBytes {
			spill := rowBytes - cfg.PERowBufferBytes
			cBytes += 2 * spill // write out + read back for final merge
		}
	}
	cBytes += int64(a.Rows+1) * 8
	res.Traffic.CBytes = cBytes

	res.CacheHits = cache.Hits
	res.CacheMisses = cache.Misses

	// Roofline cycles: PEs retire one MAC per cycle; DRAM moves
	// HBMBytesPerCycle per cycle; the slower side dominates.
	computeCycles := int64(math.Ceil(float64(flops) / float64(cfg.PEs)))
	memCycles := int64(math.Ceil(float64(res.Traffic.Total()) / float64(cfg.HBMBytesPerCycle)))
	res.Cycles = computeCycles
	if memCycles > res.Cycles {
		res.Cycles = memCycles
	}
	return res, nil
}
