package accel

import (
	"testing"

	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func TestCacheLRUBasics(t *testing.T) {
	// 2 sets × 2 ways × 64 B lines = 256 B.
	c := NewCache(256, 64, 2)
	if c.CapacityBytes() != 256 {
		t.Fatalf("capacity %d", c.CapacityBytes())
	}
	if !c.AccessLine(0) {
		t.Error("cold access should miss")
	}
	if c.AccessLine(0) {
		t.Error("second access should hit")
	}
	// Lines 0 and 128 map to set 0 (two sets of 64 B lines).
	c.AccessLine(128)
	if c.AccessLine(0) || c.AccessLine(128) {
		t.Error("both ways should be resident")
	}
	// Third distinct line in set 0 evicts LRU (line 0 was touched after 128,
	// so 128 is evicted... actually 0 then 128 then 0,128: LRU is 0).
	c.AccessLine(256)
	if c.Evictions == 0 {
		t.Error("expected an eviction")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(128, 64, 2) // 1 set, 2 ways
	c.AccessLine(0)
	c.AccessLine(64)
	c.AccessLine(0)   // 64 is now LRU
	c.AccessLine(128) // evicts 64
	if c.AccessLine(0) {
		t.Error("line 0 should have survived (MRU)")
	}
	if !c.AccessLine(64) {
		t.Error("line 64 should have been evicted")
	}
}

func TestAccessRangeSpansLines(t *testing.T) {
	c := NewCache(1<<20, 64, 16)
	miss := c.AccessRange(10, 100) // spans lines 0 and 1
	if miss != 128 {
		t.Errorf("missBytes = %d, want 128", miss)
	}
	if c.AccessRange(10, 100) != 0 {
		t.Error("second range access should fully hit")
	}
	if c.AccessRange(0, 0) != 0 {
		t.Error("empty range should be free")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Name: "X", PEs: 4, CacheBytes: 1 << 20}.withDefaults()
	if cfg.LineBytes != 64 || cfg.Ways != 16 || cfg.ElementBytes != 12 {
		t.Error("defaults not applied")
	}
	if len(Targets()) != 3 {
		t.Error("want 3 target accelerators")
	}
}

func smallSuite() (a *sparse.CSR) {
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 1024, Cols: 1024, Density: 0.01, Seed: 4, Groups: 8,
	})
}

func TestRowWiseTrafficBounds(t *testing.T) {
	a := smallSuite()
	cfg := Config{Name: "tiny", PEs: 8, CacheBytes: 8 << 10}
	res, err := SimulateRowWise(cfg, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic.BBytes < res.Compulsory.BBytes {
		t.Errorf("B traffic %d below compulsory %d", res.Traffic.BBytes, res.Compulsory.BBytes)
	}
	if res.Traffic.ABytes != res.Compulsory.ABytes {
		t.Error("A should stream exactly once")
	}
	if res.Traffic.CBytes < res.Compulsory.CBytes {
		t.Error("C traffic below compulsory")
	}
	if res.Flops <= 0 || res.OutputNNZ <= 0 || res.Cycles <= 0 {
		t.Error("missing counters")
	}
	if res.CacheHits+res.CacheMisses == 0 {
		t.Error("cache untouched")
	}
}

func TestRowWiseLargerCacheNeverWorse(t *testing.T) {
	a := smallSuite()
	small, err := SimulateRowWise(Config{Name: "s", PEs: 8, CacheBytes: 4 << 10}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SimulateRowWise(Config{Name: "b", PEs: 8, CacheBytes: 1 << 20}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if big.Traffic.BBytes > small.Traffic.BBytes {
		t.Errorf("bigger cache increased traffic: %d > %d", big.Traffic.BBytes, small.Traffic.BBytes)
	}
}

func TestRowWiseReorderingReducesTraffic(t *testing.T) {
	// Group rows by hidden template via a cheating permutation (sort rows by
	// their first column) and verify the simulator rewards it.
	a := smallSuite()
	perm := sparse.IdentityPerm(a.Rows)
	firstCol := func(r int32) int32 {
		row := a.Row(int(r))
		if len(row) == 0 {
			return 1 << 30
		}
		return row[0]
	}
	// Simple stable sort by first column.
	ordered := append(sparse.Permutation(nil), perm...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && firstCol(ordered[j]) < firstCol(ordered[j-1]); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	ap, err := sparse.PermuteRows(a, ordered)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Name: "t", PEs: 8, CacheBytes: 8 << 10}
	base, err := SimulateRowWise(cfg, a, a)
	if err != nil {
		t.Fatal(err)
	}
	better, err := SimulateRowWise(cfg, ap, a)
	if err != nil {
		t.Fatal(err)
	}
	if better.Traffic.BBytes >= base.Traffic.BBytes {
		t.Errorf("grouped order traffic %d not below original %d", better.Traffic.BBytes, base.Traffic.BBytes)
	}
}

func TestRowWiseDimensionError(t *testing.T) {
	if _, err := SimulateRowWise(Flexagon, sparse.Zero(2, 3), sparse.Zero(4, 4)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestDataflowComparisonTable1(t *testing.T) {
	// The Table 1 qualitative claims, quantitatively: on a sparse matrix
	// with a small cache, inner product over-fetches B, outer product
	// explodes C (psum) traffic, and row-wise sits in between on both.
	a := smallSuite()
	cfg := Config{Name: "t1", PEs: 8, CacheBytes: 8 << 10}
	inner, err := SimulateDataflow(InnerProduct, cfg, a, a)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := SimulateDataflow(OuterProduct, cfg, a, a)
	if err != nil {
		t.Fatal(err)
	}
	row, err := SimulateDataflow(RowWiseProduct, cfg, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !(inner.Traffic.BBytes > row.Traffic.BBytes) {
		t.Errorf("inner B traffic %d should exceed row-wise %d", inner.Traffic.BBytes, row.Traffic.BBytes)
	}
	if !(outer.Traffic.CBytes > row.Traffic.CBytes) {
		t.Errorf("outer C traffic %d should exceed row-wise %d", outer.Traffic.CBytes, row.Traffic.CBytes)
	}
	if !(outer.Traffic.BBytes <= row.Traffic.BBytes) {
		t.Errorf("outer B traffic %d should not exceed row-wise %d (perfect input reuse)", outer.Traffic.BBytes, row.Traffic.BBytes)
	}
	// Row-wise total should beat both extremes on this workload.
	if row.Traffic.Total() >= inner.Traffic.Total() || row.Traffic.Total() >= outer.Traffic.Total() {
		t.Errorf("row-wise total %d should be least (inner %d, outer %d)",
			row.Traffic.Total(), inner.Traffic.Total(), outer.Traffic.Total())
	}
}

func TestDataflowKindString(t *testing.T) {
	if InnerProduct.String() != "Inner" || OuterProduct.String() != "Outer" || RowWiseProduct.String() != "Row-wise" {
		t.Error("dataflow names wrong")
	}
	if DataflowKind(99).String() != "Unknown" {
		t.Error("unknown dataflow name wrong")
	}
	if _, err := SimulateDataflow(DataflowKind(99), Flexagon, sparse.Zero(1, 1), sparse.Zero(1, 1)); err == nil {
		t.Error("unknown dataflow accepted")
	}
}

func TestNormalizedTraffic(t *testing.T) {
	a := smallSuite()
	res, err := SimulateRowWise(Config{Name: "n", PEs: 8, CacheBytes: 8 << 10}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	na, nb, nc := res.NormalizedTraffic()
	if na <= 0 || nb <= 0 || nc <= 0 {
		t.Error("normalized components should be positive")
	}
	if na+nb+nc < 1 {
		t.Error("total normalized traffic below 1 (less than compulsory?)")
	}
	if res.Seconds() <= 0 {
		t.Error("Seconds should be positive")
	}
}

func TestEmptyMatrixSimulation(t *testing.T) {
	z := sparse.Zero(4, 4)
	res, err := SimulateRowWise(Flexagon, z, z)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic.BBytes != 0 || res.Flops != 0 || res.OutputNNZ != 0 {
		t.Error("empty matrix produced traffic")
	}
}

func TestPEPrivateCacheReducesSharedPressure(t *testing.T) {
	a := smallSuite()
	flat, err := SimulateRowWise(Config{Name: "flat", PEs: 8, CacheBytes: 8 << 10}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	twoLevel, err := SimulateRowWise(Config{
		Name: "2lvl", PEs: 8, CacheBytes: 8 << 10, PEPrivateCacheBytes: 2 << 10,
	}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	// The private level filters repeated accesses within a PE's current
	// rows, so DRAM traffic must not increase and shared-cache accesses drop.
	if twoLevel.Traffic.BBytes > flat.Traffic.BBytes {
		t.Errorf("two-level traffic %d exceeds flat %d", twoLevel.Traffic.BBytes, flat.Traffic.BBytes)
	}
	if twoLevel.CacheHits+twoLevel.CacheMisses >= flat.CacheHits+flat.CacheMisses {
		t.Errorf("private level did not filter shared-cache accesses (%d vs %d)",
			twoLevel.CacheHits+twoLevel.CacheMisses, flat.CacheHits+flat.CacheMisses)
	}
	if twoLevel.Traffic.BBytes < twoLevel.Compulsory.BBytes {
		t.Error("two-level traffic below compulsory")
	}
}

func TestPEUtilization(t *testing.T) {
	a := smallSuite()
	// Memory-starved config: tiny bandwidth → low utilization.
	starved, err := SimulateRowWise(Config{Name: "slow", PEs: 8, CacheBytes: 8 << 10, HBMBytesPerCycle: 1}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	// Generous bandwidth → compute-bound, utilization 1.
	fast, err := SimulateRowWise(Config{Name: "fast", PEs: 8, CacheBytes: 8 << 10, HBMBytesPerCycle: 1 << 20}, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if u := starved.PEUtilization(); u > 0.5 {
		t.Errorf("starved utilization %v, want low", u)
	}
	if u := fast.PEUtilization(); u < 0.99 {
		t.Errorf("fast utilization %v, want ≈1", u)
	}
	var empty Result
	if empty.PEUtilization() != 0 {
		t.Error("empty result utilization should be 0")
	}
}
