package accel

import (
	"math"

	"bootes/internal/sparse"
)

// DataflowKind labels the three canonical SpGEMM dataflows (paper Table 1).
type DataflowKind int

// The three dataflows compared in the paper's background section.
const (
	InnerProduct DataflowKind = iota
	OuterProduct
	RowWiseProduct
)

// String names the dataflow.
func (k DataflowKind) String() string {
	switch k {
	case InnerProduct:
		return "Inner"
	case OuterProduct:
		return "Outer"
	case RowWiseProduct:
		return "Row-wise"
	default:
		return "Unknown"
	}
}

// SimulateDataflow runs one of the three dataflows. Row-wise uses the full
// cache simulation; inner and outer products use first-order analytic
// models that capture their defining behaviours: the inner product refetches
// B once per output row sweep (poor input reuse, index intersection), and
// the outer product spills large partial-product matrices (poor output
// reuse). These back the Table 1 qualitative comparison quantitatively.
func SimulateDataflow(kind DataflowKind, cfg Config, a, b *sparse.CSR) (*Result, error) {
	switch kind {
	case RowWiseProduct:
		return SimulateRowWise(cfg, a, b)
	case InnerProduct:
		return simulateInner(cfg, a, b)
	case OuterProduct:
		return simulateOuter(cfg, a, b)
	default:
		return nil, ErrDim
	}
}

func compulsory(cfg Config, a, b, cPattern *sparse.CSR) Traffic {
	elem := cfg.ElementBytes
	var t Traffic
	t.ABytes = a.NNZ()*elem + int64(a.Rows+1)*8
	bReferenced := make([]bool, b.Rows)
	for _, k := range a.Col {
		bReferenced[k] = true
	}
	for k, ref := range bReferenced {
		if ref {
			t.BBytes += (b.RowPtr[k+1] - b.RowPtr[k]) * elem
		}
	}
	t.CBytes = cPattern.NNZ()*elem + int64(a.Rows+1)*8
	return t
}

// simulateInner models the inner-product dataflow: for every non-empty row
// of A the entire referenced portion of B is swept column by column, so B is
// refetched once per row sweep whenever it exceeds the cache. Index
// intersection makes every comparison an "op".
func simulateInner(cfg Config, a, b *sparse.CSR) (*Result, error) {
	cfg = cfg.withDefaults()
	if a.Cols != b.Rows {
		return nil, ErrDim
	}
	res := &Result{Config: cfg}
	elem := cfg.ElementBytes

	cPattern, err := sparse.SpGEMMPattern(a.Pattern(), b.Pattern())
	if err != nil {
		return nil, err
	}
	res.OutputNNZ = cPattern.NNZ()
	res.Compulsory = compulsory(cfg, a, b, cPattern)

	nonEmptyRows := int64(0)
	for i := 0; i < a.Rows; i++ {
		if a.RowNNZ(i) > 0 {
			nonEmptyRows++
		}
	}
	bt := sparse.Transpose(b.Pattern())
	nonEmptyCols := int64(0)
	for j := 0; j < bt.Rows; j++ {
		if bt.RowNNZ(j) > 0 {
			nonEmptyCols++
		}
	}

	// Index-intersection work: every evaluated (row, column) pair walks both
	// index lists: Σ_i Σ_j (nnzA(i)+nnzB(:,j)) over non-empty pairs.
	res.Flops = a.NNZ()*nonEmptyCols + b.NNZ()*nonEmptyRows

	bBytes := b.NNZ() * elem
	res.Traffic.ABytes = res.Compulsory.ABytes // A row held in PE buffer per sweep
	if bBytes > cfg.CacheBytes {
		res.Traffic.BBytes = nonEmptyRows * bBytes // refetched every sweep
	} else {
		res.Traffic.BBytes = bBytes
	}
	res.Traffic.CBytes = res.Compulsory.CBytes // perfect output reuse

	computeCycles := int64(math.Ceil(float64(res.Flops) / float64(cfg.PEs)))
	memCycles := int64(math.Ceil(float64(res.Traffic.Total()) / float64(cfg.HBMBytesPerCycle)))
	res.Cycles = maxI64(computeCycles, memCycles)
	return res, nil
}

// simulateOuter models the outer-product dataflow: inputs stream exactly
// once (perfect input reuse) but the partial-product matrices — one per
// shared dimension index — are spilled and re-read for merging when they
// exceed on-chip storage.
func simulateOuter(cfg Config, a, b *sparse.CSR) (*Result, error) {
	cfg = cfg.withDefaults()
	if a.Cols != b.Rows {
		return nil, ErrDim
	}
	res := &Result{Config: cfg}
	elem := cfg.ElementBytes

	cPattern, err := sparse.SpGEMMPattern(a.Pattern(), b.Pattern())
	if err != nil {
		return nil, err
	}
	res.OutputNNZ = cPattern.NNZ()
	res.Compulsory = compulsory(cfg, a, b, cPattern)

	flops, err := sparse.FlopCount(a, b)
	if err != nil {
		return nil, err
	}
	res.Flops = flops

	res.Traffic.ABytes = res.Compulsory.ABytes
	res.Traffic.BBytes = res.Compulsory.BBytes
	psumBytes := flops * elem // every partial product materializes once
	finalBytes := res.OutputNNZ*elem + int64(a.Rows+1)*8
	if psumBytes > cfg.CacheBytes {
		// Spill all psums, read them back for the merge, write the result.
		res.Traffic.CBytes = 2*psumBytes + finalBytes
	} else {
		res.Traffic.CBytes = finalBytes
	}

	computeCycles := int64(math.Ceil(float64(flops) / float64(cfg.PEs)))
	memCycles := int64(math.Ceil(float64(res.Traffic.Total()) / float64(cfg.HBMBytesPerCycle)))
	res.Cycles = maxI64(computeCycles, memCycles)
	return res, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
