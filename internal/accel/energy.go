package accel

// EnergyModel holds first-order energy coefficients. The defaults follow the
// numbers the paper cites (Dally): moving a byte from off-chip memory costs
// three to four orders of magnitude more energy than a multiply-accumulate,
// which is why traffic reduction translates directly into efficiency.
type EnergyModel struct {
	// PJPerMAC is the energy of one multiply-accumulate (default 1 pJ).
	PJPerMAC float64
	// PJPerDRAMByte is the energy of moving one byte from HBM/DRAM
	// (default 40 pJ/byte ≈ 320 pJ per 8-byte word, mid-range of the
	// 4000×–64000× per-word factors the paper quotes).
	PJPerDRAMByte float64
	// PJPerCacheByte is the energy of an on-chip cache access
	// (default 1 pJ/byte).
	PJPerCacheByte float64
}

// DefaultEnergy returns the literature-derived coefficients.
func DefaultEnergy() EnergyModel {
	return EnergyModel{PJPerMAC: 1, PJPerDRAMByte: 40, PJPerCacheByte: 1}
}

// Energy summarizes where a run's energy went (picojoules).
type Energy struct {
	ComputePJ float64 // MACs
	DRAMPJ    float64 // off-chip traffic
	CachePJ   float64 // on-chip cache accesses
}

// TotalPJ returns the summed energy.
func (e Energy) TotalPJ() float64 { return e.ComputePJ + e.DRAMPJ + e.CachePJ }

// MemoryShare returns the fraction of energy spent on data movement
// (DRAM + cache), the quantity the paper's efficiency argument hinges on.
func (e Energy) MemoryShare() float64 {
	t := e.TotalPJ()
	if t == 0 {
		return 0
	}
	return (e.DRAMPJ + e.CachePJ) / t
}

// Energy estimates the run's energy under the model m (zero-value m selects
// DefaultEnergy).
func (r *Result) Energy(m EnergyModel) Energy {
	if m == (EnergyModel{}) {
		m = DefaultEnergy()
	}
	cfg := r.Config.withDefaults()
	cacheBytes := float64(r.CacheHits+r.CacheMisses) * float64(cfg.LineBytes)
	return Energy{
		ComputePJ: float64(r.Flops) * m.PJPerMAC,
		DRAMPJ:    float64(r.Traffic.Total()) * m.PJPerDRAMByte,
		CachePJ:   cacheBytes * m.PJPerCacheByte,
	}
}
