package accel

import (
	"strings"
	"testing"
)

func TestCacheLineBytesAndReset(t *testing.T) {
	c := NewCache(1<<10, 64, 4)
	if got := c.LineBytes(); got != 64 {
		t.Fatalf("LineBytes = %d, want 64", got)
	}
	// Touch each line twice in a row (a guaranteed hit even under LRU
	// thrash) while scanning past capacity so evictions happen too.
	for addr := int64(0); addr < 2<<10; addr += 64 {
		c.AccessLine(addr)
		c.AccessLine(addr)
	}
	if c.Hits == 0 || c.Misses == 0 || c.Evictions == 0 {
		t.Fatalf("expected activity before reset: hits=%d misses=%d evictions=%d",
			c.Hits, c.Misses, c.Evictions)
	}
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 || c.Evictions != 0 {
		t.Errorf("counters survived Reset: hits=%d misses=%d evictions=%d",
			c.Hits, c.Misses, c.Evictions)
	}
	// Every line was invalidated: the first access after Reset is a miss
	// even for a line that was resident before.
	if !c.AccessLine(0) {
		t.Error("line survived Reset as a hit")
	}
}

func TestConfigString(t *testing.T) {
	s := Flexagon.String()
	for _, want := range []string{"Flexagon", "PEs=67", "cache=1024KB", "line=64B", "ways=16"} {
		if !strings.Contains(s, want) {
			t.Errorf("Flexagon.String() = %q, missing %q", s, want)
		}
	}
	// The zero config renders with defaults applied, not zeros.
	if s := (Config{}).String(); !strings.Contains(s, "line=64B") {
		t.Errorf("zero Config.String() = %q, defaults not applied", s)
	}
}

func TestTrafficAdd(t *testing.T) {
	tr := Traffic{ABytes: 1, BBytes: 2, CBytes: 3}
	tr.Add(Traffic{ABytes: 10, BBytes: 20, CBytes: 30})
	if tr != (Traffic{ABytes: 11, BBytes: 22, CBytes: 33}) {
		t.Errorf("Add = %+v", tr)
	}
	if tr.Total() != 66 {
		t.Errorf("Total = %d, want 66", tr.Total())
	}
}

func TestNormalizedTrafficZeroCompulsory(t *testing.T) {
	var r Result
	a, b, c := r.NormalizedTraffic()
	if a != 0 || b != 0 || c != 0 {
		t.Errorf("empty result normalized to %v %v %v, want zeros", a, b, c)
	}
}

func TestMemoryShareZeroEnergy(t *testing.T) {
	if got := (Energy{}).MemoryShare(); got != 0 {
		t.Errorf("zero energy MemoryShare = %v, want 0", got)
	}
}

func TestPEUtilizationZeroCycles(t *testing.T) {
	var r Result
	if got := r.PEUtilization(); got != 0 {
		t.Errorf("zero-cycle utilization = %v, want 0", got)
	}
}

func TestSecondsUsesClock(t *testing.T) {
	r := Result{Cycles: 2e9, Config: Config{ClockGHz: 2}}
	if got := r.Seconds(); got != 1 {
		t.Errorf("Seconds = %v, want 1 (2e9 cycles at 2 GHz)", got)
	}
}
