package accel

import "fmt"

// Config describes one accelerator instance. The three presets mirror the
// paper's methodology section: Flexagon (1 MB cache, 67 PEs), GAMMA (3 MB,
// 64 PEs), Trapezoid (4 MB, 128 PEs), all with HBM main memory.
type Config struct {
	Name string
	// PEs is the number of processing elements, each retiring one
	// multiply-accumulate per cycle.
	PEs int
	// CacheBytes is the shared on-chip cache capacity.
	CacheBytes int64
	// LineBytes is the cache line size (default 64).
	LineBytes int64
	// Ways is the cache associativity (default 16).
	Ways int
	// ElementBytes is the storage cost of one stored nonzero: value plus
	// column index (default 12 = 8-byte value + 4-byte index).
	ElementBytes int64
	// HBMBytesPerCycle is the off-chip bandwidth per clock (default 128,
	// ≈ 256 GB/s at 2 GHz).
	HBMBytesPerCycle int64
	// ClockGHz converts cycles to seconds (default 1.0).
	ClockGHz float64
	// PERowBufferBytes is the per-PE buffer for the output row accumulator;
	// output rows larger than this spill partial sums to DRAM (default 16 KB).
	PERowBufferBytes int64
	// PEPrivateCacheBytes optionally adds a small private B-line buffer in
	// front of the shared cache at each PE (GAMMA's FiberCache-style
	// hierarchy). 0 disables the level.
	PEPrivateCacheBytes int64
}

func (c Config) withDefaults() Config {
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	if c.ElementBytes == 0 {
		c.ElementBytes = 12
	}
	if c.HBMBytesPerCycle == 0 {
		c.HBMBytesPerCycle = 128
	}
	if c.ClockGHz == 0 {
		c.ClockGHz = 1.0
	}
	if c.PERowBufferBytes == 0 {
		c.PERowBufferBytes = 16 << 10
	}
	return c
}

// String summarizes the configuration.
func (c Config) String() string {
	c = c.withDefaults()
	return fmt.Sprintf("%s{PEs=%d cache=%dKB line=%dB ways=%d}", c.Name, c.PEs, c.CacheBytes>>10, c.LineBytes, c.Ways)
}

// The paper's three target accelerators (§4 Methodology).
var (
	Flexagon  = Config{Name: "Flexagon", PEs: 67, CacheBytes: 1 << 20}
	GAMMA     = Config{Name: "GAMMA", PEs: 64, CacheBytes: 3 << 20}
	Trapezoid = Config{Name: "Trapezoid", PEs: 128, CacheBytes: 4 << 20}
)

// Targets lists the paper's accelerators in presentation order.
func Targets() []Config { return []Config{Flexagon, GAMMA, Trapezoid} }
