// Package unionfind implements a disjoint-set forest with the
// representative-selection policy used by the Hier baseline (paper
// Algorithm 3): when two clusters merge, the representative of the larger
// cluster wins; on equal sizes the smaller row index wins.
package unionfind

// Forest is a union-find structure over elements 0..n-1.
type Forest struct {
	parent []int32
	size   []int32
	// rep[root] is the representative row of the cluster rooted at root,
	// following Hier's policy (not necessarily the root itself).
	rep      []int32
	clusters int
}

// New returns a forest of n singleton clusters, each its own representative.
func New(n int) *Forest {
	f := &Forest{
		parent:   make([]int32, n),
		size:     make([]int32, n),
		rep:      make([]int32, n),
		clusters: n,
	}
	for i := 0; i < n; i++ {
		f.parent[i] = int32(i)
		f.size[i] = 1
		f.rep[i] = int32(i)
	}
	return f
}

// Len returns the number of elements.
func (f *Forest) Len() int { return len(f.parent) }

// Clusters returns the current number of disjoint clusters.
func (f *Forest) Clusters() int { return f.clusters }

// Find returns the root of x's cluster, with path halving.
func (f *Forest) Find(x int) int {
	for int(f.parent[x]) != x {
		f.parent[x] = f.parent[f.parent[x]]
		x = int(f.parent[x])
	}
	return x
}

// Same reports whether x and y are in the same cluster.
func (f *Forest) Same(x, y int) bool { return f.Find(x) == f.Find(y) }

// Size returns the size of x's cluster.
func (f *Forest) Size(x int) int { return int(f.size[f.Find(x)]) }

// Representative returns the representative row of x's cluster under Hier's
// policy: representative of the larger merged cluster, smaller index on ties.
func (f *Forest) Representative(x int) int { return int(f.rep[f.Find(x)]) }

// Union merges the clusters of x and y (smaller into larger) and returns the
// new root. If already merged it returns the common root.
func (f *Forest) Union(x, y int) int {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return rx
	}
	// Merge smaller tree into larger, per Algorithm 3 line 15.
	if f.size[rx] < f.size[ry] {
		rx, ry = ry, rx
	}
	// Representative policy: larger cluster's representative wins; on equal
	// sizes the smaller row index wins.
	newRep := f.rep[rx]
	if f.size[rx] == f.size[ry] && f.rep[ry] < f.rep[rx] {
		newRep = f.rep[ry]
	}
	f.parent[ry] = int32(rx)
	f.size[rx] += f.size[ry]
	f.rep[rx] = newRep
	f.clusters--
	return rx
}

// Groups returns the members of each cluster keyed by root, each group in
// ascending element order.
func (f *Forest) Groups() map[int][]int {
	g := make(map[int][]int)
	for i := 0; i < len(f.parent); i++ {
		r := f.Find(i)
		g[r] = append(g[r], i)
	}
	return g
}

// ModeledBytes returns the deterministic size of the backing arrays.
func (f *Forest) ModeledBytes() int64 {
	return int64(len(f.parent))*4 + int64(len(f.size))*4 + int64(len(f.rep))*4
}
