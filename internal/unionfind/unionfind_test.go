package unionfind

import (
	"math/rand"
	"testing"
)

func TestSingletons(t *testing.T) {
	f := New(4)
	if f.Clusters() != 4 {
		t.Fatalf("Clusters = %d", f.Clusters())
	}
	for i := 0; i < 4; i++ {
		if f.Find(i) != i || f.Representative(i) != i || f.Size(i) != 1 {
			t.Errorf("element %d not a proper singleton", i)
		}
	}
}

func TestUnionSemantics(t *testing.T) {
	f := New(6)
	f.Union(0, 1)
	if f.Clusters() != 5 || !f.Same(0, 1) || f.Size(0) != 2 {
		t.Error("union of 0,1 wrong")
	}
	// Equal sizes: representative is the smaller row index.
	if got := f.Representative(1); got != 0 {
		t.Errorf("representative = %d, want 0", got)
	}
	f.Union(2, 3)
	f.Union(0, 2) // size 2 vs 2 → smaller rep wins = 0
	if got := f.Representative(3); got != 0 {
		t.Errorf("representative = %d, want 0", got)
	}
	// Larger cluster's representative wins.
	f.Union(4, 5) // rep 4, size 2
	f.Union(4, 0) // 0's cluster size 4 > 2 → rep stays 0
	if got := f.Representative(5); got != 0 {
		t.Errorf("representative = %d, want 0 (larger cluster wins)", got)
	}
	if f.Clusters() != 1 || f.Size(5) != 6 {
		t.Error("final merge wrong")
	}
	// Union of already-merged elements is a no-op.
	before := f.Clusters()
	f.Union(1, 5)
	if f.Clusters() != before {
		t.Error("redundant union changed cluster count")
	}
}

func TestGroups(t *testing.T) {
	f := New(5)
	f.Union(0, 2)
	f.Union(3, 4)
	g := f.Groups()
	if len(g) != 3 {
		t.Fatalf("groups = %d, want 3", len(g))
	}
	total := 0
	for _, members := range g {
		total += len(members)
		for i := 1; i < len(members); i++ {
			if members[i] <= members[i-1] {
				t.Error("group members not ascending")
			}
		}
	}
	if total != 5 {
		t.Errorf("group members total %d, want 5", total)
	}
}

func TestInvariantUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 200
	f := New(n)
	for step := 0; step < 500; step++ {
		f.Union(rng.Intn(n), rng.Intn(n))
	}
	// Sizes per root must sum to n, and Clusters must match distinct roots.
	g := f.Groups()
	if len(g) != f.Clusters() {
		t.Errorf("Clusters() = %d, distinct roots = %d", f.Clusters(), len(g))
	}
	total := 0
	for root, members := range g {
		total += len(members)
		if f.Size(root) != len(members) {
			t.Errorf("root %d size %d, members %d", root, f.Size(root), len(members))
		}
		// Representative must be a member.
		rep := f.Representative(root)
		found := false
		for _, m := range members {
			if m == rep {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("representative %d not in cluster of root %d", rep, root)
		}
	}
	if total != n {
		t.Errorf("members total %d, want %d", total, n)
	}
}
