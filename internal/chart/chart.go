// Package chart renders minimal, dependency-free SVG charts for the
// experiment reports: grouped bar charts (Figures 4 and 6, Table 4) and
// log-log scatter plots (Figure 5, Table 2). The goal is readable artifacts
// in any browser, not a plotting library; everything is sized in one pass
// with fixed typography.
package chart

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette holds fill colors for series, cycled as needed.
var palette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
	"#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2",
}

// GroupedBars describes a grouped bar chart: for each group (x position)
// one bar per series.
type GroupedBars struct {
	Title  string
	YLabel string
	Groups []string    // x-axis group labels
	Series []BarSeries // one entry per legend item
	// YRef draws a horizontal reference line (e.g. 1.0 for ratios); 0 = none.
	YRef float64
}

// BarSeries is one legend entry with a value per group (NaN = missing).
type BarSeries struct {
	Name   string
	Values []float64
}

// WriteSVG renders the chart.
func (c GroupedBars) WriteSVG(w io.Writer) error {
	const (
		width   = 900
		height  = 420
		left    = 70
		right   = 30
		top     = 50
		bottom  = 80
		fontCSS = `font-family="Helvetica,Arial,sans-serif"`
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	maxV := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	if c.YRef > maxV {
		maxV = c.YRef
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV *= 1.08

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" %s>%s</text>`+"\n", left, fontCSS, escape(c.Title))

	// Y axis with 5 ticks.
	for t := 0; t <= 5; t++ {
		v := maxV * float64(t) / 5
		y := float64(top) + plotH - plotH*float64(t)/5
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", left, y, width-right, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" %s>%.2g</text>`+"\n", left-6, y+4, fontCSS, v)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle" %s>%s</text>`+"\n",
			top+int(plotH)/2, top+int(plotH)/2, fontCSS, escape(c.YLabel))
	}
	if c.YRef > 0 {
		y := float64(top) + plotH - plotH*c.YRef/maxV
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#999" stroke-dasharray="4 3"/>`+"\n", left, y, width-right, y)
	}

	nGroups := len(c.Groups)
	nSeries := len(c.Series)
	if nGroups > 0 && nSeries > 0 {
		groupW := plotW / float64(nGroups)
		barW := groupW * 0.8 / float64(nSeries)
		for gi, g := range c.Groups {
			gx := float64(left) + groupW*float64(gi)
			for si, s := range c.Series {
				if gi >= len(s.Values) {
					continue
				}
				v := s.Values[gi]
				if math.IsNaN(v) || v < 0 {
					continue
				}
				h := plotH * v / maxV
				x := gx + groupW*0.1 + barW*float64(si)
				y := float64(top) + plotH - h
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.3g</title></rect>`+"\n",
					x, y, barW, h, palette[si%len(palette)], escape(g), escape(s.Name), v)
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle" %s>%s</text>`+"\n",
				gx+groupW/2, top+int(plotH)+16, fontCSS, escape(g))
		}
	}

	// Legend.
	lx := left
	for si, s := range c.Series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, height-28, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" %s>%s</text>`+"\n", lx+16, height-18, fontCSS, escape(s.Name))
		lx += 16 + 8*len(s.Name) + 24
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Scatter describes a log-log (or linear) scatter/line plot.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []ScatterSeries
}

// ScatterSeries is one plotted series; points are drawn in order and
// connected.
type ScatterSeries struct {
	Name string
	X    []float64
	Y    []float64
}

// WriteSVG renders the plot.
func (c Scatter) WriteSVG(w io.Writer) error {
	const (
		width   = 900
		height  = 420
		left    = 80
		right   = 30
		top     = 50
		bottom  = 70
		fontCSS = `font-family="Helvetica,Arial,sans-serif"`
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if s.X[i] <= 0 && c.LogX || s.Y[i] <= 0 && c.LogY {
				continue
			}
			minX = math.Min(minX, tx(s.X[i]))
			maxX = math.Max(maxX, tx(s.X[i]))
			minY = math.Min(minY, ty(s.Y[i]))
			maxY = math.Max(maxY, ty(s.Y[i]))
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	padY := (maxY - minY) * 0.05
	minY -= padY
	maxY += padY

	px := func(v float64) float64 { return float64(left) + plotW*(tx(v)-minX)/(maxX-minX) }
	py := func(v float64) float64 { return float64(top) + plotH - plotH*(ty(v)-minY)/(maxY-minY) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" %s>%s</text>`+"\n", left, fontCSS, escape(c.Title))
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#bbb"/>`+"\n", left, top, plotW, plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle" %s>%s</text>`+"\n",
		left+int(plotW)/2, height-24, fontCSS, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="20" y="%d" font-size="12" transform="rotate(-90 20 %d)" text-anchor="middle" %s>%s</text>`+"\n",
		top+int(plotH)/2, top+int(plotH)/2, fontCSS, escape(c.YLabel))

	// Axis ticks (4 each).
	for t := 0; t <= 4; t++ {
		xv := minX + (maxX-minX)*float64(t)/4
		yv := minY + (maxY-minY)*float64(t)/4
		xl, yl := xv, yv
		if c.LogX {
			xl = math.Pow(10, xv)
		}
		if c.LogY {
			yl = math.Pow(10, yv)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle" %s>%.3g</text>`+"\n",
			float64(left)+plotW*float64(t)/4, top+int(plotH)+14, fontCSS, xl)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end" %s>%.3g</text>`+"\n",
			left-6, float64(top)+plotH-plotH*float64(t)/4+4, fontCSS, yl)
	}

	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var path strings.Builder
		started := false
		for i := range s.X {
			if (c.LogX && s.X[i] <= 0) || (c.LogY && s.Y[i] <= 0) {
				continue
			}
			cmd := "L"
			if !started {
				cmd = "M"
				started = true
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(s.X[i]), py(s.Y[i]))
		}
		if started {
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", path.String(), color)
		}
		for i := range s.X {
			if (c.LogX && s.X[i] <= 0) || (c.LogY && s.Y[i] <= 0) {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"><title>%s: (%.4g, %.4g)</title></circle>`+"\n",
				px(s.X[i]), py(s.Y[i]), color, escape(s.Name), s.X[i], s.Y[i])
		}
	}
	lx := left
	for si, s := range c.Series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, height-16, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" %s>%s</text>`+"\n", lx+16, height-6, fontCSS, escape(s.Name))
		lx += 16 + 8*len(s.Name) + 24
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
