package chart

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGroupedBarsSVG(t *testing.T) {
	c := GroupedBars{
		Title:  "Traffic <reduction> & \"ratios\"",
		YLabel: "normalized traffic",
		Groups: []string{"IN", "MI"},
		Series: []BarSeries{
			{Name: "Bootes", Values: []float64{1.2, 1.1}},
			{Name: "Gamma", Values: []float64{1.8, math.NaN()}},
		},
		YRef: 1.0,
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// 3 visible bars (NaN skipped) plus background rect and legend swatches.
	if got := strings.Count(out, "<rect"); got < 6 {
		t.Errorf("too few rects: %d", got)
	}
	if strings.Count(out, "<rect") > 3+1+2+12 {
		t.Errorf("unexpectedly many rects: %d", strings.Count(out, "<rect"))
	}
	// Title special characters must be escaped.
	if strings.Contains(out, "<reduction>") {
		t.Error("unescaped angle brackets in output")
	}
	if !strings.Contains(out, "&lt;reduction&gt;") {
		t.Error("escaped title missing")
	}
	// Reference line is dashed.
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("missing YRef line")
	}
	// Group labels and legend names present.
	for _, want := range []string{"IN", "MI", "Bootes", "Gamma"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestGroupedBarsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (GroupedBars{Title: "empty"}).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("empty chart did not render")
	}
}

func TestScatterSVGLogLog(t *testing.T) {
	c := Scatter{
		Title: "Scaling", XLabel: "rows", YLabel: "seconds",
		LogX: true, LogY: true,
		Series: []ScatterSeries{
			{Name: "Bootes", X: []float64{1e3, 1e4, 1e5}, Y: []float64{0.01, 0.1, 1}},
			{Name: "Gamma", X: []float64{1e3, 1e4, 1e5}, Y: []float64{0.01, 1, 100}},
			{Name: "withZero", X: []float64{0, 1e4}, Y: []float64{1, 1}}, // zero skipped on log axis
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<circle") != 3+3+1 {
		t.Errorf("point count wrong: %d", strings.Count(out, "<circle"))
	}
	if strings.Count(out, "<path") != 3 {
		t.Errorf("path count wrong: %d", strings.Count(out, "<path"))
	}
}

func TestScatterEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	err := (Scatter{Title: "x", Series: []ScatterSeries{{Name: "none"}}}).WriteSVG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("did not render")
	}
}
