// Package lsh implements MinHash signatures with banded locality-sensitive
// hashing, the candidate-pair generator used by the Hier baseline (paper
// Algorithm 3, following Leskovec et al., "Mining of Massive Datasets").
//
// Each row's column support is hashed into a signature of siglen minhash
// values; signatures are cut into bands of bsize values, and rows that agree
// on any whole band become a candidate pair. The probability that two rows
// with Jaccard similarity s share a band is 1-(1-s^bsize)^(siglen/bsize).
package lsh

import (
	"context"
	"math/rand"
	"slices"

	"bootes/internal/parallel"
)

// Params configures MinHash LSH. The paper notes Hier uses fixed parameters
// across all matrices; these defaults mirror that design decision.
type Params struct {
	SigLen int   // number of minhash functions (signature length)
	BSize  int   // rows per band; SigLen should be a multiple of BSize
	Seed   int64 // PRNG seed for the hash family
	// MaxDegree, when positive, caps the off-diagonal entries per row kept by
	// SparsifiedSimilarity (symmetric greedy cap in deterministic pair order).
	// It has no effect on candidate-pair generation itself. 0 keeps every
	// candidate pair.
	MaxDegree int
	// BucketCap bounds the quadratic expansion of each band bucket: a bucket
	// emits all pairs among its first BucketCap rows plus a chain through the
	// rest. 0 means the legacy cap of 64. Smaller caps shrink the raw
	// candidate volume roughly quadratically while banding across many bands
	// keeps every row connected to plenty of its bucket-mates.
	BucketCap int
}

// DefaultParams are the fixed parameters used by the Hier reorderer. The
// narrow bands (bsize 2) keep candidate recall high for the moderate Jaccard
// similarities (0.2-0.5) row groups exhibit, mirroring the generous fixed
// parameters the Hier baseline ships with — at the cost of the large
// candidate sets the paper charges to its runtime.
func DefaultParams() Params { return Params{SigLen: 64, BSize: 2, Seed: 0x5eed} }

// SparsifyParams are the fixed parameters of the similarity-sparsifier tier.
// Where Hier's bands of 2 target the moderate Jaccard range, the sparsifier
// must recall row groups whose pairwise Jaccard is far lower (two rows with
// 10 of 128 shared support columns sit near J ≈ 0.04): single-row bands make
// the per-band collision probability J itself, so 64 bands recall such pairs
// with probability 1-(1-J)^64 ≈ 0.93. The resulting candidate inflation is
// contained by the dense-bucket cap and the symmetric per-row degree cap —
// spectral clustering needs each row connected to *enough* of its group, not
// to all of it.
// The tight BucketCap is safe for the same reason the degree cap is: with 64
// independent bands, a row meets different bucket-mates in each, so its
// candidate set stays far larger than the MaxDegree budget it can spend.
func SparsifyParams() Params {
	return Params{SigLen: 64, BSize: 1, Seed: 0x5eed, MaxDegree: 64, BucketCap: 16}
}

// Pair is an unordered candidate row pair with A < B.
type Pair struct{ A, B int32 }

// hashFunc is a 2-universal multiply-shift hash over 64-bit values.
type hashFunc struct{ a, b uint64 }

func (h hashFunc) hash(x uint64) uint64 { return h.a*x + h.b }

// Index computes MinHash signatures for a set of rows and extracts candidate
// pairs via banding.
type Index struct {
	params Params
	funcs  []hashFunc
	// Signatures laid out row-major: sig[row*SigLen : (row+1)*SigLen].
	sig []uint64
	n   int
}

// Build computes signatures for n rows, where rowSupport(i) returns the
// sorted column support of row i.
func Build(n int, rowSupport func(i int) []int32, p Params) *Index {
	ix, err := BuildContext(context.Background(), n, rowSupport, p)
	if err != nil {
		// The background context cannot be cancelled and BuildContext has no
		// other failure mode.
		panic("lsh: internal build error: " + err.Error())
	}
	return ix
}

// sigGrain is the fixed row-chunk size of the parallel signature build.
// Row signatures are independent and written to disjoint regions, so the
// index is bit-identical for any worker count.
const sigGrain = 64

// BuildContext is Build with cooperative cancellation and row-parallel
// signature computation. The hash family is drawn sequentially from the seed
// before any parallel work, so equal seeds give identical indices.
func BuildContext(ctx context.Context, n int, rowSupport func(i int) []int32, p Params) (*Index, error) {
	if p.SigLen <= 0 {
		p.SigLen = DefaultParams().SigLen
	}
	if p.BSize <= 0 || p.BSize > p.SigLen {
		p.BSize = DefaultParams().BSize
	}
	rng := rand.New(rand.NewSource(p.Seed))
	ix := &Index{params: p, n: n}
	ix.funcs = make([]hashFunc, p.SigLen)
	for i := range ix.funcs {
		// Odd multiplier for multiply-shift universality.
		ix.funcs[i] = hashFunc{a: rng.Uint64() | 1, b: rng.Uint64()}
	}
	ix.sig = make([]uint64, n*p.SigLen)
	const empty = ^uint64(0)
	err := parallel.ForContext(ctx, n, sigGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := ix.sig[i*p.SigLen : (i+1)*p.SigLen]
			for k := range s {
				s[k] = empty
			}
			for _, c := range rowSupport(i) {
				x := uint64(c) + 0x9e3779b97f4a7c15
				for k, h := range ix.funcs {
					v := h.hash(x)
					if v < s[k] {
						s[k] = v
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// Signature returns row i's minhash signature (a view).
func (ix *Index) Signature(i int) []uint64 {
	return ix.sig[i*ix.params.SigLen : (i+1)*ix.params.SigLen]
}

// SignatureSimilarity estimates Jaccard similarity of rows i and j as the
// fraction of agreeing signature positions.
func (ix *Index) SignatureSimilarity(i, j int) float64 {
	si, sj := ix.Signature(i), ix.Signature(j)
	agree := 0
	for k := range si {
		if si[k] == sj[k] {
			agree++
		}
	}
	return float64(agree) / float64(len(si))
}

// CandidatePairs buckets rows by band hash and returns the deduplicated set
// of pairs that collide in at least one band, sorted for determinism.
func (ix *Index) CandidatePairs() []Pair {
	pairs, err := ix.PairsContext(context.Background())
	if err != nil {
		// The background context cannot be cancelled and PairsContext has no
		// other failure mode.
		panic("lsh: internal candidate-pair error: " + err.Error())
	}
	return pairs
}

// bandEntry is one row's hash within a single band; sorting entries by
// (hash, row) turns equal-hash runs into the band's buckets with rows in
// ascending order — the same bucket contents the map-based construction
// produced, but discoverable band-parallel and without map iteration order
// anywhere near the result.
type bandEntry struct {
	h   uint64
	row int32
}

// PairsContext is CandidatePairs with cooperative cancellation and
// band-parallel bucketing. Bands write disjoint pair slices that are merged,
// sorted, and deduplicated at the end, so the result is identical for any
// worker count. Pairs travel as packed uint64 keys (A in the high word) so
// the merge sort runs on machine integers — candidate volume reaches tens of
// millions on large clustered inputs, where an interface-based comparison
// sort dominated the whole sparsifier.
func (ix *Index) PairsContext(ctx context.Context) ([]Pair, error) {
	bands := ix.params.SigLen / ix.params.BSize
	perBand := make([][]uint64, bands)
	err := parallel.ForContext(ctx, bands, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			perBand[b] = ix.bandPairKeys(b)
		}
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, ps := range perBand {
		total += len(ps)
	}
	keys := make([]uint64, 0, total)
	for _, ps := range perBand {
		keys = append(keys, ps...)
	}
	sortPairKeys(keys)
	// Deduplicate pairs that collided in more than one band. Packed keys
	// order exactly as (A, B) lexicographic order, so the unpacked list is
	// sorted the way every downstream consumer expects.
	keys = slices.Compact(keys)
	pairs := make([]Pair, len(keys))
	for i, k := range keys {
		pairs[i] = Pair{A: int32(k >> 32), B: int32(k)}
	}
	return pairs, nil
}

// bandPairKeys returns band b's candidate pairs as packed uint64 keys
// (A<<32 | B with A < B; duplicates possible across bands but not within
// one).
func (ix *Index) bandPairKeys(b int) []uint64 {
	bs := ix.params.BSize
	entries := make([]bandEntry, ix.n)
	for i := 0; i < ix.n; i++ {
		seg := ix.Signature(i)[b*bs : (b+1)*bs]
		var h uint64 = 1469598103934665603 // FNV offset basis
		for _, v := range seg {
			h ^= v
			h *= 1099511628211
		}
		entries[i] = bandEntry{h: h, row: int32(i)}
	}
	slices.SortFunc(entries, func(x, y bandEntry) int {
		if x.h != y.h {
			if x.h < y.h {
				return -1
			}
			return 1
		}
		return int(x.row - y.row)
	})
	var out []uint64
	for lo := 0; lo < len(entries); {
		hi := lo + 1
		for hi < len(entries) && entries[hi].h == entries[lo].h {
			hi++
		}
		if m := hi - lo; m >= 2 {
			// Cap the pair blow-up of big buckets: a bucket of m rows yields
			// all pairs among its first denseCap rows plus a chain through
			// the rest. Huge buckets arise from degenerate patterns (e.g.
			// empty rows) and full quadratic expansion would defeat LSH's
			// purpose.
			denseCap := ix.params.BucketCap
			if denseCap <= 0 {
				denseCap = 64
			}
			limit := m
			if limit > denseCap {
				limit = denseCap
			}
			for x := 0; x < limit; x++ {
				a := uint64(entries[lo+x].row) << 32
				for y := x + 1; y < limit; y++ {
					out = append(out, a|uint64(entries[lo+y].row))
				}
			}
			for x := denseCap; x < m-1; x++ {
				out = append(out, uint64(entries[lo+x].row)<<32|uint64(entries[lo+x+1].row))
			}
		}
		lo = hi
	}
	return out
}

// ModeledBytes returns the deterministic size of the signature storage plus
// the band-bucket hash tables CandidatePairs builds (bands × n entries, each
// a row id plus map overhead).
func (ix *Index) ModeledBytes() int64 {
	bands := int64(ix.params.SigLen / ix.params.BSize)
	bucketBytes := bands * int64(ix.n) * 12
	return int64(len(ix.sig))*8 + int64(len(ix.funcs))*16 + bucketBytes
}
