// Package lsh implements MinHash signatures with banded locality-sensitive
// hashing, the candidate-pair generator used by the Hier baseline (paper
// Algorithm 3, following Leskovec et al., "Mining of Massive Datasets").
//
// Each row's column support is hashed into a signature of siglen minhash
// values; signatures are cut into bands of bsize values, and rows that agree
// on any whole band become a candidate pair. The probability that two rows
// with Jaccard similarity s share a band is 1-(1-s^bsize)^(siglen/bsize).
package lsh

import (
	"math/rand"
	"sort"
)

// Params configures MinHash LSH. The paper notes Hier uses fixed parameters
// across all matrices; these defaults mirror that design decision.
type Params struct {
	SigLen int   // number of minhash functions (signature length)
	BSize  int   // rows per band; SigLen should be a multiple of BSize
	Seed   int64 // PRNG seed for the hash family
}

// DefaultParams are the fixed parameters used by the Hier reorderer. The
// narrow bands (bsize 2) keep candidate recall high for the moderate Jaccard
// similarities (0.2-0.5) row groups exhibit, mirroring the generous fixed
// parameters the Hier baseline ships with — at the cost of the large
// candidate sets the paper charges to its runtime.
func DefaultParams() Params { return Params{SigLen: 64, BSize: 2, Seed: 0x5eed} }

// Pair is an unordered candidate row pair with A < B.
type Pair struct{ A, B int32 }

// hashFunc is a 2-universal multiply-shift hash over 64-bit values.
type hashFunc struct{ a, b uint64 }

func (h hashFunc) hash(x uint64) uint64 { return h.a*x + h.b }

// Index computes MinHash signatures for a set of rows and extracts candidate
// pairs via banding.
type Index struct {
	params Params
	funcs  []hashFunc
	// Signatures laid out row-major: sig[row*SigLen : (row+1)*SigLen].
	sig []uint64
	n   int
}

// Build computes signatures for n rows, where rowSupport(i) returns the
// sorted column support of row i.
func Build(n int, rowSupport func(i int) []int32, p Params) *Index {
	if p.SigLen <= 0 {
		p.SigLen = DefaultParams().SigLen
	}
	if p.BSize <= 0 || p.BSize > p.SigLen {
		p.BSize = DefaultParams().BSize
	}
	rng := rand.New(rand.NewSource(p.Seed))
	ix := &Index{params: p, n: n}
	ix.funcs = make([]hashFunc, p.SigLen)
	for i := range ix.funcs {
		// Odd multiplier for multiply-shift universality.
		ix.funcs[i] = hashFunc{a: rng.Uint64() | 1, b: rng.Uint64()}
	}
	ix.sig = make([]uint64, n*p.SigLen)
	const empty = ^uint64(0)
	for i := 0; i < n; i++ {
		s := ix.sig[i*p.SigLen : (i+1)*p.SigLen]
		for k := range s {
			s[k] = empty
		}
		for _, c := range rowSupport(i) {
			x := uint64(c) + 0x9e3779b97f4a7c15
			for k, h := range ix.funcs {
				v := h.hash(x)
				if v < s[k] {
					s[k] = v
				}
			}
		}
	}
	return ix
}

// Signature returns row i's minhash signature (a view).
func (ix *Index) Signature(i int) []uint64 {
	return ix.sig[i*ix.params.SigLen : (i+1)*ix.params.SigLen]
}

// SignatureSimilarity estimates Jaccard similarity of rows i and j as the
// fraction of agreeing signature positions.
func (ix *Index) SignatureSimilarity(i, j int) float64 {
	si, sj := ix.Signature(i), ix.Signature(j)
	agree := 0
	for k := range si {
		if si[k] == sj[k] {
			agree++
		}
	}
	return float64(agree) / float64(len(si))
}

// CandidatePairs buckets rows by band hash and returns the deduplicated set
// of pairs that collide in at least one band, sorted for determinism.
func (ix *Index) CandidatePairs() []Pair {
	bands := ix.params.SigLen / ix.params.BSize
	type bandKey struct {
		band int
		h    uint64
	}
	buckets := make(map[bandKey][]int32)
	for i := 0; i < ix.n; i++ {
		s := ix.Signature(i)
		for b := 0; b < bands; b++ {
			var h uint64 = 1469598103934665603 // FNV offset basis
			for _, v := range s[b*ix.params.BSize : (b+1)*ix.params.BSize] {
				h ^= v
				h *= 1099511628211
			}
			k := bandKey{band: b, h: h}
			buckets[k] = append(buckets[k], int32(i))
		}
	}
	seen := make(map[Pair]struct{})
	for _, rows := range buckets {
		if len(rows) < 2 {
			continue
		}
		// Cap the pair blow-up of huge buckets: a bucket of m rows yields
		// m-1 chained pairs plus all pairs among the first few rows. Huge
		// buckets arise from degenerate patterns (e.g. empty rows) and full
		// quadratic expansion would defeat LSH's purpose.
		const denseCap = 64
		limit := len(rows)
		if limit > denseCap {
			limit = denseCap
		}
		for x := 0; x < limit; x++ {
			for y := x + 1; y < limit; y++ {
				a, b := rows[x], rows[y]
				if a > b {
					a, b = b, a
				}
				seen[Pair{a, b}] = struct{}{}
			}
		}
		for x := denseCap; x < len(rows)-1; x++ {
			a, b := rows[x], rows[x+1]
			if a > b {
				a, b = b, a
			}
			seen[Pair{a, b}] = struct{}{}
		}
	}
	pairs := make([]Pair, 0, len(seen))
	for p := range seen {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].A != pairs[y].A {
			return pairs[x].A < pairs[y].A
		}
		return pairs[x].B < pairs[y].B
	})
	return pairs
}

// ModeledBytes returns the deterministic size of the signature storage plus
// the band-bucket hash tables CandidatePairs builds (bands × n entries, each
// a row id plus map overhead).
func (ix *Index) ModeledBytes() int64 {
	bands := int64(ix.params.SigLen / ix.params.BSize)
	bucketBytes := bands * int64(ix.n) * 12
	return int64(len(ix.sig))*8 + int64(len(ix.funcs))*16 + bucketBytes
}
