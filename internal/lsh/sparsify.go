// The similarity sparsifier promotes the package from a Hier-baseline helper
// to a first-class planning tier: instead of forming the full S = Ā·Āᵀ, it
// builds S only on the MinHash/banding candidate pairs, with exact
// intersection counts on those pairs. Cluster-wise reordering survives this
// sparsification (Islam & Dai, PAPERS.md): spectral clustering needs the
// intra-cluster edges LSH recalls, not the long tail of weak similarities the
// full product spends its time on.
package lsh

import (
	"context"
	"errors"

	"bootes/internal/faultinject"
	"bootes/internal/parallel"
	"bootes/internal/sparse"
)

// ErrSparsifyFault reports an injected sparsifier failure (chaos testing).
var ErrSparsifyFault = errors.New("lsh: sparsify: injected failure")

// pairGrain is the fixed chunk size of the parallel pair-count pass.
const pairGrain = 1024

// SparsifiedSimilarity computes an approximation of
// sparse.SimilarityCappedWithCounts(a, maxColDegree, colCounts): same hub
// exclusion, same diagonal (S[i,i] = nnz of the hub-dropped row i), and
// exact shared-column counts — but off-diagonal entries exist only for LSH
// candidate pairs, so nnz(S) is bounded by the banding collisions instead of
// Σ d². Every stored entry equals the exact product's entry; the pattern is
// a symmetric subset of it. Equal seeds give bit-identical results for any
// worker count.
func SparsifiedSimilarity(ctx context.Context, a *sparse.CSR, maxColDegree int, colCounts []int, p Params) (*sparse.CSR, error) {
	if faultinject.Fire(faultinject.LSHSparsifyFail) {
		return nil, ErrSparsifyFault
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ap := a.Pattern()
	if maxColDegree > 0 {
		if colCounts == nil {
			colCounts = sparse.ColCounts(ap)
		}
		ap = sparse.DropHubColumnsWithCounts(ap, maxColDegree, colCounts)
	}
	ix, err := BuildContext(ctx, ap.Rows, ap.Row, p)
	if err != nil {
		return nil, err
	}
	pairs, err := ix.PairsContext(ctx)
	if err != nil {
		return nil, err
	}
	pairs = capDegrees(pairs, ap.Rows, p.MaxDegree)
	// Exact counts per surviving pair via packed bitset intersection; pairs
	// that share no columns (pure banding collisions, e.g. empty rows) get
	// count 0 and are dropped by the assembly. The degree cap runs first so
	// the exact-count pass touches at most n·maxDegree/2 pairs, not the full
	// candidate volume.
	br := sparse.PackBitRows(ap)
	counts := make([]int32, len(pairs))
	err = parallel.ForContext(ctx, len(pairs), pairGrain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			counts[t] = int32(br.IntersectCount(int(pairs[t].A), int(pairs[t].B)))
		}
	})
	if err != nil {
		return nil, err
	}
	return assembleSimilarity(ap, pairs, counts), nil
}

// capDegrees applies the symmetric greedy per-row degree cap to the sorted,
// deduplicated candidate list: a pair survives only while both endpoints
// still have budget, decided in the deterministic (A,B) order, so at most
// n·maxDegree/2 pairs remain regardless of how many candidates banding
// produced. Capping before the exact-count pass means a zero-count banding
// collision can waste a budget slot, but with single-row bands bucket-mates
// share the column achieving their common minhash, so such pairs are
// vanishingly rare — and skipping the count on the discarded candidates is
// where the sparsifier's large-n headroom comes from.
func capDegrees(pairs []Pair, n, maxDegree int) []Pair {
	if maxDegree <= 0 {
		return pairs
	}
	deg := make([]int32, n)
	kept := 0
	for t := range pairs {
		if deg[pairs[t].A] >= int32(maxDegree) || deg[pairs[t].B] >= int32(maxDegree) {
			continue
		}
		deg[pairs[t].A]++
		deg[pairs[t].B]++
		pairs[kept] = pairs[t]
		kept++
	}
	return pairs[:kept]
}

// assembleSimilarity builds the symmetric CSR from the sorted, deduplicated
// (and degree-capped) pair list. Zero-count pairs are dropped. Each row's
// columns arrive already sorted: one sequential scan of the (A,B)-sorted
// pairs emits the below-diagonal entries (for fixed B, the As ascend across
// the scan), the diagonal is appended per nonempty row, and a second scan
// emits the above-diagonal entries (for fixed A, the Bs ascend).
func assembleSimilarity(ap *sparse.CSR, pairs []Pair, counts []int32) *sparse.CSR {
	n := ap.Rows
	kept := 0
	for t := range pairs {
		if counts[t] <= 0 {
			continue
		}
		pairs[kept] = pairs[t]
		counts[kept] = counts[t]
		kept++
	}
	pairs, counts = pairs[:kept], counts[:kept]

	s := &sparse.CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}
	rowCnt := make([]int32, n)
	for t := range pairs {
		rowCnt[pairs[t].A]++
		rowCnt[pairs[t].B]++
	}
	for i := 0; i < n; i++ {
		if ap.RowNNZ(i) > 0 {
			rowCnt[i]++
		}
	}
	for i := 0; i < n; i++ {
		s.RowPtr[i+1] = s.RowPtr[i] + int64(rowCnt[i])
	}
	s.Col = make([]int32, s.RowPtr[n])
	s.Val = make([]float64, s.RowPtr[n])
	cur := make([]int64, n)
	copy(cur, s.RowPtr[:n])
	for t := range pairs {
		b := pairs[t].B
		s.Col[cur[b]] = pairs[t].A
		s.Val[cur[b]] = float64(counts[t])
		cur[b]++
	}
	for i := 0; i < n; i++ {
		if nz := ap.RowNNZ(i); nz > 0 {
			s.Col[cur[i]] = int32(i)
			s.Val[cur[i]] = float64(nz)
			cur[i]++
		}
	}
	for t := range pairs {
		a := pairs[t].A
		s.Col[cur[a]] = pairs[t].B
		s.Val[cur[a]] = float64(counts[t])
		cur[a]++
	}
	return s
}

// ModeledSparsifyBytes returns the deterministic modeled peak memory of
// SparsifiedSimilarity's index structures for an n-row matrix with the given
// parameters, excluding the output matrix itself: signatures, hash family,
// and the per-band entry arrays.
func ModeledSparsifyBytes(n int, p Params) int64 {
	if p.SigLen <= 0 {
		p.SigLen = DefaultParams().SigLen
	}
	if p.BSize <= 0 || p.BSize > p.SigLen {
		p.BSize = DefaultParams().BSize
	}
	bands := int64(p.SigLen / p.BSize)
	return int64(n)*int64(p.SigLen)*8 + int64(p.SigLen)*16 + bands*int64(n)*16
}
