package lsh

import (
	"math"
	"math/rand"
	"testing"
)

// makeRows builds simple synthetic row supports.
func makeRows(rows [][]int32) func(i int) []int32 {
	return func(i int) []int32 { return rows[i] }
}

func TestIdenticalRowsShareSignature(t *testing.T) {
	rows := [][]int32{{1, 5, 9}, {1, 5, 9}, {100, 200}}
	ix := Build(3, makeRows(rows), DefaultParams())
	if got := ix.SignatureSimilarity(0, 1); got != 1 {
		t.Errorf("identical rows similarity = %v, want 1", got)
	}
	if got := ix.SignatureSimilarity(0, 2); got > 0.5 {
		t.Errorf("disjoint rows similarity = %v, too high", got)
	}
}

func TestCandidatePairsFindSimilarRows(t *testing.T) {
	// Two groups of rows with near-identical supports.
	rows := [][]int32{
		{1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}, {1, 2, 3, 4, 5},
		{50, 51, 52, 53}, {50, 51, 52, 54},
	}
	ix := Build(len(rows), makeRows(rows), Params{SigLen: 32, BSize: 4, Seed: 1})
	pairs := ix.CandidatePairs()
	has := func(a, b int32) bool {
		for _, p := range pairs {
			if p.A == a && p.B == b {
				return true
			}
		}
		return false
	}
	if !has(0, 2) {
		t.Error("identical rows 0,2 not a candidate pair")
	}
	if !has(0, 1) && !has(1, 2) {
		t.Error("highly similar rows in group 1 produced no candidates")
	}
	// Pairs are sorted and deduplicated.
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].A > pairs[i].A || (pairs[i-1].A == pairs[i].A && pairs[i-1].B >= pairs[i].B) {
			t.Error("pairs not sorted/deduped")
		}
	}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Errorf("pair (%d,%d) not normalized", p.A, p.B)
		}
	}
}

func TestSignatureSimilarityEstimatesJaccard(t *testing.T) {
	// With many hash functions the signature agreement approximates the
	// true Jaccard similarity.
	rng := rand.New(rand.NewSource(2))
	n := 40
	universe := int32(500)
	rows := make([][]int32, n)
	base := make([]int32, 0, 60)
	seen := map[int32]struct{}{}
	for len(base) < 60 {
		c := rng.Int31n(universe)
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			base = append(base, c)
		}
	}
	for i := range rows {
		// Each row keeps a random 70% of base plus a few extras.
		var r []int32
		for _, c := range base {
			if rng.Float64() < 0.7 {
				r = append(r, c)
			}
		}
		rows[i] = r
	}
	ix := Build(n, makeRows(rows), Params{SigLen: 256, BSize: 8, Seed: 3})
	jaccard := func(a, b []int32) float64 {
		set := map[int32]struct{}{}
		for _, c := range a {
			set[c] = struct{}{}
		}
		inter := 0
		for _, c := range b {
			if _, ok := set[c]; ok {
				inter++
			}
		}
		union := len(a) + len(b) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	errSum, count := 0.0, 0
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			est := ix.SignatureSimilarity(i, j)
			truth := jaccard(rows[i], rows[j])
			errSum += math.Abs(est - truth)
			count++
		}
	}
	if avg := errSum / float64(count); avg > 0.08 {
		t.Errorf("mean |estimate − jaccard| = %v, want < 0.08", avg)
	}
}

func TestBuildDeterminism(t *testing.T) {
	rows := [][]int32{{1, 2}, {2, 3}, {3, 4}}
	a := Build(3, makeRows(rows), Params{SigLen: 16, BSize: 4, Seed: 9})
	b := Build(3, makeRows(rows), Params{SigLen: 16, BSize: 4, Seed: 9})
	pa, pb := a.CandidatePairs(), b.CandidatePairs()
	if len(pa) != len(pb) {
		t.Fatal("nondeterministic pair count")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("nondeterministic pairs")
		}
	}
}

func TestEmptyRowsDoNotExplode(t *testing.T) {
	// Many empty rows all collide (empty signature); the dense-bucket cap
	// must keep the pair count linear-ish rather than quadratic.
	n := 2000
	rows := make([][]int32, n)
	ix := Build(n, makeRows(rows), DefaultParams())
	pairs := ix.CandidatePairs()
	if len(pairs) > 10*n {
		t.Errorf("pair explosion: %d pairs for %d empty rows", len(pairs), n)
	}
}

func TestDefaultParamsApplied(t *testing.T) {
	rows := [][]int32{{1}, {2}}
	ix := Build(2, makeRows(rows), Params{}) // zero params → defaults
	if len(ix.Signature(0)) != DefaultParams().SigLen {
		t.Errorf("signature length %d, want default %d", len(ix.Signature(0)), DefaultParams().SigLen)
	}
}
