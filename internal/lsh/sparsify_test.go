package lsh

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/parallel"
	"bootes/internal/sparse"
)

// groupedMatrix builds a pattern matrix whose rows draw their support from
// per-group column templates — exactly the correlated-support shape LSH must
// recall.
func groupedMatrix(n, nnz, groups int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n, true)
	span := n / groups
	for i := 0; i < n; i++ {
		base := (i % groups) * span
		for k := 0; k < nnz; k++ {
			coo.AddPattern(i, base+rng.Intn(span))
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func TestSparsifiedSimilarityIsExactSubset(t *testing.T) {
	a := groupedMatrix(300, 10, 6, 3)
	hub := sparse.HubDegreeThreshold(a)
	exact := sparse.SimilarityCapped(a, hub)
	approx, err := SparsifiedSimilarity(context.Background(), a, hub, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := approx.Validate(); err != nil {
		t.Fatalf("approx similarity invalid: %v", err)
	}
	if approx.Rows != exact.Rows || approx.Cols != exact.Cols {
		t.Fatalf("shape %dx%d want %dx%d", approx.Rows, approx.Cols, exact.Rows, exact.Cols)
	}
	if approx.NNZ() > exact.NNZ() {
		t.Fatalf("approx nnz %d exceeds exact nnz %d", approx.NNZ(), exact.NNZ())
	}
	for i := 0; i < approx.Rows; i++ {
		row, vals := approx.Row(i), approx.RowVals(i)
		for p, j := range row {
			if got, want := vals[p], exact.At(i, int(j)); got != want {
				t.Fatalf("approx[%d,%d]=%v want exact %v", i, j, got, want)
			}
			if got, want := approx.At(int(j), i), vals[p]; got != want {
				t.Fatalf("asymmetric at (%d,%d): %v vs %v", i, j, vals[p], got)
			}
		}
		if approx.At(i, i) != float64(a.RowNNZ(i)) && sparse.HubDegreeThreshold(a) <= 0 {
			t.Fatalf("diagonal mismatch at %d", i)
		}
	}
}

func TestSparsifiedSimilarityDeterministicAcrossWorkers(t *testing.T) {
	a := groupedMatrix(400, 8, 8, 9)
	var ref *sparse.CSR
	for _, w := range []int{1, 2, 8} {
		prev := parallel.SetWorkers(w)
		s, err := SparsifiedSimilarity(context.Background(), a, 0, nil, DefaultParams())
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = s
			continue
		}
		if !sparse.Equal(ref, s) {
			t.Fatalf("workers=%d: sparsified similarity differs", w)
		}
	}
}

func TestSparsifiedSimilarityRecallsGroupStructure(t *testing.T) {
	a := groupedMatrix(240, 12, 4, 5)
	s, err := SparsifiedSimilarity(context.Background(), a, 0, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Every row must keep at least its diagonal, and the candidate graph must
	// retain a solid majority of intra-group mass: rows of a group share a
	// 60-column template with 12 draws, giving Jaccard high enough for the
	// default banding to recall.
	offDiag := 0
	for i := 0; i < s.Rows; i++ {
		if !s.Has(i, i) {
			t.Fatalf("row %d lost its diagonal", i)
		}
		offDiag += s.RowNNZ(i) - 1
	}
	if offDiag < s.Rows {
		t.Fatalf("only %d off-diagonal entries for %d rows; LSH recall collapsed", offDiag, s.Rows)
	}
	for p := 0; p < s.Rows; p++ {
		for _, j := range s.Row(p) {
			if int(j)%4 != p%4 {
				t.Fatalf("cross-group candidate (%d,%d) with disjoint supports", p, j)
			}
		}
	}
}

func TestSparsifiedSimilarityInjectedFault(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.LSHSparsifyFail); err != nil {
		t.Fatal(err)
	}
	_, err := SparsifiedSimilarity(context.Background(), groupedMatrix(60, 4, 4, 1), 0, nil, DefaultParams())
	if !errors.Is(err, ErrSparsifyFault) {
		t.Fatalf("err = %v, want ErrSparsifyFault", err)
	}
	// The fault fires once; the retry must succeed.
	if _, err := SparsifiedSimilarity(context.Background(), groupedMatrix(60, 4, 4, 1), 0, nil, DefaultParams()); err != nil {
		t.Fatalf("second call: %v", err)
	}
}

func TestSparsifiedSimilarityCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SparsifiedSimilarity(ctx, groupedMatrix(60, 4, 4, 1), 0, nil, DefaultParams()); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestPairsContextMatchesCandidatePairs(t *testing.T) {
	a := groupedMatrix(200, 6, 5, 7)
	ix := Build(a.Rows, a.Row, DefaultParams())
	want := ix.CandidatePairs()
	for _, w := range []int{1, 2, 8} {
		prev := parallel.SetWorkers(w)
		got, err := ix.PairsContext(context.Background())
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d = %v, want %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestModeledSparsifyBytesPositive(t *testing.T) {
	if b := ModeledSparsifyBytes(1000, Params{}); b <= 0 {
		t.Fatalf("ModeledSparsifyBytes = %d", b)
	}
}
