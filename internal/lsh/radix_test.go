package lsh

import (
	"math/rand"
	"slices"
	"testing"
)

// TestSortPairKeysMatchesComparisonSort drives both the small-input fallback
// and the radix path (the latter needs >256k keys) against slices.Sort on
// seeded random packed pairs, including duplicate-heavy and constant-digit
// distributions.
func TestSortPairKeysMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		name string
		n    int
		key  func() uint64
	}{
		{"small", 1000, func() uint64 {
			return uint64(rng.Intn(500))<<32 | uint64(rng.Intn(500))
		}},
		{"radix-small-rows", 300_000, func() uint64 {
			// Row ids under 2^15: two of the four digit passes are trivial.
			return uint64(rng.Intn(20_000))<<32 | uint64(rng.Intn(20_000))
		}},
		{"radix-large-rows", 300_000, func() uint64 {
			// Row ids crossing the 16-bit digit boundary.
			return uint64(rng.Intn(1<<20))<<32 | uint64(rng.Intn(1<<20))
		}},
		{"radix-duplicates", 280_000, func() uint64 {
			return uint64(rng.Intn(64))<<32 | uint64(rng.Intn(64))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			keys := make([]uint64, tc.n)
			for i := range keys {
				keys[i] = tc.key()
			}
			want := slices.Clone(keys)
			slices.Sort(want)
			sortPairKeys(keys)
			if !slices.Equal(keys, want) {
				t.Fatal("sortPairKeys disagrees with slices.Sort")
			}
		})
	}
}
