package lsh

import "slices"

// sortPairKeys sorts packed pair keys (A<<32 | B) ascending. Keys are radix
// sorted: an LSD counting sort over 16-bit digits, skipping digits on which
// every key agrees. Row ids are small, so the top digit of each word is
// usually constant and large inputs sort in two linear passes — on the
// multi-million-key candidate lists the sparsifier produces this is several
// times faster than a comparison sort, with the identical (total-order)
// result. Small inputs fall back to slices.Sort, where the counting pass
// would dominate.
func sortPairKeys(keys []uint64) {
	const digits = 4
	const radix = 1 << 16
	if len(keys) < 4*radix {
		slices.Sort(keys)
		return
	}
	var hist [digits][radix]int32
	for _, k := range keys {
		hist[0][k&0xffff]++
		hist[1][(k>>16)&0xffff]++
		hist[2][(k>>32)&0xffff]++
		hist[3][(k>>48)&0xffff]++
	}
	buf := make([]uint64, len(keys))
	src, dst := keys, buf
	for d := 0; d < digits; d++ {
		h := &hist[d]
		// A digit where all keys share one value permutes nothing — skip it.
		if h[src[0]>>(16*d)&0xffff] == int32(len(keys)) {
			continue
		}
		sum := int32(0)
		for v := range h {
			c := h[v]
			h[v] = sum
			sum += c
		}
		shift := 16 * d
		for _, k := range src {
			v := (k >> shift) & 0xffff
			dst[h[v]] = k
			h[v]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}
