package reorder

import (
	"math/rand"
	"time"

	"bootes/internal/prio"
	"bootes/internal/sparse"
)

// Gamma implements GAMMA's greedy windowed row reordering (paper Algorithm 1,
// from Zhang et al., ASPLOS'21). Rows live in an addressable max-priority
// queue; after emitting row P[i-1], every row sharing a column coordinate
// with it gains priority, and once the window of W emitted rows has slid
// past, the contribution of row P[i-W-1] is retracted — modeling that its
// B-rows have been evicted from the cache.
type Gamma struct {
	// W is the window size — the number of recently emitted rows whose
	// B-data is assumed cache-resident. 0 selects 128.
	W int
	// Seed picks the (paper: random) starting row deterministically.
	Seed int64
}

// Name implements Reorderer.
func (Gamma) Name() string { return "Gamma" }

// Reorder implements Reorderer.
func (g Gamma) Reorder(a *sparse.CSR) (*Result, error) {
	start := time.Now()
	w := g.W
	if w <= 0 {
		w = 128
	}
	m := a.Rows
	perm := make(sparse.Permutation, 0, m)
	if m == 0 {
		return &Result{Perm: perm, PreprocessTime: time.Since(start), Reordered: false, Extra: map[string]float64{}}, nil
	}

	// Column → rows index ("tracking of row-column relationships" the paper
	// charges to Gamma's footprint).
	at := sparse.Transpose(a.Pattern())

	q := prio.New(m)
	for r := 0; r < m; r++ {
		q.Insert(r, 0)
	}

	rng := rand.New(rand.NewSource(g.Seed ^ 0x6a3a))
	startRow := rng.Intn(m)
	perm = append(perm, int32(startRow))
	q.Remove(startRow)

	bump := func(row int32, delta int64) {
		for _, u := range a.Row(int(row)) {
			for _, r := range at.Row(int(u)) {
				q.AddKey(int(r), delta)
			}
		}
	}

	for i := 1; i < m; i++ {
		bump(perm[i-1], +1)
		if i > w {
			bump(perm[i-w-1], -1)
		}
		next, ok := q.Pop()
		if !ok {
			break
		}
		perm = append(perm, int32(next))
	}

	// Footprint per the paper's §5.3 description of GAMMA's preprocessor:
	// besides the priority queue and the permutation array P (allocated up
	// front, during the loop), it "keeps track of how many other rows share
	// a nonzero value in the same column coordinate" — pairwise sharing
	// records whose count is Σ_j d_j·(d_j−1)/2 over column degrees d_j.
	// (Our implementation recomputes those contributions through Aᵀ instead
	// of storing them, but the footprint model follows the algorithm as
	// published so the scalability comparison is apples-to-apples.)
	var trackingPairs int64
	for j := 0; j < at.Rows; j++ {
		d := int64(at.RowNNZ(j))
		trackingPairs += d * (d - 1) / 2
	}
	footprint := q.ModeledBytes() + at.ModeledBytes() + int64(m)*4 + trackingPairs*12
	return &Result{
		Perm:           perm,
		PreprocessTime: time.Since(start),
		FootprintBytes: footprint,
		Reordered:      !perm.IsIdentity(),
		Extra:          map[string]float64{"window": float64(w)},
	}, nil
}
