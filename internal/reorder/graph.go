package reorder

import (
	"math/rand"
	"sort"
	"time"

	"bootes/internal/sparse"
)

// Graph implements the FSpGEMM graph-based row reordering (paper
// Algorithm 2, from Bank Tavakoli et al., TVLSI'24). A weighted similarity
// graph is built — vertices are rows, edge weight w(u,v) counts shared
// column coordinates — and a greedy walk repeatedly moves to the
// highest-weight unvisited neighbor (maxPath, Eq. 1 in the paper).
type Graph struct {
	// Seed picks the (paper: random) starting row deterministically and
	// breaks restart choices when the walk strands in a depleted component.
	Seed int64
}

// Name implements Reorderer.
func (Graph) Name() string { return "Graph" }

// edge is one weighted adjacency entry.
type edge struct {
	v int32
	w int32
}

// Reorder implements Reorderer.
func (g Graph) Reorder(a *sparse.CSR) (*Result, error) {
	start := time.Now()
	m := a.Rows
	if m == 0 {
		return &Result{Perm: sparse.Permutation{}, PreprocessTime: time.Since(start), Reordered: false, Extra: map[string]float64{}}, nil
	}
	at := sparse.Transpose(a.Pattern())

	// Graph construction: for each row u and each of its columns c, every
	// other row v with a nonzero in c gains one unit of w(u,v). We build
	// adjacency per row with a scratch counter to avoid a global hash map.
	adj := make([][]edge, m)
	counter := make([]int32, m)
	touched := make([]int32, 0, 256)
	var edgeCount int64
	for u := 0; u < m; u++ {
		touched = touched[:0]
		for _, c := range a.Row(u) {
			for _, v := range at.Row(int(c)) {
				if int(v) == u {
					continue
				}
				if counter[v] == 0 {
					touched = append(touched, v)
				}
				counter[v]++
			}
		}
		if len(touched) > 0 {
			list := make([]edge, len(touched))
			for i, v := range touched {
				list[i] = edge{v: v, w: counter[v]}
				counter[v] = 0
			}
			// Sort by weight descending, index ascending, so maxPath is the
			// first unvisited entry and the walk is deterministic.
			sort.Slice(list, func(x, y int) bool {
				if list[x].w != list[y].w {
					return list[x].w > list[y].w
				}
				return list[x].v < list[y].v
			})
			adj[u] = list
			edgeCount += int64(len(list))
		}
	}

	visited := make([]bool, m)
	perm := make(sparse.Permutation, 0, m)
	rng := rand.New(rand.NewSource(g.Seed ^ 0x9a7a))
	cur := rng.Intn(m)
	visited[cur] = true
	perm = append(perm, int32(cur))
	nextUnvisited := 0

	for len(perm) < m {
		next := -1
		for _, e := range adj[cur] {
			if !visited[e.v] {
				next = int(e.v)
				break
			}
		}
		if next == -1 {
			// The walk stranded (isolated row or depleted neighborhood);
			// restart from the lowest-index unvisited row.
			for nextUnvisited < m && visited[nextUnvisited] {
				nextUnvisited++
			}
			if nextUnvisited == m {
				break
			}
			next = nextUnvisited
		}
		visited[next] = true
		perm = append(perm, int32(next))
		cur = next
	}

	footprint := edgeCount*8 + int64(m)*1 + int64(m)*4 + at.ModeledBytes() // edges + visited + P + Aᵀ
	return &Result{
		Perm:           perm,
		PreprocessTime: time.Since(start),
		FootprintBytes: footprint,
		Reordered:      !perm.IsIdentity(),
		Extra:          map[string]float64{"edges": float64(edgeCount)},
	}, nil
}
