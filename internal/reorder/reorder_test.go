package reorder

import (
	"testing"

	"bootes/internal/sparse"
	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

// testMatrix returns a scrambled block matrix small enough for fast tests
// but large enough that reordering matters: with 8 hidden groups the
// original (shuffled) order has a working set of all groups at once, while
// a recovered grouping needs only one group's B rows at a time.
func testMatrix(seed int64) *sparse.CSR {
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 2048, Cols: 2048, Density: 0.01, Seed: seed, Groups: 8,
	})
}

func allReorderers() []Reorderer {
	return []Reorderer{Original{}, Gamma{Seed: 1}, Graph{Seed: 1}, Hier{}}
}

func TestAllProduceValidPermutations(t *testing.T) {
	a := testMatrix(1)
	for _, r := range allReorderers() {
		res, err := r.Reorder(a)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := res.Perm.Validate(a.Rows); err != nil {
			t.Errorf("%s: invalid permutation: %v", r.Name(), err)
		}
		if res.FootprintBytes < 0 {
			t.Errorf("%s: negative footprint", r.Name())
		}
		if res.PreprocessTime < 0 {
			t.Errorf("%s: negative time", r.Name())
		}
	}
}

func TestOriginalIsIdentity(t *testing.T) {
	a := testMatrix(2)
	res, err := Original{}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Perm.IsIdentity() {
		t.Error("Original permutation is not the identity")
	}
	if res.Reordered {
		t.Error("Original reports Reordered = true")
	}
}

func TestReorderersImproveLocalityOnBlockMatrix(t *testing.T) {
	// On a scrambled block matrix every real reorderer should reduce the
	// row-granular LRU B-traffic versus the original order.
	a := testMatrix(3)
	b := a // paper methodology: B = A
	const cache = 16 << 10
	const elem = 12
	base, err := trafficmodel.EstimateB(a, b, cache, elem)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Reorderer{Gamma{Seed: 1}, Graph{Seed: 1}, Hier{}} {
		res, err := r.Reorder(a)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		est, err := trafficmodel.EstimateBWithPerm(a, b, res.Perm, cache, elem)
		if err != nil {
			t.Fatal(err)
		}
		if est.BTraffic >= base.BTraffic {
			t.Errorf("%s: traffic %d did not improve on original %d", r.Name(), est.BTraffic, base.BTraffic)
		}
	}
}

func TestGammaWindowParameter(t *testing.T) {
	a := testMatrix(4)
	small, err := Gamma{W: 4, Seed: 1}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Gamma{W: 512, Seed: 1}.Reorder(a)
	if err != nil {
		t.Fatal(err)
	}
	if small.Extra["window"] != 4 || large.Extra["window"] != 512 {
		t.Error("window size not recorded")
	}
	// Different windows should usually give different permutations.
	same := true
	for i := range small.Perm {
		if small.Perm[i] != large.Perm[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: W=4 and W=512 produced identical permutations (possible but unusual)")
	}
}

func TestReordererDeterminism(t *testing.T) {
	a := testMatrix(5)
	for _, mk := range []func() Reorderer{
		func() Reorderer { return Gamma{Seed: 9} },
		func() Reorderer { return Graph{Seed: 9} },
		func() Reorderer { return Hier{} },
	} {
		r1, err := mk().Reorder(a)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := mk().Reorder(a)
		if err != nil {
			t.Fatal(err)
		}
		name := mk().Name()
		if len(r1.Perm) != len(r2.Perm) {
			t.Fatalf("%s nondeterministic length", name)
		}
		for i := range r1.Perm {
			if r1.Perm[i] != r2.Perm[i] {
				t.Fatalf("%s nondeterministic at %d", name, i)
			}
		}
	}
}

func TestEmptyAndTinyMatrices(t *testing.T) {
	empty := sparse.Zero(0, 0)
	one := sparse.Identity(1, false)
	diag := sparse.Identity(5, false)
	for _, r := range allReorderers() {
		for _, m := range []*sparse.CSR{empty, one, diag} {
			res, err := r.Reorder(m)
			if err != nil {
				t.Fatalf("%s on %dx%d: %v", r.Name(), m.Rows, m.Cols, err)
			}
			if err := res.Perm.Validate(m.Rows); err != nil {
				t.Errorf("%s on %dx%d: %v", r.Name(), m.Rows, m.Cols, err)
			}
		}
	}
}

func TestMatrixWithEmptyRows(t *testing.T) {
	// Rows 1 and 3 empty; all reorderers must still emit a full permutation.
	m, err := sparse.FromRows(5, 5, [][]int32{{0, 1}, {}, {0, 1}, {}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range allReorderers() {
		res, err := r.Reorder(m)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := res.Perm.Validate(5); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestGammaGroupsSimilarRows(t *testing.T) {
	// Three row templates interleaved: 0,3,6 share columns; 1,4,7; 2,5,8.
	rows := [][]int32{
		{0, 1, 2}, {10, 11, 12}, {20, 21, 22},
		{0, 1, 2}, {10, 11, 12}, {20, 21, 22},
		{0, 1, 2}, {10, 11, 12}, {20, 21, 22},
	}
	m, err := sparse.FromRows(9, 30, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Gamma{W: 9, Seed: 0}.Reorder(m)
	if err != nil {
		t.Fatal(err)
	}
	// After reordering, rows with the same template must be adjacent:
	// count template transitions; perfect grouping has exactly 2.
	template := func(r int32) int32 { return m.Row(int(r))[0] / 10 }
	transitions := 0
	for i := 1; i < len(res.Perm); i++ {
		if template(res.Perm[i]) != template(res.Perm[i-1]) {
			transitions++
		}
	}
	if transitions != 2 {
		t.Errorf("Gamma grouping transitions = %d, want 2 (perm %v)", transitions, res.Perm)
	}
}
