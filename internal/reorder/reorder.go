// Package reorder defines the row-reordering interface shared by Bootes and
// the paper's three baselines, and implements those baselines:
//
//   - Original — the identity (no reordering).
//   - Gamma — GAMMA's windowed greedy priority-queue algorithm (paper Alg. 1).
//   - Graph — the FSpGEMM weighted-similarity-graph greedy walk (paper Alg. 2).
//   - Hier — LSH-seeded agglomerative hierarchical clustering (paper Alg. 3).
//
// Every reorderer reports its preprocessing wall time and a deterministic
// modeled peak memory footprint, the two quantities compared in the paper's
// scalability study (Figure 5).
package reorder

import (
	"time"

	"bootes/internal/sparse"
)

// Result is the outcome of a reordering pass.
type Result struct {
	// Perm maps new row position to original row (perm[new] = old).
	Perm sparse.Permutation
	// PreprocessTime is the wall time spent computing the permutation.
	PreprocessTime time.Duration
	// FootprintBytes is the modeled peak host memory the algorithm's data
	// structures require (deterministic; excludes the input matrix itself).
	FootprintBytes int64
	// Reordered reports whether Perm differs from the identity. Reorderers
	// with a cost gate (Bootes) set this false when they decline to reorder.
	Reordered bool
	// Degraded reports that the reorderer could not run its preferred
	// configuration and fell down its degradation ladder (lower-memory
	// operator, retried eigensolve, fixed small k, or identity). The plan is
	// still valid; DegradedReason records the rung and why. Baselines never
	// set it.
	Degraded bool
	// DegradedReason is the human-readable trail of degradation decisions,
	// empty when Degraded is false.
	DegradedReason string
	// SimilarityMode names the similarity tier the spectral pass ran
	// ("exact", "bitset", "approx", "implicit"). Empty when no spectral pass
	// ran (gate decline, identity fallback, baselines).
	SimilarityMode string
	// AutoK records the eigengap auto-k outcome when auto-k was requested:
	// "selected: ..." when the eigengap chose k, "fallback-...: ..." when
	// selection declined and the fixed k was used, "degraded" when the
	// attempt failed and planning fell to the fixed-k ladder. Empty when
	// auto-k was not requested.
	AutoK string
	// Extra carries algorithm-specific diagnostics (e.g. Lanczos matvec
	// count, chosen k) for the experiment reports.
	Extra map[string]float64
}

// Reorderer computes a row permutation of matrix A intended to improve the
// reuse of rows of B during row-wise-product SpGEMM.
type Reorderer interface {
	// Name identifies the algorithm in reports ("Bootes", "Gamma", ...).
	Name() string
	// Reorder computes the permutation for the pattern of a.
	Reorder(a *sparse.CSR) (*Result, error)
}

// Original is the no-reordering baseline.
type Original struct{}

// Name implements Reorderer.
func (Original) Name() string { return "Original" }

// Reorder returns the identity permutation.
func (Original) Reorder(a *sparse.CSR) (*Result, error) {
	start := time.Now()
	perm := sparse.IdentityPerm(a.Rows)
	return &Result{
		Perm:           perm,
		PreprocessTime: time.Since(start),
		FootprintBytes: int64(a.Rows) * 4,
		Reordered:      false,
		Extra:          map[string]float64{},
	}, nil
}
