package reorder

import (
	"container/heap"
	"sort"
	"time"

	"bootes/internal/lsh"
	"bootes/internal/sparse"
	"bootes/internal/unionfind"
)

// Hier implements the hierarchical-clustering row reordering of Jiang et al.
// (PPoPP'20), the paper's Algorithm 3. MinHash LSH proposes candidate row
// pairs; a max-heap keyed on similarity drives agglomerative merging with a
// union-find forest. Clusters exceeding ThresholdSize are frozen, and the
// final permutation lists clusters contiguously.
type Hier struct {
	// Params are the (fixed, per the paper) LSH parameters.
	Params lsh.Params
	// ThresholdSize freezes clusters larger than this. 0 selects 128.
	ThresholdSize int
}

// Name implements Reorderer.
func (Hier) Name() string { return "Hier" }

// simPair is a heap entry: candidate pair (a, b) with similarity score.
type simPair struct {
	a, b int32
	sim  float64
}

// simHeap is a max-heap of simPair, ties broken by indices for determinism.
type simHeap []simPair

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].sim != h[j].sim {
		return h[i].sim > h[j].sim
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}
func (h simHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x interface{}) { *h = append(*h, x.(simPair)) }
func (h *simHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Reorder implements Reorderer.
func (hr Hier) Reorder(a *sparse.CSR) (*Result, error) {
	start := time.Now()
	m := a.Rows
	if m == 0 {
		return &Result{Perm: sparse.Permutation{}, PreprocessTime: time.Since(start), Reordered: false, Extra: map[string]float64{}}, nil
	}
	params := hr.Params
	if params.SigLen == 0 {
		params = lsh.DefaultParams()
	}
	threshold := hr.ThresholdSize
	if threshold <= 0 {
		threshold = 128
	}

	ap := a.Pattern()
	index := lsh.Build(m, ap.Row, params)
	pairs := index.CandidatePairs()

	h := make(simHeap, 0, len(pairs))
	for _, p := range pairs {
		h = append(h, simPair{a: p.A, b: p.B, sim: index.SignatureSimilarity(int(p.A), int(p.B))})
	}
	heap.Init(&h)
	peakHeap := int64(len(h))

	uf := unionfind.New(m)
	frozen := make([]bool, m) // indexed by current root; checked via root lookup

	for h.Len() > 0 {
		p := heap.Pop(&h).(simPair)
		ri, rj := uf.Find(int(p.a)), uf.Find(int(p.b))
		if ri == rj || frozen[ri] || frozen[rj] {
			continue
		}
		repI, repJ := uf.Representative(ri), uf.Representative(rj)
		if int32(repI) == p.a && int32(repJ) == p.b || int32(repI) == p.b && int32(repJ) == p.a {
			// Both endpoints are their clusters' representatives: merge.
			root := uf.Union(ri, rj)
			if uf.Size(root) > threshold {
				frozen[root] = true
			}
			continue
		}
		// Re-key on the representatives' exact Jaccard similarity and
		// reinsert (Algorithm 3 lines 19-24).
		if repI == repJ {
			continue
		}
		ra, rb := int32(repI), int32(repJ)
		if ra > rb {
			ra, rb = rb, ra
		}
		heap.Push(&h, simPair{a: ra, b: rb, sim: sparse.Jaccard(ap, int(ra), int(rb))})
		if int64(h.Len()) > peakHeap {
			peakHeap = int64(h.Len())
		}
	}

	// Group rows into clusters; order clusters by their smallest member and
	// members by original index — deterministic and locality-preserving.
	groups := uf.Groups()
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(x, y int) bool { return groups[roots[x]][0] < groups[roots[y]][0] })
	perm := make(sparse.Permutation, 0, m)
	for _, r := range roots {
		for _, row := range groups[r] {
			perm = append(perm, int32(row))
		}
	}

	footprint := index.ModeledBytes() + peakHeap*16 + uf.ModeledBytes() + int64(m)*4
	return &Result{
		Perm:           perm,
		PreprocessTime: time.Since(start),
		FootprintBytes: footprint,
		Reordered:      !perm.IsIdentity(),
		Extra: map[string]float64{
			"candidates": float64(len(pairs)),
			"clusters":   float64(uf.Clusters()),
		},
	}, nil
}
