// Package solver provides a conjugate-gradient solver for symmetric
// positive-definite sparse systems. It is the canonical iterative consumer
// of the library's SpMV kernel and the concrete workload class behind the
// paper's §5.3 amortization argument: the operator's sparsity pattern is
// fixed across hundreds to thousands of iterations, exactly the reuse regime
// where preprocessing pays for itself.
package solver

import (
	"errors"
	"math"

	"bootes/internal/sparse"
)

// CGOptions configures the conjugate-gradient iteration.
type CGOptions struct {
	// MaxIters bounds the iterations. 0 selects 10·n.
	MaxIters int
	// Tol is the relative residual target ‖r‖/‖b‖. 0 selects 1e-10.
	Tol float64
	// Jacobi enables diagonal (Jacobi) preconditioning.
	Jacobi bool
}

// CGResult reports a solve.
type CGResult struct {
	// X is the solution vector.
	X []float64
	// Iterations actually performed.
	Iterations int
	// Residual is the final relative residual ‖b−Ax‖/‖b‖.
	Residual float64
	// Converged reports whether Tol was reached within MaxIters.
	Converged bool
}

// Errors returned by CG.
var (
	ErrNotSquare  = errors.New("solver: matrix must be square")
	ErrDim        = errors.New("solver: right-hand side length mismatch")
	ErrIndefinite = errors.New("solver: matrix appears indefinite (pᵀAp ≤ 0)")
	ErrZeroDiag   = errors.New("solver: zero diagonal entry with Jacobi preconditioning")
)

// CG solves A·x = b for SPD A with (optionally preconditioned) conjugate
// gradients.
func CG(a *sparse.CSR, b []float64, opts CGOptions) (*CGResult, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, ErrNotSquare
	}
	if len(b) != n {
		return nil, ErrDim
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 10 * n
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-10
	}

	var invDiag []float64
	if opts.Jacobi {
		invDiag = make([]float64, n)
		d := sparse.Diag(a)
		for i, v := range d {
			if v == 0 {
				return nil, ErrZeroDiag
			}
			invDiag[i] = 1 / v
		}
	}
	applyPrec := func(dst, src []float64) {
		if invDiag == nil {
			copy(dst, src)
			return
		}
		for i := range dst {
			dst[i] = src[i] * invDiag[i]
		}
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b − A·0
	z := make([]float64, n)
	applyPrec(z, r)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)

	normB := norm2(b)
	if normB == 0 {
		return &CGResult{X: x, Converged: true}, nil
	}
	rz := dot(r, z)
	res := &CGResult{}
	for res.Iterations = 0; res.Iterations < opts.MaxIters; res.Iterations++ {
		if norm2(r)/normB <= opts.Tol {
			res.Converged = true
			break
		}
		if err := sparse.SpMV(a, p, ap); err != nil {
			return nil, err
		}
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, ErrIndefinite
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		applyPrec(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if !res.Converged && norm2(r)/normB <= opts.Tol {
		res.Converged = true
	}
	res.X = x
	res.Residual = norm2(r) / normB
	return res, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(v []float64) float64 { return math.Sqrt(dot(v, v)) }
