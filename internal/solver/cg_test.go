package solver

import (
	"math"
	"math/rand"
	"testing"

	"bootes/internal/sparse"
)

// laplacian1D returns the SPD tridiagonal [−1, 2, −1] matrix.
func laplacian1D(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, false)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func TestCGSolvesLaplacian(t *testing.T) {
	n := 200
	a := laplacian1D(n)
	rng := rand.New(rand.NewSource(1))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	if err := sparse.SpMV(a, want, b); err != nil {
		t.Fatal(err)
	}
	for _, jacobi := range []bool{false, true} {
		res, err := CG(a, b, CGOptions{Jacobi: jacobi})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("jacobi=%v: not converged (residual %g after %d iters)", jacobi, res.Residual, res.Iterations)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-6 {
				t.Fatalf("jacobi=%v: x[%d] = %v, want %v", jacobi, i, res.X[i], want[i])
			}
		}
	}
}

func TestCGExactArithmeticBound(t *testing.T) {
	// CG converges in at most n iterations in exact arithmetic; allow slack.
	n := 64
	a := laplacian1D(n)
	b := make([]float64, n)
	b[0] = 1
	res, err := CG(a, b, CGOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 2*n {
		t.Errorf("iterations = %d (converged=%v)", res.Iterations, res.Converged)
	}
}

func TestCGErrors(t *testing.T) {
	if _, err := CG(sparse.Zero(2, 3), []float64{1, 2}, CGOptions{}); err == nil {
		t.Error("non-square accepted")
	}
	a := laplacian1D(4)
	if _, err := CG(a, []float64{1}, CGOptions{}); err == nil {
		t.Error("bad RHS length accepted")
	}
	// Indefinite matrix: −I.
	neg, err := sparse.FromDense([][]float64{{-1, 0}, {0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CG(neg, []float64{1, 1}, CGOptions{}); err == nil {
		t.Error("indefinite matrix accepted")
	}
	// Zero diagonal with Jacobi.
	zd, err := sparse.FromDense([][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CG(zd, []float64{1, 1}, CGOptions{Jacobi: true}); err == nil {
		t.Error("zero diagonal accepted with Jacobi")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(8)
	res, err := CG(a, make([]float64, 8), CGOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero RHS: %v %v", res, err)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Error("zero RHS should give zero solution")
		}
	}
}

func TestJacobiPreconditionerHelpsIllConditioned(t *testing.T) {
	// Diagonal scaling spreads the spectrum; Jacobi restores it.
	n := 128
	coo := sparse.NewCOO(n, n, false)
	for i := 0; i < n; i++ {
		scale := 1.0 + float64(i)*10
		coo.Add(i, i, 2*scale)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	plain, err := CG(a, b, CGOptions{Tol: 1e-8, MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	prec, err := CG(a, b, CGOptions{Tol: 1e-8, MaxIters: 5000, Jacobi: true})
	if err != nil {
		t.Fatal(err)
	}
	if !prec.Converged {
		t.Fatal("preconditioned CG did not converge")
	}
	if prec.Iterations >= plain.Iterations {
		t.Errorf("Jacobi did not help: %d vs %d iterations", prec.Iterations, plain.Iterations)
	}
}
