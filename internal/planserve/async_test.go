package planserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bootes/internal/plancache"
	"bootes/internal/planqueue"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// newTestQueue builds a started planqueue over a stub pipeline for server
// tests. The queue is killed at cleanup.
func newTestQueue(t testing.TB, cache *plancache.Cache, run planqueue.RunFunc) *planqueue.Queue {
	t.Helper()
	if run == nil {
		run = func(_ context.Context, m *sparse.CSR, _ int) (*reorder.Result, error) {
			return healthyResult(m), nil
		}
	}
	q, err := planqueue.Open(planqueue.Config{
		Dir:          t.TempDir(),
		Run:          run,
		Cache:        cache,
		Workers:      1,
		RetryBackoff: time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Kill)
	q.Start()
	return q
}

func doPlan(t testing.TB, url, query string, body []byte, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/plan"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

func getJob(t testing.TB, url, id string) (*http.Response, JobResponse) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatalf("decoding job response %q: %v", body, err)
		}
	}
	return resp, jr
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := newTestQueue(t, cache, nil)
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache, Queue: q})

	resp, body := doPlan(t, ts.URL, "?async=1", mmBody(t, testMatrix(t, 1)), map[string]string{"X-Tenant": "acme"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d: %s", resp.StatusCode, body)
	}
	var sub JobResponse
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatal(err)
	}
	if sub.JobID == "" || sub.State != "queued" || sub.Tenant != "acme" {
		t.Fatalf("submission response %+v", sub)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.JobID {
		t.Fatalf("Location = %q", loc)
	}

	deadline := time.Now().Add(5 * time.Second)
	var jr JobResponse
	for {
		var r *http.Response
		r, jr = getJob(t, ts.URL, sub.JobID)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("job poll status %d", r.StatusCode)
		}
		if jr.State == "done" || jr.State == "dead" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", jr.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if jr.State != "done" || jr.Plan == nil {
		t.Fatalf("finished job = %+v, want done with a plan", jr)
	}
	if !jr.Plan.Reordered || jr.Plan.K != 8 {
		t.Fatalf("plan payload = %+v", jr.Plan)
	}
	if jr.Plan.Perm != nil {
		t.Fatal("permutation included without ?perm=1")
	}
	// The same submission now dedupes... against the cache-completed plan via
	// a fresh job that finishes instantly from cache.
	resp2, body2 := doPlan(t, ts.URL, "?async=1", mmBody(t, testMatrix(t, 1)), nil)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmission status %d: %s", resp2.StatusCode, body2)
	}
}

func TestAsyncWithoutQueueIs501(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	resp, _ := doPlan(t, ts.URL, "?async=1", mmBody(t, testMatrix(t, 2)), nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("async submit without a queue = %d, want 501", resp.StatusCode)
	}
	if r, _ := getJob(t, ts.URL, "j-0000000001"); r.StatusCode != http.StatusNotImplemented {
		t.Fatalf("job poll without a queue = %d, want 501", r.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	q := newTestQueue(t, nil, nil)
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Queue: q})
	if r, _ := getJob(t, ts.URL, "j-9999999999"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job poll = %d, want 404", r.StatusCode)
	}
}

// TestAsyncBacklogRejection maps the queue's backlog bounds to 429 +
// Retry-After on the submission path.
func TestAsyncBacklogRejection(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	q, err := planqueue.Open(planqueue.Config{
		Dir: t.TempDir(),
		Run: func(ctx context.Context, m *sparse.CSR, _ int) (*reorder.Result, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return healthyResult(m), nil
		},
		Workers:            1,
		MaxQueued:          2,
		MaxQueuedPerTenant: 2,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Kill)
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Queue: q})

	for i := 0; i < 2; i++ {
		resp, body := doPlan(t, ts.URL, "?async=1", mmBody(t, testMatrix(t, 10+int64(i))), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := doPlan(t, ts.URL, "?async=1", mmBody(t, testMatrix(t, 12)), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-backlog submission status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(body, "queue full") {
		t.Fatalf("rejection body %q", body)
	}
}

// TestTenantQuotaShedsWithRetryAfter drives a flooding tenant into its token
// bucket's floor and checks the polite tenant is untouched — on the sync
// path, before any body is read.
func TestTenantQuotaShedsWithRetryAfter(t *testing.T) {
	p := &countingPlanner{}
	s, ts := newTestServer(t, Config{
		Plan: p.fn(),
		Tenants: TenantConfig{
			Rate:  0.5, // 1 token per 2s: easy to exhaust deterministically
			Burst: 2,
		},
	})
	body := mmBody(t, testMatrix(t, 20))
	flood := map[string]string{"X-Tenant": "flooder"}
	for i := 0; i < 2; i++ {
		resp, b := doPlan(t, ts.URL, "", body, flood)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-quota request %d = %d: %s", i, resp.StatusCode, b)
		}
	}
	resp, b := doPlan(t, ts.URL, "", body, flood)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request = %d: %s", resp.StatusCode, b)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("quota shed without Retry-After")
	}
	if !strings.Contains(b, `tenant "flooder"`) {
		t.Fatalf("shed body %q does not name the tenant", b)
	}
	// Tenant-specific: the refill rate (0.5/s, 1 token owed) puts the wait
	// near 2s — not the generic admission value of 1.
	if ra == "1" {
		t.Fatalf("Retry-After = %q, want the tenant bucket's own refill time", ra)
	}
	// Another tenant is not collateral damage.
	if resp, b := doPlan(t, ts.URL, "", body, map[string]string{"X-Tenant": "polite"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant = %d: %s", resp.StatusCode, b)
	}
	if st := s.Stats(); st.TenantShed != 1 {
		t.Fatalf("Stats.TenantShed = %d, want 1", st.TenantShed)
	}
	// The per-tenant shed counter carries the tenant label.
	var sb strings.Builder
	if err := s.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `bootes_tenant_shed_total{tenant="flooder"} 1`) {
		t.Fatalf("per-tenant shed metric missing:\n%s", sb.String())
	}
}

func TestTenantQuotaOverrides(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{
		Plan: p.fn(),
		Tenants: TenantConfig{
			Rate: 0.01, Burst: 1,
			Overrides: map[string]TenantLimit{"vip": {Rate: 1000, Burst: 100}},
		},
	})
	body := mmBody(t, testMatrix(t, 21))
	// ?tenant= works as the identity fallback when the header is absent.
	for i := 0; i < 5; i++ {
		if resp, b := doPlan(t, ts.URL, "?tenant=vip", body, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("vip request %d = %d: %s", i, resp.StatusCode, b)
		}
	}
	if resp, _ := doPlan(t, ts.URL, "?tenant=bulk", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatal("first bulk request should pass on its burst token")
	}
	if resp, _ := doPlan(t, ts.URL, "?tenant=bulk", body, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatal("second bulk request should exhaust the burst of 1")
	}
}

// TestOversizedUploadIs413 is the -max-upload-bytes guard: a body over the
// limit is refused with 413 (not 400) before the server buffers it.
func TestOversizedUploadIs413(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn(), MaxUploadBytes: 512})
	big := mmBody(t, testMatrix(t, 22)) // 48×48 at 8% density ≫ 512 bytes
	if len(big) <= 512 {
		t.Fatalf("test body only %d bytes; raise the matrix size", len(big))
	}
	resp, body := doPlan(t, ts.URL, "", big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload = %d (%s), want 413", resp.StatusCode, body)
	}
	if !strings.Contains(body, "512") {
		t.Fatalf("413 body %q does not state the limit", body)
	}
	if p.totalRuns() != 0 {
		t.Fatal("pipeline ran on a rejected oversized upload")
	}
	// A body exactly at the limit parses normally (the guard is >, not ≥).
	small := mmBody(t, testMatrix(t, 23))
	_, ts2 := newTestServer(t, Config{Plan: p.fn(), MaxUploadBytes: int64(len(small))})
	if resp, b := doPlan(t, ts2.URL, "", small, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("at-limit upload = %d: %s", resp.StatusCode, b)
	}
}

// TestSingleflightFollowerCancelDetaches pins the follower-detach contract
// (the satellite coverage for singleflight.go): a joined waiter whose context
// is cancelled must return promptly with the context error, without
// cancelling the leader's flight and without leaking an admission slot.
func TestSingleflightFollowerCancelDetaches(t *testing.T) {
	var g flightGroup
	leaderGate := make(chan struct{})
	leaderStarted := make(chan struct{})
	res := &reorder.Result{Reordered: true}

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderRes *reorder.Result
	var leaderShared bool
	var leaderErr error
	go func() {
		defer wg.Done()
		leaderRes, leaderShared, leaderErr = g.do(context.Background(), "k", func() (*reorder.Result, error) {
			close(leaderStarted)
			<-leaderGate
			return res, nil
		})
	}()
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, shared, err := g.do(ctx, "k", func() (*reorder.Result, error) {
			t.Error("follower ran the function itself")
			return nil, nil
		})
		if !shared {
			t.Error("cancelled follower not marked shared")
		}
		followerDone <- err
	}()
	// Let the follower join, then abandon it mid-wait.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled follower never detached")
	}

	// The leader is unaffected: release it and it completes with its result.
	close(leaderGate)
	wg.Wait()
	if leaderErr != nil || leaderShared || leaderRes != res {
		t.Fatalf("leader = (%v, shared=%v, %v), want its own result", leaderRes, leaderShared, leaderErr)
	}

	// The key is free again: a new call becomes a leader, not a follower.
	r2, shared, err := g.do(context.Background(), "k", func() (*reorder.Result, error) {
		return res, nil
	})
	if err != nil || shared || r2 != res {
		t.Fatalf("post-flight call = (%v, shared=%v, %v), want a fresh leader", r2, shared, err)
	}
}

// TestSingleflightFollowerCancelUnderLoad runs the detach scenario through
// the full server against a saturated admission semaphore, asserting no slot
// leaks (race-clean under -race; leakcheck guards the slot invariant).
func TestSingleflightFollowerCancelUnderLoad(t *testing.T) {
	gate := make(chan struct{})
	p := &countingPlanner{gate: gate}
	s, ts := newTestServer(t, Config{Plan: p.fn(), MaxInFlight: 1})
	body := mmBody(t, testMatrix(t, 24))

	// Leader occupies the only slot.
	leaderDone := make(chan int, 1)
	go func() {
		resp, _ := postPlan(t, ts.URL, body, "")
		leaderDone <- resp.StatusCode
	}()
	waitForCondition(t, time.Second, func() bool { return s.SlotsInUse() == 1 })

	// Followers join the same key with a short deadline and give up.
	var fwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			resp, err := http.DefaultClient.Do(req.WithContext(ctx))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	fwg.Wait()

	// Leader still completes healthy after its followers abandoned it.
	close(gate)
	if code := <-leaderDone; code != http.StatusOK {
		t.Fatalf("leader finished %d after followers detached, want 200", code)
	}
	waitForCondition(t, time.Second, func() bool { return s.SlotsInUse() == 0 })
	if n := p.totalRuns(); n != 1 {
		t.Fatalf("pipeline ran %d times, want 1 (followers must not re-run)", n)
	}
}

func waitForCondition(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
