package planserve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"

	"bootes/internal/plancache"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// respond writes the JSON plan response. The permutation itself is opt-in
// (?perm=1): it is rows×~10 bytes of JSON that most clients (monitoring,
// cache warmers) do not want.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, resp *PlanResponse, cached, coalesced bool, breakerNote string) {
	resp.Cached = cached
	resp.Coalesced = coalesced
	resp.Breaker = breakerNote
	if r.URL.Query().Get("perm") != "1" {
		resp.Perm = nil
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Degraded {
		w.Header().Set("X-Bootes-Degraded", "true")
	}
	_ = json.NewEncoder(w).Encode(resp)
}

func planResponseFromResult(key string, m *sparse.CSR, res *reorder.Result) *PlanResponse {
	return &PlanResponse{
		Key:               key,
		Reordered:         res.Reordered,
		K:                 int(res.Extra["k"]),
		Degraded:          res.Degraded,
		DegradedReason:    res.DegradedReason,
		PreprocessSeconds: res.PreprocessTime.Seconds(),
		FootprintBytes:    res.FootprintBytes,
		Rows:              m.Rows,
		SimilarityMode:    res.SimilarityMode,
		AutoK:             res.AutoK,
		Perm:              res.Perm,
	}
}

// planResponseFromEntry shapes a cache entry into a response. On a server
// planning under auto-k the outcome is reported as "cached": the entry was
// keyed (and thus planned) with auto-k, but the per-attempt outcome string is
// not persisted.
func (s *Server) planResponseFromEntry(e *plancache.Entry) *PlanResponse {
	autoK := ""
	if s.cfg.AutoK {
		autoK = "cached"
	}
	return &PlanResponse{
		AutoK:             autoK,
		Key:               e.Key,
		Reordered:         e.Reordered,
		K:                 e.K,
		Degraded:          e.Degraded,
		DegradedReason:    e.DegradedReason,
		PreprocessSeconds: e.PreprocessSeconds,
		FootprintBytes:    e.FootprintBytes,
		Rows:              len(e.Perm),
		Perm:              e.Perm,
	}
}

// resultFromEntry rebuilds a pipeline-shaped result from a cached entry, for
// the singleflight leader's double-check path.
func resultFromEntry(e *plancache.Entry) *reorder.Result {
	return &reorder.Result{
		Perm:           e.Perm,
		Reordered:      e.Reordered,
		Degraded:       e.Degraded,
		DegradedReason: e.DegradedReason,
		FootprintBytes: e.FootprintBytes,
		Extra:          map[string]float64{"k": float64(e.K)},
	}
}

func entryFromResult(key string, res *reorder.Result) *plancache.Entry {
	return &plancache.Entry{
		Key:               key,
		Perm:              res.Perm,
		Reordered:         res.Reordered,
		K:                 int(res.Extra["k"]),
		Degraded:          res.Degraded,
		DegradedReason:    res.DegradedReason,
		PreprocessSeconds: res.PreprocessTime.Seconds(),
		FootprintBytes:    res.FootprintBytes,
	}
}

// sniffReader lets the matrix reader peek at the body's magic bytes without
// consuming them, so one endpoint accepts both BCSR and Matrix Market.
type sniffReader struct{ *bufio.Reader }

func newSniffReader(r io.Reader) *sniffReader { return &sniffReader{bufio.NewReader(r)} }

// hasPrefix reports whether the stream starts with p. A stream too short to
// tell is not an error here — the format parser produces the real diagnosis.
func (s *sniffReader) hasPrefix(p string) (bool, error) {
	b, err := s.Peek(len(p))
	if len(b) < len(p) {
		if len(b) == 0 && err != nil && err != io.EOF {
			return false, err
		}
		return false, nil
	}
	return string(b) == p, nil
}
