// Package planserve is the resilient plan-serving layer behind cmd/bootesd:
// it fronts the fault-tolerant planning pipeline with a crash-safe plan
// cache, admission control with load shedding, request coalescing, retry
// with backoff for transient degradations, a degradation circuit breaker,
// and graceful drain.
//
// Request lifecycle for POST /v1/plan:
//
//	parse matrix → content-hash key → cache lookup
//	  → breaker check (open ⇒ immediate identity plan, marked, never cached)
//	  → singleflight join (followers wait, consuming no slot)
//	  → leader: admission (bounded in-flight + bounded queue; full ⇒ 429)
//	  → pipeline with per-request deadline, retrying transient degradations
//	    with exponential backoff + jitter
//	  → durable cache write (healthy plans only) → respond
package planserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bootes/internal/antientropy"
	"bootes/internal/faultinject"
	"bootes/internal/obs"
	"bootes/internal/plancache"
	"bootes/internal/planqueue"
	"bootes/internal/planverify"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// PlanFunc runs the planning pipeline on m. attempt is 0 on the first try
// and increments across serve-level retries, letting implementations vary
// the seed so a retry is not a deterministic replay of the failure.
type PlanFunc func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error)

// Config assembles a Server.
type Config struct {
	// Plan is the planning pipeline (required).
	Plan PlanFunc
	// Cache is the persistent plan cache; nil disables caching.
	Cache *plancache.Cache
	// Queue is the durable async plan queue behind POST /v1/plan?async=1 and
	// GET /v1/jobs/{id}; nil answers async submissions with 501. The queue's
	// lifecycle (Open/Start/Stop) belongs to the caller — cmd/bootesd drains
	// it alongside the HTTP server.
	Queue *planqueue.Queue
	// Tenants is the per-tenant traffic-shaping policy (token-bucket quotas,
	// identified by X-Tenant or ?tenant=). A zero Rate with no Overrides
	// disables quota enforcement.
	Tenants TenantConfig
	// MaxInFlight bounds concurrently executing pipelines (default 4).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// requests are shed with 429 (default 2×MaxInFlight).
	MaxQueue int
	// DefaultDeadline caps a request that sends no X-Deadline (default 60s).
	// A request's deadline also becomes the pipeline's wall-clock budget.
	DefaultDeadline time.Duration
	// MaxRetries re-runs a pipeline whose plan came back transiently
	// degraded (eigensolver non-convergence, contained panic) with
	// exponential backoff + jitter (default 2; 0 disables).
	MaxRetries int
	// RetryBackoff is the first backoff step (default 50ms); step i sleeps
	// RetryBackoff·2^i plus up to 50% jitter.
	RetryBackoff time.Duration
	// Breaker configures the degradation circuit breaker; a zero
	// FailureThreshold disables it.
	Breaker BreakerConfig
	// MaxUploadBytes bounds the request body (default 256 MB).
	MaxUploadBytes int64
	// UploadReadTimeout bounds how long a request may take to deliver its
	// matrix body (default 30s). MaxBytesReader caps how *much* a client may
	// send; this caps how *slowly* — a slowloris client trickling one byte a
	// second holds a connection, not a pipeline slot, and is cut off here.
	// Negative disables; ignored on transports without read-deadline
	// support (tests).
	UploadReadTimeout time.Duration
	// AllowLocalPaths permits `{"path": ...}` / ?path= requests that read a
	// matrix from the server's filesystem. Off by default: enable only for
	// trusted local clients (the bootesd -allow-path flag).
	AllowLocalPaths bool
	// PeerFill, when set, is consulted on a local cache miss before the
	// pipeline runs: it asks the key's replica set (internal/fleet) whether a
	// sibling already holds the plan. A hit is verified, replicated into the
	// local cache, and served without computing — the fleet-wide
	// compute-once-per-replica-set property rests on this hook.
	PeerFill func(ctx context.Context, key string) (*plancache.Entry, bool)
	// Replicate, when set, is called after the pipeline's successful cache
	// write with the entry's key (internal/antientropy pushes the fresh plan
	// to the key's other replicas, parking hints for down ones). Called
	// synchronously on the admitted request's goroutine — implementations
	// bound their own network time. Peer-filled entries are not re-announced:
	// they came from the replica set already.
	Replicate func(key string)
	// Heal, when set, contributes the anti-entropy healer's counters to
	// /statsz (the healer's lifecycle belongs to the caller, like Queue's).
	Heal *antientropy.Healer
	// AutoK marks responses from this server as planned under eigengap
	// auto-k: cache-hit responses report AutoK "cached" (the per-attempt
	// outcome string is not persisted in cache entries). Purely cosmetic for
	// the response body — the PlanFunc decides whether auto-k actually runs.
	AutoK bool
	// Seed seeds the retry jitter (deterministic tests); 0 uses a fixed seed.
	Seed int64
	// Metrics is the registry the server's serving counters register on and
	// the pipeline's stage spans record into; GET /metrics exposes it merged
	// with obs.Default(). nil scopes the server to a private registry, so
	// several servers in one process (tests) never share counts. Use one
	// registry per server: the breaker/cache view functions re-bind on reuse.
	Metrics *obs.Registry
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// Logf sinks serve-path diagnostics (cache write failures, breaker
	// transitions); nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Stats is the /statsz payload.
type Stats struct {
	// Served counts completed /v1/plan responses, by outcome.
	Served, Shed, Coalesced, Degraded, BreakerShortCircuits int64
	// Retries counts serve-level pipeline re-runs.
	Retries int64
	// VerifyViolations counts plan-verification violations observed by this
	// server (corrupt cached entries treated as misses, pipeline plans
	// replaced by identity). Any non-zero value is worth an operator's look.
	VerifyViolations int64
	// TenantShed counts requests rejected by per-tenant quotas (sync and
	// async alike); AsyncRejected counts async submissions refused by queue
	// backlog bounds.
	TenantShed, AsyncRejected int64
	// PeerFills counts local cache misses answered by a fleet sibling's
	// cache instead of a pipeline run.
	PeerFills int64
	// InFlight / Queued are instantaneous gauges.
	InFlight, Queued int64
	// Draining reports shutdown in progress.
	Draining bool
	// Breaker is the circuit state ("closed", "open", "half-open").
	Breaker string
	// BreakerTrips counts closed→open transitions.
	BreakerTrips int64
	// Cache is the plan cache's own counters (zero when caching is off).
	Cache plancache.Stats
	// Queue is the async queue's counters (nil when async is off).
	Queue *planqueue.Stats `json:",omitempty"`
	// Heal is the anti-entropy healer's counters (nil when self-healing is
	// off).
	Heal *antientropy.Stats `json:",omitempty"`
}

// Server serves planning requests over HTTP. Create with New, expose with
// Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	sem     chan struct{}
	breaker *Breaker
	flights flightGroup
	mux     *http.ServeMux
	limiter *tenantLimiter
	// optKey fingerprints this server's plan options for the queue's dedupe
	// key; one bootesd runs one pipeline configuration, so it is constant.
	optKey string

	jitterMu sync.Mutex
	jitter   *rand.Rand

	draining atomic.Bool
	warming  atomic.Bool
	inflight sync.WaitGroup // tracks admitted pipeline executions

	// Serving counters live on reg (Config.Metrics or a private registry);
	// Stats() and /statsz read the same instruments /metrics exposes.
	reg                                                      *obs.Registry
	served, shed, coalesced, degraded, retries, breakerShort *obs.Counter
	verifyBad, asyncRejected, peerFills                      *obs.Counter
	running, queued                                          *obs.Gauge
	latency                                                  *obs.HistogramVec
}

// New validates cfg, applies defaults, and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Plan == nil {
		return nil, errors.New("planserve: Config.Plan is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 2 * cfg.MaxInFlight
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 60 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 256 << 20
	}
	if cfg.UploadReadTimeout == 0 {
		cfg.UploadReadTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		breaker: NewBreaker(cfg.Breaker, cfg.Now),
		jitter:  rand.New(rand.NewSource(seed)),
	}
	s.registerMetrics(cfg.Metrics)
	s.limiter = newTenantLimiter(cfg.Tenants, cfg.Now, s.reg)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /v1/cache/digest", s.handleCacheDigest)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// registerMetrics binds the server's counters to reg (nil: a private
// registry). The breaker, drain flag, and plan cache keep their own state and
// are exposed as view functions read at exposition time, so /statsz and
// /metrics can never disagree about them.
func (s *Server) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.reg = reg
	s.served = reg.Counter("bootes_serve_served_total", "Completed /v1/plan responses.")
	s.shed = reg.Counter("bootes_serve_shed_total", "Requests shed by admission control (429).")
	s.coalesced = reg.Counter("bootes_serve_coalesced_total", "Requests that rode a concurrent identical flight.")
	s.degraded = reg.Counter("bootes_serve_degraded_total", "Responses carrying a degraded plan.")
	s.retries = reg.Counter("bootes_serve_retries_total", "Serve-level pipeline re-runs of transiently degraded plans.")
	s.breakerShort = reg.Counter("bootes_serve_breaker_short_circuits_total", "Requests answered by the breaker's identity fast-path.")
	s.verifyBad = reg.Counter("bootes_serve_verify_violations_total", "Plan-verification violations observed by this server.")
	s.asyncRejected = reg.Counter("bootes_serve_async_rejected_total", "Async submissions rejected by queue backlog bounds (429).")
	s.peerFills = reg.Counter("bootes_serve_peer_fills_total", "Local cache misses answered by a fleet sibling's cache.")
	s.running = reg.Gauge("bootes_serve_inflight", "Pipelines currently executing.")
	s.queued = reg.Gauge("bootes_serve_queued", "Requests waiting for an in-flight slot.")
	s.latency = reg.HistogramVec("bootes_serve_latency_seconds",
		"End-to-end /v1/plan request latency by outcome (ok, shed, error).",
		latencyBuckets, "outcome")
	reg.CounterFunc("bootes_serve_breaker_trips_total", "Circuit breaker closed-to-open transitions.", func() int64 {
		_, trips := s.breaker.Snapshot()
		return trips
	})
	reg.GaugeFunc("bootes_serve_breaker_state", "Circuit breaker position: 0 closed, 1 open, 2 half-open.", func() int64 {
		state, _ := s.breaker.Snapshot()
		return int64(state)
	})
	reg.GaugeFunc("bootes_serve_draining", "1 while graceful shutdown is in progress.", func() int64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("bootes_serve_warming", "1 while start-up warm-up holds readiness at 503.", func() int64 {
		if s.warming.Load() {
			return 1
		}
		return 0
	})
	if c := s.cfg.Cache; c != nil {
		reg.CounterFunc("bootes_cache_hits_total", "Plan cache hits.", func() int64 { return c.Stats().Hits })
		reg.CounterFunc("bootes_cache_misses_total", "Plan cache misses.", func() int64 { return c.Stats().Misses })
		reg.CounterFunc("bootes_cache_puts_total", "Plan cache writes.", func() int64 { return c.Stats().Puts })
		reg.CounterFunc("bootes_cache_write_errors_total", "Plan cache writes that failed.", func() int64 { return c.Stats().WriteErrors })
		reg.CounterFunc("bootes_cache_quarantined_total", "Corrupt cache entries quarantined.", func() int64 { return c.Stats().Quarantined })
		reg.GaugeFunc("bootes_cache_entries", "Plan cache entries on disk.", func() int64 { return int64(c.Stats().Entries) })
	}
}

// Handler returns the HTTP handler for the server's endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// SlotsInUse returns the number of admission (in-flight) semaphore slots
// currently held. At rest it must be 0 — the invariant leakcheck and the
// chaos harness assert after every episode: a non-zero reading with no
// requests in flight means an admitted request leaked its slot.
func (s *Server) SlotsInUse() int { return len(s.sem) }

// Shutdown performs the graceful drain: new plan requests are refused with
// 503 immediately, then Shutdown blocks until every admitted pipeline has
// finished (their cache writes are synchronous, so returning implies the
// cache is flushed) or ctx expires, whichever is first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("planserve: drain deadline exceeded with %d plans in flight: %w",
			s.running.Value(), ctx.Err())
	}
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	state, trips := s.breaker.Snapshot()
	st := Stats{
		Served:               s.served.Value(),
		Shed:                 s.shed.Value(),
		Coalesced:            s.coalesced.Value(),
		Degraded:             s.degraded.Value(),
		BreakerShortCircuits: s.breakerShort.Value(),
		Retries:              s.retries.Value(),
		VerifyViolations:     s.verifyBad.Value(),
		InFlight:             s.running.Value(),
		Queued:               s.queued.Value(),
		Draining:             s.draining.Load(),
		Breaker:              state.String(),
		BreakerTrips:         trips,
	}
	st.AsyncRejected = s.asyncRejected.Value()
	st.PeerFills = s.peerFills.Value()
	if s.limiter != nil {
		st.TenantShed = s.limiter.shedTotal.Value()
	}
	if s.cfg.Cache != nil {
		st.Cache = s.cfg.Cache.Stats()
	}
	if s.cfg.Queue != nil {
		qs := s.cfg.Queue.Stats()
		st.Queue = &qs
	}
	if s.cfg.Heal != nil {
		hs := s.cfg.Heal.Stats()
		st.Heal = &hs
	}
	return st
}

// SetWarming flips the start-up warm-up gate. While set, /readyz answers 503
// (fleet probes keep routing around this node) but every other endpoint —
// including the peer cache-fill and digest reads warm-up itself depends on —
// serves normally. bootesd sets it before streaming owned key ranges from
// replicas and clears it when the warm-up finishes or its deadline expires.
func (s *Server) SetWarming(v bool) { s.warming.Store(v) }

// PlanResponse is the /v1/plan JSON body.
type PlanResponse struct {
	Key               string  `json:"key"`
	Reordered         bool    `json:"reordered"`
	K                 int     `json:"k"`
	Degraded          bool    `json:"degraded"`
	DegradedReason    string  `json:"degradedReason,omitempty"`
	PreprocessSeconds float64 `json:"preprocessSeconds"`
	FootprintBytes    int64   `json:"footprintBytes"`
	Rows              int     `json:"rows"`
	// SimilarityMode names the similarity tier the spectral pass ran
	// ("exact", "bitset", "approx", "implicit"); empty when no spectral pass
	// ran this request (gate decline, identity fallback, cache hit).
	SimilarityMode string `json:"similarityMode,omitempty"`
	// AutoK reports the eigengap auto-k outcome for this plan ("selected: …",
	// "fallback-ambiguous: …", "fallback-implicit: …", "degraded", or
	// "cached" for a cache hit planned under auto-k); empty when the server
	// does not run auto-k.
	AutoK string `json:"autoK,omitempty"`
	// Cached is true when the plan came from the persistent cache;
	// Coalesced when it was computed by a concurrent identical request;
	// Breaker is "open" when the identity fast-path answered; PeerFilled
	// marks a local miss answered from a fleet sibling's cache.
	Cached     bool   `json:"cached,omitempty"`
	Coalesced  bool   `json:"coalesced,omitempty"`
	Breaker    string `json:"breaker,omitempty"`
	PeerFilled bool   `json:"peerFilled,omitempty"`
	// Perm is included only when the request asked with ?perm=1.
	Perm []int32 `json:"perm,omitempty"`
}

// HealthResponse is the healthz/readyz JSON body: enough for fleet routing
// (and operators) to see not just up/down but how loaded and how drained a
// node is. QueueDepth counts async jobs ready to run; Queued counts sync
// requests waiting for an admission slot.
type HealthResponse struct {
	Status     string `json:"status"` // "ok", "warming", or "draining"
	Draining   bool   `json:"draining"`
	Warming    bool   `json:"warming,omitempty"`
	InFlight   int64  `json:"inFlight"`
	Queued     int64  `json:"queued"`
	QueueDepth int64  `json:"queueDepth"`
}

func (s *Server) health() HealthResponse {
	h := HealthResponse{
		Status:   "ok",
		Draining: s.draining.Load(),
		Warming:  s.warming.Load(),
		InFlight: s.running.Value(),
		Queued:   s.queued.Value(),
	}
	if h.Warming {
		h.Status = "warming"
	}
	if h.Draining {
		h.Status = "draining"
	}
	if s.cfg.Queue != nil {
		h.QueueDepth = s.cfg.Queue.Stats().Depth
	}
	return h
}

// handleHealthz is liveness: always 200 while the process serves HTTP, even
// during drain — a draining node is alive, just not admitting.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(s.health())
}

// handleReadyz is admission: 503 while draining or warming, so fleet health
// probes drop the node out of routing — a draining node is leaving, a
// warming node has not finished streaming its owned key ranges from its
// replicas yet — and new work flows to its peers instead.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if h.Draining || h.Warming {
		w.WriteHeader(http.StatusServiceUnavailable)
	} else {
		w.WriteHeader(http.StatusOK)
	}
	_ = json.NewEncoder(w).Encode(h)
}

// handleCacheGet is the peer cache-fill endpoint: a sibling with a local miss
// asks whether this node's cache holds the key. The reply is the raw encoded
// entry (same CRC-checked container the disk holds), 404 on a miss. Reads
// stay available during drain — fills are cheap and help the surviving fleet.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cache == nil {
		http.Error(w, "no plan cache on this node", http.StatusNotFound)
		return
	}
	e, ok := s.cfg.Cache.Peek(r.PathValue("key"))
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	data, err := plancache.EncodeEntry(e)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// handleCachePut is the anti-entropy ingest endpoint: replication pushes,
// hint deliveries, and drain handoffs all land here. The body is a raw
// encoded entry; it is decoded (CRC-checked), key-matched, and field-verified
// before it can touch the cache, and degraded entries are refused outright —
// the same bar every other ingest path applies. When the local cache already
// holds different bytes for the key, the canonical (lexicographically
// smaller) encoded byte string wins; the rule is symmetric with the repair
// loop's pull side, so replicas converge no matter which direction repairs.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cache == nil {
		http.Error(w, "no plan cache on this node", http.StatusNotFound)
		return
	}
	key := r.PathValue("key")
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e, err := plancache.DecodeEntry(data)
	if err != nil {
		http.Error(w, fmt.Sprintf("undecodable entry: %v", err), http.StatusBadRequest)
		return
	}
	if e.Key != key {
		http.Error(w, fmt.Sprintf("entry key %.12s does not match path key %.12s", e.Key, key), http.StatusBadRequest)
		return
	}
	if e.Degraded {
		http.Error(w, "degraded plans do not replicate", http.StatusBadRequest)
		return
	}
	if vs := planverify.CheckEntryFields(e.Perm, e.K, e.Reordered, e.Degraded, e.DegradedReason); len(vs) > 0 {
		planverify.Record(planverify.SiteCachePut, vs...)
		s.verifyBad.Add(int64(len(vs)))
		http.Error(w, fmt.Sprintf("entry failed verification: %v", vs), http.StatusBadRequest)
		return
	}
	if local, ok := s.cfg.Cache.Peek(key); ok {
		if localData, err := plancache.EncodeEntry(local); err == nil &&
			bytes.Compare(localData, data) <= 0 {
			// The local copy is canonical (or identical): keep it. 204 — the
			// push achieved its goal, the replica set holds the key.
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
	if err := s.cfg.Cache.Put(e); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCacheDigest serves the anti-entropy digest: every cached key's
// (size, CRC32) summary in ascending key order. ?prefix= restricts the range
// (hex keys partition evenly by leading nibbles). Like cache reads, digests
// stay available during drain and warm-up — peers repairing from this node
// is exactly what those phases want.
func (s *Server) handleCacheDigest(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cache == nil {
		http.Error(w, "no plan cache on this node", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(antientropy.DigestOf(s.cfg.Cache, r.URL.Query().Get("prefix")))
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

// handleMetrics renders the server's registry merged with the process-wide
// Default registry (stage-span histograms recorded outside a request context,
// the planverify mirror) in the Prometheus text format. When Config.Metrics
// is Default itself the merge degenerates to a single registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteMerged(w, s.reg, obs.Default())
}

// latencyBuckets covers sub-10ms cache hits through multi-minute pipeline
// runs; cmd/loadgen derives its p99 SLO check from these bounds.
var latencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// statusWriter records the response code so the latency histogram can label
// by outcome. Unwrap keeps http.NewResponseController (the upload read
// deadline) working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// latencyOutcome buckets a status code for the latency histogram's label.
func latencyOutcome(code int) string {
	switch {
	case code < 300:
		return "ok"
	case code == http.StatusTooManyRequests:
		return "shed"
	default:
		return "error"
	}
}

// handlePlan wraps the real handler with the end-to-end latency measurement,
// on the registry clock so the metrics golden stays deterministic.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := s.reg.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.servePlan(sw, r)
	s.latency.With(latencyOutcome(sw.code)).Observe(s.reg.Now().Sub(start).Seconds())
}

func (s *Server) servePlan(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	// Tenant quota: identity lives in the envelope (X-Tenant / ?tenant=), so
	// an over-quota request is shed before a single body byte is buffered.
	tenant := tenantOf(r)
	if s.limiter != nil {
		if ok, wait := s.limiter.allow(tenant); !ok {
			s.limiter.recordShed(tenant)
			w.Header().Set("Retry-After", retryAfterHeader(wait))
			http.Error(w, fmt.Sprintf("tenant %q over request quota", tenant), http.StatusTooManyRequests)
			return
		}
	}
	if d := s.cfg.UploadReadTimeout; d > 0 {
		// Slowloris guard: the whole body must arrive within d. Best-effort —
		// recorders and exotic transports lack deadline support, and a failure
		// to set the deadline must not fail the request.
		_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(d))
	}
	m, err := s.readMatrix(r)
	if err != nil {
		// An upload over MaxUploadBytes is the client's payload, not its
		// syntax: 413 with the limit, cut off before the server buffers it.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("matrix body exceeds the %d-byte upload limit", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if isAsync(r) {
		s.handleAsyncSubmit(w, r, m, tenant)
		return
	}
	deadline, err := requestDeadline(r, s.cfg.DefaultDeadline)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	// Pipeline stage spans and outcome counters for this request land on the
	// server's registry rather than the process default.
	ctx = obs.WithRegistry(ctx, s.reg)

	key := plancache.KeyCSR(m)
	if s.cfg.Cache != nil {
		if e, ok := s.cfg.Cache.Get(key); ok {
			// A cached plan is re-verified before it is served: disk contents
			// survive process restarts, so a bad entry would otherwise replay
			// forever. A violation demotes the hit to a miss — the pipeline
			// recomputes and overwrites the entry.
			vs := planverify.CheckEntryFields(e.Perm, e.K, e.Reordered, e.Degraded, e.DegradedReason)
			if len(e.Perm) != m.Rows {
				vs = append(vs, planverify.Violation{
					Code:   planverify.CodePermInvalid,
					Detail: fmt.Sprintf("entry permutation has %d rows, matrix has %d", len(e.Perm), m.Rows),
				})
			}
			if len(vs) == 0 {
				s.served.Inc()
				s.respond(w, r, s.planResponseFromEntry(e), true, false, "")
				return
			}
			planverify.Record(planverify.SiteServeHit, vs...)
			s.verifyBad.Add(int64(len(vs)))
			s.cfg.Logf("planserve: cached plan %.12s failed verification, recomputing: %v", key, vs)
		}
	}

	// Local miss: before burning a pipeline slot, ask the key's replica set
	// whether a sibling already computed this plan (fleet peer-fill). A hit
	// is verified exactly like a local cache hit, replicated into the local
	// cache, and served — recomputing a plan any up replica holds is the
	// failure mode this hook exists to prevent.
	if s.cfg.PeerFill != nil {
		if e, ok := s.cfg.PeerFill(ctx, key); ok && e != nil {
			vs := planverify.CheckEntryFields(e.Perm, e.K, e.Reordered, e.Degraded, e.DegradedReason)
			if len(e.Perm) != m.Rows {
				vs = append(vs, planverify.Violation{
					Code:   planverify.CodePermInvalid,
					Detail: fmt.Sprintf("peer entry permutation has %d rows, matrix has %d", len(e.Perm), m.Rows),
				})
			}
			if len(vs) == 0 {
				s.peerFills.Inc()
				s.served.Inc()
				if s.cfg.Cache != nil {
					if err := s.cfg.Cache.Put(e); err != nil {
						s.cfg.Logf("planserve: replicating peer-filled plan %.12s failed: %v", key, err)
					}
				}
				resp := s.planResponseFromEntry(e)
				resp.PeerFilled = true
				s.respond(w, r, resp, true, false, "")
				return
			}
			planverify.Record(planverify.SiteServeHit, vs...)
			s.verifyBad.Add(int64(len(vs)))
			s.cfg.Logf("planserve: peer-filled plan %.12s failed verification, recomputing: %v", key, vs)
		}
	}

	runPipeline, probe := s.breaker.Allow()
	if !runPipeline {
		// Identity fast-path: the pipeline is persistently unhealthy, so an
		// immediate, clearly-marked identity plan beats queueing for work
		// that would degrade to the same answer slowly. Never cached.
		s.breakerShort.Inc()
		s.served.Inc()
		s.degraded.Inc()
		res := identityResult(m, "circuit breaker open: pipeline recently degraded repeatedly")
		// Even the locally fabricated fast-path plan goes through the
		// verifier: "no 200 carries an unverified plan" holds with no
		// exceptions (and chaos can corrupt this path like any other).
		if vres, vs := planverify.VerifyResult(planverify.SiteServe, m, res, nil); len(vs) > 0 {
			s.verifyBad.Add(int64(len(vs)))
			res = vres
		}
		s.respond(w, r, planResponseFromResult(key, m, res), false, false, "open")
		return
	}

	res, shared, err := s.flights.do(ctx, key, func() (*reorder.Result, error) {
		return s.runAdmitted(ctx, m, key, probe)
	})
	if shared {
		s.coalesced.Inc()
		if probe {
			// We claimed the half-open probe but rode an existing flight
			// instead of running the pipeline; free the slot for the next
			// request.
			s.breaker.CancelProbe()
		}
	}
	if err != nil {
		if probe && !shared {
			// The probe died before producing a pipeline outcome (shed or
			// out of time): no verdict either way, release the slot.
			s.breaker.CancelProbe()
		}
		switch {
		case errors.Is(err, errShed):
			w.Header().Set("Retry-After", "1")
			s.shed.Inc()
			http.Error(w, "overloaded: in-flight and queue limits reached", http.StatusTooManyRequests)
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, "deadline exceeded before a plan was produced", http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			http.Error(w, "request cancelled", 499) // client closed request
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}

	if res.Degraded {
		s.degraded.Inc()
	}
	s.served.Inc()
	s.respond(w, r, planResponseFromResult(key, m, res), false, shared, "")
}

// errShed marks a request rejected by admission control.
var errShed = errors.New("planserve: load shed")

// runAdmitted is the singleflight leader's path: acquire an execution slot
// (bounded queue, immediate shed beyond it), run the pipeline with retries,
// record the breaker outcome, and persist a healthy plan.
func (s *Server) runAdmitted(ctx context.Context, m *sparse.CSR, key string, probe bool) (*reorder.Result, error) {
	// Leader double-check: between this request's cache miss and its turn as
	// singleflight leader, a concurrent request for the same key may have
	// computed and cached the plan without overlapping this flight — the
	// window is wide when a peer fill's HTTP round-trip sits between the
	// miss and the flight. A verified hit here is served without burning an
	// admission slot or recomputing (the fleet's compute-once property
	// depends on this).
	if s.cfg.Cache != nil {
		if e, ok := s.cfg.Cache.Get(key); ok {
			vs := planverify.CheckEntryFields(e.Perm, e.K, e.Reordered, e.Degraded, e.DegradedReason)
			if len(vs) == 0 && len(e.Perm) == m.Rows {
				if probe {
					s.breaker.CancelProbe()
				}
				return resultFromEntry(e), nil
			}
		}
	}
	// Admission: try for a slot without waiting; if the wait queue has
	// room, wait for a slot or the deadline; otherwise shed immediately —
	// an overloaded server must answer 429 in microseconds, not enqueue
	// unboundedly.
	select {
	case s.sem <- struct{}{}:
	default:
		if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			return nil, errShed
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	s.inflight.Add(1)
	s.running.Add(1)
	defer func() {
		<-s.sem
		s.running.Add(-1)
		s.inflight.Done()
	}()

	res, err := s.planWithRetry(ctx, m)
	if err != nil {
		return nil, err
	}
	success := !hardDegraded(res)
	if probe && faultinject.Fire(faultinject.BreakerProbeFail) {
		success = false
	}
	s.breaker.Record(success, probe)

	if s.cfg.Cache != nil && !res.Degraded {
		if err := s.cfg.Cache.Put(entryFromResult(key, res)); err != nil {
			// A failed cache write is a durability loss, not a serving
			// failure: the plan is still correct.
			s.cfg.Logf("planserve: cache write for %s failed: %v", key[:12], err)
		} else if s.cfg.Replicate != nil {
			// A fresh plan exists on exactly one node until it replicates;
			// announce it to the rest of the replica set (down replicas get a
			// durable hint) before the request returns, so a crash right after
			// the response cannot orphan the only copy.
			s.cfg.Replicate(key)
		}
	}
	return res, nil
}

// planWithRetry runs the pipeline, re-running transiently degraded plans
// with exponential backoff + jitter. Deterministic degradations (budget,
// memory) and healthy plans return immediately; the last attempt's plan is
// returned even if still degraded.
func (s *Server) planWithRetry(ctx context.Context, m *sparse.CSR) (*reorder.Result, error) {
	var res *reorder.Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = s.cfg.Plan(ctx, m, attempt)
		if err != nil {
			return nil, err
		}
		// Every attempt's plan is verified before the server considers it.
		// A corrupt plan becomes a degraded identity plan whose reason
		// ("plan verification failed") classifies as transient, so it is
		// retried like any other transient degradation and, if it persists,
		// counts against the breaker.
		if vres, vs := planverify.VerifyResult(planverify.SiteServe, m, res, nil); len(vs) > 0 {
			s.verifyBad.Add(int64(len(vs)))
			res = vres
		}
		if !res.Degraded || !transientDegradation(res.DegradedReason) || attempt >= s.cfg.MaxRetries {
			return res, nil
		}
		s.retries.Inc()
		backoff := s.cfg.RetryBackoff << attempt
		s.jitterMu.Lock()
		backoff += time.Duration(s.jitter.Int63n(int64(backoff)/2 + 1))
		s.jitterMu.Unlock()
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			// Out of time mid-backoff: the degraded plan in hand is still
			// valid and better than an error.
			return res, nil
		}
	}
}

// transientDegradation classifies a DegradedReason trail as retryable. The
// classification itself lives in planverify (TransientReason) so the async
// plan queue's bounded retries agree with the sync path about which
// degradations are worth a re-run.
func transientDegradation(reason string) bool {
	return planverify.TransientReason(reason)
}

// hardDegraded reports a plan the breaker should count as a failure: it
// remained transiently degraded after every retry — the pipeline's health,
// not the request's shape, is the problem. (Budget-degraded plans are the
// service working as designed and never trip the breaker.)
func hardDegraded(res *reorder.Result) bool {
	return res.Degraded && transientDegradation(res.DegradedReason)
}

// identityResult fabricates the breaker's identity fast-path plan.
func identityResult(m *sparse.CSR, reason string) *reorder.Result {
	return &reorder.Result{
		Perm:           sparse.IdentityPerm(m.Rows),
		Reordered:      false,
		Degraded:       true,
		DegradedReason: reason,
	}
}

// requestDeadline derives the effective deadline: X-Deadline (a Go duration
// such as "500ms" or "2s") when present and shorter than the server cap.
func requestDeadline(r *http.Request, def time.Duration) (time.Duration, error) {
	h := r.Header.Get("X-Deadline")
	if h == "" {
		return def, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("invalid X-Deadline %q: want a positive Go duration", h)
	}
	return min(d, def), nil
}

// readMatrix extracts the request's matrix: a body upload (BCSR or Matrix
// Market, sniffed by magic) or, when enabled, a server-local ?path=.
func (s *Server) readMatrix(r *http.Request) (*sparse.CSR, error) {
	if path := r.URL.Query().Get("path"); path != "" {
		if !s.cfg.AllowLocalPaths {
			return nil, errors.New("path requests are disabled (start bootesd with -allow-path)")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if filepath.Ext(path) == ".bcsr" {
			return sparse.ReadBinary(f)
		}
		return sparse.ReadMatrixMarket(f)
	}
	// The limit guard wraps stdlib MaxBytesReader but remembers the breach on
	// the reader itself: a parser fed a truncated-at-limit body usually fails
	// on its own syntax error first (the cut looks like bad input), which
	// would mask the MaxBytesError and misreport an oversized upload as 400.
	body := &breachTracker{r: http.MaxBytesReader(nil, r.Body, s.cfg.MaxUploadBytes)}
	br := newSniffReader(body)
	m, err := func() (*sparse.CSR, error) {
		isBinary, err := br.hasPrefix("BCSR")
		if err != nil {
			return nil, fmt.Errorf("reading matrix body: %w", err)
		}
		if isBinary {
			return sparse.ReadBinary(br)
		}
		return sparse.ReadMatrixMarket(br)
	}()
	if err != nil && body.breached {
		return nil, &http.MaxBytesError{Limit: s.cfg.MaxUploadBytes}
	}
	return m, err
}

// breachTracker records whether the wrapped MaxBytesReader ever refused a
// read, surviving parsers that swallow the error's type.
type breachTracker struct {
	r        io.Reader
	breached bool
}

func (b *breachTracker) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			b.breached = true
		}
	}
	return n, err
}
