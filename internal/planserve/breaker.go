package planserve

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

// The breaker state machine: Closed (normal service) → Open after
// FailureThreshold consecutive failures (identity fast-path for Cooldown)
// → HalfOpen (one probe request runs the real pipeline) → Closed on probe
// success, back to Open on probe failure.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for /statsz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the degradation circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive hard-degraded plans
	// (still transiently degraded after serve-level retries) that trips the
	// breaker. 0 disables the breaker entirely.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Defaults to 15s.
	Cooldown time.Duration
}

// Breaker implements the trip / cooldown / half-open-probe state machine.
// It is exported so internal/fleet can reuse the same machinery as a
// per-peer circuit breaker (a peer that keeps failing forwards or cache
// fills is skipped for Cooldown, then probed with one request).
// It protects the planning pipeline from repeated pointless work: when the
// pipeline is persistently falling down the degradation ladder (e.g. the
// eigensolver cannot converge on anything), clients get an immediate,
// clearly-marked identity plan instead of burning a pipeline slot to compute
// the same identity plan slowly.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu            sync.Mutex
	state         BreakerState
	consecutive   int       // consecutive failures while closed
	openedAt      time.Time // when the breaker last tripped
	probeInFlight bool      // a half-open probe is running
	trips         int64
}

// NewBreaker builds a breaker; nil now uses the real clock, and a zero
// cfg.FailureThreshold disables it (Allow always permits).
func NewBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 15 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg, now: now}
}

// Allow decides how a request may proceed: run the real pipeline (possibly
// as the half-open probe) or take the identity fast-path.
func (b *Breaker) Allow() (runPipeline, probe bool) {
	if b.cfg.FailureThreshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probeInFlight = true
		return true, true
	default: // BreakerHalfOpen
		if b.probeInFlight {
			return false, false // one probe at a time; others stay on the fast-path
		}
		b.probeInFlight = true
		return true, true
	}
}

// CancelProbe releases a claimed half-open probe slot without an outcome
// (the probing request was coalesced away or died before the pipeline ran),
// so the next request can probe instead of the slot leaking.
func (b *Breaker) CancelProbe() {
	if b.cfg.FailureThreshold <= 0 {
		return
	}
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probeInFlight = false
	}
	b.mu.Unlock()
}

// Record feeds one pipeline outcome back. probe marks the half-open probe's
// own result; success means the plan did not hard-degrade.
func (b *Breaker) Record(success, probe bool) {
	if b.cfg.FailureThreshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probeInFlight = false
		if success {
			b.state = BreakerClosed
			b.consecutive = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
		return
	}
	if b.state != BreakerClosed {
		return // stale result from before the trip; the probe decides recovery
	}
	if success {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.cfg.FailureThreshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
		b.consecutive = 0
	}
}

// Reset closes the breaker and clears its failure memory, preserving the
// trip count. The fleet prober calls it when a peer transitions back to
// healthy: a passed readyz probe is direct evidence of recovery, better
// than waiting out a cooldown earned by failures from before the restart.
func (b *Breaker) Reset() {
	if b.cfg.FailureThreshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probeInFlight = false
	b.mu.Unlock()
}

// Snapshot returns the state and trip count for /statsz and /v1/peers.
func (b *Breaker) Snapshot() (BreakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
