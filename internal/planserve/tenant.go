package planserve

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"bootes/internal/obs"
)

// TenantLimit is one tenant's token-bucket quota.
type TenantLimit struct {
	// Rate is the sustained request rate in tokens per second.
	Rate float64
	// Burst is the bucket capacity (default max(1, ceil(Rate))).
	Burst int
}

// TenantConfig is the per-tenant traffic-shaping policy. A zero Rate disables
// quota enforcement entirely (every tenant is admitted); the queue's
// weighted-fair dequeue and backlog bounds still apply to async jobs.
type TenantConfig struct {
	// Rate/Burst are the default quota applied to every tenant without an
	// override.
	Rate  float64
	Burst int
	// Overrides replaces the default quota for specific tenants.
	Overrides map[string]TenantLimit
}

// tenantShedLabelCap bounds the label cardinality of
// bootes_tenant_shed_total: the first tenantShedLabelCap distinct tenants get
// their own label, the rest aggregate under "_other" — a flood of unique
// tenant names must not grow the metrics payload without bound.
const tenantShedLabelCap = 32

// maxTenantBuckets bounds the limiter's memory: beyond it, a full (idle)
// bucket is evicted to make room — a full bucket re-created later admits the
// same burst, so eviction never penalizes a tenant.
const maxTenantBuckets = 4096

// tenantBucket is one tenant's token bucket.
type tenantBucket struct {
	tokens float64
	last   time.Time
	limit  TenantLimit
}

// tenantLimiter enforces TenantConfig over all tenants. All methods are
// concurrency-safe.
type tenantLimiter struct {
	cfg TenantConfig
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*tenantBucket

	shed       *obs.CounterVec
	shedLabels map[string]string // tenant → label actually used (cardinality cap)
	shedTotal  *obs.Counter
}

// newTenantLimiter builds a limiter; returns nil when quotas are disabled.
func newTenantLimiter(cfg TenantConfig, now func() time.Time, reg *obs.Registry) *tenantLimiter {
	if cfg.Rate <= 0 && len(cfg.Overrides) == 0 {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	return &tenantLimiter{
		cfg:        cfg,
		now:        now,
		buckets:    make(map[string]*tenantBucket),
		shed:       reg.CounterVec("bootes_tenant_shed_total", "Requests shed by per-tenant quota, by tenant (high-cardinality tenants aggregate under \"_other\").", "tenant"),
		shedLabels: make(map[string]string),
		shedTotal:  reg.Counter("bootes_tenant_shed_all_total", "Requests shed by per-tenant quota, all tenants."),
	}
}

// limitFor resolves the quota applied to tenant.
func (l *tenantLimiter) limitFor(tenant string) TenantLimit {
	lim, ok := l.cfg.Overrides[tenant]
	if !ok {
		lim = TenantLimit{Rate: l.cfg.Rate, Burst: l.cfg.Burst}
	}
	if lim.Burst <= 0 {
		lim.Burst = int(math.Max(1, math.Ceil(lim.Rate)))
	}
	return lim
}

// allow takes one token from tenant's bucket. When the bucket is empty it
// reports the wait until the next token accrues — the value the handler
// returns as Retry-After (whole seconds, rounded up, at least 1).
func (l *tenantLimiter) allow(tenant string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[tenant]
	if !exists {
		lim := l.limitFor(tenant)
		b = &tenantBucket{tokens: float64(lim.Burst), last: now, limit: lim}
		if len(l.buckets) >= maxTenantBuckets {
			l.evictFullBucketLocked()
		}
		l.buckets[tenant] = b
	}
	if b.limit.Rate > 0 {
		b.tokens = math.Min(float64(b.limit.Burst), b.tokens+now.Sub(b.last).Seconds()*b.limit.Rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.limit.Rate <= 0 {
		// No refill: a pure burst budget (tests, hard-capped tenants). The
		// client can only retry after operator action; answer a long hold.
		return false, time.Minute
	}
	return false, time.Duration((1 - b.tokens) / b.limit.Rate * float64(time.Second))
}

// recordShed counts a quota rejection for tenant on both the per-tenant
// vector (cardinality-capped) and the scalar total.
func (l *tenantLimiter) recordShed(tenant string) {
	l.shedTotal.Inc()
	l.mu.Lock()
	label, ok := l.shedLabels[tenant]
	if !ok {
		label = tenant
		if len(l.shedLabels) >= tenantShedLabelCap {
			label = "_other"
		}
		l.shedLabels[tenant] = label
	}
	l.mu.Unlock()
	l.shed.With(label).Inc()
}

// evictFullBucketLocked drops one bucket that is at full capacity (idle long
// enough to have refilled); if none qualifies, an arbitrary one goes — the
// map must stay bounded even under adversarial tenant-name churn.
func (l *tenantLimiter) evictFullBucketLocked() {
	var fallback string
	for name, b := range l.buckets {
		if b.tokens >= float64(b.limit.Burst) {
			delete(l.buckets, name)
			return
		}
		fallback = name
	}
	if fallback != "" {
		delete(l.buckets, fallback)
	}
}

// retryAfterHeader renders a Retry-After value: whole seconds, rounded up,
// never below 1.
func retryAfterHeader(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// tenantOf extracts the request's tenant identity: the X-Tenant header,
// falling back to ?tenant=, falling back to "default". Identity lives in the
// envelope, not the body, so quota decisions happen before any body bytes
// are read or buffered.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}
