package planserve

import (
	"encoding/json"
	"errors"
	"net/http"

	"bootes/internal/planqueue"
	"bootes/internal/sparse"
)

// JobResponse is the JSON body of POST /v1/plan?async=1 (202) and
// GET /v1/jobs/{id}.
type JobResponse struct {
	JobID    string `json:"job_id"`
	State    string `json:"state"`
	Tenant   string `json:"tenant"`
	Attempts int    `json:"attempts"`
	// Deduped is true on submission when an identical active job already
	// existed and was returned instead of a new one.
	Deduped bool `json:"deduped,omitempty"`
	// Reason carries the last failure for failed/dead jobs.
	Reason string `json:"reason,omitempty"`
	// Plan is populated once the job is done.
	Plan *PlanResponse `json:"plan,omitempty"`
}

// isAsync reports whether the submission asked for the async queue.
func isAsync(r *http.Request) bool {
	v := r.URL.Query().Get("async")
	return v == "1" || v == "true"
}

// handleAsyncSubmit enqueues the parsed matrix and answers 202 with the job
// handle. Backlog rejections are 429s with Retry-After, exactly like sync
// shedding, so one client retry loop serves both paths.
func (s *Server) handleAsyncSubmit(w http.ResponseWriter, r *http.Request, m *sparse.CSR, tenant string) {
	if s.cfg.Queue == nil {
		http.Error(w, "async planning is not enabled (start bootesd with -queue-dir)", http.StatusNotImplemented)
		return
	}
	jb, dup, err := s.cfg.Queue.Enqueue(tenant, m, s.optKey)
	if err != nil {
		switch {
		case errors.Is(err, planqueue.ErrQueueFull), errors.Is(err, planqueue.ErrTenantBacklog):
			s.asyncRejected.Inc()
			w.Header().Set("Retry-After", "5")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, planqueue.ErrClosed):
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+jb.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(&JobResponse{
		JobID:    jb.ID,
		State:    string(jb.State),
		Tenant:   jb.Tenant,
		Attempts: jb.Attempts,
		Deduped:  dup,
	})
}

// handleJobGet serves GET /v1/jobs/{id}: the job's lifecycle position, plus
// the plan itself once the job is done (from the plan cache when available,
// otherwise the job's own summary — degraded plans are never cached).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Queue == nil {
		http.Error(w, "async planning is not enabled (start bootesd with -queue-dir)", http.StatusNotImplemented)
		return
	}
	jb, ok := s.cfg.Queue.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job (terminal jobs age out of the retention window)", http.StatusNotFound)
		return
	}
	resp := &JobResponse{
		JobID:    jb.ID,
		State:    string(jb.State),
		Tenant:   jb.Tenant,
		Attempts: jb.Attempts,
		Reason:   jb.Reason,
	}
	if jb.State == planqueue.StateDone {
		resp.Reason = ""
		resp.Plan = s.asyncPlanBody(r, jb)
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Plan != nil && resp.Plan.Degraded {
		w.Header().Set("X-Bootes-Degraded", "true")
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// asyncPlanBody assembles the done job's plan payload. Healthy plans come
// from the plan cache (full fidelity, permutation on request); degraded
// plans — never cached by policy — are summarized from the job record.
func (s *Server) asyncPlanBody(r *http.Request, jb planqueue.Job) *PlanResponse {
	if s.cfg.Cache != nil && !jb.Degraded {
		if e, ok := s.cfg.Cache.Get(jb.Key); ok {
			plan := s.planResponseFromEntry(e)
			plan.Cached = jb.Cached
			if r.URL.Query().Get("perm") != "1" {
				plan.Perm = nil
			}
			return plan
		}
	}
	return &PlanResponse{
		Key:            jb.Key,
		Reordered:      jb.Reordered,
		K:              jb.K,
		Degraded:       jb.Degraded,
		DegradedReason: jb.DegradedReason,
		Cached:         jb.Cached,
	}
}
