package planserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"bootes/internal/antientropy"
	"bootes/internal/plancache"
	"bootes/internal/ring"
	"bootes/internal/sparse"
)

// putEntry PUTs one encoded entry at the anti-entropy ingest endpoint.
func putEntry(t *testing.T, url, key string, data []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/v1/cache/"+key, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp
}

// healthyEntry builds a valid cacheable entry for m.
func healthyEntry(t *testing.T, m *sparse.CSR) *plancache.Entry {
	t.Helper()
	n := m.Rows
	perm := make(sparse.Permutation, n)
	for i := range perm {
		perm[i] = int32(n - 1 - i)
	}
	return &plancache.Entry{Key: plancache.KeyCSR(m), Perm: perm, Reordered: true, K: 4}
}

// TestCachePutEndpoint covers the ingest endpoint's verification bar and the
// canonical-bytes conflict rule.
func TestCachePutEndpoint(t *testing.T) {
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache})

	e := healthyEntry(t, testMatrix(t, 1))
	data, err := plancache.EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if resp := putEntry(t, ts.URL, e.Key, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("healthy put: status %d", resp.StatusCode)
	}
	if _, ok := cache.Peek(e.Key); !ok {
		t.Fatal("pushed entry not cached")
	}

	// Idempotent re-push.
	if resp := putEntry(t, ts.URL, e.Key, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idempotent put: status %d", resp.StatusCode)
	}

	// Key mismatch is refused.
	other := healthyEntry(t, testMatrix(t, 2))
	if resp := putEntry(t, ts.URL, other.Key, data); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched key: status %d", resp.StatusCode)
	}

	// Corrupt bytes are refused.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	if resp := putEntry(t, ts.URL, e.Key, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt entry: status %d", resp.StatusCode)
	}

	// Degraded plans never replicate.
	deg := healthyEntry(t, testMatrix(t, 3))
	deg.Perm = sparse.IdentityPerm(len(deg.Perm))
	deg.Reordered = false
	deg.K = 0
	deg.Degraded = true
	deg.DegradedReason = "requested: eigensolver did not converge"
	degData, err := plancache.EncodeEntry(deg)
	if err != nil {
		t.Fatal(err)
	}
	if resp := putEntry(t, ts.URL, deg.Key, degData); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("degraded entry: status %d", resp.StatusCode)
	}

	// Conflict: the canonical (lexicographically smaller) bytes win, in both
	// push directions.
	v2 := healthyEntry(t, testMatrix(t, 1))
	v2.K = 8 // same key, different bytes
	v2Data, err := plancache.EncodeEntry(v2)
	if err != nil {
		t.Fatal(err)
	}
	canonical, loser := data, v2Data
	if bytes.Compare(v2Data, data) < 0 {
		canonical, loser = v2Data, data
	}
	if resp := putEntry(t, ts.URL, e.Key, canonical); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("canonical push: status %d", resp.StatusCode)
	}
	if resp := putEntry(t, ts.URL, e.Key, loser); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("losing push: status %d", resp.StatusCode)
	}
	got, ok := cache.Peek(e.Key)
	if !ok {
		t.Fatal("entry lost in conflict resolution")
	}
	gotData, err := plancache.EncodeEntry(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotData, canonical) {
		t.Fatal("conflict resolution kept the non-canonical bytes")
	}
}

// TestCacheDigestEndpoint pins the digest wire format: sorted keys, stats
// matching the cache index, prefix filtering.
func TestCacheDigestEndpoint(t *testing.T) {
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache})
	var keys []string
	for seed := int64(1); seed <= 3; seed++ {
		e := healthyEntry(t, testMatrix(t, seed))
		if err := cache.Put(e); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, e.Key)
	}

	fetch := func(query string) antientropy.Digest {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/cache/digest" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("digest status %d", resp.StatusCode)
		}
		var d antientropy.Digest
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		return d
	}

	d := fetch("")
	if len(d.Entries) != 3 {
		t.Fatalf("digest has %d entries, want 3", len(d.Entries))
	}
	for i, de := range d.Entries {
		if i > 0 && d.Entries[i-1].Key >= de.Key {
			t.Fatal("digest not in ascending key order")
		}
		st, ok := cache.Stat(de.Key)
		if !ok || st.Size != de.Size || st.CRC != de.CRC {
			t.Fatalf("digest entry %q disagrees with cache stat: %+v vs %+v", de.Key, de, st)
		}
	}

	prefix := keys[0][:2]
	for _, de := range fetch("?prefix=" + prefix).Entries {
		if de.Key[:2] != prefix {
			t.Fatalf("prefix filter leaked key %q", de.Key)
		}
	}
}

// TestWarmingGatesReadyz: while warming, readyz is 503 (probes route around
// the node) but cache reads, digests, and pushes — the warm-up machinery
// itself — still serve; flipping warming off restores readiness.
func TestWarmingGatesReadyz(t *testing.T) {
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPlanner{}
	s, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache})

	s.SetWarming(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "warming" || !h.Warming {
		t.Fatalf("warming readyz = %d %+v", resp.StatusCode, h)
	}

	// The warm-up data plane stays open.
	e := healthyEntry(t, testMatrix(t, 1))
	data, err := plancache.EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if resp := putEntry(t, ts.URL, e.Key, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cache put while warming: status %d", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/cache/digest"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("digest while warming: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	s.SetWarming(false)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after warm-up: status %d", resp.StatusCode)
	}
}

// TestStatszHealSection: with a healer configured, /statsz carries its
// counters under "Heal" (and the pinned-shape test asserts the key is absent
// without one).
func TestStatszHealSection(t *testing.T) {
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	healer, err := antientropy.New(antientropy.Config{
		Cache: cache,
		Ring: func() *ring.Ring {
			r, err := ring.New([]string{"http://self"}, 0)
			if err != nil {
				panic(err)
			}
			return r
		},
		Self: "http://self",
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache, Heal: healer})
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	healRaw, ok := raw["Heal"]
	if !ok {
		t.Fatal("statsz missing Heal section with a healer configured")
	}
	var hs antientropy.Stats
	if err := json.Unmarshal(healRaw, &hs); err != nil {
		t.Fatal(err)
	}
	if hs != (antientropy.Stats{}) {
		t.Fatalf("idle healer reports non-zero stats: %+v", hs)
	}
}

// TestReplicateHookFires: a pipeline-computed plan announces its key through
// Config.Replicate exactly once; cache hits and peer fills do not.
func TestReplicateHookFires(t *testing.T) {
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var replicated []string
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{
		Plan:      p.fn(),
		Cache:     cache,
		Replicate: func(key string) { replicated = append(replicated, key) },
	})
	m := testMatrix(t, 7)
	for i := 0; i < 2; i++ { // second request is a cache hit
		if resp, body := postPlan(t, ts.URL, mmBody(t, m), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	if len(replicated) != 1 || replicated[0] != plancache.KeyCSR(m) {
		t.Fatalf("Replicate calls = %v, want exactly one for the computed key", replicated)
	}
}
