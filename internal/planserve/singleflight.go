package planserve

import (
	"context"
	"sync"

	"bootes/internal/reorder"
)

// flightGroup coalesces concurrent work by key: the first caller for a key
// becomes the leader and runs the function; followers wait on the leader's
// result without consuming an admission slot. Unlike x/sync/singleflight
// (not vendored — the module is stdlib-only), followers wait with their own
// context, so a follower whose deadline expires abandons the flight without
// affecting the leader.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	res  *reorder.Result
	err  error
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller was a follower (the result came from another request's run).
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*reorder.Result, error)) (res *reorder.Result, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
