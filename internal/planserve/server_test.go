package planserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bootes/internal/faultinject"
	"bootes/internal/leakcheck"
	"bootes/internal/plancache"
	"bootes/internal/planverify"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// countingPlanner is a stub pipeline that counts executions per key and can
// block on a gate to force request overlap.
type countingPlanner struct {
	mu    sync.Mutex
	runs  map[string]int
	gate  chan struct{} // non-nil: every run waits here
	delay time.Duration
	make  func(m *sparse.CSR, attempt int) (*reorder.Result, error)
}

func (p *countingPlanner) fn() PlanFunc {
	return func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		key := plancache.KeyCSR(m)
		p.mu.Lock()
		if p.runs == nil {
			p.runs = make(map[string]int)
		}
		p.runs[key]++
		p.mu.Unlock()
		if p.gate != nil {
			select {
			case <-p.gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if p.delay > 0 {
			select {
			case <-time.After(p.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if p.make != nil {
			return p.make(m, attempt)
		}
		return healthyResult(m), nil
	}
}

func (p *countingPlanner) runsFor(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runs[key]
}

func (p *countingPlanner) totalRuns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.runs {
		n += c
	}
	return n
}

func healthyResult(m *sparse.CSR) *reorder.Result {
	perm := make(sparse.Permutation, m.Rows)
	for i := range perm {
		perm[i] = int32(m.Rows - 1 - i)
	}
	return &reorder.Result{
		Perm:      perm,
		Reordered: true,
		Extra:     map[string]float64{"k": 8},
	}
}

func degradedResult(m *sparse.CSR, reason string) *reorder.Result {
	return &reorder.Result{
		Perm:           sparse.IdentityPerm(m.Rows),
		Degraded:       true,
		DegradedReason: reason,
	}
}

func testMatrix(t testing.TB, seed int64) *sparse.CSR {
	t.Helper()
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 48, Cols: 48, Density: 0.08, Seed: seed, Groups: 4,
	})
}

func mmBody(t testing.TB, m *sparse.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postPlan(t testing.TB, url string, body []byte, deadline string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if deadline != "" {
		req.Header.Set("X-Deadline", deadline)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

func TestPlanEndToEnd(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	m := testMatrix(t, 1)
	resp, body := postPlan(t, ts.URL, mmBody(t, m), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	key := plancache.KeyCSR(m)
	if !strings.Contains(body, key) {
		t.Fatalf("response missing key %s: %s", key, body)
	}
	if !strings.Contains(body, `"reordered":true`) {
		t.Fatalf("response: %s", body)
	}
	if strings.Contains(body, `"perm"`) {
		t.Fatal("perm included without ?perm=1")
	}
	// Health endpoints.
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200, "/statsz": 200} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, r.StatusCode, want)
		}
	}
}

func TestPermOptIn(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	body := mmBody(t, testMatrix(t, 1))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan?perm=1", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), `"perm":[`) {
		t.Fatalf("perm missing with ?perm=1: %s", b)
	}
}

func TestBadBodyRejected(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	resp, _ := postPlan(t, ts.URL, []byte("not a matrix"), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if p.totalRuns() != 0 {
		t.Fatal("pipeline ran on a garbage body")
	}
}

func TestBadDeadlineRejected(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	resp, _ := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 1)), "soon")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestOverloadShedsFast saturates the in-flight semaphore and the wait
// queue, then asserts excess requests are rejected 429 immediately (the shed
// path is a non-blocking select — no sleeps, no I/O) with a Retry-After.
func TestOverloadShedsFast(t *testing.T) {
	leakcheck.Goroutines(t)
	gate := make(chan struct{})
	p := &countingPlanner{gate: gate}
	s, ts := newTestServer(t, Config{Plan: p.fn(), MaxInFlight: 1, MaxQueue: 1})
	leakcheck.Zero(t, "planserve slots", func() int64 { return int64(s.SlotsInUse()) })

	// Distinct matrices so singleflight cannot coalesce them.
	launch := func(i int, out chan<- int) {
		resp, _ := postPlan(t, ts.URL, mmBody(t, testMatrix(t, int64(i))), "")
		out <- resp.StatusCode
	}
	running := make(chan int, 1)
	go launch(1, running) // occupies the only slot
	waitUntil(t, func() bool { return s.running.Value() == 1 })
	queuedc := make(chan int, 1)
	go launch(2, queuedc) // occupies the only queue seat
	waitUntil(t, func() bool { return s.queued.Value() == 1 })

	// Saturated: these must shed, and fast.
	for i := 3; i <= 5; i++ {
		start := time.Now()
		resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, int64(i))), "")
		elapsed := time.Since(start)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d (%s), want 429", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		if elapsed > 500*time.Millisecond {
			t.Fatalf("shed took %v; the reject path must not block", elapsed)
		}
	}
	if got := s.Stats().Shed; got != 3 {
		t.Fatalf("Shed = %d, want 3", got)
	}

	close(gate) // release the blocked pipeline; queued request completes too
	if st := <-running; st != http.StatusOK {
		t.Fatalf("running request status %d", st)
	}
	if st := <-queuedc; st != http.StatusOK {
		t.Fatalf("queued request status %d", st)
	}
}

func waitUntil(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingExactlyOnce fires 100 concurrent requests — identical and
// distinct, with mixed deadlines — through a cached server and asserts
// exactly one pipeline execution per distinct key and an intact cache
// afterwards. Run under -race by `make race-serve`.
func TestCoalescingExactlyOnce(t *testing.T) {
	leakcheck.Goroutines(t)
	gate := make(chan struct{})
	p := &countingPlanner{gate: gate}
	dir := t.TempDir()
	cache, err := plancache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache, MaxInFlight: 8, MaxQueue: 8})
	leakcheck.Zero(t, "planserve slots", func() int64 { return int64(s.SlotsInUse()) })

	const distinct = 6
	matrices := make([][]byte, distinct)
	keys := make([]string, distinct)
	for i := range matrices {
		m := testMatrix(t, int64(i+1))
		matrices[i] = mmBody(t, m)
		keys[i] = plancache.KeyCSR(m)
	}

	var wg sync.WaitGroup
	codes := make([]int, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mixed deadlines: all generous enough to survive the gate wait,
			// but spread so followers time out at different moments in the
			// -race schedule.
			deadline := fmt.Sprintf("%dms", 2000+50*(i%8))
			resp, _ := postPlan(t, ts.URL, matrices[i%distinct], deadline)
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until every key's leader is inside the pipeline, then release.
	waitUntil(t, func() bool { return p.totalRuns() == distinct })
	close(gate)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	for _, key := range keys {
		if n := p.runsFor(key); n != 1 {
			t.Fatalf("key %s ran %d times, want exactly once", key[:12], n)
		}
	}
	// Every non-leader was answered without a pipeline run: coalesced onto a
	// live flight, or (if it arrived after the flight finished) from the cache.
	if st := s.Stats(); st.Coalesced+st.Cache.Hits != 100-distinct {
		t.Fatalf("Coalesced=%d + cache Hits=%d, want %d combined",
			st.Coalesced, st.Cache.Hits, 100-distinct)
	}

	// No torn cache state: a fresh open finds every entry intact.
	reopened, err := plancache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rst := reopened.Stats()
	if rst.Quarantined != 0 {
		t.Fatalf("%d cache entries corrupt after the storm", rst.Quarantined)
	}
	if rst.Entries != distinct {
		t.Fatalf("cache holds %d entries, want %d", rst.Entries, distinct)
	}
}

func TestCacheHitSkipsPipeline(t *testing.T) {
	p := &countingPlanner{}
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache})
	body := mmBody(t, testMatrix(t, 1))
	if resp, _ := postPlan(t, ts.URL, body, ""); resp.StatusCode != 200 {
		t.Fatal("first request failed")
	}
	resp, rbody := postPlan(t, ts.URL, body, "")
	if resp.StatusCode != 200 || !strings.Contains(rbody, `"cached":true`) {
		t.Fatalf("second request not served from cache: %d %s", resp.StatusCode, rbody)
	}
	if p.totalRuns() != 1 {
		t.Fatalf("pipeline ran %d times, want 1", p.totalRuns())
	}
}

func TestDegradedPlansNotCached(t *testing.T) {
	p := &countingPlanner{make: func(m *sparse.CSR, _ int) (*reorder.Result, error) {
		return degradedResult(m, "requested: wall-clock budget exhausted; fell back to identity"), nil
	}}
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache})
	body := mmBody(t, testMatrix(t, 1))
	resp, rbody := postPlan(t, ts.URL, body, "")
	if resp.StatusCode != 200 || !strings.Contains(rbody, `"degraded":true`) {
		t.Fatalf("%d %s", resp.StatusCode, rbody)
	}
	if resp.Header.Get("X-Bootes-Degraded") != "true" {
		t.Fatal("degraded plan not marked in headers")
	}
	if cache.Len() != 0 {
		t.Fatal("degraded plan was cached")
	}
	if p.totalRuns() != 1 {
		t.Fatalf("budget degradation retried (%d runs); only transient rungs retry", p.totalRuns())
	}
}

// TestRetryRecoversTransientDegradation: the first attempt degrades with a
// transient reason, the retry succeeds; the served plan is healthy and the
// retry counter moves.
func TestRetryRecoversTransientDegradation(t *testing.T) {
	p := &countingPlanner{}
	p.make = func(m *sparse.CSR, attempt int) (*reorder.Result, error) {
		if attempt == 0 {
			return degradedResult(m, "requested: eigensolver did not converge"), nil
		}
		return healthyResult(m), nil
	}
	s, ts := newTestServer(t, Config{Plan: p.fn(), MaxRetries: 2, RetryBackoff: time.Millisecond})
	resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 1)), "")
	if resp.StatusCode != 200 {
		t.Fatalf("%d %s", resp.StatusCode, body)
	}
	if strings.Contains(body, `"degraded":true`) {
		t.Fatalf("retry did not recover: %s", body)
	}
	if st := s.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
	if p.totalRuns() != 2 {
		t.Fatalf("runs = %d, want 2", p.totalRuns())
	}
}

func TestDeadlinePropagatesToPipeline(t *testing.T) {
	sawDeadline := make(chan time.Duration, 1)
	plan := func(ctx context.Context, m *sparse.CSR, _ int) (*reorder.Result, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Error("pipeline context has no deadline")
		}
		sawDeadline <- time.Until(dl)
		return healthyResult(m), nil
	}
	_, ts := newTestServer(t, Config{Plan: plan, DefaultDeadline: time.Hour})
	resp, _ := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 1)), "250ms")
	if resp.StatusCode != 200 {
		t.Fatal(resp.Status)
	}
	if d := <-sawDeadline; d > 250*time.Millisecond {
		t.Fatalf("X-Deadline not applied: %v remaining", d)
	}
}

func TestSlowPipelineHitsGatewayTimeout(t *testing.T) {
	p := &countingPlanner{delay: 10 * time.Second}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	resp, _ := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 1)), "50ms")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// TestGracefulShutdown: draining flips readyz and new plans to 503, waits
// for the in-flight request, and returns once it completes.
func TestGracefulShutdown(t *testing.T) {
	leakcheck.Goroutines(t)
	gate := make(chan struct{})
	p := &countingPlanner{gate: gate}
	s, ts := newTestServer(t, Config{Plan: p.fn()})
	leakcheck.Zero(t, "planserve slots", func() int64 { return int64(s.SlotsInUse()) })

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 1)), "")
		inflight <- resp.StatusCode
	}()
	waitUntil(t, func() bool { return s.running.Value() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitUntil(t, func() bool { return s.draining.Load() })

	if resp, _ := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 2)), ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: %d, want 503", resp.StatusCode)
	}
	if r, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz during drain: %d, want 503", r.StatusCode)
		}
	}
	if r, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatal("healthz must stay green during drain")
		}
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight plan finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if st := <-inflight; st != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d", st)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestShutdownDrainDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	p := &countingPlanner{gate: gate}
	s, ts := newTestServer(t, Config{Plan: p.fn()})
	done := make(chan int, 1)
	go func() {
		resp, _ := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 1)), "")
		done <- resp.StatusCode
	}()
	waitUntil(t, func() bool { return s.running.Value() == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown succeeded with a stuck plan in flight")
	}
}

func TestLocalPathsDisabledByDefault(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	resp, err := http.Post(ts.URL+"/v1/plan?path=/etc/hostname", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("path request without -allow-path: %d, want 400", resp.StatusCode)
	}
}

func TestTransientClassification(t *testing.T) {
	for reason, want := range map[string]bool{
		"requested: eigensolver did not converge":                                 true,
		"implicit-similarity: contained panic (core: internal panic)":             true,
		"requested: memory estimate 123 B over budget":                            false,
		"wall-clock budget exhausted; fell back to identity":                      false,
		"plan verification failed: perm-invalid; fell back to identity":           true,
		"traffic regression predicted: traffic-regression; fell back to identity": false,
		"": false,
	} {
		if got := transientDegradation(reason); got != want {
			t.Errorf("transientDegradation(%q) = %v, want %v", reason, got, want)
		}
	}
}

// TestVerifyReplacesCorruptPipelinePlan: a pipeline emitting a non-bijective
// permutation must never reach a client. The verifier replaces the plan with
// a degraded identity, classifies it transient (so it is retried), counts the
// violations, and keeps the cache clean.
func TestVerifyReplacesCorruptPipelinePlan(t *testing.T) {
	leakcheck.Goroutines(t)
	p := &countingPlanner{make: func(m *sparse.CSR, _ int) (*reorder.Result, error) {
		res := healthyResult(m)
		res.Perm[0] = res.Perm[len(res.Perm)-1] // duplicate ⇒ not a bijection
		return res, nil
	}}
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache, MaxRetries: 1, RetryBackoff: time.Millisecond})
	leakcheck.Zero(t, "planserve slots", func() int64 { return int64(s.SlotsInUse()) })

	m := testMatrix(t, 1)
	resp, body := postPlan(t, ts.URL, mmBody(t, m), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if !pr.Degraded || !strings.Contains(pr.DegradedReason, "plan verification failed") {
		t.Fatalf("corrupt plan served without the verification mark: %s", body)
	}
	if pr.Reordered {
		t.Fatal("fallback plan still claims reordered")
	}
	if p.totalRuns() != 2 {
		t.Fatalf("runs = %d, want 2 (verification failure is transient and retried once)", p.totalRuns())
	}
	if st := s.Stats(); st.VerifyViolations == 0 {
		t.Fatal("VerifyViolations did not move")
	}
	if cache.Len() != 0 {
		t.Fatal("a corrupt/degraded plan reached the cache")
	}
}

// TestCorruptCacheEntryDemotedToMiss plants two decodable-but-invalid entries
// directly in the cache directory (bypassing Put's verification): one whose
// permutation belongs to a different row count, one marked degraded. Both
// must be demoted to misses, recomputed, and the first overwritten with the
// healthy plan.
func TestCorruptCacheEntryDemotedToMiss(t *testing.T) {
	leakcheck.Goroutines(t)
	dir := t.TempDir()
	mWrong := testMatrix(t, 3)
	mDegraded := testMatrix(t, 4)
	plant := func(e *plancache.Entry) {
		t.Helper()
		data, err := plancache.EncodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Key+plancache.Ext), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	plant(&plancache.Entry{Key: plancache.KeyCSR(mWrong), Perm: sparse.IdentityPerm(10)})
	plant(&plancache.Entry{
		Key:            plancache.KeyCSR(mDegraded),
		Perm:           sparse.IdentityPerm(mDegraded.Rows),
		Degraded:       true,
		DegradedReason: "requested: eigensolver did not converge; fell back to identity",
	})

	cache, err := plancache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPlanner{}
	s, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache})

	for _, m := range []*sparse.CSR{mWrong, mDegraded} {
		resp, body := postPlan(t, ts.URL, mmBody(t, m), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var pr PlanResponse
		if err := json.Unmarshal([]byte(body), &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Cached {
			t.Fatalf("invalid entry served as a cache hit: %s", body)
		}
		if pr.Degraded {
			t.Fatalf("recomputation should have produced a healthy plan: %s", body)
		}
		if p.runsFor(plancache.KeyCSR(m)) != 1 {
			t.Fatal("pipeline did not recompute the demoted hit")
		}
	}
	if st := s.Stats(); st.VerifyViolations < 2 {
		t.Fatalf("VerifyViolations = %d, want ≥ 2", st.VerifyViolations)
	}
	// The wrong-rows entry was overwritten by the healthy recomputation.
	if e, ok := cache.Get(plancache.KeyCSR(mWrong)); !ok || len(e.Perm) != mWrong.Rows {
		t.Fatal("healthy recomputation did not replace the invalid entry")
	}
	if planverify.BySite()[planverify.SiteServeHit] == 0 {
		t.Fatal("violations not recorded under the serve-hit site")
	}
}

// TestVerifyInjectedCorruptionCaughtAtServe arms the PlanCorrupt fault point
// and asserts the serving layer's verifier catches it: every response is
// still 200 but marked degraded with the verification reason, and the cache
// stays empty.
func TestVerifyInjectedCorruptionCaughtAtServe(t *testing.T) {
	leakcheck.Goroutines(t)
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.PlanCorrupt, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	p := &countingPlanner{}
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache, MaxRetries: 1, RetryBackoff: time.Millisecond})
	resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 5)), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "plan verification failed") {
		t.Fatalf("injected corruption not caught: %s", body)
	}
	if cache.Len() != 0 {
		t.Fatal("corrupt plan cached")
	}
	if s.Stats().VerifyViolations == 0 {
		t.Fatal("VerifyViolations did not move")
	}
}

// TestAutoKResponseField pins the /v1/plan autoK field contract on a server
// planning under auto-k: a fresh plan reports the pipeline's per-attempt
// outcome string verbatim, and a cache hit reports "cached" (the entry was
// keyed with auto-k, but the outcome string is not persisted). A server
// without Config.AutoK must omit the field entirely.
func TestAutoKResponseField(t *testing.T) {
	leakcheck.Goroutines(t)
	p := &countingPlanner{make: func(m *sparse.CSR, attempt int) (*reorder.Result, error) {
		res := healthyResult(m)
		res.AutoK = "selected: k=8 gap-ratio=2.10"
		return res, nil
	}}
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache, AutoK: true})

	m := testMatrix(t, 6)
	decode := func(body string) PlanResponse {
		t.Helper()
		var pr PlanResponse
		if err := json.Unmarshal([]byte(body), &pr); err != nil {
			t.Fatalf("bad response %s: %v", body, err)
		}
		return pr
	}
	_, body := postPlan(t, ts.URL, mmBody(t, m), "")
	if pr := decode(body); pr.Cached || pr.AutoK != "selected: k=8 gap-ratio=2.10" {
		t.Fatalf("fresh plan autoK = %q (cached=%v), want the pipeline outcome", pr.AutoK, pr.Cached)
	}
	_, body = postPlan(t, ts.URL, mmBody(t, m), "")
	if pr := decode(body); !pr.Cached || pr.AutoK != "cached" {
		t.Fatalf("cache hit autoK = %q (cached=%v), want \"cached\"", pr.AutoK, pr.Cached)
	}

	// Without Config.AutoK the field stays empty on hits and the JSON
	// omits it (omitempty) — fixed-k servers keep their response shape.
	p2 := &countingPlanner{}
	cache2, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Plan: p2.fn(), Cache: cache2})
	_, body = postPlan(t, ts2.URL, mmBody(t, m), "")
	_, body = postPlan(t, ts2.URL, mmBody(t, m), "")
	if strings.Contains(body, "autoK") {
		t.Fatalf("fixed-k server leaked an autoK field: %s", body)
	}
}
