package planserve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"bootes/internal/core"
	"bootes/internal/obs"
	"bootes/internal/parallel"
	"bootes/internal/plancache"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// runMetricsScenario drives one fixed planning request through a server whose
// registry uses the deterministic fake clock, under the given worker count,
// and returns the server registry's exposition. The pipeline's stage spans
// start and end on adjacent clock readings regardless of how many workers the
// stages fan out to, so the rendered text must be byte-identical for any
// worker count.
func runMetricsScenario(t *testing.T, workers int) string {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))

	reg := obs.NewRegistry()
	reg.SetNow(obs.Elapse(time.Unix(1700000000, 0), time.Millisecond))
	pipe := &core.Pipeline{ForceK: 2}
	pipe.Spectral.Seed = 1
	plan := func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		return pipe.ReorderContext(ctx, m)
	}
	_, ts := newTestServer(t, Config{Plan: plan, Metrics: reg})

	resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 1)), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// metricsGolden is the exact /metrics exposition of the scenario above:
// one healthy forced-k=2 plan, every stage exactly one fake-clock step (1ms).
const metricsGolden = `# HELP bootes_plan_rung_attempts_total Degradation-ladder rung attempts.
# TYPE bootes_plan_rung_attempts_total counter
bootes_plan_rung_attempts_total{rung="requested"} 1
# HELP bootes_plan_spans_open Stage spans currently open; zero when no plan is in flight.
# TYPE bootes_plan_spans_open gauge
bootes_plan_spans_open 0
# HELP bootes_plan_stage_seconds Wall-clock time per planning pipeline stage.
# TYPE bootes_plan_stage_seconds histogram
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="1e-05"} 0
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="0.0001"} 0
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="0.001"} 1
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="0.01"} 1
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="0.1"} 1
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="1"} 1
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="10"} 1
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="60"} 1
bootes_plan_stage_seconds_bucket{stage="eigensolve",le="+Inf"} 1
bootes_plan_stage_seconds_sum{stage="eigensolve"} 0.001
bootes_plan_stage_seconds_count{stage="eigensolve"} 1
bootes_plan_stage_seconds_bucket{stage="features",le="1e-05"} 0
bootes_plan_stage_seconds_bucket{stage="features",le="0.0001"} 0
bootes_plan_stage_seconds_bucket{stage="features",le="0.001"} 1
bootes_plan_stage_seconds_bucket{stage="features",le="0.01"} 1
bootes_plan_stage_seconds_bucket{stage="features",le="0.1"} 1
bootes_plan_stage_seconds_bucket{stage="features",le="1"} 1
bootes_plan_stage_seconds_bucket{stage="features",le="10"} 1
bootes_plan_stage_seconds_bucket{stage="features",le="60"} 1
bootes_plan_stage_seconds_bucket{stage="features",le="+Inf"} 1
bootes_plan_stage_seconds_sum{stage="features"} 0.001
bootes_plan_stage_seconds_count{stage="features"} 1
bootes_plan_stage_seconds_bucket{stage="kmeans",le="1e-05"} 0
bootes_plan_stage_seconds_bucket{stage="kmeans",le="0.0001"} 0
bootes_plan_stage_seconds_bucket{stage="kmeans",le="0.001"} 1
bootes_plan_stage_seconds_bucket{stage="kmeans",le="0.01"} 1
bootes_plan_stage_seconds_bucket{stage="kmeans",le="0.1"} 1
bootes_plan_stage_seconds_bucket{stage="kmeans",le="1"} 1
bootes_plan_stage_seconds_bucket{stage="kmeans",le="10"} 1
bootes_plan_stage_seconds_bucket{stage="kmeans",le="60"} 1
bootes_plan_stage_seconds_bucket{stage="kmeans",le="+Inf"} 1
bootes_plan_stage_seconds_sum{stage="kmeans"} 0.001
bootes_plan_stage_seconds_count{stage="kmeans"} 1
bootes_plan_stage_seconds_bucket{stage="permute",le="1e-05"} 0
bootes_plan_stage_seconds_bucket{stage="permute",le="0.0001"} 0
bootes_plan_stage_seconds_bucket{stage="permute",le="0.001"} 1
bootes_plan_stage_seconds_bucket{stage="permute",le="0.01"} 1
bootes_plan_stage_seconds_bucket{stage="permute",le="0.1"} 1
bootes_plan_stage_seconds_bucket{stage="permute",le="1"} 1
bootes_plan_stage_seconds_bucket{stage="permute",le="10"} 1
bootes_plan_stage_seconds_bucket{stage="permute",le="60"} 1
bootes_plan_stage_seconds_bucket{stage="permute",le="+Inf"} 1
bootes_plan_stage_seconds_sum{stage="permute"} 0.001
bootes_plan_stage_seconds_count{stage="permute"} 1
bootes_plan_stage_seconds_bucket{stage="similarity",le="1e-05"} 0
bootes_plan_stage_seconds_bucket{stage="similarity",le="0.0001"} 0
bootes_plan_stage_seconds_bucket{stage="similarity",le="0.001"} 1
bootes_plan_stage_seconds_bucket{stage="similarity",le="0.01"} 1
bootes_plan_stage_seconds_bucket{stage="similarity",le="0.1"} 1
bootes_plan_stage_seconds_bucket{stage="similarity",le="1"} 1
bootes_plan_stage_seconds_bucket{stage="similarity",le="10"} 1
bootes_plan_stage_seconds_bucket{stage="similarity",le="60"} 1
bootes_plan_stage_seconds_bucket{stage="similarity",le="+Inf"} 1
bootes_plan_stage_seconds_sum{stage="similarity"} 0.001
bootes_plan_stage_seconds_count{stage="similarity"} 1
# HELP bootes_plans_total Planning pipeline calls by outcome.
# TYPE bootes_plans_total counter
bootes_plans_total{outcome="healthy"} 1
# HELP bootes_serve_async_rejected_total Async submissions rejected by queue backlog bounds (429).
# TYPE bootes_serve_async_rejected_total counter
bootes_serve_async_rejected_total 0
# HELP bootes_serve_breaker_short_circuits_total Requests answered by the breaker's identity fast-path.
# TYPE bootes_serve_breaker_short_circuits_total counter
bootes_serve_breaker_short_circuits_total 0
# HELP bootes_serve_breaker_state Circuit breaker position: 0 closed, 1 open, 2 half-open.
# TYPE bootes_serve_breaker_state gauge
bootes_serve_breaker_state 0
# HELP bootes_serve_breaker_trips_total Circuit breaker closed-to-open transitions.
# TYPE bootes_serve_breaker_trips_total counter
bootes_serve_breaker_trips_total 0
# HELP bootes_serve_coalesced_total Requests that rode a concurrent identical flight.
# TYPE bootes_serve_coalesced_total counter
bootes_serve_coalesced_total 0
# HELP bootes_serve_degraded_total Responses carrying a degraded plan.
# TYPE bootes_serve_degraded_total counter
bootes_serve_degraded_total 0
# HELP bootes_serve_draining 1 while graceful shutdown is in progress.
# TYPE bootes_serve_draining gauge
bootes_serve_draining 0
# HELP bootes_serve_inflight Pipelines currently executing.
# TYPE bootes_serve_inflight gauge
bootes_serve_inflight 0
# HELP bootes_serve_latency_seconds End-to-end /v1/plan request latency by outcome (ok, shed, error).
# TYPE bootes_serve_latency_seconds histogram
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.005"} 0
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.01"} 0
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.025"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.05"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.1"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.25"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.5"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="1"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="2.5"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="5"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="10"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="30"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="60"} 1
bootes_serve_latency_seconds_bucket{outcome="ok",le="+Inf"} 1
bootes_serve_latency_seconds_sum{outcome="ok"} 0.011
bootes_serve_latency_seconds_count{outcome="ok"} 1
# HELP bootes_serve_peer_fills_total Local cache misses answered by a fleet sibling's cache.
# TYPE bootes_serve_peer_fills_total counter
bootes_serve_peer_fills_total 0
# HELP bootes_serve_queued Requests waiting for an in-flight slot.
# TYPE bootes_serve_queued gauge
bootes_serve_queued 0
# HELP bootes_serve_retries_total Serve-level pipeline re-runs of transiently degraded plans.
# TYPE bootes_serve_retries_total counter
bootes_serve_retries_total 0
# HELP bootes_serve_served_total Completed /v1/plan responses.
# TYPE bootes_serve_served_total counter
bootes_serve_served_total 1
# HELP bootes_serve_shed_total Requests shed by admission control (429).
# TYPE bootes_serve_shed_total counter
bootes_serve_shed_total 0
# HELP bootes_serve_verify_violations_total Plan-verification violations observed by this server.
# TYPE bootes_serve_verify_violations_total counter
bootes_serve_verify_violations_total 0
# HELP bootes_serve_warming 1 while start-up warm-up holds readiness at 503.
# TYPE bootes_serve_warming gauge
bootes_serve_warming 0
# HELP bootes_similarity_mode_total Spectral passes by similarity construction tier.
# TYPE bootes_similarity_mode_total counter
bootes_similarity_mode_total{mode="exact"} 1
`

// TestMetricsGolden pins the full exposition of a fixed fake-clock scenario:
// the bytes must not drift across runs or worker counts. A legitimate metric
// change updates the golden deliberately.
func TestMetricsGolden(t *testing.T) {
	for _, workers := range []int{1, 8} {
		got := runMetricsScenario(t, workers)
		if got != metricsGolden {
			t.Errorf("workers=%d: exposition drifted from golden:\n--- got ---\n%s", workers, got)
		}
	}
}

// TestMetricsEndpointServesMergedExposition checks GET /metrics includes the
// server families and parses as well-formed exposition lines.
func TestMetricsEndpointServesMergedExposition(t *testing.T) {
	p := &countingPlanner{}
	_, ts := newTestServer(t, Config{Plan: p.fn()})
	resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 3)), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, body)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "bootes_serve_served_total 1\n") {
		t.Errorf("served counter missing from /metrics:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLineRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

var sampleLineRE = regexp.MustCompile(`^[a-z0-9_]+(\{[^}]*\})? -?[0-9+.eInf-]+$`)

// metricNameRE is the repo's naming contract: bootes-prefixed lowercase with
// an optional unit/kind suffix.
var metricNameRE = regexp.MustCompile(`^bootes_[a-z0-9_]+(_total|_seconds|_bytes)?$`)

// TestMetricNameLint walks every family registered by a full serving scenario
// (server registry and the process Default) and enforces the naming scheme
// and histogram bucket invariants: monotone bounds and a trailing +Inf in
// the rendered exposition.
func TestMetricNameLint(t *testing.T) {
	reg := obs.NewRegistry()
	pipe := &core.Pipeline{ForceK: 2}
	plan := func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		return pipe.ReorderContext(ctx, m)
	}
	dir := t.TempDir()
	cache, err := plancache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Plan: plan, Metrics: reg, Cache: cache})
	if resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 2)), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	for _, r := range []*obs.Registry{reg, obs.Default()} {
		for _, fam := range r.Snapshot() {
			if !metricNameRE.MatchString(fam.Name) {
				t.Errorf("metric %q violates naming scheme %s", fam.Name, metricNameRE)
			}
			switch fam.Type {
			case obs.TypeCounter:
				if !strings.HasSuffix(fam.Name, "_total") {
					t.Errorf("counter %q must end in _total", fam.Name)
				}
			case obs.TypeHistogram:
				if !strings.HasSuffix(fam.Name, "_seconds") && !strings.HasSuffix(fam.Name, "_bytes") {
					t.Errorf("histogram %q must end in a unit suffix", fam.Name)
				}
				if len(fam.Buckets) == 0 {
					t.Errorf("histogram %q has no buckets", fam.Name)
				}
				for i := 1; i < len(fam.Buckets); i++ {
					if fam.Buckets[i] <= fam.Buckets[i-1] {
						t.Errorf("histogram %q buckets not monotone: %v", fam.Name, fam.Buckets)
					}
				}
			}
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		// Every rendered histogram series must close with a +Inf bucket: as
		// many +Inf lines as _count lines, per family.
		for _, fam := range r.Snapshot() {
			if fam.Type != obs.TypeHistogram {
				continue
			}
			counts := strings.Count(out, fam.Name+"_count")
			infs := 0
			for _, line := range strings.Split(out, "\n") {
				if strings.HasPrefix(line, fam.Name+"_bucket") && strings.Contains(line, `le="+Inf"`) {
					infs++
				}
			}
			if infs != counts {
				t.Errorf("histogram %q: %d +Inf bucket lines for %d series", fam.Name, infs, counts)
			}
		}
	}
}

// TestStatszShapePinned is the migration back-compat pin: the /statsz JSON
// document must keep exactly the pre-migration key set and reflect the same
// counts the instruments hold. Decoding into a strict struct catches removed
// or renamed fields; the key-set check catches additions.
func TestStatszShapePinned(t *testing.T) {
	p := &countingPlanner{}
	dir := t.TempDir()
	cache, err := plancache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Plan: p.fn(), Cache: cache})
	m := testMatrix(t, 5)
	for i := 0; i < 2; i++ { // second request is a cache hit
		if resp, body := postPlan(t, ts.URL, mmBody(t, m), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}

	r, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}

	wantKeys := []string{
		"Served", "Shed", "Coalesced", "Degraded", "BreakerShortCircuits",
		"Retries", "VerifyViolations", "TenantShed", "AsyncRejected", "PeerFills",
		"InFlight", "Queued", "Draining",
		"Breaker", "BreakerTrips", "Cache",
		// "Queue" is omitempty and absent here: this server runs without an
		// async queue, and the pin asserts exactly that.
	}
	if len(raw) != len(wantKeys) {
		t.Errorf("statsz has %d keys, want %d: %v", len(raw), len(wantKeys), keysOf(raw))
	}
	for _, k := range wantKeys {
		if _, ok := raw[k]; !ok {
			t.Errorf("statsz missing key %q", k)
		}
	}
	var cacheRaw map[string]json.RawMessage
	if err := json.Unmarshal(raw["Cache"], &cacheRaw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"Entries", "Hits", "Misses", "Puts", "WriteErrors", "Quarantined"} {
		if _, ok := cacheRaw[k]; !ok {
			t.Errorf("statsz Cache missing key %q", k)
		}
	}

	// Field-for-field: the HTTP document equals the in-process Stats() which
	// equals the instruments' own readings.
	var doc Stats
	full, _ := json.Marshal(raw)
	if err := json.Unmarshal(full, &doc); err != nil {
		t.Fatal(err)
	}
	want := s.Stats()
	if doc != want {
		t.Errorf("statsz document %+v != Stats() %+v", doc, want)
	}
	cases := []struct {
		name string
		got  int64
		want int64
	}{
		{"Served", doc.Served, 2},
		{"Shed", doc.Shed, 0},
		{"Coalesced", doc.Coalesced, 0},
		{"Degraded", doc.Degraded, 0},
		{"Retries", doc.Retries, 0},
		{"InFlight", doc.InFlight, 0},
		{"Queued", doc.Queued, 0},
		{"Cache.Hits", doc.Cache.Hits, 1},
		{"Cache.Puts", doc.Cache.Puts, 1},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
