package planserve

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bootes"
	"bootes/internal/faultinject"
	"bootes/internal/plancache"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// fakeClock is an injectable clock so cooldown expiry is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerUnitStateMachine drives the breaker directly through
// closed → open → half-open → closed and the probe-failure re-open.
func TestBreakerUnitStateMachine(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Second}, clock.now)

	if run, probe := b.Allow(); !run || probe {
		t.Fatal("closed breaker must admit normally")
	}
	b.Record(false, false)
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatal("one failure below threshold tripped the breaker")
	}
	b.Record(true, false) // success resets the consecutive count
	b.Record(false, false)
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Record(false, false)
	if st, trips := b.Snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("state=%v trips=%d after threshold failures, want open/1", st, trips)
	}

	// Open within the cooldown: fast-path only.
	clock.advance(9 * time.Second)
	if run, _ := b.Allow(); run {
		t.Fatal("open breaker admitted a pipeline run inside the cooldown")
	}
	// Cooldown elapsed: exactly one probe, concurrent requests stay shed.
	clock.advance(2 * time.Second)
	run, probe := b.Allow()
	if !run || !probe {
		t.Fatalf("allow after cooldown = (%v, %v), want a probe", run, probe)
	}
	if run, _ := b.Allow(); run {
		t.Fatal("second concurrent probe admitted")
	}
	// A cancelled probe frees the slot for the next request.
	b.CancelProbe()
	if run, probe := b.Allow(); !run || !probe {
		t.Fatal("probe slot not released by cancelProbe")
	}
	// Probe failure re-opens and restarts the cooldown.
	b.Record(false, true)
	if st, trips := b.Snapshot(); st != BreakerOpen || trips != 2 {
		t.Fatalf("state=%v trips=%d after failed probe, want open/2", st, trips)
	}
	clock.advance(11 * time.Second)
	if run, probe := b.Allow(); !run || !probe {
		t.Fatal("no probe after second cooldown")
	}
	b.Record(true, true)
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	// A stale failure recorded after recovery must not instantly re-trip.
	b.Record(false, false)
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatal("single post-recovery failure re-tripped a threshold-2 breaker")
	}
}

func TestBreakerDisabledByDefault(t *testing.T) {
	b := NewBreaker(BreakerConfig{}, nil)
	for i := 0; i < 10; i++ {
		b.Record(false, false)
	}
	if run, _ := b.Allow(); !run {
		t.Fatal("zero-threshold breaker must never open")
	}
}

// TestBreakerTripHalfOpenRecover exercises the full serving-path sequence
// with an injectable clock and faultinject's probe-failure point:
// consecutive hard-degraded plans trip the breaker, open serves marked
// identity plans without running the pipeline, the post-cooldown probe is
// forced to fail once (re-open), then allowed to succeed (closed).
func TestBreakerTripHalfOpenRecover(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	clock := newFakeClock()
	var healthy atomic.Bool
	p := &countingPlanner{}
	p.make = func(m *sparse.CSR, _ int) (*reorder.Result, error) {
		if healthy.Load() {
			return healthyResult(m), nil
		}
		return degradedResult(m, "requested: eigensolver did not converge; fell back to identity"), nil
	}
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Plan:       p.fn(),
		Cache:      cache,
		MaxRetries: -1, // isolate the breaker from the retry ladder
		Breaker:    BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Second},
		Now:        clock.now,
	})

	post := func(seed int64) (int, string) {
		resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, seed)), "")
		return resp.StatusCode, body
	}

	// Two consecutive hard-degraded plans trip the breaker.
	for seed := int64(1); seed <= 2; seed++ {
		code, body := post(seed)
		if code != http.StatusOK || !strings.Contains(body, `"degraded":true`) {
			t.Fatalf("request %d: %d %s", seed, code, body)
		}
	}
	if st := s.Stats(); st.Breaker != "open" || st.BreakerTrips != 1 {
		t.Fatalf("after threshold failures: breaker=%s trips=%d", st.Breaker, st.BreakerTrips)
	}

	// Open: identity fast-path — marked, served without a pipeline run,
	// never cached.
	code, body := post(3)
	if code != http.StatusOK || !strings.Contains(body, `"breaker":"open"`) {
		t.Fatalf("open-breaker response: %d %s", code, body)
	}
	if !strings.Contains(body, `"degraded":true`) || !strings.Contains(body, "circuit breaker open") {
		t.Fatalf("fast-path plan not marked degraded: %s", body)
	}
	if p.totalRuns() != 2 {
		t.Fatalf("pipeline ran %d times; the open breaker must not run it", p.totalRuns())
	}
	if cache.Len() != 0 {
		t.Fatal("a breaker identity plan (or a degraded plan) was cached")
	}
	if st := s.Stats(); st.BreakerShortCircuits != 1 {
		t.Fatalf("BreakerShortCircuits = %d, want 1", st.BreakerShortCircuits)
	}

	// Cooldown elapses; the pipeline is healthy again, but the injected
	// fault forces the half-open probe to be recorded as a failure.
	clock.advance(11 * time.Second)
	healthy.Store(true)
	faultinject.Arm(faultinject.BreakerProbeFail)
	code, body = post(4)
	if code != http.StatusOK || strings.Contains(body, `"degraded":true`) {
		// The probe's actual plan is healthy and is still what the client gets;
		// only the breaker's accounting is poisoned.
		t.Fatalf("probe response: %d %s", code, body)
	}
	if p.totalRuns() != 3 {
		t.Fatalf("probe did not run the pipeline (runs=%d)", p.totalRuns())
	}
	if st := s.Stats(); st.Breaker != "open" || st.BreakerTrips != 2 {
		t.Fatalf("after failed probe: breaker=%s trips=%d, want open/2", st.Breaker, st.BreakerTrips)
	}
	// Still short-circuiting.
	if _, body := post(5); !strings.Contains(body, `"breaker":"open"`) {
		t.Fatalf("re-opened breaker not short-circuiting: %s", body)
	}

	// Second cooldown, no injected fault: the probe succeeds and closes.
	clock.advance(11 * time.Second)
	code, body = post(6)
	if code != http.StatusOK || strings.Contains(body, `"breaker"`) {
		t.Fatalf("recovery probe: %d %s", code, body)
	}
	if st := s.Stats(); st.Breaker != "closed" || st.BreakerTrips != 2 {
		t.Fatalf("after successful probe: breaker=%s trips=%d, want closed/2", st.Breaker, st.BreakerTrips)
	}
	// Normal service resumed: the pipeline runs and healthy plans cache again.
	if code, _ := post(7); code != http.StatusOK {
		t.Fatal("post-recovery request failed")
	}
	if p.totalRuns() != 5 {
		t.Fatalf("runs = %d after recovery, want 5", p.totalRuns())
	}
	if cache.Len() == 0 {
		t.Fatal("healthy post-recovery plans are not being cached")
	}
}

// TestBreakerEndToEndRealPipeline drives the breaker through the real
// planning pipeline: faultinject's eigensolver fault makes every plan fall
// down the ladder to a hard degradation, tripping the breaker; disarming it
// lets the half-open probe genuinely recover.
func TestBreakerEndToEndRealPipeline(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	clock := newFakeClock()
	plan := func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		p, err := bootes.PlanContext(ctx, m, &bootes.Options{
			Seed: 1 + int64(attempt)*0x9E3779B9, ForceReorder: true, ForceK: 4,
		})
		if err != nil {
			return nil, err
		}
		return &reorder.Result{
			Perm:           p.Perm,
			Reordered:      p.Reordered,
			Degraded:       p.Degraded,
			DegradedReason: p.DegradedReason,
			Extra:          map[string]float64{"k": float64(p.K)},
		}, nil
	}
	s, ts := newTestServer(t, Config{
		Plan:       plan,
		MaxRetries: -1,
		Breaker:    BreakerConfig{FailureThreshold: 2, Cooldown: 5 * time.Second},
		Now:        clock.now,
	})

	faultinject.Arm(faultinject.EigenNoConverge, faultinject.Always())
	for seed := int64(1); seed <= 2; seed++ {
		resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, seed)), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", seed, resp.StatusCode, body)
		}
		if !strings.Contains(body, "did not converge") {
			t.Fatalf("ladder did not report eigensolver failure: %s", body)
		}
	}
	if st := s.Stats(); st.Breaker != "open" {
		t.Fatalf("breaker = %s after repeated ladder falls, want open", st.Breaker)
	}
	hitsWhenOpen := faultinject.Hits(faultinject.EigenNoConverge)
	if resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 3)), ""); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"breaker":"open"`) {
		t.Fatalf("open breaker: %d %s", resp.StatusCode, body)
	}
	if faultinject.Hits(faultinject.EigenNoConverge) != hitsWhenOpen {
		t.Fatal("short-circuited request still reached the eigensolver")
	}

	// Heal the pipeline and let the probe through.
	faultinject.Disarm(faultinject.EigenNoConverge)
	clock.advance(6 * time.Second)
	resp, body := postPlan(t, ts.URL, mmBody(t, testMatrix(t, 4)), "")
	if resp.StatusCode != http.StatusOK || strings.Contains(body, `"degraded":true`) {
		t.Fatalf("recovery probe: %d %s", resp.StatusCode, body)
	}
	if st := s.Stats(); st.Breaker != "closed" {
		t.Fatalf("breaker = %s after healthy probe, want closed", st.Breaker)
	}
}

func TestBreakerReset(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}, clock.now)
	b.Record(false, false)
	b.Record(false, false)
	if st, _ := b.Snapshot(); st != BreakerOpen {
		t.Fatal("breaker did not trip")
	}
	// Reset mid-cooldown: the breaker closes immediately and serves normally.
	b.Reset()
	if st, trips := b.Snapshot(); st != BreakerClosed || trips != 1 {
		t.Fatalf("state=%v trips=%d after reset, want closed with trips preserved", st, trips)
	}
	if run, probe := b.Allow(); !run || probe {
		t.Fatal("reset breaker must admit normally, not as a probe")
	}
	// Reset also releases a claimed half-open probe slot.
	b.Record(false, false)
	b.Record(false, false)
	clock.advance(2 * time.Hour)
	if run, probe := b.Allow(); !run || !probe {
		t.Fatal("expected a half-open probe claim")
	}
	b.Reset()
	if run, probe := b.Allow(); !run || probe {
		t.Fatal("reset did not clear the in-flight probe claim")
	}
	// Reset on a disabled breaker is a no-op.
	NewBreaker(BreakerConfig{}, nil).Reset()
}
