// Package trafficmodel provides a fast, row-granular estimate of the
// off-chip traffic a row-wise-product SpGEMM generates. Where
// internal/accel simulates a set-associative cache at line granularity with
// PE interleaving, this model treats the on-chip cache as a fully
// associative LRU over whole B rows — an O(nnz(A)) single pass. The decision
// tree labeller and the Figure 3 cluster-size sweep use it to score
// thousands of (matrix, k) combinations quickly; its ranking agrees with the
// detailed simulator because both are driven by the same reuse distances.
package trafficmodel

import (
	"container/list"

	"bootes/internal/sparse"
)

// Estimate is the outcome of one traffic estimation.
type Estimate struct {
	// BTraffic is the estimated bytes fetched from DRAM for B rows.
	BTraffic int64
	// BCompulsory is the sum of all referenced B-row sizes (one fetch each).
	BCompulsory int64
	// Hits and Misses count row-granular cache events.
	Hits, Misses int64
}

// Ratio returns BTraffic / BCompulsory (1 = perfect reuse), or 0 when no
// B rows are referenced.
func (e Estimate) Ratio() float64 {
	if e.BCompulsory == 0 {
		return 0
	}
	return float64(e.BTraffic) / float64(e.BCompulsory)
}

// EstimateB runs the row-granular LRU model: rows of A are processed in
// order, and every nonzero A[i,k] touches B row k (all of its bytes) in an
// LRU cache of capacityBytes. elemBytes is the storage cost per stored
// nonzero (12 in the accelerator configs).
func EstimateB(a, b *sparse.CSR, capacityBytes, elemBytes int64) (Estimate, error) {
	if a.Cols != b.Rows {
		return Estimate{}, sparse.ErrDimension
	}
	var est Estimate
	rowBytes := make([]int64, b.Rows)
	for k := 0; k < b.Rows; k++ {
		rowBytes[k] = (b.RowPtr[k+1] - b.RowPtr[k]) * elemBytes
	}
	referenced := make([]bool, b.Rows)
	for _, k := range a.Col {
		if !referenced[k] {
			referenced[k] = true
			est.BCompulsory += rowBytes[k]
		}
	}

	// Fully associative LRU over B rows.
	lru := list.New()                     // front = most recent; values are row ids
	elem := make([]*list.Element, b.Rows) // row id → list element (nil if absent)
	var resident int64
	touch := func(k int32) {
		if e := elem[k]; e != nil {
			lru.MoveToFront(e)
			est.Hits++
			return
		}
		est.Misses++
		est.BTraffic += rowBytes[k]
		if rowBytes[k] >= capacityBytes {
			// Row larger than the cache: streams through, never resident.
			return
		}
		resident += rowBytes[k]
		elem[k] = lru.PushFront(k)
		for resident > capacityBytes {
			back := lru.Back()
			victim := back.Value.(int32)
			lru.Remove(back)
			elem[victim] = nil
			resident -= rowBytes[victim]
		}
	}

	for i := 0; i < a.Rows; i++ {
		for _, k := range a.Row(i) {
			touch(k)
		}
	}
	return est, nil
}

// EstimateBWithPerm is EstimateB after applying row permutation perm to A,
// without materializing the permuted matrix.
func EstimateBWithPerm(a, b *sparse.CSR, perm sparse.Permutation, capacityBytes, elemBytes int64) (Estimate, error) {
	if err := perm.Validate(a.Rows); err != nil {
		return Estimate{}, err
	}
	if a.Cols != b.Rows {
		return Estimate{}, sparse.ErrDimension
	}
	var est Estimate
	rowBytes := make([]int64, b.Rows)
	for k := 0; k < b.Rows; k++ {
		rowBytes[k] = (b.RowPtr[k+1] - b.RowPtr[k]) * elemBytes
	}
	referenced := make([]bool, b.Rows)
	for _, k := range a.Col {
		if !referenced[k] {
			referenced[k] = true
			est.BCompulsory += rowBytes[k]
		}
	}
	lru := list.New()
	elem := make([]*list.Element, b.Rows)
	var resident int64
	for _, oldRow := range perm {
		for _, k := range a.Row(int(oldRow)) {
			if e := elem[k]; e != nil {
				lru.MoveToFront(e)
				est.Hits++
				continue
			}
			est.Misses++
			est.BTraffic += rowBytes[k]
			if rowBytes[k] >= capacityBytes {
				continue
			}
			resident += rowBytes[k]
			elem[k] = lru.PushFront(k)
			for resident > capacityBytes {
				back := lru.Back()
				victim := back.Value.(int32)
				lru.Remove(back)
				elem[victim] = nil
				resident -= rowBytes[victim]
			}
		}
	}
	return est, nil
}
