package trafficmodel

import (
	"testing"

	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func block(seed int64) *sparse.CSR {
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 1024, Cols: 1024, Density: 0.01, Seed: seed, Groups: 8,
	})
}

func TestEstimateBounds(t *testing.T) {
	a := block(1)
	est, err := EstimateB(a, a, 8<<10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if est.BTraffic < est.BCompulsory {
		t.Errorf("traffic %d below compulsory %d", est.BTraffic, est.BCompulsory)
	}
	if est.Hits+est.Misses != a.NNZ() {
		t.Errorf("events %d != nnz %d", est.Hits+est.Misses, a.NNZ())
	}
	if est.Ratio() < 1 {
		t.Errorf("ratio %v below 1", est.Ratio())
	}
}

func TestUnboundedCacheHitsCompulsory(t *testing.T) {
	a := block(2)
	est, err := EstimateB(a, a, 1<<40, 12)
	if err != nil {
		t.Fatal(err)
	}
	if est.BTraffic != est.BCompulsory {
		t.Errorf("unbounded cache traffic %d != compulsory %d", est.BTraffic, est.BCompulsory)
	}
}

func TestIdentityPermMatchesPlain(t *testing.T) {
	a := block(3)
	plain, err := EstimateB(a, a, 8<<10, 12)
	if err != nil {
		t.Fatal(err)
	}
	id, err := EstimateBWithPerm(a, a, sparse.IdentityPerm(a.Rows), 8<<10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BTraffic != id.BTraffic || plain.Hits != id.Hits {
		t.Error("identity permutation changed the estimate")
	}
}

func TestPermutedEstimateMatchesMaterialized(t *testing.T) {
	// EstimateBWithPerm(a, perm) must equal EstimateB(permute(a)).
	a := block(4)
	perm := sparse.IdentityPerm(a.Rows)
	// Reverse order.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	viaPerm, err := EstimateBWithPerm(a, a, perm, 8<<10, 12)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := sparse.PermuteRows(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	materialized, err := EstimateB(ap, a, 8<<10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if viaPerm.BTraffic != materialized.BTraffic {
		t.Errorf("perm view %d != materialized %d", viaPerm.BTraffic, materialized.BTraffic)
	}
}

func TestDimensionErrors(t *testing.T) {
	if _, err := EstimateB(sparse.Zero(2, 3), sparse.Zero(4, 4), 1024, 12); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := EstimateBWithPerm(sparse.Zero(2, 2), sparse.Zero(2, 2), sparse.Permutation{0}, 1024, 12); err == nil {
		t.Error("bad permutation accepted")
	}
}

func TestHugeRowStreamsThrough(t *testing.T) {
	// One B row larger than the cache must not evict everything forever:
	// it streams and others stay resident.
	rows := [][]int32{{0}, {1}, {0}, {1}}
	a, err := sparse.FromRows(4, 2, rows)
	if err != nil {
		t.Fatal(err)
	}
	// B: row 0 is huge (500 entries ⇒ 6000 bytes), row 1 tiny.
	bRows := make([][]int32, 2)
	for c := int32(0); c < 500; c++ {
		bRows[0] = append(bRows[0], c)
	}
	bRows[1] = []int32{0}
	b, err := sparse.FromRows(2, 500, bRows)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateB(a, b, 4096, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 fetched twice (streams), row 1 once (stays resident).
	want := int64(2*500*12 + 1*12)
	if est.BTraffic != want {
		t.Errorf("traffic %d, want %d", est.BTraffic, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	z := sparse.Zero(3, 3)
	est, err := EstimateB(z, z, 1024, 12)
	if err != nil {
		t.Fatal(err)
	}
	if est.BTraffic != 0 || est.Ratio() != 0 {
		t.Error("empty input produced traffic")
	}
}
