// Package planverify is the always-on invariant checker that stands between
// the planning pipeline and everything downstream of it. Bootes's value
// proposition is "reorder only when it helps": a plan that silently ships an
// invalid or traffic-worsening permutation is strictly worse than serving
// identity. Every ReorderPlan is therefore machine-checked before it is
// returned to a caller (bootes.PlanContext), persisted (plancache.Put), or
// served over HTTP (internal/planserve). A violation never fails the request:
// the plan falls back to the identity permutation with the violation recorded
// in DegradedReason, and a process-wide counter (surfaced on bootesd's
// /statsz) ticks so operators can see corruption the moment it appears.
//
// The checks, in cost order:
//
//   - structural: the permutation is a bijection of exactly the matrix's row
//     count; K is 0 or a feasible cluster count (2..rows by default — auto-k
//     may select any k in that range — or an explicitly configured allowed
//     set); Degraded implies a non-empty DegradedReason (and vice versa);
//     Reordered agrees with whether the permutation is the identity. O(rows).
//   - traffic (optional, planning site only): the row-granular LRU model of
//     internal/trafficmodel predicts the reordered matrix moves no more B
//     bytes than the original order. A gate-approved plan that the model says
//     regresses is replaced by identity — the never-regress principle,
//     enforced rather than assumed. O(nnz).
//
// The faultinject.PlanCorrupt point makes the verifier check a deliberately
// corrupted copy of the permutation, letting tests and the chaos harness
// prove that every wiring site actually catches a bad plan.
package planverify

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"bootes/internal/core"
	"bootes/internal/faultinject"
	"bootes/internal/obs"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/trafficmodel"
)

// Violation codes. Code strings are stable identifiers for counters and
// tests; Detail carries the specifics.
const (
	// CodePermInvalid: the permutation is not a bijection on [0, rows).
	CodePermInvalid = "perm-invalid"
	// CodeBadK: K is neither 0 nor a feasible cluster count (outside
	// [2, rows], or outside the configured AllowedKs set).
	CodeBadK = "k-not-allowed"
	// CodeReasonMismatch: Degraded and DegradedReason disagree (a degraded
	// plan without a reason, or a reason on a healthy plan).
	CodeReasonMismatch = "degraded-reason-mismatch"
	// CodeReorderedMismatch: Reordered disagrees with the permutation (a
	// "reordered" identity, or a non-identity plan claiming otherwise).
	CodeReorderedMismatch = "reordered-mismatch"
	// CodeTrafficRegression: the traffic model predicts the reordering moves
	// more bytes than the original order.
	CodeTrafficRegression = "traffic-regression"
	// CodeDegradedCached: a degraded plan reached a cache write.
	CodeDegradedCached = "degraded-cached"
	// CodeReencodeMismatch: a cache entry did not re-encode bit-identically
	// (recorded by plancache.Put's codec round-trip check).
	CodeReencodeMismatch = "reencode-mismatch"
)

// Wiring sites, used as counter labels.
const (
	SitePlan     = "plan"           // bootes.PlanContext, pipeline output
	SitePlanHit  = "plan-cache-hit" // bootes.PlanContext, cached entry
	SiteCachePut = "plancache-put"  // plancache.Put, before the durable write
	SiteServe    = "planserve"      // planserve, before a 200 response
	SiteServeHit = "planserve-hit"  // planserve, cached entry
	SiteQueue    = "planqueue"      // planqueue worker, before a job completes
)

// TransientReason classifies a DegradedReason trail as retryable: the
// ladder's transient rung failures (eigensolver non-convergence, contained
// panics, stalled workers) may succeed on a re-run with a different seed,
// whereas budget and memory degradations are deterministic for the same
// request. The substrings match the reason strings core/degrade.go emits.
// Both the serving layer's retry loop and the async plan queue's bounded
// retries share this classification, so a reason string never means
// "retry" on one path and "final" on the other.
func TransientReason(reason string) bool {
	return strings.Contains(reason, "did not converge") ||
		strings.Contains(reason, "contained panic") ||
		strings.Contains(reason, "worker") ||
		// Verifier replacements: corruption is transient (a recomputation
		// may come back clean); "traffic regression predicted" deliberately
		// does NOT match — the model is deterministic for the same matrix.
		strings.Contains(reason, "plan verification failed")
}

// Violation is one failed invariant.
type Violation struct {
	Code   string
	Detail string
}

func (v Violation) String() string {
	if v.Detail == "" {
		return v.Code
	}
	return v.Code + " (" + v.Detail + ")"
}

// Config parameterizes the checks. The zero value (or nil) selects the
// defaults; the planning site additionally enables the traffic check.
type Config struct {
	// AllowedKs, when non-empty, restricts the legal cluster counts besides
	// 0 to exactly this set. Empty applies the default rule: k = 0, or
	// 2 ≤ k ≤ rows (any eigengap auto-k selection), or k ∈ core.CandidateKs
	// (fixed-k requests record the requested candidate count, which may
	// exceed a tiny matrix's row count).
	AllowedKs []int
	// Traffic enables the never-regress traffic check on reordered plans.
	Traffic bool
	// CacheBytes / ElemBytes parameterize the row-LRU traffic model.
	// Zero selects 1 MiB and 12 bytes (the accelerator configs' element
	// cost), the scale at which the model's ranking tracks the simulator.
	CacheBytes int64
	ElemBytes  int64
}

func (c *Config) withDefaults() Config {
	var out Config
	if c != nil {
		out = *c
	}
	if out.CacheBytes <= 0 {
		out.CacheBytes = 1 << 20
	}
	if out.ElemBytes <= 0 {
		out.ElemBytes = 12
	}
	return out
}

// Violation counters: a process-wide total plus per-site tallies, cheap
// enough to leave on forever and exported on bootesd's /statsz.
var (
	total     atomic.Int64
	countersM sync.Mutex
	bySite    map[string]int64
)

// Record tallies violations observed at site. Wiring sites call it
// automatically; it is exported for sites (like plancache's re-encode check)
// that detect violations with their own machinery. Each violation is also
// mirrored into the obs.Default registry by site and code
// (bootes_verify_violations_total), so /metrics carries the same signal as
// /statsz; the mirror is monotonic and unaffected by ResetCounters.
func Record(site string, vs ...Violation) {
	if len(vs) == 0 {
		return
	}
	total.Add(int64(len(vs)))
	countersM.Lock()
	if bySite == nil {
		bySite = make(map[string]int64)
	}
	bySite[site] += int64(len(vs))
	countersM.Unlock()
	for _, v := range vs {
		obs.VerifyViolation(site, v.Code, 1)
	}
}

// Total returns the process-wide violation count.
func Total() int64 { return total.Load() }

// BySite returns a copy of the per-site violation tallies.
func BySite() map[string]int64 {
	countersM.Lock()
	defer countersM.Unlock()
	out := make(map[string]int64, len(bySite))
	for k, v := range bySite {
		out[k] = v
	}
	return out
}

// ResetCounters zeroes the counters (tests).
func ResetCounters() {
	countersM.Lock()
	bySite = nil
	countersM.Unlock()
	total.Store(0)
}

// CheckPlan runs the structural invariants on a plan's fields and returns
// every violation found (nil when the plan is sound). It is pure: no
// counters, no fault injection.
func CheckPlan(rows int, perm sparse.Permutation, k int, reordered, degraded bool, reason string, cfg *Config) []Violation {
	c := cfg.withDefaults()
	var vs []Violation
	permOK := false
	if err := perm.Validate(rows); err != nil {
		vs = append(vs, Violation{CodePermInvalid, err.Error()})
	} else {
		permOK = true
	}
	if k != 0 {
		switch {
		case len(c.AllowedKs) > 0:
			if !kAllowed(k, c.AllowedKs) {
				vs = append(vs, Violation{CodeBadK, fmt.Sprintf("k=%d not in %v", k, c.AllowedKs)})
			}
		case (k < 2 || k > rows) && !kAllowed(k, core.CandidateKs):
			// Default rule: auto-k may select any k in [2, rows]; fixed-k
			// requests record the *requested* candidate count, which may
			// exceed a tiny matrix's row count, so the candidate set stays
			// legal at any size.
			vs = append(vs, Violation{CodeBadK,
				fmt.Sprintf("k=%d outside [2, %d] and not a candidate count", k, rows)})
		}
	}
	if degraded && reason == "" {
		vs = append(vs, Violation{CodeReasonMismatch, "degraded plan without a reason"})
	}
	if !degraded && reason != "" {
		vs = append(vs, Violation{CodeReasonMismatch, "healthy plan carries a degradation reason"})
	}
	if permOK {
		if id := perm.IsIdentity(); reordered == id {
			if reordered {
				vs = append(vs, Violation{CodeReorderedMismatch, "plan claims reordered but the permutation is the identity"})
			} else {
				vs = append(vs, Violation{CodeReorderedMismatch, "plan claims original order but the permutation is not the identity"})
			}
		}
	}
	return vs
}

func kAllowed(k int, allowed []int) bool {
	for _, a := range allowed {
		if k == a {
			return true
		}
	}
	return false
}

// CheckTraffic runs the never-regress check: the row-granular LRU traffic
// model must not predict more B traffic for the permuted order than for the
// original. B follows the paper's operand rule (B = A when square, Aᵀ
// otherwise). Returns nil when the plan does not regress.
func CheckTraffic(m *sparse.CSR, perm sparse.Permutation, cfg *Config) *Violation {
	c := cfg.withDefaults()
	b := m
	if m.Rows != m.Cols {
		b = sparse.Transpose(m)
	}
	base, err := trafficmodel.EstimateB(m, b, c.CacheBytes, c.ElemBytes)
	if err != nil {
		return &Violation{CodeTrafficRegression, "traffic model failed on original order: " + err.Error()}
	}
	with, err := trafficmodel.EstimateBWithPerm(m, b, perm, c.CacheBytes, c.ElemBytes)
	if err != nil {
		return &Violation{CodeTrafficRegression, "traffic model failed on permuted order: " + err.Error()}
	}
	if with.BTraffic > base.BTraffic {
		return &Violation{
			CodeTrafficRegression,
			fmt.Sprintf("permuted B traffic %d B exceeds original %d B", with.BTraffic, base.BTraffic),
		}
	}
	return nil
}

// VerifyResult is the wiring-site entry point for planning results: it checks
// res against m and, on any violation, records the violations under site and
// returns a safe identity replacement whose DegradedReason names them. A
// sound plan is returned unchanged. When the faultinject.PlanCorrupt point is
// armed, a corrupted copy of the permutation is checked instead of the real
// one (the original is never mutated), so tests can prove the site catches
// corruption.
func VerifyResult(site string, m *sparse.CSR, res *reorder.Result, cfg *Config) (*reorder.Result, []Violation) {
	c := cfg.withDefaults()
	perm := res.Perm
	if faultinject.Fire(faultinject.PlanCorrupt) {
		perm = CorruptedCopy(perm)
	}
	k := int(res.Extra["k"])
	vs := CheckPlan(m.Rows, perm, k, res.Reordered, res.Degraded, res.DegradedReason, &c)
	if len(vs) == 0 && c.Traffic && res.Reordered {
		if v := CheckTraffic(m, perm, &c); v != nil {
			vs = append(vs, *v)
		}
	}
	if len(vs) == 0 {
		return res, nil
	}
	Record(site, vs...)
	return fallbackIdentity(m.Rows, res, vs), vs
}

// CachePut verifies a plan about to be persisted: the structural plan checks
// plus the cache-only invariant that degraded plans are never cached. On
// violation it records under SiteCachePut and returns an error naming every
// violation; the caller must not write the entry. The PlanCorrupt injection
// point applies here exactly as in VerifyResult.
func CachePut(perm sparse.Permutation, k int, reordered, degraded bool, reason string) error {
	p := perm
	if faultinject.Fire(faultinject.PlanCorrupt) {
		p = CorruptedCopy(p)
	}
	vs := CheckPlan(len(perm), p, k, reordered, degraded, reason, nil)
	if degraded {
		vs = append(vs, Violation{CodeDegradedCached, "degraded plans must never be cached"})
	}
	if len(vs) == 0 {
		return nil
	}
	Record(SiteCachePut, vs...)
	return fmt.Errorf("planverify: entry rejected: %s", joinViolations(vs))
}

// CheckEntryFields verifies a plan loaded from a cache (a hit about to be
// served): structural checks plus degraded-never-cached. It is pure; callers
// Record under their own site and treat any violation as a cache miss.
func CheckEntryFields(perm sparse.Permutation, k int, reordered, degraded bool, reason string) []Violation {
	vs := CheckPlan(len(perm), perm, k, reordered, degraded, reason, nil)
	if degraded {
		vs = append(vs, Violation{CodeDegradedCached, "degraded entry found in cache"})
	}
	return vs
}

// CorruptedCopy returns a copy of perm damaged so that no structural check
// can pass: a duplicated value for length ≥ 2, an out-of-range value for
// length 1, a spurious element for length 0. The input is never modified.
func CorruptedCopy(perm sparse.Permutation) sparse.Permutation {
	c := append(sparse.Permutation(nil), perm...)
	switch len(c) {
	case 0:
		c = append(c, 0) // wrong length for a 0-row matrix
	case 1:
		c[0] = -1
	default:
		c[0] = c[len(c)-1] // duplicate ⇒ not a bijection
	}
	return c
}

// fallbackIdentity builds the safe replacement plan: identity permutation,
// marked degraded with a reason that names the violations (appended to any
// pre-existing degradation trail).
func fallbackIdentity(rows int, res *reorder.Result, vs []Violation) *reorder.Result {
	reason := verifyReason(vs)
	if res.Degraded && res.DegradedReason != "" {
		reason = res.DegradedReason + "; " + reason
	}
	out := &reorder.Result{
		Perm:           sparse.IdentityPerm(rows),
		PreprocessTime: res.PreprocessTime,
		FootprintBytes: res.FootprintBytes,
		Reordered:      false,
		Degraded:       true,
		DegradedReason: reason,
		AutoK:          res.AutoK,
		Extra:          map[string]float64{"k": 0},
	}
	for key, v := range res.Extra {
		if key != "k" {
			out.Extra[key] = v
		}
	}
	return out
}

// verifyReason renders violations as a DegradedReason fragment. Pure traffic
// regressions get their own phrasing so the serving layer can classify them
// as deterministic (never worth a retry), while corruption-type failures say
// "plan verification failed", which the serving layer treats as transient —
// a recomputation may well come back clean.
func verifyReason(vs []Violation) string {
	trafficOnly := true
	for _, v := range vs {
		if v.Code != CodeTrafficRegression {
			trafficOnly = false
			break
		}
	}
	if trafficOnly {
		return "traffic regression predicted: " + joinViolations(vs) + "; fell back to identity"
	}
	return "plan verification failed: " + joinViolations(vs) + "; fell back to identity"
}

func joinViolations(vs []Violation) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}
