package planverify

import (
	"strings"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// blockMatrix builds a 16×16 matrix of two dense 8-row column groups: rows
// 0–7 reference columns 0–7, rows 8–15 reference columns 8–15. With a cache
// that holds one group but not both, the grouped (identity) order is optimal
// and any interleaving of the groups regresses traffic.
func blockMatrix(t *testing.T) *sparse.CSR {
	t.Helper()
	rowPtr := make([]int64, 17)
	var col []int32
	for i := 0; i < 16; i++ {
		base := int32(0)
		if i >= 8 {
			base = 8
		}
		for j := int32(0); j < 8; j++ {
			col = append(col, base+j)
		}
		rowPtr[i+1] = int64(len(col))
	}
	m, err := sparse.NewCSR(16, 16, rowPtr, col, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// interleavePerm alternates the two groups: 0,8,1,9,…
func interleavePerm() sparse.Permutation {
	p := make(sparse.Permutation, 16)
	for i := 0; i < 8; i++ {
		p[2*i] = int32(i)
		p[2*i+1] = int32(i + 8)
	}
	return p
}

func TestCheckPlanSound(t *testing.T) {
	perm := sparse.Permutation{1, 0, 2, 3}
	if vs := CheckPlan(4, perm, 2, true, false, "", nil); len(vs) != 0 {
		t.Fatalf("sound plan flagged: %v", vs)
	}
	// A degraded identity plan with a reason is also sound.
	if vs := CheckPlan(4, sparse.IdentityPerm(4), 0, false, true, "budget", nil); len(vs) != 0 {
		t.Fatalf("sound degraded plan flagged: %v", vs)
	}
}

func hasCode(vs []Violation, code string) bool {
	for _, v := range vs {
		if v.Code == code {
			return true
		}
	}
	return false
}

func TestCheckPlanViolations(t *testing.T) {
	cases := []struct {
		name string
		vs   []Violation
		code string
	}{
		{"short perm", CheckPlan(4, sparse.Permutation{0, 1, 2}, 0, false, false, "", nil), CodePermInvalid},
		{"duplicate value", CheckPlan(4, sparse.Permutation{0, 1, 1, 3}, 0, false, false, "", nil), CodePermInvalid},
		{"out of range", CheckPlan(4, sparse.Permutation{0, 1, 2, 9}, 0, false, false, "", nil), CodePermInvalid},
		{"k below 2", CheckPlan(4, sparse.Permutation{1, 0, 2, 3}, 1, true, false, "", nil), CodeBadK},
		{"k above rows", CheckPlan(4, sparse.Permutation{1, 0, 2, 3}, 5, true, false, "", nil), CodeBadK},
		{"k outside allowed set", CheckPlan(4, sparse.Permutation{1, 0, 2, 3}, 3, true, false, "", &Config{AllowedKs: []int{2, 4}}), CodeBadK},
		{"degraded without reason", CheckPlan(4, sparse.IdentityPerm(4), 0, false, true, "", nil), CodeReasonMismatch},
		{"reason without degraded", CheckPlan(4, sparse.IdentityPerm(4), 0, false, false, "oops", nil), CodeReasonMismatch},
		{"reordered identity", CheckPlan(4, sparse.IdentityPerm(4), 2, true, false, "", nil), CodeReorderedMismatch},
		{"unflagged reorder", CheckPlan(4, sparse.Permutation{1, 0, 2, 3}, 0, false, false, "", nil), CodeReorderedMismatch},
	}
	for _, c := range cases {
		if !hasCode(c.vs, c.code) {
			t.Errorf("%s: violations %v missing %s", c.name, c.vs, c.code)
		}
	}
}

func TestCheckTraffic(t *testing.T) {
	m := blockMatrix(t)
	cfg := &Config{CacheBytes: 1024, ElemBytes: 12}
	// Identity "reordering" never regresses against itself.
	if v := CheckTraffic(m, sparse.IdentityPerm(16), cfg); v != nil {
		t.Fatalf("identity flagged as regression: %v", v)
	}
	// Interleaving the groups thrashes the one-group cache.
	if v := CheckTraffic(m, interleavePerm(), cfg); v == nil {
		t.Fatal("group-interleaving permutation not flagged as a traffic regression")
	} else if v.Code != CodeTrafficRegression {
		t.Fatalf("code = %s, want %s", v.Code, CodeTrafficRegression)
	}
}

func TestVerifyResultPassesSoundPlan(t *testing.T) {
	ResetCounters()
	m := blockMatrix(t)
	res := &reorder.Result{
		Perm:      sparse.Permutation{1, 0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		Reordered: true,
		Extra:     map[string]float64{"k": 2},
	}
	got, vs := VerifyResult(SitePlan, m, res, &Config{Traffic: true, CacheBytes: 1024})
	if len(vs) != 0 || got != res {
		t.Fatalf("sound plan rewritten: %v (violations %v)", got, vs)
	}
	if Total() != 0 {
		t.Fatalf("counter ticked on a sound plan: %d", Total())
	}
}

func TestVerifyResultTrafficFallback(t *testing.T) {
	ResetCounters()
	m := blockMatrix(t)
	res := &reorder.Result{
		Perm:      interleavePerm(),
		Reordered: true,
		Extra:     map[string]float64{"k": 2, "matvecs": 7},
	}
	got, vs := VerifyResult(SitePlan, m, res, &Config{Traffic: true, CacheBytes: 1024})
	if len(vs) == 0 {
		t.Fatal("regressing plan not flagged")
	}
	if got.Reordered || !got.Perm.IsIdentity() {
		t.Fatalf("fallback is not identity: %+v", got)
	}
	if !got.Degraded || !strings.Contains(got.DegradedReason, "traffic regression predicted") {
		t.Fatalf("fallback reason = %q", got.DegradedReason)
	}
	if got.Extra["matvecs"] != 7 {
		t.Fatal("diagnostics lost in fallback")
	}
	if Total() != int64(len(vs)) || BySite()[SitePlan] != int64(len(vs)) {
		t.Fatalf("counters: total=%d bySite=%v want %d", Total(), BySite(), len(vs))
	}
}

func TestVerifyResultCatchesInjectedCorruption(t *testing.T) {
	ResetCounters()
	t.Cleanup(faultinject.Reset)
	m := blockMatrix(t)
	orig := sparse.IdentityPerm(16)
	orig[0], orig[1] = 1, 0
	res := &reorder.Result{
		Perm:      append(sparse.Permutation(nil), orig...),
		Reordered: true,
		Extra:     map[string]float64{"k": 4},
	}
	if err := faultinject.Arm(faultinject.PlanCorrupt); err != nil {
		t.Fatal(err)
	}
	got, vs := VerifyResult(SitePlan, m, res, nil)
	if !hasCode(vs, CodePermInvalid) {
		t.Fatalf("injected corruption not caught: %v", vs)
	}
	if !got.Degraded || !strings.Contains(got.DegradedReason, "plan verification failed") {
		t.Fatalf("fallback reason = %q", got.DegradedReason)
	}
	// The caller's plan is never mutated by the injected corruption.
	for i := range orig {
		if res.Perm[i] != orig[i] {
			t.Fatal("injection mutated the original permutation")
		}
	}
	// Disarmed, the same plan verifies clean.
	faultinject.Reset()
	if _, vs := VerifyResult(SitePlan, m, res, nil); len(vs) != 0 {
		t.Fatalf("plan flagged after disarm: %v", vs)
	}
}

func TestCachePutRejectsDegradedAndCorrupt(t *testing.T) {
	ResetCounters()
	perm := sparse.IdentityPerm(8)
	if err := CachePut(perm, 0, false, true, "budget expired"); err == nil {
		t.Fatal("degraded entry accepted for caching")
	}
	if err := CachePut(sparse.Permutation{0, 0, 2, 3}, 0, false, false, ""); err == nil {
		t.Fatal("non-bijective entry accepted for caching")
	}
	if err := CachePut(perm, 0, false, false, ""); err != nil {
		t.Fatalf("sound entry rejected: %v", err)
	}
	if BySite()[SiteCachePut] == 0 {
		t.Fatal("cache-put violations not counted")
	}
}

func TestCheckEntryFields(t *testing.T) {
	if vs := CheckEntryFields(sparse.IdentityPerm(4), 0, false, true, "x"); !hasCode(vs, CodeDegradedCached) {
		t.Fatalf("degraded cache entry not flagged: %v", vs)
	}
	if vs := CheckEntryFields(sparse.Permutation{2, 0, 1, 3}, 8, true, false, ""); len(vs) != 0 {
		t.Fatalf("sound entry flagged: %v", vs)
	}
}

func TestCorruptedCopyNeverValidates(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 64} {
		orig := sparse.IdentityPerm(n)
		c := CorruptedCopy(orig)
		if err := c.Validate(n); err == nil {
			t.Fatalf("n=%d: corrupted copy still validates", n)
		}
		if err := orig.Validate(n); err != nil {
			t.Fatalf("n=%d: corruption touched the original: %v", n, err)
		}
	}
}
