// Package parallel provides the shared bounded worker pool behind every
// multi-core path in the Bootes preprocessing pipeline: similarity
// construction, Lanczos matvecs, k-means, the per-k spectral sweep, and
// workload-parallel experiment execution.
//
// The design is deliberately work-stealing-free. A loop over [0, n) is split
// into fixed chunks of a caller-chosen grain; chunk boundaries depend only on
// (n, grain) — never on the worker count — and workers claim chunks from an
// atomic counter. Two consequences:
//
//   - Disjoint writes (chunk c writes only indices [c·grain, (c+1)·grain))
//     are bit-identical for every worker count, including 1.
//   - Reductions merge per-chunk partials in ascending chunk order, so
//     floating-point sums are also bit-identical for every worker count.
//
// That is the determinism contract the equivalence tests in internal/core
// assert: Perm/Assign/Inertia must not change when BOOTES_WORKERS changes.
//
// The worker budget is shared process-wide. Nested For calls (e.g. parallel
// k-means restarts inside a parallel spectral sweep) never deadlock and never
// oversubscribe: an inner call that finds the budget exhausted simply runs on
// its caller's goroutine.
package parallel

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"bootes/internal/faultinject"
)

var (
	// override holds an explicit SetWorkers value; 0 means "use the default"
	// (BOOTES_WORKERS env or GOMAXPROCS, resolved once).
	override atomic.Int64
	// extras counts extra worker goroutines currently running across all
	// concurrent For calls. Callers' own goroutines are not counted, so the
	// total concurrency of one For tree is bounded by Workers().
	extras atomic.Int64
)

// envWorkers resolves the startup default once: BOOTES_WORKERS when set to a
// positive integer, else GOMAXPROCS.
var envWorkers = sync.OnceValue(func() int {
	if s := os.Getenv("BOOTES_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
})

// Workers returns the current worker budget (always ≥ 1).
func Workers() int {
	if w := override.Load(); w > 0 {
		return int(w)
	}
	return envWorkers()
}

// SetWorkers overrides the worker budget; n ≤ 0 restores the default
// (BOOTES_WORKERS or GOMAXPROCS). It returns the previous effective budget.
func SetWorkers(n int) int {
	prev := Workers()
	if n <= 0 {
		override.Store(0)
	} else {
		override.Store(int64(n))
	}
	return prev
}

// Extras returns the number of extra worker goroutines currently live across
// every concurrent For call. Outside any For the pool is quiescent and Extras
// reports 0 — the invariant leakcheck and the chaos harness assert after each
// episode (a non-zero reading at rest means a worker leaked its slot).
func Extras() int64 { return extras.Load() }

// Sequential forces the old single-threaded behavior (worker budget 1) and
// returns a restore function:
//
//	defer parallel.Sequential()()
func Sequential() (restore func()) {
	raw := override.Load()
	override.Store(1)
	return func() { override.Store(raw) }
}

// For splits [0, n) into ⌈n/grain⌉ fixed chunks of size grain (the last chunk
// may be short) and calls body(lo, hi) once per chunk, using up to Workers()
// goroutines including the caller's. grain ≤ 0 selects 1.
//
// Chunks run concurrently in unspecified order; body must only write state
// that is disjoint per chunk (or otherwise synchronized). For reductions use
// Reduce, which merges partials deterministically.
//
// A panic in any chunk is re-raised on the calling goroutine after all
// workers have stopped.
func For(n, grain int, body func(lo, hi int)) {
	forWorkersCtx(context.Background(), Workers(), n, grain, body)
}

// ForContext is For with cooperative cancellation: once ctx is done, workers
// stop claiming new chunks (already-running chunk bodies finish) and the call
// returns ctx.Err(). Chunks that never ran leave their outputs untouched, so
// on a non-nil error the caller must discard partial results. A nil error
// means every chunk ran, with the same deterministic chunk boundaries as For.
func ForContext(ctx context.Context, n, grain int, body func(lo, hi int)) error {
	return forWorkersCtx(ctx, Workers(), n, grain, body)
}

// ForWorkers is For with an explicit worker bound for this call (still
// capped by the shared budget's free slots). w ≤ 1 runs sequentially on the
// caller. Experiment drivers use it to honor a -jobs flag independently of
// the global budget.
func ForWorkers(w, n, grain int, body func(lo, hi int)) {
	forWorkersCtx(context.Background(), w, n, grain, body)
}

// ForWorkersContext is ForContext with an explicit worker bound.
func ForWorkersContext(ctx context.Context, w, n, grain int, body func(lo, hi int)) error {
	return forWorkersCtx(ctx, w, n, grain, body)
}

// forWorkersCtx is the shared engine behind every For variant. The
// context-free callers pass context.Background(), whose Done channel is nil,
// so the cancellation checks vanish and the chunk schedule is exactly the
// historical one — the determinism contract is unchanged.
func forWorkersCtx(ctx context.Context, w, n, grain int, body func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	done := ctx.Done()
	var next atomic.Int64
	run := func() {
		for {
			if done != nil {
				select {
				case <-done:
					// Stop this worker and keep the others from claiming
					// further chunks: the caller is about to see ctx.Err().
					next.Store(int64(chunks))
					return
				default:
				}
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			if done != nil && faultinject.Fire(faultinject.WorkerStall) {
				// Injected stall: park on the context like a wedged worker.
				// The claimed chunk never runs, so the call can only end via
				// cancellation — exactly the scenario the stall tests drive.
				<-done
				next.Store(int64(chunks))
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	want := w - 1
	if want > chunks-1 {
		want = chunks - 1
	}
	granted := acquireExtras(want)
	if granted == 0 {
		run()
		if done != nil {
			return ctx.Err()
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	guarded := func() {
		defer func() {
			if r := recover(); r != nil {
				rv := r
				panicked.CompareAndSwap(nil, &rv)
				next.Store(int64(chunks)) // stop other workers claiming chunks
			}
		}()
		run()
	}
	wg.Add(granted)
	for i := 0; i < granted; i++ {
		go func() {
			defer wg.Done()
			defer extras.Add(-1)
			guarded()
		}()
	}
	guarded()
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
	if done != nil {
		return ctx.Err()
	}
	return nil
}

// acquireExtras claims up to want extra-worker slots from the shared budget
// without ever blocking; it returns how many were granted.
func acquireExtras(want int) int {
	granted := 0
	for granted < want {
		cur := extras.Load()
		if cur >= int64(Workers()-1) {
			break
		}
		if extras.CompareAndSwap(cur, cur+1) {
			granted++
		}
	}
	return granted
}

// Reduce runs mapChunk over the fixed chunking of [0, n) and folds the
// per-chunk partials in ascending chunk order:
//
//	result = merge(... merge(merge(zero, p₀), p₁) ..., p_last)
//
// Both the chunk boundaries and the merge order are independent of the
// worker count, so floating-point reductions are bit-identical whether the
// chunks ran on 1 worker or 16.
func Reduce[T any](n, grain int, zero T, mapChunk func(lo, hi int) T, merge func(acc, part T) T) T {
	v, _ := ReduceContext(context.Background(), n, grain, zero, mapChunk, merge)
	return v
}

// ReduceContext is Reduce with cooperative cancellation. On a non-nil error
// the returned value is meaningless (some chunks never ran) and must be
// discarded; on a nil error the fold is bit-identical to Reduce.
func ReduceContext[T any](ctx context.Context, n, grain int, zero T, mapChunk func(lo, hi int) T, merge func(acc, part T) T) (T, error) {
	if n <= 0 {
		return zero, ctx.Err()
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	partials := make([]T, chunks)
	if err := ForContext(ctx, n, grain, func(lo, hi int) {
		partials[lo/grain] = mapChunk(lo, hi)
	}); err != nil {
		return zero, err
	}
	acc := zero
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc, nil
}
