package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 2000} {
				prev := SetWorkers(w)
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				SetWorkers(prev)
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d grain=%d: index %d visited %d times", w, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForChunkBoundariesFixed(t *testing.T) {
	// Chunk boundaries must depend only on (n, grain), not the worker count.
	collect := func(w int) map[int]int {
		prev := SetWorkers(w)
		defer SetWorkers(prev)
		var mu sync.Mutex
		bounds := make(map[int]int)
		For(100, 7, func(lo, hi int) {
			mu.Lock()
			bounds[lo] = hi
			mu.Unlock()
		})
		return bounds
	}
	ref := collect(1)
	for _, w := range []int{2, 8} {
		got := collect(w)
		if len(got) != len(ref) {
			t.Fatalf("w=%d: %d chunks, want %d", w, len(got), len(ref))
		}
		for lo, hi := range ref {
			if got[lo] != hi {
				t.Fatalf("w=%d: chunk [%d,%d), want [%d,%d)", w, lo, got[lo], lo, hi)
			}
		}
	}
}

func TestReduceDeterministicAcrossWorkers(t *testing.T) {
	// A float sum whose merge order is fixed must be bit-identical for every
	// worker count.
	n := 10000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	sum := func(w int) float64 {
		prev := SetWorkers(w)
		defer SetWorkers(prev)
		return Reduce(n, 128, 0.0,
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += vals[i]
				}
				return s
			},
			func(acc, part float64) float64 { return acc + part })
	}
	ref := sum(1)
	for _, w := range []int{2, 4, 8} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d: sum %v != sequential %v", w, got, ref)
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var total atomic.Int64
	For(8, 1, func(lo, hi int) {
		For(100, 10, func(l, h int) {
			total.Add(int64(h - l))
		})
	})
	if total.Load() != 800 {
		t.Fatalf("nested total = %d, want 800", total.Load())
	}
}

func TestForPanicPropagates(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(100, 1, func(lo, hi int) {
		if lo == 42 {
			panic("boom")
		}
	})
	t.Fatal("unreachable: For should have panicked")
}

func TestSequentialForcesOneWorker(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	restore := Sequential()
	if Workers() != 1 {
		t.Fatalf("Workers() = %d under Sequential, want 1", Workers())
	}
	restore()
	if Workers() != 8 {
		t.Fatalf("Workers() = %d after restore, want 8", Workers())
	}
}

func TestSetWorkersRestoresDefault(t *testing.T) {
	def := Workers()
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != def {
		t.Fatalf("Workers() = %d after reset, want default %d", Workers(), def)
	}
}
