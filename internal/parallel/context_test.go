package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"bootes/internal/faultinject"
)

func TestForContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForContext(ctx, 1000, 8, func(lo, hi int) {
		ran.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForContext = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("body ran %d times on a pre-cancelled context", ran.Load())
	}
}

func TestForContextMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	const n, grain = 100000, 1
	err := ForContext(ctx, n, grain, func(lo, hi int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForContext = %v, want context.Canceled", err)
	}
	// Workers stop claiming chunks after the cancel; already-claimed bodies may
	// finish, so the count is bounded by the worker count, not n.
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d chunks ran despite mid-run cancellation", got)
	}
}

func TestForContextNilErrorMatchesFor(t *testing.T) {
	const n, grain = 1000, 7
	want := make([]int, n)
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	got := make([]int, n)
	if err := ForContext(context.Background(), n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = i * i
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("index %d: For wrote %d, ForContext wrote %d", i, want[i], got[i])
		}
	}
}

func TestForContextWorkerStall(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.WorkerStall)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := ForContext(ctx, 10000, 1, func(lo, hi int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForContext with stalled worker = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled worker held the pool for %v after cancellation", elapsed)
	}
}

func TestReduceContextParity(t *testing.T) {
	const n, grain = 5000, 16
	mapChunk := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	merge := func(a, b float64) float64 { return a + b }
	want := Reduce(n, grain, 0.0, mapChunk, merge)
	got, err := ReduceContext(context.Background(), n, grain, 0.0, mapChunk, merge)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("ReduceContext = %v, Reduce = %v (must be bit-identical)", got, want)
	}
}

func TestReduceContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := ReduceContext(ctx, 1000, 8, 0, func(lo, hi int) int { return hi - lo }, func(a, b int) int { return a + b })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ReduceContext = %v, want context.Canceled", err)
	}
	if got != 0 {
		t.Fatalf("cancelled ReduceContext returned %d, want the zero value", got)
	}
}
