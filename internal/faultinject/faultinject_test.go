package faultinject

import (
	"sync"
	"testing"
)

func TestDisarmedFastPath(t *testing.T) {
	Reset()
	if Fire("anything") {
		t.Fatal("disarmed registry fired")
	}
	if Hits("anything") != 0 {
		t.Fatal("disarmed registry counted hits")
	}
}

func TestArmFireOnce(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p")
	if !Fire("p") {
		t.Fatal("armed fault did not fire on first hit")
	}
	if Fire("p") {
		t.Fatal("single-shot fault fired twice")
	}
	if Hits("p") != 2 || Fired("p") != 1 {
		t.Fatalf("hits=%d fired=%d, want 2/1", Hits("p"), Fired("p"))
	}
}

func TestAfterAndTimes(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", After(2), Times(2))
	got := []bool{Fire("p"), Fire("p"), Fire("p"), Fire("p"), Fire("p")}
	want := []bool{false, false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v want %v", i+1, got[i], want[i])
		}
	}
}

func TestAlways(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Always())
	for i := 0; i < 10; i++ {
		if !Fire("p") {
			t.Fatalf("Always fault stopped firing at hit %d", i+1)
		}
	}
}

func TestOnFireCallbackAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	calls := 0
	Arm("p", OnFire(func() { calls++ }))
	Fire("p")
	if calls != 1 {
		t.Fatalf("callback calls = %d, want 1", calls)
	}
	Disarm("p")
	if Fire("p") {
		t.Fatal("disarmed point fired")
	}
	// Other armed points survive a Disarm of a sibling.
	Arm("q")
	Disarm("p")
	if !Fire("q") {
		t.Fatal("sibling point lost its arming")
	}
}

func TestConcurrentFire(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Times(5))
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if Fire("p") {
				mu.Lock()
				fired++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fired != 5 {
		t.Fatalf("fired %d times under concurrency, want exactly 5", fired)
	}
}
