package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sync"
	"testing"
)

func TestDisarmedFastPath(t *testing.T) {
	Reset()
	if Fire("anything") {
		t.Fatal("disarmed registry fired")
	}
	if Hits("anything") != 0 {
		t.Fatal("disarmed registry counted hits")
	}
}

func TestArmFireOnce(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p")
	if !Fire("p") {
		t.Fatal("armed fault did not fire on first hit")
	}
	if Fire("p") {
		t.Fatal("single-shot fault fired twice")
	}
	if Hits("p") != 2 || Fired("p") != 1 {
		t.Fatalf("hits=%d fired=%d, want 2/1", Hits("p"), Fired("p"))
	}
}

func TestAfterAndTimes(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", After(2), Times(2))
	got := []bool{Fire("p"), Fire("p"), Fire("p"), Fire("p"), Fire("p")}
	want := []bool{false, false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v want %v", i+1, got[i], want[i])
		}
	}
}

func TestAlways(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Always())
	for i := 0; i < 10; i++ {
		if !Fire("p") {
			t.Fatalf("Always fault stopped firing at hit %d", i+1)
		}
	}
}

func TestOnFireCallbackAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	calls := 0
	Arm("p", OnFire(func() { calls++ }))
	Fire("p")
	if calls != 1 {
		t.Fatalf("callback calls = %d, want 1", calls)
	}
	Disarm("p")
	if Fire("p") {
		t.Fatal("disarmed point fired")
	}
	// Other armed points survive a Disarm of a sibling.
	Arm("q")
	Disarm("p")
	if !Fire("q") {
		t.Fatal("sibling point lost its arming")
	}
}

func TestDoubleArmIsError(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("p", Times(3)); err != nil {
		t.Fatalf("first Arm: %v", err)
	}
	if err := Arm("p"); err == nil {
		t.Fatal("second Arm of an armed point succeeded")
	}
	// The original configuration survives the rejected re-arm.
	if !Fire("p") || !Fire("p") || !Fire("p") || Fire("p") {
		t.Fatal("rejected re-arm disturbed the original Times(3) configuration")
	}
	Disarm("p")
	if err := Arm("p"); err != nil {
		t.Fatalf("re-Arm after Disarm: %v", err)
	}
}

func TestPointsEnumeratesDeclaredPoints(t *testing.T) {
	pts := Points()
	seen := make(map[string]bool, len(pts))
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("Points() lists %q twice", p)
		}
		seen[p] = true
	}
	for _, want := range []string{EigenNoConverge, CacheWriteRename, PlanCorrupt} {
		if !seen[want] {
			t.Fatalf("Points() missing %q", want)
		}
	}
	// The returned slice is a copy.
	pts[0] = "mutated"
	if Points()[0] == "mutated" {
		t.Fatal("Points() exposes internal state")
	}
}

// TestPointsCoversEveryConstant parses faultinject.go and checks that every
// string constant declared there appears in Points(), so a new injection
// point cannot be added without the chaos scheduler discovering it.
func TestPointsCoversEveryConstant(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "faultinject.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	listed := make(map[string]bool)
	for _, p := range Points() {
		listed[p] = true
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val := lit.Value[1 : len(lit.Value)-1] // strip quotes
				if !listed[val] {
					t.Errorf("constant %s = %q is not in Points()", name.Name, val)
				}
			}
		}
	}
}

func TestConcurrentFire(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Times(5))
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if Fire("p") {
				mu.Lock()
				fired++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fired != 5 {
		t.Fatalf("fired %d times under concurrency, want exactly 5", fired)
	}
}
