// Package faultinject is a deterministic, build-tag-free fault-injection
// registry used by the robustness tests to drive the planning pipeline's
// degradation ladder without pathological inputs.
//
// Production code marks its interesting failure sites with Fire(point); a
// disarmed registry answers false through a single atomic load, so the
// trigger points cost nothing in normal operation. Tests Arm a point —
// optionally after a number of hits, for a bounded number of firings, or
// with a callback (e.g. cancelling a context mid-sweep) — run the scenario,
// and Reset. Hit counting is per-point and strictly ordered under a mutex,
// so a single-threaded trigger sequence fires deterministically.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The trigger points compiled into the pipeline. Using constants keeps
// production sites and tests from drifting apart on the spelling.
const (
	// EigenNoConverge makes eigen.LargestContext fail with ErrNoConverge.
	EigenNoConverge = "eigen/no-converge"
	// AllocCapBreach makes the planner's pre-allocation footprint check
	// report a memory-budget breach.
	AllocCapBreach = "core/alloc-cap-breach"
	// WorkerStall makes a parallel worker block on its context instead of
	// executing a claimed chunk (only in context-aware calls).
	WorkerStall = "parallel/worker-stall"
	// SweepCancel fires at the start of each per-k sweep step; arm it with
	// OnFire(cancel) to cancel a spectral sweep mid-flight.
	SweepCancel = "core/sweep-cancel"
	// AutoKNoConverge makes the eigengap auto-k spectrum solve fail with
	// ErrNoConverge, driving the degradation path from the auto-k rung down
	// to the fixed-k ladder.
	AutoKNoConverge = "eigen/autok-no-converge"

	// CacheWriteTemp simulates a crash after the cache entry's temp file has
	// been created but before (or during) the payload write: atomicio aborts
	// mid-write, leaving a partial temp file on disk.
	CacheWriteTemp = "plancache/crash-temp-write"
	// CacheWriteFsync simulates a crash after the payload is fully written
	// but before the temp file is fsynced: the write returns an error with
	// the (unsynced) temp file left behind.
	CacheWriteFsync = "plancache/crash-fsync"
	// CacheWriteRename simulates a crash after fsync but before the atomic
	// rename publishes the entry: the durable temp file is left unrenamed.
	CacheWriteRename = "plancache/crash-rename"
	// BreakerProbeFail makes a planserve circuit-breaker half-open probe be
	// recorded as a failure regardless of the pipeline's actual outcome,
	// driving the deterministic half-open → re-open transition.
	BreakerProbeFail = "planserve/probe-fail"

	// PlanCorrupt makes the plan verifier (internal/planverify) check a
	// deliberately corrupted copy of the permutation instead of the real one:
	// the verification sites — PlanContext, plancache.Put, planserve — must
	// all catch the corruption and refuse to return, cache, or serve it.
	PlanCorrupt = "planverify/corrupt-plan"

	// LSHSparsifyFail makes the approximate similarity sparsifier
	// (lsh.SparsifiedSimilarity) fail, driving the degradation ladder from
	// the approximate rung down to the implicit-similarity rung.
	LSHSparsifyFail = "lsh/sparsify-fail"

	// JournalAppendWrite simulates a crash mid-append in the planqueue
	// journal: a torn partial record is written to the file and the append
	// fails. Recovery must truncate the torn tail, never replay it.
	JournalAppendWrite = "planqueue/crash-append-write"
	// JournalAppendFsync simulates a crash after a journal record's bytes are
	// written but before fsync: the append fails, the record may or may not
	// survive, and either outcome must be safe to replay.
	JournalAppendFsync = "planqueue/crash-append-fsync"
)

// points enumerates every trigger point declared above, in declaration
// order. TestPointsCoversEveryConstant parses this file and fails if a new
// constant is added without extending this list, so Points() is a reliable
// discovery surface for the chaos scheduler.
var points = []string{
	EigenNoConverge,
	AllocCapBreach,
	WorkerStall,
	SweepCancel,
	AutoKNoConverge,
	CacheWriteTemp,
	CacheWriteFsync,
	CacheWriteRename,
	BreakerProbeFail,
	PlanCorrupt,
	LSHSparsifyFail,
	JournalAppendWrite,
	JournalAppendFsync,
}

// Points returns every declared injection point. The slice is a copy; the
// chaos scheduler uses it to exercise all fault paths without a
// hand-maintained list of its own.
func Points() []string { return append([]string(nil), points...) }

type fault struct {
	fireAt    int // 1-based hit ordinal at which firing starts
	remaining int // firings left; < 0 means unlimited
	hits      int
	fired     int
	onFire    func()
}

var (
	armedCount atomic.Int64 // fast-path gate: 0 means nothing armed
	mu         sync.Mutex
	table      map[string]*fault
)

// Option configures an armed fault.
type Option func(*fault)

// After delays firing until n hits have passed (fire starts on hit n+1).
func After(n int) Option { return func(f *fault) { f.fireAt = n + 1 } }

// Times bounds how many hits fire (default 1).
func Times(n int) Option { return func(f *fault) { f.remaining = n } }

// Always fires on every hit once reached.
func Always() Option { return func(f *fault) { f.remaining = -1 } }

// OnFire runs fn (outside the registry lock) each time the fault fires.
func OnFire(fn func()) Option { return func(f *fault) { f.onFire = fn } }

// Arm registers point so subsequent Fire(point) calls trigger. Arming a
// point that is already armed is an error and leaves the existing
// configuration (and its counters) untouched: a scheduler that composes
// fault scenarios must Disarm or Reset first, never silently clobber a
// scenario half set up.
func Arm(point string, opts ...Option) error {
	f := &fault{fireAt: 1, remaining: 1}
	for _, o := range opts {
		o(f)
	}
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[string]*fault)
	}
	if _, exists := table[point]; exists {
		return fmt.Errorf("faultinject: point %q already armed (Disarm or Reset first)", point)
	}
	armedCount.Add(1)
	table[point] = f
	return nil
}

// Disarm removes one point; counters for other points are untouched.
func Disarm(point string) {
	mu.Lock()
	if _, exists := table[point]; exists {
		delete(table, point)
		armedCount.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point. Tests must call it (usually via t.Cleanup).
func Reset() {
	mu.Lock()
	table = nil
	armedCount.Store(0)
	mu.Unlock()
}

// Fire reports whether the named fault triggers on this hit. Disarmed
// registries answer in one atomic load.
func Fire(point string) bool {
	if armedCount.Load() == 0 {
		return false
	}
	mu.Lock()
	f := table[point]
	if f == nil {
		mu.Unlock()
		return false
	}
	f.hits++
	fire := f.hits >= f.fireAt && (f.remaining < 0 || f.fired < f.remaining)
	var cb func()
	if fire {
		f.fired++
		cb = f.onFire
	}
	mu.Unlock()
	if cb != nil {
		cb()
	}
	return fire
}

// Hits returns how many times point has been evaluated since it was armed.
func Hits(point string) int {
	mu.Lock()
	defer mu.Unlock()
	if f := table[point]; f != nil {
		return f.hits
	}
	return 0
}

// Fired returns how many times point has actually fired.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	if f := table[point]; f != nil {
		return f.fired
	}
	return 0
}
