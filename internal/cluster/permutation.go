package cluster

import (
	"sort"

	"bootes/internal/sparse"
)

// PermutationOrder controls how clusters and rows within clusters are laid
// out when an assignment is turned into a row permutation.
type PermutationOrder int

const (
	// OrderFiedler sorts clusters by their mean value in the Fiedler
	// (second) eigenvector and rows within a cluster by their own Fiedler
	// value, giving a globally coherent 1-D layout. This is Bootes' default.
	OrderFiedler PermutationOrder = iota
	// OrderClusterID keeps clusters in id order and rows in original order
	// within each cluster — the ablation baseline.
	OrderClusterID
)

// PermutationFromAssignment converts a cluster assignment into a row
// permutation (perm[newRow] = oldRow). embedding is the row-major n×dim
// spectral embedding; when order is OrderFiedler and dim ≥ 2, column 1 (the
// Fiedler direction) drives both the cluster layout and the within-cluster
// order. With dim < 2 or OrderClusterID, clusters appear in id order and
// rows in original order.
func PermutationFromAssignment(assign []int32, k int, embedding []float64, dim int, order PermutationOrder) sparse.Permutation {
	n := len(assign)
	groups := make([][]int32, k)
	for i, c := range assign {
		groups[c] = append(groups[c], int32(i))
	}

	useFiedler := order == OrderFiedler && dim >= 2 && len(embedding) == n*dim
	fiedler := func(row int32) float64 { return embedding[int(row)*dim+1] }

	clusterOrder := make([]int, k)
	for i := range clusterOrder {
		clusterOrder[i] = i
	}
	if useFiedler {
		mean := make([]float64, k)
		for c, g := range groups {
			if len(g) == 0 {
				continue
			}
			s := 0.0
			for _, r := range g {
				s += fiedler(r)
			}
			mean[c] = s / float64(len(g))
		}
		sort.SliceStable(clusterOrder, func(a, b int) bool {
			return mean[clusterOrder[a]] < mean[clusterOrder[b]]
		})
		// Within a cluster, order rows lexicographically over *quantized*
		// embedding coordinates (starting from the Fiedler direction):
		// rows with near-identical spectral coordinates — i.e. the same
		// fine-grained structure — fall into the same buckets and end up
		// adjacent even when the cluster count is below the number of
		// natural groups. Quantization keeps the comparison a strict weak
		// order (a raw float lexicographic sort would split equal groups
		// on coordinate noise).
		quant := make([]int32, n*dim)
		for d := 1; d < dim; d++ {
			lo, hi := embedding[d], embedding[d]
			for i := 1; i < n; i++ {
				v := embedding[i*dim+d]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			step := 0.02 * (hi - lo)
			if step <= 0 {
				continue
			}
			for i := 0; i < n; i++ {
				quant[i*dim+d] = int32((embedding[i*dim+d] - lo) / step)
			}
		}
		less := func(a, b int32) bool {
			qa := quant[int(a)*dim : int(a+1)*dim]
			qb := quant[int(b)*dim : int(b+1)*dim]
			for d := 1; d < dim; d++ {
				if qa[d] != qb[d] {
					return qa[d] < qb[d]
				}
			}
			return a < b
		}
		for _, g := range groups {
			g := g
			sort.SliceStable(g, func(a, b int) bool { return less(g[a], g[b]) })
		}
	}

	perm := make(sparse.Permutation, 0, n)
	for _, c := range clusterOrder {
		perm = append(perm, groups[c]...)
	}
	return perm
}
