// Package cluster implements k-means (k-means++ seeding plus Lloyd
// iteration) on spectral embeddings, and the conversion of a cluster
// assignment into the row permutation Bootes feeds to the accelerator.
package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"

	"bootes/internal/parallel"
)

// pointGrain is the fixed point-chunk size of the parallel Lloyd steps. It is
// never derived from the worker count: per-chunk partial centroid sums are
// merged in ascending chunk order, so assignments, centroids, and inertia are
// bit-identical for every worker count (including the forced
// parallel.Sequential mode).
const pointGrain = 256

// KMeansOptions configures the Lloyd iteration.
type KMeansOptions struct {
	K        int
	MaxIters int   // 0 selects 100
	Seed     int64 // seeding determinism
	// Restarts runs k-means++ + Lloyd this many times and keeps the lowest
	// inertia solution. 0 selects 3.
	Restarts int
	// Tol stops iteration when the relative inertia improvement drops below
	// it. 0 selects 1e-6.
	Tol float64
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	return o
}

// KMeansResult holds a clustering of n points into K clusters.
type KMeansResult struct {
	// Assign[i] is the cluster id of point i, in [0, K).
	Assign []int32
	// Centers is the K×dim row-major centroid matrix.
	Centers []float64
	Dim     int
	// Inertia is the summed squared distance of points to their centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations of the winning restart.
	Iters int
}

// ErrBadInput reports invalid k-means input.
var ErrBadInput = errors.New("cluster: invalid k-means input")

// KMeans clusters n points of dimension dim, given row-major points
// (len n*dim), into opts.K clusters.
func KMeans(points []float64, n, dim int, opts KMeansOptions) (*KMeansResult, error) {
	return KMeansContext(context.Background(), points, n, dim, opts)
}

// KMeansContext is KMeans with cooperative cancellation: the context is
// checked before each restart and once per Lloyd iteration, so a cancelled
// clustering returns ctx.Err() within one iteration of the cancellation.
func KMeansContext(ctx context.Context, points []float64, n, dim int, opts KMeansOptions) (*KMeansResult, error) {
	if n <= 0 || dim <= 0 || len(points) != n*dim {
		return nil, ErrBadInput
	}
	opts = opts.withDefaults()
	if opts.K <= 0 || opts.K > n {
		return nil, ErrBadInput
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Restarts are independent (each owns a seed-derived PRNG), so they fan
	// out across the worker pool; the winner is picked by scanning restarts
	// in index order with a strict `<`, exactly as the sequential loop did.
	results := make([]*KMeansResult, opts.Restarts)
	if err := parallel.ForContext(ctx, opts.Restarts, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			if ctx.Err() != nil {
				return
			}
			rng := rand.New(rand.NewSource(opts.Seed + int64(r)*0x9e3779b9))
			results[r] = lloyd(ctx, points, n, dim, opts, rng)
		}
	}); err != nil {
		return nil, err
	}
	var best *KMeansResult
	for _, res := range results {
		if res == nil {
			// A restart was abandoned mid-flight; only possible when the
			// context fired between the ForContext return and its chunks.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, errors.New("cluster: k-means restart produced no result")
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// assignPartial carries one chunk's contribution to a Lloyd iteration: the
// partial inertia, per-cluster point counts, and per-cluster coordinate sums.
type assignPartial struct {
	inertia float64
	counts  []int64
	sums    []float64 // k×dim row-major
}

// assignChunk runs the fused assignment+accumulation step over points
// [lo, hi): it writes assign (disjoint per chunk) and returns the chunk's
// partial sums.
func assignChunk(points []float64, dim, k int, centers []float64, assign []int32, lo, hi int) assignPartial {
	p := assignPartial{
		counts: make([]int64, k),
		sums:   make([]float64, k*dim),
	}
	for i := lo; i < hi; i++ {
		pt := points[i*dim : (i+1)*dim]
		bestC, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			d := sqDist(pt, centers[c*dim:(c+1)*dim])
			if d < bestD {
				bestD, bestC = d, c
			}
		}
		assign[i] = int32(bestC)
		p.inertia += bestD
		p.counts[bestC]++
		cc := p.sums[bestC*dim : (bestC+1)*dim]
		for d := 0; d < dim; d++ {
			cc[d] += pt[d]
		}
	}
	return p
}

// mergePartials folds chunk partials in ascending chunk order (the order
// parallel.Reduce guarantees), keeping float summation deterministic.
func mergePartials(acc, part assignPartial) assignPartial {
	if acc.counts == nil {
		return part
	}
	acc.inertia += part.inertia
	for i := range acc.counts {
		acc.counts[i] += part.counts[i]
	}
	for i := range acc.sums {
		acc.sums[i] += part.sums[i]
	}
	return acc
}

// lloyd runs one k-means++-seeded Lloyd iteration to convergence. It
// returns nil when ctx fires mid-run (checked once per iteration); callers
// must treat a nil result as cancellation.
func lloyd(ctx context.Context, points []float64, n, dim int, opts KMeansOptions, rng *rand.Rand) *KMeansResult {
	k := opts.K
	centers := seedPlusPlus(points, n, dim, k, rng)
	assign := make([]int32, n)
	prevInertia := math.Inf(1)
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		if ctx.Err() != nil {
			return nil
		}
		// Fused assignment + accumulation over parallel point chunks; the
		// chunk-ordered merge keeps the sums deterministic for any worker
		// count.
		part := parallel.Reduce(n, pointGrain, assignPartial{},
			func(lo, hi int) assignPartial {
				return assignChunk(points, dim, k, centers, assign, lo, hi)
			}, mergePartials)
		inertia := part.inertia
		counts := part.counts
		copy(centers, part.sums)
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid (standard k-means empty-cluster repair).
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					p := points[i*dim : (i+1)*dim]
					a := int(assign[i])
					d := sqDist(p, centers[a*dim:(a+1)*dim])
					if d > farD {
						farD, far = d, i
					}
				}
				copy(centers[c*dim:(c+1)*dim], points[far*dim:(far+1)*dim])
				continue
			}
			cc := centers[c*dim : (c+1)*dim]
			inv := 1 / float64(counts[c])
			for d := 0; d < dim; d++ {
				cc[d] *= inv
			}
		}
		if prevInertia-inertia <= opts.Tol*math.Max(prevInertia, 1e-300) {
			prevInertia = inertia
			iters++
			break
		}
		prevInertia = inertia
	}
	// Final assignment against the last centers for a consistent result.
	final := parallel.Reduce(n, pointGrain, assignPartial{},
		func(lo, hi int) assignPartial {
			return assignChunk(points, dim, k, centers, assign, lo, hi)
		}, mergePartials)
	return &KMeansResult{Assign: assign, Centers: centers, Dim: dim, Inertia: final.inertia, Iters: iters}
}

// seedPlusPlus implements k-means++ seeding (Arthur & Vassilvitskii).
func seedPlusPlus(points []float64, n, dim, k int, rng *rand.Rand) []float64 {
	centers := make([]float64, k*dim)
	first := rng.Intn(n)
	copy(centers[:dim], points[first*dim:(first+1)*dim])
	dist := make([]float64, n)
	parallel.For(n, pointGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dist[i] = sqDist(points[i*dim:(i+1)*dim], centers[:dim])
		}
	})
	for c := 1; c < k; c++ {
		total := 0.0
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range dist {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(centers[c*dim:(c+1)*dim], points[pick*dim:(pick+1)*dim])
		parallel.For(n, pointGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d := sqDist(points[i*dim:(i+1)*dim], centers[c*dim:(c+1)*dim])
				if d < dist[i] {
					dist[i] = d
				}
			}
		})
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ClusterSizes returns the number of points per cluster.
func ClusterSizes(assign []int32, k int) []int {
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	return sizes
}

// SortClustersBy returns cluster ids ordered by ascending key (e.g. the mean
// Fiedler-vector value per cluster), used to lay clusters out coherently.
func SortClustersBy(k int, key func(c int) float64) []int {
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return key(order[a]) < key(order[b]) })
	return order
}
