package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bootes/internal/sparse"
)

// blobs generates n points around k well-separated centers; returns points
// and ground-truth labels.
func blobs(rng *rand.Rand, n, k, dim int, sep float64) ([]float64, []int) {
	centers := make([]float64, k*dim)
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			centers[c*dim+d] = float64(c) * sep * float64(d%2*2-1+2) // spread out
		}
		centers[c*dim] = float64(c) * sep
	}
	pts := make([]float64, n*dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		labels[i] = c
		for d := 0; d < dim; d++ {
			pts[i*dim+d] = centers[c*dim+d] + rng.NormFloat64()*0.3
		}
	}
	return pts, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, k, dim := 300, 4, 3
	pts, truth := blobs(rng, n, k, dim, 10)
	res, err := KMeans(pts, n, dim, KMeansOptions{K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same ground-truth label must share a cluster, and
	// different labels must differ (up to cluster relabelling).
	mapping := map[int]int32{}
	for i := 0; i < n; i++ {
		want, seen := mapping[truth[i]]
		if !seen {
			mapping[truth[i]] = res.Assign[i]
			continue
		}
		if res.Assign[i] != want {
			t.Fatalf("point %d: cluster %d, expected %d (label %d)", i, res.Assign[i], want, truth[i])
		}
	}
	distinct := map[int32]struct{}{}
	for _, c := range mapping {
		distinct[c] = struct{}{}
	}
	if len(distinct) != k {
		t.Errorf("recovered %d distinct clusters, want %d", len(distinct), k)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, dim := 200, 2
	pts := make([]float64, n*dim)
	for i := range pts {
		pts[i] = rng.Float64() * 100
	}
	var prev float64 = 1e300
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans(pts, n, dim, KMeansOptions{K: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.001 {
			t.Errorf("inertia increased at k=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansErrors(t *testing.T) {
	pts := []float64{1, 2, 3, 4}
	if _, err := KMeans(pts, 2, 2, KMeansOptions{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := KMeans(pts, 2, 2, KMeansOptions{K: 3}); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := KMeans(pts, 3, 2, KMeansOptions{K: 2}); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := KMeans(nil, 0, 2, KMeansOptions{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, dim := 100, 2
	pts := make([]float64, n*dim)
	for i := range pts {
		pts[i] = rng.NormFloat64()
	}
	a, err := KMeans(pts, n, dim, KMeansOptions{K: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, n, dim, KMeansOptions{K: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clustering")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	// Degenerate input: all points identical. Must terminate and assign.
	n, dim := 50, 2
	pts := make([]float64, n*dim)
	res, err := KMeans(pts, n, dim, KMeansOptions{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %v, want 0", res.Inertia)
	}
}

func TestClusterSizes(t *testing.T) {
	sizes := ClusterSizes([]int32{0, 1, 1, 2, 1}, 3)
	if sizes[0] != 1 || sizes[1] != 3 || sizes[2] != 1 {
		t.Errorf("ClusterSizes = %v", sizes)
	}
}

func TestPermutationFromAssignmentGroupsClusters(t *testing.T) {
	assign := []int32{1, 0, 1, 0, 2}
	perm := PermutationFromAssignment(assign, 3, nil, 0, OrderClusterID)
	if err := perm.Validate(5); err != nil {
		t.Fatalf("invalid perm: %v", err)
	}
	// Rows of the same cluster must be contiguous.
	seen := map[int32]bool{}
	last := int32(-1)
	for _, old := range perm {
		c := assign[old]
		if c != last {
			if seen[c] {
				t.Fatalf("cluster %d split in permutation %v", c, perm)
			}
			seen[c] = true
			last = c
		}
	}
	// OrderClusterID keeps cluster ids ascending.
	if assign[perm[0]] != 0 || assign[perm[4]] != 2 {
		t.Errorf("cluster order wrong: %v", perm)
	}
}

func TestPermutationFromAssignmentFiedler(t *testing.T) {
	// Two clusters; embedding column 1 (Fiedler) reverses within-cluster and
	// cluster order.
	assign := []int32{0, 0, 1, 1}
	dim := 2
	embedding := []float64{
		0, 5, // row 0, fiedler 5
		0, 4, // row 1, fiedler 4
		0, -1, // row 2, fiedler -1
		0, -2, // row 3, fiedler -2
	}
	perm := PermutationFromAssignment(assign, 2, embedding, dim, OrderFiedler)
	if err := perm.Validate(4); err != nil {
		t.Fatal(err)
	}
	want := sparse.Permutation{3, 2, 1, 0}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestSortClustersBy(t *testing.T) {
	keys := []float64{3, 1, 2}
	order := SortClustersBy(3, func(c int) float64 { return keys[c] })
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestPermutationFromAssignmentAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(8)
		assign := make([]int32, n)
		for i := range assign {
			assign[i] = int32(rng.Intn(k))
		}
		dim := k
		emb := make([]float64, n*dim)
		for i := range emb {
			emb[i] = rng.NormFloat64()
		}
		for _, order := range []PermutationOrder{OrderFiedler, OrderClusterID} {
			perm := PermutationFromAssignment(assign, k, emb, dim, order)
			if perm.Validate(n) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
