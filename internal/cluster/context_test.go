package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func TestKMeansContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(1))
	n, dim := 500, 4
	points := make([]float64, n*dim)
	for i := range points {
		points[i] = rng.NormFloat64()
	}
	res, err := KMeansContext(ctx, points, n, dim, KMeansOptions{K: 4, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("KMeansContext = (%v, %v), want context.Canceled", res, err)
	}
}

func TestKMeansContextMatchesKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, dim := 300, 3
	points := make([]float64, n*dim)
	for i := range points {
		points[i] = rng.NormFloat64()
	}
	opts := KMeansOptions{K: 5, Seed: 7}
	want, err := KMeans(points, n, dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := KMeansContext(context.Background(), points, n, dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Inertia != got.Inertia || want.Iters != got.Iters {
		t.Fatalf("KMeansContext diverged: inertia %v vs %v, iters %d vs %d",
			got.Inertia, want.Inertia, got.Iters, want.Iters)
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, got.Assign[i], want.Assign[i])
		}
	}
}
