package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"bootes/internal/parallel"
)

func BenchmarkKMeans(b *testing.B) {
	const (
		n   = 6000
		dim = 16
		k   = 16
	)
	rng := rand.New(rand.NewSource(5))
	points := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		c := i % k
		for d := 0; d < dim; d++ {
			points[i*dim+d] = float64(c) + 0.1*rng.NormFloat64()
		}
	}
	for _, w := range []int{1, parallel.Workers()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				res, err := KMeans(points, n, dim, KMeansOptions{K: k, Seed: 1, Restarts: 2, MaxIters: 20})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Assign) != n {
					b.Fatal("bad result")
				}
			}
		})
	}
}
