// Package workloads generates the synthetic sparse-matrix suite the
// experiments run on. The paper evaluates on 26 SuiteSparse/SNAP matrices
// (Table 3); this package provides deterministic structural analogs — same
// shapes, densities, and archetype (FEM mesh, circuit, power-law graph,
// LP/constraint block, kNN graph, scrambled block pattern, multi-diagonal) —
// so every experiment exercises the same code paths and exhibits the same
// reordering behaviour without the proprietary downloads.
package workloads

import (
	"math"
	"math/rand"
	"sort"

	"bootes/internal/sparse"
)

// Archetype selects the structural family of a generated matrix.
type Archetype int

// The structural families used to mirror Table 3.
const (
	// ArchScrambledBlock hides a strong group structure behind a random row
	// shuffle: rows drawn from a handful of column-support templates, then
	// permuted. Reordering recovers the groups — the paper's Figure 1/2
	// "opportunity" pattern.
	ArchScrambledBlock Archetype = iota
	// ArchFEM is a 2-D five/nine-point mesh stencil with jittered node
	// numbering — diagonal-dominant with local structure (poisson3Da,
	// helm3d01, Dubcova2, ...).
	ArchFEM
	// ArchPowerLaw is a preferential-attachment graph adjacency (cit-HepPh,
	// Oregon-1, EAT_RS).
	ArchPowerLaw
	// ArchCircuit is mostly-diagonal with a few dense hub rows/columns
	// (bcircuit, rajat15).
	ArchCircuit
	// ArchLP is a rectangular block-angular constraint matrix (fome20,
	// tomographic1, Maragal_6, EternityII_Etilde).
	ArchLP
	// ArchKNN is a k-nearest-neighbour graph over clustered points
	// (k49_norm_10NN).
	ArchKNN
	// ArchBanded is a plain multi-diagonal matrix — the "reordering cannot
	// help" class the decision tree must learn to reject.
	ArchBanded
	// ArchRandom is uniform random sparsity — also reorder-resistant.
	ArchRandom
	// ArchFEM3D is a seven-point stencil on a ∛n×∛n×∛n grid with partially
	// scrambled numbering (poisson3Da, helm3d01, copter2, ship_001).
	ArchFEM3D
	// ArchManySmallClusters hides many small groups (≈24 rows each, so the
	// natural k is n/24 — far from any fixed candidate count) behind a
	// symmetric random relabeling. The archetype where a fixed candidate-k
	// sweep under-clusters badly and eigengap selection pays off.
	ArchManySmallClusters
	// ArchNoisyBlock64 is a 64-block diagonal pattern with uniform noise —
	// the true k sits exactly at the top of the auto-k range and above the
	// largest fixed candidate (32).
	ArchNoisyBlock64
	// ArchHubPowerLaw plants moderately sized communities underneath a few
	// super-hub columns that appear in most rows. The hubs dominate raw
	// similarity (every row overlaps every other through them), so recovering
	// the communities requires the refinement pipeline to discount the
	// uniform component.
	ArchHubPowerLaw
)

// String names the archetype.
func (a Archetype) String() string {
	switch a {
	case ArchScrambledBlock:
		return "scrambled-block"
	case ArchFEM:
		return "fem-mesh"
	case ArchPowerLaw:
		return "power-law"
	case ArchCircuit:
		return "circuit"
	case ArchLP:
		return "lp-block"
	case ArchKNN:
		return "knn-graph"
	case ArchBanded:
		return "banded"
	case ArchRandom:
		return "random"
	case ArchFEM3D:
		return "fem-mesh-3d"
	case ArchManySmallClusters:
		return "many-small-clusters"
	case ArchNoisyBlock64:
		return "noisy-block64"
	case ArchHubPowerLaw:
		return "hub-power-law"
	default:
		return "unknown"
	}
}

// Params configures a generator invocation.
type Params struct {
	Rows, Cols int
	// Density is the target nnz/(rows·cols). Generators hit it approximately
	// (within a few percent) while preserving their structure.
	Density float64
	Seed    int64
	// Groups is the number of hidden column-support templates for
	// ArchScrambledBlock / cluster count for ArchKNN. 0 selects 8.
	Groups int
	// ScramblePct controls the numbering quality of the FEM and circuit
	// archetypes: the percentage of nodes whose labels are shuffled.
	// 0 selects the archetype's default (35 for FEM, 20 for circuit);
	// negative disables scrambling (a perfectly numbered operator).
	ScramblePct int
}

// scrambleFrac resolves ScramblePct against an archetype default.
func (p Params) scrambleFrac(def float64) float64 {
	switch {
	case p.ScramblePct < 0:
		return 0
	case p.ScramblePct == 0:
		return def
	default:
		return float64(p.ScramblePct) / 100
	}
}

func (p Params) withDefaults() Params {
	if p.Groups == 0 {
		p.Groups = 8
	}
	return p
}

// Generate builds a matrix of the given archetype.
func Generate(a Archetype, p Params) *sparse.CSR {
	p = p.withDefaults()
	switch a {
	case ArchScrambledBlock:
		return ScrambledBlock(p)
	case ArchFEM:
		return FEMMesh(p)
	case ArchPowerLaw:
		return PowerLaw(p)
	case ArchCircuit:
		return Circuit(p)
	case ArchLP:
		return LPBlock(p)
	case ArchKNN:
		return KNNGraph(p)
	case ArchBanded:
		return Banded(p)
	case ArchRandom:
		return Random(p)
	case ArchFEM3D:
		return FEMMesh3D(p)
	case ArchManySmallClusters:
		return ManySmallClusters(p)
	case ArchNoisyBlock64:
		return NoisyBlock64(p)
	case ArchHubPowerLaw:
		return HubPowerLaw(p)
	default:
		return Random(p)
	}
}

// targetRowNNZ converts the density target to a mean row population.
func targetRowNNZ(p Params) float64 {
	return p.Density * float64(p.Cols)
}

// ScrambledBlock draws each row's support from one of Groups templates,
// mixed with a globally shared column base and noise, then shuffles row
// order so the structure is hidden from position. The shared base mirrors
// real matrices (boundary conditions, common variables, hub columns): every
// pair of rows overlaps somewhat, which misleads greedy similarity-chasing
// reorderers, while the normalized Laplacian discounts the uniform
// component and spectral clustering still recovers the hidden groups.
func ScrambledBlock(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5b10c4))
	per := targetRowNNZ(p)
	g := p.Groups
	n := minInt(p.Rows, p.Cols)

	// Canonical form: g contiguous diagonal blocks. Row i in block t draws
	// most of its support from block t's own index range, some from the
	// shared base, and a little noise — the assembled-operator shape of
	// matrices like invextr1_new. A symmetric random relabeling π is then
	// applied to rows and columns alike, hiding the blocks from position
	// while preserving (a) identical column supports within a group and
	// (b) the property that the B rows a group touches are the group's own
	// rows, which keeps C = A·B fill realistic.
	perm := rng.Perm(n)

	baseSize := maxInt(2, minInt(int(per), n))
	base := make([]int32, baseSize)
	for i := range base {
		base[i] = int32(perm[rng.Intn(n)])
	}

	blockOf := func(i int) (lo, hi int) {
		t := i * g / n
		lo = t * n / g
		hi = (t + 1) * n / g
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	rows := make([][]int32, p.Rows)
	for i := 0; i < p.Rows; i++ {
		canon := i % n
		lo, hi := blockOf(canon)
		cnt := poissonish(rng, per)
		if cnt < 1 {
			cnt = 1
		}
		// Bridge rows span a second block (and are often denser), the way
		// real operators couple subdomains. They derail greedy
		// similarity-walks — after a bridge the walk hops blocks, leaving
		// fragments behind — while global spectral structure is unharmed.
		bridge := rng.Float64() < 0.18
		lo2, hi2 := lo, hi
		if bridge {
			other := rng.Intn(n)
			lo2, hi2 = blockOf(other)
			cnt = cnt * 5 / 2
		}
		if cnt > p.Cols {
			cnt = p.Cols
		}
		set := make(map[int32]struct{}, cnt)
		// Attempts are bounded: tiny dense blocks can saturate their
		// reachable column set before cnt is hit.
		for attempts := 0; len(set) < cnt && attempts < 20*cnt+64; attempts++ {
			r := rng.Float64()
			switch {
			case r < 0.25 && len(base) > 0: // shared base columns
				set[base[rng.Intn(len(base))]] = struct{}{}
			case r < 0.94: // within-block columns (relabelled)
				if bridge && r >= 0.60 {
					set[int32(perm[lo2+rng.Intn(hi2-lo2)])] = struct{}{}
				} else {
					set[int32(perm[lo+rng.Intn(hi-lo)])] = struct{}{}
				}
			default: // noise
				set[int32(rng.Intn(p.Cols))] = struct{}{}
			}
		}
		if len(set) == 0 {
			set[int32(perm[lo])] = struct{}{}
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		rows[perm[canon]] = cols
		if i >= n {
			// Rectangular overflow rows reuse the block structure.
			rows[i] = cols
		}
	}
	for i := range rows {
		if rows[i] == nil {
			rows[i] = []int32{int32(i % p.Cols)}
		}
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// FEMMesh builds a five/nine-point stencil on a √n×√n grid whose node
// numbering is partially scrambled, approximating real assembled FEM
// operators: meshing tools rarely emit a perfect scan order, so a fraction
// of the rows sit far from their grid neighbours — recoverable locality,
// exactly what the paper observes on helm3d01/msc23052/ship_001.
func FEMMesh(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0xfe3))
	side := int(math.Sqrt(float64(minInt(p.Rows, p.Cols))))
	if side < 2 {
		side = 2
	}
	n := side * side
	relabel := partialShuffle(rng, n, p.scrambleFrac(0.35))
	rows := make([][]int32, p.Rows)
	per := targetRowNNZ(p)
	// Base stencil ≈ 5–9 points; extra fill from second-ring neighbours to
	// hit the density target.
	extra := per - 5
	for i := 0; i < p.Rows; i++ {
		node := i % n
		r, c := node/side, node%side
		set := map[int32]struct{}{}
		add := func(rr, cc int) {
			if rr >= 0 && rr < side && cc >= 0 && cc < side {
				col := int(relabel[rr*side+cc])
				if col < p.Cols {
					set[int32(col)] = struct{}{}
				}
			}
		}
		add(r, c)
		add(r-1, c)
		add(r+1, c)
		add(r, c-1)
		add(r, c+1)
		for e := 0.0; e < extra; e++ {
			dr, dc := rng.Intn(5)-2, rng.Intn(5)-2
			add(r+dr, c+dc)
		}
		cols := make([]int32, 0, len(set))
		for cc := range set {
			cols = append(cols, cc)
		}
		out := int(relabel[node])
		if out < p.Rows {
			rows[out] = cols
		}
		if i >= n {
			rows[i] = cols
		}
	}
	for i := range rows {
		if rows[i] == nil {
			rows[i] = []int32{int32(i % p.Cols)}
		}
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// partialShuffle returns a permutation of [0,n) where ≈frac of positions
// participate in a random derangement and the rest stay fixed — a model of
// "mostly ordered with scattered exceptions" numbering quality.
func partialShuffle(rng *rand.Rand, n int, frac float64) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	var movers []int
	for i := 0; i < n; i++ {
		if rng.Float64() < frac {
			movers = append(movers, i)
		}
	}
	shuffled := append([]int(nil), movers...)
	rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
	for idx, src := range movers {
		perm[src] = int32(shuffled[idx])
	}
	return perm
}

// PowerLaw builds a preferential-attachment adjacency pattern: column pick
// probability ∝ (rank+1)^-alpha, giving a few super-hub columns.
func PowerLaw(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x90d))
	per := targetRowNNZ(p)
	const alpha = 1.2
	// Precompute a cumulative distribution over columns.
	cdf := make([]float64, p.Cols)
	acc := 0.0
	for j := 0; j < p.Cols; j++ {
		acc += math.Pow(float64(j+1), -alpha)
		cdf[j] = acc
	}
	pick := func() int32 {
		r := rng.Float64() * acc
		lo, hi := 0, p.Cols-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	rows := make([][]int32, p.Rows)
	for i := range rows {
		// Row degrees also skewed: a few dense "hub" rows.
		n := poissonish(rng, per)
		if rng.Float64() < 0.02 {
			n *= 8
		}
		if n < 1 {
			n = 1
		}
		set := make(map[int32]struct{}, n)
		for tries := 0; len(set) < n && tries < 8*n; tries++ {
			set[pick()] = struct{}{}
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		rows[i] = cols
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// Circuit builds a mostly-diagonal pattern with sparse off-diagonal coupling
// and a few dense hub rows (supply rails), typical of circuit matrices. A
// light partial scramble of the node numbering mirrors real netlist
// flattening, which leaves some locality recoverable (the paper notes Gamma
// is particularly effective on bcircuit-class matrices).
func Circuit(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0xc12c))
	per := targetRowNNZ(p)
	n := minInt(p.Rows, p.Cols)
	relabel := partialShuffle(rng, n, p.scrambleFrac(0.20))
	rows := make([][]int32, p.Rows)
	hubCount := maxInt(1, p.Rows/500)
	hubs := make([]int32, hubCount)
	for i := range hubs {
		hubs[i] = int32(rng.Intn(p.Cols))
	}
	for i := 0; i < p.Rows; i++ {
		set := map[int32]struct{}{}
		add := func(j int) {
			if j >= 0 && j < n {
				if col := int(relabel[j]); col < p.Cols {
					set[int32(col)] = struct{}{}
				}
			} else if j >= 0 && j < p.Cols {
				set[int32(j)] = struct{}{}
			}
		}
		add(i)
		// Local neighbours.
		cnt := poissonish(rng, per-1)
		for k := 0; k < cnt; k++ {
			if rng.Float64() < 0.15 {
				set[hubs[rng.Intn(hubCount)]] = struct{}{} // coupling to a rail
				continue
			}
			add(i + rng.Intn(9) - 4)
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		out := i
		if i < n {
			out = int(relabel[i])
		}
		if out < p.Rows && rows[out] == nil {
			rows[out] = cols
		} else {
			rows[i] = cols
		}
	}
	for i := range rows {
		if rows[i] == nil {
			rows[i] = []int32{int32(i % p.Cols)}
		}
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// LPBlock builds a rectangular block-angular pattern: dense-ish linking rows
// on top, then diagonal blocks of local constraints.
func LPBlock(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x17b1))
	per := targetRowNNZ(p)
	blocks := maxInt(2, p.Groups)
	blockRows := p.Rows / blocks
	blockCols := p.Cols / blocks
	rows := make([][]int32, p.Rows)
	linking := p.Rows / 20 // 5% linking constraints spanning all blocks
	for i := range rows {
		set := map[int32]struct{}{}
		n := poissonish(rng, per)
		if n < 1 {
			n = 1
		}
		if i < linking {
			for k := 0; k < n; k++ {
				set[int32(rng.Intn(p.Cols))] = struct{}{}
			}
		} else {
			b := ((i - linking) / maxInt(1, blockRows)) % blocks
			lo := b * blockCols
			hi := lo + blockCols
			if hi > p.Cols {
				hi = p.Cols
			}
			for k := 0; k < n; k++ {
				set[int32(lo+rng.Intn(maxInt(1, hi-lo)))] = struct{}{}
			}
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		rows[i] = cols
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// KNNGraph places points in Groups Gaussian clusters on the plane and
// connects each to its k nearest neighbours (k from the density target).
func KNNGraph(p Params) *sparse.CSR {
	return knnGraph(p.withDefaults())
}

func knnGraph(p Params) *sparse.CSR {
	rng := rand.New(rand.NewSource(p.Seed ^ 0x4a4a))
	n := minInt(p.Rows, p.Cols)
	k := int(targetRowNNZ(p))
	if k < 2 {
		k = 2
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	g := p.Groups
	centers := make([]pt, g)
	for i := range centers {
		centers[i] = pt{rng.Float64() * 100, rng.Float64() * 100}
	}
	for i := range pts {
		c := centers[rng.Intn(g)]
		pts[i] = pt{c.x + rng.NormFloat64()*4, c.y + rng.NormFloat64()*4}
	}
	// Grid-bucketed approximate kNN: exact within the 3×3 neighbourhood.
	cell := 4.0
	grid := map[[2]int][]int32{}
	key := func(q pt) [2]int { return [2]int{int(q.x / cell), int(q.y / cell)} }
	for i, q := range pts {
		grid[key(q)] = append(grid[key(q)], int32(i))
	}
	rows := make([][]int32, p.Rows)
	type cand struct {
		j int32
		d float64
	}
	for i := 0; i < n; i++ {
		q := pts[i]
		kq := key(q)
		var cands []cand
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{kq[0] + dx, kq[1] + dy}] {
					if int(j) == i {
						continue
					}
					d := (pts[j].x-q.x)*(pts[j].x-q.x) + (pts[j].y-q.y)*(pts[j].y-q.y)
					cands = append(cands, cand{j, d})
				}
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].j < cands[b].j
		})
		lim := minInt(k, len(cands))
		cols := make([]int32, 0, lim+1)
		cols = append(cols, int32(i))
		for _, c := range cands[:lim] {
			cols = append(cols, c.j)
		}
		rows[i] = cols
	}
	for i := n; i < p.Rows; i++ {
		rows[i] = []int32{int32(i % p.Cols)}
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// Banded builds a plain multi-diagonal matrix whose band count matches the
// density target — structure reordering cannot improve.
func Banded(p Params) *sparse.CSR {
	p = p.withDefaults()
	per := int(targetRowNNZ(p))
	if per < 1 {
		per = 1
	}
	offsets := make([]int, per)
	for i := range offsets {
		// Symmetric fan of diagonals: 0, +1, -1, +2, -2, ...
		if i%2 == 0 {
			offsets[i] = i / 2
		} else {
			offsets[i] = -(i/2 + 1)
		}
	}
	rows := make([][]int32, p.Rows)
	for i := range rows {
		var cols []int32
		for _, off := range offsets {
			j := i + off
			if j >= 0 && j < p.Cols {
				cols = append(cols, int32(j))
			}
		}
		if len(cols) == 0 {
			cols = []int32{int32(i % p.Cols)}
		}
		rows[i] = cols
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// Random builds uniform random sparsity at the density target.
func Random(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x7a2d))
	per := targetRowNNZ(p)
	rows := make([][]int32, p.Rows)
	for i := range rows {
		n := poissonish(rng, per)
		if n < 1 {
			n = 1
		}
		set := make(map[int32]struct{}, n)
		for len(set) < n && len(set) < p.Cols {
			set[int32(rng.Intn(p.Cols))] = struct{}{}
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		rows[i] = cols
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// poissonish draws a small random count with mean ≈ mean (clamped ≥ 0) —
// a geometric-ish spread is fine for structural purposes and cheap.
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	v := mean * (0.5 + rng.Float64()) // uniform in [0.5, 1.5)·mean
	return int(v + 0.5)
}

func mustFromRows(rows, cols int, rowCols [][]int32) *sparse.CSR {
	m, err := sparse.FromRows(rows, cols, rowCols)
	if err != nil {
		panic("workloads: generator produced invalid matrix: " + err.Error())
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// plantedBlocks is the shared engine of the hidden-cluster archetypes: k
// contiguous diagonal blocks of roughly equal size, each row drawing
// (1-noise) of its support from its own block's column range and the rest
// uniformly, with a symmetric random relabeling applied to rows and columns
// alike so the structure is invisible to position. Unlike ScrambledBlock
// there is no shared column base and no bridge rows — the clusters are clean
// apart from the uniform noise, which makes the planted k recoverable by an
// eigengap scan while staying hidden from any fixed candidate sweep when k
// is off the candidate grid.
func plantedBlocks(rng *rand.Rand, p Params, k int, noise float64) *sparse.CSR {
	n := minInt(p.Rows, p.Cols)
	if k < 2 {
		k = 2
	}
	if k > n/2 {
		k = maxInt(2, n/2)
	}
	perm := rng.Perm(n)
	per := targetRowNNZ(p)
	blockOf := func(i int) (lo, hi int) {
		t := i * k / n
		lo = t * n / k
		hi = (t + 1) * n / k
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	rows := make([][]int32, p.Rows)
	for i := 0; i < p.Rows; i++ {
		canon := i % n
		lo, hi := blockOf(canon)
		cnt := poissonish(rng, per)
		if cnt < 2 {
			cnt = 2
		}
		if cnt > p.Cols {
			cnt = p.Cols
		}
		set := make(map[int32]struct{}, cnt)
		for attempts := 0; len(set) < cnt && attempts < 20*cnt+64; attempts++ {
			if rng.Float64() < noise {
				set[int32(rng.Intn(p.Cols))] = struct{}{}
			} else {
				set[int32(perm[lo+rng.Intn(hi-lo)])] = struct{}{}
			}
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		rows[perm[canon]] = cols
		if i >= n {
			rows[i] = cols
		}
	}
	for i := range rows {
		if rows[i] == nil {
			rows[i] = []int32{int32(i % p.Cols)}
		}
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// ManySmallClusters plants n/24 hidden groups of ≈24 rows each — a cluster
// count far from every fixed candidate (for n=1536 the natural k is 64). The
// fixed-k sweep must either merge dozens of groups per cluster or stop at
// its largest candidate; eigengap selection reads k off the spectrum.
func ManySmallClusters(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x245c))
	n := minInt(p.Rows, p.Cols)
	return plantedBlocks(rng, p, maxInt(2, n/24), 0.06)
}

// NoisyBlock64 plants exactly 64 diagonal blocks under ≈12% uniform noise.
// 64 is the ceiling of the auto-k scan and double the largest fixed
// candidate, so it separates "scan found the planted k" from "sweep got
// lucky".
func NoisyBlock64(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x64b1))
	return plantedBlocks(rng, p, 64, 0.12)
}

// HubPowerLaw plants communities underneath super-hub columns: each row
// couples to a few of the hubs with high probability, and hub *rows* (2%)
// are dense power-law samplers across all columns. Raw dot-product
// similarity is dominated by the hubs — every row overlaps every other —
// so the clusters only emerge after the refinement pipeline thresholds the
// uniform component away.
func HubPowerLaw(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x4b7a))
	n := minInt(p.Rows, p.Cols)
	k := maxInt(2, p.Groups)
	perm := rng.Perm(n)
	per := targetRowNNZ(p)
	hubCount := maxInt(3, n/128)
	hubs := make([]int32, hubCount)
	for i := range hubs {
		hubs[i] = int32(rng.Intn(p.Cols))
	}
	blockOf := func(i int) (lo, hi int) {
		t := i * k / n
		lo = t * n / k
		hi = (t + 1) * n / k
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	rows := make([][]int32, p.Rows)
	for i := 0; i < p.Rows; i++ {
		canon := i % n
		lo, hi := blockOf(canon)
		cnt := poissonish(rng, per)
		if cnt < 2 {
			cnt = 2
		}
		if cnt > p.Cols {
			cnt = p.Cols
		}
		dense := rng.Float64() < 0.02 // hub row: power-law across everything
		set := make(map[int32]struct{}, cnt)
		if dense {
			cnt = minInt(cnt*6, p.Cols)
			for attempts := 0; len(set) < cnt && attempts < 20*cnt+64; attempts++ {
				// rank^-1 bias toward low canonical indices, relabelled.
				j := int(float64(n) * math.Pow(rng.Float64(), 3))
				if j >= n {
					j = n - 1
				}
				set[int32(perm[j])] = struct{}{}
			}
		} else {
			for attempts := 0; len(set) < cnt && attempts < 20*cnt+64; attempts++ {
				r := rng.Float64()
				switch {
				case r < 0.35: // hub coupling dominates raw similarity
					set[hubs[rng.Intn(hubCount)]] = struct{}{}
				case r < 0.95: // own community
					set[int32(perm[lo+rng.Intn(hi-lo)])] = struct{}{}
				default: // noise
					set[int32(rng.Intn(p.Cols))] = struct{}{}
				}
			}
		}
		cols := make([]int32, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		rows[perm[canon]] = cols
		if i >= n {
			rows[i] = cols
		}
	}
	for i := range rows {
		if rows[i] == nil {
			rows[i] = []int32{int32(i % p.Cols)}
		}
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}

// FEMMesh3D builds a seven-point stencil on a ∛n×∛n×∛n grid with partially
// scrambled node numbering, plus second-ring fill to hit the density target.
// 3-D operators have larger stencil bandwidth than 2-D ones, which is what
// makes matrices like poisson3Da profitable to reorder once their numbering
// degrades.
func FEMMesh3D(p Params) *sparse.CSR {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed ^ 0x3dfe))
	side := int(math.Cbrt(float64(minInt(p.Rows, p.Cols))))
	if side < 2 {
		side = 2
	}
	n := side * side * side
	relabel := partialShuffle(rng, n, p.scrambleFrac(0.35))
	rows := make([][]int32, p.Rows)
	per := targetRowNNZ(p)
	extra := per - 7
	for i := 0; i < p.Rows; i++ {
		node := i % n
		x := node % side
		y := (node / side) % side
		z := node / (side * side)
		set := map[int32]struct{}{}
		add := func(xx, yy, zz int) {
			if xx >= 0 && xx < side && yy >= 0 && yy < side && zz >= 0 && zz < side {
				col := int(relabel[(zz*side+yy)*side+xx])
				if col < p.Cols {
					set[int32(col)] = struct{}{}
				}
			}
		}
		add(x, y, z)
		add(x-1, y, z)
		add(x+1, y, z)
		add(x, y-1, z)
		add(x, y+1, z)
		add(x, y, z-1)
		add(x, y, z+1)
		for e := 0.0; e < extra; e++ {
			add(x+rng.Intn(5)-2, y+rng.Intn(5)-2, z+rng.Intn(3)-1)
		}
		cols := make([]int32, 0, len(set))
		for cc := range set {
			cols = append(cols, cc)
		}
		out := i
		if node == i {
			out = int(relabel[node])
		}
		if out < p.Rows && rows[out] == nil {
			rows[out] = cols
		} else {
			rows[i] = cols
		}
	}
	for i := range rows {
		if rows[i] == nil {
			rows[i] = []int32{int32(i % p.Cols)}
		}
	}
	return mustFromRows(p.Rows, p.Cols, rows)
}
