package workloads

import (
	"fmt"
	"math"

	"bootes/internal/sparse"
)

// Spec describes one matrix of the evaluation suite: the paper's Table 3
// entry (name, shape, density) plus the archetype our generator uses to
// reproduce its structure.
type Spec struct {
	ID        string // two-letter code from Table 3
	Name      string
	Rows      int
	Cols      int
	Density   float64
	Archetype Archetype
	Groups    int
	Seed      int64
}

// Generate builds the matrix at a size scale in (0, 1]. Scale 1 reproduces
// the Table 3 shape; smaller scales shrink both dimensions proportionally
// and the mean row population by √scale. That square-root law keeps the two
// ratios that govern reordering behaviour roughly invariant when the
// accelerator caches are scaled alongside (see experiments.scaleAccelerator):
// the referenced-B footprint over cache capacity (whether misses happen at
// all), and one row group's working set over cache capacity (whether a good
// ordering can exploit reuse).
func (s Spec) Generate(scale float64) *sparse.CSR {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	rows := maxInt(16, int(float64(s.Rows)*scale))
	cols := maxInt(16, int(float64(s.Cols)*scale))
	density := s.Density
	if scale < 1 {
		per := s.Density * float64(s.Cols) * sqrt(scale)
		if per < 3 {
			per = 3
		}
		density = per / float64(cols)
		if density > 0.5 {
			density = 0.5
		}
	}
	return Generate(s.Archetype, Params{
		Rows: rows, Cols: cols, Density: density,
		Seed: s.Seed, Groups: s.Groups,
	})
}

// String summarizes the spec.
func (s Spec) String() string {
	return fmt.Sprintf("%s(%s %dx%d d=%.3g %s)", s.ID, s.Name, s.Rows, s.Cols, s.Density, s.Archetype)
}

// Table3 returns the evaluation suite mirroring the paper's Table 3. Shapes
// and densities match the listed values; archetypes are chosen from each
// matrix's domain (FEM, circuit, graph, LP, ...).
func Table3() []Spec {
	return []Spec{
		{ID: "ET", Name: "EternityII_Etilde", Rows: 10_000, Cols: 204_000, Density: 5.70e-4, Archetype: ArchLP, Groups: 16, Seed: 101},
		{ID: "PO", Name: "poisson3Da", Rows: 14_000, Cols: 14_000, Density: 1.93e-3, Archetype: ArchFEM3D, Seed: 102},
		{ID: "IN", Name: "invextr1_new", Rows: 30_000, Cols: 30_000, Density: 1.94e-3, Archetype: ArchScrambledBlock, Groups: 24, Seed: 103},
		{ID: "MI", Name: "mixtank_new", Rows: 30_000, Cols: 30_000, Density: 2.22e-3, Archetype: ArchScrambledBlock, Groups: 16, Seed: 104},
		{ID: "CI", Name: "cit-HepPh", Rows: 35_000, Cols: 35_000, Density: 3.53e-4, Archetype: ArchPowerLaw, Seed: 105},
		{ID: "BC", Name: "bcircuit", Rows: 69_000, Cols: 69_000, Density: 7.91e-5, Archetype: ArchCircuit, Seed: 106},
		{ID: "CO", Name: "copter2", Rows: 55_000, Cols: 55_000, Density: 2.47e-4, Archetype: ArchFEM3D, Seed: 107},
		{ID: "NC", Name: "ncvxqp5", Rows: 63_000, Cols: 63_000, Density: 1.09e-4, Archetype: ArchScrambledBlock, Groups: 32, Seed: 108},
		{ID: "SP", Name: "sparsine", Rows: 50_000, Cols: 50_000, Density: 6.20e-4, Archetype: ArchRandom, Seed: 109},
		{ID: "RA", Name: "rajat15", Rows: 37_000, Cols: 37_000, Density: 3.19e-4, Archetype: ArchCircuit, Seed: 110},
		{ID: "K4", Name: "k49_norm_10NN", Rows: 39_000, Cols: 39_000, Density: 4.16e-4, Archetype: ArchKNN, Groups: 49, Seed: 111},
		{ID: "E4", Name: "e40r0100", Rows: 17_000, Cols: 17_000, Density: 1.85e-3, Archetype: ArchFEM, Seed: 112},
		{ID: "HE", Name: "helm3d01", Rows: 32_000, Cols: 32_000, Density: 4.13e-4, Archetype: ArchFEM3D, Seed: 113},
		{ID: "EX", Name: "ex3sta1", Rows: 17_000, Cols: 17_000, Density: 2.41e-3, Archetype: ArchScrambledBlock, Groups: 12, Seed: 114},
		{ID: "EA", Name: "EAT_RS", Rows: 23_000, Cols: 23_000, Density: 6.04e-4, Archetype: ArchPowerLaw, Seed: 115},
		{ID: "MA", Name: "Maragal_6", Rows: 21_000, Cols: 10_000, Density: 2.49e-3, Archetype: ArchLP, Groups: 12, Seed: 116},
		{ID: "VI", Name: "vibrobox", Rows: 12_000, Cols: 12_000, Density: 1.99e-3, Archetype: ArchScrambledBlock, Groups: 8, Seed: 117},
		{ID: "MS", Name: "msc23052", Rows: 23_000, Cols: 23_000, Density: 2.15e-3, Archetype: ArchFEM, Seed: 118},
		{ID: "OR", Name: "Oregon-1", Rows: 11_000, Cols: 11_000, Density: 3.55e-4, Archetype: ArchPowerLaw, Seed: 119},
		{ID: "SH", Name: "ship_001", Rows: 35_000, Cols: 35_000, Density: 3.20e-3, Archetype: ArchFEM3D, Seed: 120},
		{ID: "SM", Name: "sme3Da", Rows: 13_000, Cols: 13_000, Density: 5.60e-3, Archetype: ArchScrambledBlock, Groups: 10, Seed: 121},
		{ID: "TO", Name: "tomographic1", Rows: 73_000, Cols: 59_000, Density: 1.49e-4, Archetype: ArchLP, Groups: 24, Seed: 122},
		{ID: "OL", Name: "olesnik0", Rows: 88_000, Cols: 88_000, Density: 9.55e-5, Archetype: ArchFEM, Seed: 123},
		{ID: "MR", Name: "mri2", Rows: 63_000, Cols: 147_000, Density: 6.10e-5, Archetype: ArchLP, Groups: 32, Seed: 124},
		{ID: "DU", Name: "Dubcova2", Rows: 65_000, Cols: 65_000, Density: 2.44e-4, Archetype: ArchFEM, Seed: 125},
		{ID: "FO", Name: "fome20", Rows: 33_000, Cols: 108_000, Density: 6.35e-5, Archetype: ArchLP, Groups: 20, Seed: 126},
	}
}

// ByID returns the Table 3 spec with the given two-letter code.
func ByID(id string) (Spec, bool) {
	for _, s := range Table3() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// TrainingCorpus returns a broad labelled-corpus generator set: every
// archetype at several sizes, mean row populations, and seeds — the stand-in
// for the paper's 500 SuiteSparse/SNAP matrices used to train the decision
// tree. Densities are derived from target nonzeros-per-row so that scaling
// the sizes down preserves per-row structure (and hence the B working set
// relative to a scaled cache).
func TrainingCorpus(scale float64) []Spec {
	var specs []Spec
	archetypes := []Archetype{
		ArchScrambledBlock, ArchFEM, ArchPowerLaw, ArchCircuit,
		ArchLP, ArchKNN, ArchBanded, ArchRandom,
	}
	sizes := []int{4096, 8192, 16384}
	rowNNZs := []float64{8, 24, 64}
	groupCounts := []int{4, 16}
	id := 0
	for _, arch := range archetypes {
		for _, n := range sizes {
			for _, per := range rowNNZs {
				for _, g := range groupCounts {
					id++
					rows := maxInt(64, int(float64(n)*scale))
					specs = append(specs, Spec{
						ID:        fmt.Sprintf("T%03d", id),
						Name:      fmt.Sprintf("%s-n%d-p%g-g%d", arch, n, per, g),
						Rows:      rows,
						Cols:      rows,
						Density:   per / float64(rows),
						Archetype: arch,
						Groups:    g,
						Seed:      1000 + int64(id),
					})
				}
			}
		}
	}
	return specs
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
