package workloads

import (
	"math"
	"testing"

	"bootes/internal/sparse"
)

func TestAllArchetypesProduceValidMatrices(t *testing.T) {
	archetypes := []Archetype{
		ArchScrambledBlock, ArchFEM, ArchPowerLaw, ArchCircuit,
		ArchLP, ArchKNN, ArchBanded, ArchRandom, ArchFEM3D,
		ArchManySmallClusters, ArchNoisyBlock64, ArchHubPowerLaw,
	}
	for _, arch := range archetypes {
		t.Run(arch.String(), func(t *testing.T) {
			m := Generate(arch, Params{Rows: 500, Cols: 400, Density: 0.01, Seed: 1})
			if err := m.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if m.Rows != 500 || m.Cols != 400 {
				t.Errorf("shape %dx%d", m.Rows, m.Cols)
			}
			if m.NNZ() == 0 {
				t.Error("empty matrix")
			}
		})
	}
}

func TestDensityApproximatelyMet(t *testing.T) {
	// Structure-free generators should land near the density target;
	// structured ones within a factor of ~2.5.
	for _, tc := range []struct {
		arch Archetype
		tol  float64
	}{
		{ArchRandom, 1.5},
		{ArchScrambledBlock, 1.5},
		{ArchBanded, 1.6},
		{ArchPowerLaw, 2.5},
		{ArchFEM, 2.5},
		{ArchLP, 1.6},
	} {
		target := 0.01
		m := Generate(tc.arch, Params{Rows: 1000, Cols: 1000, Density: target, Seed: 3})
		got := m.Density()
		if got > target*tc.tol || got < target/tc.tol {
			t.Errorf("%s: density %v vs target %v (tol ×%v)", tc.arch, got, target, tc.tol)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, arch := range []Archetype{ArchScrambledBlock, ArchPowerLaw, ArchKNN} {
		a := Generate(arch, Params{Rows: 300, Cols: 300, Density: 0.02, Seed: 5})
		b := Generate(arch, Params{Rows: 300, Cols: 300, Density: 0.02, Seed: 5})
		if !sparse.Equal(a.Pattern(), b.Pattern()) {
			t.Errorf("%s: nondeterministic", arch)
		}
		c := Generate(arch, Params{Rows: 300, Cols: 300, Density: 0.02, Seed: 6})
		if sparse.PatternEqual(a, c) {
			t.Errorf("%s: different seeds gave identical matrices", arch)
		}
	}
}

func TestTable3Suite(t *testing.T) {
	suite := Table3()
	if len(suite) != 26 {
		t.Fatalf("suite has %d entries, want 26 (paper Table 3)", len(suite))
	}
	ids := map[string]bool{}
	for _, s := range suite {
		if ids[s.ID] {
			t.Errorf("duplicate ID %s", s.ID)
		}
		ids[s.ID] = true
		if s.Rows <= 0 || s.Cols <= 0 || s.Density <= 0 {
			t.Errorf("%s: bad spec", s.ID)
		}
	}
	// Spot-check Table 3 values.
	in, ok := ByID("IN")
	if !ok || in.Name != "invextr1_new" || in.Rows != 30000 || in.Density != 1.94e-3 {
		t.Errorf("IN spec wrong: %+v", in)
	}
	if _, ok := ByID("ZZ"); ok {
		t.Error("unknown ID found")
	}
}

func TestSpecGenerateScaling(t *testing.T) {
	s, _ := ByID("PO")
	m := s.Generate(0.05)
	if m.Rows > s.Rows/10 {
		t.Errorf("scale 0.05 gave %d rows", m.Rows)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean row population follows the √scale law (see Spec.Generate).
	wantPer := s.Density * float64(s.Cols) * math.Sqrt(0.05)
	if wantPer < 3 {
		wantPer = 3
	}
	scaledPer := float64(m.NNZ()) / float64(m.Rows)
	if scaledPer < wantPer/3 || scaledPer > wantPer*3 {
		t.Errorf("row population drifted: scaled %v vs want %v", scaledPer, wantPer)
	}
	// Out-of-range scale behaves like 1... but full size is big, so just
	// check clamping logic with a small spec.
	tiny := Spec{ID: "XX", Name: "x", Rows: 100, Cols: 100, Density: 0.05, Archetype: ArchRandom, Seed: 9}
	m2 := tiny.Generate(-1)
	if m2.Rows != 100 {
		t.Errorf("negative scale not clamped: %d rows", m2.Rows)
	}
}

func TestTrainingCorpusShape(t *testing.T) {
	corpus := TrainingCorpus(0.25)
	if len(corpus) != 8*3*3*2 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	seen := map[string]bool{}
	for _, s := range corpus {
		if seen[s.ID] {
			t.Errorf("duplicate corpus ID %s", s.ID)
		}
		seen[s.ID] = true
	}
	// Generate one to check validity.
	m := corpus[0].Generate(1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBandedHasNoLongRangeOverlap(t *testing.T) {
	m := Banded(Params{Rows: 400, Cols: 400, Density: 0.01, Seed: 1})
	// Distant rows share no columns.
	if got := sparse.IntersectionSize(m, 0, 200); got != 0 {
		t.Errorf("distant banded rows share %d columns", got)
	}
	// Adjacent rows share most columns.
	if got := sparse.Jaccard(m, 100, 101); got < 0.3 {
		t.Errorf("adjacent banded rows Jaccard %v too low", got)
	}
}

func TestScrambledBlockHasHiddenGroups(t *testing.T) {
	m := ScrambledBlock(Params{Rows: 400, Cols: 400, Density: 0.02, Seed: 2, Groups: 4})
	// There must exist distant row pairs with high overlap (the signature
	// the paper's Figure 1 annotates).
	found := false
	for i := 0; i < 50 && !found; i++ {
		for j := 200; j < 400; j += 7 {
			if sparse.Jaccard(m, i, j) > 0.3 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no distant similar row pairs found in scrambled block matrix")
	}
}

func TestPowerLawHasHubs(t *testing.T) {
	m := PowerLaw(Params{Rows: 1000, Cols: 1000, Density: 0.005, Seed: 3})
	counts := sparse.ColCounts(m)
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(m.NNZ()) / float64(m.Cols)
	if float64(max) < 8*mean {
		t.Errorf("max column degree %d not hub-like (mean %v)", max, mean)
	}
}

func TestFEM3DArchetype(t *testing.T) {
	m := FEMMesh3D(Params{Rows: 1000, Cols: 1000, Density: 0.008, Seed: 4})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Fatal("empty 3-D mesh")
	}
	if ArchFEM3D.String() != "fem-mesh-3d" {
		t.Error("archetype name wrong")
	}
	// Perfectly numbered 3-D mesh: adjacent rows overlap (stencil locality).
	perfect := FEMMesh3D(Params{Rows: 1000, Cols: 1000, Density: 0.008, Seed: 4, ScramblePct: -1})
	overlaps := 0
	for i := 0; i < 100; i++ {
		if sparse.IntersectionSize(perfect, i, i+1) > 0 {
			overlaps++
		}
	}
	if overlaps < 50 {
		t.Errorf("only %d/100 adjacent row pairs overlap in a perfect 3-D mesh", overlaps)
	}
	// Generate path covers the new archetype.
	g := Generate(ArchFEM3D, Params{Rows: 500, Cols: 500, Density: 0.01, Seed: 5})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
