// Package leakcheck asserts that an operation leaves no goroutines and no
// resource slots behind. It is shared by the serving-layer test suites and
// the chaos harness, whose per-episode global invariant is "everything the
// episode started has stopped".
//
// Goroutine accounting is stack-based, not count-based: a goroutine is
// "interesting" only if its stack contains a frame from this module
// (bootes/...), so unrelated runtime and testing machinery can come and go
// freely. Because goroutines wind down asynchronously (a cancelled worker
// still needs a few scheduler quanta to observe its context and return),
// every check polls until the condition holds or a settle deadline expires —
// a failure therefore means a real leak, not a race with shutdown.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// SettleTimeout is how long checks wait for goroutines to wind down and
// gauges to drain before declaring a leak.
const SettleTimeout = 5 * time.Second

// modulePrefix marks stack frames that belong to this codebase. The
// leakcheck package itself is excluded so the checker never counts its own
// helpers.
const modulePrefix = "bootes/"

// Snapshot is the set of interesting goroutines alive at Take time.
type Snapshot struct {
	ids map[int64]bool
}

// Take captures the currently live interesting goroutines.
func Take() *Snapshot {
	s := &Snapshot{ids: make(map[int64]bool)}
	for id := range interesting() {
		s.ids[id] = true
	}
	return s
}

// Check polls until every interesting goroutine not present at Take time has
// exited, or SettleTimeout passes. On timeout it returns an error carrying
// the leaked goroutines' stacks.
func (s *Snapshot) Check() error {
	deadline := time.Now().Add(SettleTimeout)
	for {
		leaked := s.leaked()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			var b strings.Builder
			fmt.Fprintf(&b, "leakcheck: %d goroutine(s) leaked:", len(leaked))
			for _, stack := range leaked {
				b.WriteString("\n\n")
				b.WriteString(stack)
			}
			return fmt.Errorf("%s", b.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (s *Snapshot) leaked() []string {
	var out []string
	for id, stack := range interesting() {
		if !s.ids[id] {
			out = append(out, stack)
		}
	}
	sort.Strings(out)
	return out
}

// interesting returns id → stack for every live goroutine whose stack holds
// a bootes/ frame outside this package.
func interesting() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[int64]string)
	for _, block := range strings.Split(string(buf), "\n\n") {
		if !strings.HasPrefix(block, "goroutine ") || !hasModuleFrame(block) {
			continue
		}
		header := block[len("goroutine "):]
		sp := strings.IndexByte(header, ' ')
		if sp < 0 {
			continue
		}
		id, err := strconv.ParseInt(header[:sp], 10, 64)
		if err != nil {
			continue
		}
		out[id] = block
	}
	return out
}

// hasModuleFrame reports whether any function frame of the goroutine block
// belongs to this module, excluding leakcheck itself (and its test package).
// Frames are judged line by line, so a goroutine that merely *mentions* a
// module path inside an argument cannot confuse the filter, and a goroutine
// spawned by a leakcheck test but parked inside another bootes package is
// still seen.
func hasModuleFrame(block string) bool {
	for _, line := range strings.Split(block, "\n") {
		fn := strings.TrimPrefix(line, "created by ")
		if !strings.HasPrefix(fn, modulePrefix) {
			continue
		}
		if strings.HasPrefix(fn, modulePrefix+"internal/leakcheck") {
			continue
		}
		return true
	}
	return false
}

// SettleZero polls gauge until it reports 0 or SettleTimeout passes; a
// non-zero final reading is returned as an error naming the gauge. Use it
// for slot-style resources (worker-pool extras, admission semaphores) whose
// release trails the operation by a scheduler quantum.
func SettleZero(name string, gauge func() int64) error {
	deadline := time.Now().Add(SettleTimeout)
	for {
		v := gauge()
		if v == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: gauge %s stuck at %d, want 0", name, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Goroutines registers a cleanup on t that fails the test if the code under
// test leaked goroutines. Call it before starting the workload.
func Goroutines(t testing.TB) {
	t.Helper()
	snap := Take()
	t.Cleanup(func() {
		if err := snap.Check(); err != nil {
			t.Error(err)
		}
	})
}

// Zero registers a cleanup on t that fails the test unless gauge drains to 0.
func Zero(t testing.TB, name string, gauge func() int64) {
	t.Helper()
	t.Cleanup(func() {
		if err := SettleZero(name, gauge); err != nil {
			t.Error(err)
		}
	})
}
