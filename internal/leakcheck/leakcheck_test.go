package leakcheck

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bootes/internal/parallel"
)

// blockInParallel parks a goroutine inside a bootes/internal/parallel frame
// until release is closed, giving the detector a module-owned stack to find.
// It returns only after the goroutine is running: an unscheduled goroutine is
// invisible to runtime.Stack, so returning earlier would let snapshot
// boundaries race with goroutine startup and bleed leaks across tests.
func blockInParallel(release chan struct{}) {
	started := make(chan struct{})
	go parallel.ForWorkers(1, 1, 1, func(lo, hi int) {
		close(started)
		<-release
	})
	<-started
}

func TestDetectsModuleGoroutineLeak(t *testing.T) {
	snap := Take()
	release := make(chan struct{})
	blockInParallel(release)
	defer close(release)

	// Wait until the goroutine is parked where the detector can see it.
	deadline := time.Now().Add(2 * time.Second)
	for len(snap.leaked()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked parallel goroutine never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	leaked := snap.leaked()
	if !strings.Contains(leaked[0], "bootes/internal/parallel") {
		t.Fatalf("leak report misses the owning frame:\n%s", leaked[0])
	}
}

func TestCheckSettlesAfterRelease(t *testing.T) {
	snap := Take()
	release := make(chan struct{})
	blockInParallel(release)
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	// Check polls: the goroutine exits mid-check and the snapshot settles.
	if err := snap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLeakcheckOwnGoroutinesInvisible(t *testing.T) {
	snap := Take()
	release := make(chan struct{})
	defer close(release)
	// A goroutine with only leakcheck/test frames must not count as a leak.
	go func() { <-release }()
	time.Sleep(10 * time.Millisecond)
	if leaked := snap.leaked(); len(leaked) != 0 {
		t.Fatalf("test-local goroutine flagged:\n%s", strings.Join(leaked, "\n\n"))
	}
}

func TestSettleZero(t *testing.T) {
	var g atomic.Int64
	g.Store(3)
	go func() {
		time.Sleep(15 * time.Millisecond)
		g.Store(0)
	}()
	if err := SettleZero("test-gauge", g.Load); err != nil {
		t.Fatal(err)
	}
}

func TestParallelExtrasQuiescent(t *testing.T) {
	parallel.ForWorkers(4, 64, 4, func(lo, hi int) {})
	if err := SettleZero("parallel extras", parallel.Extras); err != nil {
		t.Fatal(err)
	}
}
