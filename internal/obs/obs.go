// Package obs is the Bootes observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms) with deterministic,
// sorted Prometheus-text exposition, plus lightweight per-plan stage spans
// (trace.go) that answer "where did this plan's time go?".
//
// Design constraints, in order:
//
//   - No external dependencies. The rest of the repo is stdlib-only and the
//     registry must be embeddable in every test without pulling a client
//     library; the Prometheus text format is simple enough to emit directly.
//   - Deterministic output. Families render sorted by name, series sorted by
//     label value, floats via strconv's shortest round-trip form, so two
//     registries holding equal values render byte-identical text — the
//     golden tests depend on it.
//   - Race-clean and cheap. Counters and gauges are single atomics;
//     histograms take one short mutex per observation. Instruments are
//     get-or-create, so call sites register idempotently and never keep
//     global instrument variables alive across test runs.
//
// Naming convention (enforced at registration): every metric name matches
// ^bootes_[a-z0-9_]+$; counters end in _total; histograms end in a unit
// suffix (_seconds or _bytes). Violations panic — a bad name is a programmer
// error, caught by the first test that touches the call site.
package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType discriminates the three instrument kinds.
type MetricType int

// The instrument kinds, in exposition-format spelling.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "unknown"
}

var (
	nameRE  = regexp.MustCompile(`^bootes_[a-z0-9_]+$`)
	labelRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// Registry holds a set of metric families. The zero value is not usable;
// create with NewRegistry or use Default.
type Registry struct {
	mu   sync.Mutex
	now  func() time.Time
	fams map[string]*family
}

// NewRegistry returns an empty registry using the real clock.
func NewRegistry() *Registry {
	return &Registry{now: time.Now, fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library code (the pipeline's
// stage spans, planverify's violation counters) records here unless a
// context carries another registry; bootesd serves it on /metrics.
func Default() *Registry { return defaultRegistry }

// SetNow overrides the registry clock (tests: fake, deterministic time).
// nil restores the real clock.
func (r *Registry) SetNow(fn func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		fn = time.Now
	}
	r.now = fn
}

// Now reads the registry clock.
func (r *Registry) Now() time.Time {
	r.mu.Lock()
	fn := r.now
	r.mu.Unlock()
	return fn()
}

// family is one named metric with all its labeled series.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string  // label names; empty for a scalar family
	buckets []float64 // histogram upper bounds, strictly increasing

	mu     sync.Mutex
	series map[string]any // labelKey → *Counter | *Gauge | *Histogram
	fn     func() int64   // Func-backed scalar (counter or gauge view)
}

// register returns the family for name, creating it on first use and
// panicking when a second registration disagrees on type, help, labels, or
// buckets — silent divergence would corrupt the exposition.
func (r *Registry) register(name, help string, typ MetricType, labels []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q does not match %s", name, nameRE))
	}
	switch typ {
	case TypeCounter:
		if !strings.HasSuffix(name, "_total") {
			panic(fmt.Sprintf("obs: counter %q must end in _total", name))
		}
	case TypeHistogram:
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			panic(fmt.Sprintf("obs: histogram %q must end in a unit suffix (_seconds or _bytes)", name))
		}
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing: %v", name, buckets))
			}
		}
	case TypeGauge:
		if strings.HasSuffix(name, "_total") {
			panic(fmt.Sprintf("obs: gauge %q must not end in _total", name))
		}
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("obs: label name %q on %q invalid", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelKey renders label values into the canonical series key, which doubles
// as the exposition's label block (sans braces when empty).
func (f *family) labelKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func (f *family) get(values []string, make func() any) any {
	key := f.labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative: counters only go up.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(delta)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (negative allowed) and returns the new
// value — callers using a gauge as a bounded admission count need the
// post-increment reading atomically.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of float64 observations.
type Histogram struct {
	buckets []float64
	mu      sync.Mutex
	counts  []uint64 // per-bucket (non-cumulative); last slot is the +Inf overflow
	sum     float64
	count   uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.buckets, v) // first bucket with bound ≥ v
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Counter returns the scalar counter for name, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the scalar gauge for name, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the scalar histogram for name with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, buckets)
	return f.get(nil, func() any {
		return &Histogram{buckets: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
	}).(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — a view over a counter another subsystem already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.register(name, help, TypeCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.register(name, help, TypeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family for name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic("obs: CounterVec needs at least one label; use Counter")
	}
	return &CounterVec{r.register(name, help, TypeCounter, labelNames, nil)}
}

// With returns the counter for the given label values (in label-name order).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family for name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic("obs: GaugeVec needs at least one label; use Gauge")
	}
	return &GaugeVec{r.register(name, help, TypeGauge, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family for name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic("obs: HistogramVec needs at least one label; use Histogram")
	}
	return &HistogramVec{r.register(name, help, TypeHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any {
		return &Histogram{buckets: v.f.buckets, counts: make([]uint64, len(v.f.buckets)+1)}
	}).(*Histogram)
}

// SeriesSnapshot is one labeled series' state at snapshot time.
type SeriesSnapshot struct {
	// Labels is the canonical rendered label block (empty for scalars).
	Labels string
	// Value is the counter or gauge value (unused for histograms).
	Value int64
	// Count / Sum / BucketCounts describe a histogram; BucketCounts is
	// non-cumulative with the +Inf overflow in the last slot.
	Count        uint64
	Sum          float64
	BucketCounts []uint64
}

// FamilySnapshot is one metric family's state at snapshot time.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    MetricType
	Buckets []float64
	Series  []SeriesSnapshot
}

// Snapshot captures every family and series, sorted by name then label key —
// the exposition order. The chaos harness and the lint tests introspect it.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:    f.name,
			Help:    f.help,
			Type:    f.typ,
			Buckets: append([]float64(nil), f.buckets...),
		}
		f.mu.Lock()
		if f.fn != nil {
			fs.Series = append(fs.Series, SeriesSnapshot{Value: f.fn()})
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ss := SeriesSnapshot{Labels: k}
			switch m := f.series[k].(type) {
			case *Counter:
				ss.Value = m.Value()
			case *Gauge:
				ss.Value = m.Value()
			case *Histogram:
				m.mu.Lock()
				ss.Count = m.count
				ss.Sum = m.sum
				ss.BucketCounts = append([]uint64(nil), m.counts...)
				m.mu.Unlock()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically: families sorted by name, series
// by label key, floats in shortest round-trip form.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writeFamilies(w, r.Snapshot())
}

// WriteMerged renders several registries as one exposition. When two
// registries hold a family with the same name (bootesd registers its serving
// metrics directly on Default), the first registry's family wins and later
// duplicates are skipped, keeping the output well-formed.
func WriteMerged(w io.Writer, regs ...*Registry) error {
	seen := make(map[string]bool)
	var fams []FamilySnapshot
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, f := range r.Snapshot() {
			if seen[f.Name] {
				continue
			}
			seen[f.Name] = true
			fams = append(fams, f)
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return writeFamilies(w, fams)
}

func writeFamilies(w io.Writer, fams []FamilySnapshot) error {
	var b strings.Builder
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Series {
			switch f.Type {
			case TypeCounter, TypeGauge:
				writeSample(&b, f.Name, s.Labels, "", strconv.FormatInt(s.Value, 10))
			case TypeHistogram:
				cum := uint64(0)
				for i, bound := range f.Buckets {
					cum += s.BucketCounts[i]
					writeSample(&b, f.Name+"_bucket", s.Labels,
						`le="`+formatFloat(bound)+`"`, strconv.FormatUint(cum, 10))
				}
				cum += s.BucketCounts[len(f.Buckets)]
				writeSample(&b, f.Name+"_bucket", s.Labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
				writeSample(&b, f.Name+"_sum", s.Labels, "", formatFloat(s.Sum))
				writeSample(&b, f.Name+"_count", s.Labels, "", strconv.FormatUint(s.Count, 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one exposition line; extra is an additional label pair
// (the histogram's le) appended after the series labels.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// formatFloat renders a float in the shortest form that round-trips,
// matching across platforms so golden outputs stay byte-identical.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
