package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bootes_things_total", "things")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("bootes_things_total", "things"); again != c {
		t.Error("Counter is not get-or-create")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative counter Add did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("bootes_level", "level")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bootes_delay_seconds", "delay", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	// Non-cumulative: (≤1)=2 {0.5, 1}, (≤2)=1 {1.5}, (≤4)=1 {3}, +Inf=1 {100}.
	got := snap[0].Series[0].BucketCounts
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
}

func TestVecSeries(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("bootes_ops_total", "ops", "kind")
	cv.With("read").Add(2)
	cv.With("write").Inc()
	if cv.With("read").Value() != 2 || cv.With("write").Value() != 1 {
		t.Fatal("vec series not independent")
	}
	gv := r.GaugeVec("bootes_depth", "depth", "queue")
	gv.With("a").Set(3)
	hv := r.HistogramVec("bootes_size_bytes", "sizes", []float64{10, 100}, "op")
	hv.With("put").Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`bootes_ops_total{kind="read"} 2`,
		`bootes_ops_total{kind="write"} 1`,
		`bootes_depth{queue="a"} 3`,
		`bootes_size_bytes_bucket{op="put",le="100"} 1`,
		`bootes_size_bytes_bucket{op="put",le="+Inf"} 1`,
		`bootes_size_bytes_sum{op="put"} 50`,
		`bootes_size_bytes_count{op="put"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationValidation(t *testing.T) {
	r := NewRegistry()
	cases := []func(){
		func() { r.Counter("bootes_bad", "counter without _total") },
		func() { r.Counter("nope_x_total", "wrong prefix") },
		func() { r.Counter("bootes_Bad_total", "upper case") },
		func() { r.Gauge("bootes_oops_total", "gauge with _total") },
		func() { r.Histogram("bootes_h_total", "bad suffix", []float64{1}) },
		func() { r.Histogram("bootes_h_seconds", "no buckets", nil) },
		func() { r.Histogram("bootes_h2_seconds", "unsorted", []float64{2, 1}) },
		func() { r.CounterVec("bootes_l_total", "bad label", "BAD") },
		func() {
			r.Counter("bootes_conflict_total", "as counter")
			r.Gauge("bootes_conflict_total", "as gauge")
		},
		func() {
			cv := r.CounterVec("bootes_arity_total", "arity", "a", "b")
			cv.With("only-one")
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.CounterFunc("bootes_view_total", "view", func() int64 { return n })
	r.GaugeFunc("bootes_live", "live", func() int64 { return n + 1 })
	n = 7
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bootes_view_total 7\n") ||
		!strings.Contains(b.String(), "bootes_live 8\n") {
		t.Fatalf("func instruments not read at exposition:\n%s", b.String())
	}
}

func TestExpositionSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("bootes_zz_total", "last")
	r.Counter("bootes_aa_total", `help with \ and
newline`)
	cv := r.CounterVec("bootes_mm_total", "mid", "who")
	cv.With("b").Inc()
	cv.With(`a"quote`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	aa, mm, zz := strings.Index(out, "bootes_aa_total"), strings.Index(out, "bootes_mm_total"), strings.Index(out, "bootes_zz_total")
	if !(aa < mm && mm < zz) {
		t.Errorf("families not sorted:\n%s", out)
	}
	if !strings.Contains(out, `# HELP bootes_aa_total help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `bootes_mm_total{who="a\"quote"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	// Series within a family sorted by label key: a"quote before b.
	if qa, qb := strings.Index(out, `who="a\"quote"`), strings.Index(out, `who="b"`); !(qa < qb) {
		t.Errorf("series not sorted:\n%s", out)
	}
}

func TestWriteMergedDedupes(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("bootes_shared_total", "from a").Add(1)
	b.Counter("bootes_shared_total", "from b").Add(99)
	b.Counter("bootes_only_b_total", "b only").Add(2)
	var out strings.Builder
	if err := WriteMerged(&out, a, b, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "bootes_shared_total 1\n") {
		t.Errorf("first registry should win:\n%s", s)
	}
	if strings.Contains(s, "bootes_shared_total 99") {
		t.Errorf("duplicate family not skipped:\n%s", s)
	}
	if !strings.Contains(s, "bootes_only_b_total 2\n") {
		t.Errorf("second registry's unique family missing:\n%s", s)
	}
	if strings.Count(s, "# TYPE bootes_shared_total") != 1 {
		t.Errorf("duplicate TYPE line:\n%s", s)
	}
}

func TestConcurrencySmoke(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bootes_n_total", "n")
	h := r.Histogram("bootes_t_seconds", "t", StageSecondsBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				r.CounterVec("bootes_v_total", "v", "w").With("x").Inc()
			}
		}()
	}
	// Exposition concurrent with writes must be safe.
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestFakeClock(t *testing.T) {
	r := NewRegistry()
	base := time.Unix(1700000000, 0)
	r.SetNow(Elapse(base, time.Millisecond))
	t1, t2 := r.Now(), r.Now()
	if d := t2.Sub(t1); d != time.Millisecond {
		t.Fatalf("fake clock step = %v, want 1ms", d)
	}
	r.SetNow(nil) // restore the real clock
	if r.Now().Year() < 2020 {
		t.Error("real clock not restored")
	}
}
