package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// The pipeline's stage names, in execution order. Stage spans use these as
// the `stage` label of bootes_plan_stage_seconds; the CLI's stage-time table
// prints them in this order.
const (
	StageFeatures   = "features"
	StageSimilarity = "similarity"
	StageEigensolve = "eigensolve"
	StageKMeans     = "kmeans"
	StageSweep      = "sweep"
	StagePermute    = "permute"
)

// StageOrder lists the known stages in canonical pipeline order.
var StageOrder = []string{
	StageFeatures, StageSimilarity, StageEigensolve, StageKMeans, StageSweep, StagePermute,
}

// Registry-facing metric names for spans. Kept as constants so tests and the
// chaos invariant reference the same spelling as the instrumentation.
const (
	// StageSecondsName is the per-stage latency histogram (label: stage).
	StageSecondsName = "bootes_plan_stage_seconds"
	// SpansOpenName is the gauge of currently open stage spans; it must read
	// zero whenever no plan is in flight — the chaos harness asserts it
	// settles to zero after every episode.
	SpansOpenName = "bootes_plan_spans_open"
)

// StageSecondsBuckets are the fixed latency buckets, spanning microsecond
// feature passes to the minute-scale eigensolves of the largest matrices.
var StageSecondsBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60}

// StageTiming is one completed stage span.
type StageTiming struct {
	Stage   string
	Seconds float64
}

// Trace collects the stage spans of one planning call, in completion order.
// Attach one to a context with WithTrace to get a per-plan breakdown (the
// CLI's `analyze -stats` table); stage latencies are recorded into the
// registry's histograms whether or not a trace is attached.
type Trace struct {
	reg *Registry

	mu     sync.Mutex
	stages []StageTiming
}

// NewTrace returns a trace whose spans use (and record into) this registry.
func (r *Registry) NewTrace() *Trace { return &Trace{reg: r} }

func (t *Trace) add(stage string, seconds float64) {
	t.mu.Lock()
	t.stages = append(t.stages, StageTiming{Stage: stage, Seconds: seconds})
	t.mu.Unlock()
}

// Report returns the completed spans, in completion order.
func (t *Trace) Report() []StageTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]StageTiming(nil), t.stages...)
}

// Table renders the spans as an aligned stage-time table: known stages in
// pipeline order first (repeated observations of one stage are summed — a
// degraded plan may run eigensolve several times), unknown stages after,
// alphabetically, then a total line.
func (t *Trace) Table() string {
	totals := make(map[string]float64)
	counts := make(map[string]int)
	for _, s := range t.Report() {
		totals[s.Stage] += s.Seconds
		counts[s.Stage]++
	}
	order := append([]string(nil), StageOrder...)
	known := make(map[string]bool, len(StageOrder))
	for _, s := range StageOrder {
		known[s] = true
	}
	var extra []string
	for s := range totals {
		if !known[s] {
			extra = append(extra, s)
		}
	}
	sort.Strings(extra)
	order = append(order, extra...)

	var b strings.Builder
	b.WriteString("stage times:\n")
	total := 0.0
	for _, s := range order {
		sec, ok := totals[s]
		if !ok {
			continue
		}
		total += sec
		note := ""
		if counts[s] > 1 {
			note = fmt.Sprintf("  (%d runs)", counts[s])
		}
		fmt.Fprintf(&b, "  %-11s %10.6fs%s\n", s, sec, note)
	}
	fmt.Fprintf(&b, "  %-11s %10.6fs\n", "total", total)
	return b.String()
}

type ctxKey int

const (
	traceKey ctxKey = iota
	registryKey
)

// WithTrace attaches t to the context; stage spans started under it report
// into the trace as well as its registry.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// WithRegistry directs stage spans and pipeline counters recorded under this
// context into reg instead of Default (planserve scopes pipeline metrics to
// its per-server registry this way).
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey, reg)
}

// RegistryFrom resolves the registry for a context: the attached trace's
// registry, else the context's registry, else Default. Never nil.
func RegistryFrom(ctx context.Context) *Registry {
	if t := TraceFrom(ctx); t != nil && t.reg != nil {
		return t.reg
	}
	if r, _ := ctx.Value(registryKey).(*Registry); r != nil {
		return r
	}
	return Default()
}

// StartStage opens a stage span and returns its close function. The close is
// idempotent and must be called exactly when the stage ends (use defer so
// contained panics still close the span); the duration lands in the
// registry's bootes_plan_stage_seconds histogram and, when the context
// carries a trace, in the trace. The spans-open gauge tracks unclosed spans
// so quiescence is observable.
func StartStage(ctx context.Context, stage string) func() {
	t := TraceFrom(ctx)
	reg := RegistryFrom(ctx)
	open := reg.Gauge(SpansOpenName, "Stage spans currently open; zero when no plan is in flight.")
	open.Add(1)
	start := reg.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			d := reg.Now().Sub(start)
			if d < 0 {
				d = 0
			}
			sec := d.Seconds()
			reg.HistogramVec(StageSecondsName, "Wall-clock time per planning pipeline stage.",
				StageSecondsBuckets, "stage").With(stage).Observe(sec)
			open.Add(-1)
			if t != nil {
				t.add(stage, sec)
			}
		})
	}
}

// Pipeline outcome and degradation-ladder counters. These are package-level
// helpers rather than methods so the core pipeline can record without
// holding a registry: the context picks the destination.
const (
	plansName        = "bootes_plans_total"
	rungAttemptsName = "bootes_plan_rung_attempts_total"
	rungFailuresName = "bootes_plan_rung_failures_total"
)

// SimilarityModeName is the counter family recording which similarity tier
// (exact, bitset, approx, implicit) each spectral pass actually ran with
// (label: mode). Exported so serving processes can read it back out of their
// registries for /metrics assertions.
const SimilarityModeName = "bootes_similarity_mode_total"

// SimilarityModeUsed counts one spectral pass by the similarity tier it ran.
func SimilarityModeUsed(ctx context.Context, mode string) {
	RegistryFrom(ctx).CounterVec(SimilarityModeName,
		"Spectral passes by similarity construction tier.", "mode").With(mode).Inc()
}

// AutoKName is the counter family recording eigengap auto-k attempts by
// outcome (selected, fallback-ambiguous, fallback-implicit, degraded).
// Exported so serving processes can assert on it from their registries.
const AutoKName = "bootes_autok_total"

// AutoKOutcome counts one auto-k attempt by its outcome label.
func AutoKOutcome(ctx context.Context, outcome string) {
	RegistryFrom(ctx).CounterVec(AutoKName,
		"Eigengap auto-k attempts by outcome.", "outcome").With(outcome).Inc()
}

// Plan outcome labels.
const (
	OutcomeHealthy  = "healthy"  // reordered or gate-declined, no degradation
	OutcomeDegraded = "degraded" // served, but down the ladder
	OutcomeError    = "error"    // cancellation or a fault that surfaced
)

// PlanOutcome counts one finished planning call by outcome.
func PlanOutcome(ctx context.Context, outcome string) {
	RegistryFrom(ctx).CounterVec(plansName,
		"Planning pipeline calls by outcome.", "outcome").With(outcome).Inc()
}

// RungAttempt counts one degradation-ladder rung attempt.
func RungAttempt(ctx context.Context, rung string) {
	RegistryFrom(ctx).CounterVec(rungAttemptsName,
		"Degradation-ladder rung attempts.", "rung").With(rung).Inc()
}

// RungFailure counts one rung that failed or was skipped, descending the
// ladder. The identity floor never fails, so failures < attempts on a
// healthy process.
func RungFailure(ctx context.Context, rung string) {
	RegistryFrom(ctx).CounterVec(rungFailuresName,
		"Degradation-ladder rungs that failed or were skipped.", "rung").With(rung).Inc()
}

// VerifyViolationsName is the plan-verification violation counter mirrored
// from internal/planverify (labels: site, code). It lives on Default — the
// verifier's counters are process-wide by design.
const VerifyViolationsName = "bootes_verify_violations_total"

// VerifyViolation mirrors n verification violations at site with the given
// code into the Default registry.
func VerifyViolation(site, code string, n int64) {
	Default().CounterVec(VerifyViolationsName,
		"Plan verification violations by wiring site and violation code.",
		"site", "code").With(site, code).Add(n)
}

// Elapse is a test helper: a deterministic fake clock that advances by step
// on every reading, starting at base. Install with Registry.SetNow.
func Elapse(base time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	now := base
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(step)
		return now
	}
}
