package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func fakeReg() *Registry {
	r := NewRegistry()
	r.SetNow(Elapse(time.Unix(1700000000, 0), time.Millisecond))
	return r
}

func TestStartStageRecordsTraceAndHistogram(t *testing.T) {
	r := fakeReg()
	tr := r.NewTrace()
	ctx := WithTrace(context.Background(), tr)

	end := StartStage(ctx, StageEigensolve)
	if got := r.Gauge(SpansOpenName, "").Value(); got != 1 {
		t.Fatalf("spans open = %d, want 1 mid-stage", got)
	}
	end()
	end() // idempotent: double close must not double-record

	if got := r.Gauge(SpansOpenName, "").Value(); got != 0 {
		t.Fatalf("spans open = %d, want 0 after close", got)
	}
	rep := tr.Report()
	if len(rep) != 1 || rep[0].Stage != StageEigensolve {
		t.Fatalf("trace report = %+v", rep)
	}
	// Fake clock: one step between start and end = exactly 1ms.
	if rep[0].Seconds != 0.001 {
		t.Fatalf("stage seconds = %v, want 0.001", rep[0].Seconds)
	}
	h := r.HistogramVec(StageSecondsName, "", StageSecondsBuckets, "stage").With(StageEigensolve)
	if h.Count() != 1 || h.Sum() != 0.001 {
		t.Fatalf("histogram count=%d sum=%v, want 1/0.001", h.Count(), h.Sum())
	}
}

func TestStartStageWithoutTrace(t *testing.T) {
	r := fakeReg()
	ctx := WithRegistry(context.Background(), r)
	end := StartStage(ctx, StageKMeans)
	end()
	h := r.HistogramVec(StageSecondsName, "", StageSecondsBuckets, "stage").With(StageKMeans)
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1 (registry-only path)", h.Count())
	}
}

func TestRegistryFromPrecedence(t *testing.T) {
	ctxReg, traceReg := NewRegistry(), NewRegistry()
	ctx := WithRegistry(context.Background(), ctxReg)
	if RegistryFrom(ctx) != ctxReg {
		t.Fatal("context registry not resolved")
	}
	ctx = WithTrace(ctx, traceReg.NewTrace())
	if RegistryFrom(ctx) != traceReg {
		t.Fatal("trace registry must take precedence")
	}
	if RegistryFrom(context.Background()) != Default() {
		t.Fatal("bare context must resolve to Default")
	}
}

func TestTraceTable(t *testing.T) {
	r := fakeReg()
	tr := r.NewTrace()
	ctx := WithTrace(context.Background(), tr)
	// Out of pipeline order, with a repeat and an unknown stage: the table
	// must print canonical order, sum repeats, and append unknowns.
	StartStage(ctx, StageKMeans)()
	StartStage(ctx, StageFeatures)()
	StartStage(ctx, StageFeatures)()
	StartStage(ctx, "custom")()

	table := tr.Table()
	fi := strings.Index(table, "features")
	ki := strings.Index(table, "kmeans")
	ci := strings.Index(table, "custom")
	ti := strings.Index(table, "total")
	if !(fi >= 0 && fi < ki && ki < ci && ci < ti) {
		t.Fatalf("table order wrong:\n%s", table)
	}
	if !strings.Contains(table, "(2 runs)") {
		t.Fatalf("repeated stage not annotated:\n%s", table)
	}
	if !strings.Contains(table, "0.004000s") { // 4 spans × 1ms
		t.Fatalf("total not summed:\n%s", table)
	}
}

func TestPlanOutcomeAndRungCounters(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	PlanOutcome(ctx, OutcomeHealthy)
	PlanOutcome(ctx, OutcomeDegraded)
	PlanOutcome(ctx, OutcomeDegraded)
	RungAttempt(ctx, "requested")
	RungFailure(ctx, "requested")
	RungAttempt(ctx, "retry-loose")

	if got := r.CounterVec(plansName, "", "outcome").With(OutcomeDegraded).Value(); got != 2 {
		t.Errorf("degraded outcomes = %d, want 2", got)
	}
	if got := r.CounterVec(rungAttemptsName, "", "rung").With("requested").Value(); got != 1 {
		t.Errorf("requested attempts = %d, want 1", got)
	}
	if got := r.CounterVec(rungFailuresName, "", "rung").With("requested").Value(); got != 1 {
		t.Errorf("requested failures = %d, want 1", got)
	}
}

// TestAutoKOutcomeExpositionPinned pins the bootes_autok_total family's
// rendered shape across every outcome label the planner emits: name, help,
// type, and the label scheme must not drift (dashboards and the bootesd
// /metrics assertions key on these exact series).
func TestAutoKOutcomeExpositionPinned(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	AutoKOutcome(ctx, "selected")
	AutoKOutcome(ctx, "selected")
	AutoKOutcome(ctx, "fallback-ambiguous")
	AutoKOutcome(ctx, "fallback-implicit")
	AutoKOutcome(ctx, "degraded")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP bootes_autok_total Eigengap auto-k attempts by outcome.
# TYPE bootes_autok_total counter
bootes_autok_total{outcome="degraded"} 1
bootes_autok_total{outcome="fallback-ambiguous"} 1
bootes_autok_total{outcome="fallback-implicit"} 1
bootes_autok_total{outcome="selected"} 2
`
	if got := b.String(); got != want {
		t.Errorf("autok exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestVerifyViolationMirror(t *testing.T) {
	before := Default().CounterVec(VerifyViolationsName, "", "site", "code").
		With("test-site", "test-code").Value()
	VerifyViolation("test-site", "test-code", 3)
	after := Default().CounterVec(VerifyViolationsName, "", "site", "code").
		With("test-site", "test-code").Value()
	if after-before != 3 {
		t.Fatalf("verify mirror delta = %d, want 3", after-before)
	}
}
