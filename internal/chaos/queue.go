package chaos

// Queue and tenant-fairness chaos: scenarioQueueCrash kills the durable async
// job queue at a randomized journal crash point and asserts crash-exactly-once
// recovery; scenarioTenantStorm floods one tenant through the serving stack's
// quota layer and asserts the other tenants' admission SLO holds. Both are
// timing-free: the queue scenario gates on the fault actually firing (not on
// sleeps), and the storm uses pure-burst buckets (no refill clock).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"bootes/internal/faultinject"
	"bootes/internal/leakcheck"
	"bootes/internal/obs"
	"bootes/internal/plancache"
	"bootes/internal/planqueue"
	"bootes/internal/planserve"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// reversalResult is the stub planner outcome for queue/tenant scenarios: a
// structurally valid, verifiably healthy plan (row reversal) that isolates
// the scenario's invariants from pipeline nondeterminism.
func reversalResult(m *sparse.CSR) *reorder.Result {
	p := make(sparse.Permutation, m.Rows)
	for i := range p {
		p[i] = int32(m.Rows - 1 - i)
	}
	return &reorder.Result{Perm: p, Reordered: true, Extra: map[string]float64{"k": 8}}
}

// scenarioQueueCrash enqueues a batch of jobs on the durable queue, arms one
// journal crash point (half-written append or skipped fsync), lets the first
// life run until it drains or wedges on the injected crash, then kills it and
// restarts from the journal. Invariants:
//
//   - every acked job (Enqueue returned success) survives the crash and
//     reaches done in the second life — a torn tail may only eat records the
//     client was never acked for;
//   - crash-exactly-once: a job observed done before the crash never runs
//     again (its completion is re-discovered through the plan cache on
//     replay), and a job caught queued or mid-run by the crash runs at most
//     once more — execution is at-least-once, completion exactly-once;
//   - a half-written append is detected as exactly one torn tail on reopen.
func scenarioQueueCrash(e *episode) {
	cache, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("queue-crash: open cache: %v", err)
		return
	}
	qdir := e.dir + ".queue"

	var mu sync.Mutex
	runs := map[string]int{}
	run := func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		mu.Lock()
		runs[plancache.KeyCSR(m)]++
		mu.Unlock()
		return reversalResult(m), nil
	}
	open := func(c *plancache.Cache) (*planqueue.Queue, *obs.Registry, error) {
		reg := obs.NewRegistry()
		q, err := planqueue.Open(planqueue.Config{
			Dir:          qdir,
			Run:          run,
			Cache:        c,
			Workers:      1 + e.rng.Intn(3),
			RetryBackoff: time.Millisecond,
			Metrics:      reg,
			Seed:         e.rng.Int63(),
		})
		return q, reg, err
	}

	q1, _, err := open(cache)
	if err != nil {
		e.violatef("queue-crash: open queue: %v", err)
		return
	}
	q1.Start()

	jobs := 2 + e.rng.Intn(4)
	points := []string{faultinject.JournalAppendWrite, faultinject.JournalAppendFsync}
	point := points[e.rng.Intn(len(points))]
	e.rep.Faults[point]++
	fired := make(chan struct{})
	// The journal appends roughly twice per job (ack + terminal record), so
	// this window can hit an enqueue ack, a completion, or nothing at all.
	if err := faultinject.Arm(point,
		faultinject.After(e.rng.Intn(2*jobs+1)),
		faultinject.OnFire(func() { close(fired) })); err != nil {
		e.violatef("queue-crash: arming %s: %v", point, err)
		return
	}

	tenants := []string{"alpha", "beta", "gamma"}
	type ack struct{ id, key string }
	var acked []ack
	for i := 0; i < jobs; i++ {
		jb, _, err := q1.Enqueue(tenants[e.rng.Intn(len(tenants))], e.matrix(), "")
		if err != nil {
			// The ack append crashed (or the queue wedged): the client never
			// got a job id, so this job owes no durability.
			break
		}
		acked = append(acked, ack{jb.ID, jb.Key})
	}

	// First life: run until it drains or the injected crash wedges it. The
	// fired channel makes the wedged branch prompt — no deadline heuristics.
	idleCtx, idleCancel := context.WithCancel(context.Background())
	idle := make(chan struct{})
	go func() { _ = q1.WaitIdle(idleCtx); close(idle) }()
	select {
	case <-fired:
	case <-idle:
	case <-time.After(10 * time.Second):
		e.violatef("queue-crash: first life neither drained nor crashed")
	}
	q1.Kill()
	idleCancel()
	<-idle
	crashed := false
	select {
	case <-fired:
		crashed = true
	default:
	}
	faultinject.Reset()

	// Snapshot the first life: which keys already ran (Kill joined the
	// workers, so the counters are final), and which jobs the client could
	// have observed as done.
	runsBefore := map[string]int{}
	mu.Lock()
	for k, n := range runs {
		runsBefore[k] = n
	}
	mu.Unlock()
	doneBefore := map[string]bool{}
	for _, a := range acked {
		if jb, ok := q1.Get(a.id); ok && jb.State == planqueue.StateDone {
			doneBefore[a.key] = true
		}
	}

	// Second life: replay the journal against a reopened cache, drain, and
	// hold the queue to the recovery contract.
	cache2, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("queue-crash: reopen cache: %v", err)
		return
	}
	q2, reg2, err := open(cache2)
	if err != nil {
		e.violatef("queue-crash: reopen after crash at %s: %v", point, err)
		return
	}
	if crashed && point == faultinject.JournalAppendWrite {
		if tt := q2.Stats().TornTails; tt != 1 {
			e.violatef("queue-crash: half-written append left %d torn tails, want 1", tt)
		}
	}
	q2.Start()
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := q2.WaitIdle(wctx); err != nil {
		e.violatef("queue-crash: second life never drained: %v", err)
	}
	for _, a := range acked {
		jb, ok := q2.Get(a.id)
		if !ok {
			e.violatef("queue-crash: acked job %s lost across the crash (point %s)", a.id, point)
			continue
		}
		if jb.State != planqueue.StateDone {
			e.violatef("queue-crash: acked job %s ended %s (%q), want done", a.id, jb.State, jb.Reason)
		}
	}
	mu.Lock()
	for _, a := range acked {
		n := runs[a.key]
		switch {
		case n == 0:
			e.violatef("queue-crash: key %.12s reached done without ever running", a.key)
		case doneBefore[a.key] && n != runsBefore[a.key]:
			e.violatef("queue-crash: key %.12s completed before the crash yet re-ran after restart (%d → %d runs)",
				a.key, runsBefore[a.key], n)
		case n-runsBefore[a.key] > 1:
			e.violatef("queue-crash: key %.12s ran %d times in the second life, want at most one",
				a.key, n-runsBefore[a.key])
		case runsBefore[a.key] > 1:
			e.violatef("queue-crash: key %.12s ran %d times in the first life, want at most one",
				a.key, runsBefore[a.key])
		}
	}
	mu.Unlock()
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := q2.Stop(sctx); err != nil {
		e.violatef("queue-crash: drain on stop: %v", err)
	}
	e.checkObs("queue-crash registry", reg2)
}

// scenarioTenantStorm gives one tenant a tiny pure-burst quota and floods it
// past that budget while two bystander tenants keep submitting. The SLO under
// test: a flooding tenant is shed with 429 + Retry-After once its own budget
// is gone, and bystanders are never shed — quota damage does not spread.
// Rate is zero everywhere (no refill), so the outcome is exact and
// clock-independent: the flooder gets precisely its burst of admissions.
func scenarioTenantStorm(e *episode) {
	reg := obs.NewRegistry()
	burst := 1 + e.rng.Intn(3)
	flood := burst + 3 + e.rng.Intn(5)
	plan := func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		return reversalResult(m), nil
	}
	srv, err := planserve.New(planserve.Config{
		Plan:            plan,
		MaxInFlight:     2,
		MaxQueue:        4,
		DefaultDeadline: 5 * time.Second,
		Tenants: planserve.TenantConfig{Overrides: map[string]planserve.TenantLimit{
			"flooder":  {Burst: burst},
			"victim-a": {Burst: 100},
			"victim-b": {Burst: 100},
		}},
		Seed:    e.rng.Int63(),
		Metrics: reg,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		e.violatef("tenant-storm: %v", err)
		return
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m := e.matrix()
	var buf strings.Builder
	_ = sparse.WriteMatrixMarket(&buf, m)
	body := buf.String()
	send := func(tenant string) (int, string) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan?perm=1", strings.NewReader(body))
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1, ""
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			var pr planserve.PlanResponse
			if err := json.Unmarshal(b, &pr); err != nil {
				e.violatef("tenant-storm: unparseable 200 body: %v", err)
			} else {
				e.checkPlanShape("tenant-storm", m.Rows, sparse.Permutation(pr.Perm), pr.K,
					pr.Reordered, pr.Degraded, pr.DegradedReason)
			}
		}
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	// Interleave the flood with bystander traffic in a seeded random order;
	// requests are sequential, so a 429 can only come from the quota layer,
	// never from admission racing.
	perVictim := 2 + e.rng.Intn(2)
	victims := []string{"victim-a", "victim-b"}
	var specs []string
	for i := 0; i < flood; i++ {
		specs = append(specs, "flooder")
	}
	for _, v := range victims {
		for i := 0; i < perVictim; i++ {
			specs = append(specs, v)
		}
	}
	e.rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	okCount := map[string]int{}
	shed := map[string]int{}
	for _, tenant := range specs {
		code, retryAfter := send(tenant)
		switch code {
		case http.StatusOK:
			okCount[tenant]++
		case http.StatusTooManyRequests:
			shed[tenant]++
			if retryAfter == "" {
				e.violatef("tenant-storm: 429 for %s without Retry-After", tenant)
			}
		default:
			e.violatef("tenant-storm: unexpected status %d for %s", code, tenant)
		}
	}
	for _, v := range victims {
		if shed[v] != 0 {
			e.violatef("tenant-storm: bystander %s shed %d times by the flooder's storm", v, shed[v])
		}
		if okCount[v] != perVictim {
			e.violatef("tenant-storm: bystander %s served %d/%d requests", v, okCount[v], perVictim)
		}
	}
	if okCount["flooder"] != burst {
		e.violatef("tenant-storm: flooder admitted %d times, want exactly its burst %d", okCount["flooder"], burst)
	}
	if shed["flooder"] != flood-burst {
		e.violatef("tenant-storm: flooder shed %d times, want %d", shed["flooder"], flood-burst)
	}
	if got := srv.Stats().TenantShed; got != int64(flood-burst) {
		e.violatef("tenant-storm: TenantShed counter reads %d, want %d", got, flood-burst)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		e.violatef("tenant-storm: drain failed: %v", err)
	}
	if err := leakcheck.SettleZero("admission slots", func() int64 {
		return int64(srv.SlotsInUse())
	}); err != nil {
		e.violatef("tenant-storm: %v", err)
	}
	e.checkObs("tenant-storm registry", reg)
}
