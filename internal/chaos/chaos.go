// Package chaos is the deterministic fault-injection harness for the Bootes
// serving stack. A Run executes N seeded episodes, each of which picks a
// scenario (direct planning, auto-k planning, HTTP serving, cache byte
// corruption, mid-write crashes, durable-queue crash recovery, tenant quota
// storms), arms a
// randomized-but-reproducible subset of the faultinject
// registry, drives the real pipeline end to end, and then asserts the global
// invariants the rest of the codebase promises:
//
//   - no panic escapes any layer;
//   - no goroutine with a bootes/ frame outlives its episode, the shared
//     worker pool's extra-worker gauge returns to zero, and every admission
//     semaphore slot is released (internal/leakcheck);
//   - every served plan is structurally valid or explicitly marked degraded
//     with a reason — never silently wrong;
//   - the plan cache never holds a corrupt or degraded entry: damage is
//     quarantined, verification rejections never reach disk.
//
// Determinism: every choice an episode makes (scenario, matrix, fault points,
// fault options) derives from a per-episode rand.Rand seeded by
// (Config.Seed, episode index), and the full schedule is folded into
// Report.ScheduleDigest — two Runs with the same seed and episode count make
// identical choices, which the test suite asserts. Wall-clock outcomes
// (whether a budget expired before or after a phase) may vary, but the
// invariants above must hold on every schedule, so a red Run is always a real
// bug, reproducible from its seed.
package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bootes"
	"bootes/internal/faultinject"
	"bootes/internal/leakcheck"
	"bootes/internal/obs"
	"bootes/internal/parallel"
	"bootes/internal/plancache"
	"bootes/internal/planserve"
	"bootes/internal/planverify"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// Config parameterizes a chaos run.
type Config struct {
	// Seed determines the entire schedule. Two runs with equal Seed and
	// Episodes make identical choices.
	Seed int64
	// Episodes is the number of episodes to run (default 100).
	Episodes int
	// Dir is the scratch root for per-episode cache directories (required).
	Dir string
	// Only, when non-empty, restricts the run to the named scenario —
	// the dedicated soaks (fleet-partition, queue-crash) drill one scenario
	// far past its share of a mixed schedule.
	Only string
	// Logf sinks per-episode progress; nil is silent.
	Logf func(format string, args ...any)
}

// Report is the outcome of a Run. Violations empty means every invariant
// held in every episode.
type Report struct {
	// Episodes is the number of episodes executed.
	Episodes int
	// Scenarios / Faults tally how often each scenario ran and each fault
	// point was armed — a coverage check, not an invariant.
	Scenarios map[string]int
	Faults    map[string]int
	// Healthy / DegradedPlans / Refused tally plan outcomes across all
	// episodes: structurally sound plans, plans marked degraded, and
	// requests answered with a non-200 (shed, timeout, cancelled).
	Healthy, DegradedPlans, Refused int
	// Quarantined counts cache entries set aside as corrupt across all
	// episodes (the byte-flip scenario's expected path).
	Quarantined int64
	// Violations holds every invariant failure, labeled by episode. Empty
	// means the run passed.
	Violations []string
	// ScheduleDigest is a hash of every scheduling choice; equal seeds must
	// produce equal digests.
	ScheduleDigest string
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Run executes the chaos schedule. The returned error covers harness-level
// failures (unusable scratch dir); invariant violations are reported in the
// Report, not as an error.
func Run(cfg Config) (*Report, error) {
	if cfg.Episodes <= 0 {
		cfg.Episodes = 100
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Config.Dir is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	faultinject.Reset()
	defer faultinject.Reset()

	pool := scenarios
	if cfg.Only != "" {
		pool = nil
		for _, sc := range scenarios {
			if sc.name == cfg.Only {
				pool = append(pool, sc)
			}
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("chaos: unknown scenario %q", cfg.Only)
		}
	}

	rep := &Report{
		Scenarios: make(map[string]int),
		Faults:    make(map[string]int),
	}
	digest := sha256.New()
	for i := 0; i < cfg.Episodes; i++ {
		// splitmix-style stream separation: nearby episode indices get
		// unrelated streams.
		seed := cfg.Seed ^ (int64(i)+1)*0x9E3779B97F4A7C1 // splitmix-ish odd stride
		ep := &episode{
			index: i,
			rng:   rand.New(rand.NewSource(seed)),
			dir:   filepath.Join(cfg.Dir, fmt.Sprintf("ep%05d", i)),
			rep:   rep,
		}
		sc := pool[ep.rng.Intn(len(pool))]
		rep.Scenarios[sc.name]++
		snap := leakcheck.Take()

		schedule := ep.planFaults(sc)
		fmt.Fprintf(digest, "ep%d %s %s\n", i, sc.name, schedule)
		cfg.Logf("chaos: episode %d: %s [%s]", i, sc.name, schedule)

		runGuarded(ep, sc)
		faultinject.Reset()

		// Global invariants, after every episode regardless of scenario.
		if err := snap.Check(); err != nil {
			ep.violatef("goroutine leak: %v", err)
		}
		if err := leakcheck.SettleZero("parallel extras", parallel.Extras); err != nil {
			ep.violatef("worker pool not quiescent: %v", err)
		}
		ep.checkObs("default registry", obs.Default())
		ep.sweepCache()
		rep.Episodes++
	}
	rep.ScheduleDigest = hex.EncodeToString(digest.Sum(nil))
	sort.Strings(rep.Violations)
	return rep, nil
}

// episode carries one episode's deterministic randomness and scratch state.
type episode struct {
	index int
	rng   *rand.Rand
	dir   string
	rep   *Report

	// armed is the fault schedule planFaults chose; scenarios that manage
	// their own faults (cache-crash) leave it empty.
	armed []armedFault
	// cancel, when non-nil, is invoked by a SweepCancel firing — the
	// mid-plan cancellation corruption point.
	cancel context.CancelFunc
	// stallBudget is non-zero when WorkerStall is armed: a stalled worker
	// only exits via cancellation, so every pipeline run must carry a
	// wall-clock budget.
	stallBudget time.Duration
	// seenKeys dedupes matrix() draws within the episode. Some archetype
	// patterns are seed-independent (a banded matrix is fully determined by
	// its shape and density), so independent draws can collide on the cache
	// key — and a duplicate write is a pure cache hit, which breaks
	// scenario accounting that counts hints or computes per drawn matrix.
	seenKeys map[string]bool
}

type armedFault struct {
	point string
	after int
	times int // -1 = always
}

func (e *episode) violatef(format string, args ...any) {
	e.rep.Violations = append(e.rep.Violations,
		fmt.Sprintf("episode %d: %s", e.index, fmt.Sprintf(format, args...)))
}

// pipelineFaults are the points planFaults may arm for scenarios that run the
// real pipeline. The atomicio crash points are excluded here — they abort a
// cache write mid-protocol and are exercised by the dedicated cache-crash
// scenario, which also verifies recovery.
var pipelineFaults = []string{
	faultinject.EigenNoConverge,
	faultinject.AllocCapBreach,
	faultinject.WorkerStall,
	faultinject.SweepCancel,
	faultinject.BreakerProbeFail,
	faultinject.PlanCorrupt,
	faultinject.LSHSparsifyFail,
}

// planFaults picks this episode's fault schedule (0–2 points with randomized
// trigger options) and returns its canonical string for the schedule digest.
// Arming happens later, inside the scenario, so OnFire hooks can close over
// per-episode state (the cancellation context).
func (e *episode) planFaults(sc scenario) string {
	e.armed = nil
	e.stallBudget = 0
	if !sc.pipeline {
		return "none"
	}
	n := e.rng.Intn(3) // 0, 1, or 2 simultaneous faults
	picked := e.rng.Perm(len(pipelineFaults))[:n]
	sort.Ints(picked) // canonical order for the digest
	parts := make([]string, 0, n)
	for _, pi := range picked {
		af := armedFault{point: pipelineFaults[pi], after: e.rng.Intn(3), times: 1 + e.rng.Intn(2)}
		if e.rng.Intn(4) == 0 {
			af.times = -1
		}
		if af.point == faultinject.WorkerStall {
			e.stallBudget = time.Duration(100+e.rng.Intn(200)) * time.Millisecond
		}
		e.armed = append(e.armed, af)
		e.rep.Faults[af.point]++
		parts = append(parts, fmt.Sprintf("%s/after=%d/times=%d", af.point, af.after, af.times))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// armAll arms the planned faults. SweepCancel gets an OnFire hook that
// cancels the episode's context — the mid-plan-cancellation corruption point.
func (e *episode) armAll() {
	for _, af := range e.armed {
		opts := []faultinject.Option{faultinject.After(af.after)}
		if af.times < 0 {
			opts = append(opts, faultinject.Always())
		} else {
			opts = append(opts, faultinject.Times(af.times))
		}
		if af.point == faultinject.SweepCancel && e.cancel != nil {
			cancel := e.cancel
			opts = append(opts, faultinject.OnFire(func() { cancel() }))
		}
		if err := faultinject.Arm(af.point, opts...); err != nil {
			e.violatef("arming %s: %v", af.point, err)
		}
	}
}

// matrix generates this episode's workload deterministically.
// matrix draws an episode-unique random matrix: draws whose cache key
// collides with an earlier draw are discarded and redrawn (deterministically
// — the redraw consumes the episode rng), so every scenario can assume its
// drawn working set has distinct plan identities.
func (e *episode) matrix() *sparse.CSR {
	if e.seenKeys == nil {
		e.seenKeys = make(map[string]bool)
	}
	for {
		m := e.drawMatrix()
		if key := plancache.KeyCSR(m); !e.seenKeys[key] {
			e.seenKeys[key] = true
			return m
		}
	}
}

func (e *episode) drawMatrix() *sparse.CSR {
	archetypes := []workloads.Archetype{
		workloads.ArchScrambledBlock,
		workloads.ArchPowerLaw,
		workloads.ArchBanded,
		workloads.ArchRandom,
	}
	a := archetypes[e.rng.Intn(len(archetypes))]
	rows := 24 + e.rng.Intn(41) // 24..64: big enough to cluster, fast enough to soak
	return workloads.Generate(a, workloads.Params{
		Rows: rows, Cols: rows,
		Density: 0.05 + 0.05*e.rng.Float64(),
		Seed:    e.rng.Int63(),
		Groups:  2 + e.rng.Intn(3),
	})
}

// randomPerm draws a random bijection on [0, n).
func (e *episode) randomPerm(n int) sparse.Permutation {
	p := make(sparse.Permutation, n)
	for i, v := range e.rng.Perm(n) {
		p[i] = int32(v)
	}
	return p
}

// budget is the pipeline wall-clock budget for this episode: tight when a
// worker stall is armed (a stalled worker only exits via cancellation),
// generous otherwise.
func (e *episode) budget() time.Duration {
	if e.stallBudget > 0 {
		return e.stallBudget
	}
	return 5 * time.Second
}

// checkPlanShape asserts the valid-or-marked-degraded invariant on a plan's
// fields and tallies the outcome.
func (e *episode) checkPlanShape(where string, rows int, perm sparse.Permutation, k int, reordered, degraded bool, reason string) {
	vs := planverify.CheckPlan(rows, perm, k, reordered, degraded, reason, nil)
	if len(vs) > 0 {
		e.violatef("%s: invalid plan served: %v", where, vs)
		return
	}
	if degraded {
		e.rep.DegradedPlans++
	} else {
		e.rep.Healthy++
	}
}

// checkObs asserts the observability invariants on a registry after an
// episode: the spans-open gauge settles back to zero (every stage span closed
// despite injected faults, contained panics, and cancellations), no counter
// or gauge has gone negative, and every histogram series is self-consistent —
// bucket counts sum to the series count, and a zero count implies a zero sum.
func (e *episode) checkObs(where string, reg *obs.Registry) {
	if err := leakcheck.SettleZero(where+" spans open", func() int64 {
		return reg.Gauge(obs.SpansOpenName, "").Value()
	}); err != nil {
		e.violatef("obs: %v", err)
	}
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Series {
			label := fam.Name
			if s.Labels != "" {
				label += "{" + s.Labels + "}"
			}
			switch fam.Type {
			case obs.TypeCounter, obs.TypeGauge:
				if s.Value < 0 {
					e.violatef("obs: %s: %s is negative: %d", where, label, s.Value)
				}
			case obs.TypeHistogram:
				var n uint64
				for _, c := range s.BucketCounts {
					n += c
				}
				if n != s.Count {
					e.violatef("obs: %s: %s bucket counts sum to %d, count is %d", where, label, n, s.Count)
				}
				if s.Count == 0 && s.Sum != 0 {
					e.violatef("obs: %s: %s has sum %g with zero observations", where, label, s.Sum)
				}
				if s.Sum < 0 {
					e.violatef("obs: %s: %s has negative sum %g", where, label, s.Sum)
				}
			}
		}
	}
}

// sweepCache reopens every cache directory the episode used and asserts no
// corrupt or degraded entry survived: every loadable entry passes the full
// field check, and anything undecodable was quarantined, not served.
func (e *episode) sweepCache() {
	if _, err := os.Stat(e.dir); os.IsNotExist(err) {
		return
	}
	c, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("cache sweep: reopen failed: %v", err)
		return
	}
	e.rep.Quarantined += c.Stats().Quarantined
	for _, key := range c.Keys() {
		entry, ok := c.Get(key)
		if !ok {
			continue
		}
		if vs := planverify.CheckEntryFields(entry.Perm, entry.K, entry.Reordered, entry.Degraded, entry.DegradedReason); len(vs) > 0 {
			e.violatef("cache sweep: entry %.12s violates invariants: %v", key, vs)
		}
	}
}

// runGuarded executes one scenario under a panic guard: no episode may crash
// the harness, and an escaped panic is itself an invariant violation.
func runGuarded(e *episode, sc scenario) {
	defer func() {
		if r := recover(); r != nil {
			e.violatef("%s: panic escaped: %v", sc.name, r)
		}
	}()
	sc.run(e)
}

type scenario struct {
	name string
	// pipeline scenarios run the real planning pipeline and accept the
	// shared fault schedule; the others manage faults themselves.
	pipeline bool
	run      func(*episode)
}

var scenarios = []scenario{
	{"plan-direct", true, scenarioPlanDirect},
	{"plan-autok", true, scenarioPlanAutoK},
	{"plan-approx", false, scenarioPlanApprox},
	{"serve-http", true, scenarioServeHTTP},
	{"cache-bitflip", false, scenarioCacheBitFlip},
	{"cache-crash", false, scenarioCacheCrash},
	{"queue-crash", false, scenarioQueueCrash},
	{"tenant-storm", false, scenarioTenantStorm},
	{"fleet-partition", false, scenarioFleetPartition},
	{"fleet-heal", false, scenarioFleetHeal},
}

// scenarioPlanDirect drives bootes.PlanContext (verification always on)
// against the persistent cache, twice — the second call exercises the hit
// path under whatever faults remain armed.
func scenarioPlanDirect(e *episode) {
	m := e.matrix()
	cache, err := bootes.OpenPlanCache(e.dir)
	if err != nil {
		e.violatef("plan-direct: open cache: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.cancel = cancel
	e.armAll()
	opts := &bootes.Options{
		Seed:   e.rng.Int63(),
		Cache:  cache,
		Budget: bootes.Budget{MaxWallClock: e.budget()},
	}
	for call := 0; call < 2; call++ {
		plan, err := bootes.PlanContext(ctx, m, opts)
		if err != nil {
			// Only genuine cancellation may surface as an error; budgets and
			// injected faults must degrade instead.
			if ctx.Err() == nil {
				e.violatef("plan-direct: error without cancellation: %v", err)
			} else {
				e.rep.Refused++
			}
			return
		}
		e.checkPlanShape("plan-direct", m.Rows, plan.Perm, plan.K, plan.Reordered, plan.Degraded, plan.DegradedReason)
	}
}

// scenarioPlanAutoK drives an auto-k plan request (eigengap selection over
// the refined similarity) under the shared 0–2-point fault schedule. The
// matrix always has planted cluster structure, so a spectral reorder that
// returns the identity permutation is impossible except through the
// degradation ladder's identity floor — which makes the sharpest auto-k
// invariant checkable: every response is a valid plan or a marked-degraded
// plan, and an identity plan must carry the ladder-exhausted reason. The
// second call exercises the cache-hit path; the post-episode cache sweep
// asserts no auto-k-keyed degraded entry was persisted.
func scenarioPlanAutoK(e *episode) {
	archetypes := []workloads.Archetype{
		workloads.ArchScrambledBlock,
		workloads.ArchManySmallClusters,
		workloads.ArchNoisyBlock64,
	}
	rows := 24 + e.rng.Intn(41)
	m := workloads.Generate(archetypes[e.rng.Intn(len(archetypes))], workloads.Params{
		Rows: rows, Cols: rows,
		Density: 0.05 + 0.05*e.rng.Float64(),
		Seed:    e.rng.Int63(),
		Groups:  2 + e.rng.Intn(3),
	})
	cache, err := bootes.OpenPlanCache(e.dir)
	if err != nil {
		e.violatef("plan-autok: open cache: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.cancel = cancel
	e.armAll()
	opts := &bootes.Options{
		Seed:         e.rng.Int63(),
		AutoK:        true,
		ForceReorder: true,
		Cache:        cache,
		Budget:       bootes.Budget{MaxWallClock: e.budget()},
	}
	for call := 0; call < 2; call++ {
		plan, err := bootes.PlanContext(ctx, m, opts)
		if err != nil {
			if ctx.Err() == nil {
				e.violatef("plan-autok: error without cancellation: %v", err)
			} else {
				e.rep.Refused++
			}
			return
		}
		e.checkPlanShape("plan-autok", m.Rows, plan.Perm, plan.K, plan.Reordered, plan.Degraded, plan.DegradedReason)
		if plan.Perm.IsIdentity() &&
			!(plan.Degraded && strings.Contains(plan.DegradedReason, "identity")) {
			e.violatef("plan-autok: identity plan without ladder exhaustion (degraded=%v reason=%q)",
				plan.Degraded, plan.DegradedReason)
		}
	}
}

// scenarioPlanApprox permanently arms the sparsifier fault point and forces
// the approximate similarity tier: the pipeline must walk the degradation
// ladder to the implicit rung — a real reordering naming the sparsifier
// failure, never the identity floor. It manages its own fault (the shared
// schedule could arm points that push degradation past the implicit rung,
// which would turn this scenario's sharpest assertion into a coin flip).
func scenarioPlanApprox(e *episode) {
	m := e.matrix()
	faultinject.Arm(faultinject.LSHSparsifyFail, faultinject.Always())
	e.rep.Faults[faultinject.LSHSparsifyFail]++
	plan, err := bootes.PlanContext(context.Background(), m, &bootes.Options{
		Seed:         e.rng.Int63(),
		ForceReorder: true,
		ForceK:       4,
		Similarity:   bootes.SimApprox,
	})
	if err != nil {
		e.violatef("plan-approx: error instead of degradation: %v", err)
		return
	}
	if !plan.Degraded {
		e.violatef("plan-approx: failing sparsifier did not mark the plan Degraded")
	}
	if !strings.Contains(plan.DegradedReason, "sparsify") {
		e.violatef("plan-approx: reason %q does not name the sparsifier fault", plan.DegradedReason)
	}
	if strings.Contains(plan.DegradedReason, "fell back to identity") {
		e.violatef("plan-approx: fell to the identity floor: %q", plan.DegradedReason)
	}
	if plan.SimilarityMode != "implicit" {
		e.violatef("plan-approx: degraded to tier %q, want implicit", plan.SimilarityMode)
	}
	e.checkPlanShape("plan-approx", m.Rows, plan.Perm, plan.K, plan.Reordered, plan.Degraded, plan.DegradedReason)
}

// scenarioServeHTTP stands up the full serving stack (admission, retries,
// breaker, cache) on an httptest server and fires a burst of requests, some
// concurrent, asserting every response is a valid plan, a marked-degraded
// plan, or an honest refusal — and that shutdown drains every slot.
func scenarioServeHTTP(e *episode) {
	cache, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("serve-http: open cache: %v", err)
		return
	}
	baseSeed := e.rng.Int63()
	plan := func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		opts := &bootes.Options{Seed: baseSeed + int64(attempt)}
		if dl, ok := ctx.Deadline(); ok {
			opts.Budget.MaxWallClock = time.Until(dl)
		}
		p, err := bootes.PlanContext(ctx, m, opts)
		if err != nil {
			return nil, err
		}
		return &reorder.Result{
			Perm: p.Perm, Reordered: p.Reordered,
			Degraded: p.Degraded, DegradedReason: p.DegradedReason,
			Extra: map[string]float64{"k": float64(p.K)},
		}, nil
	}
	reg := obs.NewRegistry()
	srv, err := planserve.New(planserve.Config{
		Plan:            plan,
		Cache:           cache,
		MaxInFlight:     1 + e.rng.Intn(3),
		MaxQueue:        1 + e.rng.Intn(3),
		DefaultDeadline: e.budget(),
		MaxRetries:      1,
		RetryBackoff:    time.Millisecond,
		Breaker:         planserve.BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond},
		Seed:            e.rng.Int63(),
		Metrics:         reg,
		Logf:            func(string, ...any) {},
	})
	if err != nil {
		e.violatef("serve-http: %v", err)
		return
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.cancel = cancel
	e.armAll()

	matrices := make([]*sparse.CSR, 1+e.rng.Intn(2))
	for i := range matrices {
		matrices[i] = e.matrix()
	}
	requests := 2 + e.rng.Intn(3)
	type outcome struct {
		code int
		body []byte
		rows int
	}
	results := make(chan outcome, requests)
	for i := 0; i < requests; i++ {
		m := matrices[e.rng.Intn(len(matrices))]
		go func(m *sparse.CSR) {
			var buf strings.Builder
			_ = sparse.WriteMatrixMarket(&buf, m)
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/plan?perm=1", strings.NewReader(buf.String()))
			req.Header.Set("X-Deadline", e.budget().String())
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			results <- outcome{code: resp.StatusCode, body: body, rows: m.Rows}
		}(m)
	}
	for i := 0; i < requests; i++ {
		out := <-results
		switch out.code {
		case http.StatusOK:
			var pr planserve.PlanResponse
			if err := json.Unmarshal(out.body, &pr); err != nil {
				e.violatef("serve-http: unparseable 200 body: %v", err)
				continue
			}
			e.checkPlanShape("serve-http", out.rows, sparse.Permutation(pr.Perm), pr.K,
				pr.Reordered, pr.Degraded, pr.DegradedReason)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, 499, -1:
			e.rep.Refused++ // honest refusal under injected load/faults
		default:
			e.violatef("serve-http: unexpected status %d: %.200s", out.code, out.body)
		}
	}

	faultinject.Reset() // a parked WorkerStall must not outlive the episode
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		e.violatef("serve-http: drain failed: %v", err)
	}
	if err := leakcheck.SettleZero("admission slots", func() int64 {
		return int64(srv.SlotsInUse())
	}); err != nil {
		e.violatef("serve-http: %v", err)
	}
	// The drained server's registry must also be quiescent and consistent.
	e.checkObs("serve-http registry", reg)
}

// scenarioCacheBitFlip plants healthy entries, flips one random bit in one
// random entry file (simulated disk rot), and asserts the damage is
// quarantined on reopen — detected by CRC/structure, never served — while
// undamaged entries survive.
func scenarioCacheBitFlip(e *episode) {
	c, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("cache-bitflip: %v", err)
		return
	}
	entries := 1 + e.rng.Intn(3)
	for i := 0; i < entries; i++ {
		m := e.matrix()
		p32 := e.randomPerm(m.Rows)
		reordered := !p32.IsIdentity()
		k := 0
		if reordered {
			k = []int{2, 4, 8, 16, 32}[e.rng.Intn(5)]
		}
		err := c.Put(&plancache.Entry{Key: plancache.KeyCSR(m), Perm: p32, Reordered: reordered, K: k})
		if err != nil {
			e.violatef("cache-bitflip: healthy Put rejected: %v", err)
			return
		}
	}
	names, err := os.ReadDir(e.dir)
	if err != nil || len(names) == 0 {
		e.violatef("cache-bitflip: no entry files on disk (%v)", err)
		return
	}
	victim := filepath.Join(e.dir, names[e.rng.Intn(len(names))].Name())
	data, err := os.ReadFile(victim)
	if err != nil {
		e.violatef("cache-bitflip: %v", err)
		return
	}
	data[e.rng.Intn(len(data))] ^= 1 << e.rng.Intn(8)
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		e.violatef("cache-bitflip: %v", err)
		return
	}
	// A "restart" must detect the rot and keep serving the survivors.
	c2, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("cache-bitflip: corrupted entry made Open fatal: %v", err)
		return
	}
	q := c2.Stats().Quarantined
	e.rep.Quarantined += q
	if q != 1 {
		e.violatef("cache-bitflip: quarantined = %d, want 1", q)
	}
	if got := c2.Len(); got != entries-1 {
		e.violatef("cache-bitflip: %d entries survive, want %d", got, entries-1)
	}
}

// scenarioCacheCrash kills a cache write at a random atomicio protocol step
// and asserts the all-or-nothing property: after "restart", the entry is
// fully present or fully absent, no temp files linger, and the write can
// simply be retried.
func scenarioCacheCrash(e *episode) {
	points := []string{
		faultinject.CacheWriteTemp,
		faultinject.CacheWriteFsync,
		faultinject.CacheWriteRename,
	}
	point := points[e.rng.Intn(len(points))]
	e.rep.Faults[point]++
	c, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("cache-crash: %v", err)
		return
	}
	m := e.matrix()
	p32 := e.randomPerm(m.Rows)
	entry := &plancache.Entry{Key: plancache.KeyCSR(m), Perm: p32, Reordered: !p32.IsIdentity()}
	if entry.Reordered {
		entry.K = 8
	}
	if err := faultinject.Arm(point); err != nil {
		e.violatef("cache-crash: %v", err)
		return
	}
	if err := c.Put(entry); err == nil {
		e.violatef("cache-crash: Put survived an injected crash at %s", point)
	}
	faultinject.Reset()

	c2, err := plancache.Open(e.dir)
	if err != nil {
		e.violatef("cache-crash: unloadable after crash at %s: %v", point, err)
		return
	}
	if q := c2.Stats().Quarantined; q != 0 {
		e.violatef("cache-crash: crash at %s left %d corrupt entries", point, q)
	}
	if err := c2.Put(entry); err != nil {
		e.violatef("cache-crash: retry after crash failed: %v", err)
		return
	}
	if _, ok := c2.Get(entry.Key); !ok {
		e.violatef("cache-crash: retried entry not served")
	}
}
