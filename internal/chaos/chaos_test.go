package chaos

import (
	"flag"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/leakcheck"
	"bootes/internal/planverify"
)

var (
	episodes      = flag.Int("chaos.episodes", 120, "episodes for TestChaosEpisodes (make chaos raises this for the soak)")
	seed          = flag.Int64("chaos.seed", 20250806, "chaos schedule seed")
	queueEpisodes = flag.Int("chaos.queue-episodes", 500, "episodes for TestQueueCrashSoak")
	fleetEpisodes = flag.Int("chaos.fleet-episodes", 12, "episodes for TestFleetPartitionSoak")
	healEpisodes  = flag.Int("chaos.heal-episodes", 12, "episodes for TestFleetHealSoak (make chaos raises this via HEAL_EPISODES)")
)

// TestChaosEpisodes is the always-on short run: every `go test` executes the
// full seeded schedule and requires zero invariant violations. A failure
// message carries the seed, so any red run reproduces with
// `go test ./internal/chaos -chaos.seed=<seed>`.
func TestChaosEpisodes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos episodes skipped in -short mode")
	}
	planverify.ResetCounters()
	rep, err := Run(Config{Seed: *seed, Episodes: *episodes, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed %d: %d invariant violation(s):\n%s",
			*seed, len(rep.Violations), strings.Join(rep.Violations, "\n"))
	}
	if rep.Episodes != *episodes {
		t.Fatalf("ran %d episodes, want %d", rep.Episodes, *episodes)
	}
	// Coverage, not correctness: with ≥100 episodes the schedule must have
	// visited every scenario and armed at least one fault point, otherwise
	// the harness quietly stopped testing anything.
	if *episodes >= 100 {
		for _, sc := range scenarios {
			if rep.Scenarios[sc.name] == 0 {
				t.Errorf("scenario %s never ran in %d episodes", sc.name, rep.Episodes)
			}
		}
		armed := 0
		for _, n := range rep.Faults {
			armed += n
		}
		if armed == 0 {
			t.Error("no fault point was ever armed")
		}
	}
	t.Logf("chaos: %d episodes, scenarios=%v faults=%v healthy=%d degraded=%d refused=%d quarantined=%d verify-violations=%d",
		rep.Episodes, rep.Scenarios, rep.Faults, rep.Healthy, rep.DegradedPlans,
		rep.Refused, rep.Quarantined, planverify.Total())
}

// TestQueueCrashSoak hammers the queue-crash scenario alone: hundreds of
// seeded crash/restart cycles across both journal crash points, each asserting
// exactly-once recovery of every acked job. The mixed schedule above visits
// queue-crash ~1/7 of the time; durability bugs hide in rare interleavings,
// so this scenario gets its own dense soak.
func TestQueueCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("queue-crash soak skipped in -short mode")
	}
	root := t.TempDir()
	rep := &Report{Scenarios: make(map[string]int), Faults: make(map[string]int)}
	faultinject.Reset()
	defer faultinject.Reset()
	snap := leakcheck.Take()
	sc := scenario{name: "queue-crash", run: scenarioQueueCrash}
	for i := 0; i < *queueEpisodes; i++ {
		epSeed := *seed ^ (int64(i)+1)*0x5851F42D4C957F2D
		ep := &episode{
			index: i,
			rng:   rand.New(rand.NewSource(epSeed)),
			dir:   filepath.Join(root, fmt.Sprintf("q%05d", i)),
			rep:   rep,
		}
		runGuarded(ep, sc)
		faultinject.Reset()
		ep.sweepCache()
		rep.Episodes++
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d: episode %d broke an invariant:\n%s",
				*seed, i, strings.Join(rep.Violations, "\n"))
		}
	}
	if err := snap.Check(); err != nil {
		t.Fatalf("goroutine leak after %d episodes: %v", rep.Episodes, err)
	}
	t.Logf("queue-crash soak: %d episodes, faults=%v", rep.Episodes, rep.Faults)
}

// TestChaosDeterministicSchedule: equal seeds make equal choices. The digest
// covers every scheduling decision (scenario, fault points, trigger options),
// so a drift here means a red soak could not be replayed from its seed.
func TestChaosDeterministicSchedule(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{Seed: 7, Episodes: 12, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("violations:\n%s", strings.Join(rep.Violations, "\n"))
		}
		return rep
	}
	a, b := run(), run()
	if a.ScheduleDigest != b.ScheduleDigest {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a.ScheduleDigest, b.ScheduleDigest)
	}
	if len(a.ScheduleDigest) != 64 {
		t.Fatalf("malformed digest %q", a.ScheduleDigest)
	}
}

// TestChaosSeedsDiverge: different seeds must explore different schedules —
// a constant digest would mean the rng plumbing is broken and every "random"
// run tests the same path.
func TestChaosSeedsDiverge(t *testing.T) {
	a, err := Run(Config{Seed: 1, Episodes: 8, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 2, Episodes: 8, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleDigest == b.ScheduleDigest {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestChaosRequiresDir(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Episodes: 1}); err == nil {
		t.Fatal("Run accepted an empty scratch dir")
	}
}

// TestFleetPartitionSoak drills the fleet-partition scenario alone: each
// episode is a full warm → owner crash → route-around → restart → converge
// cycle on a real 3-node loopback fleet. The mixed schedule visits it ~1/8
// of the time; routing races (a recompute despite an up replica holding the
// plan, divergence after recovery) need the dense repetition.
func TestFleetPartitionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-partition soak skipped in -short mode")
	}
	rep, err := Run(Config{
		Seed:     *seed,
		Episodes: *fleetEpisodes,
		Dir:      t.TempDir(),
		Only:     "fleet-partition",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed %d: fleet invariants broke:\n%s", *seed, strings.Join(rep.Violations, "\n"))
	}
	if rep.Scenarios["fleet-partition"] != rep.Episodes {
		t.Fatalf("Only filter leaked: scenarios=%v", rep.Scenarios)
	}
	t.Logf("fleet-partition soak: %d episodes, healthy=%d degraded=%d refused=%d",
		rep.Episodes, rep.Healthy, rep.DegradedPlans, rep.Refused)
}

// TestFleetHealSoak drills the self-healing cycle: kill a replica, write
// through the survivors (parking hints), restart it, and require exact
// convergence — warmed owned ranges before ready, hints drained, replica
// digests byte-identical, zero recomputes. The acceptance bar is ≥200
// episodes (make chaos, HEAL_EPISODES knob); the default keeps plain
// `go test` fast.
func TestFleetHealSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-heal soak skipped in -short mode")
	}
	rep, err := Run(Config{
		Seed:     *seed,
		Episodes: *healEpisodes,
		Dir:      t.TempDir(),
		Only:     "fleet-heal",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed %d: self-healing invariants broke:\n%s", *seed, strings.Join(rep.Violations, "\n"))
	}
	if rep.Scenarios["fleet-heal"] != rep.Episodes {
		t.Fatalf("Only filter leaked: scenarios=%v", rep.Scenarios)
	}
	t.Logf("fleet-heal soak: %d episodes, healthy=%d degraded=%d refused=%d",
		rep.Episodes, rep.Healthy, rep.DegradedPlans, rep.Refused)
}

// TestChaosUnknownOnly: a typo'd -Only is a loud config error, not a silently
// empty run.
func TestChaosUnknownOnly(t *testing.T) {
	if _, err := Run(Config{Episodes: 1, Dir: t.TempDir(), Only: "no-such-scenario"}); err == nil {
		t.Fatal("unknown Only scenario did not error")
	}
}
