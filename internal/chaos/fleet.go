// The fleet-partition scenario: a real 3-node loopback fleet under
// kill/restart chaos. It is the multi-node counterpart of serve-http —
// where that scenario proves one server degrades honestly, this one proves
// the ring does: requests keep getting valid answers while an owner is
// dead, no surviving replica recomputes a plan another up replica already
// holds, and recovery converges back to serve-from-cache with zero new
// pipeline runs.

package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"bootes/internal/fleet"
	"bootes/internal/leakcheck"
	"bootes/internal/plancache"
	"bootes/internal/planserve"
	"bootes/internal/planverify"
	"bootes/internal/reorder"
	"bootes/internal/ring"
	"bootes/internal/sparse"
)

const fleetNodes = 3

// fleetHarness is the episode's authoritative view of the cluster: which
// nodes the harness has killed (its up-set leads the routers' probed view),
// per-key compute counts, and the locked violation sink the concurrent
// plan wrapper reports into.
type fleetHarness struct {
	e        *episode
	name     string // scenario name, prefixes violation messages
	cluster  *fleet.Cluster
	ring     *ring.Ring
	replicas int

	mu       sync.Mutex
	up       map[string]bool
	computes map[string]int
}

// markDown removes url from the harness up-set. Called BEFORE the node is
// actually killed so the compute-once check never counts a dying node's
// cache as available.
func (h *fleetHarness) markDown(url string) {
	h.mu.Lock()
	h.up[url] = false
	h.mu.Unlock()
}

// markUp re-admits url. Called only after every surviving router has probed
// the node back up (breaker cleared), so "harness up" implies "fleet-visible
// up" — the order that makes the compute-once invariant sound.
func (h *fleetHarness) markUp(url string) {
	h.mu.Lock()
	h.up[url] = true
	h.mu.Unlock()
}

func (h *fleetHarness) node(url string) *fleet.Node {
	for _, nd := range h.cluster.Nodes {
		if nd.URL == url {
			return nd
		}
	}
	return nil
}

// plan is the fleet's shared pipeline: fast, deterministic, and instrumented
// with the scenario's sharpest invariant — a compute may only start when no
// harness-up replica of the key already holds it. Forwarding, peer fill,
// coalescing, and the cache double-check are collectively supposed to make
// such a recompute impossible; a hit here is a real routing bug.
func (h *fleetHarness) plan(_ context.Context, m *sparse.CSR, _ int) (*reorder.Result, error) {
	key := plancache.KeyCSR(m)
	h.mu.Lock()
	for _, rep := range h.ring.Replicas(key, h.replicas) {
		if !h.up[rep] {
			continue
		}
		nd := h.node(rep)
		if nd == nil {
			continue
		}
		if c := nd.Cache(); c != nil {
			if _, ok := c.Peek(key); ok {
				h.e.violatef("%s: recomputing %.12s while up replica %s already holds it", h.name, key, rep)
			}
		}
	}
	h.computes[key]++
	h.mu.Unlock()
	time.Sleep(time.Millisecond) // widen the coalescing window a little
	perm := make(sparse.Permutation, m.Rows)
	for i := range perm {
		perm[i] = int32(m.Rows - 1 - i)
	}
	return &reorder.Result{Perm: perm, Reordered: true, Extra: map[string]float64{"k": 8}}, nil
}

func (h *fleetHarness) computeCount(key string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.computes[key]
}

// upNodes snapshots the harness up-set as live node handles.
func (h *fleetHarness) upNodes() []*fleet.Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*fleet.Node
	for _, nd := range h.cluster.Nodes {
		if h.up[nd.URL] {
			out = append(out, nd)
		}
	}
	return out
}

// violatef is the locked variant for the traffic goroutines.
func (h *fleetHarness) violatef(format string, args ...any) {
	h.mu.Lock()
	h.e.violatef(format, args...)
	h.mu.Unlock()
}

// waitUntil polls cond until it holds or the deadline passes; a timeout is
// an invariant violation (probes/breakers failed to converge).
func (h *fleetHarness) waitUntil(what string, cond func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.violatef("%s: timed out waiting for %s", h.name, what)
	return false
}

// peersSee reports whether every live node's router view of target matches
// wantUp, with the per-peer breaker not left open when wantUp is true.
func (h *fleetHarness) peersSee(target string, wantUp bool) bool {
	for _, nd := range h.cluster.Nodes {
		if nd.URL == target || !nd.Alive() {
			continue
		}
		rt := nd.Router()
		if rt == nil {
			continue
		}
		found := false
		for _, pv := range rt.Peers() {
			if pv.URL != target {
				continue
			}
			found = true
			if pv.Up != wantUp {
				return false
			}
			if wantUp && pv.Breaker == "open" {
				return false
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// scenarioFleetPartition drives a 3-node fleet through a full failure cycle:
// warm traffic through every node, abruptly kill the owner of a chosen key
// while requests are still flowing, keep serving through the survivors, then
// restart the owner and verify the fleet converges back to pure cache hits.
func scenarioFleetPartition(e *episode) {
	h := &fleetHarness{e: e, name: "fleet-partition", replicas: 2, up: make(map[string]bool), computes: make(map[string]int)}
	c, err := fleet.LaunchCluster(fleetNodes, fleet.ClusterOptions{
		Plan:     h.plan,
		Dir:      filepath.Join(e.dir, "fleet"),
		Replicas: h.replicas,
		// Generous hedge delay: with a ~1ms pipeline, a hedge may only fire
		// when the primary actually died, keeping compute counts readable.
		HedgeAfter:    2 * time.Second,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		DownAfter:     2,
		MaxInFlight:   4,
		Seed:          e.rng.Int63(),
	})
	if err != nil {
		e.violatef("fleet-partition: launch: %v", err)
		return
	}
	defer c.Close()
	h.cluster = c
	for _, u := range c.URLs() {
		h.up[u] = true
	}
	if h.ring, err = ring.New(c.URLs(), 0); err != nil {
		e.violatef("fleet-partition: ring: %v", err)
		return
	}

	// The episode's working set, drawn deterministically. bodies[i] is the
	// serialized form posted over HTTP; keys[i] its cache identity.
	nMatrices := 2 + e.rng.Intn(2)
	bodies := make([][]byte, nMatrices)
	keys := make([]string, nMatrices)
	rows := make([]int, nMatrices)
	for i := 0; i < nMatrices; i++ {
		m := e.matrix()
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
			e.violatef("fleet-partition: serialize: %v", err)
			return
		}
		bodies[i], keys[i], rows[i] = buf.Bytes(), plancache.KeyCSR(m), m.Rows
	}
	victimIdx := e.rng.Intn(nMatrices)
	victim := h.node(h.ring.Replicas(keys[victimIdx], h.replicas)[0])

	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()

	// Phase 1: warm traffic — every body through every node, concurrently.
	// Forwarding must collapse all of it onto each key's owner.
	h.burst(client, bodies, rows, h.upNodes())
	for i, k := range keys {
		if n := h.computeCount(k); n != 1 {
			e.violatef("fleet-partition: warm phase computed key %d %d times, want 1", i, n)
		}
	}

	// Phase 2: partition. Mark the victim down in the harness view FIRST
	// (the compute-once check must stop counting its cache), then crash it
	// and keep traffic flowing through the survivors while their probes and
	// in-flight forwards discover the loss.
	h.markDown(victim.URL)
	victim.Kill()
	for r := 0; r < 2; r++ {
		h.burst(client, bodies, rows, h.upNodes())
	}
	h.waitUntil("survivors to mark the victim down", func() bool {
		return h.peersSee(victim.URL, false)
	})
	h.burst(client, bodies, rows, h.upNodes())

	// Each key is computed at most once more by the surviving members of
	// its replica set; keys whose owner survived never recompute at all.
	for i, k := range keys {
		n := h.computeCount(k)
		owner := h.ring.Replicas(k, h.replicas)[0]
		switch {
		case owner != victim.URL && n != 1:
			e.violatef("fleet-partition: key %d (owner alive) computed %d times, want 1", i, n)
		case owner == victim.URL && n > 2:
			e.violatef("fleet-partition: key %d computed %d times across one owner crash, want ≤2", i, n)
		}
	}

	// Phase 3: recovery. Restart the victim on its old address and cache
	// dir; re-admit it to the harness view only once every survivor has
	// probed it up and cleared its breaker.
	if err := victim.Restart(); err != nil {
		e.violatef("fleet-partition: restart: %v", err)
		return
	}
	if h.waitUntil("survivors to probe the victim back up", func() bool {
		return h.peersSee(victim.URL, true)
	}) {
		h.markUp(victim.URL)
	}
	before := make(map[string]int, len(keys))
	for _, k := range keys {
		before[k] = h.computeCount(k)
	}
	h.burst(client, bodies, rows, h.upNodes())
	for i, k := range keys {
		if n := h.computeCount(k); n != before[k] {
			e.violatef("fleet-partition: key %d recomputed after recovery (%d -> %d): caches did not converge", i, before[k], n)
		}
	}

	// Teardown invariants: every node drains to zero slots, and no node's
	// cache holds a corrupt entry after the crash cycle.
	for _, nd := range c.Nodes {
		nd := nd
		if err := leakcheck.SettleZero("slots "+nd.URL, func() int64 {
			if s := nd.Server(); s != nil {
				return int64(s.SlotsInUse())
			}
			return 0
		}); err != nil {
			e.violatef("fleet-partition: %v", err)
		}
	}
	c.Close()
	for i := 0; i < fleetNodes; i++ {
		h.sweepNodeCache(filepath.Join(e.dir, "fleet", fmt.Sprintf("node%d", i)))
	}
}

// burst posts every body once through every given node concurrently and
// validates the responses: a parseable valid-or-marked-degraded plan on 200,
// an honest refusal otherwise. Transport errors count as refusals — the
// harness races its own kills, so a connection can die mid-request.
func (h *fleetHarness) burst(client *http.Client, bodies [][]byte, rows []int, nodes []*fleet.Node) {
	type result struct {
		code int
		body []byte
		rows int
	}
	var wg sync.WaitGroup
	results := make(chan result, len(bodies)*len(nodes))
	for _, nd := range nodes {
		for i := range bodies {
			wg.Add(1)
			go func(url string, body []byte, rows int) {
				defer wg.Done()
				resp, err := client.Post(url+"/v1/plan?perm=1", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					results <- result{code: -1}
					return
				}
				defer resp.Body.Close()
				data, _ := io.ReadAll(resp.Body)
				results <- result{code: resp.StatusCode, body: data, rows: rows}
			}(nd.URL, bodies[i], rows[i])
		}
	}
	wg.Wait()
	close(results)
	for out := range results {
		switch out.code {
		case http.StatusOK:
			var pr planserve.PlanResponse
			if err := json.Unmarshal(out.body, &pr); err != nil {
				h.violatef("%s: unparseable 200 body: %v", h.name, err)
				continue
			}
			h.checkShape(out.rows, &pr)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, http.StatusBadGateway, -1:
			h.mu.Lock()
			h.e.rep.Refused++
			h.mu.Unlock()
		default:
			h.violatef("%s: unexpected status %d: %.200s", h.name, out.code, out.body)
		}
	}
}

// checkShape is checkPlanShape under the harness lock (bursts are concurrent
// only with each other, but the report is shared episode state).
func (h *fleetHarness) checkShape(rows int, pr *planserve.PlanResponse) {
	vs := planverify.CheckPlan(rows, sparse.Permutation(pr.Perm), pr.K, pr.Reordered, pr.Degraded, pr.DegradedReason, nil)
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(vs) > 0 {
		h.e.violatef("%s: invalid plan served: %v", h.name, vs)
		return
	}
	if pr.Degraded {
		h.e.rep.DegradedPlans++
	} else {
		h.e.rep.Healthy++
	}
}

// sweepNodeCache reopens one node's cache directory post-mortem and asserts
// the crash cycle left no corrupt or invalid entry behind.
func (h *fleetHarness) sweepNodeCache(dir string) {
	c, err := plancache.Open(dir)
	if err != nil {
		h.violatef("%s: cache sweep %s: %v", h.name, dir, err)
		return
	}
	if q := c.Stats().Quarantined; q != 0 {
		h.violatef("%s: %d entries quarantined in %s after crash cycle", h.name, q, dir)
	}
	for _, key := range c.Keys() {
		entry, ok := c.Get(key)
		if !ok {
			continue
		}
		if vs := planverify.CheckEntryFields(entry.Perm, entry.K, entry.Reordered, entry.Degraded, entry.DegradedReason); len(vs) > 0 {
			h.violatef("%s: cache entry %.12s invalid after crash cycle: %v", h.name, key, vs)
		}
	}
}
