// The fleet-heal scenario: a 3-node self-healing fleet through a full
// kill → write-through-survivors → restart → converge cycle. Where
// fleet-partition proves the ring routes around a dead owner, this scenario
// proves the anti-entropy layer repairs the damage the outage left behind:
// writes that missed the dead replica park as hints and drain on recovery,
// the restarted node warms its owned ranges before answering ready, and the
// fleet converges to byte-identical replica sets with zero pipeline reruns.

package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bootes/internal/antientropy"
	"bootes/internal/fleet"
	"bootes/internal/leakcheck"
	"bootes/internal/plancache"
	"bootes/internal/ring"
	"bootes/internal/sparse"
)

func scenarioFleetHeal(e *episode) {
	h := &fleetHarness{e: e, name: "fleet-heal", replicas: 2, up: make(map[string]bool), computes: make(map[string]int)}
	c, err := fleet.LaunchCluster(fleetNodes, fleet.ClusterOptions{
		Plan:     h.plan,
		Dir:      filepath.Join(e.dir, "fleet-heal"),
		Replicas: h.replicas,
		SelfHeal: true,
		// Jittered repair pacing: different episodes interleave repair
		// rounds differently against the probe and traffic schedules.
		RepairInterval: time.Duration(25+e.rng.Intn(50)) * time.Millisecond,
		ScrubInterval:  5 * time.Millisecond,
		WarmupDeadline: 5 * time.Second,
		HedgeAfter:     2 * time.Second,
		ProbeInterval:  20 * time.Millisecond,
		ProbeTimeout:   time.Second,
		DownAfter:      2,
		MaxInFlight:    4,
		Seed:           e.rng.Int63(),
	})
	if err != nil {
		e.violatef("fleet-heal: launch: %v", err)
		return
	}
	defer c.Close()
	h.cluster = c
	for _, u := range c.URLs() {
		h.up[u] = true
	}
	if h.ring, err = ring.New(c.URLs(), 0); err != nil {
		e.violatef("fleet-heal: ring: %v", err)
		return
	}

	// Synchronous replication consults each router's up-view; start from a
	// settled fleet so phase-1 writes reach their full replica sets.
	h.waitUntil("mutual up-view", func() bool {
		for _, u := range c.URLs() {
			if !h.peersSee(u, true) {
				return false
			}
		}
		return true
	})

	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()

	newSet := func(n int) (bodies [][]byte, keys []string, rows []int) {
		for i := 0; i < n; i++ {
			m := e.matrix()
			var buf bytes.Buffer
			if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
				e.violatef("fleet-heal: serialize: %v", err)
				return nil, nil, nil
			}
			bodies = append(bodies, buf.Bytes())
			keys = append(keys, plancache.KeyCSR(m))
			rows = append(rows, m.Rows)
		}
		return bodies, keys, rows
	}

	// Phase 1: warm writes with the whole fleet up. Each key computes once
	// and lands on every member of its replica set (coalesced followers can
	// return a hair before the computing goroutine finishes replicating, so
	// the replica check polls).
	bodies1, keys1, rows1 := newSet(2 + e.rng.Intn(3))
	if bodies1 == nil {
		return
	}
	h.burst(client, bodies1, rows1, h.upNodes())
	for i, k := range keys1 {
		if n := h.computeCount(k); n != 1 {
			e.violatef("fleet-heal: warm phase computed key %d %d times, want 1", i, n)
		}
	}
	onReplicas := func(keys []string) func() bool {
		return func() bool {
			for _, k := range keys {
				for _, rep := range h.ring.Replicas(k, h.replicas) {
					nd := h.node(rep)
					if nd == nil || !nd.Alive() {
						continue
					}
					if _, ok := nd.Cache().Stat(k); !ok {
						return false
					}
				}
			}
			return true
		}
	}
	h.waitUntil("phase-1 writes to replicate", onReplicas(keys1))

	// Phase 2: kill one node, wait until the survivors see it down, then
	// write fresh keys through the survivors. Writes whose replica set
	// includes the dead node must park exactly one hint each.
	victim := c.Nodes[e.rng.Intn(fleetNodes)]
	h.markDown(victim.URL)
	victim.Kill()
	h.waitUntil("survivors to mark the victim down", func() bool {
		return h.peersSee(victim.URL, false)
	})

	bodies2, keys2, rows2 := newSet(2 + e.rng.Intn(2))
	if bodies2 == nil {
		return
	}
	h.burst(client, bodies2, rows2, h.upNodes())
	for i, k := range keys2 {
		if n := h.computeCount(k); n != 1 {
			e.violatef("fleet-heal: outage phase computed key %d %d times, want 1", i, n)
		}
	}
	// Replaying the warm set through the survivors must stay pure cache.
	h.burst(client, bodies1, rows1, h.upNodes())
	for i, k := range keys1 {
		if n := h.computeCount(k); n != 1 {
			e.violatef("fleet-heal: warm key %d recomputed during outage (%d computes)", i, n)
		}
	}

	allKeys := append(append([]string(nil), keys1...), keys2...)
	var victimOwned []string
	for _, k := range allKeys {
		if h.ring.OwnedBy(k, victim.URL, h.replicas) {
			victimOwned = append(victimOwned, k)
		}
	}
	sort.Strings(victimOwned)
	wantHints := 0
	for _, k := range keys2 {
		if h.ring.OwnedBy(k, victim.URL, h.replicas) {
			wantHints++
		}
	}
	pendingHints := func() int {
		total := 0
		for _, nd := range h.upNodes() {
			if hl := nd.Healer(); hl != nil {
				total += int(hl.HintsPending())
			}
		}
		return total
	}
	if got := pendingHints(); got != wantHints {
		h.violatef("fleet-heal: %d hints parked for the dead replica, want %d", got, wantHints)
	}

	// Half the episodes also rot one victim-owned entry on disk while the
	// node is down: restart must quarantine it and warm-up must re-fetch it.
	if len(victimOwned) > 0 && e.rng.Intn(2) == 0 {
		rotKey := victimOwned[e.rng.Intn(len(victimOwned))]
		path := filepath.Join(victimDir(e, c, victim), rotKey+plancache.Ext)
		if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
			raw[len(raw)-1] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				e.violatef("fleet-heal: injecting rot: %v", err)
			}
		}
	}

	// Phase 3: restart under a readiness poller. The first 200 from /readyz
	// must come with every victim-owned key already fetched — warming holds
	// readiness at 503 until the owned ranges are in.
	before := make(map[string]int, len(allKeys))
	for _, k := range allKeys {
		before[k] = h.computeCount(k)
	}
	ready := make(chan struct{})
	go func() {
		defer close(ready)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := client.Get(victim.URL + "/readyz")
			if err != nil {
				time.Sleep(2 * time.Millisecond) // still down or rebinding
				continue
			}
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusOK {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			h.checkWarmedDigest(client, victim.URL, victimOwned)
			return
		}
		h.violatef("fleet-heal: victim never answered ready after restart")
	}()
	if err := victim.Restart(); err != nil {
		e.violatef("fleet-heal: restart: %v", err)
		return
	}
	<-ready

	h.waitUntil("survivors to probe the victim back up", func() bool {
		return h.peersSee(victim.URL, true)
	})
	h.markUp(victim.URL)
	h.waitUntil("hints to drain", func() bool {
		for _, nd := range c.Nodes {
			if hl := nd.Healer(); hl != nil && hl.HintsPending() != 0 {
				return false
			}
		}
		return true
	})
	h.waitUntil("victim to converge to its exact owned key set", func() bool {
		cache := victim.Cache()
		if cache == nil {
			return false
		}
		got := cache.Keys()
		if len(got) != len(victimOwned) {
			return false
		}
		for i, k := range got {
			if victimOwned[i] != k {
				return false
			}
		}
		return true
	})

	// Convergence was replication-only: no key recomputed, during recovery
	// or on a full replay through every node.
	for i, k := range allKeys {
		if n := h.computeCount(k); n != before[k] {
			e.violatef("fleet-heal: key %d recomputed during convergence (%d -> %d)", i, before[k], n)
		}
	}
	h.burst(client, append(append([][]byte(nil), bodies1...), bodies2...),
		append(append([]int(nil), rows1...), rows2...), h.upNodes())
	for i, k := range allKeys {
		if n := h.computeCount(k); n != before[k] {
			e.violatef("fleet-heal: key %d recomputed after convergence (%d -> %d)", i, before[k], n)
		}
	}

	// Digest agreement: every replica of every key holds identical bytes.
	for _, k := range allKeys {
		reps := h.ring.Replicas(k, h.replicas)
		first, ok := h.node(reps[0]).Cache().Stat(k)
		if !ok {
			e.violatef("fleet-heal: key %.12s missing on its primary after convergence", k)
			continue
		}
		for _, rep := range reps[1:] {
			if st, ok := h.node(rep).Cache().Stat(k); !ok || st != first {
				e.violatef("fleet-heal: replica digests diverge for %.12s on %s", k, rep)
			}
		}
	}

	for _, nd := range c.Nodes {
		nd := nd
		if err := leakcheck.SettleZero("slots "+nd.URL, func() int64 {
			if s := nd.Server(); s != nil {
				return int64(s.SlotsInUse())
			}
			return 0
		}); err != nil {
			e.violatef("fleet-heal: %v", err)
		}
	}
	c.Close()
	for i := 0; i < fleetNodes; i++ {
		h.sweepNodeCache(filepath.Join(e.dir, "fleet-heal", fmt.Sprintf("node%d", i)))
	}
}

// victimDir maps a node back to its on-disk cache directory.
func victimDir(e *episode, c *fleet.Cluster, victim *fleet.Node) string {
	for i, nd := range c.Nodes {
		if nd == victim {
			return filepath.Join(e.dir, "fleet-heal", fmt.Sprintf("node%d", i))
		}
	}
	return ""
}

// checkWarmedDigest asserts the node's advertised digest covers every owned
// key — called at the moment /readyz first answered 200.
func (h *fleetHarness) checkWarmedDigest(client *http.Client, url string, owned []string) {
	resp, err := client.Get(url + "/v1/cache/digest")
	if err != nil {
		h.violatef("%s: digest after ready: %v", h.name, err)
		return
	}
	defer resp.Body.Close()
	var d antientropy.Digest
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		h.violatef("%s: decoding digest after ready: %v", h.name, err)
		return
	}
	have := make(map[string]bool, len(d.Entries))
	for _, de := range d.Entries {
		have[de.Key] = true
	}
	for _, k := range owned {
		if !have[k] {
			h.violatef("%s: ready answered 200 with owned key %.12s still unfetched", h.name, k)
		}
	}
}
