package dtree

import (
	"math/rand"
	"testing"
)

// noisyData is axisData plus label noise, where ensembles have an edge.
func noisyData(rng *rand.Rand, n int, noise float64) []Sample {
	samples := axisData(rng, n)
	for i := range samples {
		if rng.Float64() < noise {
			samples[i].Label = rng.Intn(3)
		}
	}
	return samples
}

func TestForestAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := noisyData(rng, 600, 0.15)
	test := axisData(rng, 300) // clean test labels
	forest, err := TrainForest(train, 3, ForestOptions{Trees: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := forest.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("forest accuracy %v, want ≥ 0.85", acc)
	}
}

func TestForestAtLeastAsGoodAsTreeOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := noisyData(rng, 500, 0.25)
	test := axisData(rng, 400)
	tree, err := Train(train, 3, Options{MaxDepth: 10, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(train, 3, ForestOptions{Trees: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	treeAcc, _ := tree.Accuracy(test)
	forestAcc, _ := forest.Accuracy(test)
	if forestAcc+0.05 < treeAcc {
		t.Errorf("forest %.3f much worse than single tree %.3f", forestAcc, treeAcc)
	}
	// The paper's trade-off: the ensemble costs much more storage.
	if forest.ModeledBytes() < 3*tree.ModeledBytes() {
		t.Errorf("forest %dB should dwarf tree %dB", forest.ModeledBytes(), tree.ModeledBytes())
	}
}

func TestForestErrors(t *testing.T) {
	if _, err := TrainForest(nil, 2, ForestOptions{}); err == nil {
		t.Error("empty training set accepted")
	}
	var f Forest
	if _, err := f.Predict([]float64{1}); err == nil {
		t.Error("untrained forest predicted")
	}
	if _, err := f.Accuracy(nil); err == nil {
		t.Error("empty accuracy accepted")
	}
}

func TestForestEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := axisData(rng, 200)
	forest, err := TrainForest(train, 3, ForestOptions{Trees: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	data, err := forest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeForest(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		a, _ := forest.Predict(x)
		b, _ := back.Predict(x)
		if a != b {
			t.Fatal("decoded forest disagrees")
		}
	}
	if _, err := DecodeForest([]byte("{}")); err == nil {
		t.Error("empty forest decoded")
	}
	if _, err := DecodeForest([]byte("bad")); err == nil {
		t.Error("bad json decoded")
	}
}

func TestForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := axisData(rng, 150)
	a, err := TrainForest(train, 3, ForestOptions{Trees: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainForest(train, 3, ForestOptions{Trees: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i) / 50, float64(50-i) / 50}
		pa, _ := a.Predict(x)
		pb, _ := b.Predict(x)
		if pa != pb {
			t.Fatal("same seed, different forests")
		}
	}
}
