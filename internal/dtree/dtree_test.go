package dtree

import (
	"math/rand"
	"testing"
)

// axisData generates samples whose label is determined by simple axis
// thresholds — exactly representable by a small tree.
func axisData(rng *rand.Rand, n int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		x := rng.Float64()
		y := rng.Float64()
		label := 0
		switch {
		case x > 0.5 && y > 0.5:
			label = 1
		case x > 0.5:
			label = 2
		}
		samples[i] = Sample{Features: []float64{x, y}, Label: label}
	}
	return samples
}

func TestTrainPerfectlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := axisData(rng, 400)
	test := axisData(rng, 200)
	tree, err := Train(train, 3, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tree.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("accuracy %v, want ≥ 0.95", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 2, Options{}); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []Sample{{Features: []float64{1}, Label: 5}}
	if _, err := Train(bad, 2, Options{}); err == nil {
		t.Error("out-of-range label accepted")
	}
	ragged := []Sample{
		{Features: []float64{1, 2}, Label: 0},
		{Features: []float64{1}, Label: 1},
	}
	if _, err := Train(ragged, 2, Options{}); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestPredictBeforeTrain(t *testing.T) {
	var tr Tree
	if _, err := tr.Predict([]float64{1}); err == nil {
		t.Error("untrained predict accepted")
	}
	if _, err := tr.PredictProba([]float64{1}); err == nil {
		t.Error("untrained proba accepted")
	}
}

func TestClassBalancing(t *testing.T) {
	// 95% of samples are class 0; class 1 occupies x > 0.9. Without
	// balancing a depth-1 tree may ignore the minority; with balancing the
	// minority region must be classified correctly.
	rng := rand.New(rand.NewSource(2))
	var samples []Sample
	for i := 0; i < 950; i++ {
		samples = append(samples, Sample{Features: []float64{rng.Float64() * 0.9}, Label: 0})
	}
	for i := 0; i < 50; i++ {
		samples = append(samples, Sample{Features: []float64{0.9 + rng.Float64()*0.1}, Label: 1})
	}
	tree, err := Train(samples, 2, Options{MaxDepth: 4, BalanceClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tree.Predict([]float64{0.95})
	if err != nil || c != 1 {
		t.Errorf("balanced tree predicted %d for minority region", c)
	}
	c, _ = tree.Predict([]float64{0.2})
	if c != 0 {
		t.Errorf("balanced tree predicted %d for majority region", c)
	}
}

func TestWeightsRespected(t *testing.T) {
	// Two overlapping points with different labels: the heavier one wins.
	samples := []Sample{
		{Features: []float64{1}, Label: 0, Weight: 1},
		{Features: []float64{1}, Label: 1, Weight: 10},
	}
	tree, err := Train(samples, 2, Options{MaxDepth: 2, MinLeaf: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tree.Predict([]float64{1})
	if c != 1 {
		t.Errorf("predicted %d, want heavier class 1", c)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := axisData(rng, 300)
	tree, err := Train(train, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := tree.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		a, _ := tree.Predict(x)
		b, _ := back.Predict(x)
		if a != b {
			t.Fatal("decoded tree disagrees with original")
		}
	}
	if _, err := Decode([]byte("{}")); err == nil {
		t.Error("rootless decode accepted")
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("bad json accepted")
	}
}

func TestModelSizeIsSmall(t *testing.T) {
	// The paper highlights an ~11 KB model; ours must stay in that regime.
	rng := rand.New(rand.NewSource(4))
	train := axisData(rng, 1000)
	tree, err := Train(train, 3, Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if size := tree.ModeledBytes(); size > 64<<10 {
		t.Errorf("model size %d bytes, want well under 64 KB", size)
	}
}

func TestPredictProbaSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := axisData(rng, 300)
	tree, err := Train(train, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.PredictProba([]float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Error("negative probability")
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestFeatureImportance(t *testing.T) {
	// Label depends only on feature 0; importance must concentrate there.
	rng := rand.New(rand.NewSource(6))
	var samples []Sample
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		noise := rng.Float64()
		label := 0
		if x > 0.5 {
			label = 1
		}
		samples = append(samples, Sample{Features: []float64{x, noise}, Label: label})
	}
	tree, err := Train(samples, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.FeatureImportance(2)
	if imp[0] <= imp[1] {
		t.Errorf("importance = %v, feature 0 should dominate", imp)
	}
}

func TestDepthAndNodeCountTracked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree, err := Train(axisData(rng, 200), 3, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth > 3 {
		t.Errorf("depth %d exceeds MaxDepth", tree.Depth)
	}
	if tree.NodeCount < 3 {
		t.Errorf("node count %d suspiciously small", tree.NodeCount)
	}
}

func TestSingleClassIsLeaf(t *testing.T) {
	samples := []Sample{
		{Features: []float64{1}, Label: 0},
		{Features: []float64{2}, Label: 0},
		{Features: []float64{3}, Label: 0},
		{Features: []float64{4}, Label: 0},
		{Features: []float64{5}, Label: 0},
		{Features: []float64{6}, Label: 0},
		{Features: []float64{7}, Label: 0},
	}
	tree, err := Train(samples, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Feature != -1 {
		t.Error("pure node was split")
	}
	c, _ := tree.Predict([]float64{100})
	if c != 0 {
		t.Error("wrong prediction for pure tree")
	}
}
