package dtree

import (
	"encoding/json"
	"math/rand"
)

// Forest is a bagged ensemble of CART trees (a random forest with feature
// subsampling). The paper reports experimenting with random forests and
// XGBoost before settling on a single decision tree: the ensembles were a
// little more accurate but required considerably more storage, which
// matters for the online deployment Bootes targets. This implementation
// exists to reproduce that trade-off (see experiments.ModelComparison).
type Forest struct {
	Trees    []*Tree `json:"trees"`
	NumClass int     `json:"numClass"`
}

// ForestOptions configures random-forest training.
type ForestOptions struct {
	// Trees is the ensemble size. 0 selects 25.
	Trees int
	// Tree configures each member tree (MaxDepth 0 selects 10 — deeper than
	// a lone CART tree since bagging controls variance).
	Tree Options
	// FeatureFraction of features considered per split, approximated by
	// training each tree on a random feature subset. 0 selects ~√dim/dim.
	FeatureFraction float64
	// SampleFraction of samples bootstrapped per tree. 0 selects 1.0
	// (sampling with replacement).
	SampleFraction float64
	// Seed drives bootstrapping and feature subsetting.
	Seed int64
}

func (o ForestOptions) withDefaults() ForestOptions {
	if o.Trees == 0 {
		o.Trees = 25
	}
	if o.Tree.MaxDepth == 0 {
		o.Tree.MaxDepth = 10
	}
	if o.SampleFraction == 0 {
		o.SampleFraction = 1.0
	}
	return o
}

// TrainForest fits a bagged ensemble to samples with numClass classes.
//
// Feature subsampling is implemented by masking: each tree sees all feature
// columns, but the masked ones are replaced by a constant so no split can
// use them. This keeps Tree's Predict signature unchanged.
func TrainForest(samples []Sample, numClass int, opts ForestOptions) (*Forest, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	opts = opts.withDefaults()
	dim := len(samples[0].Features)
	keep := opts.FeatureFraction
	if keep == 0 {
		keep = sqrtFrac(dim)
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0xf02e57))

	f := &Forest{NumClass: numClass}
	for t := 0; t < opts.Trees; t++ {
		// Bootstrap sample.
		n := int(float64(len(samples)) * opts.SampleFraction)
		if n < 1 {
			n = 1
		}
		boot := make([]Sample, n)
		for i := range boot {
			boot[i] = samples[rng.Intn(len(samples))]
		}
		// Feature mask: at least one feature survives.
		mask := make([]bool, dim)
		kept := 0
		for d := range mask {
			if rng.Float64() < keep {
				mask[d] = true
				kept++
			}
		}
		if kept == 0 {
			mask[rng.Intn(dim)] = true
		}
		masked := make([]Sample, len(boot))
		for i, s := range boot {
			feats := make([]float64, dim)
			for d := range feats {
				if mask[d] {
					feats[d] = s.Features[d]
				}
			}
			masked[i] = Sample{Features: feats, Label: s.Label, Weight: s.Weight}
		}
		tree, err := Train(masked, numClass, opts.Tree)
		if err != nil {
			return nil, err
		}
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

func sqrtFrac(dim int) float64 {
	if dim <= 1 {
		return 1
	}
	// ≈ √dim features per split.
	s := 1.0
	for s*s < float64(dim) {
		s++
	}
	return s / float64(dim)
}

// Predict returns the majority vote over the ensemble.
func (f *Forest) Predict(x []float64) (int, error) {
	if len(f.Trees) == 0 {
		return 0, ErrNotTrained
	}
	votes := make([]float64, f.NumClass)
	for _, t := range f.Trees {
		c, err := t.Predict(x)
		if err != nil {
			return 0, err
		}
		votes[c]++
	}
	return argmax(votes), nil
}

// Accuracy returns the fraction of samples the forest classifies correctly.
func (f *Forest) Accuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	correct := 0
	for _, s := range samples {
		c, err := f.Predict(s.Features)
		if err != nil {
			return 0, err
		}
		if c == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// Encode serializes the forest to JSON.
func (f *Forest) Encode() ([]byte, error) { return json.Marshal(f) }

// DecodeForest parses a forest serialized by Encode.
func DecodeForest(data []byte) (*Forest, error) {
	var f Forest
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if len(f.Trees) == 0 {
		return nil, ErrNotTrained
	}
	return &f, nil
}

// ModeledBytes estimates the serialized ensemble size — the storage cost the
// paper weighed against the ensemble's accuracy gain.
func (f *Forest) ModeledBytes() int64 {
	data, err := f.Encode()
	if err != nil {
		return 0
	}
	return int64(len(data))
}
