// Package dtree implements the CART decision-tree classifier Bootes uses
// for its cost-benefit analysis (paper §3.2): given a matrix's structural
// fingerprint it predicts whether reordering is worthwhile and, if so,
// which cluster count k to use. Training supports per-class balancing
// weights (the paper's mitigation for the dominant "no reorder" class),
// depth/min-leaf regularization, and JSON (de)serialization so a trained
// model can ship with a deployment.
package dtree

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sample is one labelled training example.
type Sample struct {
	Features []float64
	Label    int
	// Weight scales the sample's influence; 0 is treated as 1.
	Weight float64
}

// Options configures training.
type Options struct {
	// MaxDepth bounds the tree depth. 0 selects 8.
	MaxDepth int
	// MinLeaf is the minimum weighted sample count in a leaf. 0 selects 3.
	MinLeaf float64
	// MinImpurityDecrease prunes splits with less Gini gain. 0 selects 1e-7.
	MinImpurityDecrease float64
	// BalanceClasses reweights samples so every class has equal total
	// weight, as the paper does to counter the "no reorder" majority.
	BalanceClasses bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 3
	}
	if o.MinImpurityDecrease == 0 {
		o.MinImpurityDecrease = 1e-7
	}
	return o
}

// Node is one tree node. Leaves have Feature == -1.
type Node struct {
	Feature   int     `json:"f"`           // split feature index, -1 for leaf
	Threshold float64 `json:"t,omitempty"` // go left when x[Feature] <= Threshold
	Left      *Node   `json:"l,omitempty"`
	Right     *Node   `json:"r,omitempty"`
	// Class is the majority class at this node (prediction for leaves).
	Class int `json:"c"`
	// Counts holds the weighted class histogram (diagnostics/probabilities).
	Counts []float64 `json:"n,omitempty"`
}

// Tree is a trained CART classifier.
type Tree struct {
	Root      *Node    `json:"root"`
	NumClass  int      `json:"numClass"`
	Features  []string `json:"features,omitempty"`
	NodeCount int      `json:"nodeCount"`
	Depth     int      `json:"depth"`
}

// Errors returned by training and prediction.
var (
	ErrNoSamples  = errors.New("dtree: no training samples")
	ErrDimension  = errors.New("dtree: inconsistent feature dimensions")
	ErrBadLabel   = errors.New("dtree: label out of range")
	ErrNotTrained = errors.New("dtree: tree has no root")
)

// Train fits a CART tree to samples with numClass classes.
func Train(samples []Sample, numClass int, opts Options) (*Tree, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	opts = opts.withDefaults()
	dim := len(samples[0].Features)
	classTotals := make([]float64, numClass)
	for _, s := range samples {
		if len(s.Features) != dim {
			return nil, ErrDimension
		}
		if s.Label < 0 || s.Label >= numClass {
			return nil, fmt.Errorf("%w: %d", ErrBadLabel, s.Label)
		}
		classTotals[s.Label] += weightOf(s)
	}

	// Effective weights, optionally balanced so every class carries equal
	// total weight while the grand total stays ≈ Σ sample weights (the
	// sklearn "balanced" convention: w·n/(k·n_c)), keeping MinLeaf
	// thresholds meaningful.
	weights := make([]float64, len(samples))
	grand := 0.0
	for _, ct := range classTotals {
		grand += ct
	}
	presentClasses := 0
	for _, ct := range classTotals {
		if ct > 0 {
			presentClasses++
		}
	}
	for i, s := range samples {
		w := weightOf(s)
		if opts.BalanceClasses && classTotals[s.Label] > 0 && presentClasses > 0 {
			w *= grand / (float64(presentClasses) * classTotals[s.Label])
		}
		weights[i] = w
	}

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{NumClass: numClass}
	t.Root = grow(samples, weights, idx, numClass, opts, 0, t)
	return t, nil
}

func weightOf(s Sample) float64 {
	if s.Weight == 0 {
		return 1
	}
	return s.Weight
}

// grow recursively builds the tree over the sample subset idx.
func grow(samples []Sample, weights []float64, idx []int, numClass int, opts Options, depth int, t *Tree) *Node {
	t.NodeCount++
	if depth > t.Depth {
		t.Depth = depth
	}
	counts := make([]float64, numClass)
	total := 0.0
	for _, i := range idx {
		counts[samples[i].Label] += weights[i]
		total += weights[i]
	}
	node := &Node{Feature: -1, Class: argmax(counts), Counts: counts}
	if depth >= opts.MaxDepth || total < 2*opts.MinLeaf || gini(counts, total) == 0 {
		return node
	}

	bestGain := opts.MinImpurityDecrease
	bestFeature, bestThreshold := -1, 0.0
	parentImp := gini(counts, total)
	dim := len(samples[idx[0]].Features)

	order := make([]int, len(idx))
	leftCounts := make([]float64, numClass)
	for f := 0; f < dim; f++ {
		copy(order, idx)
		sort.SliceStable(order, func(a, b int) bool {
			return samples[order[a]].Features[f] < samples[order[b]].Features[f]
		})
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		leftTotal := 0.0
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			leftCounts[samples[i].Label] += weights[i]
			leftTotal += weights[i]
			cur, next := samples[i].Features[f], samples[order[pos+1]].Features[f]
			if cur == next {
				continue // cannot split between equal values
			}
			rightTotal := total - leftTotal
			if leftTotal < opts.MinLeaf || rightTotal < opts.MinLeaf {
				continue
			}
			leftImp := gini(leftCounts, leftTotal)
			rightImp := giniComplement(counts, leftCounts, rightTotal)
			gain := parentImp - (leftTotal*leftImp+rightTotal*rightImp)/total
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (cur + next) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}

	var left, right []int
	for _, i := range idx {
		if samples[i].Features[bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.Feature = bestFeature
	node.Threshold = bestThreshold
	node.Left = grow(samples, weights, left, numClass, opts, depth+1, t)
	node.Right = grow(samples, weights, right, numClass, opts, depth+1, t)
	return node
}

func gini(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	s := 0.0
	for _, c := range counts {
		p := c / total
		s += p * p
	}
	return 1 - s
}

// giniComplement computes the Gini impurity of (parent − left).
func giniComplement(parent, left []float64, rightTotal float64) float64 {
	if rightTotal <= 0 {
		return 0
	}
	s := 0.0
	for i := range parent {
		p := (parent[i] - left[i]) / rightTotal
		s += p * p
	}
	return 1 - s
}

func argmax(xs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, x := range xs {
		if x > bestV {
			bestV, best = x, i
		}
	}
	return best
}

// Predict returns the predicted class for features x.
func (t *Tree) Predict(x []float64) (int, error) {
	if t.Root == nil {
		return 0, ErrNotTrained
	}
	n := t.Root
	for n.Feature >= 0 {
		if n.Feature >= len(x) {
			return 0, ErrDimension
		}
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class, nil
}

// PredictProba returns the class distribution at the reached leaf.
func (t *Tree) PredictProba(x []float64) ([]float64, error) {
	if t.Root == nil {
		return nil, ErrNotTrained
	}
	n := t.Root
	for n.Feature >= 0 {
		if n.Feature >= len(x) {
			return nil, ErrDimension
		}
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	total := 0.0
	for _, c := range n.Counts {
		total += c
	}
	probs := make([]float64, len(n.Counts))
	if total > 0 {
		for i, c := range n.Counts {
			probs[i] = c / total
		}
	}
	return probs, nil
}

// Accuracy returns the fraction of samples t classifies correctly.
func (t *Tree) Accuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	correct := 0
	for _, s := range samples {
		c, err := t.Predict(s.Features)
		if err != nil {
			return 0, err
		}
		if c == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// FeatureImportance returns per-feature weighted Gini-gain totals, the
// importance measure the paper used to prune its candidate feature set.
func (t *Tree) FeatureImportance(dim int) []float64 {
	imp := make([]float64, dim)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.Feature < 0 {
			return
		}
		total := sum(n.Counts)
		lTotal := sum(n.Left.Counts)
		rTotal := sum(n.Right.Counts)
		gain := gini(n.Counts, total) - (lTotal*gini(n.Left.Counts, lTotal)+rTotal*gini(n.Right.Counts, rTotal))/total
		if n.Feature < dim {
			imp[n.Feature] += gain * total
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return imp
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MarshalJSON/Unmarshal round-trip through the exported struct fields.

// Encode serializes the tree to JSON.
func (t *Tree) Encode() ([]byte, error) { return json.Marshal(t) }

// Decode parses a tree serialized by Encode.
func Decode(data []byte) (*Tree, error) {
	var t Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	if t.Root == nil {
		return nil, ErrNotTrained
	}
	return &t, nil
}

// ModeledBytes estimates the serialized model size — the paper highlights
// its 11 KB decision tree as a deployment advantage.
func (t *Tree) ModeledBytes() int64 {
	data, err := t.Encode()
	if err != nil {
		return 0
	}
	return int64(len(data))
}
