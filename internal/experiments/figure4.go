package experiments

import (
	"math"

	"bootes/internal/accel"
	"bootes/internal/chart"
	"bootes/internal/parallel"
	"bootes/internal/stats"
)

// Figure4Cell is one (accelerator, reorderer, workload) traffic breakdown,
// normalized to compulsory traffic — one stacked bar of the paper's Figure 4.
type Figure4Cell struct {
	Accelerator string
	Reorderer   string
	Workload    string
	NormA       float64
	NormB       float64
	NormC       float64
}

// Total returns the stacked bar height.
func (f Figure4Cell) Total() float64 { return f.NormA + f.NormB + f.NormC }

// Figure4Result aggregates the adaptability analysis.
type Figure4Result struct {
	Cells []Figure4Cell
	// Reduction[accelerator][reorderer] is the geomean factor by which
	// Bootes' total traffic beats that reorderer's on that accelerator
	// (the paper's headline 1.67×/1.55×/1.95×/2.31× style numbers).
	Reduction map[string]map[string]float64
	// ReductionB is the same comparison restricted to B-operand traffic —
	// the component row reordering targets (A streams once and C is
	// ordering-invariant, so they dilute the total).
	ReductionB map[string]map[string]float64
}

// Figure4 runs the full adaptability study: every suite workload × every
// reordering method × every accelerator, measuring off-chip traffic split by
// operand on the detailed cache simulator.
func Figure4(c Config) (*Figure4Result, error) {
	c = c.WithDefaults()
	out := &Figure4Result{
		Reduction:  map[string]map[string]float64{},
		ReductionB: map[string]map[string]float64{},
	}

	// total[acc][reo][workload] = normalized total traffic; bOnly likewise
	// for the B operand.
	totals := map[string]map[string]map[string]float64{}
	bOnly := map[string]map[string]map[string]float64{}

	// Each workload's preprocess+simulate chain is independent (generation
	// and every reorderer are seeded per workload), so workloads fan out
	// across Config.Jobs workers; cells land in per-workload slices and are
	// merged in suite order, keeping the result — and the rendered report —
	// identical to a sequential run.
	specs := c.suite()
	cellsByWorkload := make([][]Figure4Cell, len(specs))
	errs := make([]error, len(specs))
	parallel.ForWorkers(c.Jobs, len(specs), 1, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			spec := specs[idx]
			a := spec.Generate(c.Scale)
			aOp, bOp := operands(a)
			// Permutations are accelerator-independent: compute once per method.
			for _, r := range c.reorderers(aOp) {
				res, err := r.Reorder(aOp)
				if err != nil {
					errs[idx] = err
					return
				}
				for _, acfg := range c.Accelerators {
					scaled := scaleAccelerator(acfg, c.Scale)
					sim, err := simulateWithPerm(scaled, aOp, bOp, res.Perm)
					if err != nil {
						errs[idx] = err
						return
					}
					na, nb, nc := sim.NormalizedTraffic()
					cellsByWorkload[idx] = append(cellsByWorkload[idx], Figure4Cell{
						Accelerator: acfg.Name,
						Reorderer:   r.Name(),
						Workload:    spec.ID,
						NormA:       na, NormB: nb, NormC: nc,
					})
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, cells := range cellsByWorkload {
		for _, cell := range cells {
			out.Cells = append(out.Cells, cell)
			if totals[cell.Accelerator] == nil {
				totals[cell.Accelerator] = map[string]map[string]float64{}
				bOnly[cell.Accelerator] = map[string]map[string]float64{}
			}
			if totals[cell.Accelerator][cell.Reorderer] == nil {
				totals[cell.Accelerator][cell.Reorderer] = map[string]float64{}
				bOnly[cell.Accelerator][cell.Reorderer] = map[string]float64{}
			}
			totals[cell.Accelerator][cell.Reorderer][cell.Workload] = nz(cell.Total())
			bOnly[cell.Accelerator][cell.Reorderer][cell.Workload] = nz(cell.NormB)
		}
	}

	// Geomean reduction of Bootes vs each method, per accelerator.
	geo := func(src map[string]map[string]map[string]float64, dst map[string]map[string]float64) {
		for accName, byReo := range src {
			bootes := byReo["Bootes"]
			dst[accName] = map[string]float64{}
			for reoName, byWorkload := range byReo {
				if reoName == "Bootes" {
					continue
				}
				var ratios []float64
				for w, t := range byWorkload {
					if bt, ok := bootes[w]; ok && bt > 0 {
						ratios = append(ratios, t/bt)
					}
				}
				if len(ratios) > 0 {
					dst[accName][reoName] = stats.MustGeoMean(ratios)
				}
			}
		}
	}
	geo(totals, out.Reduction)
	geo(bOnly, out.ReductionB)

	c.printf("\nFigure 4 — memory traffic normalized to compulsory (A/B/C breakdown)\n")
	for _, acfg := range c.Accelerators {
		c.printf("--- %s ---\n", acfg.Name)
		c.printf("%-4s", "WL")
		for _, r := range c.reorderers(nil) {
			c.printf(" %21s", r.Name())
		}
		c.printf("\n")
		for _, spec := range c.suite() {
			c.printf("%-4s", spec.ID)
			for _, r := range c.reorderers(nil) {
				cell, ok := findCell(out.Cells, acfg.Name, r.Name(), spec.ID)
				if !ok {
					c.printf(" %21s", "-")
					continue
				}
				c.printf("  %5.2f+%5.2f+%5.2f=%4.1f", cell.NormA, cell.NormB, cell.NormC, cell.Total())
			}
			c.printf("\n")
		}
		c.printf("Bootes total-traffic reduction (geomean): ")
		for _, reo := range []string{"Original", "Gamma", "Graph", "Hier"} {
			c.printf("%s %.2fx  ", reo, out.Reduction[acfg.Name][reo])
		}
		c.printf("\nBootes B-traffic reduction (geomean):     ")
		for _, reo := range []string{"Original", "Gamma", "Graph", "Hier"} {
			c.printf("%s %.2fx  ", reo, out.ReductionB[acfg.Name][reo])
		}
		c.printf("\n")

		if c.FigDir != "" {
			groups := make([]string, 0, len(c.suite()))
			for _, spec := range c.suite() {
				groups = append(groups, spec.ID)
			}
			var series []chart.BarSeries
			for _, r := range c.reorderers(nil) {
				vals := make([]float64, len(groups))
				for gi, wl := range groups {
					if cell, ok := findCell(out.Cells, acfg.Name, r.Name(), wl); ok {
						vals[gi] = cell.Total()
					} else {
						vals[gi] = math.NaN()
					}
				}
				series = append(series, chart.BarSeries{Name: r.Name(), Values: vals})
			}
			if err := writeSVG(c, "figure4_"+acfg.Name+".svg", chart.GroupedBars{
				Title:  "Figure 4 — traffic normalized to compulsory (" + acfg.Name + ")",
				YLabel: "traffic / compulsory",
				Groups: groups,
				Series: series,
				YRef:   1,
			}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// scaleAccelerator shrinks an accelerator's cache with the workload scale so
// cache/working-set ratios match the full-size setup.
func scaleAccelerator(cfg accel.Config, scale float64) accel.Config {
	out := cfg
	out.CacheBytes = int64(float64(cfg.CacheBytes) * scale)
	if out.CacheBytes < 4<<10 {
		out.CacheBytes = 4 << 10
	}
	return out
}

func findCell(cells []Figure4Cell, acc, reo, wl string) (Figure4Cell, bool) {
	for _, c := range cells {
		if c.Accelerator == acc && c.Reorderer == reo && c.Workload == wl {
			return c, true
		}
	}
	return Figure4Cell{}, false
}
