package experiments

import (
	"bootes/internal/accel"
	"bootes/internal/core"
	"bootes/internal/dtree"
	"bootes/internal/stats"
)

// ModelComparisonResult reproduces the paper's §3 model-selection
// discussion: ensembles are a little more accurate than the single decision
// tree but cost considerably more storage, which is why Bootes deploys the
// tree.
type ModelComparisonResult struct {
	TreeAccuracy   float64
	TreeBytes      int64
	ForestAccuracy float64
	ForestBytes    int64
}

// ModelComparison trains a single CART tree and a bagged forest on the same
// labelled corpus split and compares held-out accuracy and serialized size.
func ModelComparison(c Config, corpus []LabeledMatrix) (*ModelComparisonResult, error) {
	c = c.WithDefaults()
	if corpus == nil {
		var err error
		corpus, err = c.BuildCorpus()
		if err != nil {
			return nil, err
		}
	}
	rep, test, err := c.trainOn(corpus)
	if err != nil {
		return nil, err
	}
	testS := make([]dtree.Sample, len(test))
	testIDs := map[string]bool{}
	for i, m := range test {
		testIDs[m.Spec.ID] = true
		testS[i] = dtree.Sample{Features: m.Features.Vector(), Label: m.Label}
	}
	var trainS []dtree.Sample
	for _, m := range corpus {
		if !testIDs[m.Spec.ID] {
			trainS = append(trainS, dtree.Sample{Features: m.Features.Vector(), Label: m.Label})
		}
	}

	forest, err := dtree.TrainForest(trainS, core.NumClasses, dtree.ForestOptions{
		Trees: 25,
		Tree:  dtree.Options{MaxDepth: 8, MinLeaf: 1, BalanceClasses: true},
		Seed:  c.Seed,
	})
	if err != nil {
		return nil, err
	}

	out := &ModelComparisonResult{
		TreeBytes:   rep.ModelBytes,
		ForestBytes: forest.ModeledBytes(),
	}
	out.TreeAccuracy = rep.TestAccuracy
	if len(testS) > 0 {
		out.ForestAccuracy, err = forest.Accuracy(testS)
		if err != nil {
			return nil, err
		}
	}

	c.printf("\nModel comparison (paper §3: why a decision tree)\n")
	c.printf("%-16s %12s %12s\n", "Model", "accuracy", "size")
	c.printf("%-16s %11.1f%% %11dB\n", "Decision tree", 100*out.TreeAccuracy, out.TreeBytes)
	c.printf("%-16s %11.1f%% %11dB (%.0fx larger)\n", "Random forest",
		100*out.ForestAccuracy, out.ForestBytes,
		float64(out.ForestBytes)/float64(maxI64(out.TreeBytes, 1)))
	return out, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EnergyRow is one workload's energy on one accelerator, original vs Bootes.
type EnergyRow struct {
	Workload    string
	Accelerator string
	OriginalPJ  float64
	BootesPJ    float64
	MemoryShare float64 // of the original run
}

// EnergyReportResult quantifies the paper's §5.2 energy argument: off-chip
// transfers cost orders of magnitude more than computation, so the traffic
// Bootes removes converts directly into energy savings.
type EnergyReportResult struct {
	Rows []EnergyRow
	// Saving[accelerator] is the geomean energy ratio original/Bootes.
	Saving map[string]float64
}

// EnergyReport runs a suite subset with and without Bootes and applies the
// default energy model.
func EnergyReport(c Config) (*EnergyReportResult, error) {
	c = c.WithDefaults()
	out := &EnergyReportResult{Saving: map[string]float64{}}
	perAccel := map[string][]float64{}
	model := accel.DefaultEnergy()

	ids := c.SuiteIDs
	if len(ids) == 0 {
		ids = []string{"IN", "MI", "SM", "EX"}
		c.SuiteIDs = ids
	}
	for _, spec := range c.suite() {
		a := spec.Generate(c.Scale)
		aOp, bOp := operands(a)
		pipeline := c.reorderers(aOp)[0]
		res, err := pipeline.Reorder(aOp)
		if err != nil {
			return nil, err
		}
		for _, acfg := range c.Accelerators {
			scaled := scaleAccelerator(acfg, c.Scale)
			base, err := simulateWithPerm(scaled, aOp, bOp, nil)
			if err != nil {
				return nil, err
			}
			with, err := simulateWithPerm(scaled, aOp, bOp, res.Perm)
			if err != nil {
				return nil, err
			}
			e0 := base.Energy(model)
			e1 := with.Energy(model)
			row := EnergyRow{
				Workload:    spec.ID,
				Accelerator: acfg.Name,
				OriginalPJ:  e0.TotalPJ(),
				BootesPJ:    e1.TotalPJ(),
				MemoryShare: e0.MemoryShare(),
			}
			out.Rows = append(out.Rows, row)
			perAccel[acfg.Name] = append(perAccel[acfg.Name], nz(row.OriginalPJ/nzF(row.BootesPJ)))
		}
	}
	for name, ratios := range perAccel {
		out.Saving[name] = stats.MustGeoMean(ratios)
	}

	c.printf("\nEnergy report (paper §5.2: traffic reduction → efficiency)\n")
	c.printf("%-4s %-10s %14s %14s %10s\n", "WL", "Accel", "orig (µJ)", "bootes (µJ)", "mem share")
	for _, r := range out.Rows {
		c.printf("%-4s %-10s %14.1f %14.1f %9.0f%%\n",
			r.Workload, r.Accelerator, r.OriginalPJ/1e6, r.BootesPJ/1e6, 100*r.MemoryShare)
	}
	c.printf("geomean energy saving: ")
	for _, acfg := range c.Accelerators {
		c.printf("%s %.2fx  ", acfg.Name, out.Saving[acfg.Name])
	}
	c.printf("\n")
	return out, nil
}

func nzF(x float64) float64 {
	if x == 0 {
		return 1e-12
	}
	return x
}
