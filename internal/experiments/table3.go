package experiments

import "bootes/internal/workloads"

// Table3Row is one suite matrix with its generated realization at the
// configured scale.
type Table3Row struct {
	Spec       workloads.Spec
	GenRows    int
	GenCols    int
	GenNNZ     int64
	GenDensity float64
}

// Table3Result lists the evaluation suite.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 regenerates the suite table: the paper's matrices (name, shape,
// density) and the synthetic analog realized at the configured scale.
func Table3(c Config) (*Table3Result, error) {
	c = c.WithDefaults()
	out := &Table3Result{}
	c.printf("\nTable 3 — sparse matrix suite (paper spec → generated analog at scale %.2f)\n", c.Scale)
	c.printf("%-3s %-18s %12s %9s %-15s %12s %9s\n", "ID", "Matrix", "Size", "Density", "Archetype", "GenSize", "GenDens")
	for _, spec := range c.suite() {
		m := spec.Generate(c.Scale)
		row := Table3Row{
			Spec: spec, GenRows: m.Rows, GenCols: m.Cols,
			GenNNZ: m.NNZ(), GenDensity: m.Density(),
		}
		out.Rows = append(out.Rows, row)
		c.printf("%-3s %-18s %5dk x %4dk %9.2e %-15s %5d x %5d %9.2e\n",
			spec.ID, spec.Name, spec.Rows/1000, spec.Cols/1000, spec.Density,
			spec.Archetype.String(), m.Rows, m.Cols, row.GenDensity)
	}
	return out, nil
}
