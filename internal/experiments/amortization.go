package experiments

import (
	"fmt"
	"math"
	"sort"
)

// AmortizationRow is one (workload, accelerator, reorderer) break-even
// analysis: how many times must the same sparsity pattern be multiplied for
// the reordering to pay for itself?
type AmortizationRow struct {
	Workload    string
	Accelerator string
	Reorderer   string
	// PreprocessSeconds is the one-time host cost.
	PreprocessSeconds float64
	// SavingSeconds is the per-multiplication execution-time saving vs the
	// original order (can be ≤ 0 when the reordering does not help).
	SavingSeconds float64
	// BreakEvenReuses is ceil(preprocess / saving); +Inf when saving ≤ 0.
	BreakEvenReuses float64
}

// AmortizationResult reproduces the paper's §5.3 argument quantitatively:
// preprocessing is worth it only when the pattern is reused enough, and a
// faster preprocessor lowers that bar.
type AmortizationResult struct {
	Rows []AmortizationRow
	// MedianBreakEven[reorderer] aggregates over workloads/accelerators
	// (median, since +Inf rows would destroy a geomean).
	MedianBreakEven map[string]float64
}

// Amortization measures per-method break-even reuse counts on a suite
// subset.
func Amortization(c Config) (*AmortizationResult, error) {
	c = c.WithDefaults()
	if len(c.SuiteIDs) == 0 {
		c.SuiteIDs = []string{"IN", "MI", "SM", "EX"}
	}
	out := &AmortizationResult{MedianBreakEven: map[string]float64{}}
	perMethod := map[string][]float64{}

	for _, spec := range c.suite() {
		a := spec.Generate(c.Scale)
		aOp, bOp := operands(a)
		methods := c.reorderers(aOp)
		// Original compute time per accelerator.
		for _, acfg := range c.Accelerators {
			scaled := scaleAccelerator(acfg, c.Scale)
			base, err := simulateWithPerm(scaled, aOp, bOp, nil)
			if err != nil {
				return nil, err
			}
			for _, r := range methods {
				if r.Name() == "Original" {
					continue
				}
				res, err := r.Reorder(aOp)
				if err != nil {
					return nil, err
				}
				sim, err := simulateWithPerm(scaled, aOp, bOp, res.Perm)
				if err != nil {
					return nil, err
				}
				saving := base.Seconds() - sim.Seconds()
				row := AmortizationRow{
					Workload:          spec.ID,
					Accelerator:       acfg.Name,
					Reorderer:         r.Name(),
					PreprocessSeconds: res.PreprocessTime.Seconds(),
					SavingSeconds:     saving,
				}
				if saving > 0 {
					row.BreakEvenReuses = math.Ceil(row.PreprocessSeconds / saving)
				} else {
					row.BreakEvenReuses = math.Inf(1)
				}
				out.Rows = append(out.Rows, row)
				perMethod[r.Name()] = append(perMethod[r.Name()], row.BreakEvenReuses)
			}
		}
	}
	for name, vals := range perMethod {
		out.MedianBreakEven[name] = medianWithInf(vals)
	}

	c.printf("\nAmortization (paper §5.3: preprocessing pays off only under reuse)\n")
	c.printf("%-4s %-10s %-8s %12s %14s %12s\n", "WL", "Accel", "Method", "preproc(s)", "saving(s)/mul", "break-even")
	for _, r := range out.Rows {
		be := "never"
		if !math.IsInf(r.BreakEvenReuses, 1) {
			be = formatCount(r.BreakEvenReuses)
		}
		c.printf("%-4s %-10s %-8s %12.3f %14.6f %12s\n",
			r.Workload, r.Accelerator, r.Reorderer, r.PreprocessSeconds, r.SavingSeconds, be)
	}
	c.printf("median break-even reuses: ")
	for name, v := range out.MedianBreakEven {
		if math.IsInf(v, 1) {
			c.printf("%s never  ", name)
		} else {
			c.printf("%s %s  ", name, formatCount(v))
		}
	}
	c.printf("\n(the paper: preprocessing can cost ~1000 multiplications — reuse is what justifies it)\n")
	return out, nil
}

// medianWithInf returns the median treating +Inf as the largest values.
func medianWithInf(vals []float64) float64 {
	if len(vals) == 0 {
		return math.Inf(1)
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func formatCount(v float64) string {
	switch {
	case v >= 1e6:
		return "≥1M"
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
