package experiments

import (
	"time"

	"bootes/internal/core"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/stats"
	"bootes/internal/workloads"
)

// Table2Row is the measured scaling behaviour of one reordering algorithm.
type Table2Row struct {
	Algorithm string
	// SizeExponent is the fitted α in time ≈ c·Nᵅ at fixed row population.
	SizeExponent float64
	// DensityExponent is the fitted β in time ≈ c·qᵝ at fixed size, where q
	// is the mean nonzeros per row (the paper's "density squared" factors).
	DensityExponent float64
	// Times holds (N, seconds) samples of the size sweep.
	Sizes []int
	Times []float64
}

// Table2Result aggregates the complexity study.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 regenerates the paper's Table 2 empirically: preprocessing time is
// measured over a size sweep (fixed row population) and a density sweep
// (fixed size), and the scaling exponents are fitted in log-log space.
// The paper's claims to confirm: Bootes and Graph scale ~linearly in matrix
// size; Gamma and Graph degrade ~quadratically with density; Bootes' density
// exponent stays low.
func Table2(c Config) (*Table2Result, error) {
	c = c.WithDefaults()
	base := int(4096 * c.Scale * 4)
	if base < 256 {
		base = 256
	}
	sizes := []int{base, base * 2, base * 4}
	rowPops := []float64{8, 16, 32}
	const fixedPop = 12.0

	algos := []reorder.Reorderer{
		&core.Pipeline{ForceReorder: true, ForceK: 8, Spectral: looseSpectral(c)},
		reorder.Gamma{Seed: c.Seed},
		reorder.Graph{Seed: c.Seed},
		reorder.Hier{},
	}

	out := &Table2Result{}
	for _, algo := range algos {
		row := Table2Row{Algorithm: algo.Name()}

		// Size sweep at fixed row population.
		var ns, ts []float64
		for _, n := range sizes {
			m := workloads.ScrambledBlock(workloads.Params{
				Rows: n, Cols: n, Density: fixedPop / float64(n), Seed: c.Seed + int64(n), Groups: 8,
			})
			t, err := timeReorder(algo, m)
			if err != nil {
				return nil, err
			}
			row.Sizes = append(row.Sizes, n)
			row.Times = append(row.Times, t)
			ns = append(ns, float64(n))
			ts = append(ts, t)
		}
		alpha, err := stats.ScalingExponent(ns, ts)
		if err != nil {
			return nil, err
		}
		row.SizeExponent = alpha

		// Density sweep at fixed size.
		var qs, dts []float64
		n := sizes[0]
		for _, pop := range rowPops {
			m := workloads.ScrambledBlock(workloads.Params{
				Rows: n, Cols: n, Density: pop / float64(n), Seed: c.Seed + int64(pop), Groups: 8,
			})
			t, err := timeReorder(algo, m)
			if err != nil {
				return nil, err
			}
			qs = append(qs, pop)
			dts = append(dts, t)
		}
		beta, err := stats.ScalingExponent(qs, dts)
		if err != nil {
			return nil, err
		}
		row.DensityExponent = beta
		out.Rows = append(out.Rows, row)
	}

	c.printf("\nTable 2 — empirical complexity (fitted scaling exponents)\n")
	c.printf("%-14s %14s %16s\n", "Algorithm", "time ~ N^α", "time ~ q^β")
	for _, r := range out.Rows {
		c.printf("%-14s %14.2f %16.2f\n", r.Algorithm, r.SizeExponent, r.DensityExponent)
	}
	c.printf("(paper: Gamma/Graph density-squared; Bootes linear in N)\n")
	return out, nil
}

// timeReorder times one reordering in seconds, repeating very fast runs so
// the sample is stable enough for exponent fitting.
func timeReorder(algo reorder.Reorderer, m *sparse.CSR) (float64, error) {
	const minWall = 20 * time.Millisecond
	var total time.Duration
	runs := 0
	for total < minWall && runs < 16 {
		res, err := algo.Reorder(m)
		if err != nil {
			return 0, err
		}
		total += res.PreprocessTime
		runs++
	}
	return total.Seconds() / float64(runs), nil
}
