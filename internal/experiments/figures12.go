package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bootes/internal/core"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/spy"
	"bootes/internal/workloads"
)

// Figure1Result quantifies the reordering opportunity the paper's Figure 1
// annotates on invextr1_new: repeated column patterns across distant rows.
type Figure1Result struct {
	Matrix string
	// DistantSimilarPairs is the fraction of sampled coupled row pairs that
	// are more than 10% of the matrix apart yet share substantial column
	// support (Jaccard > 0.15) — the repeated patterns Figure 1 annotates.
	DistantSimilarPairs float64
	// Plot is the ASCII spy plot.
	Plot string
}

// Figure1 renders the opportunity spy plot on the invextr1_new analog.
func Figure1(c Config) (*Figure1Result, error) {
	c = c.WithDefaults()
	spec, _ := workloads.ByID("IN")
	a := spec.Generate(c.Scale)

	// Count distant-but-similar coupled pairs using the feature sampler's
	// machinery: coupled pairs via Aᵀ.
	at := sparse.Transpose(a.Pattern())
	rng := newRand(c.Seed)
	distant, total := 0, 0
	for s := 0; s < 2000; s++ {
		i := rng.Intn(a.Rows)
		row := a.Row(i)
		if len(row) == 0 {
			continue
		}
		cCol := row[rng.Intn(len(row))]
		peers := at.Row(int(cCol))
		j := int(peers[rng.Intn(len(peers))])
		if i == j {
			continue
		}
		total++
		gap := i - j
		if gap < 0 {
			gap = -gap
		}
		if gap > a.Rows/10 && sparse.Jaccard(a, i, j) > 0.15 {
			distant++
		}
	}
	res := &Figure1Result{Matrix: spec.Name, Plot: spy.ASCII(a, spy.Options{})}
	if total > 0 {
		res.DistantSimilarPairs = float64(distant) / float64(total)
	}
	if err := writePGM(c, "figure1_"+spec.ID+".pgm", a); err != nil {
		return nil, err
	}
	c.printf("\nFigure 1 — reordering opportunity (%s analog, %dx%d)\n", spec.Name, a.Rows, a.Cols)
	c.printf("%s", res.Plot)
	c.printf("distant similar coupled pairs: %.1f%% of sampled pairs share substantial column support across >10%% of the matrix\n",
		100*res.DistantSimilarPairs)
	return res, nil
}

// Figure2Panel is one reordered spy plot.
type Figure2Panel struct {
	Label string
	Plot  string
	// BTrafficRatio is this ordering's row-LRU B traffic vs the original.
	BTrafficRatio float64
}

// Figure2Result reproduces the paper's visualized-reordering figure: the
// original matrix, the three baselines, and Bootes at each candidate k.
type Figure2Result struct {
	Panels []Figure2Panel
}

// Figure2 renders reordered spy plots for a structured demo matrix.
func Figure2(c Config) (*Figure2Result, error) {
	c = c.WithDefaults()
	// A small scrambled-block matrix makes the recovered structure visible
	// at ASCII resolution, like the paper's Figure 2(a).
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 512, Cols: 512, Density: 0.02, Seed: c.Seed + 21, Groups: 4,
	})
	out := &Figure2Result{}

	add := func(label string, perm sparse.Permutation) error {
		m := a
		ratio := 1.0
		if perm != nil && !perm.IsIdentity() {
			var err error
			m, err = sparse.PermuteRows(a, perm)
			if err != nil {
				return err
			}
			r, err := trafficRatio(a, perm, 8<<10)
			if err != nil {
				return err
			}
			ratio = r
		}
		out.Panels = append(out.Panels, Figure2Panel{
			Label:         label,
			Plot:          spy.ASCII(m, spy.Options{Width: 48, Height: 24}),
			BTrafficRatio: ratio,
		})
		return writePGM(c, fmt.Sprintf("figure2_%02d.pgm", len(out.Panels)), m)
	}

	if err := add("(a) Original", nil); err != nil {
		return nil, err
	}
	for _, r := range []reorder.Reorderer{reorder.Gamma{Seed: c.Seed}, reorder.Graph{Seed: c.Seed}, reorder.Hier{}} {
		res, err := r.Reorder(a)
		if err != nil {
			return nil, err
		}
		if err := add(fmt.Sprintf("(%c) %s", 'b'+len(out.Panels)-1, r.Name()), res.Perm); err != nil {
			return nil, err
		}
	}
	for _, k := range core.CandidateKs {
		res, err := core.FixedK{K: k, Opts: looseSpectral(c)}.Reorder(a)
		if err != nil {
			return nil, err
		}
		if err := add(fmt.Sprintf("(%c) Bootes k=%d", 'b'+len(out.Panels)-1, k), res.Perm); err != nil {
			return nil, err
		}
	}

	c.printf("\nFigure 2 — visualized row reordering (B-traffic ratio vs original in brackets)\n")
	for _, p := range out.Panels {
		c.printf("%s  [B ratio %.2f]\n%s", p.Label, p.BTrafficRatio, p.Plot)
	}
	return out, nil
}

// svgChart is anything that renders itself as SVG.
type svgChart interface {
	WriteSVG(w io.Writer) error
}

// writeSVG renders a chart into c.FigDir when configured.
func writeSVG(c Config, name string, ch svgChart) error {
	if c.FigDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.FigDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.FigDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return ch.WriteSVG(f)
}

// writePGM renders m into c.FigDir when configured.
func writePGM(c Config, name string, m *sparse.CSR) error {
	if c.FigDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.FigDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.FigDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return spy.WritePGM(f, m, spy.Options{})
}
