package experiments

import (
	"context"
	"fmt"

	"bootes/internal/core"
	"bootes/internal/parallel"
	"bootes/internal/refine"
	"bootes/internal/workloads"
)

// SelectorRecord captures one corpus matrix's cluster-count-selector
// comparison: the best fixed-k sweep result (the strongest selector the
// candidate set {2,4,8,16,32} can produce — every k is tried and scored by
// the traffic model) against eigengap auto-k over the refined similarity.
// Ratios are predicted B traffic under the permutation divided by B traffic
// in original order (internal/trafficmodel), lower is better.
type SelectorRecord struct {
	// Archetype names the workload generator; New marks the archetypes added
	// for the auto-k evaluation (cluster structure the fixed set handles
	// poorly).
	Archetype string
	New       bool
	Rows      int
	NNZ       int64
	// CacheBytes is the per-matrix LRU capacity the ratios were scored at:
	// ~1/20 of B's modeled bytes — roughly one planted cluster's working
	// set, so exact-k orderings are rewarded and capacity misses exist (a
	// cache that holds the whole operand makes every ordering tie at 1).
	CacheBytes int64
	// BestFixedK and FixedRatio are the sweep winner and its traffic ratio.
	BestFixedK int
	FixedRatio float64
	// AutoK and AutoRatio are the eigengap selection and its ratio. On a
	// fallback outcome the selector defers to the fixed-k sweep (AutoK = 0,
	// AutoRatio = FixedRatio): the production recipe falls back to the sweep
	// when the spectrum is ambiguous, so the comparison scores that policy.
	AutoK     int
	AutoRatio float64
	// Outcome is the auto-k outcome string ("selected: k=…" / "fallback-…").
	Outcome string
}

// DeltaPct is the auto-k improvement over the best fixed k in percent of the
// fixed ratio; positive means auto-k predicts less traffic.
func (r SelectorRecord) DeltaPct() float64 {
	if r.FixedRatio == 0 {
		return 0
	}
	return (r.FixedRatio - r.AutoRatio) / r.FixedRatio * 100
}

// SelectorReport is the SC experiment outcome.
type SelectorReport struct {
	Records []SelectorRecord
}

// NewArchetypeWins counts new archetypes where auto-k is strictly better.
func (r *SelectorReport) NewArchetypeWins() (wins, total int) {
	for _, rec := range r.Records {
		if !rec.New {
			continue
		}
		total++
		if rec.AutoRatio < rec.FixedRatio {
			wins++
		}
	}
	return wins, total
}

// WorstExistingRegressionPct returns the largest auto-k regression (negative
// delta, as a positive percentage) across the pre-existing archetypes; 0 when
// auto-k never loses to the sweep on them.
func (r *SelectorReport) WorstExistingRegressionPct() float64 {
	worst := 0.0
	for _, rec := range r.Records {
		if rec.New {
			continue
		}
		if d := rec.DeltaPct(); d < 0 && -d > worst {
			worst = -d
		}
	}
	return worst
}

// selectorCorpus is the archetype sweep for the SC experiment: every
// pre-existing corpus archetype plus the three added for auto-k, one matrix
// each at nominal n = 4096 (5120 for the k=64 archetype so scaled runs keep
// ≥ 8 rows per planted cluster), ~24 nonzeros per row.
func selectorCorpus() []workloads.Spec {
	type entry struct {
		arch   workloads.Archetype
		rows   int
		groups int
	}
	existing := []entry{
		{workloads.ArchScrambledBlock, 4096, 16},
		{workloads.ArchFEM, 4096, 0},
		{workloads.ArchFEM3D, 4096, 0},
		{workloads.ArchPowerLaw, 4096, 0},
		{workloads.ArchCircuit, 4096, 0},
		{workloads.ArchLP, 4096, 16},
		{workloads.ArchKNN, 4096, 16},
		{workloads.ArchBanded, 4096, 0},
		{workloads.ArchRandom, 4096, 0},
	}
	added := []entry{
		{workloads.ArchManySmallClusters, 4096, 0},
		{workloads.ArchNoisyBlock64, 5120, 0},
		{workloads.ArchHubPowerLaw, 4096, 16},
	}
	var specs []workloads.Spec
	for i, e := range append(existing, added...) {
		specs = append(specs, workloads.Spec{
			ID:        fmt.Sprintf("SC%02d", i+1),
			Name:      e.arch.String(),
			Rows:      e.rows,
			Cols:      e.rows,
			Density:   24 / float64(e.rows),
			Archetype: e.arch,
			Groups:    e.groups,
			Seed:      7000 + int64(i),
		})
	}
	return specs
}

// selectorIsNew reports whether arch is one of the auto-k archetypes.
func selectorIsNew(arch string) bool {
	switch arch {
	case workloads.ArchManySmallClusters.String(),
		workloads.ArchNoisyBlock64.String(),
		workloads.ArchHubPowerLaw.String():
		return true
	}
	return false
}

// SelectorComparison runs the SC experiment: fixed-k sweep vs eigengap auto-k
// over the archetype corpus, scored by the row-granular LRU traffic model at a
// per-matrix cache of ~1/20 the operand's modeled bytes (see
// SelectorRecord.CacheBytes). Deterministic for a given (Scale, Seed) and
// any Jobs value — each workload is independently seeded and records land in
// spec order.
func SelectorComparison(c Config) (*SelectorReport, error) {
	c = c.WithDefaults()
	specs := selectorCorpus()
	recs := make([]SelectorRecord, len(specs))
	errs := make([]error, len(specs))
	parallel.ForWorkers(c.Jobs, len(specs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			recs[i], errs[i] = c.selectorRun(specs[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rep := &SelectorReport{Records: recs}

	c.printf("\nSelector comparison (SC): best fixed-k sweep vs eigengap auto-k\n")
	c.printf("predicted B-traffic ratio vs original order at a per-matrix cache of\n")
	c.printf("~B-bytes/20; Δ%% > 0 = auto-k better\n\n")
	c.printf("   %-22s %6s %8s %8s | %6s %8s | %8s %8s  %s\n",
		"archetype", "rows", "nnz", "cacheB", "best-k", "fixed", "auto-k", "Δ%", "outcome")
	for _, r := range recs {
		mark := " "
		if r.New {
			mark = "*"
		}
		autoK := "sweep"
		if r.AutoK > 0 {
			autoK = fmt.Sprintf("k=%d", r.AutoK)
		}
		c.printf(" %s %-22s %6d %8d %8d | %6d %8.4f | %8.4f %+8.2f  %s [%s]\n",
			mark, r.Archetype, r.Rows, r.NNZ, r.CacheBytes, r.BestFixedK, r.FixedRatio,
			r.AutoRatio, r.DeltaPct(), autoK, r.Outcome)
	}
	wins, total := rep.NewArchetypeWins()
	c.printf("\n * = new auto-k archetype; auto-k strictly better on %d/%d new, "+
		"worst existing-archetype regression %.2f%%\n", wins, total, rep.WorstExistingRegressionPct())
	return rep, nil
}

// selectorRun scores one matrix under both selectors.
func (c Config) selectorRun(spec workloads.Spec) (SelectorRecord, error) {
	a := spec.Generate(c.Scale)
	cache := maxI64(2<<10, a.NNZ()*12/20)
	rec := SelectorRecord{
		Archetype:  spec.Name,
		New:        selectorIsNew(spec.Name),
		Rows:       a.Rows,
		NNZ:        a.NNZ(),
		CacheBytes: cache,
	}

	// Fixed-k arm: sweep every candidate, keep the traffic-model winner.
	entries, err := core.SpectralSweep(a, core.CandidateKs, c.spectral(spec.Seed))
	if err != nil {
		return rec, fmt.Errorf("SC %s: sweep: %w", spec.Name, err)
	}
	rec.FixedRatio = -1
	for _, e := range entries {
		ratio, err := trafficRatio(a, e.Perm, cache)
		if err != nil {
			return rec, fmt.Errorf("SC %s: traffic k=%d: %w", spec.Name, e.K, err)
		}
		if rec.FixedRatio < 0 || ratio < rec.FixedRatio {
			rec.FixedRatio, rec.BestFixedK = ratio, e.K
		}
	}

	// Auto-k arm: the eigengap selector with the production refinement
	// recipe. ForceReorder bypasses the gate — the selector, not the gate,
	// is under comparison here.
	p := &core.Pipeline{
		ForceReorder: true,
		Spectral:     c.spectral(spec.Seed),
		AutoK:        core.AutoKOptions{Enabled: true, Refine: refine.Default()},
	}
	res, err := p.ReorderContext(context.Background(), a)
	if err != nil {
		return rec, fmt.Errorf("SC %s: auto-k: %w", spec.Name, err)
	}
	rec.Outcome = res.AutoK
	if core.AutoKOutcomeLabel(res.AutoK) == core.AutoKSelected {
		rec.AutoK = int(res.Extra["k"])
		rec.AutoRatio, err = trafficRatio(a, res.Perm, cache)
		if err != nil {
			return rec, fmt.Errorf("SC %s: traffic auto-k: %w", spec.Name, err)
		}
	} else {
		// Fallback: the production policy defers to the fixed-k sweep.
		rec.AutoRatio = rec.FixedRatio
	}
	return rec, nil
}
