package experiments

import (
	"bootes/internal/accel"
	"bootes/internal/stats"
	"bootes/internal/workloads"
)

// Table1Row holds one dataflow's aggregate behaviour over the probe suite.
type Table1Row struct {
	Dataflow accel.DataflowKind
	// Geomean traffic per operand normalized to compulsory total.
	NormA, NormB, NormC float64
	NormTotal           float64
	// Ops is geomean compute work (MACs for outer/row-wise, index
	// comparisons for inner) normalized to row-wise flops.
	Ops float64
	// Qualitative marks reproduced from the measurements (✓/✗ as in the
	// paper's Table 1).
	PsumGranularityOK  bool
	IndexIntersection  bool // true = suffers index intersection
	InputReuseProblem  bool
	OutputReuseProblem bool
}

// Table1Result aggregates the dataflow study.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 regenerates the paper's Table 1 quantitatively: the three dataflows
// run on a probe subset of the suite and the traffic/compute trade-offs are
// measured on the smallest-cache accelerator, where they are starkest.
func Table1(c Config) (*Table1Result, error) {
	c = c.WithDefaults()
	probes := []string{"VI", "SM", "EX"}
	if len(c.SuiteIDs) > 0 {
		probes = c.SuiteIDs
	}
	cfg := c.Accelerators[0]
	cfg.CacheBytes = int64(float64(cfg.CacheBytes) * c.Scale)
	if cfg.CacheBytes < 4<<10 {
		cfg.CacheBytes = 4 << 10
	}

	kinds := []accel.DataflowKind{accel.InnerProduct, accel.OuterProduct, accel.RowWiseProduct}
	perKind := make(map[accel.DataflowKind][]*accel.Result)
	var rowFlops []float64

	for _, id := range probes {
		spec, ok := workloads.ByID(id)
		if !ok {
			continue
		}
		a := spec.Generate(c.Scale)
		aOp, bOp := operands(a)
		var rowRes *accel.Result
		for _, kind := range kinds {
			res, err := accel.SimulateDataflow(kind, cfg, aOp, bOp)
			if err != nil {
				return nil, err
			}
			perKind[kind] = append(perKind[kind], res)
			if kind == accel.RowWiseProduct {
				rowRes = res
			}
		}
		rowFlops = append(rowFlops, float64(rowRes.Flops))
	}

	out := &Table1Result{}
	for _, kind := range kinds {
		results := perKind[kind]
		var nA, nB, nC, nT, ops []float64
		for i, r := range results {
			a, b, cc := r.NormalizedTraffic()
			nA = append(nA, nz(a))
			nB = append(nB, nz(b))
			nC = append(nC, nz(cc))
			nT = append(nT, nz(a+b+cc))
			ops = append(ops, nz(float64(r.Flops)/rowFlops[i]))
		}
		row := Table1Row{
			Dataflow:  kind,
			NormA:     stats.MustGeoMean(nA),
			NormB:     stats.MustGeoMean(nB),
			NormC:     stats.MustGeoMean(nC),
			NormTotal: stats.MustGeoMean(nT),
			Ops:       stats.MustGeoMean(ops),
		}
		switch kind {
		case accel.InnerProduct:
			row.PsumGranularityOK = true
			row.IndexIntersection = true
			row.InputReuseProblem = row.NormB > 2
		case accel.OuterProduct:
			row.OutputReuseProblem = row.NormC > 2
		case accel.RowWiseProduct:
			row.PsumGranularityOK = true
			row.InputReuseProblem = row.NormB > 1.2 // the gap Bootes targets
		}
		out.Rows = append(out.Rows, row)
	}

	c.printf("\nTable 1 — dataflow comparison (traffic normalized to compulsory, geomean over probes)\n")
	c.printf("%-10s %8s %8s %8s %8s %10s\n", "Dataflow", "A", "B", "C", "Total", "Ops/RW")
	for _, r := range out.Rows {
		c.printf("%-10s %8.2f %8.2f %8.2f %8.2f %10.2f\n",
			r.Dataflow, r.NormA, r.NormB, r.NormC, r.NormTotal, r.Ops)
	}
	return out, nil
}

// nz guards geometric means against zero components.
func nz(x float64) float64 {
	if x <= 0 {
		return 1e-12
	}
	return x
}
