// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 1-4, Figures 1-6, and the §5.1 decision-tree
// analysis). Each driver returns typed records — so tests can assert the
// paper's qualitative shapes — and renders the same rows/series the paper
// reports to a writer. cmd/benchsuite stitches the drivers into a full
// reproduction run.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"bootes/internal/accel"
	"bootes/internal/core"
	"bootes/internal/dtree"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

// Config controls a reproduction run.
type Config struct {
	// Scale shrinks every suite matrix (1 = the paper's Table 3 sizes).
	// The default 0.12 keeps a full reproduction under a few minutes while
	// preserving every qualitative shape.
	Scale float64
	// Seed drives all pseudo-randomness.
	Seed int64
	// Out receives the rendered report. nil discards it.
	Out io.Writer
	// Accelerators lists the simulated targets (default: the paper's three).
	Accelerators []accel.Config
	// Model is the trained decision tree used by Figure 3 and the Bootes
	// pipeline. nil lets drivers fall back to the heuristic gate or train
	// one on the fly where required.
	Model *dtree.Tree
	// SuiteIDs restricts Table 3 workloads to the listed IDs (nil = all).
	SuiteIDs []string
	// FigDir, when set, receives PGM renderings of the figure spy plots.
	FigDir string
	// Jobs bounds workload-level parallelism inside the drivers (the
	// benchsuite -jobs flag): each workload's full preprocess+simulate chain
	// runs as one job. ≤ 1 runs workloads sequentially; per-matrix kernels
	// still parallelize through internal/parallel either way. Results are
	// deterministic regardless of Jobs — every job is seeded independently
	// and outputs are merged in workload order.
	Jobs int
	// Similarity pins the similarity tier of every spectral pass the drivers
	// run (the benchsuite -similarity flag). The zero value (auto) keeps the
	// size/density selector; set core.SimExact to force the paper-literal
	// kernel on every workload regardless of size.
	Similarity core.SimilarityMode
}

// spectral returns the driver-wide spectral options seeded with seed.
func (c Config) spectral(seed int64) core.SpectralOptions {
	return core.SpectralOptions{Seed: seed, Similarity: c.Similarity}
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.12
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if len(c.Accelerators) == 0 {
		c.Accelerators = accel.Targets()
	}
	return c
}

func (c Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// suite returns the (possibly restricted) Table 3 specs.
func (c Config) suite() []workloads.Spec {
	all := workloads.Table3()
	if len(c.SuiteIDs) == 0 {
		return all
	}
	var out []workloads.Spec
	for _, id := range c.SuiteIDs {
		if s, ok := workloads.ByID(id); ok {
			out = append(out, s)
		}
	}
	return out
}

// operands applies the paper's methodology: B is identical to A (square), or
// Aᵀ when A is rectangular, and is never reordered.
func operands(a *sparse.CSR) (*sparse.CSR, *sparse.CSR) {
	if a.Rows == a.Cols {
		return a, a
	}
	return a, sparse.Transpose(a)
}

// reorderers builds the comparison set for matrix a: Bootes plus the three
// baselines plus the no-reorder Original, in the paper's presentation order.
// Gamma's window W is sized per its Algorithm 1 definition — the number of
// (average) rows of B that fit in its home accelerator's cache, scaled with
// the experiment — since the GAMMA preprocessor targets GAMMA hardware.
func (c Config) reorderers(a *sparse.CSR) []reorder.Reorderer {
	w := 128
	if a != nil && a.NNZ() > 0 && a.Rows > 0 {
		avgRowBytes := float64(a.NNZ()) / float64(a.Rows) * 12
		cache := float64(accel.GAMMA.CacheBytes) * c.Scale
		if est := int(cache / avgRowBytes); est > 1 {
			w = est
		}
	}
	return []reorder.Reorderer{
		&core.Pipeline{Model: c.Model, Spectral: c.spectral(c.Seed)},
		reorder.Gamma{Seed: c.Seed, W: w},
		reorder.Graph{Seed: c.Seed},
		reorder.Hier{},
		reorder.Original{},
	}
}

// simulateWithPerm permutes A, runs the row-wise simulator, and returns the
// result. The permutation is applied to A only; B keeps its original order,
// matching the paper's setup.
func simulateWithPerm(cfg accel.Config, a, b *sparse.CSR, perm sparse.Permutation) (*accel.Result, error) {
	ap := a
	if !perm.IsIdentity() {
		var err error
		ap, err = sparse.PermuteRows(a, perm)
		if err != nil {
			return nil, err
		}
	}
	return accel.SimulateRowWise(cfg, ap, b)
}

// newRand builds a deterministic PRNG for a driver.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed ^ 0x0b57e5)) }

// trafficRatio returns B traffic under perm divided by B traffic in original
// order, using the row-granular LRU model with the given cache size. B
// follows the paper's operand rule.
func trafficRatio(a *sparse.CSR, perm sparse.Permutation, cacheBytes int64) (float64, error) {
	aOp, bOp := operands(a)
	const elem = 12
	base, err := trafficmodel.EstimateB(aOp, bOp, cacheBytes, elem)
	if err != nil {
		return 0, err
	}
	with, err := trafficmodel.EstimateBWithPerm(aOp, bOp, perm, cacheBytes, elem)
	if err != nil {
		return 0, err
	}
	if base.BTraffic == 0 {
		return 1, nil
	}
	return float64(with.BTraffic) / float64(base.BTraffic), nil
}

// RunRecord captures one (workload, reorderer, accelerator) simulation.
type RunRecord struct {
	Workload    string
	Reorderer   string
	Accelerator string
	Traffic     accel.Traffic
	Compulsory  accel.Traffic
	Cycles      int64
	Preprocess  time.Duration
	Footprint   int64
	Reordered   bool
}

// NormTotal returns total traffic normalized to compulsory traffic.
func (r RunRecord) NormTotal() float64 {
	ct := float64(r.Compulsory.Total())
	if ct == 0 {
		return 0
	}
	return float64(r.Traffic.Total()) / ct
}
