package experiments

import (
	"strings"
	"testing"
)

// TestFigure4JobsDeterministic is the cmd/benchsuite -jobs smoke path: the
// workload-parallel Figure 4 run must render byte-identical reports and
// return identical cells for any jobs count.
func TestFigure4JobsDeterministic(t *testing.T) {
	run := func(jobs int) (*Figure4Result, string) {
		var sb strings.Builder
		cfg := Config{Scale: 0.05, Seed: 1, Out: &sb, Jobs: jobs, SuiteIDs: []string{"IN", "PO", "BC"}}
		res, err := Figure4(cfg)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return res, sb.String()
	}
	refRes, refOut := run(0)
	for _, jobs := range []int{2, 4} {
		res, out := run(jobs)
		if out != refOut {
			t.Errorf("jobs=%d: rendered report differs from sequential run", jobs)
		}
		if len(res.Cells) != len(refRes.Cells) {
			t.Fatalf("jobs=%d: %d cells, want %d", jobs, len(res.Cells), len(refRes.Cells))
		}
		for i, c := range res.Cells {
			if c != refRes.Cells[i] {
				t.Fatalf("jobs=%d: cell %d = %+v, want %+v", jobs, i, c, refRes.Cells[i])
			}
		}
	}
}

// TestBuildCorpusJobsDeterministic asserts the parallel corpus labelling
// returns the same labels in the same order as the sequential path.
func TestBuildCorpusJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus labelling is slow")
	}
	build := func(jobs int) []LabeledMatrix {
		cfg := Config{Scale: 0.04, Seed: 1, Jobs: jobs}
		corpus, err := cfg.BuildCorpus()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return corpus
	}
	ref := build(0)
	got := build(3)
	if len(got) != len(ref) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].Spec.ID != ref[i].Spec.ID || got[i].Label != ref[i].Label || got[i].BestGain != ref[i].BestGain {
			t.Fatalf("entry %d differs: jobs=3 %+v vs sequential %+v", i, got[i], ref[i])
		}
	}
}
