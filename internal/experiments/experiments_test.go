package experiments

import (
	"bytes"
	"strings"
	"testing"

	"bootes/internal/accel"
	"bootes/internal/workloads"
)

// tiny returns a config small enough for fast tests but large enough that
// the qualitative shapes still hold.
func tiny() Config {
	return Config{Scale: 0.04, Seed: 1, SuiteIDs: []string{"IN", "VI", "SM"}}
}

func TestTable1Shapes(t *testing.T) {
	res, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d dataflow rows", len(res.Rows))
	}
	var inner, outer, rowWise Table1Row
	for _, r := range res.Rows {
		switch r.Dataflow {
		case accel.InnerProduct:
			inner = r
		case accel.OuterProduct:
			outer = r
		case accel.RowWiseProduct:
			rowWise = r
		}
	}
	// The paper's Table 1 claims, measured: inner over-fetches B; outer
	// explodes psum (C) traffic; row-wise is the best total.
	if inner.NormB <= rowWise.NormB {
		t.Errorf("inner B %.2f should exceed row-wise %.2f", inner.NormB, rowWise.NormB)
	}
	if outer.NormC <= rowWise.NormC {
		t.Errorf("outer C %.2f should exceed row-wise %.2f", outer.NormC, rowWise.NormC)
	}
	if rowWise.NormTotal >= inner.NormTotal || rowWise.NormTotal >= outer.NormTotal {
		t.Errorf("row-wise total %.2f should be least (%.2f, %.2f)", rowWise.NormTotal, inner.NormTotal, outer.NormTotal)
	}
	if !inner.IndexIntersection {
		t.Error("inner product should be flagged for index intersection")
	}
}

func TestTable2Exponents(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	cfg := tiny()
	res, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	exps := map[string]Table2Row{}
	for _, r := range res.Rows {
		exps[r.Algorithm] = r
	}
	// The paper's claim: Bootes scales ~linearly in N while Gamma and Graph
	// degrade superlinearly. Generous bounds absorb timing noise.
	if b := exps["Bootes"]; b.SizeExponent > 1.7 {
		t.Errorf("Bootes size exponent %.2f should be ~linear", b.SizeExponent)
	}
	if g := exps["Gamma"]; g.SizeExponent < 1.3 {
		t.Errorf("Gamma size exponent %.2f should be superlinear", g.SizeExponent)
	}
}

func TestFigure1And2(t *testing.T) {
	cfg := tiny()
	f1, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f1.DistantSimilarPairs <= 0 {
		t.Error("no distant similar pairs found — no reordering opportunity visible")
	}
	if !strings.Contains(f1.Plot, "+") {
		t.Error("missing spy plot")
	}

	f2, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Panels) != 1+3+5 {
		t.Fatalf("%d panels, want 9", len(f2.Panels))
	}
	if f2.Panels[0].BTrafficRatio != 1.0 {
		t.Error("original panel ratio must be 1")
	}
	// At least one Bootes panel must improve traffic substantially.
	best := 1.0
	for _, p := range f2.Panels[4:] {
		if p.BTrafficRatio < best {
			best = p.BTrafficRatio
		}
	}
	if best > 0.8 {
		t.Errorf("best Bootes panel ratio %.2f, want < 0.8", best)
	}
}

func TestFigure4HeadlineShapes(t *testing.T) {
	cfg := tiny()
	cfg.SuiteIDs = []string{"IN", "MI", "SM"}
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3*5*3 { // workloads × reorderers × accelerators
		t.Fatalf("%d cells", len(res.Cells))
	}
	// Headline: Bootes reduces traffic vs Original on every accelerator for
	// these reorder-friendly workloads.
	for _, acc := range []string{"Flexagon", "GAMMA", "Trapezoid"} {
		if f := res.Reduction[acc]["Original"]; f < 1.0 {
			t.Errorf("%s: Bootes vs Original %.2fx, want ≥ 1", acc, f)
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is slow")
	}
	cfg := tiny()
	res, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	for _, algo := range []string{"Gamma", "Graph", "Hier"} {
		if _, ok := res.TimeSpeedup[algo]; !ok {
			t.Errorf("missing time speedup for %s", algo)
		}
	}
	// Memory: Bootes must beat the quadratic-tracking baselines.
	if res.MemReduction["Gamma"] < 1 {
		t.Errorf("Gamma memory reduction %.2f, want > 1", res.MemReduction["Gamma"])
	}
	if res.MemReduction["Graph"] < 1 {
		t.Errorf("Graph memory reduction %.2f, want > 1", res.MemReduction["Graph"])
	}
}

func TestFigure6AndTable4(t *testing.T) {
	cfg := tiny()
	cfg.SuiteIDs = []string{"IN", "SM"}
	res, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, acc := range []string{"Flexagon", "GAMMA", "Trapezoid"} {
		tbl := res.Table4[acc]
		if tbl["Bootes"] <= 0 {
			t.Errorf("%s: missing Bootes speedup", acc)
		}
		// On reorder-friendly workloads Bootes' execution speedup vs no
		// preprocessing must be ≥ 1 and ≥ the weakest baseline.
		if tbl["Bootes"] < 1.0 {
			t.Errorf("%s: Bootes execution speedup %.2f < 1", acc, tbl["Bootes"])
		}
	}
	for _, name := range []string{"Gamma", "Graph", "Hier"} {
		if res.PreprocessRatio[name] <= 0 {
			t.Errorf("missing preprocess ratio for %s", name)
		}
	}
}

func TestTable3Listing(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	res, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	out := buf.String()
	if !strings.Contains(out, "invextr1_new") {
		t.Error("missing suite entries in rendering")
	}
	// Full suite without restriction.
	cfg.SuiteIDs = nil
	full, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != 26 {
		t.Errorf("full suite has %d rows, want 26", len(full.Rows))
	}
}

func TestLabelMatrixProducesSaneLabels(t *testing.T) {
	cfg := tiny()
	// A banded matrix must label no-reorder; a scrambled block with hidden
	// groups should label a positive k.
	banded := workloads.Spec{ID: "B", Name: "banded", Rows: 1024, Cols: 1024,
		Density: 0.008, Archetype: workloads.ArchBanded, Seed: 3}
	lm, err := cfg.LabelMatrix(banded, banded.Generate(1))
	if err != nil {
		t.Fatal(err)
	}
	if lm.Label != 0 {
		t.Errorf("banded labelled k-class %d, want no-reorder", lm.Label)
	}

	block := workloads.Spec{ID: "S", Name: "block", Rows: 2048, Cols: 2048,
		Density: 0.008, Archetype: workloads.ArchScrambledBlock, Groups: 16, Seed: 4}
	lm, err = cfg.LabelMatrix(block, block.Generate(1))
	if err != nil {
		t.Fatal(err)
	}
	if lm.Label == 0 {
		t.Errorf("scrambled block labelled no-reorder (gain %.2f, byK %v)", lm.BestGain, lm.TrafficByK)
	}
}

func TestTrainOnSyntheticCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	cfg := Config{Scale: 0.02, Seed: 2}
	rep, test, err := cfg.TrainModel()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model == nil || rep.TestSize != len(test) {
		t.Fatal("incomplete report")
	}
	if rep.GateAccuracy < 0.5 {
		t.Errorf("gate accuracy %.2f barely better than chance", rep.GateAccuracy)
	}
	if rep.ModelBytes <= 0 || rep.ModelBytes > 64<<10 {
		t.Errorf("model size %d out of range", rep.ModelBytes)
	}

	// Figure 3 consumes the model and test set.
	f3, err := Figure3(cfg, NewCoreModel(rep.Model), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Rows) == 0 {
		t.Fatal("no figure 3 rows")
	}
	if f3.ModelGeomeanSlowdown < 1.0 {
		t.Errorf("geomean slowdown %.3f below 1 (impossible)", f3.ModelGeomeanSlowdown)
	}
	for _, r := range f3.Rows {
		if v, ok := r.NormTime[r.BestK]; ok && v > 1.0001 {
			t.Errorf("%s: best k normalized time %.3f != 1", r.Matrix, v)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 0.12 || len(c.Accelerators) != 3 || c.Out == nil {
		t.Errorf("defaults not applied: %+v", c)
	}
	if got := len(c.suite()); got != 26 {
		t.Errorf("suite size %d", got)
	}
	c.SuiteIDs = []string{"IN", "nope"}
	if got := len(c.suite()); got != 1 {
		t.Errorf("restricted suite size %d", got)
	}
}

func TestOperandsRule(t *testing.T) {
	sq := workloads.Random(workloads.Params{Rows: 32, Cols: 32, Density: 0.1, Seed: 1})
	a, b := operands(sq)
	if a != b {
		t.Error("square matrix should use B = A")
	}
	rect := workloads.Random(workloads.Params{Rows: 32, Cols: 48, Density: 0.1, Seed: 1})
	a, b = operands(rect)
	if b.Rows != rect.Cols || b.Cols != rect.Rows {
		t.Error("rectangular matrix should use B = Aᵀ")
	}
	if a.Cols != b.Rows {
		t.Error("operands not multiplicable")
	}
}

func TestModelComparisonAndEnergyReport(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus labelling is slow")
	}
	cfg := Config{Scale: 0.02, Seed: 3}
	corpus, err := cfg.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ModelComparison(cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if mc.ForestBytes <= mc.TreeBytes {
		t.Errorf("forest %dB should exceed tree %dB (the paper's storage trade-off)", mc.ForestBytes, mc.TreeBytes)
	}
	if mc.TreeAccuracy <= 0 || mc.ForestAccuracy <= 0 {
		t.Error("missing accuracies")
	}

	ecfg := tiny()
	ecfg.SuiteIDs = []string{"IN", "SM"}
	er, err := EnergyReport(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(er.Rows) != 2*3 {
		t.Fatalf("%d energy rows", len(er.Rows))
	}
	for _, r := range er.Rows {
		if r.MemoryShare < 0.5 {
			t.Errorf("%s/%s: memory share %.2f — movement should dominate", r.Workload, r.Accelerator, r.MemoryShare)
		}
		if r.BootesPJ <= 0 || r.OriginalPJ <= 0 {
			t.Error("missing energy")
		}
	}
	for _, acc := range []string{"Flexagon", "GAMMA", "Trapezoid"} {
		if er.Saving[acc] < 0.95 {
			t.Errorf("%s: energy saving %.2f — Bootes should not cost energy", acc, er.Saving[acc])
		}
	}
}

func TestAmortization(t *testing.T) {
	cfg := tiny()
	cfg.SuiteIDs = []string{"IN", "SM"}
	res, err := Amortization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*3*4 { // workloads × accelerators × non-Original methods
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.PreprocessSeconds < 0 {
			t.Error("negative preprocessing time")
		}
		if r.SavingSeconds > 0 && (r.BreakEvenReuses < 1 || r.BreakEvenReuses != float64(int64(r.BreakEvenReuses))) {
			t.Errorf("break-even %v not a positive integer", r.BreakEvenReuses)
		}
	}
	for _, name := range []string{"Bootes", "Gamma", "Graph", "Hier"} {
		if _, ok := res.MedianBreakEven[name]; !ok {
			t.Errorf("missing median for %s", name)
		}
	}
}
