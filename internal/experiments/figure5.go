package experiments

import (
	"time"

	"bootes/internal/chart"
	"bootes/internal/core"
	"bootes/internal/reorder"
	"bootes/internal/stats"
	"bootes/internal/workloads"
)

// Figure5Point is one bubble of the scalability plot: an algorithm's
// preprocessing time and modeled memory footprint on one matrix.
type Figure5Point struct {
	Algorithm string
	Rows      int
	Density   float64
	Seconds   float64
	Footprint int64
}

// Figure5Result aggregates the scalability study.
type Figure5Result struct {
	Points []Figure5Point
	// TimeSpeedup[algo] is the geomean of algo_time / bootes_time over the
	// sweep (paper: 10.2× vs Gamma, 1.95× vs Graph, 11.61× vs Hier).
	TimeSpeedup map[string]float64
	// MemReduction[algo] is the geomean of algo_footprint / bootes_footprint
	// (paper: 2.63×, 1.35×, 2.10×).
	MemReduction map[string]float64
}

// Figure5 measures preprocessing time (top panel) and memory footprint
// (bottom panel) while matrix size and density vary, for Bootes and the
// three baselines.
func Figure5(c Config) (*Figure5Result, error) {
	c = c.WithDefaults()
	base := int(4096 * c.Scale * 4)
	if base < 256 {
		base = 256
	}
	type workload struct {
		rows int
		pop  float64
	}
	sweep := []workload{
		{base, 8}, {base, 32},
		{base * 2, 8}, {base * 2, 32},
		{base * 4, 8}, {base * 4, 32},
		{base * 8, 8},
	}

	bootes := func() reorder.Reorderer {
		return &core.Pipeline{ForceReorder: true, ForceK: 8,
			Spectral: looseSpectral(c)}
	}
	baselines := []func() reorder.Reorderer{
		func() reorder.Reorderer { return reorder.Gamma{Seed: c.Seed} },
		func() reorder.Reorderer { return reorder.Graph{Seed: c.Seed} },
		func() reorder.Reorderer { return reorder.Hier{} },
	}

	out := &Figure5Result{TimeSpeedup: map[string]float64{}, MemReduction: map[string]float64{}}
	type sample struct{ t, m float64 }
	bySample := map[string][]sample{}

	for _, w := range sweep {
		m := workloads.ScrambledBlock(workloads.Params{
			Rows: w.rows, Cols: w.rows, Density: w.pop / float64(w.rows),
			Seed: c.Seed + int64(w.rows) + int64(w.pop), Groups: 32,
		})
		run := func(r reorder.Reorderer) error {
			res, err := r.Reorder(m)
			if err != nil {
				return err
			}
			name := r.Name()
			if name[0] == 'B' { // Pipeline names itself "Bootes"
				name = "Bootes"
			}
			out.Points = append(out.Points, Figure5Point{
				Algorithm: name,
				Rows:      w.rows,
				Density:   m.Density(),
				Seconds:   res.PreprocessTime.Seconds(),
				Footprint: res.FootprintBytes,
			})
			bySample[name] = append(bySample[name], sample{
				t: nzDur(res.PreprocessTime), m: float64(res.FootprintBytes),
			})
			return nil
		}
		if err := run(bootes()); err != nil {
			return nil, err
		}
		for _, mk := range baselines {
			if err := run(mk()); err != nil {
				return nil, err
			}
		}
	}

	bootesSamples := bySample["Bootes"]
	for name, ss := range bySample {
		if name == "Bootes" {
			continue
		}
		var tRatios, mRatios []float64
		for i, s := range ss {
			tRatios = append(tRatios, nz(s.t/bootesSamples[i].t))
			mRatios = append(mRatios, nz(s.m/bootesSamples[i].m))
		}
		out.TimeSpeedup[name] = stats.MustGeoMean(tRatios)
		out.MemReduction[name] = stats.MustGeoMean(mRatios)
	}

	c.printf("\nFigure 5 — scalability: preprocessing time (top) and memory footprint (bottom)\n")
	c.printf("%-8s %10s %10s | %-10s %12s %14s\n", "Algo", "rows", "density", "", "time(s)", "footprint(B)")
	for _, p := range out.Points {
		c.printf("%-8s %10d %10.2g | %-10s %12.4f %14d\n", p.Algorithm, p.Rows, p.Density, "", p.Seconds, p.Footprint)
	}
	c.printf("Bootes preprocessing speedup (geomean): ")
	for name, f := range out.TimeSpeedup {
		c.printf("%s %.2fx  ", name, f)
	}
	c.printf("\nBootes memory reduction (geomean): ")
	for name, f := range out.MemReduction {
		c.printf("%s %.2fx  ", name, f)
	}
	c.printf("\n(paper: time 10.2x/1.95x/11.61x, memory 2.63x/1.35x/2.10x vs Gamma/Graph/Hier)\n")

	if c.FigDir != "" {
		bySeries := map[string]*chart.ScatterSeries{}
		memSeries := map[string]*chart.ScatterSeries{}
		order := []string{"Bootes", "Gamma", "Graph", "Hier"}
		for _, name := range order {
			bySeries[name] = &chart.ScatterSeries{Name: name}
			memSeries[name] = &chart.ScatterSeries{Name: name}
		}
		for _, p := range out.Points {
			x := float64(p.Rows) * p.Density * float64(p.Rows) // nnz proxy
			if s, ok := bySeries[p.Algorithm]; ok {
				s.X = append(s.X, x)
				s.Y = append(s.Y, p.Seconds)
			}
			if s, ok := memSeries[p.Algorithm]; ok {
				s.X = append(s.X, x)
				s.Y = append(s.Y, float64(p.Footprint))
			}
		}
		mk := func(m map[string]*chart.ScatterSeries) []chart.ScatterSeries {
			var ss []chart.ScatterSeries
			for _, name := range order {
				ss = append(ss, *m[name])
			}
			return ss
		}
		if err := writeSVG(c, "figure5_time.svg", chart.Scatter{
			Title: "Figure 5 (top) — preprocessing time", XLabel: "nnz", YLabel: "seconds",
			LogX: true, LogY: true, Series: mk(bySeries),
		}); err != nil {
			return nil, err
		}
		if err := writeSVG(c, "figure5_memory.svg", chart.Scatter{
			Title: "Figure 5 (bottom) — modeled memory footprint", XLabel: "nnz", YLabel: "bytes",
			LogX: true, LogY: true, Series: mk(memSeries),
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func nzDur(d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 1e-9
	}
	return s
}
