package experiments

import (
	"sort"

	"bootes/internal/core"
	"bootes/internal/stats"
)

// Figure3Row is one validation matrix's cluster-size sweep.
type Figure3Row struct {
	Matrix string
	// NormTime maps k → end-to-end cost normalized to the best k for this
	// matrix (1.0 = best), mirroring Figure 3's bars. The "execution time"
	// proxy is B traffic, which is what cluster size influences.
	NormTime map[int]float64
	// PredictedK is the model's choice (0 = no reorder predicted).
	PredictedK int
	// BestK is the sweep's winner.
	BestK int
	// PredictedSlowdown is NormTime[PredictedK] (1.0 when the model picked
	// the best configuration).
	PredictedSlowdown float64
}

// Figure3Result aggregates the cluster-size study.
type Figure3Result struct {
	Rows []Figure3Row
	// ModelGeomeanSlowdown is the geomean of predicted slowdowns vs best
	// (paper: the model is optimal in most cases, ≤1.05× otherwise).
	ModelGeomeanSlowdown float64
	// OptimalRate is the fraction of matrices where the model picked the
	// best k exactly.
	OptimalRate float64
}

// Figure3 sweeps cluster sizes on held-out labelled matrices and marks the
// decision tree's predictions, reproducing the paper's Figure 3. The test
// set comes from the training split (c.Model must be trained on the same
// corpus for a fair "validation set" reading; pass the model and test set
// from TrainModel).
func Figure3(c Config, model *coreModel, test []LabeledMatrix) (*Figure3Result, error) {
	c = c.WithDefaults()
	out := &Figure3Result{}
	var slowdowns []float64
	optimal := 0
	counted := 0

	for _, lm := range test {
		if len(lm.TrafficByK) == 0 {
			continue
		}
		row := Figure3Row{Matrix: lm.Spec.Name, NormTime: map[int]float64{}}

		// Best ratio across the sweep (including "no reorder" = 1.0).
		best := 1.0
		bestK := 0
		for k, r := range lm.TrafficByK {
			if r < best {
				best, bestK = r, k
			}
		}
		row.BestK = bestK
		for k, r := range lm.TrafficByK {
			row.NormTime[k] = r / best
		}
		row.NormTime[0] = 1.0 / best // the no-reorder bar

		// Model prediction.
		pred, err := model.tree.Predict(lm.Features.Vector())
		if err != nil {
			return nil, err
		}
		predK, err := core.KForLabel(pred)
		if err != nil {
			return nil, err
		}
		row.PredictedK = predK
		if s, ok := row.NormTime[predK]; ok {
			row.PredictedSlowdown = s
		} else {
			row.PredictedSlowdown = row.NormTime[0]
		}
		if row.PredictedK == row.BestK {
			optimal++
		}
		counted++
		slowdowns = append(slowdowns, row.PredictedSlowdown)
		out.Rows = append(out.Rows, row)
	}
	if len(slowdowns) > 0 {
		out.ModelGeomeanSlowdown = stats.MustGeoMean(slowdowns)
	}
	if counted > 0 {
		out.OptimalRate = float64(optimal) / float64(counted)
	}

	c.printf("\nFigure 3 — cluster-size sweep on the validation set (normalized to best; ★ = model pick)\n")
	c.printf("%-28s %8s %8s %8s %8s %8s %8s   best  pick\n", "Matrix", "none", "k=2", "k=4", "k=8", "k=16", "k=32")
	for _, r := range out.Rows {
		c.printf("%-28s", truncName(r.Matrix, 28))
		for _, k := range append([]int{0}, core.CandidateKs...) {
			v, ok := r.NormTime[k]
			if !ok {
				c.printf(" %8s", "-")
				continue
			}
			star := " "
			if k == r.PredictedK {
				star = "*"
			}
			c.printf(" %7.2f%s", v, star)
		}
		c.printf("   k=%-3d k=%d\n", r.BestK, r.PredictedK)
	}
	c.printf("model: optimal pick on %.0f%% of matrices, geomean slowdown vs best %.3fx\n",
		100*out.OptimalRate, out.ModelGeomeanSlowdown)
	return out, nil
}

// coreModel wraps the dtree so Figure 3's signature stays stable if the
// model representation changes.
type coreModel struct{ tree treePredictor }

// treePredictor is the minimal prediction interface Figure 3 needs.
type treePredictor interface {
	Predict(x []float64) (int, error)
}

// NewCoreModel adapts a trained decision tree for Figure3.
func NewCoreModel(t treePredictor) *coreModel { return &coreModel{tree: t} }

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// sortedKs returns the candidate ks present in a NormTime map, ascending.
func sortedKs(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
