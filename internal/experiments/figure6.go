package experiments

import (
	"time"

	"bootes/internal/chart"
	"bootes/internal/sparse"
	"bootes/internal/stats"
)

// Figure6Row is one workload's end-to-end timing for every method on one
// accelerator: preprocessing (host) + SpGEMM execution (simulated).
type Figure6Row struct {
	Workload    string
	Accelerator string
	// Seconds[reorderer] is preprocessing + simulated compute time.
	Seconds map[string]float64
	// ComputeSeconds[reorderer] is the simulated compute time alone.
	ComputeSeconds map[string]float64
	// PreprocessSeconds[reorderer] is the host-side reordering time.
	PreprocessSeconds map[string]float64
}

// Figure6Result aggregates the end-to-end speedup study (Figure 6) and the
// per-accelerator geomean speedups over no-preprocessing (Table 4).
type Figure6Result struct {
	Rows []Figure6Row
	// EndToEndSpeedup[reorderer] is the geomean over workloads and
	// accelerators of time(reorderer) relative to Bootes — >1 means Bootes
	// is faster end-to-end (the Figure 6 claim).
	EndToEndSpeedup map[string]float64
	// Table4[accelerator][reorderer] is the geomean speedup of applying
	// that reordering versus Original (no preprocessing), per accelerator.
	Table4 map[string]map[string]float64
	// PreprocessRatio[reorderer] is the geomean of that method's
	// preprocessing time over Bootes' (paper §5.4: 13.41×, 1.96×, 10.34×).
	PreprocessRatio map[string]float64
}

// Figure6 runs the end-to-end (preprocess + compute) comparison across the
// suite and accelerators, and derives Table 4 from the same runs.
func Figure6(c Config) (*Figure6Result, error) {
	c = c.WithDefaults()
	out := &Figure6Result{
		EndToEndSpeedup: map[string]float64{},
		Table4:          map[string]map[string]float64{},
		PreprocessRatio: map[string]float64{},
	}

	type key struct{ acc, reo string }
	endToEnd := map[key][]float64{}
	speedupVsOriginal := map[key][]float64{}
	preprocess := map[string][]float64{}

	for _, spec := range c.suite() {
		a := spec.Generate(c.Scale)
		aOp, bOp := operands(a)

		// Reorder once per method (accelerator-independent).
		type outcome struct {
			perm       sparse.Permutation
			preprocess time.Duration
		}
		results := map[string]outcome{}
		for _, r := range c.reorderers(aOp) {
			res, err := r.Reorder(aOp)
			if err != nil {
				return nil, err
			}
			results[r.Name()] = outcome{perm: res.Perm, preprocess: res.PreprocessTime}
			preprocess[r.Name()] = append(preprocess[r.Name()], nzDurF(res.PreprocessTime))
		}

		for _, acfg := range c.Accelerators {
			scaled := scaleAccelerator(acfg, c.Scale)
			row := Figure6Row{
				Workload: spec.ID, Accelerator: acfg.Name,
				Seconds:           map[string]float64{},
				ComputeSeconds:    map[string]float64{},
				PreprocessSeconds: map[string]float64{},
			}
			for name, res := range results {
				sim, err := simulateWithPerm(scaled, aOp, bOp, res.perm)
				if err != nil {
					return nil, err
				}
				compute := sim.Seconds()
				row.ComputeSeconds[name] = compute
				row.PreprocessSeconds[name] = res.preprocess.Seconds()
				row.Seconds[name] = compute + res.preprocess.Seconds()
				endToEnd[key{acfg.Name, name}] = append(endToEnd[key{acfg.Name, name}], nz(row.Seconds[name]))
			}
			orig := row.ComputeSeconds["Original"]
			for name := range results {
				if name == "Original" {
					continue
				}
				// Table 4 convention: speedup of the *execution* phase from
				// reordering, amortizing preprocessing across the reuse the
				// paper assumes (the same sparsity pattern reused; see §5.3).
				sp := orig / nz(row.ComputeSeconds[name])
				speedupVsOriginal[key{acfg.Name, name}] = append(speedupVsOriginal[key{acfg.Name, name}], nz(sp))
			}
			out.Rows = append(out.Rows, row)
		}
	}

	// Aggregations.
	names := []string{"Bootes", "Gamma", "Graph", "Hier", "Original"}
	for _, acfg := range c.Accelerators {
		out.Table4[acfg.Name] = map[string]float64{}
		for _, name := range names {
			if name == "Original" {
				continue
			}
			if ss := speedupVsOriginal[key{acfg.Name, name}]; len(ss) > 0 {
				out.Table4[acfg.Name][name] = stats.MustGeoMean(ss)
			}
		}
	}
	bootesPre := preprocess["Bootes"]
	for _, name := range names {
		if name == "Bootes" || name == "Original" {
			continue
		}
		var ratios []float64
		for i, p := range preprocess[name] {
			ratios = append(ratios, nz(p/bootesPre[i]))
		}
		if len(ratios) > 0 {
			out.PreprocessRatio[name] = stats.MustGeoMean(ratios)
		}
	}
	for _, name := range names {
		if name == "Bootes" {
			continue
		}
		var ratios []float64
		for _, acfg := range c.Accelerators {
			k := key{acfg.Name, name}
			bk := key{acfg.Name, "Bootes"}
			for i, t := range endToEnd[k] {
				ratios = append(ratios, nz(t/endToEnd[bk][i]))
			}
		}
		if len(ratios) > 0 {
			out.EndToEndSpeedup[name] = stats.MustGeoMean(ratios)
		}
	}

	c.printf("\nFigure 6 — end-to-end speedup of Bootes (preprocess + compute) over the prior reorderers, geomean\n")
	c.printf("(crossover note: the baselines' preprocessing is quadratic in size/density — Table 2 — so\n")
	c.printf(" these factors grow with -scale; the paper evaluates at full matrix sizes)\n")
	for _, name := range names {
		if name == "Bootes" || name == "Original" {
			continue
		}
		c.printf("  vs %-9s %.2fx\n", name, out.EndToEndSpeedup[name])
	}
	c.printf("Preprocessing-time ratio vs Bootes (paper: Gamma 13.41x, Graph 1.96x, Hier 10.34x):\n")
	for name, f := range out.PreprocessRatio {
		c.printf("  %-9s %.2fx\n", name, f)
	}
	c.printf("\nTable 4 — geomean execution speedup of each reordering vs no preprocessing\n")
	c.printf("%-12s %8s %8s %8s %8s\n", "Accelerator", "Bootes", "Gamma", "Graph", "Hier")
	for _, acfg := range c.Accelerators {
		row := out.Table4[acfg.Name]
		c.printf("%-12s %7.2fx %7.2fx %7.2fx %7.2fx\n", acfg.Name, row["Bootes"], row["Gamma"], row["Graph"], row["Hier"])
	}

	if c.FigDir != "" {
		groups := make([]string, 0, len(c.Accelerators))
		for _, acfg := range c.Accelerators {
			groups = append(groups, acfg.Name)
		}
		var series []chart.BarSeries
		for _, name := range []string{"Bootes", "Gamma", "Graph", "Hier"} {
			vals := make([]float64, len(groups))
			for gi, acc := range groups {
				vals[gi] = out.Table4[acc][name]
			}
			series = append(series, chart.BarSeries{Name: name, Values: vals})
		}
		if err := writeSVG(c, "table4_speedup.svg", chart.GroupedBars{
			Title:  "Table 4 — execution speedup vs no preprocessing (geomean)",
			YLabel: "speedup (x)",
			Groups: groups,
			Series: series,
			YRef:   1,
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func nzDurF(d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 1e-9
	}
	return s
}
