package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"bootes/internal/cluster"
	"bootes/internal/core"
	"bootes/internal/dtree"
	"bootes/internal/eigen"
	"bootes/internal/parallel"
	"bootes/internal/sparse"
	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

// ReorderGainThreshold is the paper's 10% traffic-reduction threshold: below
// it, reordering is labelled "not worth it".
const ReorderGainThreshold = 0.10

// LabeledMatrix is one labelled training/validation example.
type LabeledMatrix struct {
	Spec     workloads.Spec
	Features core.Features
	// Label encodes the best action (0 = no reorder, 1+i = CandidateKs[i]).
	Label int
	// BestGain is 1 − traffic(best k)/traffic(original), the realized
	// traffic reduction of the best cluster count.
	BestGain float64
	// TrafficByK maps each candidate k to its B-traffic ratio vs original
	// (geomean across the reference cache sizes).
	TrafficByK map[int]float64
}

// labelCaches returns the reference cache sizes used for labelling: the
// paper's three accelerator caches, scaled with the matrix suite so the
// cache/working-set ratio matches the full-size setup.
func (c Config) labelCaches() []int64 {
	caches := make([]int64, 0, len(c.Accelerators))
	for _, a := range c.Accelerators {
		sz := int64(float64(a.CacheBytes) * c.Scale)
		if sz < 4<<10 {
			sz = 4 << 10
		}
		caches = append(caches, sz)
	}
	return caches
}

// LabelMatrix runs the spectral sweep on a and determines the optimal action
// by the row-granular traffic model across the reference cache sizes.
func (c Config) LabelMatrix(spec workloads.Spec, a *sparse.CSR) (LabeledMatrix, error) {
	c = c.WithDefaults()
	lm := LabeledMatrix{Spec: spec, TrafficByK: map[int]float64{}}
	lm.Features = core.ExtractFeatures(a, core.FeatureOptions{Seed: c.Seed})

	aOp, bOp := operands(a)
	const elem = 12
	caches := c.labelCaches()

	baseline := make([]float64, len(caches))
	for i, cache := range caches {
		est, err := trafficmodel.EstimateB(aOp, bOp, cache, elem)
		if err != nil {
			return lm, err
		}
		baseline[i] = float64(est.BTraffic)
	}

	ks := candidateKsFor(a.Rows)
	entries, err := core.SpectralSweep(a, ks, looseSpectral(c))
	if err != nil {
		return lm, err
	}

	bestK, bestRatio := 0, 1.0
	for _, e := range entries {
		logSum, n := 0.0, 0
		for i, cache := range caches {
			if baseline[i] == 0 {
				continue
			}
			est, err := trafficmodel.EstimateBWithPerm(aOp, bOp, e.Perm, cache, elem)
			if err != nil {
				return lm, err
			}
			ratio := float64(est.BTraffic) / baseline[i]
			if ratio <= 0 {
				ratio = 1e-12
			}
			logSum += math.Log(ratio)
			n++
		}
		ratio := 1.0
		if n > 0 {
			ratio = math.Exp(logSum / float64(n))
		}
		lm.TrafficByK[e.K] = ratio
		if ratio < bestRatio {
			bestRatio, bestK = ratio, e.K
		}
	}

	lm.BestGain = 1 - bestRatio
	if bestK == 0 || lm.BestGain < ReorderGainThreshold {
		lm.Label = core.ClassNoReorder
	} else {
		label, err := core.LabelForK(bestK)
		if err != nil {
			return lm, err
		}
		lm.Label = label
	}
	return lm, nil
}

// candidateKsFor filters CandidateKs to counts sensible for n rows.
func candidateKsFor(n int) []int {
	var ks []int
	for _, k := range core.CandidateKs {
		if k*4 <= n { // need a few rows per cluster to be meaningful
			ks = append(ks, k)
		}
	}
	if len(ks) == 0 {
		ks = []int{2}
	}
	return ks
}

// looseEigen returns eigensolver options tuned for labelling throughput:
// clustering only needs a rough subspace.
func looseEigen() eigen.Options {
	return eigen.Options{Tol: 1e-4, MaxRestarts: 8}
}

// looseSpectral bundles the loose eigensolver and k-means options with the
// run's seed and pinned similarity tier.
func looseSpectral(c Config) core.SpectralOptions {
	return core.SpectralOptions{
		Seed: c.Seed, Eigen: looseEigen(), KMeans: looseKMeans(), Similarity: c.Similarity,
	}
}

// looseKMeans trades a little clustering polish for labelling throughput.
func looseKMeans() cluster.KMeansOptions {
	return cluster.KMeansOptions{MaxIters: 25, Restarts: 1, Tol: 1e-4}
}

// BuildCorpus labels the full training corpus. Labelling one matrix is
// independent of every other (generation and the spectral sweep are seeded
// per spec), so corpus entries fan out across Config.Jobs workers; the
// returned slice is always in spec order.
func (c Config) BuildCorpus() ([]LabeledMatrix, error) {
	c = c.WithDefaults()
	specs := workloads.TrainingCorpus(c.Scale * 2) // corpus sizes are modest already
	out := make([]LabeledMatrix, len(specs))
	errs := make([]error, len(specs))
	parallel.ForWorkers(c.Jobs, len(specs), 1, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			spec := specs[idx]
			a := spec.Generate(1)
			lm, err := c.LabelMatrix(spec, a)
			if err != nil {
				errs[idx] = fmt.Errorf("labelling %s: %w", spec.ID, err)
				continue
			}
			out[idx] = lm
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TrainReport summarizes decision-tree training (paper §5.1).
type TrainReport struct {
	Model         *dtree.Tree
	TrainSize     int
	TestSize      int
	TrainAccuracy float64
	TestAccuracy  float64
	// GateAccuracy scores only the binary reorder/no-reorder decision.
	GateAccuracy float64
	// TolerantAccuracy counts a prediction correct when the traffic of the
	// predicted action is within 5% of the best action's traffic — the
	// paper's observation that a "wrong" k is often only 1.01-1.05× slower.
	TolerantAccuracy float64
	ModelBytes       int64
	ClassCounts      []int
	Importance       []float64
}

// predictionTolerable reports whether the predicted class achieves traffic
// within 5% of the labelled-best action for matrix m.
func predictionTolerable(pred int, m LabeledMatrix) bool {
	ratioOf := func(label int) float64 {
		k, err := core.KForLabel(label)
		if err != nil || k == 0 {
			return 1.0 // no reorder keeps baseline traffic
		}
		if r, ok := m.TrafficByK[k]; ok {
			return r
		}
		return 1.0
	}
	return ratioOf(pred) <= ratioOf(m.Label)+0.05
}

// TrainModel labels the corpus, splits 70/30, trains a balanced CART tree,
// and reports accuracy — the reproduction of the paper's §5.1 analysis.
func (c Config) TrainModel() (*TrainReport, []LabeledMatrix, error) {
	c = c.WithDefaults()
	corpus, err := c.BuildCorpus()
	if err != nil {
		return nil, nil, err
	}
	return c.trainOn(corpus)
}

// TrainOn trains on an already-labelled corpus (70/30 split), letting
// callers label once and reuse the corpus across analyses.
func (c Config) TrainOn(corpus []LabeledMatrix) (*TrainReport, []LabeledMatrix, error) {
	return c.trainOn(corpus)
}

func (c Config) trainOn(corpus []LabeledMatrix) (*TrainReport, []LabeledMatrix, error) {
	rng := rand.New(rand.NewSource(c.Seed ^ 0x7ea1))
	shuffled := append([]LabeledMatrix(nil), corpus...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	split := len(shuffled) * 7 / 10
	train, test := shuffled[:split], shuffled[split:]

	toSamples := func(ms []LabeledMatrix) []dtree.Sample {
		ss := make([]dtree.Sample, len(ms))
		for i, m := range ms {
			ss[i] = dtree.Sample{Features: m.Features.Vector(), Label: m.Label}
		}
		return ss
	}
	trainS, testS := toSamples(train), toSamples(test)

	model, err := dtree.Train(trainS, core.NumClasses, dtree.Options{
		MaxDepth:       6,
		MinLeaf:        2,
		BalanceClasses: true,
	})
	if err != nil {
		return nil, nil, err
	}

	rep := &TrainReport{Model: model, TrainSize: len(train), TestSize: len(test)}
	rep.TrainAccuracy, _ = model.Accuracy(trainS)
	if len(testS) > 0 {
		rep.TestAccuracy, _ = model.Accuracy(testS)
	}
	gateOK, tolerantOK := 0, 0
	for i, s := range testS {
		pred, err := model.Predict(s.Features)
		if err != nil {
			return nil, nil, err
		}
		if (pred == core.ClassNoReorder) == (s.Label == core.ClassNoReorder) {
			gateOK++
		}
		if predictionTolerable(pred, test[i]) {
			tolerantOK++
		}
	}
	if len(testS) > 0 {
		rep.GateAccuracy = float64(gateOK) / float64(len(testS))
		rep.TolerantAccuracy = float64(tolerantOK) / float64(len(testS))
	}
	rep.ModelBytes = model.ModeledBytes()
	rep.ClassCounts = make([]int, core.NumClasses)
	for _, m := range corpus {
		rep.ClassCounts[m.Label]++
	}
	rep.Importance = model.FeatureImportance(len(core.FeatureNames))

	c.printf("Decision-tree analysis (paper §5.1)\n")
	c.printf("  corpus: %d matrices (train %d / test %d)\n", len(corpus), rep.TrainSize, rep.TestSize)
	c.printf("  class counts [no-reorder k=2 k=4 k=8 k=16 k=32]: %v\n", rep.ClassCounts)
	c.printf("  train accuracy: %.1f%%   test accuracy: %.1f%%   gate accuracy: %.1f%%   tolerant accuracy: %.1f%% (paper: 88%%)\n",
		100*rep.TrainAccuracy, 100*rep.TestAccuracy, 100*rep.GateAccuracy, 100*rep.TolerantAccuracy)
	c.printf("  model size: %d bytes (paper: ~11 KB)\n", rep.ModelBytes)
	c.printf("  feature importance:\n")
	for i, name := range core.FeatureNames {
		c.printf("    %-10s %.4f\n", name, rep.Importance[i])
	}
	return rep, test, nil
}
