// Package plancache is a crash-safe persistent cache of Bootes reordering
// plans, keyed by a content hash of the matrix's CSR structure.
//
// Durability model: one file per entry (<key><Ext>), published through
// atomicio's temp-file + fsync + atomic-rename protocol, each carrying a
// format version and a CRC32 over its payload. A kill -9 at any instant
// leaves every entry either fully present or fully absent; Open never fails
// on a damaged directory — corrupt or truncated entries are quarantined
// (renamed aside with QuarantineSuffix, preserving the bytes for postmortem)
// and counted, stray temp files from interrupted writes are removed, and
// service continues with the surviving entries.
package plancache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"

	"bootes/internal/plancache/atomicio"
	"bootes/internal/planverify"
)

const (
	// Ext is the entry file extension.
	Ext = ".plan"
	// QuarantineSuffix is appended to undecodable entry files instead of
	// deleting them: the bytes stay available for diagnosis while the name
	// no longer matches the entry scan.
	QuarantineSuffix = ".quarantine"
)

// Stats counts cache activity since Open.
type Stats struct {
	// Entries is the current number of loadable entries.
	Entries int
	// Hits / Misses count Get outcomes; Puts counts successful writes.
	Hits, Misses, Puts int64
	// WriteErrors counts failed Puts (the cache stays consistent: a failed
	// write publishes nothing).
	WriteErrors int64
	// Quarantined counts entries set aside as corrupt, at Open or on Get.
	Quarantined int64
}

// EntryStat is the cheap per-entry summary the anti-entropy digest exchange
// is built on: the encoded entry's size and payload CRC32, recorded when the
// entry was loaded or written — Stat never re-encodes or touches disk.
type EntryStat struct {
	// Size is the encoded entry's on-disk length in bytes.
	Size int64
	// CRC is the IEEE CRC32 over the entry's payload, exactly the checksum
	// the on-disk container carries — two replicas holding byte-identical
	// entries report equal CRCs with no decode.
	CRC uint32
}

// Cache is a concurrency-safe persistent plan cache. The in-memory index
// mirrors the directory: every loadable entry is held decoded (plans are a
// few bytes per matrix row), so Get never touches disk after Open.
type Cache struct {
	dir string

	mu      sync.RWMutex
	entries map[string]*Entry
	meta    map[string]EntryStat
	stats   Stats
}

// Open loads (or creates) a cache directory. Corrupt entries are quarantined,
// not fatal; leftover atomicio temp files are removed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{dir: dir, entries: make(map[string]*Entry), meta: make(map[string]EntryStat)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.Contains(name, atomicio.TempSuffix) {
			// An interrupted write never published; its temp is garbage.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, Ext) {
			continue
		}
		path := filepath.Join(dir, name)
		key := strings.TrimSuffix(name, Ext)
		e, st, err := loadEntry(path, key)
		if err != nil {
			c.quarantine(path)
			continue
		}
		c.entries[key] = e
		c.meta[key] = st
	}
	c.stats.Entries = len(c.entries)
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// loadEntry reads and decodes one entry file, cross-checking the embedded
// key against the filename so a file copied under the wrong name cannot
// serve another matrix's plan.
func loadEntry(path, key string) (*Entry, EntryStat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, EntryStat{}, err
	}
	e, err := DecodeEntry(data)
	if err != nil {
		return nil, EntryStat{}, err
	}
	if e.Key != key {
		return nil, EntryStat{}, fmt.Errorf("%w: entry key %q under filename key %q", ErrCorrupt, e.Key, key)
	}
	return e, statOf(data), nil
}

// statOf derives an entry's digest summary from its encoded bytes: the
// container's own payload CRC (header bytes 12..16, already validated by
// DecodeEntry on every load path) and the total encoded length.
func statOf(data []byte) EntryStat {
	st := EntryStat{Size: int64(len(data))}
	if len(data) >= 16 {
		st.CRC = binary.LittleEndian.Uint32(data[12:16])
	}
	return st
}

// quarantine renames a damaged entry aside. Callers hold no lock on the
// stats counter path; Open is single-threaded and Get locks before calling.
func (c *Cache) quarantine(path string) {
	_ = os.Rename(path, path+QuarantineSuffix)
	c.stats.Quarantined++
}

// Get returns the cached entry for key, or (nil, false).
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return e, ok
}

// Peek returns the cached entry for key without touching the hit/miss
// counters: the fleet's peer-fill endpoint reads through Peek so sibling
// traffic does not distort this node's own cache-health statistics.
func (c *Cache) Peek(key string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[key]
	return e, ok
}

// Put durably stores e under e.Key: the entry is verified (see below),
// encoded, written through the atomic protocol, and only then published to
// the in-memory index, so readers never observe an entry the disk does not
// durably hold. A write failure leaves both disk and index unchanged.
//
// Verification is always on: the permutation must be a bijection, K a
// candidate cluster count, and degraded plans are rejected outright — a
// degraded plan reflects the moment's faults, not the matrix, and must never
// be replayed from cache. The encoded bytes must additionally decode and
// re-encode bit-identically, so what the cache persists is provably exactly
// what a future Open will serve. Violations are counted by planverify and
// fail the Put without touching disk.
func (c *Cache) Put(e *Entry) error {
	if e.Key == "" {
		return fmt.Errorf("plancache: empty key")
	}
	if err := planverify.CachePut(e.Perm, e.K, e.Reordered, e.Degraded, e.DegradedReason); err != nil {
		c.mu.Lock()
		c.stats.WriteErrors++
		c.mu.Unlock()
		return fmt.Errorf("plancache: rejecting entry %.12s: %w", e.Key, err)
	}
	data, err := EncodeEntry(e)
	if err != nil {
		return err
	}
	if err := checkReencode(data); err != nil {
		planverify.Record(planverify.SiteCachePut,
			planverify.Violation{Code: planverify.CodeReencodeMismatch, Detail: err.Error()})
		c.mu.Lock()
		c.stats.WriteErrors++
		c.mu.Unlock()
		return fmt.Errorf("plancache: rejecting entry %.12s: %w", e.Key, err)
	}
	path := filepath.Join(c.dir, e.Key+Ext)
	if err := atomicio.WriteFileBytes(path, data); err != nil {
		c.mu.Lock()
		c.stats.WriteErrors++
		c.mu.Unlock()
		return err
	}
	c.mu.Lock()
	if _, existed := c.entries[e.Key]; !existed {
		c.stats.Entries++
	}
	c.entries[e.Key] = e
	c.meta[e.Key] = statOf(data)
	c.stats.Puts++
	c.mu.Unlock()
	return nil
}

// checkReencode holds the codec to the bit-identity invariant: the encoded
// entry must decode and encode back to exactly the same bytes. A mismatch
// means the codec would persist something it cannot faithfully reproduce —
// caught here, before the write, instead of as quarantine at the next Open.
func checkReencode(data []byte) error {
	decoded, err := DecodeEntry(data)
	if err != nil {
		return fmt.Errorf("encoded entry does not decode: %w", err)
	}
	again, err := EncodeEntry(decoded)
	if err != nil {
		return fmt.Errorf("decoded entry does not re-encode: %w", err)
	}
	if !bytes.Equal(data, again) {
		return fmt.Errorf("entry does not re-encode bit-identically (%d vs %d bytes)", len(data), len(again))
	}
	return nil
}

// Keys returns the keys of every loadable entry, in ascending lexicographic
// order. The order is part of the contract: the anti-entropy digest exchange
// diffs sorted key lists across replicas, and tests rely on determinism.
func (c *Cache) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Stat returns the encoded size and payload CRC32 recorded when key's entry
// was loaded or written — a digest-cheap summary with no decode and no disk
// access. The CRC matches the on-disk container's own checksum, so equal
// Stat values across replicas mean byte-identical entries.
func (c *Cache) Stat(key string) (EntryStat, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st, ok := c.meta[key]
	return st, ok
}

// Delete removes key's entry from disk and the index. Used by the
// anti-entropy repair loop to drop entries this node no longer owns after a
// ring change. Deleting an absent key is a no-op.
func (c *Cache) Delete(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		return nil
	}
	if err := os.Remove(filepath.Join(c.dir, key+Ext)); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(c.entries, key)
	delete(c.meta, key)
	c.stats.Entries--
	return nil
}

// Scrub re-reads key's entry from disk and holds it to the full decode
// invariants (CRC, structure, key match) plus bit-agreement with the index's
// recorded stat. A failure quarantines the file, evicts the entry from the
// index, and returns the decode error — the caller (the anti-entropy
// scrubber) then repairs from a peer. Scrubbing an unindexed key is a no-op.
func (c *Cache) Scrub(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		return nil
	}
	path := filepath.Join(c.dir, key+Ext)
	evict := func() {
		c.quarantine(path)
		delete(c.entries, key)
		delete(c.meta, key)
		c.stats.Entries--
	}
	_, st, err := loadEntry(path, key)
	if err != nil {
		evict()
		return fmt.Errorf("plancache: scrub %.12s: %w", key, err)
	}
	if want := c.meta[key]; st != want {
		// Decodable but not the bytes this process published — a swapped or
		// stale file is as untrustworthy as a corrupt one.
		evict()
		return fmt.Errorf("%w: scrub %.12s: on-disk stat %+v differs from index %+v", ErrCorrupt, key, st, want)
	}
	return nil
}

// Len returns the number of loadable entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
