package plancache

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"bootes/internal/sparse"
)

// FuzzDecodeEntry throws hostile bytes at the cache entry decoder: the
// durability story depends on DecodeEntry classifying ANY byte string as
// either a valid entry or ErrCorrupt — never panicking, never over-allocating
// from a hostile length field, and never returning an unusable permutation.
func FuzzDecodeEntry(f *testing.F) {
	// Seed with a valid entry and targeted mutations of it.
	valid, err := EncodeEntry(&Entry{
		Key:       "abc123",
		Perm:      sparse.Permutation{2, 0, 1},
		Reordered: true,
		K:         8,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("BPLN"))
	f.Add(valid[:len(valid)-3])               // truncated payload
	f.Add(append([]byte(nil), valid[:16]...)) // header only
	f.Add(bytes.Repeat([]byte{0xFF}, 64))     // garbage
	huge := append([]byte(nil), valid...)     // hostile perm length
	binary.LittleEndian.PutUint32(huge[len(huge)-16:], 1<<31)
	f.Add(huge)
	// Valid container framing around a hostile payload: keeps the fuzzer
	// past the CRC gate so the field decoders get exercised too.
	payload := bytes.Repeat([]byte{0x01}, 40)
	framed := make([]byte, 0, 16+len(payload))
	framed = append(framed, 'B', 'P', 'L', 'N')
	framed = binary.LittleEndian.AppendUint32(framed, FormatVersion)
	framed = binary.LittleEndian.AppendUint32(framed, uint32(len(payload)))
	framed = binary.LittleEndian.AppendUint32(framed, crc32.ChecksumIEEE(payload))
	framed = append(framed, payload...)
	f.Add(framed)

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntry(data)
		if err != nil {
			if e != nil {
				t.Fatal("error with non-nil entry")
			}
			return
		}
		// A successful decode must yield a directly usable plan.
		if err := e.Perm.Validate(len(e.Perm)); err != nil {
			t.Fatalf("decoded entry has invalid permutation: %v", err)
		}
		if e.Degraded && e.DegradedReason == "" {
			t.Fatal("decoded degraded entry without reason")
		}
		// And re-encoding must round-trip bit-identically.
		re, err := EncodeEntry(e)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("decode/encode round trip not bit-identical")
		}
	})
}
