// Package atomicio provides crash-safe file publication: a file written
// through WriteFile is either fully present under its final name or not
// present at all, regardless of where the process dies. The sequence is the
// classic temp-file protocol —
//
//	create temp in the destination directory
//	  → write payload → fsync temp → close
//	  → rename(temp, dest)           (atomic on POSIX within one filesystem)
//	  → fsync directory              (makes the rename itself durable)
//
// — so a kill -9 at any instant leaves either the old file (or nothing) or
// the complete new file, never a torn destination. Stray temp files from
// interrupted writes match TempPattern and are safe to delete on recovery.
//
// The faultinject points CacheWriteTemp/CacheWriteFsync/CacheWriteRename let
// tests simulate a crash at each syscall boundary: when armed, WriteFile
// returns ErrInjectedCrash leaving the filesystem exactly as a real crash at
// that point would (no cleanup is attempted).
package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"

	"bootes/internal/faultinject"
)

// TempSuffix marks in-progress writes; recovery scans may remove files
// containing it.
const TempSuffix = ".tmp"

// ErrInjectedCrash is returned when a faultinject point simulates a crash
// mid-write. The filesystem is left as the crash would leave it.
var ErrInjectedCrash = errors.New("atomicio: injected crash")

// WriteFile atomically publishes the bytes produced by write at path.
// On success the file is durable (payload and rename both fsynced). On
// error the destination is untouched; the temp file is removed except under
// injected crashes, which deliberately leave it.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+TempSuffix+"*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any non-crash failure removes the temp file; a simulated crash must
	// leave it, as a real crash would.
	crashed := false
	defer func() {
		if err != nil && !crashed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	if faultinject.Fire(faultinject.CacheWriteTemp) {
		// Crash mid-write: a recognizable partial payload stays in the temp.
		crashed = true
		_, _ = tmp.Write([]byte{0xDE, 0xAD})
		return ErrInjectedCrash
	}
	if err = write(tmp); err != nil {
		return err
	}
	if faultinject.Fire(faultinject.CacheWriteFsync) {
		crashed = true
		return ErrInjectedCrash
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if faultinject.Fire(faultinject.CacheWriteRename) {
		crashed = true
		return ErrInjectedCrash
	}
	if err = os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// WriteFileBytes is WriteFile for a pre-encoded payload.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that reject directory fsync (some network/overlay mounts) are
// tolerated: the rename is still atomic, only its durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}
