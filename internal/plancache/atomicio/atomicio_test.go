package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bootes/internal/faultinject"
)

func TestWriteFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteFileCallbackErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	boom := errors.New("boom")
	err := WriteFile(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("destination created despite write failure")
	}
	names, _ := os.ReadDir(dir)
	for _, de := range names {
		if strings.Contains(de.Name(), TempSuffix) {
			t.Fatalf("temp file %s leaked on ordinary error", de.Name())
		}
	}
}

// TestCrashNeverTearsDestination verifies the core guarantee at each
// injected syscall boundary: the destination either keeps its previous
// content in full or (crash after rename) holds the complete new content —
// no interleaving ever surfaces under the final name.
func TestCrashNeverTearsDestination(t *testing.T) {
	for _, point := range []string{
		faultinject.CacheWriteTemp,
		faultinject.CacheWriteFsync,
		faultinject.CacheWriteRename,
	} {
		t.Run(point, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			dir := t.TempDir()
			path := filepath.Join(dir, "out.txt")
			if err := WriteFileBytes(path, []byte("generation-1")); err != nil {
				t.Fatal(err)
			}
			faultinject.Arm(point)
			err := WriteFileBytes(path, []byte("generation-2"))
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("err = %v, want ErrInjectedCrash", err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "generation-1" {
				t.Fatalf("destination torn: %q", got)
			}
		})
	}
}

func TestCrashLeavesTempForRecoveryScan(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	faultinject.Arm(faultinject.CacheWriteRename)
	err := WriteFileBytes(filepath.Join(dir, "out.txt"), []byte("x"))
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatal(err)
	}
	names, _ := os.ReadDir(dir)
	var temps int
	for _, de := range names {
		if strings.Contains(de.Name(), TempSuffix) {
			temps++
		}
	}
	if temps != 1 {
		t.Fatalf("%d temp files after simulated crash, want 1 (as a real crash leaves)", temps)
	}
}
