package plancache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/leakcheck"
	"bootes/internal/plancache/atomicio"
	"bootes/internal/planverify"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func testMatrix(t *testing.T, seed int64) *sparse.CSR {
	t.Helper()
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 64, Cols: 64, Density: 0.05, Seed: seed, Groups: 4,
	})
}

func testEntry(t *testing.T, m *sparse.CSR) *Entry {
	t.Helper()
	n := m.Rows
	perm := make(sparse.Permutation, n)
	for i := range perm {
		perm[i] = int32(n - 1 - i) // reversal: a valid non-identity bijection
	}
	return &Entry{
		Key:               KeyCSR(m),
		Perm:              perm,
		Reordered:         true,
		K:                 8,
		PreprocessSeconds: 0.25,
		FootprintBytes:    4096,
	}
}

func TestKeyCSRIsStructural(t *testing.T) {
	m := testMatrix(t, 1)
	k1, k2 := KeyCSR(m), KeyCSR(m.Clone())
	if k1 != k2 {
		t.Fatal("identical structures hash differently")
	}
	if k := KeyCSR(testMatrix(t, 2)); k == k1 {
		t.Fatal("different structures collide")
	}
	// Values must not affect the key: planning consumes only the pattern.
	withVal := m.Clone()
	withVal.Val = make([]float64, withVal.NNZ())
	for i := range withVal.Val {
		withVal.Val[i] = float64(i)
	}
	if KeyCSR(withVal) != k1 {
		t.Fatal("values changed the structural key")
	}
}

func TestEntryRoundTrip(t *testing.T) {
	e := testEntry(t, testMatrix(t, 1))
	e.Degraded = true
	e.DegradedReason = "requested: eigensolver did not converge"
	data, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != e.Key || got.Reordered != e.Reordered || got.K != e.K ||
		got.Degraded != e.Degraded || got.DegradedReason != e.DegradedReason ||
		got.PreprocessSeconds != e.PreprocessSeconds || got.FootprintBytes != e.FootprintBytes {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
	}
	if len(got.Perm) != len(e.Perm) {
		t.Fatal("perm length changed")
	}
	for i := range got.Perm {
		if got.Perm[i] != e.Perm[i] {
			t.Fatalf("perm diverges at %d", i)
		}
	}
}

func TestCachePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, testMatrix(t, 1))
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(e.Key); !ok || got.K != 8 {
		t.Fatalf("Get = (%v, %v)", got, ok)
	}

	// A fresh process (Open on the same dir) sees the durable entry.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(e.Key)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if err := got.Perm.Validate(len(got.Perm)); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Entries != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheCorruptionQuarantine flips and truncates bytes at every offset
// region of an on-disk entry and asserts the damaged file is quarantined on
// reopen — never fatal, never served — and that a recompute (fresh Put)
// restores service under the same key.
func TestCacheCorruptionQuarantine(t *testing.T) {
	e := testEntry(t, testMatrix(t, 1))
	pristine, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"magic", flipAt(0)},
		{"version", flipAt(5)},
		{"payload-length", flipAt(9)},
		{"crc", flipAt(13)},
		{"payload-head", flipAt(20)},
		{"payload-perm", flipAt(len(pristine) - 8)},
		{"truncate-header", func(b []byte) []byte { return b[:10] }},
		{"truncate-payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncate-1", func(b []byte) []byte { return b[:len(b)-1] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, e.Key+Ext)
			data := append([]byte(nil), pristine...)
			if err := os.WriteFile(path, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := Open(dir)
			if err != nil {
				t.Fatalf("corrupt entry made Open fatal: %v", err)
			}
			if _, ok := c.Get(e.Key); ok {
				t.Fatal("corrupt entry was served")
			}
			if st := c.Stats(); st.Quarantined != 1 {
				t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
			}
			if _, err := os.Stat(path + QuarantineSuffix); err != nil {
				t.Fatalf("damaged bytes not preserved: %v", err)
			}
			// Recompute path: a fresh Put under the same key restores service.
			if err := c.Put(e); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(e.Key); !ok {
				t.Fatal("recomputed entry not served")
			}
		})
	}
}

func flipAt(off int) func([]byte) []byte {
	return func(b []byte) []byte {
		if off < len(b) {
			b[off] ^= 0x40
		}
		return b
	}
}

// TestCacheCrashAtEverySyscallBoundary interrupts the entry write at each
// protocol step (temp-file payload write, fsync, rename) and asserts the
// acceptance property: the cache reopens cleanly with the entry either fully
// present or fully absent — never corrupt, never fatal.
func TestCacheCrashAtEverySyscallBoundary(t *testing.T) {
	e := testEntry(t, testMatrix(t, 1))
	boundaries := []struct {
		point   string
		present bool // entry visible after the simulated crash?
	}{
		{faultinject.CacheWriteTemp, false},
		{faultinject.CacheWriteFsync, false},
		{faultinject.CacheWriteRename, false},
	}
	for _, b := range boundaries {
		t.Run(b.point, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			dir := t.TempDir()
			c, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			faultinject.Arm(b.point)
			err = c.Put(e)
			if !errors.Is(err, atomicio.ErrInjectedCrash) {
				t.Fatalf("Put = %v, want injected crash", err)
			}
			// The "process" died mid-write. A new process opens the cache.
			c2, err := Open(dir)
			if err != nil {
				t.Fatalf("cache unloadable after crash at %s: %v", b.point, err)
			}
			if st := c2.Stats(); st.Quarantined != 0 {
				t.Fatalf("crash left a corrupt (quarantined) entry: %+v", st)
			}
			if _, ok := c2.Get(e.Key); ok != b.present {
				t.Fatalf("entry present=%v after crash at %s, want %v", ok, b.point, b.present)
			}
			// No stray temp files survive recovery.
			names, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, de := range names {
				if strings.Contains(de.Name(), atomicio.TempSuffix) {
					t.Fatalf("stray temp file %s after recovery", de.Name())
				}
			}
			// And the interrupted write can simply be retried.
			if err := c2.Put(e); err != nil {
				t.Fatal(err)
			}
			if _, ok := c2.Get(e.Key); !ok {
				t.Fatal("retried write not visible")
			}
		})
	}
}

// TestCacheCrashAfterRenameIsDurable covers the remaining boundary: once the
// rename has happened, a crash (before or after the directory fsync) must
// leave the complete entry visible.
func TestCacheCrashAfterRenameIsDurable(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, testMatrix(t, 1))
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash by discarding the in-memory cache and reopening.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(e.Key)
	if !ok {
		t.Fatal("published entry lost")
	}
	if len(got.Perm) != len(e.Perm) {
		t.Fatal("published entry truncated")
	}
}

// TestCacheFilenameKeyMismatch: an entry copied under another key's filename
// must be quarantined, not served for the wrong matrix.
func TestCacheFilenameKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	e := testEntry(t, testMatrix(t, 1))
	data, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	wrongKey := KeyCSR(testMatrix(t, 2))
	if err := os.WriteFile(filepath.Join(dir, wrongKey+Ext), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(wrongKey); ok {
		t.Fatal("entry served under a filename whose key it does not match")
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestCacheConcurrentAccess hammers one cache with concurrent writers and
// readers across overlapping keys (run under -race via make race-serve).
func TestCacheConcurrentAccess(t *testing.T) {
	leakcheck.Goroutines(t)
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]*Entry, 8)
	for i := range entries {
		entries[i] = testEntry(t, testMatrix(t, int64(i+1)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				e := entries[(g+i)%len(entries)]
				if g%2 == 0 {
					if err := c.Put(e); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else {
					if got, ok := c.Get(e.Key); ok {
						if err := got.Perm.Validate(len(got.Perm)); err != nil {
							t.Errorf("torn entry read: %v", err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Every entry must be durable and intact after the storm.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Quarantined != 0 {
		t.Fatalf("concurrent writes corrupted %d entries", st.Quarantined)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	e := testEntry(t, testMatrix(t, 1))
	data, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 99 // future format version
	if _, err := DecodeEntry(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew decoded: %v", err)
	}
}

func TestDecodeRejectsNonBijection(t *testing.T) {
	e := testEntry(t, testMatrix(t, 1))
	e.Perm[0] = e.Perm[1] // duplicate target
	if _, err := EncodeEntry(e); err != nil {
		t.Fatal(err) // encode does not validate; decode must
	}
	data, _ := EncodeEntry(e)
	if _, err := DecodeEntry(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-bijective perm decoded: %v", err)
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testEntry(t, testMatrix(t, 1))); err != nil {
		t.Fatal(err)
	}
}

func TestPutEmptyKeyRejected(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(&Entry{}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func ExampleKeyCSR() {
	m := sparse.Identity(4, false)
	fmt.Println(len(KeyCSR(m)))
	// Output: 64
}

// TestPutRejectsDegradedEntry: a degraded plan reflects the moment's faults,
// not the matrix — Put must refuse it before any disk I/O.
func TestPutRejectsDegradedEntry(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, testMatrix(t, 1))
	e.Perm = sparse.IdentityPerm(len(e.Perm))
	e.Reordered = false
	e.K = 0
	e.Degraded = true
	e.DegradedReason = "requested: wall-clock budget exhausted; fell back to identity"
	if err := c.Put(e); err == nil {
		t.Fatal("degraded entry accepted")
	}
	if c.Len() != 0 {
		t.Fatal("rejected entry reached the index")
	}
	if got := c.Stats().WriteErrors; got != 1 {
		t.Fatalf("WriteErrors = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(c.Dir(), e.Key+Ext)); !os.IsNotExist(err) {
		t.Fatal("rejected entry reached the disk")
	}
}

// TestPutRejectsInvalidPlan: structural violations (bad perm, illegal K) must
// fail Put without touching disk or the index.
func TestPutRejectsInvalidPlan(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := testEntry(t, testMatrix(t, 2))
	bad.Perm[0] = bad.Perm[1] // duplicate ⇒ not a bijection
	if err := c.Put(bad); err == nil {
		t.Fatal("non-bijective perm accepted")
	}
	badK := testEntry(t, testMatrix(t, 3))
	// Auto-k may select any k in [2, rows], so a non-candidate count like 3
	// is legal; k=1 is below every feasible cluster count.
	badK.K = 1
	if err := c.Put(badK); err == nil {
		t.Fatal("illegal K accepted")
	}
	if c.Len() != 0 {
		t.Fatal("rejected entries reached the index")
	}
}

// TestPutCatchesInjectedCorruption: with the PlanCorrupt point armed, a
// perfectly healthy entry must be rejected — proof the cache-write site
// actually runs the verifier.
func TestPutCatchesInjectedCorruption(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.PlanCorrupt, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	before := planverify.BySite()[planverify.SiteCachePut]
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, testMatrix(t, 4))
	if err := c.Put(e); err == nil {
		t.Fatal("injected corruption not caught at Put")
	}
	if got := planverify.BySite()[planverify.SiteCachePut]; got <= before {
		t.Fatal("violation not recorded under the cache-put site")
	}
	faultinject.Reset()
	if err := c.Put(e); err != nil {
		t.Fatalf("healthy Put after disarm: %v", err)
	}
}

// TestKeysSortedStatDelete pins the new anti-entropy surface: Keys is sorted,
// Stat reports the on-disk size+CRC without decoding, and Delete removes both
// the file and the index entry.
func TestKeysSortedStatDelete(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var entries []*Entry
	for seed := int64(1); seed <= 4; seed++ {
		e := testEntry(t, testMatrix(t, seed))
		if err := c.Put(e); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	keys := c.Keys()
	if len(keys) != 4 {
		t.Fatalf("Keys() = %d entries, want 4", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not sorted: %q >= %q", keys[i-1], keys[i])
		}
	}

	e := entries[0]
	st, ok := c.Stat(e.Key)
	if !ok {
		t.Fatal("Stat miss for a present key")
	}
	fi, err := os.Stat(filepath.Join(dir, e.Key+Ext))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != fi.Size() {
		t.Fatalf("Stat size %d != file size %d", st.Size, fi.Size())
	}
	if st.CRC == 0 {
		t.Fatal("Stat CRC is zero")
	}
	// A reopened cache (fresh process) reports the identical stat — the
	// digest exchange depends on stats being stable across restarts.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2, ok := c2.Stat(e.Key); !ok || st2 != st {
		t.Fatalf("Stat across reopen = (%+v, %v), want (%+v, true)", st2, ok, st)
	}

	if err := c.Delete(e.Key); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek(e.Key); ok {
		t.Fatal("deleted key still served")
	}
	if _, ok := c.Stat(e.Key); ok {
		t.Fatal("deleted key still has a stat")
	}
	if _, err := os.Stat(filepath.Join(dir, e.Key+Ext)); !os.IsNotExist(err) {
		t.Fatalf("deleted entry file still on disk: %v", err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d after delete, want 3", c.Len())
	}
	if err := c.Delete(e.Key); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	// A reopen must not resurrect the deleted entry.
	c3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Peek(e.Key); ok {
		t.Fatal("deleted entry resurrected on reopen")
	}
}

// TestScrub covers the scrubber's contract: a healthy entry passes, silent
// on-disk corruption is quarantined + evicted, and an unindexed key is a
// no-op.
func TestScrub(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testEntry(t, testMatrix(t, 1))
	bad := testEntry(t, testMatrix(t, 2))
	for _, e := range []*Entry{good, bad} {
		if err := c.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Scrub(good.Key); err != nil {
		t.Fatalf("scrub of healthy entry: %v", err)
	}
	if err := c.Scrub("not-a-key"); err != nil {
		t.Fatalf("scrub of absent key: %v", err)
	}

	// Flip one payload byte on disk behind the cache's back (bit rot).
	path := filepath.Join(dir, bad.Key+Ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Scrub(bad.Key); err == nil {
		t.Fatal("scrub missed flipped payload byte")
	}
	if _, ok := c.Peek(bad.Key); ok {
		t.Fatal("corrupt entry still served after scrub")
	}
	if _, err := os.Stat(path + QuarantineSuffix); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if st := c.Stats(); st.Quarantined != 1 || st.Entries != 1 {
		t.Fatalf("stats after scrub = %+v", st)
	}
	// Recovery path: a fresh Put under the same key restores service.
	if err := c.Put(bad); err != nil {
		t.Fatal(err)
	}
	if err := c.Scrub(bad.Key); err != nil {
		t.Fatalf("scrub after repair: %v", err)
	}
}
