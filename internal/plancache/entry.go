package plancache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"bootes/internal/sparse"
)

// On-disk entry container (little-endian):
//
//	magic      [4]byte  "BPLN"
//	version    uint32   (1)
//	payloadLen uint32
//	crc32      uint32   (IEEE, over the payload bytes)
//	payload:
//	  keyLen   uint16, key bytes (hex content hash; must match the filename)
//	  flags    uint8   (bit0 Reordered, bit1 Degraded)
//	  k        uint16
//	  preprocessSeconds float64
//	  footprintBytes    int64
//	  reasonLen uint16, reason bytes
//	  permLen   uint32, perm [permLen]int32
//
// The CRC covers everything after the header, so any byte flip or truncation
// in the payload is detected before the permutation is trusted; the decoded
// permutation is additionally validated as a bijection, so a loaded entry is
// always directly usable as a plan.

var entryMagic = [4]byte{'B', 'P', 'L', 'N'}

// FormatVersion is the on-disk entry format version.
const FormatVersion = 1

// maxPermLen bounds the decoded permutation length, mirroring the sparse
// package's 16.7M-row BCSR reader guard: a hostile header cannot demand an
// unbounded allocation.
const maxPermLen = 1 << 24

// ErrCorrupt reports an undecodable or integrity-failing cache entry.
var ErrCorrupt = errors.New("plancache: corrupt entry")

// Entry is one cached planning outcome.
type Entry struct {
	// Key is the content hash the entry is stored under.
	Key string
	// Perm maps new row position to original row.
	Perm sparse.Permutation
	// Reordered mirrors ReorderPlan.Reordered.
	Reordered bool
	// Degraded plans are never written by the serving layer, but the format
	// carries the flag so the cache round-trips any plan faithfully.
	Degraded bool
	// K is the cluster count used (0 when not reordered).
	K int
	// DegradedReason mirrors ReorderPlan.DegradedReason.
	DegradedReason string
	// PreprocessSeconds is the planning cost of the original computation
	// (what a cache hit saves, not what it costs).
	PreprocessSeconds float64
	// FootprintBytes is the modeled peak planning memory of the original run.
	FootprintBytes int64
}

// KeyCSR returns the content hash of m's sparsity structure (shape, row
// pointers, column indices) as a hex string. Values are deliberately
// excluded: planning consumes only the pattern.
func KeyCSR(m *sparse.CSR) string {
	h := sha256.New()
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.NNZ()))
	h.Write(hdr[:])
	_ = binary.Write(h, binary.LittleEndian, m.RowPtr)
	_ = binary.Write(h, binary.LittleEndian, m.Col)
	return hex.EncodeToString(h.Sum(nil))
}

// EncodeEntry serializes e into the container format.
func EncodeEntry(e *Entry) ([]byte, error) {
	if len(e.Key) > math.MaxUint16 || len(e.DegradedReason) > math.MaxUint16 {
		return nil, fmt.Errorf("plancache: key or reason too long")
	}
	if len(e.Perm) > maxPermLen {
		return nil, fmt.Errorf("plancache: permutation length %d over limit", len(e.Perm))
	}
	if e.K < 0 || e.K > math.MaxUint16 {
		return nil, fmt.Errorf("plancache: k=%d out of range", e.K)
	}
	var payload bytes.Buffer
	writeU16 := func(v int) { _ = binary.Write(&payload, binary.LittleEndian, uint16(v)) }
	writeU16(len(e.Key))
	payload.WriteString(e.Key)
	var flags uint8
	if e.Reordered {
		flags |= 1
	}
	if e.Degraded {
		flags |= 2
	}
	payload.WriteByte(flags)
	writeU16(e.K)
	_ = binary.Write(&payload, binary.LittleEndian, e.PreprocessSeconds)
	_ = binary.Write(&payload, binary.LittleEndian, e.FootprintBytes)
	writeU16(len(e.DegradedReason))
	payload.WriteString(e.DegradedReason)
	_ = binary.Write(&payload, binary.LittleEndian, uint32(len(e.Perm)))
	_ = binary.Write(&payload, binary.LittleEndian, []int32(e.Perm))

	out := bytes.NewBuffer(make([]byte, 0, 16+payload.Len()))
	out.Write(entryMagic[:])
	_ = binary.Write(out, binary.LittleEndian, uint32(FormatVersion))
	_ = binary.Write(out, binary.LittleEndian, uint32(payload.Len()))
	_ = binary.Write(out, binary.LittleEndian, crc32.ChecksumIEEE(payload.Bytes()))
	out.Write(payload.Bytes())
	return out.Bytes(), nil
}

// DecodeEntry parses and integrity-checks a serialized entry. Every failure
// mode — bad magic, unknown version, truncation anywhere, CRC mismatch,
// implausible lengths, a non-bijective permutation — returns an error
// wrapping ErrCorrupt; DecodeEntry never panics on hostile input (fuzzed by
// FuzzDecodeEntry).
func DecodeEntry(data []byte) (*Entry, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: %d-byte file shorter than header", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:4], entryMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	version := binary.LittleEndian.Uint32(data[4:])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	payloadLen := binary.LittleEndian.Uint32(data[8:])
	sum := binary.LittleEndian.Uint32(data[12:])
	payload := data[16:]
	if uint64(len(payload)) != uint64(payloadLen) {
		return nil, fmt.Errorf("%w: payload %d bytes, header claims %d", ErrCorrupt, len(payload), payloadLen)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	r := bytes.NewReader(payload)
	readU16 := func() (int, error) {
		var v uint16
		err := binary.Read(r, binary.LittleEndian, &v)
		return int(v), err
	}
	e := &Entry{}
	keyLen, err := readU16()
	if err != nil {
		return nil, fmt.Errorf("%w: key length: %v", ErrCorrupt, err)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, fmt.Errorf("%w: key: %v", ErrCorrupt, err)
	}
	e.Key = string(key)
	var flags uint8
	if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrCorrupt, err)
	}
	if flags > 3 {
		return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, flags)
	}
	e.Reordered = flags&1 != 0
	e.Degraded = flags&2 != 0
	if e.K, err = readU16(); err != nil {
		return nil, fmt.Errorf("%w: k: %v", ErrCorrupt, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &e.PreprocessSeconds); err != nil {
		return nil, fmt.Errorf("%w: preprocess seconds: %v", ErrCorrupt, err)
	}
	if math.IsNaN(e.PreprocessSeconds) || e.PreprocessSeconds < 0 {
		return nil, fmt.Errorf("%w: implausible preprocess seconds", ErrCorrupt)
	}
	if err := binary.Read(r, binary.LittleEndian, &e.FootprintBytes); err != nil {
		return nil, fmt.Errorf("%w: footprint: %v", ErrCorrupt, err)
	}
	if e.FootprintBytes < 0 {
		return nil, fmt.Errorf("%w: negative footprint", ErrCorrupt)
	}
	reasonLen, err := readU16()
	if err != nil {
		return nil, fmt.Errorf("%w: reason length: %v", ErrCorrupt, err)
	}
	reason := make([]byte, reasonLen)
	if _, err := io.ReadFull(r, reason); err != nil {
		return nil, fmt.Errorf("%w: reason: %v", ErrCorrupt, err)
	}
	e.DegradedReason = string(reason)
	var permLen uint32
	if err := binary.Read(r, binary.LittleEndian, &permLen); err != nil {
		return nil, fmt.Errorf("%w: perm length: %v", ErrCorrupt, err)
	}
	if permLen > maxPermLen {
		return nil, fmt.Errorf("%w: implausible perm length %d", ErrCorrupt, permLen)
	}
	if uint64(r.Len()) != uint64(permLen)*4 {
		return nil, fmt.Errorf("%w: perm payload %d bytes, want %d", ErrCorrupt, r.Len(), permLen*4)
	}
	perm := make([]int32, permLen)
	if err := binary.Read(r, binary.LittleEndian, perm); err != nil {
		return nil, fmt.Errorf("%w: perm: %v", ErrCorrupt, err)
	}
	e.Perm = sparse.Permutation(perm)
	if err := e.Perm.Validate(len(perm)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if e.Degraded && e.DegradedReason == "" {
		return nil, fmt.Errorf("%w: degraded entry without reason", ErrCorrupt)
	}
	return e, nil
}
