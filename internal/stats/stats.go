// Package stats provides the small numeric helpers the experiment harness
// relies on: means, variances, geometric means, and log-log linear fits used
// to estimate empirical scaling exponents (Table 2).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of xs. All inputs must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// MustGeoMean is GeoMean for callers with statically valid input; it panics
// on error and exists to keep experiment drivers readable.
func MustGeoMean(xs []float64) float64 {
	g, err := GeoMean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// Median returns the median of xs (0 for an empty slice). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// LinearFit returns (slope, intercept) of the least-squares line through
// (x, y) pairs. Used on log-log data to estimate scaling exponents.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("stats: mismatched sample lengths")
	}
	if len(x) < 2 {
		return 0, 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	slope = num / den
	intercept = my - slope*mx
	return slope, intercept, nil
}

// ScalingExponent fits y ≈ c·xᵅ and returns α, the empirical scaling
// exponent, by a linear fit in log-log space. All inputs must be positive.
func ScalingExponent(x, y []float64) (float64, error) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if i >= len(y) {
			break
		}
		if x[i] <= 0 || y[i] <= 0 {
			return 0, errors.New("stats: scaling exponent requires positive samples")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _, err := LinearFit(lx, ly)
	return slope, err
}
