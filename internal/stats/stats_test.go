package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !approx(Mean(xs), 2.5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !approx(Variance(xs), 1.25, 1e-12) {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if !approx(StdDev(xs), math.Sqrt(1.25), 1e-12) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Error("empty/singleton cases wrong")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{2, 8})
	if err != nil || !approx(g, 4, 1e-12) {
		t.Errorf("GeoMean = %v, %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty GeoMean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative GeoMean accepted")
	}
	if !approx(MustGeoMean([]float64{1, 1, 1}), 1, 1e-12) {
		t.Error("MustGeoMean wrong")
	}
}

func TestMedian(t *testing.T) {
	if !approx(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Error("odd median wrong")
	}
	if !approx(Median([]float64{4, 1, 2, 3}), 2.5, 1e-12) {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("empty median wrong")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestMinMax(t *testing.T) {
	mn, err := Min([]float64{3, -1, 2})
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max([]float64{3, -1, 2})
	if err != nil || mx != 3 {
		t.Errorf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err == nil {
		t.Error("empty Min accepted")
	}
	if _, err := Max(nil); err == nil {
		t.Error("empty Max accepted")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, err := LinearFit(x, y)
	if err != nil || !approx(slope, 2, 1e-12) || !approx(intercept, 1, 1e-12) {
		t.Errorf("fit = %v, %v, %v", slope, intercept, err)
	}
	if _, _, err := LinearFit(x, y[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestScalingExponent(t *testing.T) {
	// y = 3·x² exactly.
	x := []float64{1, 2, 4, 8}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * x[i] * x[i]
	}
	alpha, err := ScalingExponent(x, y)
	if err != nil || !approx(alpha, 2, 1e-9) {
		t.Errorf("alpha = %v, %v", alpha, err)
	}
	if _, err := ScalingExponent([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative input accepted")
	}
}

func TestGeoMeanBoundsProperty(t *testing.T) {
	// Geometric mean lies between min and max of positive samples.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return g >= mn-1e-9 && g <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
