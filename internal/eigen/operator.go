// Package eigen provides the sparse symmetric eigensolver Bootes' spectral
// clustering needs: a Lanczos iteration with full reorthogonalization over a
// linear operator, a symmetric tridiagonal QL solver for the projected
// problem, and a dense Jacobi solver used as a reference in tests.
//
// Spectral clustering needs the eigenvectors of the normalized Laplacian
// L = I − D^{-1/2} S D^{-1/2} associated with the k smallest eigenvalues.
// Equivalently these are the eigenvectors of the normalized similarity
// M = D^{-1/2} S D^{-1/2} with the k largest eigenvalues, which is the
// well-conditioned form Lanczos converges to fastest; the package works with
// M and reports Laplacian eigenvalues as 1−θ.
package eigen

import (
	"errors"
	"fmt"

	"bootes/internal/parallel"
	"bootes/internal/sparse"
)

// scaleGrain is the fixed chunk size of the parallel element-wise scaling
// inside the operators. Chunks write disjoint regions, so results are
// bit-identical for any worker count.
const scaleGrain = 2048

// ErrOperatorDim reports an operator applied to vectors of the wrong length.
// Operators return it instead of panicking so a malformed operator can never
// kill a serving process.
var ErrOperatorDim = errors.New("eigen: operator dimension mismatch")

// mulInto sets dst[i] = x[i]·s[i] over parallel chunks.
func mulInto(dst, x, s []float64) {
	parallel.For(len(x), scaleGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = x[i] * s[i]
		}
	})
}

// mulInPlace sets y[i] *= s[i] over parallel chunks.
func mulInPlace(y, s []float64) {
	parallel.For(len(y), scaleGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] *= s[i]
		}
	})
}

// checkDims validates that x and y both have length n.
func checkDims(n int, x, y []float64) error {
	if len(x) != n || len(y) != n {
		return fmt.Errorf("%w: dim %d, len(x)=%d len(y)=%d", ErrOperatorDim, n, len(x), len(y))
	}
	return nil
}

// Operator is a symmetric linear operator on ℝⁿ.
type Operator interface {
	// Dim returns n.
	Dim() int
	// Apply computes y = Op·x. x and y have length Dim and do not alias.
	// It returns an error (never panics) on malformed input.
	Apply(x, y []float64) error
}

// CSROp adapts a symmetric sparse matrix to Operator. The matrix is not
// checked for symmetry; Lanczos assumes it.
type CSROp struct{ M *sparse.CSR }

// Dim returns the matrix order.
func (o CSROp) Dim() int { return o.M.Rows }

// Apply computes y = M·x.
func (o CSROp) Apply(x, y []float64) error {
	if err := sparse.SpMV(o.M, x, y); err != nil {
		return fmt.Errorf("%w: CSROp: %v", ErrOperatorDim, err)
	}
	return nil
}

// NormalizedSimilarity is the operator M = D^{-1/2}·S·D^{-1/2} for an
// explicit similarity matrix S (paper Algorithm 4 keeps S in CSR form).
type NormalizedSimilarity struct {
	S       *sparse.CSR
	InvSqrt []float64 // 1/sqrt(degree); 0 for isolated rows
	tmp     []float64
}

// NewNormalizedSimilarity builds the normalized operator from an explicit
// similarity matrix. Isolated rows (zero degree) get InvSqrt 0, which leaves
// them as fixed points of the operator — the standard convention. The degree
// sums are row-parallel over disjoint chunks (each row's sum is accumulated
// in row order within its chunk), so the operator is bit-identical for any
// worker count.
func NewNormalizedSimilarity(s *sparse.CSR) *NormalizedSimilarity {
	n := s.Rows
	inv := make([]float64, n)
	parallel.For(n, scaleGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum := 0.0
			vals := s.RowVals(i)
			if vals == nil {
				sum = float64(s.RowNNZ(i))
			} else {
				for _, v := range vals {
					sum += v
				}
			}
			if sum > 0 {
				inv[i] = 1 / sqrt(sum)
			}
		}
	})
	return &NormalizedSimilarity{S: s, InvSqrt: inv, tmp: make([]float64, n)}
}

// Dim returns the operator dimension.
func (o *NormalizedSimilarity) Dim() int { return o.S.Rows }

// Apply computes y = D^{-1/2} S D^{-1/2} x. The scaling and the SpMV inside
// are row-parallel; >90% of Lanczos time is spent here.
func (o *NormalizedSimilarity) Apply(x, y []float64) error {
	if err := checkDims(o.S.Rows, x, y); err != nil {
		return err
	}
	if o.S.Cols != o.S.Rows {
		return fmt.Errorf("%w: similarity matrix %dx%d is not square", ErrOperatorDim, o.S.Rows, o.S.Cols)
	}
	mulInto(o.tmp, x, o.InvSqrt)
	if err := sparse.SpMV(o.S, o.tmp, y); err != nil {
		return fmt.Errorf("%w: NormalizedSimilarity: %v", ErrOperatorDim, err)
	}
	mulInPlace(y, o.InvSqrt)
	return nil
}

// ImplicitSimilarity applies M = D^{-1/2}·(Ā·Āᵀ)·D^{-1/2} without forming
// S = Ā·Āᵀ explicitly, using two pattern SpMVs (y = Ā(Āᵀ·x)). This is the
// memory-footprint ablation Bootes' design motivates: S can be far denser
// than A, so skipping it trades one extra matvec per Lanczos step for a
// large reduction in peak memory.
type ImplicitSimilarity struct {
	A, At   *sparse.CSR
	InvSqrt []float64
	tmpN    []float64 // length A.Rows
	tmpK    []float64 // length A.Cols
}

// NewImplicitSimilarity builds the implicit operator from the pattern of A.
// Degrees are computed without forming S: deg(i) = Σ_{c∈row i} colCount(c).
func NewImplicitSimilarity(a *sparse.CSR) *ImplicitSimilarity {
	return NewImplicitSimilarityCapped(a, 0)
}

// NewImplicitSimilarityCapped is NewImplicitSimilarity with hub-column
// exclusion: columns of degree > maxColDegree are removed from the pattern
// before the operator is formed, mirroring sparse.SimilarityCapped.
// maxColDegree ≤ 0 keeps every column.
func NewImplicitSimilarityCapped(a *sparse.CSR, maxColDegree int) *ImplicitSimilarity {
	return NewImplicitSimilarityCappedWithCounts(a, maxColDegree, nil)
}

// NewImplicitSimilarityCappedWithCounts is NewImplicitSimilarityCapped for
// callers that already hold ColCounts(a), sparing the hub-dropping step a
// redundant count walk; nil colCounts are computed on demand.
func NewImplicitSimilarityCappedWithCounts(a *sparse.CSR, maxColDegree int, colCounts []int) *ImplicitSimilarity {
	ap := a.Pattern()
	if maxColDegree > 0 {
		if colCounts == nil {
			colCounts = sparse.ColCounts(ap)
		}
		ap = sparse.DropHubColumnsWithCounts(ap, maxColDegree, colCounts)
	}
	at := sparse.Transpose(ap)
	colCount := make([]float64, a.Cols)
	for _, c := range ap.Col {
		colCount[c]++
	}
	inv := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		deg := 0.0
		for _, c := range ap.Row(i) {
			deg += colCount[c]
		}
		if deg > 0 {
			inv[i] = 1 / sqrt(deg)
		}
	}
	return &ImplicitSimilarity{
		A: ap, At: at, InvSqrt: inv,
		tmpN: make([]float64, a.Rows),
		tmpK: make([]float64, a.Cols),
	}
}

// Dim returns the operator dimension (rows of A).
func (o *ImplicitSimilarity) Dim() int { return o.A.Rows }

// Apply computes y = D^{-1/2} Ā Āᵀ D^{-1/2} x via two row-parallel SpMVs.
func (o *ImplicitSimilarity) Apply(x, y []float64) error {
	if err := checkDims(o.A.Rows, x, y); err != nil {
		return err
	}
	mulInto(o.tmpN, x, o.InvSqrt)
	if err := sparse.SpMV(o.At, o.tmpN, o.tmpK); err != nil {
		return fmt.Errorf("%w: ImplicitSimilarity Āᵀ: %v", ErrOperatorDim, err)
	}
	if err := sparse.SpMV(o.A, o.tmpK, y); err != nil {
		return fmt.Errorf("%w: ImplicitSimilarity Ā: %v", ErrOperatorDim, err)
	}
	mulInPlace(y, o.InvSqrt)
	return nil
}
