package eigen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bootes/internal/faultinject"
)

// BlockLargest computes the K algebraically largest eigenpairs of a symmetric
// operator with randomized block subspace iteration (orthogonal iteration
// with Rayleigh–Ritz acceleration). Unlike single-vector Lanczos, whose
// Krylov space contains exactly one direction per *distinct* eigenvalue, a
// block of b ≥ multiplicity random starts resolves degenerate and tightly
// clustered eigenvalues — the spectrum shape of a k-block similarity matrix,
// whose normalized operator carries the eigenvalue 1 with multiplicity k.
// That makes this the right solver for eigengap cluster-count detection,
// where the multiplicity IS the answer being sought.
func BlockLargest(op Operator, opts Options) (*Result, error) {
	return BlockLargestContext(context.Background(), op, opts)
}

// BlockLargestContext is BlockLargest with cooperative cancellation, checked
// before every operator application. Options are interpreted as:
//
//   - K: wanted eigenpairs.
//   - MaxBasis: cap on the iteration block size (default block is K+8,
//     oversampled so trailing wanted pairs converge; 0 leaves the default).
//   - MaxRestarts: maximum subspace iterations (0 selects 40).
//   - Tol: Ritz residual tolerance relative to the spectral scale.
//   - Seed, DenseFallbackDim: as for LargestContext.
//
// Like LargestContext, a solve that runs out of iterations returns the best
// available Ritz approximations with Converged=false rather than an error.
func BlockLargestContext(ctx context.Context, op Operator, opts Options) (*Result, error) {
	n := op.Dim()
	if opts.K <= 0 {
		return nil, errors.New("eigen: K must be positive")
	}
	if opts.K > n {
		return nil, fmt.Errorf("eigen: K=%d exceeds dimension %d", opts.K, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if faultinject.Fire(faultinject.EigenNoConverge) {
		return nil, ErrNoConverge
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	if opts.MaxRestarts == 0 {
		opts.MaxRestarts = 40
	}
	if opts.DenseFallbackDim == 0 {
		opts.DenseFallbackDim = 96
	}
	b := opts.K + 8
	if opts.MaxBasis > 0 && b > opts.MaxBasis {
		b = opts.MaxBasis
	}
	if b < opts.K {
		b = opts.K
	}
	if b > n {
		b = n
	}
	// A block spanning most of the space is a dense solve in disguise — do
	// the honest dense solve instead.
	if n <= opts.DenseFallbackDim || 2*b >= n {
		return denseLargest(ctx, op, opts.K)
	}

	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5b5c4e))
	x := make([][]float64, b) // current orthonormal block
	v := make([][]float64, b) // Op·x
	u := make([][]float64, b) // Ritz vectors (next block)
	for j := 0; j < b; j++ {
		x[j] = randomUnit(rng, n)
		v[j] = make([]float64, n)
		u[j] = make([]float64, n)
	}
	orthonormalizeBlock(x)

	h := make([]float64, b*b)
	matvecs := 0
	var values []float64
	var theta []float64
	for iter := 0; iter < opts.MaxRestarts; iter++ {
		// V = Op·X, one application per block column.
		for j := 0; j < b; j++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := op.Apply(x[j], v[j]); err != nil {
				return nil, err
			}
			matvecs++
		}
		// Rayleigh–Ritz: H = Xᵀ(Op·X), symmetrized against round-off.
		for i := 0; i < b; i++ {
			for j := i; j < b; j++ {
				d := (dot(x[i], v[j]) + dot(x[j], v[i])) / 2
				h[i*b+j], h[j*b+i] = d, d
			}
		}
		eig, q, err := JacobiEigen(h, b)
		if err != nil {
			return nil, err
		}
		// Rotate to Ritz pairs, largest first: u_r = Σ_j q[j,col]·x_j.
		theta = theta[:0]
		scale := 0.0
		for r := 0; r < b; r++ {
			col := b - 1 - r // JacobiEigen returns ascending order
			theta = append(theta, eig[col])
			if a := math.Abs(eig[col]); a > scale {
				scale = a
			}
			ur := u[r]
			for i := range ur {
				ur[i] = 0
			}
			for j := 0; j < b; j++ {
				if c := q[j*b+col]; c != 0 {
					axpy(ur, x[j], c)
				}
			}
		}
		if scale == 0 {
			scale = 1
		}
		// Same rotation applied to V gives W = V·Q = Op·U — the residual
		// numerator AND the next iterate (this is the operator application
		// that advances the subspace; rotating X alone would leave it fixed).
		// X's storage is free once U is built, so W overwrites it row by row.
		for r := 0; r < b; r++ {
			col := b - 1 - r
			wr := x[r]
			for i := range wr {
				wr[i] = 0
			}
			for j := 0; j < b; j++ {
				if c := q[j*b+col]; c != 0 {
					axpy(wr, v[j], c)
				}
			}
		}
		done := true
		for r := 0; r < opts.K; r++ {
			// residual_r = ‖w_r − θ_r·u_r‖ = ‖Op·u_r − θ_r·u_r‖.
			res := 0.0
			for i := 0; i < n; i++ {
				s := x[r][i] - theta[r]*u[r][i]
				res += s * s
			}
			if math.Sqrt(res) > opts.Tol*scale {
				done = false
				break
			}
		}
		if done {
			values = append(values[:0], theta...)
			return blockResult(values, u, opts.K, matvecs, true), nil
		}
		// Next block: orth(W) = orth(Op·X·Q) — one step of subspace iteration
		// with the Ritz ordering leading, so MGS favors dominant directions.
		orthonormalizeBlock(x)
	}
	// Out of iterations: the latest Ritz pairs (θ, U) are mutually
	// consistent best-available approximations.
	values = append(values[:0], theta...)
	return blockResult(values, u, opts.K, matvecs, false), nil
}

// blockResult shapes the leading k Ritz pairs into a Result.
func blockResult(theta []float64, vecs [][]float64, k, matvecs int, converged bool) *Result {
	res := &Result{MatVecs: matvecs, Converged: converged}
	for r := 0; r < k; r++ {
		res.Values = append(res.Values, theta[r])
		res.Vectors = append(res.Vectors, vecs[r])
	}
	return res
}

// orthonormalizeBlock runs two passes of modified Gram–Schmidt over the block
// in place. Vectors that cancel to (numerical) zero are replaced by fresh
// coordinate directions so the block keeps full rank.
func orthonormalizeBlock(x [][]float64) {
	n := len(x[0])
	for j := range x {
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				axpy(x[j], x[i], -dot(x[j], x[i]))
			}
		}
		nrm := norm(x[j])
		if nrm < 1e-12 {
			// Degenerate direction: re-seed deterministically from the unit
			// basis and re-orthogonalize.
			for i := range x[j] {
				x[j][i] = 0
			}
			x[j][j%n] = 1
			for i := 0; i < j; i++ {
				axpy(x[j], x[i], -dot(x[j], x[i]))
			}
			nrm = norm(x[j])
			if nrm < 1e-12 {
				continue
			}
		}
		scale(x[j], 1/nrm)
	}
}
