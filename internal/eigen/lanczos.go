package eigen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bootes/internal/faultinject"
)

// Options configures the Lanczos eigensolver.
type Options struct {
	// K is the number of wanted eigenpairs (the largest eigenvalues of the
	// operator).
	K int
	// MaxBasis bounds the Krylov basis size per restart cycle.
	// 0 selects max(4K+8, 48), clamped to the operator dimension.
	MaxBasis int
	// Tol is the Ritz-residual tolerance relative to the spectral scale.
	// 0 selects 1e-8.
	Tol float64
	// MaxRestarts bounds thick-restart cycles. 0 selects 40.
	MaxRestarts int
	// Seed seeds the random start vector for determinism.
	Seed int64
	// DenseFallbackDim: problems of dimension ≤ this are solved densely with
	// Jacobi rotations instead of Lanczos. 0 selects 96.
	DenseFallbackDim int
	// LocalReorth switches from full reorthogonalization to the classic
	// three-term recurrence (orthogonalize only against the two previous
	// basis vectors, plus the retained Ritz block right after a restart).
	// Cheaper per step, but floating-point drift re-introduces converged
	// directions ("ghost" eigenvalues) on clustered spectra — the ablation
	// that motivates full reorthogonalization as the default.
	LocalReorth bool
}

func (o Options) withDefaults(n int) Options {
	if o.MaxBasis == 0 {
		o.MaxBasis = 4*o.K + 8
		if o.MaxBasis < 48 {
			o.MaxBasis = 48
		}
	}
	if o.MaxBasis > n {
		o.MaxBasis = n
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 40
	}
	if o.DenseFallbackDim == 0 {
		o.DenseFallbackDim = 96
	}
	return o
}

// Result holds converged eigenpairs of the operator, largest eigenvalue
// first. Vectors[i] is the unit eigenvector for Values[i].
type Result struct {
	Values  []float64
	Vectors [][]float64
	// MatVecs is the number of operator applications performed — the Krylov
	// iteration count t in the paper's Table 2 complexity analysis.
	MatVecs int
	// Converged reports whether all K pairs met the residual tolerance.
	// When false the best available Ritz approximations are returned, which
	// is almost always sufficient for clustering purposes.
	Converged bool
}

// Largest computes the K algebraically largest eigenpairs of a symmetric
// operator using thick-restart Lanczos with full reorthogonalization. For
// tiny problems it falls back to a dense Jacobi solve.
func Largest(op Operator, opts Options) (*Result, error) {
	return LargestContext(context.Background(), op, opts)
}

// LargestContext is Largest with cooperative cancellation: the context is
// checked before every operator application (the unit of Lanczos progress)
// and once per restart cycle, so a cancelled solve returns ctx.Err() within
// one matvec of the cancellation.
func LargestContext(ctx context.Context, op Operator, opts Options) (*Result, error) {
	n := op.Dim()
	if opts.K <= 0 {
		return nil, errors.New("eigen: K must be positive")
	}
	if opts.K > n {
		return nil, fmt.Errorf("eigen: K=%d exceeds dimension %d", opts.K, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if faultinject.Fire(faultinject.EigenNoConverge) {
		return nil, ErrNoConverge
	}
	opts = opts.withDefaults(n)
	if n <= opts.DenseFallbackDim || opts.MaxBasis >= n {
		return denseLargest(ctx, op, opts.K)
	}
	return thickRestartLanczos(ctx, op, opts)
}

// denseLargest materializes the operator column by column and solves with
// Jacobi rotations.
func denseLargest(ctx context.Context, op Operator, k int) (*Result, error) {
	n := op.Dim()
	a := make([]float64, n*n)
	x := make([]float64, n)
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
		if err := op.Apply(x, y); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			a[i*n+j] = y[i]
		}
	}
	// Symmetrize to wash out round-off asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := (a[i*n+j] + a[j*n+i]) / 2
			a[i*n+j], a[j*n+i] = m, m
		}
	}
	eig, v, err := JacobiEigen(a, n)
	if err != nil {
		return nil, err
	}
	res := &Result{MatVecs: n, Converged: true}
	for i := 0; i < k; i++ {
		col := n - 1 - i // ascending order → take from the back
		res.Values = append(res.Values, eig[col])
		vec := make([]float64, n)
		for row := 0; row < n; row++ {
			vec[row] = v[row*n+col]
		}
		res.Vectors = append(res.Vectors, vec)
	}
	return res, nil
}

// thickRestartLanczos implements the Wu–Simon thick-restart scheme. The
// basis is kept fully orthogonal; after each cycle the top Ritz vectors are
// retained and the projected problem becomes arrowhead-plus-tridiagonal,
// which we solve densely (it is at most MaxBasis × MaxBasis).
func thickRestartLanczos(ctx context.Context, op Operator, opts Options) (*Result, error) {
	n := op.Dim()
	m := opts.MaxBasis
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x1a2c3))

	// basis holds up to m+1 orthonormal vectors of length n.
	basis := make([][]float64, 0, m+1)
	v := randomUnit(rng, n)
	basis = append(basis, v)

	// proj is the projected symmetric matrix in the current basis,
	// stored dense row-major (size grows with the basis).
	proj := make([]float64, (m+1)*(m+1))
	at := func(i, j int) float64 { return proj[i*(m+1)+j] }
	set := func(i, j int, x float64) {
		proj[i*(m+1)+j] = x
		proj[j*(m+1)+i] = x
	}

	matvecs := 0
	w := make([]float64, n)
	kept := 0 // size of the retained Ritz block after the latest restart

	for restart := 0; restart <= opts.MaxRestarts; restart++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Extend the basis with Lanczos steps from position len(basis)-1.
		for len(basis) <= m {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			j := len(basis) - 1
			if err := op.Apply(basis[j], w); err != nil {
				return nil, err
			}
			matvecs++
			if opts.LocalReorth && j > kept {
				// Three-term recurrence: only v_{j-1} and v_j carry weight
				// in exact arithmetic (plus the arrow block at j == kept,
				// handled by the branch condition). H entries beyond the
				// tridiagonal couple are left at their recorded values.
				for _, i := range []int{j - 1, j} {
					d := dot(w, basis[i])
					axpy(w, basis[i], -d)
					set(i, j, d)
				}
			} else {
				// Full reorthogonalization (two modified Gram-Schmidt
				// passes). Because the basis is orthonormal, the pass-0
				// coefficients are exactly the projected-matrix entries
				// H[i,j] = ⟨v_i, Op·v_j⟩ (they overwrite the β coupling
				// recorded at the previous step, which equals the same
				// projection); pass 1 removes round-off.
				for pass := 0; pass < 2; pass++ {
					for i, b := range basis {
						d := dot(w, b)
						axpy(w, b, -d)
						if pass == 0 {
							set(i, j, d)
						}
					}
				}
			}
			beta := norm(w)
			if beta < 1e-12 {
				// Invariant subspace: continue with a fresh random direction.
				v = randomUnit(rng, n)
				orthogonalize(v, basis)
				if norm(v) < 1e-12 {
					break // dimension exhausted
				}
				scale(v, 1/norm(v))
				basis = append(basis, v)
				// Coupling to the rest of the basis is zero (already set).
				continue
			}
			nv := append([]float64(nil), w...)
			scale(nv, 1/beta)
			set(j, len(basis), beta)
			basis = append(basis, nv)
		}

		// Rayleigh–Ritz on the projected matrix of order q = len(basis)-1
		// (the last basis vector is the residual direction, not part of the
		// projection — its coupling column is the residual norm).
		q := len(basis) - 1
		sub := make([]float64, q*q)
		for i := 0; i < q; i++ {
			for j := 0; j < q; j++ {
				sub[i*q+j] = at(i, j)
			}
		}
		eig, z, err := JacobiEigen(sub, q)
		if err != nil {
			return nil, err
		}
		// Residual of Ritz pair i: |Σ_j coupling[j]·z[j,i]| where coupling
		// is the projected row of the residual vector.
		coupling := make([]float64, q)
		for j := 0; j < q; j++ {
			coupling[j] = at(j, q)
		}
		scaleRef := math.Max(math.Abs(eig[0]), math.Abs(eig[q-1]))
		if scaleRef == 0 {
			scaleRef = 1
		}
		resid := make([]float64, q)
		for i := 0; i < q; i++ {
			s := 0.0
			for j := 0; j < q; j++ {
				s += coupling[j] * z[j*q+i]
			}
			resid[i] = math.Abs(s)
		}
		// Wanted pairs are the top K (eig ascending → last K columns).
		allConverged := true
		for i := 0; i < opts.K; i++ {
			if resid[q-1-i] > opts.Tol*scaleRef {
				allConverged = false
				break
			}
		}

		// Form Ritz vectors we keep: K wanted plus padding for restart.
		keep := opts.K + minInt(opts.K, 8)
		if keep > q {
			keep = q
		}
		if allConverged || restart == opts.MaxRestarts || q >= n-1 {
			keep = opts.K
		}
		ritz := make([][]float64, keep)
		for i := 0; i < keep; i++ {
			col := q - 1 - i
			vec := make([]float64, n)
			for j := 0; j < q; j++ {
				c := z[j*q+col]
				if c != 0 {
					axpy(vec, basis[j], c)
				}
			}
			nv := norm(vec)
			if nv > 0 {
				scale(vec, 1/nv)
			}
			ritz[i] = vec
		}

		if allConverged || restart == opts.MaxRestarts || q >= n-1 {
			res := &Result{MatVecs: matvecs, Converged: allConverged}
			for i := 0; i < opts.K; i++ {
				res.Values = append(res.Values, eig[q-1-i])
				res.Vectors = append(res.Vectors, ritz[i])
			}
			return res, nil
		}

		// Thick restart: basis = retained Ritz vectors + residual direction.
		residVec := basis[q]
		newBasis := make([][]float64, 0, m+1)
		newBasis = append(newBasis, ritz...)
		orthogonalize(residVec, newBasis)
		nv := norm(residVec)
		if nv < 1e-12 {
			residVec = randomUnit(rng, n)
			orthogonalize(residVec, newBasis)
			nv = norm(residVec)
			if nv < 1e-12 {
				res := &Result{MatVecs: matvecs, Converged: allConverged}
				for i := 0; i < opts.K; i++ {
					res.Values = append(res.Values, eig[q-1-i])
					res.Vectors = append(res.Vectors, ritz[i])
				}
				return res, nil
			}
		}
		scale(residVec, 1/nv)
		newBasis = append(newBasis, residVec)
		basis = newBasis
		kept = keep

		// Rebuild the projected matrix: diag(theta) with arrow coupling.
		for i := range proj {
			proj[i] = 0
		}
		for i := 0; i < keep; i++ {
			col := q - 1 - i
			set(i, i, eig[col])
			s := 0.0
			for j := 0; j < q; j++ {
				s += coupling[j] * z[j*q+col]
			}
			set(i, keep, s)
		}
	}
	return nil, ErrNoConverge
}

// SmallestLaplacian converts the K largest eigenpairs of the normalized
// similarity M into the K smallest eigenpairs of the normalized Laplacian
// L = I − M (eigenvectors are shared; eigenvalues map to 1−θ).
func SmallestLaplacian(op Operator, opts Options) (*Result, error) {
	r, err := Largest(op, opts)
	if err != nil {
		return nil, err
	}
	for i, v := range r.Values {
		r.Values[i] = 1 - v
	}
	return r, nil
}

func randomUnit(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	scale(v, 1/norm(v))
	return v
}

func orthogonalize(v []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			axpy(v, b, -dot(v, b))
		}
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y, x []float64, alpha float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

func norm(v []float64) float64 { return math.Sqrt(dot(v, v)) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
