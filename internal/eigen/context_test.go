package eigen

import (
	"context"
	"errors"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/sparse"
)

func TestLargestContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	op := CSROp{M: sparse.Identity(200, false)}
	if _, err := LargestContext(ctx, op, Options{K: 4, Seed: 1, DenseFallbackDim: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Dense-fallback path honors cancellation too.
	if _, err := LargestContext(ctx, CSROp{M: sparse.Identity(20, false)}, Options{K: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dense path err = %v, want context.Canceled", err)
	}
}

func TestLargestContextMatchesLargest(t *testing.T) {
	a := ringGraph(200)
	op := NewNormalizedSimilarity(sparse.Similarity(a))
	plain, err := Largest(op, Options{K: 3, Seed: 7, DenseFallbackDim: 1})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := LargestContext(context.Background(), op, Options{K: 3, Seed: 7, DenseFallbackDim: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Values {
		if plain.Values[i] != withCtx.Values[i] {
			t.Fatalf("value %d differs: %v vs %v", i, plain.Values[i], withCtx.Values[i])
		}
		for j := range plain.Vectors[i] {
			if plain.Vectors[i][j] != withCtx.Vectors[i][j] {
				t.Fatalf("vector %d[%d] differs", i, j)
			}
		}
	}
}

func TestOperatorApplyDimMismatchErrors(t *testing.T) {
	// Malformed inputs must produce errors, never panics (they used to
	// panic and could kill a serving process).
	a := ringGraph(32)
	ops := []Operator{
		CSROp{M: a},
		NewNormalizedSimilarity(sparse.Similarity(a)),
		NewImplicitSimilarity(a),
	}
	for _, op := range ops {
		short := make([]float64, op.Dim()-1)
		full := make([]float64, op.Dim())
		if err := op.Apply(short, full); err == nil {
			t.Errorf("%T accepted short x", op)
		}
		if err := op.Apply(full, short); err == nil {
			t.Errorf("%T accepted short y", op)
		}
		if err := op.Apply(full, make([]float64, op.Dim())); err != nil {
			t.Errorf("%T rejected valid input: %v", op, err)
		}
	}
}

func TestInjectedNoConverge(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.EigenNoConverge)
	op := CSROp{M: sparse.Identity(50, false)}
	if _, err := Largest(op, Options{K: 2}); !errors.Is(err, ErrNoConverge) {
		t.Fatalf("err = %v, want ErrNoConverge", err)
	}
	// Single-shot fault: the retry succeeds.
	if _, err := Largest(op, Options{K: 2}); err != nil {
		t.Fatalf("retry after injected fault failed: %v", err)
	}
}
