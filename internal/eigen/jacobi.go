package eigen

import (
	"errors"
	"math"
	"sort"
)

// JacobiEigen computes all eigenvalues and eigenvectors of a dense symmetric
// n×n matrix a (row-major, length n*n) with the cyclic Jacobi rotation
// method. It is O(n³) per sweep and intended as the reference solver for
// tests and for tiny projected problems. a is not modified. Eigenvalues are
// ascending; eigenvector i is the i-th column of v (row-major).
func JacobiEigen(a []float64, n int) (eig []float64, v []float64, err error) {
	if len(a) != n*n {
		return nil, nil, errors.New("eigen: dense matrix size mismatch")
	}
	m := append([]float64(nil), a...)
	v = make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i*n+j] * m[i*n+j]
			}
		}
		if off < 1e-24 {
			eig = make([]float64, n)
			for i := 0; i < n; i++ {
				eig[i] = m[i*n+i]
			}
			// Sort ascending with eigenvectors.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(x, y int) bool { return eig[idx[x]] < eig[idx[y]] })
			se := make([]float64, n)
			sv := make([]float64, n*n)
			for newCol, oldCol := range idx {
				se[newCol] = eig[oldCol]
				for row := 0; row < n; row++ {
					sv[row*n+newCol] = v[row*n+oldCol]
				}
			}
			return se, sv, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m[p*n+p], m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation G(p,q,θ) on both sides: m = Gᵀ m G.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k*n+p], m[k*n+q]
					m[k*n+p] = c*mkp - s*mkq
					m[k*n+q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p*n+k], m[q*n+k]
					m[p*n+k] = c*mpk - s*mqk
					m[q*n+k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	return nil, nil, ErrNoConverge
}
