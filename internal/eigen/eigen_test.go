package eigen

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bootes/internal/sparse"
)

func TestSymTridEigenKnown(t *testing.T) {
	// The n×n tridiagonal with diagonal 2 and off-diagonal -1 has
	// eigenvalues 2 - 2cos(kπ/(n+1)).
	n := 8
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	eig, z, err := SymTridEigen(d, e, true)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(eig[k-1]-want) > 1e-10 {
			t.Errorf("eig[%d] = %v, want %v", k-1, eig[k-1], want)
		}
	}
	// Check the eigen decomposition: T·z_i = λ_i·z_i.
	for i := 0; i < n; i++ {
		for row := 0; row < n; row++ {
			tv := d[row] * z[row*n+i]
			if row > 0 {
				tv += e[row-1] * z[(row-1)*n+i]
			}
			if row < n-1 {
				tv += e[row] * z[(row+1)*n+i]
			}
			if math.Abs(tv-eig[i]*z[row*n+i]) > 1e-9 {
				t.Fatalf("T·z ≠ λ·z at eigenpair %d row %d", i, row)
			}
		}
	}
}

func TestSymTridEigenAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 20
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	eig, _, err := SymTridEigen(d, e, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if eig[i] < eig[i-1] {
			t.Fatalf("eigenvalues not ascending at %d", i)
		}
	}
	// Trace is preserved.
	var trace, sum float64
	for i := range d {
		trace += d[i]
	}
	for _, v := range eig {
		sum += v
	}
	if math.Abs(trace-sum) > 1e-8 {
		t.Errorf("trace %v != eigenvalue sum %v", trace, sum)
	}
}

func TestSymTridEigenEdge(t *testing.T) {
	eig, _, err := SymTridEigen([]float64{3}, nil, false)
	if err != nil || len(eig) != 1 || eig[0] != 3 {
		t.Errorf("1x1 case: eig=%v err=%v", eig, err)
	}
	if _, _, err := SymTridEigen([]float64{1, 2}, []float64{1, 2, 3}, false); err == nil {
		t.Error("bad off-diagonal length accepted")
	}
	eig, _, err = SymTridEigen(nil, nil, false)
	if err != nil || eig != nil {
		t.Errorf("empty case: %v %v", eig, err)
	}
}

func TestJacobiEigenRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 12
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	eig, v, err := JacobiEigen(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// A·v_i = λ_i·v_i
	for i := 0; i < n; i++ {
		for row := 0; row < n; row++ {
			av := 0.0
			for col := 0; col < n; col++ {
				av += a[row*n+col] * v[col*n+i]
			}
			if math.Abs(av-eig[i]*v[row*n+i]) > 1e-8 {
				t.Fatalf("A·v ≠ λ·v at pair %d", i)
			}
		}
	}
	// Eigenvectors orthonormal.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := 0.0
			for row := 0; row < n; row++ {
				d += v[row*n+i] * v[row*n+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-8 {
				t.Fatalf("eigenvectors not orthonormal (%d,%d)=%v", i, j, d)
			}
		}
	}
}

func TestJacobiEigenBadInput(t *testing.T) {
	if _, _, err := JacobiEigen(make([]float64, 5), 2); err == nil {
		t.Error("size mismatch accepted")
	}
}

// ringGraph returns the pattern adjacency+self-loop matrix of a cycle.
func ringGraph(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, true)
	for i := 0; i < n; i++ {
		coo.AddPattern(i, i)
		coo.AddPattern(i, (i+1)%n)
		coo.AddPattern(i, (i+n-1)%n)
	}
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func TestLanczosMatchesJacobi(t *testing.T) {
	// Random sparse symmetric matrix; compare top eigenvalues of Lanczos
	// (forced, via low DenseFallbackDim) against the dense reference.
	rng := rand.New(rand.NewSource(6))
	n := 150
	coo := sparse.NewCOO(n, n, false)
	for i := 0; i < n; i++ {
		coo.Add(i, i, rng.NormFloat64()*2)
		for d := 0; d < 4; d++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			coo.Add(i, j, v)
			coo.Add(j, i, v)
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	op := CSROp{M: m}

	dense, err := denseLargest(context.Background(), op, 5)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := Largest(op, Options{K: 5, Seed: 1, DenseFallbackDim: 1, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !lz.Converged {
		t.Error("Lanczos did not converge")
	}
	for i := 0; i < 5; i++ {
		if math.Abs(dense.Values[i]-lz.Values[i]) > 1e-7 {
			t.Errorf("eig %d: lanczos %v, dense %v", i, lz.Values[i], dense.Values[i])
		}
	}
	// Residual check ‖Av − λv‖.
	y := make([]float64, n)
	for i, vec := range lz.Vectors {
		if err := op.Apply(vec, y); err != nil {
			t.Fatal(err)
		}
		r := 0.0
		for j := range y {
			d := y[j] - lz.Values[i]*vec[j]
			r += d * d
		}
		if math.Sqrt(r) > 1e-6 {
			t.Errorf("eigenpair %d residual %g too large", i, math.Sqrt(r))
		}
	}
}

func TestLanczosNormalizedSimilarityTopEigenvalue(t *testing.T) {
	// For a connected graph, M = D^{-1/2} S D^{-1/2} has top eigenvalue 1
	// (Laplacian eigenvalue 0).
	a := ringGraph(200)
	s := sparse.Similarity(a)
	op := NewNormalizedSimilarity(s)
	res, err := Largest(op, Options{K: 2, Seed: 3, DenseFallbackDim: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-1) > 1e-8 {
		t.Errorf("top eigenvalue = %v, want 1", res.Values[0])
	}
	if res.Values[1] >= res.Values[0]+1e-12 {
		t.Error("eigenvalues not descending")
	}
}

func TestLanczosDisconnectedComponents(t *testing.T) {
	// Two disjoint rings: eigenvalue 1 has multiplicity 2 in M; Lanczos
	// must find both (breakdown/restart path).
	n := 60
	coo := sparse.NewCOO(2*n, 2*n, true)
	addRing := func(offset int) {
		for i := 0; i < n; i++ {
			coo.AddPattern(offset+i, offset+i)
			coo.AddPattern(offset+i, offset+(i+1)%n)
			coo.AddPattern(offset+i, offset+(i+n-1)%n)
		}
	}
	addRing(0)
	addRing(n)
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	s := sparse.Similarity(a)
	op := NewNormalizedSimilarity(s)
	res, err := Largest(op, Options{K: 2, Seed: 5, DenseFallbackDim: 1, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(res.Values[i]-1) > 1e-6 {
			t.Errorf("eigenvalue %d = %v, want 1 (multiplicity 2)", i, res.Values[i])
		}
	}
}

func TestImplicitMatchesExplicitSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	coo := sparse.NewCOO(80, 60, true)
	for i := 0; i < 80; i++ {
		for d := 0; d < 5; d++ {
			coo.AddPattern(i, rng.Intn(60))
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	explicit := NewNormalizedSimilarity(sparse.Similarity(a))
	implicit := NewImplicitSimilarity(a)
	if explicit.Dim() != implicit.Dim() {
		t.Fatal("dim mismatch")
	}
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, a.Rows)
	y2 := make([]float64, a.Rows)
	if err := explicit.Apply(x, y1); err != nil {
		t.Fatal(err)
	}
	if err := implicit.Apply(x, y2); err != nil {
		t.Fatal(err)
	}
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-10 {
			t.Fatalf("implicit/explicit mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestLargestErrors(t *testing.T) {
	op := CSROp{M: sparse.Identity(10, false)}
	if _, err := Largest(op, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Largest(op, Options{K: 11}); err == nil {
		t.Error("K>n accepted")
	}
}

func TestDenseFallbackIdentity(t *testing.T) {
	op := CSROp{M: sparse.Identity(10, true)}
	res, err := Largest(op, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("identity eigenvalue %d = %v", i, v)
		}
	}
}

func TestLocalReorthOnSeparatedSpectrum(t *testing.T) {
	// With a well-separated spectrum and a short run, the three-term
	// recurrence matches full reorthogonalization closely.
	rng := rand.New(rand.NewSource(31))
	n := 300
	coo := sparse.NewCOO(n, n, false)
	for i := 0; i < n; i++ {
		coo.Add(i, i, float64(i)) // strongly separated diagonal
		if i+1 < n {
			v := rng.NormFloat64() * 0.01
			coo.Add(i, i+1, v)
			coo.Add(i+1, i, v)
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	op := CSROp{M: m}
	full, err := Largest(op, Options{K: 3, Seed: 1, DenseFallbackDim: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Largest(op, Options{K: 3, Seed: 1, DenseFallbackDim: 1, LocalReorth: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(full.Values[i]-local.Values[i]) > 1e-6*full.Values[0] {
			t.Errorf("eig %d: local %v vs full %v", i, local.Values[i], full.Values[i])
		}
	}
}

func TestNormalizedSpectrumBoundedProperty(t *testing.T) {
	// Eigenvalues of M = D^{-1/2} S D^{-1/2} lie in [-1, 1] for any
	// similarity matrix S = Ā·Āᵀ (it is similar to a stochastic-like
	// operator); verify on random patterns.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		coo := sparse.NewCOO(n, n, true)
		for i := 0; i < n; i++ {
			for d := 0; d < 1+rng.Intn(5); d++ {
				coo.AddPattern(i, rng.Intn(n))
			}
		}
		a, err := coo.ToCSR()
		if err != nil {
			return false
		}
		op := NewNormalizedSimilarity(sparse.Similarity(a))
		res, err := Largest(op, Options{K: 3, Seed: seed})
		if err != nil {
			return false
		}
		for _, v := range res.Values {
			if v > 1+1e-8 || v < -1-1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
