package eigen

import (
	"errors"
	"math"
	"sort"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// ErrNoConverge is returned when an iterative eigensolver exceeds its
// iteration budget.
var ErrNoConverge = errors.New("eigen: eigensolver failed to converge")

// SymTridEigen computes all eigenvalues and (optionally) eigenvectors of the
// symmetric tridiagonal matrix with diagonal d (length n) and off-diagonal e
// (length n-1, e[i] couples i and i+1), using the implicit QL algorithm with
// Wilkinson shifts (EISPACK tql2). Eigenvalues are returned in ascending
// order. When vectors is true, the i-th column of the returned z holds the
// eigenvector for eigenvalue i, with z stored row-major as z[row*n+col].
func SymTridEigen(d, e []float64, vectors bool) (eig []float64, z []float64, err error) {
	n := len(d)
	if n == 0 {
		return nil, nil, nil
	}
	if len(e) != n-1 && !(n == 1 && len(e) == 0) {
		return nil, nil, errors.New("eigen: off-diagonal length must be n-1")
	}
	eig = append([]float64(nil), d...)
	work := make([]float64, n)
	copy(work, e)
	if vectors {
		z = make([]float64, n*n)
		for i := 0; i < n; i++ {
			z[i*n+i] = 1
		}
	}

	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small off-diagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(eig[m]) + math.Abs(eig[m+1])
				if math.Abs(work[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == maxIter {
				return nil, nil, ErrNoConverge
			}
			// Wilkinson shift.
			g := (eig[l+1] - eig[l]) / (2 * work[l])
			r := math.Hypot(g, 1)
			g = eig[m] - eig[l] + work[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * work[i]
				b := c * work[i]
				r = math.Hypot(f, g)
				work[i+1] = r
				if r == 0 {
					eig[i+1] -= p
					work[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = eig[i+1] - p
				r = (eig[i]-g)*s + 2*c*b
				p = s * r
				eig[i+1] = g + p
				g = c*r - b
				if vectors {
					for k := 0; k < n; k++ {
						f := z[k*n+i+1]
						z[k*n+i+1] = s*z[k*n+i] + c*f
						z[k*n+i] = c*z[k*n+i] - s*f
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			eig[l] -= p
			work[l] = g
			work[m] = 0
		}
	}

	// Sort ascending, permuting eigenvectors alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return eig[idx[a]] < eig[idx[b]] })
	sortedEig := make([]float64, n)
	var sortedZ []float64
	if vectors {
		sortedZ = make([]float64, n*n)
	}
	for newCol, oldCol := range idx {
		sortedEig[newCol] = eig[oldCol]
		if vectors {
			for row := 0; row < n; row++ {
				sortedZ[row*n+newCol] = z[row*n+oldCol]
			}
		}
	}
	return sortedEig, sortedZ, nil
}

const machEps = 2.220446049250313e-16
