package sparse

import "fmt"

// ExtractRows returns the submatrix consisting of the given rows of m (in
// the given order, duplicates allowed), keeping the full column space.
func ExtractRows(m *CSR, rows []int32) (*CSR, error) {
	out := &CSR{Rows: len(rows), Cols: m.Cols}
	out.RowPtr = make([]int64, len(rows)+1)
	var total int64
	for _, r := range rows {
		if r < 0 || int(r) >= m.Rows {
			return nil, fmt.Errorf("%w: row %d of %d", ErrColIndex, r, m.Rows)
		}
		total += int64(m.RowNNZ(int(r)))
	}
	out.Col = make([]int32, 0, total)
	if m.Val != nil {
		out.Val = make([]float64, 0, total)
	}
	for i, r := range rows {
		out.Col = append(out.Col, m.Row(int(r))...)
		if m.Val != nil {
			out.Val = append(out.Val, m.RowVals(int(r))...)
		}
		out.RowPtr[i+1] = int64(len(out.Col))
	}
	return out, nil
}

// ExtractColumns returns the submatrix keeping only the listed columns,
// relabelled to 0..len(cols)-1 in the given order. Columns not listed are
// dropped. cols must not contain duplicates.
func ExtractColumns(m *CSR, cols []int32) (*CSR, error) {
	remap := make([]int32, m.Cols)
	for i := range remap {
		remap[i] = -1
	}
	for newIdx, c := range cols {
		if c < 0 || int(c) >= m.Cols {
			return nil, fmt.Errorf("%w: column %d of %d", ErrColIndex, c, m.Cols)
		}
		if remap[c] != -1 {
			return nil, fmt.Errorf("%w: duplicate column %d", ErrDuplicate, c)
		}
		remap[c] = int32(newIdx)
	}
	coo := NewCOO(m.Rows, len(cols), m.Val == nil)
	for i := 0; i < m.Rows; i++ {
		vals := m.RowVals(i)
		for p, c := range m.Row(i) {
			if nc := remap[c]; nc >= 0 {
				v := 1.0
				if vals != nil {
					v = vals[p]
				}
				coo.Add(i, int(nc), v)
			}
		}
	}
	return coo.ToCSR()
}

// PermuteSymmetric returns P·m·Pᵀ for a square matrix: row i of the result
// is row perm[i] of m with every column index c relabelled to
// inverse(perm)[c]. This is the transformation that preserves A·Aᵀ-style
// self-products under reordering.
func PermuteSymmetric(m *CSR, perm Permutation) (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: symmetric permutation needs a square matrix, got %dx%d", ErrShape, m.Rows, m.Cols)
	}
	if err := perm.Validate(m.Rows); err != nil {
		return nil, err
	}
	inv := perm.Inverse()
	coo := NewCOO(m.Rows, m.Cols, m.Val == nil)
	for newRow := 0; newRow < m.Rows; newRow++ {
		oldRow := int(perm[newRow])
		vals := m.RowVals(oldRow)
		for p, c := range m.Row(oldRow) {
			v := 1.0
			if vals != nil {
				v = vals[p]
			}
			coo.Add(newRow, int(inv[c]), v)
		}
	}
	return coo.ToCSR()
}
