package sparse

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCSR(t *testing.T, rows, cols int, rowPtr []int64, col []int32, val []float64) *CSR {
	t.Helper()
	m, err := NewCSR(rows, cols, rowPtr, col, val)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return m
}

// randomCSR builds a valid random pattern matrix for property tests.
func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	coo := NewCOO(rows, cols, true)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.AddPattern(i, j)
			}
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewCSRValid(t *testing.T) {
	m := mustCSR(t, 3, 4, []int64{0, 2, 2, 3}, []int32{0, 3, 1}, nil)
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 0 || m.RowNNZ(2) != 1 {
		t.Errorf("RowNNZ wrong: %d %d %d", m.RowNNZ(0), m.RowNNZ(1), m.RowNNZ(2))
	}
	if !m.IsPattern() {
		t.Error("expected pattern matrix")
	}
}

func TestNewCSRErrors(t *testing.T) {
	cases := []struct {
		name    string
		rows    int
		cols    int
		rowPtr  []int64
		col     []int32
		val     []float64
		wantErr error
	}{
		{"badRowPtrLen", 2, 2, []int64{0, 1}, []int32{0}, nil, ErrRowPtr},
		{"rowPtrNotZero", 2, 2, []int64{1, 1, 1}, []int32{0}, nil, ErrRowPtr},
		{"colTooBig", 1, 2, []int64{0, 1}, []int32{2}, nil, ErrColIndex},
		{"colNegative", 1, 2, []int64{0, 1}, []int32{-1}, nil, ErrColIndex},
		{"unsorted", 1, 3, []int64{0, 2}, []int32{2, 0}, nil, ErrUnsorted},
		{"duplicate", 1, 3, []int64{0, 2}, []int32{1, 1}, nil, ErrDuplicate},
		{"valLen", 1, 3, []int64{0, 1}, []int32{1}, []float64{1, 2}, ErrValLength},
		{"negativeExtent", 2, 2, []int64{0, 1, 0}, []int32{0}, nil, ErrRowPtr},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCSR(tc.rows, tc.cols, tc.rowPtr, tc.col, tc.val)
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestAtHas(t *testing.T) {
	m := mustCSR(t, 2, 3, []int64{0, 2, 3}, []int32{0, 2, 1}, []float64{5, 7, -2})
	if got := m.At(0, 0); got != 5 {
		t.Errorf("At(0,0) = %v, want 5", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %v, want 0", got)
	}
	if got := m.At(1, 1); got != -2 {
		t.Errorf("At(1,1) = %v, want -2", got)
	}
	if !m.Has(0, 2) || m.Has(1, 2) {
		t.Error("Has results wrong")
	}
	p := m.Pattern()
	if got := p.At(0, 0); got != 1 {
		t.Errorf("pattern At(0,0) = %v, want 1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := mustCSR(t, 2, 2, []int64{0, 1, 2}, []int32{0, 1}, []float64{1, 2})
	c := m.Clone()
	c.Val[0] = 99
	c.Col[1] = 0
	if m.Val[0] != 1 || m.Col[1] != 1 {
		t.Error("Clone shares storage with original")
	}
	if !Equal(m, m.Clone()) {
		t.Error("clone should equal original")
	}
}

func TestIdentityAndZero(t *testing.T) {
	id := Identity(4, true)
	if id.NNZ() != 4 || id.At(2, 2) != 1 || id.At(0, 1) != 0 {
		t.Error("Identity wrong")
	}
	z := Zero(3, 5)
	if z.NNZ() != 0 || z.Rows != 3 || z.Cols != 5 {
		t.Error("Zero wrong")
	}
	if err := z.Validate(); err != nil {
		t.Errorf("Zero invalid: %v", err)
	}
}

func TestDensity(t *testing.T) {
	m := mustCSR(t, 2, 2, []int64{0, 1, 2}, []int32{0, 1}, nil)
	if got := m.Density(); got != 0.5 {
		t.Errorf("Density = %v, want 0.5", got)
	}
	if Zero(0, 0).Density() != 0 {
		t.Error("empty density should be 0")
	}
}

func TestEqualAndPatternEqual(t *testing.T) {
	a := mustCSR(t, 2, 2, []int64{0, 1, 2}, []int32{0, 1}, []float64{1, 2})
	b := mustCSR(t, 2, 2, []int64{0, 1, 2}, []int32{0, 1}, []float64{1, 3})
	if Equal(a, b) {
		t.Error("different values should not be Equal")
	}
	if !PatternEqual(a, b) {
		t.Error("same pattern should be PatternEqual")
	}
	c := mustCSR(t, 2, 2, []int64{0, 1, 2}, []int32{1, 1}, nil)
	if PatternEqual(a, c) {
		t.Error("different pattern should not be PatternEqual")
	}
}

func TestValidateRandomizedProperty(t *testing.T) {
	// Every matrix produced by the COO builder must validate.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3)
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestModeledBytes(t *testing.T) {
	m := mustCSR(t, 2, 2, []int64{0, 1, 2}, []int32{0, 1}, []float64{1, 2})
	want := int64(3*8 + 2*4 + 2*8)
	if got := m.ModeledBytes(); got != want {
		t.Errorf("ModeledBytes = %d, want %d", got, want)
	}
}

func TestValidateRowPtrOutOfBounds(t *testing.T) {
	// Regression (found by fuzzing): an intermediate row pointer beyond nnz
	// must be rejected, not panic during the per-row scan.
	m := &CSR{Rows: 2, Cols: 4, RowPtr: []int64{0, 5, 4}, Col: []int32{0, 1, 2, 3}}
	if err := m.Validate(); err == nil {
		t.Error("out-of-bounds intermediate row pointer accepted")
	}
	neg := &CSR{Rows: 2, Cols: 4, RowPtr: []int64{0, -1, 4}, Col: []int32{0, 1, 2, 3}}
	if err := neg.Validate(); err == nil {
		t.Error("negative intermediate row pointer accepted")
	}
}
