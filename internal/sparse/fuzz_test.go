package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers. Run as regular tests on the seed corpus
// by `go test`; `go test -fuzz FuzzReadMatrixMarket ./internal/sparse` digs
// deeper.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1.0\n2 1 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999999\n1 1 1\n")
	// Hostile headers: astronomically large dims/nnz, overflowing indices,
	// and values at the edges of float parsing. Parsers must reject or
	// bound-allocate; they must never panic or balloon memory.
	f.Add("%%MatrixMarket matrix coordinate real general\n99999999999999999999 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9223372036854775807\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9223372036854775807 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer symmetric\n3 3 1\n3 1 1e309\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2147483647 2147483647 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return // rejecting bad input is fine; crashing is not
		}
		// Anything accepted must be a valid matrix that round-trips.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("cannot re-serialize accepted matrix: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("cannot re-parse own output: %v", err)
		}
		if !Equal(m, back) {
			t.Fatal("round trip changed the matrix")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a few valid encodings and mutations.
	for _, m := range []*CSR{
		Zero(2, 3),
		Identity(4, true),
		Identity(4, false),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("BCSR"))
	f.Add([]byte{})
	// Hostile header: valid magic/version with a huge claimed nnz and no
	// payload — must fail after at most one bounded chunk, not OOM.
	hostile := append([]byte("BCSR"), []byte{
		1, 0, 0, 0, // version 1
		0, 0, 1, 0, 0, 0, 0, 0, // rows = 65536
		0, 0, 1, 0, 0, 0, 0, 0, // cols = 65536
		0, 0, 0, 8, 0, 0, 0, 0, // nnz = 2^27 (at the cap)
		1, // hasVal
	}...)
	f.Add(hostile)
	// Truncated-at-limit bodies: a valid encoding cut off exactly where an
	// upload guard (http.MaxBytesReader) would stop reading — once inside the
	// row-pointer block, once inside the value block. The parser sees a clean
	// prefix with no corruption marker and must fail on the missing bytes,
	// never hang or accept a partial matrix.
	var whole bytes.Buffer
	if err := WriteBinary(&whole, Identity(64, true)); err != nil {
		f.Fatal(err)
	}
	f.Add(whole.Bytes()[:512])
	f.Add(whole.Bytes()[:whole.Len()-64])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			t.Fatalf("cannot re-serialize: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil || !Equal(m, back) {
			t.Fatal("round trip failed")
		}
	})
}

// FuzzNewCSR drives the constructor with arbitrary row pointers and column
// indices decoded from raw bytes: whatever it accepts must satisfy every CSR
// invariant, and it must reject (not panic on) everything else.
func FuzzNewCSR(f *testing.F) {
	f.Add(2, 2, []byte{0, 1, 2}, []byte{0, 1})
	f.Add(1, 1, []byte{0, 255}, []byte{0})
	f.Add(-1, 3, []byte{}, []byte{})
	f.Add(3, -7, []byte{0, 0, 0, 0}, []byte{})
	f.Fuzz(func(t *testing.T, rows, cols int, rowPtrB, colB []byte) {
		rowPtr := make([]int64, len(rowPtrB))
		for i, b := range rowPtrB {
			// Spread the byte range across negatives, plausible offsets, and
			// huge values so overflow and extent checks all get exercised.
			rowPtr[i] = int64(b) - 8
			if b > 250 {
				rowPtr[i] = int64(b) << 55
			}
		}
		col := make([]int32, len(colB))
		for i, b := range colB {
			col[i] = int32(b) - 4
		}
		m, err := NewCSR(rows, cols, rowPtr, col, nil)
		if err != nil {
			return // rejecting bad input is fine; crashing is not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("NewCSR accepted an invalid matrix: %v", err)
		}
		if m.NNZ() != int64(len(col)) {
			t.Fatalf("accepted matrix has inconsistent nnz")
		}
		// Accepted matrices must survive the basic accessors.
		for i := 0; i < m.Rows; i++ {
			_ = m.Row(i)
			_ = m.RowNNZ(i)
		}
		_ = m.ModeledBytes()
	})
}
