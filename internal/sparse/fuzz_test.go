package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers. Run as regular tests on the seed corpus
// by `go test`; `go test -fuzz FuzzReadMatrixMarket ./internal/sparse` digs
// deeper.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1.0\n2 1 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999999\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return // rejecting bad input is fine; crashing is not
		}
		// Anything accepted must be a valid matrix that round-trips.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("cannot re-serialize accepted matrix: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("cannot re-parse own output: %v", err)
		}
		if !Equal(m, back) {
			t.Fatal("round trip changed the matrix")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a few valid encodings and mutations.
	for _, m := range []*CSR{
		Zero(2, 3),
		Identity(4, true),
		Identity(4, false),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("BCSR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			t.Fatalf("cannot re-serialize: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil || !Equal(m, back) {
			t.Fatal("round trip failed")
		}
	})
}
