package sparse

import "math"

// Transpose returns mᵀ in CSR form. The result has sorted, unique column
// indices by construction. Runs in O(rows + cols + nnz).
func Transpose(m *CSR) *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows}
	t.RowPtr = make([]int64, m.Cols+1)
	nnz := m.NNZ()
	t.Col = make([]int32, nnz)
	if m.Val != nil {
		t.Val = make([]float64, nnz)
	}
	// Count entries per column of m (= per row of t).
	for _, c := range m.Col {
		t.RowPtr[c+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	// Scatter. next[j] is the write cursor for row j of t.
	next := make([]int64, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			j := m.Col[p]
			q := next[j]
			t.Col[q] = int32(i)
			if m.Val != nil {
				t.Val[q] = m.Val[p]
			}
			next[j] = q + 1
		}
	}
	return t
}

// ColCounts returns the number of stored entries in each column of m.
func ColCounts(m *CSR) []int {
	counts := make([]int, m.Cols)
	for _, c := range m.Col {
		counts[c]++
	}
	return counts
}

// RowCounts returns the number of stored entries in each row of m.
func RowCounts(m *CSR) []int {
	counts := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		counts[i] = m.RowNNZ(i)
	}
	return counts
}

func sqrtFloat(x float64) float64 { return math.Sqrt(x) }
