package sparse

import "fmt"

// Permutation is a row permutation: perm[newRow] = oldRow, i.e. the i-th row
// of the permuted matrix is row perm[i] of the original. This matches the
// "array of the final row permutation P" in the paper's algorithms.
type Permutation []int32

// IdentityPerm returns the identity permutation of length n.
func IdentityPerm(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// Validate checks that p is a bijection on [0, n).
func (p Permutation) Validate(n int) error {
	if len(p) != n {
		return fmt.Errorf("%w: len=%d want %d", ErrPermLength, len(p), n)
	}
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("%w: p[%d]=%d", ErrPermValue, i, v)
		}
		if seen[v] {
			return fmt.Errorf("%w: value %d repeated", ErrPermValue, v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns q with q[oldRow] = newRow.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for newRow, oldRow := range p {
		q[oldRow] = int32(newRow)
	}
	return q
}

// IsIdentity reports whether p maps every index to itself.
func (p Permutation) IsIdentity() bool {
	for i, v := range p {
		if int(v) != i {
			return false
		}
	}
	return true
}

// PermuteRows returns the matrix whose i-th row is row perm[i] of m.
// Column order within rows is preserved, so the result is valid CSR.
func PermuteRows(m *CSR, perm Permutation) (*CSR, error) {
	if err := perm.Validate(m.Rows); err != nil {
		return nil, err
	}
	out := &CSR{Rows: m.Rows, Cols: m.Cols}
	out.RowPtr = make([]int64, m.Rows+1)
	out.Col = make([]int32, m.NNZ())
	if m.Val != nil {
		out.Val = make([]float64, m.NNZ())
	}
	var cursor int64
	for newRow, oldRow := range perm {
		lo, hi := m.RowPtr[oldRow], m.RowPtr[oldRow+1]
		n := hi - lo
		copy(out.Col[cursor:cursor+n], m.Col[lo:hi])
		if m.Val != nil {
			copy(out.Val[cursor:cursor+n], m.Val[lo:hi])
		}
		cursor += n
		out.RowPtr[newRow+1] = cursor
	}
	return out, nil
}

// UnpermuteRows restores the original row order of a matrix produced by
// PermuteRows(m, perm). This is the paper's post-processing step that
// restores matrix rows (and hence output rows of C) to their original order.
func UnpermuteRows(m *CSR, perm Permutation) (*CSR, error) {
	return PermuteRows(m, perm.Inverse())
}

// Compose returns the permutation equivalent to applying first then second:
// result[i] = first[second[i]].
func Compose(first, second Permutation) (Permutation, error) {
	if len(first) != len(second) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrPermLength, len(first), len(second))
	}
	out := make(Permutation, len(first))
	for i, v := range second {
		if v < 0 || int(v) >= len(first) {
			return nil, fmt.Errorf("%w: second[%d]=%d", ErrPermValue, i, v)
		}
		out[i] = first[v]
	}
	return out, nil
}
