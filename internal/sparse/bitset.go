package sparse

import (
	"context"
	"math/bits"
	"slices"

	"bootes/internal/parallel"
)

// BitRows stores the column supports of a CSR pattern as compressed bitsets:
// for each row only the 64-bit words that contain at least one set bit are
// kept, each tagged with its word index, in CSR-of-words layout. Two row
// supports intersect by merging their word lists and popcounting the AND of
// colliding words — 64 columns per instruction instead of one per merge step,
// which is the SpArch-style condensing that makes the exact similarity path
// competitive on correlated supports.
type BitRows struct {
	Rows int
	// Words is the number of 64-bit words spanning the column range,
	// ceil(cols/64); word indices are in [0, Words).
	Words   int
	Ptr     []int64
	WordIdx []int32
	Bits    []uint64
}

// PackBitRows packs the pattern of m into compressed bitset rows. Both passes
// are row-parallel over fixed-grain chunks with disjoint writes, so the
// result is bit-identical for any worker count.
func PackBitRows(m *CSR) *BitRows {
	br := &BitRows{Rows: m.Rows, Words: (m.Cols + 63) / 64}
	br.Ptr = make([]int64, m.Rows+1)
	cnt := make([]int32, m.Rows)
	parallel.For(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := int32(0)
			prev := int32(-1)
			for _, c := range m.Row(i) {
				if w := c >> 6; w != prev {
					n++
					prev = w
				}
			}
			cnt[i] = n
		}
	})
	for i := 0; i < m.Rows; i++ {
		br.Ptr[i+1] = br.Ptr[i] + int64(cnt[i])
	}
	br.WordIdx = make([]int32, br.Ptr[m.Rows])
	br.Bits = make([]uint64, br.Ptr[m.Rows])
	parallel.For(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := br.Ptr[i]
			prev := int32(-1)
			for _, c := range m.Row(i) {
				if w := c >> 6; w != prev {
					br.WordIdx[p] = w
					p++
					prev = w
				}
				br.Bits[p-1] |= 1 << (uint(c) & 63)
			}
		}
	})
	return br
}

// RowWords returns the number of stored (nonzero) words of row i.
func (br *BitRows) RowWords(i int) int { return int(br.Ptr[i+1] - br.Ptr[i]) }

// IntersectCount returns |support(row i) ∩ support(row j)| by merging the two
// word lists and popcounting the AND of each colliding word pair.
func (br *BitRows) IntersectCount(i, j int) int {
	wi := br.WordIdx[br.Ptr[i]:br.Ptr[i+1]]
	bi := br.Bits[br.Ptr[i]:br.Ptr[i+1]]
	wj := br.WordIdx[br.Ptr[j]:br.Ptr[j+1]]
	bj := br.Bits[br.Ptr[j]:br.Ptr[j+1]]
	n, p, q := 0, 0, 0
	for p < len(wi) && q < len(wj) {
		switch {
		case wi[p] < wj[q]:
			p++
		case wi[p] > wj[q]:
			q++
		default:
			n += bits.OnesCount64(bi[p] & bj[q])
			p++
			q++
		}
	}
	return n
}

// ModeledBytes returns the deterministic in-memory size of the packed rows.
func (br *BitRows) ModeledBytes() int64 {
	return int64(len(br.Ptr))*8 + int64(len(br.WordIdx))*4 + int64(len(br.Bits))*8
}

// SimilarityBitsetContext computes the same S = Ā·Āᵀ as SimilarityContext —
// bit-identical pattern and counts — but replaces the merge-based counting of
// the second pass with bitset intersections: row supports are packed into
// compressed 64-bit words once, row i's words are scattered into a dense word
// accumulator, and each candidate row j is counted with word-AND + popcount
// over only its nonzero words. Pass structure (count, prefix-sum, fill) and
// chunking match spgemmCount, so cancellation and determinism behave
// identically.
func SimilarityBitsetContext(ctx context.Context, a *CSR, maxColDegree int, colCounts []int) (*CSR, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ap := a.Pattern()
	if maxColDegree > 0 {
		if colCounts == nil {
			colCounts = ColCounts(ap)
		}
		ap = DropHubColumnsWithCounts(ap, maxColDegree, colCounts)
	}
	at := Transpose(ap)
	return spgemmCountBitset(ctx, ap, at)
}

// spgemmCountBitset is spgemmCount specialized to the symmetric similarity
// product S = A·Aᵀ (at must be Transpose(a)). Instead of the element-wise
// mark walk, each output row's candidate set is the bitwise OR of the
// word-compressed column supports (the packed rows of Āᵀ) of the row's
// columns — one word-OR covers up to 64 candidates, which is the condensing
// win. Pass one popcounts the union words to size the output; pass two
// extracts candidates from the union words in ascending order (no sort of
// individual indices needed beyond the touched-word list) and computes each
// count by word-AND + popcount of the two packed column supports. Candidate
// sets and counts are definitionally equal to the merge path's, so the
// output is bit-identical for any worker count.
func spgemmCountBitset(ctx context.Context, a, at *CSR) (*CSR, error) {
	if a.Cols != at.Rows {
		return nil, ErrDimension
	}
	c := &CSR{Rows: a.Rows, Cols: at.Cols}
	c.RowPtr = make([]int64, a.Rows+1)
	c.Val = []float64{} // counts are values, even when empty

	brCols := PackBitRows(a)  // row supports over column space: pair counts
	brRows := PackBitRows(at) // column supports over row space: candidate unions

	// Pass 1: union the column supports of row i's columns word-by-word and
	// popcount. mark stamps word indices; wordAcc entries are reset lazily on
	// first touch, so no clearing pass is needed.
	rowNNZ := make([]int64, a.Rows)
	err := parallel.ForContext(ctx, a.Rows, rowGrain, func(lo, hi int) {
		s := getScratch(brRows.Words, 0, brRows.Words, 0)
		defer putScratch(s)
		for i := lo; i < hi; i++ {
			stamp := s.next
			s.next++
			s.touched = s.touched[:0]
			for _, k := range a.Row(i) {
				for q := brRows.Ptr[k]; q < brRows.Ptr[k+1]; q++ {
					w := brRows.WordIdx[q]
					if s.mark[w] != stamp {
						s.mark[w] = stamp
						s.wordAcc[w] = 0
						s.touched = append(s.touched, w)
					}
					s.wordAcc[w] |= brRows.Bits[q]
				}
			}
			n := int64(0)
			for _, w := range s.touched {
				n += int64(bits.OnesCount64(s.wordAcc[w]))
			}
			rowNNZ[i] = n
		}
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < a.Rows; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + rowNNZ[i]
	}
	c.Col = make([]int32, c.RowPtr[a.Rows])
	c.Val = make([]float64, c.RowPtr[a.Rows])

	// Pass 2: rebuild the union words, walk them in ascending word order to
	// emit candidates already sorted, and count each candidate j with
	// popcount(AND) over j's nonzero column words against the dense
	// accumulator holding row i's columns. colAcc is kept all-zero between
	// rows by re-walking row i's words.
	err = parallel.ForContext(ctx, a.Rows, rowGrain, func(lo, hi int) {
		s := getScratch(brRows.Words, 0, brRows.Words, brCols.Words)
		defer putScratch(s)
		for i := lo; i < hi; i++ {
			stamp := s.next
			s.next++
			s.touched = s.touched[:0]
			for _, k := range a.Row(i) {
				for q := brRows.Ptr[k]; q < brRows.Ptr[k+1]; q++ {
					w := brRows.WordIdx[q]
					if s.mark[w] != stamp {
						s.mark[w] = stamp
						s.wordAcc[w] = 0
						s.touched = append(s.touched, w)
					}
					s.wordAcc[w] |= brRows.Bits[q]
				}
			}
			slices.Sort(s.touched)
			cLo, cHi := brCols.Ptr[i], brCols.Ptr[i+1]
			for q := cLo; q < cHi; q++ {
				s.colAcc[brCols.WordIdx[q]] = brCols.Bits[q]
			}
			p := c.RowPtr[i]
			for _, w := range s.touched {
				m := s.wordAcc[w]
				base := int32(w) << 6
				for m != 0 {
					j := base + int32(bits.TrailingZeros64(m))
					m &= m - 1
					n := 0
					for q := brCols.Ptr[j]; q < brCols.Ptr[j+1]; q++ {
						n += bits.OnesCount64(s.colAcc[brCols.WordIdx[q]] & brCols.Bits[q])
					}
					c.Col[p] = j
					c.Val[p] = float64(n)
					p++
				}
			}
			for q := cLo; q < cHi; q++ {
				s.colAcc[brCols.WordIdx[q]] = 0
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}
