package sparse

import "fmt"

// CSC is a sparse matrix in Compressed Sparse Column format. Column j
// occupies RowIdx[ColPtr[j]:ColPtr[j+1]]. Some accelerator dataflows (the
// outer product reads A by column) and column-oriented analyses use it; it
// converts losslessly to and from CSR.
type CSC struct {
	Rows, Cols int
	ColPtr     []int64
	RowIdx     []int32
	// Val is parallel to RowIdx; nil denotes a pattern matrix.
	Val []float64
}

// ToCSC converts m to CSC form.
func ToCSC(m *CSR) *CSC {
	t := Transpose(m)
	// Transpose of CSR(m) laid out row-major over columns of m is exactly
	// the CSC arrays of m.
	return &CSC{
		Rows: m.Rows, Cols: m.Cols,
		ColPtr: t.RowPtr, RowIdx: t.Col, Val: t.Val,
	}
}

// ToCSR converts c back to CSR form.
func (c *CSC) ToCSR() *CSR {
	asRows := &CSR{Rows: c.Cols, Cols: c.Rows, RowPtr: c.ColPtr, Col: c.RowIdx, Val: c.Val}
	return Transpose(asRows)
}

// NNZ returns the stored entry count.
func (c *CSC) NNZ() int64 { return c.ColPtr[c.Cols] }

// Column returns the row indices of column j (a view).
func (c *CSC) Column(j int) []int32 { return c.RowIdx[c.ColPtr[j]:c.ColPtr[j+1]] }

// ColumnVals returns the values of column j, or nil for a pattern matrix.
func (c *CSC) ColumnVals(j int) []float64 {
	if c.Val == nil {
		return nil
	}
	return c.Val[c.ColPtr[j]:c.ColPtr[j+1]]
}

// ColNNZ returns the number of stored entries in column j.
func (c *CSC) ColNNZ(j int) int { return int(c.ColPtr[j+1] - c.ColPtr[j]) }

// Validate checks the CSC invariants.
func (c *CSC) Validate() error {
	asRows := &CSR{Rows: c.Cols, Cols: c.Rows, RowPtr: c.ColPtr, Col: c.RowIdx, Val: c.Val}
	if err := asRows.Validate(); err != nil {
		return fmt.Errorf("sparse: CSC invalid (checked as transposed CSR): %w", err)
	}
	return nil
}

// String summarizes the matrix.
func (c *CSC) String() string {
	return fmt.Sprintf("CSC{%dx%d, nnz=%d}", c.Rows, c.Cols, c.NNZ())
}

// SpMM computes the dense product Y = A·X where X is a row-major
// A.Cols×p matrix and Y is a row-major A.Rows×p matrix. Pattern matrices
// use implicit ones. This is the SpMM kernel iterative solvers built on the
// library would use.
func SpMM(a *CSR, x []float64, p int, y []float64) error {
	if p <= 0 || len(x) != a.Cols*p || len(y) != a.Rows*p {
		return fmt.Errorf("%w: SpMM %dx%d with len(x)=%d p=%d len(y)=%d",
			ErrDimension, a.Rows, a.Cols, len(x), p, len(y))
	}
	for i := 0; i < a.Rows; i++ {
		yi := y[i*p : (i+1)*p]
		for t := range yi {
			yi[t] = 0
		}
		vals := a.RowVals(i)
		for q, c := range a.Row(i) {
			v := 1.0
			if vals != nil {
				v = vals[q]
			}
			xc := x[int(c)*p : (int(c)+1)*p]
			for t := range yi {
				yi[t] += v * xc[t]
			}
		}
	}
	return nil
}
