package sparse

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bootes/internal/parallel"
)

// benchMatrix builds a block-structured pattern matrix with a deterministic
// seed. The input is identical for every worker count, so the workers=1 and
// workers=max timings are directly comparable.
func benchMatrix(n, rowNNZ int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	groups := 8
	ptr := make([]int64, n+1)
	var col []int32
	for i := 0; i < n; i++ {
		g := i % groups
		base := g * (n / groups)
		seen := map[int32]bool{}
		for len(seen) < rowNNZ {
			c := int32(base + rng.Intn(n/groups))
			seen[c] = true
		}
		row := make([]int32, 0, len(seen))
		for c := range seen {
			row = append(row, c)
		}
		sortInt32(row)
		col = append(col, row...)
		ptr[i+1] = int64(len(col))
	}
	return &CSR{Rows: n, Cols: n, RowPtr: ptr, Col: col}
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// benchWorkerCounts returns the worker counts each parallel benchmark is
// sampled at: sequential and the full budget.
func benchWorkerCounts() []int {
	return []int{1, parallel.Workers()}
}

func BenchmarkSimilarity(b *testing.B) {
	a := benchMatrix(2000, 24, 7)
	hub := HubDegreeThreshold(a)
	ap := DropHubColumns(a.Pattern(), hub)
	at := Transpose(ap)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := spgemmCount(context.Background(), ap, at)
				if err != nil || s.NNZ() == 0 {
					b.Fatal("empty similarity matrix")
				}
			}
		})
	}
}

// spgemmCountLegacy is the pre-parallel one-pass similarity kernel (per-row
// sort.Slice + append growth), kept verbatim as the baseline for
// BenchmarkSimilarityLegacy so the single-thread win of the two-pass scheme
// stays measurable.
func spgemmCountLegacy(a, b *CSR) *CSR {
	c := &CSR{Rows: a.Rows, Cols: b.Cols}
	c.RowPtr = make([]int64, a.Rows+1)
	c.Val = []float64{}
	acc := make([]float64, b.Cols)
	mark := make([]int64, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	touched := make([]int32, 0, 256)
	for i := 0; i < a.Rows; i++ {
		touched = touched[:0]
		for _, k := range a.Row(i) {
			for _, j := range b.Row(int(k)) {
				if mark[j] != int64(i) {
					mark[j] = int64(i)
					acc[j] = 0
					touched = append(touched, j)
				}
				acc[j]++
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		for _, j := range touched {
			c.Col = append(c.Col, j)
			c.Val = append(c.Val, acc[j])
		}
		c.RowPtr[i+1] = int64(len(c.Col))
	}
	return c
}

func BenchmarkSimilarityLegacy(b *testing.B) {
	a := benchMatrix(2000, 24, 7)
	hub := HubDegreeThreshold(a)
	ap := DropHubColumns(a.Pattern(), hub)
	at := Transpose(ap)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := spgemmCountLegacy(ap, at)
		if s.NNZ() == 0 {
			b.Fatal("empty similarity matrix")
		}
	}
}

func BenchmarkSpMV(b *testing.B) {
	a := benchMatrix(4000, 32, 11)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			b.SetBytes(int64(a.NNZ()) * 12)
			for i := 0; i < b.N; i++ {
				if err := SpMV(a, x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
