// Package sparse provides the sparse-matrix substrate used throughout the
// Bootes reproduction: CSR/COO storage, Gustavson (row-wise product) SpGEMM,
// transposition, binary similarity matrices, row permutation, pattern
// statistics, and Matrix Market I/O.
//
// Matrices are stored in Compressed Sparse Row (CSR) form with 64-bit row
// pointers and 32-bit column indices. Values are optional: a nil Val slice
// denotes a binary pattern matrix, which is the common case in Bootes (the
// reordering pipeline only ever consumes the sparsity pattern).
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in Compressed Sparse Row format.
//
// Row i occupies Col[RowPtr[i]:RowPtr[i+1]] (and the matching region of Val
// when Val is non-nil). Column indices within a row are kept sorted and
// unique; NewCSR and the builders enforce this.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	Col        []int32
	// Val holds the numeric values, parallel to Col. A nil Val means the
	// matrix is a pattern (all stored entries implicitly 1.0).
	Val []float64
}

// Errors returned by validation and constructors.
var (
	ErrShape      = errors.New("sparse: invalid matrix shape")
	ErrRowPtr     = errors.New("sparse: malformed row pointer array")
	ErrColIndex   = errors.New("sparse: column index out of range")
	ErrUnsorted   = errors.New("sparse: column indices not sorted within a row")
	ErrDuplicate  = errors.New("sparse: duplicate column index within a row")
	ErrValLength  = errors.New("sparse: value slice length does not match index slice")
	ErrDimension  = errors.New("sparse: dimension mismatch")
	ErrPermLength = errors.New("sparse: permutation length does not match row count")
	ErrPermValue  = errors.New("sparse: permutation is not a bijection")
)

// NewCSR constructs a CSR matrix and validates its invariants.
func NewCSR(rows, cols int, rowPtr []int64, col []int32, val []float64) (*CSR, error) {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, Col: col, Val: val}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Zero returns an empty rows×cols pattern matrix.
func Zero(rows, cols int) *CSR {
	return &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
}

// Identity returns the n×n identity pattern matrix (values all 1 if withVal).
func Identity(n int, withVal bool) *CSR {
	ptr := make([]int64, n+1)
	col := make([]int32, n)
	for i := 0; i < n; i++ {
		ptr[i+1] = int64(i + 1)
		col[i] = int32(i)
	}
	var val []float64
	if withVal {
		val = make([]float64, n)
		for i := range val {
			val[i] = 1
		}
	}
	return &CSR{Rows: n, Cols: n, RowPtr: ptr, Col: col, Val: val}
}

// Validate checks all CSR invariants. It is O(nnz).
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("%w: %dx%d", ErrShape, m.Rows, m.Cols)
	}
	// Column indices are int32 and row indices travel through int32
	// permutations/assignments, so dimensions beyond int32 range could never
	// be addressed; reject them instead of overflowing downstream.
	if m.Rows > math.MaxInt32 || m.Cols > math.MaxInt32 {
		return fmt.Errorf("%w: %dx%d exceeds 32-bit index range", ErrShape, m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("%w: len(RowPtr)=%d want %d", ErrRowPtr, len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("%w: RowPtr[0]=%d", ErrRowPtr, m.RowPtr[0])
	}
	nnz := m.RowPtr[m.Rows]
	if nnz < 0 {
		return fmt.Errorf("%w: negative nnz %d", ErrRowPtr, nnz)
	}
	if int64(len(m.Col)) != nnz {
		return fmt.Errorf("%w: len(Col)=%d want %d", ErrRowPtr, len(m.Col), nnz)
	}
	if m.Val != nil && len(m.Val) != len(m.Col) {
		return fmt.Errorf("%w: len(Val)=%d len(Col)=%d", ErrValLength, len(m.Val), len(m.Col))
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("%w: row %d has negative extent", ErrRowPtr, i)
		}
		if lo < 0 || hi > nnz {
			return fmt.Errorf("%w: row %d extent [%d,%d) outside [0,%d)", ErrRowPtr, i, lo, hi, nnz)
		}
		prev := int32(-1)
		for p := lo; p < hi; p++ {
			c := m.Col[p]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("%w: row %d col %d", ErrColIndex, i, c)
			}
			if c < prev {
				return fmt.Errorf("%w: row %d", ErrUnsorted, i)
			}
			if c == prev {
				return fmt.Errorf("%w: row %d col %d", ErrDuplicate, i, c)
			}
			prev = c
		}
	}
	return nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int64 { return m.RowPtr[m.Rows] }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns the column indices of row i (a view, not a copy).
func (m *CSR) Row(i int) []int32 { return m.Col[m.RowPtr[i]:m.RowPtr[i+1]] }

// RowVals returns the values of row i, or nil for a pattern matrix.
func (m *CSR) RowVals(i int) []float64 {
	if m.Val == nil {
		return nil
	}
	return m.Val[m.RowPtr[i]:m.RowPtr[i+1]]
}

// Density returns nnz / (rows*cols), or 0 for an empty shape.
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// IsPattern reports whether the matrix stores only a sparsity pattern.
func (m *CSR) IsPattern() bool { return m.Val == nil }

// Pattern returns a pattern-only view sharing index storage with m.
func (m *CSR) Pattern() *CSR {
	return &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, Col: m.Col}
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols}
	c.RowPtr = append([]int64(nil), m.RowPtr...)
	c.Col = append([]int32(nil), m.Col...)
	if m.Val != nil {
		c.Val = append([]float64(nil), m.Val...)
	}
	return c
}

// At returns the value at (i, j); 0 if the entry is not stored, 1 for a
// stored entry of a pattern matrix. It is O(log nnz(row i)).
func (m *CSR) At(i, j int) float64 {
	row := m.Row(i)
	p := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	if p == len(row) || row[p] != int32(j) {
		return 0
	}
	if m.Val == nil {
		return 1
	}
	return m.Val[m.RowPtr[i]+int64(p)]
}

// Has reports whether entry (i, j) is stored.
func (m *CSR) Has(i, j int) bool {
	row := m.Row(i)
	p := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	return p < len(row) && row[p] == int32(j)
}

// ModeledBytes returns the deterministic in-memory size of the matrix data
// (index and value arrays), used by the memory-footprint accounting in the
// scalability experiments.
func (m *CSR) ModeledBytes() int64 {
	b := int64(len(m.RowPtr))*8 + int64(len(m.Col))*4
	if m.Val != nil {
		b += int64(len(m.Val)) * 8
	}
	return b
}

// String summarizes the matrix.
func (m *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d, density=%.3g}", m.Rows, m.Cols, m.NNZ(), m.Density())
}

// Equal reports whether a and b have identical shape, pattern and values.
// Two NaN values are considered equal: Equal compares stored matrices (e.g.
// serialization round trips), where NaN-ness is preserved, not arithmetic.
func Equal(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.Rows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for p := range a.Col {
		if a.Col[p] != b.Col[p] {
			return false
		}
	}
	if (a.Val == nil) != (b.Val == nil) {
		return false
	}
	if a.Val != nil {
		for p := range a.Val {
			if a.Val[p] != b.Val[p] && !(math.IsNaN(a.Val[p]) && math.IsNaN(b.Val[p])) {
				return false
			}
		}
	}
	return true
}

// PatternEqual reports whether a and b have the same shape and pattern,
// ignoring values.
func PatternEqual(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.Rows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for p := range a.Col {
		if a.Col[p] != b.Col[p] {
			return false
		}
	}
	return true
}
