package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtractRows(t *testing.T) {
	m := mustCSR(t, 3, 4, []int64{0, 2, 3, 5}, []int32{0, 2, 1, 0, 3}, []float64{1, 2, 3, 4, 5})
	sub, err := ExtractRows(m, []int32{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows != 2 || sub.Cols != 4 {
		t.Fatalf("shape %dx%d", sub.Rows, sub.Cols)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.At(0, 0) != 4 || sub.At(0, 3) != 5 || sub.At(1, 0) != 1 {
		t.Errorf("values wrong: %v", sub.Dense())
	}
	if _, err := ExtractRows(m, []int32{5}); err == nil {
		t.Error("out-of-range row accepted")
	}
	// Duplicates are allowed.
	dup, err := ExtractRows(m, []int32{1, 1})
	if err != nil || dup.NNZ() != 2 {
		t.Errorf("duplicate extraction failed: %v %v", dup, err)
	}
}

func TestExtractColumns(t *testing.T) {
	m := mustCSR(t, 2, 4, []int64{0, 3, 4}, []int32{0, 1, 3, 2}, []float64{1, 2, 3, 4})
	sub, err := ExtractColumns(m, []int32{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows != 2 || sub.Cols != 2 {
		t.Fatalf("shape %dx%d", sub.Rows, sub.Cols)
	}
	// Column 3 becomes column 0; column 0 becomes column 1.
	if sub.At(0, 0) != 3 || sub.At(0, 1) != 1 || sub.At(1, 0) != 0 {
		t.Errorf("values wrong: %v", sub.Dense())
	}
	if _, err := ExtractColumns(m, []int32{9}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := ExtractColumns(m, []int32{1, 1}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestPermuteSymmetricPreservesPatternStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomCSR(rng, 12, 12, 0.3)
	perm := IdentityPerm(12)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	pm, err := PermuteSymmetric(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	// (PAPᵀ)[i][j] = A[perm[i]][perm[j]].
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if pm.Has(i, j) != m.Has(int(perm[i]), int(perm[j])) {
				t.Fatalf("entry (%d,%d) mismatch", i, j)
			}
		}
	}
	if _, err := PermuteSymmetric(Zero(2, 3), IdentityPerm(2)); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := PermuteSymmetric(m, Permutation{0}); err == nil {
		t.Error("bad permutation accepted")
	}
}

func TestPermuteSymmetricInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		m := randomCSR(rng, n, n, 0.3)
		perm := IdentityPerm(n)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		pm, err := PermuteSymmetric(m, perm)
		if err != nil {
			return false
		}
		back, err := PermuteSymmetric(pm, perm.Inverse())
		if err != nil {
			return false
		}
		return PatternEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
