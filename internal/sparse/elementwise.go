package sparse

import "fmt"

// Elementwise operations used by downstream consumers of the library
// (iterative methods, graph analytics, preprocessing pipelines).

// Add returns alpha·a + beta·b for equally-shaped matrices. Pattern inputs
// contribute implicit ones. Entries that cancel to exactly zero are dropped.
func Add(a, b *CSR, alpha, beta float64) (*CSR, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: add %dx%d with %dx%d", ErrDimension, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := &CSR{Rows: a.Rows, Cols: a.Cols}
	out.RowPtr = make([]int64, a.Rows+1)
	out.Col = make([]int32, 0, a.NNZ()+b.NNZ())
	out.Val = make([]float64, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		va, vb := a.RowVals(i), b.RowVals(i)
		p, q := 0, 0
		emit := func(c int32, v float64) {
			if v != 0 {
				out.Col = append(out.Col, c)
				out.Val = append(out.Val, v)
			}
		}
		valA := func(k int) float64 {
			if va == nil {
				return 1
			}
			return va[k]
		}
		valB := func(k int) float64 {
			if vb == nil {
				return 1
			}
			return vb[k]
		}
		for p < len(ra) && q < len(rb) {
			switch {
			case ra[p] < rb[q]:
				emit(ra[p], alpha*valA(p))
				p++
			case ra[p] > rb[q]:
				emit(rb[q], beta*valB(q))
				q++
			default:
				emit(ra[p], alpha*valA(p)+beta*valB(q))
				p++
				q++
			}
		}
		for ; p < len(ra); p++ {
			emit(ra[p], alpha*valA(p))
		}
		for ; q < len(rb); q++ {
			emit(rb[q], beta*valB(q))
		}
		out.RowPtr[i+1] = int64(len(out.Col))
	}
	return out, nil
}

// Hadamard returns the elementwise product a ∘ b (intersection of patterns).
func Hadamard(a, b *CSR) (*CSR, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: hadamard %dx%d with %dx%d", ErrDimension, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := &CSR{Rows: a.Rows, Cols: a.Cols}
	out.RowPtr = make([]int64, a.Rows+1)
	out.Val = []float64{}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		va, vb := a.RowVals(i), b.RowVals(i)
		p, q := 0, 0
		for p < len(ra) && q < len(rb) {
			switch {
			case ra[p] < rb[q]:
				p++
			case ra[p] > rb[q]:
				q++
			default:
				x, y := 1.0, 1.0
				if va != nil {
					x = va[p]
				}
				if vb != nil {
					y = vb[q]
				}
				if v := x * y; v != 0 {
					out.Col = append(out.Col, ra[p])
					out.Val = append(out.Val, v)
				}
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.Col))
	}
	return out, nil
}

// ScaleValues returns a copy of m with every stored value multiplied by
// alpha. Pattern matrices gain explicit values.
func ScaleValues(m *CSR, alpha float64) *CSR {
	out := m.Clone()
	if out.Val == nil {
		out.Val = make([]float64, len(out.Col))
		for i := range out.Val {
			out.Val[i] = 1
		}
	}
	for i := range out.Val {
		out.Val[i] *= alpha
	}
	return out
}

// Diag returns the main-diagonal entries of m as a dense vector of length
// min(rows, cols).
func Diag(m *CSR) []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// RowNorms returns the Euclidean norm of each row (pattern entries count 1).
func RowNorms(m *CSR) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		vals := m.RowVals(i)
		s := 0.0
		if vals == nil {
			s = float64(m.RowNNZ(i))
		} else {
			for _, v := range vals {
				s += v * v
			}
		}
		out[i] = sqrtFloat(s)
	}
	return out
}

// FrobeniusNorm returns ‖m‖_F (pattern entries count 1).
func FrobeniusNorm(m *CSR) float64 {
	s := 0.0
	if m.Val == nil {
		s = float64(m.NNZ())
	} else {
		for _, v := range m.Val {
			s += v * v
		}
	}
	return sqrtFloat(s)
}
