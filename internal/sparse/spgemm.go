package sparse

import (
	"fmt"
	"slices"

	"bootes/internal/parallel"
)

// SpGEMM computes C = A·B with Gustavson's row-wise product: for each row i
// of A, the partial row Σ_k A[i,k]·B[k,:] is accumulated in a sparse
// accumulator. This is the dataflow used by the accelerators Bootes targets.
//
// If either input is a pattern matrix its stored entries are treated as 1.
func SpGEMM(a, b *CSR) (*CSR, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: A is %dx%d, B is %dx%d", ErrDimension, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := &CSR{Rows: a.Rows, Cols: b.Cols}
	c.RowPtr = make([]int64, a.Rows+1)
	c.Val = []float64{} // SpGEMM output is always valued, even when empty

	// Sparse accumulator (SPA): dense value array + touched-column marker.
	acc := make([]float64, b.Cols)
	mark := make([]int64, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	touched := make([]int32, 0, 256)

	for i := 0; i < a.Rows; i++ {
		touched = touched[:0]
		aVals := a.RowVals(i)
		for p, k := range a.Row(i) {
			av := 1.0
			if aVals != nil {
				av = aVals[p]
			}
			bVals := b.RowVals(int(k))
			bRow := b.Row(int(k))
			for q, j := range bRow {
				bv := 1.0
				if bVals != nil {
					bv = bVals[q]
				}
				if mark[j] != int64(i) {
					mark[j] = int64(i)
					acc[j] = 0
					touched = append(touched, j)
				}
				acc[j] += av * bv
			}
		}
		slices.Sort(touched)
		for _, j := range touched {
			c.Col = append(c.Col, j)
			c.Val = append(c.Val, acc[j])
		}
		c.RowPtr[i+1] = int64(len(c.Col))
	}
	return c, nil
}

// SpGEMMPattern computes the sparsity pattern of A·B without values, which
// is cheaper and sufficient for similarity-matrix construction and traffic
// analysis.
func SpGEMMPattern(a, b *CSR) (*CSR, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: A is %dx%d, B is %dx%d", ErrDimension, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := &CSR{Rows: a.Rows, Cols: b.Cols}
	c.RowPtr = make([]int64, a.Rows+1)
	mark := make([]int64, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	touched := make([]int32, 0, 256)
	for i := 0; i < a.Rows; i++ {
		touched = touched[:0]
		for _, k := range a.Row(i) {
			for _, j := range b.Row(int(k)) {
				if mark[j] != int64(i) {
					mark[j] = int64(i)
					touched = append(touched, j)
				}
			}
		}
		slices.Sort(touched)
		c.Col = append(c.Col, touched...)
		c.RowPtr[i+1] = int64(len(c.Col))
	}
	return c, nil
}

// FlopCount returns the number of scalar multiply-accumulates Gustavson's
// algorithm performs for A·B: Σ_i Σ_{k∈row i of A} nnz(B[k,:]). This also
// equals the number of partial-product entries generated.
func FlopCount(a, b *CSR) (int64, error) {
	if a.Cols != b.Rows {
		return 0, fmt.Errorf("%w: A is %dx%d, B is %dx%d", ErrDimension, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	bRowNNZ := make([]int64, b.Rows)
	for k := 0; k < b.Rows; k++ {
		bRowNNZ[k] = b.RowPtr[k+1] - b.RowPtr[k]
	}
	var flops int64
	for _, k := range a.Col {
		flops += bRowNNZ[k]
	}
	return flops, nil
}

// spmvGrain is the fixed row-chunk size of the parallel SpMV. Like rowGrain
// it is independent of the worker count; each chunk writes a disjoint y
// region and each y[i] is a self-contained row sum, so the result is
// bit-identical to the sequential loop for any worker count.
const spmvGrain = 512

// SpMV computes y = A·x for a dense vector x. Pattern matrices use implicit
// ones. The result is written into y, which must have length A.Rows. Rows
// are processed in parallel chunks; x and y must not alias.
func SpMV(a *CSR, x, y []float64) error {
	if len(x) != a.Cols || len(y) != a.Rows {
		return fmt.Errorf("%w: SpMV with %dx%d, len(x)=%d len(y)=%d", ErrDimension, a.Rows, a.Cols, len(x), len(y))
	}
	parallel.For(a.Rows, spmvGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum := 0.0
			vals := a.RowVals(i)
			if vals == nil {
				for _, c := range a.Row(i) {
					sum += x[c]
				}
			} else {
				row := a.Row(i)
				for p, c := range row {
					sum += vals[p] * x[c]
				}
			}
			y[i] = sum
		}
	})
	return nil
}
