package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomValuedCSR(rng, rows, cols, 0.4)
		b := randomValuedCSR(rng, rows, cols, 0.4)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		c, err := Add(a, b, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		da, db, dc := a.Dense(), b.Dense(), c.Dense()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want := alpha*da[i][j] + beta*db[i][j]
				if math.Abs(dc[i][j]-want) > 1e-12 {
					t.Fatalf("Add[%d][%d] = %v, want %v", i, j, dc[i][j], want)
				}
			}
		}
	}
}

func TestAddCancellationDropsEntries(t *testing.T) {
	a := mustCSR(t, 1, 2, []int64{0, 2}, []int32{0, 1}, []float64{3, 1})
	c, err := Add(a, a, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Errorf("cancelled sum kept %d entries", c.NNZ())
	}
	if _, err := Add(a, Zero(2, 2), 1, 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestAddPatternInputs(t *testing.T) {
	a := mustCSR(t, 1, 3, []int64{0, 2}, []int32{0, 2}, nil)
	b := mustCSR(t, 1, 3, []int64{0, 2}, []int32{1, 2}, nil)
	c, err := Add(a, b, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 2 || c.At(0, 1) != 3 || c.At(0, 2) != 5 {
		t.Errorf("pattern add wrong: %v", c.Dense())
	}
}

func TestHadamardAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomValuedCSR(rng, 10, 8, 0.4)
	b := randomValuedCSR(rng, 10, 8, 0.4)
	c, err := Hadamard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	da, db, dc := a.Dense(), b.Dense(), c.Dense()
	for i := 0; i < 10; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(dc[i][j]-da[i][j]*db[i][j]) > 1e-12 {
				t.Fatalf("Hadamard[%d][%d] wrong", i, j)
			}
		}
	}
	if _, err := Hadamard(a, Zero(1, 1)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestScaleDiagNorms(t *testing.T) {
	m := mustCSR(t, 2, 2, []int64{0, 2, 3}, []int32{0, 1, 1}, []float64{3, 4, 2})
	s := ScaleValues(m, 2)
	if s.At(0, 0) != 6 || s.At(1, 1) != 4 {
		t.Error("ScaleValues wrong")
	}
	if m.At(0, 0) != 3 {
		t.Error("ScaleValues mutated input")
	}
	p := ScaleValues(m.Pattern(), 5)
	if p.At(0, 0) != 5 {
		t.Error("pattern scale wrong")
	}
	d := Diag(m)
	if len(d) != 2 || d[0] != 3 || d[1] != 2 {
		t.Errorf("Diag = %v", d)
	}
	norms := RowNorms(m)
	if math.Abs(norms[0]-5) > 1e-12 || math.Abs(norms[1]-2) > 1e-12 {
		t.Errorf("RowNorms = %v", norms)
	}
	if math.Abs(FrobeniusNorm(m)-math.Sqrt(29)) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v", FrobeniusNorm(m))
	}
	if FrobeniusNorm(m.Pattern()) != math.Sqrt(3) {
		t.Error("pattern Frobenius wrong")
	}
}

func TestAddCommutesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomValuedCSR(rng, rows, cols, 0.3)
		b := randomValuedCSR(rng, rows, cols, 0.3)
		ab, err := Add(a, b, 1, 1)
		if err != nil {
			return false
		}
		ba, err := Add(b, a, 1, 1)
		if err != nil {
			return false
		}
		return Equal(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
