package sparse

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary serialization: a compact little-endian container for CSR matrices,
// ~10× faster to load than Matrix Market for large inputs. Layout:
//
//	magic   [4]byte  "BCSR"
//	version uint32   (1)
//	rows    uint64
//	cols    uint64
//	nnz     uint64
//	hasVal  uint8    (0 pattern, 1 valued)
//	rowPtr  [rows+1]uint64
//	col     [nnz]uint32
//	val     [nnz]float64   (only when hasVal == 1)

var binMagic = [4]byte{'B', 'C', 'S', 'R'}

// ErrBinFormat reports a malformed binary matrix stream.
var ErrBinFormat = errors.New("sparse: invalid binary matrix data")

// WriteBinary writes m in the BCSR container format.
func WriteBinary(w io.Writer, m *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	hasVal := uint8(0)
	if m.Val != nil {
		hasVal = 1
	}
	for _, v := range []interface{}{
		uint32(1), uint64(m.Rows), uint64(m.Cols), uint64(m.NNZ()), hasVal,
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Col); err != nil {
		return err
	}
	if hasVal == 1 {
		if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a BCSR stream and validates the matrix.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBinFormat, err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBinFormat, magic)
	}
	var (
		version         uint32
		rows, cols, nnz uint64
		hasVal          uint8
	)
	for _, v := range []interface{}{&version, &rows, &cols, &nnz, &hasVal} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBinFormat, err)
		}
	}
	if version != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBinFormat, version)
	}
	// Allocation guards: reject headers that would allocate unbounded
	// memory before any payload has been checked (a malformed or hostile
	// stream must fail cheaply).
	const (
		maxDim = 1 << 24 // 16.7M rows/cols → ≤128 MB of row pointers
		maxNNZ = 1 << 27 // 134M entries → ≤1.5 GB of payload
	)
	if rows > maxDim || cols > maxDim || nnz > maxNNZ || hasVal > 1 {
		return nil, fmt.Errorf("%w: implausible header (%d x %d, nnz %d)", ErrBinFormat, rows, cols, nnz)
	}
	m := &CSR{Rows: int(rows), Cols: int(cols)}
	var err error
	if m.RowPtr, err = readChunked[int64](br, rows+1); err != nil {
		return nil, fmt.Errorf("%w: row pointers: %v", ErrBinFormat, err)
	}
	if m.Col, err = readChunked[int32](br, nnz); err != nil {
		return nil, fmt.Errorf("%w: column indices: %v", ErrBinFormat, err)
	}
	if hasVal == 1 {
		if m.Val, err = readChunked[float64](br, nnz); err != nil {
			return nil, fmt.Errorf("%w: values: %v", ErrBinFormat, err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBinFormat, err)
	}
	return m, nil
}

// binReadChunk is the element count per incremental read of readChunked.
const binReadChunk = 1 << 16

// readChunked reads n little-endian elements in bounded increments, so the
// memory pinned by a hostile header is proportional to the payload actually
// present in the stream, not to the claimed element count: a huge-nnz header
// on a short stream fails after at most one chunk.
func readChunked[T int32 | int64 | float64](br io.Reader, n uint64) ([]T, error) {
	out := make([]T, 0, min(n, binReadChunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, binReadChunk)
		chunk := make([]T, c)
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		remaining -= c
	}
	return out, nil
}
