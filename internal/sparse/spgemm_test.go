package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseMul is the reference O(n³) multiplication.
func denseMul(a, b [][]float64) [][]float64 {
	m, k := len(a), len(a[0])
	n := len(b[0])
	c := make([][]float64, m)
	for i := range c {
		c[i] = make([]float64, n)
		for kk := 0; kk < k; kk++ {
			if a[i][kk] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i][j] += a[i][kk] * b[kk][j]
			}
		}
	}
	return c
}

func randomValuedCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	coo := NewCOO(rows, cols, false)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func TestSpGEMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomValuedCSR(rng, m, k, 0.4)
		b := randomValuedCSR(rng, k, n, 0.4)
		c, err := SpGEMM(a, b)
		if err != nil {
			t.Fatalf("SpGEMM: %v", err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("result invalid: %v", err)
		}
		want := denseMul(a.Dense(), b.Dense())
		got := c.Dense()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got[i][j]-want[i][j]) > 1e-9 {
					t.Fatalf("trial %d: C[%d][%d] = %v, want %v", trial, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestSpGEMMDimensionError(t *testing.T) {
	a := Zero(2, 3)
	b := Zero(4, 2)
	if _, err := SpGEMM(a, b); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := SpGEMMPattern(a, b); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := FlopCount(a, b); err == nil {
		t.Error("expected dimension error")
	}
}

func TestSpGEMMPatternMatchesValued(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		a := randomCSR(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.3)
		b := randomCSR(rng, a.Cols, 1+rng.Intn(15), 0.3)
		pat, err := SpGEMMPattern(a, b)
		if err != nil {
			t.Fatal(err)
		}
		full, err := SpGEMM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !PatternEqual(pat, full.Pattern()) {
			t.Fatalf("trial %d: pattern mismatch", trial)
		}
	}
}

func TestFlopCountMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 10, 8, 0.3)
	b := randomCSR(rng, 8, 12, 0.3)
	want := int64(0)
	for i := 0; i < a.Rows; i++ {
		for _, k := range a.Row(i) {
			want += int64(b.RowNNZ(int(k)))
		}
	}
	got, err := FlopCount(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("FlopCount = %d, want %d", got, want)
	}
}

func TestSpMV(t *testing.T) {
	a := mustCSR(t, 2, 3, []int64{0, 2, 3}, []int32{0, 2, 1}, []float64{2, 3, 4})
	x := []float64{1, 10, 100}
	y := make([]float64, 2)
	if err := SpMV(a, x, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 302 || y[1] != 40 {
		t.Errorf("SpMV = %v, want [302 40]", y)
	}
	// Pattern matrix uses implicit ones.
	p := a.Pattern()
	if err := SpMV(p, x, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 101 || y[1] != 10 {
		t.Errorf("pattern SpMV = %v, want [101 10]", y)
	}
	if err := SpMV(a, x[:2], y); err == nil {
		t.Error("expected dimension error")
	}
}

func TestSpGEMMIdentityProperty(t *testing.T) {
	// A·I = A for random valued matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomValuedCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.4)
		id := Identity(a.Cols, true)
		c, err := SpGEMM(a, id)
		if err != nil {
			return false
		}
		return Equal(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
