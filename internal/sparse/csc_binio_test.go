package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randomValuedCSR(rng, 14, 9, 0.3)
	c := ToCSC(m)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != m.NNZ() {
		t.Errorf("nnz %d != %d", c.NNZ(), m.NNZ())
	}
	back := c.ToCSR()
	if !Equal(m, back) {
		t.Error("CSC round trip mismatch")
	}
	// Column access matches the dense view.
	d := m.Dense()
	for j := 0; j < m.Cols; j++ {
		vals := c.ColumnVals(j)
		for p, i := range c.Column(j) {
			if d[i][j] != vals[p] {
				t.Fatalf("column %d entry %d mismatch", j, p)
			}
		}
		nz := 0
		for i := 0; i < m.Rows; i++ {
			if d[i][j] != 0 {
				nz++
			}
		}
		if nz != c.ColNNZ(j) {
			t.Fatalf("column %d nnz %d, want %d", j, c.ColNNZ(j), nz)
		}
	}
}

func TestCSCPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randomCSR(rng, 10, 10, 0.3)
	c := ToCSC(m)
	if c.Val != nil || c.ColumnVals(0) != nil {
		t.Error("pattern CSC should have nil values")
	}
	if !PatternEqual(m, c.ToCSR()) {
		t.Error("pattern round trip mismatch")
	}
}

func TestSpMMAgainstSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomValuedCSR(rng, 12, 8, 0.4)
	const p = 3
	x := make([]float64, a.Cols*p)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows*p)
	if err := SpMM(a, x, p, y); err != nil {
		t.Fatal(err)
	}
	// Column t of Y must equal A · (column t of X).
	for tcol := 0; tcol < p; tcol++ {
		xc := make([]float64, a.Cols)
		for i := range xc {
			xc[i] = x[i*p+tcol]
		}
		yc := make([]float64, a.Rows)
		if err := SpMV(a, xc, yc); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < a.Rows; i++ {
			if math.Abs(y[i*p+tcol]-yc[i]) > 1e-12 {
				t.Fatalf("SpMM[%d][%d] = %v, SpMV = %v", i, tcol, y[i*p+tcol], yc[i])
			}
		}
	}
	if err := SpMM(a, x, 0, y); err == nil {
		t.Error("p=0 accepted")
	}
	if err := SpMM(a, x[:1], p, y); err == nil {
		t.Error("bad x length accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, pattern bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var m *CSR
		if pattern {
			m = randomCSR(rng, 1+rng.Intn(25), 1+rng.Intn(25), 0.25)
		} else {
			m = randomValuedCSR(rng, 1+rng.Intn(25), 1+rng.Intn(25), 0.25)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return Equal(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinaryErrors(t *testing.T) {
	// Truncations at every stage must fail cleanly.
	rng := rand.New(rand.NewSource(24))
	m := randomValuedCSR(rng, 10, 10, 0.3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 2, 4, 8, 20, 29, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte("XXXX"), full[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), full...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Corrupted structure (row pointer garbage) must fail validation.
	bad = append([]byte(nil), full...)
	bad[29] = 0xff // first rowPtr byte
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted rowPtr accepted")
	}
}

func TestBinaryEmptyMatrix(t *testing.T) {
	m := Zero(5, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 5 || got.Cols != 7 || got.NNZ() != 0 {
		t.Errorf("empty round trip wrong: %v", got)
	}
}
