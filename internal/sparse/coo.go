package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicates are summed (or collapsed for patterns) when
// converting to CSR.
type COO struct {
	Rows, Cols int
	I, J       []int32
	V          []float64 // nil for pattern-only
	pattern    bool
}

// NewCOO returns an empty COO builder for a rows×cols matrix. If pattern is
// true the builder stores no values and produces a pattern CSR.
func NewCOO(rows, cols int, pattern bool) *COO {
	return &COO{Rows: rows, Cols: cols, pattern: pattern}
}

// Add appends entry (i, j, v). For pattern builders v is ignored.
func (c *COO) Add(i, j int, v float64) {
	c.I = append(c.I, int32(i))
	c.J = append(c.J, int32(j))
	if !c.pattern {
		c.V = append(c.V, v)
	}
}

// AddPattern appends entry (i, j) with an implicit value of 1.
func (c *COO) AddPattern(i, j int) { c.Add(i, j, 1) }

// Len returns the number of accumulated (possibly duplicate) entries.
func (c *COO) Len() int { return len(c.I) }

// ToCSR converts the accumulated entries into a validated CSR matrix,
// sorting rows and merging duplicates (summing values, or collapsing for
// pattern builders).
func (c *COO) ToCSR() (*CSR, error) {
	for k := range c.I {
		if c.I[k] < 0 || int(c.I[k]) >= c.Rows || c.J[k] < 0 || int(c.J[k]) >= c.Cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrColIndex, c.I[k], c.J[k], c.Rows, c.Cols)
		}
	}
	n := len(c.I)
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		if c.I[ka] != c.I[kb] {
			return c.I[ka] < c.I[kb]
		}
		return c.J[ka] < c.J[kb]
	})

	rowPtr := make([]int64, c.Rows+1)
	col := make([]int32, 0, n)
	var val []float64
	if !c.pattern {
		val = make([]float64, 0, n)
	}
	for idx := 0; idx < n; {
		k := order[idx]
		i, j := c.I[k], c.J[k]
		sum := 0.0
		if !c.pattern {
			sum = c.V[k]
		}
		idx++
		for idx < n {
			k2 := order[idx]
			if c.I[k2] != i || c.J[k2] != j {
				break
			}
			if !c.pattern {
				sum += c.V[k2]
			}
			idx++
		}
		col = append(col, j)
		if !c.pattern {
			val = append(val, sum)
		}
		rowPtr[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return NewCSR(c.Rows, c.Cols, rowPtr, col, val)
}

// FromRows builds a pattern CSR from per-row column lists. Each list is
// sorted and deduplicated; the input is not modified.
func FromRows(rows, cols int, rowCols [][]int32) (*CSR, error) {
	if len(rowCols) != rows {
		return nil, fmt.Errorf("%w: %d row lists for %d rows", ErrShape, len(rowCols), rows)
	}
	rowPtr := make([]int64, rows+1)
	total := 0
	for _, r := range rowCols {
		total += len(r)
	}
	col := make([]int32, 0, total)
	scratch := make([]int32, 0, 64)
	for i, r := range rowCols {
		scratch = append(scratch[:0], r...)
		sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
		prev := int32(-1)
		for _, cix := range scratch {
			if cix == prev {
				continue
			}
			col = append(col, cix)
			prev = cix
		}
		rowPtr[i+1] = int64(len(col))
	}
	return NewCSR(rows, cols, rowPtr, col, nil)
}

// Dense converts m to a dense row-major matrix. Intended for tests on small
// matrices only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		vals := m.RowVals(i)
		for p, c := range m.Row(i) {
			if vals == nil {
				d[i][c] = 1
			} else {
				d[i][c] = vals[p]
			}
		}
	}
	return d
}

// FromDense builds a CSR from a dense row-major matrix, storing every
// non-zero entry. Intended for tests.
func FromDense(d [][]float64) (*CSR, error) {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	coo := NewCOO(rows, cols, false)
	for i, r := range d {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: ragged dense input", ErrShape)
		}
		for j, v := range r {
			if v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}
