package sparse

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"bootes/internal/parallel"
)

// hostileBitPatterns are row supports chosen to stress the packer's word
// handling: empty rows, single bits at word boundaries (63/64/65), bits
// sharing one word, bits one-per-word, a fully dense row, and the last
// representable column.
func hostileBitPatterns(cols int) *CSR {
	coo := NewCOO(8, cols, true)
	// row 0: empty
	coo.AddPattern(1, 63)
	coo.AddPattern(1, 64)
	coo.AddPattern(1, 65)
	for c := 0; c < 64 && c < cols; c++ {
		coo.AddPattern(2, c) // one full word
	}
	for c := 0; c < cols; c += 64 {
		coo.AddPattern(3, c) // one bit per word
	}
	for c := 0; c < cols; c++ {
		coo.AddPattern(4, c) // fully dense row
	}
	coo.AddPattern(5, cols-1)
	coo.AddPattern(6, 0)
	coo.AddPattern(6, cols-1)
	coo.AddPattern(7, 63)
	coo.AddPattern(7, 127)
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func TestPackBitRowsHostilePatterns(t *testing.T) {
	for _, cols := range []int{1, 63, 64, 65, 128, 129, 200} {
		m := hostileBitPatterns(maxInt(cols, 130))
		br := PackBitRows(m)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Rows; j++ {
				want := IntersectionSize(m, i, j)
				if got := br.IntersectCount(i, j); got != want {
					t.Fatalf("cols=%d IntersectCount(%d,%d)=%d want %d", cols, i, j, got, want)
				}
			}
		}
	}
}

func TestPackBitRowsRandomMatchesMerge(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 60, 150, 0.08)
		br := PackBitRows(m)
		for i := 0; i < m.Rows; i++ {
			for j := i; j < m.Rows; j++ {
				want := IntersectionSize(m, i, j)
				if got := br.IntersectCount(i, j); got != want {
					t.Fatalf("seed=%d IntersectCount(%d,%d)=%d want %d", seed, i, j, got, want)
				}
			}
		}
	}
}

// TestSimilarityBitsetMatchesMerge is the kernel-level equivalence gate: the
// bitset similarity must be bit-identical to the merge path across worker
// counts {1,2,8} × seeds {1,2,3}, including hub exclusion.
func TestSimilarityBitsetMatchesMerge(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a := benchMatrix(400, 12, seed)
		hub := HubDegreeThreshold(a)
		want, err := SimilarityContext(context.Background(), a, hub, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 8} {
			prev := parallel.SetWorkers(w)
			got, err := SimilarityBitsetContext(context.Background(), a, hub, nil)
			parallel.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(want, got) {
				t.Fatalf("seed=%d workers=%d: bitset similarity differs from merge path", seed, w)
			}
		}
	}
}

func TestSimilarityBitsetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimilarityBitsetContext(ctx, benchMatrix(64, 4, 1), 0, nil); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestSimilarityBitsetEmptyAndTiny(t *testing.T) {
	for _, m := range []*CSR{Zero(0, 0), Zero(5, 7), Identity(3, false)} {
		want, err := SimilarityContext(context.Background(), m, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimilarityBitsetContext(context.Background(), m, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(want, got) {
			t.Fatalf("bitset similarity differs for %v", m)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FuzzBitsetPack feeds hostile row patterns to the packer and checks the
// packed intersection counts — and the full bitset similarity — against the
// merge-based reference.
func FuzzBitsetPack(f *testing.F) {
	f.Add(int64(1), 40, 90, 10)
	f.Add(int64(2), 1, 1, 100)
	f.Add(int64(3), 30, 64, 95)
	f.Add(int64(4), 16, 129, 50)
	f.Fuzz(func(t *testing.T, seed int64, rows, cols, pct int) {
		rows = 1 + absInt(rows)%48
		cols = 1 + absInt(cols)%200
		density := float64(absInt(pct)%101) / 100
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, rows, cols, density)
		br := PackBitRows(m)
		for i := 0; i < m.Rows; i++ {
			j := rng.Intn(m.Rows)
			if got, want := br.IntersectCount(i, j), IntersectionSize(m, i, j); got != want {
				t.Fatalf("IntersectCount(%d,%d)=%d want %d", i, j, got, want)
			}
		}
		want, err := SimilarityContext(context.Background(), m, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimilarityBitsetContext(context.Background(), m, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(want, got) {
			t.Fatal("bitset similarity differs from merge path")
		}
	})
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkSimilarityBitset(b *testing.B) {
	a := benchMatrix(2000, 24, 7)
	hub := HubDegreeThreshold(a)
	ap := DropHubColumns(a.Pattern(), hub)
	at := Transpose(ap)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := spgemmCountBitset(context.Background(), ap, at)
				if err != nil || s.NNZ() == 0 {
					b.Fatal("empty similarity matrix")
				}
			}
		})
	}
}
