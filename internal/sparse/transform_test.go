package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTransposeSmall(t *testing.T) {
	a := mustCSR(t, 2, 3, []int64{0, 2, 3}, []int32{0, 2, 1}, []float64{1, 2, 3})
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d, want 3x2", at.Rows, at.Cols)
	}
	if err := at.Validate(); err != nil {
		t.Fatalf("invalid transpose: %v", err)
	}
	if at.At(0, 0) != 1 || at.At(2, 0) != 2 || at.At(1, 1) != 3 {
		t.Errorf("transpose values wrong: %v", at.Dense())
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomValuedCSR(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3)
		return Equal(a, Transpose(Transpose(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestColAndRowCounts(t *testing.T) {
	a := mustCSR(t, 3, 3, []int64{0, 2, 2, 3}, []int32{0, 2, 2}, nil)
	cc := ColCounts(a)
	if cc[0] != 1 || cc[1] != 0 || cc[2] != 2 {
		t.Errorf("ColCounts = %v", cc)
	}
	rc := RowCounts(a)
	if rc[0] != 2 || rc[1] != 0 || rc[2] != 1 {
		t.Errorf("RowCounts = %v", rc)
	}
}

func TestPermuteRowsAndBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomValuedCSR(rng, 10, 7, 0.4)
	perm := IdentityPerm(10)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	p, err := PermuteRows(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("permuted invalid: %v", err)
	}
	// Row i of p must be row perm[i] of a.
	for i := 0; i < 10; i++ {
		src := int(perm[i])
		if p.RowNNZ(i) != a.RowNNZ(src) {
			t.Fatalf("row %d nnz mismatch", i)
		}
		for idx, c := range p.Row(i) {
			if c != a.Row(src)[idx] {
				t.Fatalf("row %d col mismatch", i)
			}
		}
	}
	back, err := UnpermuteRows(p, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, back) {
		t.Error("unpermute did not restore original")
	}
}

func TestPermutationValidate(t *testing.T) {
	if err := (Permutation{0, 1, 2}).Validate(3); err != nil {
		t.Errorf("valid perm rejected: %v", err)
	}
	if err := (Permutation{0, 1}).Validate(3); err == nil {
		t.Error("short perm accepted")
	}
	if err := (Permutation{0, 0, 2}).Validate(3); err == nil {
		t.Error("duplicate perm accepted")
	}
	if err := (Permutation{0, 3, 2}).Validate(3); err == nil {
		t.Error("out-of-range perm accepted")
	}
}

func TestPermutationInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		p := IdentityPerm(n)
		rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		inv := p.Inverse()
		// p ∘ inv = identity under Compose.
		c, err := Compose(p, inv)
		if err != nil {
			return false
		}
		return c.IsIdentity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestComposeErrors(t *testing.T) {
	if _, err := Compose(Permutation{0}, Permutation{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Compose(Permutation{0, 1}, Permutation{0, 5}); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestSimilaritySmall(t *testing.T) {
	// Rows: {0,1}, {1,2}, {0,1}. Similarity counts shared columns.
	a := mustCSR(t, 3, 3, []int64{0, 2, 4, 6}, []int32{0, 1, 1, 2, 0, 1}, nil)
	s := Similarity(a)
	if s.At(0, 0) != 2 || s.At(1, 1) != 2 || s.At(2, 2) != 2 {
		t.Errorf("diagonal should equal row nnz: %v", s.Dense())
	}
	if s.At(0, 1) != 1 || s.At(0, 2) != 2 || s.At(1, 2) != 1 {
		t.Errorf("off-diagonals wrong: %v", s.Dense())
	}
	// Similarity must be symmetric.
	st := Transpose(s)
	if !Equal(s, st) {
		t.Error("similarity not symmetric")
	}
}

func TestSimilarityDiagonalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCSR(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.3)
		s := Similarity(a)
		for i := 0; i < a.Rows; i++ {
			want := float64(a.RowNNZ(i))
			if want == 0 {
				if s.RowNNZ(i) != 0 {
					return false
				}
				continue
			}
			if s.At(i, i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionAndJaccard(t *testing.T) {
	a := mustCSR(t, 3, 4, []int64{0, 2, 4, 4}, []int32{0, 1, 1, 3}, nil)
	if got := IntersectionSize(a, 0, 1); got != 1 {
		t.Errorf("IntersectionSize = %d, want 1", got)
	}
	if got := Jaccard(a, 0, 1); got != 1.0/3 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(a, 2, 2); got != 0 {
		t.Errorf("Jaccard of empty rows = %v, want 0", got)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, pattern := range []bool{true, false} {
		var m *CSR
		if pattern {
			m = randomCSR(rng, 12, 9, 0.3)
		} else {
			m = randomValuedCSR(rng, 12, 9, 0.3)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(m, got) {
			t.Errorf("round trip mismatch (pattern=%v)", pattern)
		}
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 1.5
2 1 2.0
3 3 -1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2.0 || m.At(1, 0) != 2.0 {
		t.Error("symmetric entry not mirrored")
	}
	if m.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", m.NNZ())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFromRowsDeduplicates(t *testing.T) {
	m, err := FromRows(2, 4, [][]int32{{3, 1, 3, 0}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if m.RowNNZ(0) != 3 {
		t.Errorf("row 0 nnz = %d, want 3 (dedup)", m.RowNNZ(0))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO(2, 2, false)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2.5)
	coo.Add(1, 1, -1)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3.5 {
		t.Errorf("duplicate sum = %v, want 3.5", m.At(0, 0))
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestCOOOutOfRange(t *testing.T) {
	coo := NewCOO(2, 2, true)
	coo.AddPattern(2, 0)
	if _, err := coo.ToCSR(); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := [][]float64{{0, 1.5, 0}, {2, 0, 0}}
	m, err := FromDense(d)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Dense()
	for i := range d {
		for j := range d[i] {
			if got[i][j] != d[i][j] {
				t.Fatalf("dense mismatch at (%d,%d)", i, j)
			}
		}
	}
}
