package sparse

import (
	"context"
	"slices"
	"sync"

	"bootes/internal/parallel"
)

// Similarity computes the row-similarity matrix S = Ā·Āᵀ where Ā is the
// binary pattern of A. Entry S[i,j] is the number of column coordinates rows
// i and j share; the diagonal S[i,i] equals nnz(row i). This is the matrix
// Bootes' spectral clustering operates on (Algorithm 4, line 12).
//
// The computation walks A column by column through Aᵀ, so its cost is
// Σ_j d_j² where d_j is the number of nonzeros in column j of A — the first
// term of Bootes' complexity in Table 2 of the paper.
func Similarity(a *CSR) *CSR {
	return SimilarityCapped(a, 0)
}

// SimilarityCapped is Similarity with hub-column exclusion: columns whose
// degree exceeds maxColDegree are skipped. Hub columns (shared variables,
// boundary conditions, graph super-nodes) connect nearly every row pair, so
// they both densify S — turning the Σ_j d_j² construction quadratic — and
// add a near-uniform similarity component that carries no cluster
// information. Excluding them is the key implementation optimization that
// keeps S sparse and Bootes linear-scaling. maxColDegree ≤ 0 disables the
// cap.
func SimilarityCapped(a *CSR, maxColDegree int) *CSR {
	return SimilarityCappedWithCounts(a, maxColDegree, nil)
}

// SimilarityCappedWithCounts is SimilarityCapped for callers that already
// hold ColCounts(a) (the spectral pipeline computes them for the hub
// threshold); nil colCounts are computed on demand. Values are counted on
// the pattern of a, so counts of a and of a.Pattern() are interchangeable.
func SimilarityCappedWithCounts(a *CSR, maxColDegree int, colCounts []int) *CSR {
	s, err := SimilarityContext(context.Background(), a, maxColDegree, colCounts)
	if err != nil {
		// Dimensions are a·aᵀ by construction and the context cannot be
		// cancelled; failure is impossible.
		panic("sparse: internal similarity dimension error: " + err.Error())
	}
	return s
}

// SimilarityContext is SimilarityCappedWithCounts with cooperative
// cancellation: the two row-parallel passes stop launching chunks once ctx
// is done and the call returns ctx.Err(). Cancellation during pass one
// returns before the output index/value arrays are ever allocated, which is
// what bounds the memory a cancelled plan can pin.
func SimilarityContext(ctx context.Context, a *CSR, maxColDegree int, colCounts []int) (*CSR, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ap := a.Pattern()
	if maxColDegree > 0 {
		if colCounts == nil {
			colCounts = ColCounts(ap)
		}
		ap = DropHubColumnsWithCounts(ap, maxColDegree, colCounts)
	}
	at := Transpose(ap)
	return spgemmCount(ctx, ap, at)
}

// DropHubColumns returns a pattern copy of m with all entries in columns of
// degree > maxDeg removed.
func DropHubColumns(m *CSR, maxDeg int) *CSR {
	return DropHubColumnsWithCounts(m, maxDeg, ColCounts(m))
}

// DropHubColumnsWithCounts is DropHubColumns with the column degrees already
// computed, avoiding a redundant ColCounts walk. It counts surviving entries
// per row first, then fills disjoint pre-sized row regions in parallel.
func DropHubColumnsWithCounts(m *CSR, maxDeg int, counts []int) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols}
	out.RowPtr = make([]int64, m.Rows+1)
	keep := make([]int32, m.Rows)
	parallel.For(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := int32(0)
			for _, c := range m.Row(i) {
				if counts[c] <= maxDeg {
					n++
				}
			}
			keep[i] = n
		}
	})
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] = out.RowPtr[i] + int64(keep[i])
	}
	out.Col = make([]int32, out.RowPtr[m.Rows])
	parallel.For(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := out.RowPtr[i]
			for _, c := range m.Row(i) {
				if counts[c] <= maxDeg {
					out.Col[p] = c
					p++
				}
			}
		}
	})
	return out
}

// HubDegreeThreshold returns the default hub-exclusion threshold for a:
// several times the mean column degree, floored so tiny matrices keep all
// columns.
func HubDegreeThreshold(a *CSR) int {
	return HubDegreeThresholdFromCounts(ColCounts(a))
}

// HubDegreeThresholdFromCounts is HubDegreeThreshold on precomputed column
// degrees, letting the pipeline share one ColCounts walk between threshold
// selection and hub dropping.
func HubDegreeThresholdFromCounts(counts []int) int {
	nonEmpty := 0
	total := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
			total += c
		}
	}
	if nonEmpty == 0 {
		return 0
	}
	mean := float64(total) / float64(nonEmpty)
	thr := int(8 * mean)
	if thr < 32 {
		thr = 32
	}
	return thr
}

// rowGrain is the fixed row-chunk size of the parallel sparse kernels. It is
// a constant (never derived from the worker count) so chunk boundaries — and
// with them every merge order — are identical no matter how many workers run.
const rowGrain = 64

// spaScratch is the per-worker sparse-accumulator state of the similarity
// kernels, pooled at package level so repeated planner calls reuse the same
// buffers instead of reallocating per call. The mark array is stamped with a
// monotonic per-scratch generation counter: every row processed draws a fresh
// stamp, so stale marks — from earlier rows, earlier passes, or earlier
// calls — can never equal the current stamp and the arrays never need
// re-clearing. wordAcc (the bitset path's dense word accumulator) is instead
// kept all-zero between uses by its sole consumer.
type spaScratch struct {
	acc     []float64
	mark    []int64
	touched []int32
	wordAcc []uint64
	colAcc  []uint64
	next    int64
}

var spaPool sync.Pool

// getScratch returns a pooled scratch whose mark (and acc, wordAcc, colAcc
// when requested non-zero) arrays hold at least the given lengths. Fresh mark
// regions are initialized to -1, which no generation stamp ever equals.
func getScratch(markLen, accLen, wordLen, colWordLen int) *spaScratch {
	s, _ := spaPool.Get().(*spaScratch)
	if s == nil {
		s = &spaScratch{touched: make([]int32, 0, 256)}
	}
	if len(s.mark) < markLen {
		s.mark = make([]int64, markLen)
		for i := range s.mark {
			s.mark[i] = -1
		}
	}
	if len(s.acc) < accLen {
		s.acc = make([]float64, accLen)
	}
	if len(s.wordAcc) < wordLen {
		s.wordAcc = make([]uint64, wordLen)
	}
	if len(s.colAcc) < colWordLen {
		s.colAcc = make([]uint64, colWordLen)
	}
	return s
}

func putScratch(s *spaScratch) { spaPool.Put(s) }

// spgemmCount is SpGEMM specialized to binary inputs: the output value is
// the count of contributing k's, i.e. |row_i(A) ∩ row_j(Aᵀᵀ)| for S=A·Aᵀ.
//
// It runs two row-parallel passes over Gustavson's algorithm: pass one
// counts each output row's nnz, a serial prefix sum sizes RowPtr, and pass
// two recomputes each row's accumulator and writes the sorted indices and
// counts into its disjoint, pre-sized region of Col/Val. Workers touch
// disjoint output rows, so the result is bit-identical to the sequential
// order for any worker count — and the pre-sizing kills the per-row
// append churn of the old single-pass scheme.
func spgemmCount(ctx context.Context, a, b *CSR) (*CSR, error) {
	if a.Cols != b.Rows {
		return nil, ErrDimension
	}
	c := &CSR{Rows: a.Rows, Cols: b.Cols}
	c.RowPtr = make([]int64, a.Rows+1)
	c.Val = []float64{} // counts are values, even when empty

	// Pass 1: count nnz per output row (mark-only accumulator walk). Scratch
	// is returned via defer so an early exit (panic or cancellation between
	// chunks) never strands a buffer outside the pool.
	rowNNZ := make([]int64, a.Rows)
	err := parallel.ForContext(ctx, a.Rows, rowGrain, func(lo, hi int) {
		s := getScratch(b.Cols, 0, 0, 0)
		defer putScratch(s)
		for i := lo; i < hi; i++ {
			stamp := s.next
			s.next++
			n := int64(0)
			for _, k := range a.Row(i) {
				for _, j := range b.Row(int(k)) {
					if s.mark[j] != stamp {
						s.mark[j] = stamp
						n++
					}
				}
			}
			rowNNZ[i] = n
		}
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < a.Rows; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + rowNNZ[i]
	}
	c.Col = make([]int32, c.RowPtr[a.Rows])
	c.Val = make([]float64, c.RowPtr[a.Rows])

	// Pass 2: fill each row's pre-sized slice region. Each row draws a fresh
	// generation stamp, so pass-1 marks on a reused scratch can never collide.
	err = parallel.ForContext(ctx, a.Rows, rowGrain, func(lo, hi int) {
		s := getScratch(b.Cols, b.Cols, 0, 0)
		defer putScratch(s)
		for i := lo; i < hi; i++ {
			stamp := s.next
			s.next++
			s.touched = s.touched[:0]
			for _, k := range a.Row(i) {
				for _, j := range b.Row(int(k)) {
					if s.mark[j] != stamp {
						s.mark[j] = stamp
						s.acc[j] = 0
						s.touched = append(s.touched, j)
					}
					s.acc[j]++
				}
			}
			slices.Sort(s.touched)
			p := c.RowPtr[i]
			for _, j := range s.touched {
				c.Col[p] = j
				c.Val[p] = s.acc[j]
				p++
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// EstimateSimilarityNNZ returns a deterministic upper bound on nnz(S) for
// S = Ā·Āᵀ under hub exclusion, computed from column degrees alone:
// Σ_j d_j² over surviving columns, saturated at rows². The planner's memory
// budget compares this bound against its cap *before* any similarity storage
// is allocated. maxColDegree ≤ 0 keeps every column; nil colCounts are
// computed on demand.
func EstimateSimilarityNNZ(a *CSR, maxColDegree int, colCounts []int) int64 {
	if colCounts == nil {
		colCounts = ColCounts(a)
	}
	full := int64(a.Rows) * int64(a.Rows)
	var est int64
	for _, d := range colCounts {
		if maxColDegree > 0 && d > maxColDegree {
			continue
		}
		est += int64(d) * int64(d)
		if est >= full {
			return full
		}
	}
	return est
}

// IntersectionSize returns |cols(row i) ∩ cols(row j)| for two rows of m,
// by merging the two sorted index lists.
func IntersectionSize(m *CSR, i, j int) int {
	a, b := m.Row(i), m.Row(j)
	n, p, q := 0, 0, 0
	for p < len(a) && q < len(b) {
		switch {
		case a[p] < b[q]:
			p++
		case a[p] > b[q]:
			q++
		default:
			n++
			p++
			q++
		}
	}
	return n
}

// Jaccard returns the Jaccard similarity |∩|/|∪| of the column supports of
// rows i and j (0 when both rows are empty). Hier's merging criterion.
func Jaccard(m *CSR, i, j int) float64 {
	inter := IntersectionSize(m, i, j)
	union := m.RowNNZ(i) + m.RowNNZ(j) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
