package sparse

import "sort"

// Similarity computes the row-similarity matrix S = Ā·Āᵀ where Ā is the
// binary pattern of A. Entry S[i,j] is the number of column coordinates rows
// i and j share; the diagonal S[i,i] equals nnz(row i). This is the matrix
// Bootes' spectral clustering operates on (Algorithm 4, line 12).
//
// The computation walks A column by column through Aᵀ, so its cost is
// Σ_j d_j² where d_j is the number of nonzeros in column j of A — the first
// term of Bootes' complexity in Table 2 of the paper.
func Similarity(a *CSR) *CSR {
	return SimilarityCapped(a, 0)
}

// SimilarityCapped is Similarity with hub-column exclusion: columns whose
// degree exceeds maxColDegree are skipped. Hub columns (shared variables,
// boundary conditions, graph super-nodes) connect nearly every row pair, so
// they both densify S — turning the Σ_j d_j² construction quadratic — and
// add a near-uniform similarity component that carries no cluster
// information. Excluding them is the key implementation optimization that
// keeps S sparse and Bootes linear-scaling. maxColDegree ≤ 0 disables the
// cap.
func SimilarityCapped(a *CSR, maxColDegree int) *CSR {
	ap := a.Pattern()
	if maxColDegree > 0 {
		ap = DropHubColumns(ap, maxColDegree)
	}
	at := Transpose(ap)
	s, err := spgemmCount(ap, at)
	if err != nil {
		// Dimensions are a·aᵀ by construction; failure is impossible.
		panic("sparse: internal similarity dimension error: " + err.Error())
	}
	return s
}

// DropHubColumns returns a pattern copy of m with all entries in columns of
// degree > maxDeg removed.
func DropHubColumns(m *CSR, maxDeg int) *CSR {
	counts := ColCounts(m)
	out := &CSR{Rows: m.Rows, Cols: m.Cols}
	out.RowPtr = make([]int64, m.Rows+1)
	out.Col = make([]int32, 0, len(m.Col))
	for i := 0; i < m.Rows; i++ {
		for _, c := range m.Row(i) {
			if counts[c] <= maxDeg {
				out.Col = append(out.Col, c)
			}
		}
		out.RowPtr[i+1] = int64(len(out.Col))
	}
	return out
}

// HubDegreeThreshold returns the default hub-exclusion threshold for a:
// several times the mean column degree, floored so tiny matrices keep all
// columns.
func HubDegreeThreshold(a *CSR) int {
	nonEmpty := 0
	counts := ColCounts(a)
	total := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
			total += c
		}
	}
	if nonEmpty == 0 {
		return 0
	}
	mean := float64(total) / float64(nonEmpty)
	thr := int(8 * mean)
	if thr < 32 {
		thr = 32
	}
	return thr
}

// spgemmCount is SpGEMM specialized to binary inputs: the output value is
// the count of contributing k's, i.e. |row_i(A) ∩ row_j(Aᵀᵀ)| for S=A·Aᵀ.
func spgemmCount(a, b *CSR) (*CSR, error) {
	if a.Cols != b.Rows {
		return nil, ErrDimension
	}
	c := &CSR{Rows: a.Rows, Cols: b.Cols}
	c.RowPtr = make([]int64, a.Rows+1)
	c.Val = []float64{} // counts are values, even when empty
	acc := make([]float64, b.Cols)
	mark := make([]int64, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	touched := make([]int32, 0, 256)
	for i := 0; i < a.Rows; i++ {
		touched = touched[:0]
		for _, k := range a.Row(i) {
			for _, j := range b.Row(int(k)) {
				if mark[j] != int64(i) {
					mark[j] = int64(i)
					acc[j] = 0
					touched = append(touched, j)
				}
				acc[j]++
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		for _, j := range touched {
			c.Col = append(c.Col, j)
			c.Val = append(c.Val, acc[j])
		}
		c.RowPtr[i+1] = int64(len(c.Col))
	}
	return c, nil
}

// IntersectionSize returns |cols(row i) ∩ cols(row j)| for two rows of m,
// by merging the two sorted index lists.
func IntersectionSize(m *CSR, i, j int) int {
	a, b := m.Row(i), m.Row(j)
	n, p, q := 0, 0, 0
	for p < len(a) && q < len(b) {
		switch {
		case a[p] < b[q]:
			p++
		case a[p] > b[q]:
			q++
		default:
			n++
			p++
			q++
		}
	}
	return n
}

// Jaccard returns the Jaccard similarity |∩|/|∪| of the column supports of
// rows i and j (0 when both rows are empty). Hier's merging criterion.
func Jaccard(m *CSR, i, j int) float64 {
	inter := IntersectionSize(m, i, j)
	union := m.RowNNZ(i) + m.RowNNZ(j) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
