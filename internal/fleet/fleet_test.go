package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bootes/internal/plancache"
	"bootes/internal/planserve"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func testMatrix(t testing.TB, seed int64) *sparse.CSR {
	t.Helper()
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 48, Cols: 48, Density: 0.08, Seed: seed, Groups: 4,
	})
}

func mmBody(t testing.TB, m *sparse.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countingPlan is a fast healthy pipeline that counts fleet-wide computes.
func countingPlan(computes *atomic.Int64) planserve.PlanFunc {
	return func(_ context.Context, m *sparse.CSR, _ int) (*reorder.Result, error) {
		computes.Add(1)
		perm := make(sparse.Permutation, m.Rows)
		for i := range perm {
			perm[i] = int32(m.Rows - 1 - i)
		}
		return &reorder.Result{
			Perm:      perm,
			Reordered: true,
			Extra:     map[string]float64{"k": 8},
		}, nil
	}
}

func postPlan(t testing.TB, client *http.Client, url string, body []byte) (*http.Response, planserve.PlanResponse) {
	t.Helper()
	resp, err := client.Post(url+"/v1/plan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/v1/plan: %v", url, err)
	}
	defer resp.Body.Close()
	var pr planserve.PlanResponse
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatalf("decoding plan response: %v\n%s", err, data)
		}
	}
	return resp, pr
}

// TestClusterComputesOncePerKey: the same matrix posted through every node
// is computed exactly once fleet-wide — forwarding sends all three requests
// to the owner, whose cache and coalescing absorb the repeats.
func TestClusterComputesOncePerKey(t *testing.T) {
	var computes atomic.Int64
	c, err := LaunchCluster(3, ClusterOptions{
		Plan:          countingPlan(&computes),
		Dir:           t.TempDir(),
		ProbeInterval: 50 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()

	body := mmBody(t, testMatrix(t, 1))
	owner := c.Nodes[0].Router().Ring().Owner(keyMust(t, body))
	for i, nd := range c.Nodes {
		resp, pr := postPlan(t, client, nd.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d", i, resp.StatusCode)
		}
		if !pr.Reordered {
			t.Fatalf("node %d: plan not reordered", i)
		}
		if served := resp.Header.Get(ServedByHeader); nd.URL != owner && served != owner {
			t.Errorf("node %d: served by %q, want owner %q", i, served, owner)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("fleet computed the plan %d times, want exactly 1", n)
	}
}

func keyMust(t testing.TB, body []byte) string {
	t.Helper()
	key, ok := keyOf(body)
	if !ok {
		t.Fatal("test body did not parse as a matrix")
	}
	return key
}

// TestPeerFill: a node that receives a pre-forwarded request (router
// bypassed) for a key a sibling has cached serves it by peer fill, without
// running its own pipeline.
func TestPeerFill(t *testing.T) {
	var computes atomic.Int64
	c, err := LaunchCluster(3, ClusterOptions{
		Plan:          countingPlan(&computes),
		Dir:           t.TempDir(),
		ProbeInterval: 50 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()

	body := mmBody(t, testMatrix(t, 2))
	key := keyMust(t, body)
	owner := c.Nodes[0].Router().Ring().Owner(key)
	var ownerNode, otherNode *Node
	for _, nd := range c.Nodes {
		if nd.URL == owner {
			ownerNode = nd
		} else {
			otherNode = nd
		}
	}

	// Compute and cache on the owner.
	if resp, _ := postPlan(t, client, ownerNode.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming owner: status %d", resp.StatusCode)
	}
	if _, ok := ownerNode.Cache().Peek(key); !ok {
		t.Fatal("owner did not cache the plan")
	}

	// Hit a non-owner directly, marked as already forwarded so its router
	// serves locally; the local miss must fill from the owner's cache.
	req, _ := http.NewRequest(http.MethodPost, otherNode.URL+"/v1/plan", bytes.NewReader(body))
	req.Header.Set(ForwardedHeader, "1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr planserve.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if !pr.PeerFilled {
		t.Errorf("response not marked peerFilled: %+v", pr)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("fleet computed %d times, want 1 (fill, not recompute)", n)
	}
	if st := otherNode.Server().Stats(); st.PeerFills != 1 {
		t.Errorf("serving node PeerFills = %d, want 1", st.PeerFills)
	}
	// The fill replicated the entry locally: a second hit is a plain cache hit.
	if _, ok := otherNode.Cache().Peek(key); !ok {
		t.Error("peer-filled entry was not replicated into the local cache")
	}
}

// TestProbesMarkPeerDownAndRouteAround: killing a node flips it down in the
// survivors' health view, keys it owned are served by surviving replicas,
// and a restart brings it back up.
func TestProbesMarkPeerDownAndRouteAround(t *testing.T) {
	var computes atomic.Int64
	c, err := LaunchCluster(3, ClusterOptions{
		Plan:          countingPlan(&computes),
		Dir:           t.TempDir(),
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		DownAfter:     2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()

	victim := c.Nodes[0]
	victim.Kill()
	survivor := c.Nodes[1]
	waitFor(t, 5*time.Second, func() bool {
		for _, pv := range survivor.Router().Peers() {
			if pv.URL == victim.URL {
				return !pv.Up
			}
		}
		return false
	}, "survivor never marked the killed node down")

	// Find a matrix owned by the dead node; the fleet must still serve it.
	ring := survivor.Router().Ring()
	var body []byte
	for seed := int64(1); ; seed++ {
		b := mmBody(t, testMatrix(t, seed))
		if ring.Owner(keyMust(t, b)) == victim.URL {
			body = b
			break
		}
	}
	resp, pr := postPlan(t, client, survivor.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request owned by dead node: status %d", resp.StatusCode)
	}
	if !pr.Reordered {
		t.Fatal("plan not reordered")
	}

	if err := victim.Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, pv := range survivor.Router().Peers() {
			if pv.URL == victim.URL {
				return pv.Up
			}
		}
		return false
	}, "survivor never saw the restarted node come back up")
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

// routerHarness builds a Router whose "remote peers" are stub HTTP servers,
// plus a local stub handler — the unit bench for hedging and breaker tests.
type routerHarness struct {
	rt      *Router
	front   *httptest.Server
	localHi atomic.Int64
}

func newRouterHarness(t *testing.T, cfg Config, backends ...*httptest.Server) *routerHarness {
	t.Helper()
	h := &routerHarness{}
	self := "http://self.invalid"
	peers := []string{self}
	for _, b := range backends {
		peers = append(peers, b.URL)
	}
	cfg.Self = self
	cfg.Peers = peers
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.rt = rt
	local := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.localHi.Add(1)
		_, _ = io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, `{"servedBy":"local"}`)
	})
	h.front = httptest.NewServer(rt.Handler(local))
	t.Cleanup(h.front.Close)
	return h
}

// bodyOwnedBy searches seeds for a matrix whose key has the wanted replica
// preference order.
func bodyOwnedBy(t *testing.T, rt *Router, n int, want ...string) []byte {
	t.Helper()
	for seed := int64(1); seed < 10000; seed++ {
		b := mmBody(t, testMatrix(t, seed))
		reps := rt.Ring().Replicas(keyMust(t, b), n)
		if len(reps) != len(want) {
			continue
		}
		match := true
		for i := range want {
			if reps[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return b
		}
	}
	t.Fatal("no seed produced the wanted replica order")
	return nil
}

// TestHedgedForwardWinsOnSlowOwner: the owner stalls past HedgeAfter, the
// hedge fires at the next replica, and its response answers the client.
func TestHedgedForwardWinsOnSlowOwner(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			return
		}
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"servedBy":"slow"}`)
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"servedBy":"fast"}`)
	}))
	defer fast.Close()

	h := newRouterHarness(t, Config{
		Replicas:   3,
		HedgeAfter: 20 * time.Millisecond,
	}, slow, fast)
	body := bodyOwnedBy(t, h.rt, 2, slow.URL, fast.URL)

	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()
	resp, err := client.Post(h.front.URL+"/v1/plan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(data, []byte("fast")) {
		t.Fatalf("response %q did not come from the hedge target", data)
	}
	if got := resp.Header.Get(ServedByHeader); got != fast.URL {
		t.Errorf("%s = %q, want %q", ServedByHeader, got, fast.URL)
	}
	if n := h.rt.hedges.Value(); n != 1 {
		t.Errorf("hedges fired = %d, want 1", n)
	}
	if n := h.rt.hedgeWins.Value(); n != 1 {
		t.Errorf("hedge wins = %d, want 1", n)
	}
}

// TestForwardFailureFallsBackLocal: when every remote replica refuses, the
// receiving node serves the request itself rather than failing it.
func TestForwardFailureFallsBackLocal(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()

	h := newRouterHarness(t, Config{
		Replicas:   2,
		HedgeAfter: -1, // no hedging: isolate the fallback path
		DownAfter:  100,
	}, dead)
	// With 2 nodes and Replicas=2 every key's replica set is {dead, self} or
	// {self, ...}; find one owned by the dead backend.
	body := bodyOwnedBy(t, h.rt, 1, dead.URL)

	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()
	resp, err := client.Post(h.front.URL+"/v1/plan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte("local")) {
		t.Fatalf("status %d body %q, want a local response", resp.StatusCode, data)
	}
	if n := h.rt.localFallbacks.Value(); n != 1 {
		t.Errorf("local fallbacks = %d, want 1", n)
	}
	if n := h.localHi.Load(); n != 1 {
		t.Errorf("local handler hits = %d, want 1", n)
	}
}

// TestPerPeerBreakerStopsHammering: a persistently failing peer trips its
// breaker; subsequent requests stop reaching it until the cooldown.
func TestPerPeerBreakerStopsHammering(t *testing.T) {
	var hits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			return
		}
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()

	h := newRouterHarness(t, Config{
		Replicas:   2,
		HedgeAfter: -1,
		DownAfter:  100, // keep health out of the way; the breaker is under test
		Breaker:    planserve.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour},
	}, dead)
	body := bodyOwnedBy(t, h.rt, 1, dead.URL)

	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()
	for i := 0; i < 6; i++ {
		resp, err := client.Post(h.front.URL+"/v1/plan", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (local fallback must absorb peer failure)", i, resp.StatusCode)
		}
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("failing peer was hit %d times, want exactly FailureThreshold=3 before the breaker opened", n)
	}
	if n := h.localHi.Load(); n != 6 {
		t.Errorf("local handler hits = %d, want 6", n)
	}
}

// TestRedirectMode: route=redirect answers 307 with the owner's URL instead
// of proxying, preserving the request URI.
func TestRedirectMode(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	h := newRouterHarness(t, Config{Replicas: 1}, backend)
	body := bodyOwnedBy(t, h.rt, 1, backend.URL)

	client := &http.Client{
		Timeout:       10 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	defer client.CloseIdleConnections()
	resp, err := client.Post(h.front.URL+"/v1/plan?route=redirect&perm=1", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status %d, want 307", resp.StatusCode)
	}
	want := backend.URL + "/v1/plan?route=redirect&perm=1"
	if got := resp.Header.Get("Location"); got != want {
		t.Errorf("Location = %q, want %q", got, want)
	}
}

// TestFillSkipsDownPeersAndVerifiesKey: Fill ignores down peers and rejects
// an entry whose embedded key does not match the request.
func TestFillSkipsDownPeersAndVerifiesKey(t *testing.T) {
	var wrongKey atomic.Bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			return
		}
		e := &plancache.Entry{
			Key:       "deadbeef",
			Perm:      sparse.Permutation{1, 0},
			Reordered: true,
			K:         2,
		}
		if !wrongKey.Load() {
			// Serve under whatever key was asked.
			e.Key = r.URL.Path[len("/v1/cache/"):]
		}
		data, err := plancache.EncodeEntry(e)
		if err != nil {
			t.Error(err)
		}
		_, _ = w.Write(data)
	}))
	defer backend.Close()

	h := newRouterHarness(t, Config{Replicas: 3}, backend)
	ctx := context.Background()
	if e, ok := h.rt.Fill(ctx, "somekey"); !ok || e == nil || e.Key != "somekey" {
		t.Fatalf("Fill = (%v, %v), want a matching entry", e, ok)
	}
	wrongKey.Store(true)
	if _, ok := h.rt.Fill(ctx, "otherkey"); ok {
		t.Error("Fill accepted an entry whose embedded key mismatched")
	}

	// Down peer: no fill, no request.
	p := h.rt.peers[backend.URL]
	p.mu.Lock()
	p.isUp = false
	p.mu.Unlock()
	if _, ok := h.rt.Fill(ctx, "somekey"); ok {
		t.Error("Fill consulted a down peer")
	}
}

// TestPeersEndpoint: the /v1/peers view lists every fleet member with self
// marked and health visible.
func TestPeersEndpoint(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	h := newRouterHarness(t, Config{Replicas: 2}, backend)

	resp, err := http.Get(h.front.URL + "/v1/peers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Self  string     `json:"self"`
		Peers []PeerView `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Self != "http://self.invalid" {
		t.Errorf("self = %q", view.Self)
	}
	if len(view.Peers) != 2 {
		t.Fatalf("%d peers listed, want 2", len(view.Peers))
	}
	var selfSeen, peerSeen bool
	for _, pv := range view.Peers {
		if pv.Self {
			selfSeen = true
			if !pv.Up {
				t.Error("self listed as down")
			}
		} else {
			peerSeen = true
			if pv.URL != backend.URL {
				t.Errorf("peer URL %q, want %q", pv.URL, backend.URL)
			}
		}
	}
	if !selfSeen || !peerSeen {
		t.Errorf("view missing rows: self=%v peer=%v", selfSeen, peerSeen)
	}
}

// TestConcurrentForwardsRace exercises the router's shared state under
// parallel traffic for the race detector.
func TestConcurrentForwardsRace(t *testing.T) {
	var computes atomic.Int64
	c, err := LaunchCluster(3, ClusterOptions{
		Plan:          countingPlan(&computes),
		Dir:           t.TempDir(),
		ProbeInterval: 20 * time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()

	bodies := [][]byte{
		mmBody(t, testMatrix(t, 10)),
		mmBody(t, testMatrix(t, 11)),
		mmBody(t, testMatrix(t, 12)),
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				nd := c.Nodes[(w+i)%len(c.Nodes)]
				resp, err := client.Post(nd.URL+"/v1/plan", "application/octet-stream",
					bytes.NewReader(bodies[(w+i)%len(bodies)]))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := computes.Load(); n != 3 {
		t.Errorf("fleet computed %d plans for 3 distinct matrices, want 3", n)
	}
}
