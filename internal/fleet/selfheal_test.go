package fleet

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// nodeByURL maps a ring member name back to its cluster node.
func nodeByURL(t testing.TB, c *Cluster, url string) *Node {
	t.Helper()
	for _, nd := range c.Nodes {
		if nd.URL == url {
			return nd
		}
	}
	t.Fatalf("no node with URL %s", url)
	return nil
}

// TestSelfHealReplicationKillRecover is the fleet-level self-healing
// integration: fresh plans replicate synchronously across their replica set;
// writes during a replica's outage park as hints; the restarted replica
// warms up, receives its hints, and converges to its exact owned key set —
// all without a single recompute.
func TestSelfHealReplicationKillRecover(t *testing.T) {
	var computes atomic.Int64
	c, err := LaunchCluster(3, ClusterOptions{
		Plan:           countingPlan(&computes),
		Dir:            t.TempDir(),
		SelfHeal:       true,
		RepairInterval: 50 * time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		WarmupDeadline: 3 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()

	const replicas = 2 // fleet default
	ringOf := c.Nodes[0].Router().Ring()

	// Synchronous replication only targets peers the router sees as up; wait
	// for every node to hold a full up-view before asserting on it.
	allUp := func(except string) func() bool {
		return func() bool {
			for _, nd := range c.Nodes {
				if nd.URL == except || !nd.Alive() {
					continue
				}
				for _, peer := range c.URLs() {
					if peer == except {
						continue
					}
					if rt := nd.Router(); rt == nil || !rt.PeerUp(peer) {
						return false
					}
				}
			}
			return true
		}
	}
	waitFor(t, 5*time.Second, allUp(""), "fleet never reached a mutual up-view")

	// Phase 1: plans written with the whole fleet up replicate synchronously.
	keys := map[string]bool{}
	post := func(seed int64, via *Node) string {
		t.Helper()
		body := mmBody(t, testMatrix(t, seed))
		resp, _ := postPlan(t, client, via.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		key := keyMust(t, body)
		keys[key] = true
		return key
	}
	for seed := int64(1); seed <= 6; seed++ {
		post(seed, c.Nodes[int(seed)%3])
	}
	for key := range keys {
		for _, rep := range ringOf.Replicas(key, replicas) {
			if _, ok := nodeByURL(t, c, rep).Cache().Stat(key); !ok {
				t.Fatalf("key %s missing on replica %s right after the write", key, rep)
			}
		}
	}
	baseline := computes.Load()
	if baseline != 6 {
		t.Fatalf("computed %d plans for 6 distinct matrices", baseline)
	}

	// Phase 2: kill one node; once the survivors mark it down, keep writing.
	victim := c.Nodes[2]
	survivors := []*Node{c.Nodes[0], c.Nodes[1]}
	victim.Kill()
	for _, nd := range survivors {
		rt := nd.Router()
		waitFor(t, 5*time.Second, func() bool { return !rt.PeerUp(victim.URL) },
			"survivor never marked the killed node down")
	}
	for seed := int64(7); seed <= 12; seed++ {
		post(seed, survivors[int(seed)%2])
	}
	if n := computes.Load(); n != 12 {
		t.Fatalf("computed %d plans for 12 distinct matrices", n)
	}

	// Every key owned by the victim must be parked as a hint somewhere.
	victimOwned := 0
	for key := range keys {
		if ringOf.OwnedBy(key, victim.URL, replicas) {
			victimOwned++
		}
	}
	if victimOwned == 0 {
		t.Skip("no key landed on the victim's ranges; seed set too small")
	}

	// Phase 3: restart. Warm-up runs inside Restart, so by the time it
	// returns the victim has pulled what its replicas held; hint delivery
	// from the survivors follows their probe loops.
	if err := victim.Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, nd := range survivors {
			if h := nd.Healer(); h == nil || h.HintsPending() != 0 {
				return false
			}
		}
		return true
	}, "hints not drained after the victim recovered")
	waitFor(t, 10*time.Second, func() bool {
		for key := range keys {
			if !ringOf.OwnedBy(key, victim.URL, replicas) {
				continue
			}
			if _, ok := victim.Cache().Stat(key); !ok {
				return false
			}
		}
		return true
	}, "restarted node never converged to its owned key set")

	// Convergence used replication only: the pipeline never re-ran.
	if n := computes.Load(); n != 12 {
		t.Fatalf("recovery recomputed plans: %d computes, want 12", n)
	}

	// Digest agreement: every replica of every key holds identical bytes.
	for key := range keys {
		reps := ringOf.Replicas(key, replicas)
		first, ok := nodeByURL(t, c, reps[0]).Cache().Stat(key)
		if !ok {
			t.Fatalf("key %s missing on primary %s", key, reps[0])
		}
		for _, rep := range reps[1:] {
			st, ok := nodeByURL(t, c, rep).Cache().Stat(key)
			if !ok || st != first {
				t.Fatalf("replica digest mismatch for %s on %s: %+v vs %+v", key, rep, st, first)
			}
		}
	}
}
