// In-process fleet harness: LaunchCluster stands up N full bootesd-shaped
// nodes (plan cache + planserve + fleet router) on real loopback listeners,
// with kill/restart — the substrate for the fleet-partition chaos scenario,
// cmd/loadgen -spawn, and the fleet tests. Real TCP rather than
// httptest.Server internals so forwarding, hedging, and cache fills exercise
// the same client paths production does.

package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bootes/internal/antientropy"
	"bootes/internal/obs"
	"bootes/internal/plancache"
	"bootes/internal/planserve"
)

// ClusterOptions configures LaunchCluster.
type ClusterOptions struct {
	// Plan is the planning pipeline every node runs (required).
	Plan planserve.PlanFunc
	// Dir is the parent directory for per-node cache directories (required;
	// node i caches under Dir/node<i>). Restarting a node reopens the same
	// directory — the crash-safe cache is part of what the harness exercises.
	Dir string
	// Replicas, Vnodes, HedgeAfter, ProbeInterval, ProbeTimeout, DownAfter
	// flow into each node's fleet.Config (zero values take fleet defaults).
	Replicas      int
	Vnodes        int
	HedgeAfter    time.Duration
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	DownAfter     int
	// MaxInFlight bounds each node's concurrent pipelines (default 4).
	MaxInFlight int
	// Breaker is each node's pipeline breaker (zero disables).
	Breaker planserve.BreakerConfig
	// Seed feeds each node's planserve jitter (node i gets Seed+i).
	Seed int64
	// SelfHeal enables the anti-entropy healer on every node: synchronous
	// replication of fresh plans across the replica set, hinted handoff for
	// down replicas, digest-exchange repair, warm-up on restart, drain push
	// on Close, and the background scrubber.
	SelfHeal bool
	// RepairInterval / ScrubInterval pace the healer's loops (zero takes the
	// antientropy defaults; chaos runs them at millisecond scale).
	RepairInterval time.Duration
	ScrubInterval  time.Duration
	// WarmupDeadline bounds the pre-ready warm-up on start/restart (only
	// with SelfHeal; zero takes 5s).
	WarmupDeadline time.Duration
	// Logf sinks node diagnostics; nil discards (cluster logs are noisy).
	Logf func(format string, args ...any)
}

// Node is one in-process fleet member.
type Node struct {
	// URL is the node's advertised address (http://127.0.0.1:port), fixed
	// across restarts.
	URL string

	opts  ClusterOptions
	peers []string
	dir   string
	seed  int64
	logf  func(string, ...any)

	mu     sync.Mutex
	srv    *planserve.Server
	router *Router
	cache  *plancache.Cache
	healer *antientropy.Healer
	http   *http.Server
	reg    *obs.Registry
	alive  bool
}

// Cluster is a set of in-process nodes on one ring.
type Cluster struct {
	Nodes []*Node
}

// LaunchCluster builds and starts n nodes. Listeners are bound first so
// every node knows the full peer list before any serves.
func LaunchCluster(n int, opts ClusterOptions) (*Cluster, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("fleet: ClusterOptions.Plan is required")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("fleet: ClusterOptions.Dir is required")
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	c := &Cluster{}
	for i, ln := range listeners {
		node := &Node{
			URL:   peers[i],
			opts:  opts,
			peers: peers,
			dir:   filepath.Join(opts.Dir, fmt.Sprintf("node%d", i)),
			seed:  opts.Seed + int64(i),
			logf:  opts.Logf,
		}
		// First launch of the whole fleet: every peer is empty and later
		// nodes are not yet serving, so the join warm-up is skipped.
		// Restart is the warm-up path.
		if err := node.start(ln, false); err != nil {
			c.Close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// start assembles the node's stack on ln and begins serving. warm runs the
// pre-ready warm-up (rejoin); the cluster's first launch skips it — every
// peer is empty and some are not serving yet.
func (nd *Node) start(ln net.Listener, warm bool) error {
	if err := os.MkdirAll(nd.dir, 0o755); err != nil {
		return err
	}
	cache, err := plancache.Open(nd.dir)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	router, err := New(Config{
		Self:          nd.URL,
		Peers:         nd.peers,
		Replicas:      nd.opts.Replicas,
		Vnodes:        nd.opts.Vnodes,
		HedgeAfter:    nd.opts.HedgeAfter,
		ProbeInterval: nd.opts.ProbeInterval,
		ProbeTimeout:  nd.opts.ProbeTimeout,
		DownAfter:     nd.opts.DownAfter,
		Metrics:       reg,
		Logf:          nd.logf,
	})
	if err != nil {
		return err
	}
	var healer *antientropy.Healer
	if nd.opts.SelfHeal {
		healer, err = antientropy.New(antientropy.Config{
			Cache:          cache,
			Ring:           router.Ring,
			Self:           nd.URL,
			Replicas:       nd.opts.Replicas,
			PeerUp:         router.PeerUp,
			RepairInterval: nd.opts.RepairInterval,
			ScrubInterval:  nd.opts.ScrubInterval,
			Metrics:        reg,
			Logf:           nd.logf,
		})
		if err != nil {
			return err
		}
		router.SetOnPeerUp(healer.NotifyPeerUp)
	}
	cfg := planserve.Config{
		Plan:        nd.opts.Plan,
		Cache:       cache,
		MaxInFlight: nd.opts.MaxInFlight,
		Breaker:     nd.opts.Breaker,
		PeerFill:    router.Fill,
		Seed:        nd.seed,
		Metrics:     reg,
		Logf:        nd.logf,
	}
	if healer != nil {
		cfg.Replicate = healer.Replicate
		cfg.Heal = healer
	}
	srv, err := planserve.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: router.Handler(srv.Handler())}
	nd.mu.Lock()
	nd.srv, nd.router, nd.cache, nd.healer, nd.http, nd.reg = srv, router, cache, healer, httpSrv, reg
	nd.alive = true
	nd.mu.Unlock()
	warmup := healer != nil && warm
	if warmup {
		// Flag warming before the listener serves its first request: there
		// must be no window where /readyz answers 200 with the owned ranges
		// still unfetched.
		srv.SetWarming(true)
	}
	router.Start()
	go func() { _ = httpSrv.Serve(ln) }()
	if healer != nil {
		if warmup {
			// Warm-up before readiness: stream this node's owned keys from
			// its current replicas while /readyz answers 503, bounded by the
			// warm-up deadline. Synchronous — when start returns, the node
			// has converged as far as its replicas allow.
			deadline := nd.opts.WarmupDeadline
			if deadline <= 0 {
				deadline = 5 * time.Second
			}
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			if n := healer.Warmup(ctx); n > 0 {
				nd.logf("fleet: node %s warmed %d entries before ready", nd.URL, n)
			}
			cancel()
			srv.SetWarming(false)
		}
		healer.Start()
	}
	return nil
}

// Kill abruptly stops the node (no drain): the listener and all connections
// close mid-flight, as a crash would. The cache directory survives. Safe to
// call on a dead node.
func (nd *Node) Kill() {
	nd.mu.Lock()
	alive := nd.alive
	nd.alive = false
	httpSrv, router, healer := nd.http, nd.router, nd.healer
	nd.mu.Unlock()
	if !alive {
		return
	}
	router.Stop()
	if healer != nil {
		// The process dies; its goroutines must still join (leakcheck). Parked
		// hints survive on disk — that is the point of hints.
		healer.Stop()
	}
	_ = httpSrv.Close()
}

// Restart brings a killed node back on its original address, reopening the
// cache directory the way a restarted bootesd would.
func (nd *Node) Restart() error {
	nd.mu.Lock()
	alive := nd.alive
	nd.mu.Unlock()
	if alive {
		return fmt.Errorf("fleet: node %s is already running", nd.URL)
	}
	addr := nd.URL[len("http://"):]
	var ln net.Listener
	var err error
	// The old listener's port can linger in TIME_WAIT for a moment after an
	// abrupt close; retry briefly rather than failing the restart.
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("fleet: rebinding %s: %w", addr, err)
	}
	return nd.start(ln, true)
}

// Alive reports whether the node is serving.
func (nd *Node) Alive() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.alive
}

// Server returns the node's current planserve server (nil while killed).
func (nd *Node) Server() *planserve.Server {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if !nd.alive {
		return nil
	}
	return nd.srv
}

// Router returns the node's current fleet router (nil while killed).
func (nd *Node) Router() *Router {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if !nd.alive {
		return nil
	}
	return nd.router
}

// Healer returns the node's anti-entropy healer (nil while killed or when
// SelfHeal is off).
func (nd *Node) Healer() *antientropy.Healer {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if !nd.alive {
		return nil
	}
	return nd.healer
}

// Cache returns the node's plan cache handle (nil while killed). The
// directory outlives kills; the handle does not.
func (nd *Node) Cache() *plancache.Cache {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if !nd.alive {
		return nil
	}
	return nd.cache
}

// Close gracefully shuts the node down: drain planserve, push solely-held
// cache entries to the surviving replicas (self-healing drain), stop the
// router and healer, close the listener. Used at cluster teardown (Kill is
// the chaos path).
func (nd *Node) Close(ctx context.Context) error {
	nd.mu.Lock()
	alive := nd.alive
	nd.alive = false
	srv, router, healer, httpSrv := nd.srv, nd.router, nd.healer, nd.http
	nd.mu.Unlock()
	if !alive {
		return nil
	}
	err := srv.Shutdown(ctx)
	if healer != nil {
		// Push before the listener closes: the receiving replicas' PUTs ride
		// connections that need this node only as a client, but peers may
		// still be pulling digests from us mid-push.
		healer.DrainPush(ctx)
		healer.Stop()
	}
	router.Stop()
	if herr := httpSrv.Shutdown(ctx); err == nil {
		err = herr
	}
	return err
}

// Close tears the whole cluster down, gracefully, concurrently.
func (c *Cluster) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, nd := range c.Nodes {
		wg.Add(1)
		go func(nd *Node) {
			defer wg.Done()
			_ = nd.Close(ctx)
		}(nd)
	}
	wg.Wait()
}

// URLs returns every node's advertised address, in launch order.
func (c *Cluster) URLs() []string {
	out := make([]string, len(c.Nodes))
	for i, nd := range c.Nodes {
		out[i] = nd.URL
	}
	return out
}
