// Package fleet shards plan serving across a set of bootesd peers with a
// consistent-hash ring (internal/ring) over the content-addressed MatrixKey.
//
// The Router wraps a node's planserve handler with three fleet behaviors:
//
//   - Forward-to-owner: a POST /v1/plan whose key this node does not own is
//     proxied to the key's owner, so every key's plan is computed and cached
//     on a deterministic replica set instead of wherever a client happened to
//     connect. Forwarded requests carry an X-Bootes-Forwarded header; the
//     receiving node serves them locally (no forwarding loops by
//     construction).
//   - Failure awareness: a background prober walks every peer's /readyz; a
//     peer that fails DownAfter consecutive probes (or live forwards) is
//     routed around until it probes healthy again. Each peer also gets its
//     own planserve circuit breaker, so a flapping peer is skipped for a
//     cooldown rather than hammered.
//   - Hedged retries: when the owner has not answered within HedgeAfter, one
//     duplicate request is fired at the next up replica and the first
//     acceptable response wins (bounded at one hedge — tail-latency
//     insurance, not a retry storm). If every remote candidate fails, the
//     node falls back to serving locally: availability beats placement.
//
// The Fill method is the peer cache-fill hook for planserve.Config.PeerFill:
// on a local cache miss the key's replica set is asked (GET /v1/cache/{key})
// before the pipeline burns a slot recomputing a plan a sibling already
// holds.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"bootes/internal/obs"
	"bootes/internal/plancache"
	"bootes/internal/planserve"
	"bootes/internal/ring"
	"bootes/internal/sparse"
)

// ForwardedHeader marks a request already routed by a peer; the receiver
// serves it locally. One hop maximum, by construction.
const ForwardedHeader = "X-Bootes-Forwarded"

// ServedByHeader names the node that produced a proxied response.
const ServedByHeader = "X-Bootes-Served-By"

// Config assembles a Router.
type Config struct {
	// Self is this node's advertised URL; must be one of Peers.
	Self string
	// Peers is every fleet member's URL, including Self. Order is
	// irrelevant: the ring sorts.
	Peers []string
	// Replicas is the replica-set size per key (default 2, clamped to the
	// fleet size). The owner is replica 0.
	Replicas int
	// Vnodes is the ring's virtual-node count (default ring.DefaultVnodes).
	Vnodes int
	// HedgeAfter is how long to wait on the owner before firing one hedged
	// duplicate at the next up replica (default 250ms; <0 disables hedging).
	HedgeAfter time.Duration
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (default 1s).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive-failure count (probes or live traffic)
	// that marks a peer down (default 2).
	DownAfter int
	// Breaker is the per-peer circuit breaker config; a zero
	// FailureThreshold defaults to 3 failures / 5s cooldown. It reuses the
	// planserve breaker machinery.
	Breaker planserve.BreakerConfig
	// MaxBodyBytes bounds how much request body the router buffers for
	// routing (default 256 MB, matching planserve's upload cap).
	MaxBodyBytes int64
	// Client is the HTTP client for forwards, fills, and probes; nil builds
	// one with sane timeouts.
	Client *http.Client
	// Metrics is the registry fleet counters register on; nil uses a private
	// registry.
	Metrics *obs.Registry
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// Logf sinks routing diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// peerState is one remote peer's health view.
type peerState struct {
	url     string
	breaker *planserve.Breaker
	up      *obs.Gauge // 1 up, 0 down; the exposition view

	mu          sync.Mutex
	isUp        bool
	consecFails int
	lastErr     string
}

func (p *peerState) noteSuccess() (wentUp bool) {
	p.mu.Lock()
	p.consecFails = 0
	p.lastErr = ""
	if !p.isUp {
		p.isUp = true
		wentUp = true
	}
	p.up.Set(1)
	p.mu.Unlock()
	return wentUp
}

func (p *peerState) noteFailure(downAfter int, reason string) (wentDown bool) {
	p.mu.Lock()
	p.consecFails++
	p.lastErr = reason
	if p.isUp && p.consecFails >= downAfter {
		p.isUp = false
		wentDown = true
	}
	if !p.isUp {
		p.up.Set(0)
	}
	p.mu.Unlock()
	return wentDown
}

func (p *peerState) upNow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.isUp
}

// Router implements fleet routing for one node. Build with New, start the
// prober with Start, wrap the node's handler with Handler, and hand Fill to
// planserve.Config.PeerFill.
type Router struct {
	cfg    Config
	ring   *ring.Ring
	peers  map[string]*peerState // remote peers only; Self is implicit
	client *http.Client
	reg    *obs.Registry

	stop chan struct{}
	wg   sync.WaitGroup

	// onPeerUp, when set, is called with a peer's URL each time this node's
	// health view of it transitions down→up (probe or live traffic). The
	// anti-entropy healer hooks it to deliver parked hints the moment a
	// crashed replica returns. Set once during assembly via SetOnPeerUp;
	// called from prober and request goroutines, so it must be cheap and
	// non-blocking.
	onPeerUpMu sync.Mutex
	onPeerUp   func(peer string)

	probes, probeFails     *obs.Counter
	forwards, forwardFails *obs.Counter
	hedges, hedgeWins      *obs.Counter
	fills, fillMisses      *obs.Counter
	localFallbacks         *obs.Counter
	redirects              *obs.Counter
	transitions            *obs.CounterVec
	probeLatency           *obs.Histogram
	peerUp                 *obs.GaugeVec
}

// New validates cfg and builds the router. Every peer starts up: traffic
// flows immediately and the prober demotes the actually-dead ones within
// DownAfter probe rounds.
func New(cfg Config) (*Router, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("fleet: Config.Self is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 250 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.Breaker.FailureThreshold <= 0 {
		cfg.Breaker = planserve.BreakerConfig{FailureThreshold: 3, Cooldown: 5 * time.Second}
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	r, err := ring.New(cfg.Peers, cfg.Vnodes)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if !r.Contains(cfg.Self) {
		return nil, fmt.Errorf("fleet: self %q is not in the peer list", cfg.Self)
	}
	rt := &Router{
		cfg:    cfg,
		ring:   r,
		peers:  make(map[string]*peerState),
		client: cfg.Client,
		stop:   make(chan struct{}),
	}
	rt.registerMetrics(cfg.Metrics)
	for _, peer := range r.Nodes() {
		if peer == cfg.Self {
			continue
		}
		p := &peerState{
			url:     peer,
			breaker: planserve.NewBreaker(cfg.Breaker, cfg.Now),
			up:      rt.peerUp.With(peer),
			isUp:    true,
		}
		p.up.Set(1)
		rt.peers[peer] = p
	}
	return rt, nil
}

func (rt *Router) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt.reg = reg
	rt.probes = reg.Counter("bootes_fleet_probes_total", "Peer health probes sent.")
	rt.probeFails = reg.Counter("bootes_fleet_probe_failures_total", "Peer health probes that failed.")
	rt.forwards = reg.Counter("bootes_fleet_forwards_total", "Plan requests forwarded to a replica.")
	rt.forwardFails = reg.Counter("bootes_fleet_forward_failures_total", "Forward attempts that failed (transport error or 5xx).")
	rt.hedges = reg.Counter("bootes_fleet_hedges_total", "Hedged duplicate requests fired at the next replica.")
	rt.hedgeWins = reg.Counter("bootes_fleet_hedge_wins_total", "Hedged requests that answered before the primary.")
	rt.fills = reg.Counter("bootes_fleet_peer_fills_total", "Cache entries fetched from a sibling's cache.")
	rt.fillMisses = reg.Counter("bootes_fleet_peer_fill_misses_total", "Peer cache-fill rounds that found no sibling copy.")
	rt.localFallbacks = reg.Counter("bootes_fleet_local_fallbacks_total", "Requests served locally after every remote replica failed.")
	rt.redirects = reg.Counter("bootes_fleet_redirects_total", "Clients redirected to the owning node (route=redirect).")
	rt.transitions = reg.CounterVec("bootes_fleet_peer_transitions_total",
		"Peer health-state transitions as seen by this node; a flapping peer shows both directions climbing.", "to")
	rt.probeLatency = reg.Histogram("bootes_fleet_probe_latency_seconds",
		"Round-trip time of peer /readyz health probes.", probeLatencyBuckets)
	rt.peerUp = reg.GaugeVec("bootes_fleet_peer_up", "Peer health as seen by this node: 1 up, 0 down.", "peer")
	reg.GaugeFunc("bootes_fleet_ring_nodes", "Nodes on the consistent-hash ring.", func() int64 {
		return int64(rt.ring.Len())
	})
}

// probeLatencyBuckets spans loopback probes through WAN round trips; the
// ProbeTimeout default (1s) caps the histogram's reach.
var probeLatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Ring exposes the router's ring (clients and tests route against the same
// assignments this node uses).
func (rt *Router) Ring() *ring.Ring { return rt.ring }

// PeerUp reports this node's current health view of peer. Self is always up
// (a node that can ask is serving); unknown peers are down.
func (rt *Router) PeerUp(peer string) bool {
	if peer == rt.cfg.Self {
		return true
	}
	p, ok := rt.peers[peer]
	return ok && p.upNow()
}

// SetOnPeerUp installs the down→up transition hook (see the field comment).
// Call during assembly, before Start.
func (rt *Router) SetOnPeerUp(fn func(peer string)) {
	rt.onPeerUpMu.Lock()
	rt.onPeerUp = fn
	rt.onPeerUpMu.Unlock()
}

// notePeerUp records an up-transition: the metric, and the hook if set.
func (rt *Router) notePeerUp(peer string) {
	rt.transitions.With("up").Inc()
	rt.onPeerUpMu.Lock()
	fn := rt.onPeerUp
	rt.onPeerUpMu.Unlock()
	if fn != nil {
		fn(peer)
	}
}

// Start launches the background health prober.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(rt.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.probeAll()
			}
		}
	}()
}

// Stop halts the prober and releases idle connections. Idempotent-unsafe:
// call exactly once, after which the Router keeps routing with its last
// health view (bootesd calls it during drain).
func (rt *Router) Stop() {
	close(rt.stop)
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

// probeAll probes every remote peer once, sequentially — fleet sizes here
// are single digits and sequential probes keep the goroutine count flat.
func (rt *Router) probeAll() {
	for _, peer := range rt.ring.Nodes() {
		if peer == rt.cfg.Self {
			continue
		}
		p := rt.peers[peer]
		rt.probes.Inc()
		start := time.Now()
		err := rt.probeOne(p)
		rt.probeLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			rt.probeFails.Inc()
			if p.noteFailure(rt.cfg.DownAfter, err.Error()) {
				rt.transitions.With("down").Inc()
				rt.cfg.Logf("fleet: peer %s marked down: %v", peer, err)
			}
		} else {
			if !p.upNow() {
				// The peer just came back. Clear stale breaker memory: a
				// passed probe is direct evidence of recovery, better than
				// waiting out a cooldown earned before the restart.
				p.breaker.Reset()
				rt.cfg.Logf("fleet: peer %s recovered", peer)
			}
			if p.noteSuccess() {
				rt.notePeerUp(peer)
			}
		}
	}
}

func (rt *Router) probeOne(p *peerState) error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz returned %d", resp.StatusCode)
	}
	return nil
}

// PeerView is one row of the /v1/peers fleet view.
type PeerView struct {
	URL          string `json:"url"`
	Self         bool   `json:"self,omitempty"`
	Up           bool   `json:"up"`
	ConsecFails  int    `json:"consecFails,omitempty"`
	LastError    string `json:"lastError,omitempty"`
	Breaker      string `json:"breaker,omitempty"`
	BreakerTrips int64  `json:"breakerTrips,omitempty"`
}

// Peers snapshots the fleet health view, sorted by URL (self included,
// always up — a node that can answer /v1/peers is by definition serving).
func (rt *Router) Peers() []PeerView {
	out := make([]PeerView, 0, rt.ring.Len())
	for _, peer := range rt.ring.Nodes() {
		if peer == rt.cfg.Self {
			out = append(out, PeerView{URL: peer, Self: true, Up: true})
			continue
		}
		p := rt.peers[peer]
		p.mu.Lock()
		v := PeerView{URL: peer, Up: p.isUp, ConsecFails: p.consecFails, LastError: p.lastErr}
		p.mu.Unlock()
		state, trips := p.breaker.Snapshot()
		v.Breaker, v.BreakerTrips = state.String(), trips
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Handler wraps next (the local planserve handler) with fleet routing and
// serves the GET /v1/peers view.
func (rt *Router) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/peers", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Self  string     `json:"self"`
			Peers []PeerView `json:"peers"`
		}{rt.cfg.Self, rt.Peers()})
	})
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		rt.routePlan(w, r, next)
	})
	mux.Handle("/", next)
	return mux
}

// routePlan decides where a plan request runs. Requests the router cannot or
// should not move — already forwarded, async (job ids are node-local),
// ?path= (the path names this host's filesystem), unparseable bodies (the
// local server owns the error response) — go straight to next.
func (rt *Router) routePlan(w http.ResponseWriter, r *http.Request, next http.Handler) {
	if r.Header.Get(ForwardedHeader) != "" ||
		r.URL.Query().Get("async") != "" ||
		r.URL.Query().Get("path") != "" ||
		rt.ring.Len() == 1 {
		next.ServeHTTP(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading request body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > rt.cfg.MaxBodyBytes {
		http.Error(w, fmt.Sprintf("matrix body exceeds the %d-byte routing limit", rt.cfg.MaxBodyBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	key, ok := keyOf(body)
	if !ok {
		// Not a matrix we can hash: let the local server produce its 400.
		r.Body = io.NopCloser(bytes.NewReader(body))
		next.ServeHTTP(w, r)
		return
	}
	replicas := rt.ring.Replicas(key, rt.cfg.Replicas)
	if replicas[0] == rt.cfg.Self {
		r.Body = io.NopCloser(bytes.NewReader(body))
		next.ServeHTTP(w, r)
		return
	}
	if r.URL.Query().Get("route") == "redirect" {
		// The client asked to be told, not proxied: 307 preserves method+body.
		rt.redirects.Inc()
		w.Header().Set("Location", replicas[0]+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	// Remote candidates in ring preference order, filtered by health and
	// per-peer breaker. Self, if it appears in the replica set, terminates
	// the list — beyond it local serving beats longer forwarding chains.
	var candidates []*peerState
	probes := map[*peerState]bool{}
	for _, rep := range replicas {
		if rep == rt.cfg.Self {
			break
		}
		p := rt.peers[rep]
		if !p.upNow() {
			continue
		}
		run, probe := p.breaker.Allow()
		if !run {
			continue
		}
		probes[p] = probe
		candidates = append(candidates, p)
	}
	if len(candidates) == 0 {
		rt.localFallbacks.Inc()
		r.Body = io.NopCloser(bytes.NewReader(body))
		next.ServeHTTP(w, r)
		return
	}
	if resp, peer := rt.forwardHedged(r, body, candidates, probes); resp != nil {
		defer resp.Body.Close()
		copyResponse(w, resp, peer.url)
		return
	}
	// Every remote candidate failed: availability beats placement.
	rt.localFallbacks.Inc()
	r.Body = io.NopCloser(bytes.NewReader(body))
	next.ServeHTTP(w, r)
}

// forwardHedged forwards to candidates[0] and, if it has not answered within
// HedgeAfter, fires one duplicate at candidates[1]. The first acceptable
// response wins; the loser is cancelled. Returns (nil, nil) when every
// attempt failed.
func (rt *Router) forwardHedged(r *http.Request, body []byte, candidates []*peerState, probes map[*peerState]bool) (*http.Response, *peerState) {
	type attempt struct {
		resp *http.Response
		peer *peerState
		err  error
	}
	ctx, cancel := context.WithCancel(r.Context())
	// cancel fires only after the winner's body has been fully copied (or on
	// total failure); cancelling earlier would sever the winning stream.
	results := make(chan attempt, len(candidates))
	launch := func(p *peerState) {
		rt.forwards.Inc()
		resp, err := rt.forwardOnce(ctx, r, body, p)
		if err != nil && ctx.Err() != nil {
			// Cancelled because the race was decided, not because the peer is
			// sick: no verdict either way.
			if probes[p] {
				p.breaker.CancelProbe()
			}
			results <- attempt{nil, p, err}
			return
		}
		success := err == nil && resp.StatusCode < http.StatusInternalServerError
		rt.recordOutcome(p, probes[p], success, err)
		if err == nil && !success {
			// A 5xx is a failed attempt; drain it so the connection is reusable.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			err = fmt.Errorf("%s answered %d", p.url, resp.StatusCode)
			resp = nil
		}
		results <- attempt{resp, p, err}
	}
	go launch(candidates[0])
	launched, finished := 1, 0
	var hedge <-chan time.Time
	if rt.cfg.HedgeAfter >= 0 && len(candidates) > 1 {
		ht := time.NewTimer(rt.cfg.HedgeAfter)
		defer ht.Stop()
		hedge = ht.C
	}
	var winner *http.Response
	var winnerPeer *peerState
	for finished < launched && winner == nil {
		select {
		case <-hedge:
			hedge = nil
			rt.hedges.Inc()
			go launch(candidates[1])
			launched++
		case a := <-results:
			finished++
			if a.err != nil {
				if ctx.Err() == nil {
					rt.forwardFails.Inc()
					rt.cfg.Logf("fleet: forward to %s failed: %v", a.peer.url, a.err)
				}
				if finished == launched && hedge != nil && launched < len(candidates) {
					// The primary died before the hedge timer: promote the
					// hedge immediately rather than waiting out the timer.
					hedge = nil
					go launch(candidates[1])
					launched++
				}
				continue
			}
			winner = a.resp
			winnerPeer = a.peer
			if a.peer != candidates[0] {
				rt.hedgeWins.Inc()
			}
		}
	}
	// Candidates that claimed a half-open probe slot but never launched must
	// release it, or the peer's breaker would wait on a probe that never ran.
	for i := launched; i < len(candidates); i++ {
		if probes[candidates[i]] {
			candidates[i].breaker.CancelProbe()
		}
	}
	if remaining := launched - finished; remaining > 0 {
		// A loser is still in flight; reap its result so its body (if any)
		// is closed and the connection returns to the pool.
		go func() {
			for i := 0; i < remaining; i++ {
				if a := <-results; a.resp != nil {
					_, _ = io.Copy(io.Discard, io.LimitReader(a.resp.Body, 1<<20))
					a.resp.Body.Close()
				}
			}
		}()
	}
	if winner == nil {
		cancel()
		return nil, nil
	}
	// Losers still in flight are cancelled once the winner's body is closed
	// by the caller; tie cancel to the response body lifetime.
	winner.Body = &cancelOnClose{ReadCloser: winner.Body, cancel: cancel}
	return winner, winnerPeer
}

// cancelOnClose cancels the forward context when the response body is
// closed, reaping any still-running hedge duplicate.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// recordOutcome feeds one forward/fill outcome into a peer's breaker and
// health view.
func (rt *Router) recordOutcome(p *peerState, probe, success bool, err error) {
	p.breaker.Record(success, probe)
	if success {
		if p.noteSuccess() {
			rt.notePeerUp(p.url)
		}
		return
	}
	reason := "5xx"
	if err != nil {
		reason = err.Error()
	}
	if p.noteFailure(rt.cfg.DownAfter, reason) {
		rt.transitions.With("down").Inc()
		rt.cfg.Logf("fleet: peer %s marked down after forward failure: %s", p.url, reason)
	}
}

// forwardOnce proxies one plan request to p, preserving method, path, query,
// and routing-relevant headers.
func (rt *Router) forwardOnce(ctx context.Context, r *http.Request, body []byte, p *peerState) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, p.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Deadline", "X-Tenant", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(ForwardedHeader, "1")
	return rt.client.Do(req)
}

// copyResponse relays a proxied response, stamping which node served it.
func copyResponse(w http.ResponseWriter, resp *http.Response, servedBy string) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(ServedByHeader, servedBy)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// Fill is the planserve.Config.PeerFill hook: on a local cache miss, ask the
// key's other up replicas for their cached entry (GET /v1/cache/{key}). A
// 404 is a clean miss, not a peer failure; transport errors and 5xx count
// against the peer's breaker and health. First decodable entry wins.
func (rt *Router) Fill(ctx context.Context, key string) (*plancache.Entry, bool) {
	for _, rep := range rt.ring.Replicas(key, rt.cfg.Replicas) {
		if rep == rt.cfg.Self {
			continue
		}
		p := rt.peers[rep]
		if !p.upNow() {
			continue
		}
		run, probe := p.breaker.Allow()
		if !run {
			continue
		}
		e, err := rt.fillOnce(ctx, p, key)
		switch {
		case err != nil && ctx.Err() != nil:
			// The requester ran out of time, which says nothing about the
			// peer's health: release any probe claim and stop.
			if probe {
				p.breaker.CancelProbe()
			}
		case err != nil:
			rt.recordOutcome(p, probe, false, err)
		case e == nil: // clean 404: the peer is healthy, it just lacks the key
			rt.recordOutcome(p, probe, true, nil)
		default:
			rt.recordOutcome(p, probe, true, nil)
			rt.fills.Inc()
			return e, true
		}
		if ctx.Err() != nil {
			break
		}
	}
	rt.fillMisses.Inc()
	return nil, false
}

func (rt *Router) fillOnce(ctx context.Context, p *peerState, key string) (*plancache.Entry, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("cache fill from %s: status %d", p.url, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("cache fill from %s: %w", p.url, err)
	}
	e, err := plancache.DecodeEntry(data)
	if err != nil {
		return nil, fmt.Errorf("cache fill from %s: %w", p.url, err)
	}
	if e.Key != key {
		return nil, fmt.Errorf("cache fill from %s: entry key %.12s under requested key %.12s", p.url, e.Key, key)
	}
	return e, nil
}

// keyOf parses a matrix body (BCSR or Matrix Market, the same sniff the
// server uses) and returns its content-hash MatrixKey.
func keyOf(body []byte) (string, bool) {
	var (
		m   *sparse.CSR
		err error
	)
	if bytes.HasPrefix(body, []byte("BCSR")) {
		m, err = sparse.ReadBinary(bytes.NewReader(body))
	} else {
		m, err = sparse.ReadMatrixMarket(bytes.NewReader(body))
	}
	if err != nil {
		return "", false
	}
	return plancache.KeyCSR(m), true
}
