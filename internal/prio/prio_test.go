package prio

import (
	"container/heap"
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	q := New(5)
	for i := 0; i < 5; i++ {
		q.Insert(i, 0)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.IncKey(3)
	q.IncKey(3)
	q.IncKey(1)
	item, ok := q.Pop()
	if !ok || item != 3 {
		t.Fatalf("Pop = %d, want 3", item)
	}
	item, _ = q.Pop()
	if item != 1 {
		t.Fatalf("Pop = %d, want 1", item)
	}
	// Remaining priorities 0: tie-break toward smallest index.
	item, _ = q.Pop()
	if item != 0 {
		t.Fatalf("Pop = %d, want 0 (tie-break)", item)
	}
}

func TestDecKeyAndRemove(t *testing.T) {
	q := New(4)
	for i := 0; i < 4; i++ {
		q.Insert(i, 10)
	}
	q.DecKey(0)
	q.DecKey(0)
	q.Remove(1)
	if q.Contains(1) {
		t.Error("removed item still present")
	}
	q.Remove(1) // idempotent
	item, _ := q.Pop()
	if item != 2 {
		t.Fatalf("Pop = %d, want 2", item)
	}
	item, _ = q.Pop()
	if item != 3 {
		t.Fatalf("Pop = %d, want 3", item)
	}
	item, _ = q.Pop()
	if item != 0 {
		t.Fatalf("Pop = %d, want 0", item)
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue succeeded")
	}
}

func TestAddKeyAbsentNoop(t *testing.T) {
	q := New(3)
	q.Insert(0, 5)
	q.IncKey(2)  // absent
	q.DecKey(-1) // out of range
	q.AddKey(99, 3)
	if item, _ := q.Peek(); item != 0 {
		t.Error("noop updates changed the queue")
	}
}

func TestInsertPanics(t *testing.T) {
	q := New(2)
	q.Insert(0, 1)
	assertPanic(t, func() { q.Insert(0, 2) }, "duplicate insert")
	assertPanic(t, func() { q.Insert(5, 0) }, "out of range insert")
}

func assertPanic(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

// refItem/refHeap is a trivial container/heap reference implementation used
// to differential-test the indexed queue.
type refItem struct {
	id  int
	pri int64
}
type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].id < h[j].id
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 64
	q := New(n)
	pri := make(map[int]int64)
	for i := 0; i < n; i++ {
		q.Insert(i, 0)
		pri[i] = 0
	}
	for step := 0; step < 2000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // random key update
			item := rng.Intn(n)
			delta := int64(rng.Intn(7) - 3)
			q.AddKey(item, delta)
			if _, ok := pri[item]; ok {
				pri[item] += delta
			}
		case 2: // remove random item
			item := rng.Intn(n)
			q.Remove(item)
			delete(pri, item)
		case 3: // pop and compare with reference max
			if len(pri) == 0 {
				if _, ok := q.Pop(); ok {
					t.Fatal("queue should be empty")
				}
				continue
			}
			ref := refHeap{}
			for id, p := range pri {
				ref = append(ref, refItem{id, p})
			}
			heap.Init(&ref)
			want := heap.Pop(&ref).(refItem)
			got, ok := q.Pop()
			if !ok || got != want.id {
				t.Fatalf("step %d: Pop = %d, want %d", step, got, want.id)
			}
			delete(pri, got)
		}
	}
}
