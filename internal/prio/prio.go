// Package prio implements an indexed (addressable) max-priority queue over
// the integer keys [0, n). It supports the exact operation set GAMMA's row
// reordering (paper Algorithm 1) needs: insert with priority, increment and
// decrement a row's priority by one, remove, and pop-max. All priority
// updates are O(log n).
//
// Ties are broken toward the smaller index so the algorithm is fully
// deterministic.
package prio

import "fmt"

// Queue is an indexed binary max-heap over items 0..n-1.
type Queue struct {
	n    int
	min  bool    // min-heap ordering (NewMin); smallest priority pops first
	heap []int32 // heap[h] = item at heap position h
	pos  []int32 // pos[item] = heap position, or -1 if absent
	pri  []int64 // pri[item] = current priority
}

// New returns an empty queue able to hold items 0..n-1.
func New(n int) *Queue {
	q := &Queue{n: n, pos: make([]int32, n), pri: make([]int64, n)}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// NewMin returns an empty min-queue able to hold items 0..n-1: Pop and Peek
// return the item with the *smallest* priority (ties still break toward the
// smaller index). The weighted-fair scheduler in internal/planqueue uses this
// ordering to pop the tenant with the earliest virtual finish time.
func NewMin(n int) *Queue {
	q := New(n)
	q.min = true
	return q
}

// Grow extends the queue's key space to n items, keeping everything queued.
// Shrinking is not supported; a smaller n is a no-op. The planqueue scheduler
// uses this when a new tenant appears at runtime.
func (q *Queue) Grow(n int) {
	for q.n < n {
		q.pos = append(q.pos, -1)
		q.pri = append(q.pri, 0)
		q.n++
	}
}

// Len returns the number of items currently in the queue.
func (q *Queue) Len() int { return len(q.heap) }

// Contains reports whether item is in the queue.
func (q *Queue) Contains(item int) bool {
	return item >= 0 && item < q.n && q.pos[item] >= 0
}

// Priority returns item's current priority (valid only while it is queued).
func (q *Queue) Priority(item int) int64 { return q.pri[item] }

// Insert adds item with the given priority. It panics if the item is out of
// range or already present (both are programming errors in the reorderers).
func (q *Queue) Insert(item int, priority int64) {
	if item < 0 || item >= q.n {
		panic(fmt.Sprintf("prio: item %d out of range [0,%d)", item, q.n))
	}
	if q.pos[item] >= 0 {
		panic(fmt.Sprintf("prio: item %d already in queue", item))
	}
	q.pri[item] = priority
	q.heap = append(q.heap, int32(item))
	q.pos[item] = int32(len(q.heap) - 1)
	q.up(len(q.heap) - 1)
}

// Remove deletes item from the queue if present.
func (q *Queue) Remove(item int) {
	if item < 0 || item >= q.n || q.pos[item] < 0 {
		return
	}
	h := int(q.pos[item])
	last := len(q.heap) - 1
	q.swap(h, last)
	q.heap = q.heap[:last]
	q.pos[item] = -1
	if h < last {
		q.down(h)
		q.up(h)
	}
}

// IncKey increases item's priority by one. No-op if absent.
func (q *Queue) IncKey(item int) { q.AddKey(item, 1) }

// DecKey decreases item's priority by one. No-op if absent.
func (q *Queue) DecKey(item int) { q.AddKey(item, -1) }

// AddKey adjusts item's priority by delta. No-op if absent.
func (q *Queue) AddKey(item int, delta int64) {
	if item < 0 || item >= q.n || q.pos[item] < 0 {
		return
	}
	q.pri[item] += delta
	h := int(q.pos[item])
	// A raised priority moves toward the top of a max-heap but toward the
	// bottom of a min-heap, and vice versa.
	if (delta > 0) != q.min {
		q.up(h)
	} else {
		q.down(h)
	}
}

// Set replaces item's priority with an absolute value, reheapifying in
// either direction. No-op if absent.
func (q *Queue) Set(item int, priority int64) {
	if item < 0 || item >= q.n || q.pos[item] < 0 {
		return
	}
	q.pri[item] = priority
	q.up(int(q.pos[item]))
	q.down(int(q.pos[item]))
}

// Pop removes and returns the item with the highest priority (smallest index
// on ties). ok is false when the queue is empty.
func (q *Queue) Pop() (item int, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	top := int(q.heap[0])
	q.Remove(top)
	return top, true
}

// Peek returns the max item without removing it.
func (q *Queue) Peek() (item int, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return int(q.heap[0]), true
}

// less orders heap positions: higher priority first (lower first for a
// NewMin queue), then lower index.
func (q *Queue) less(a, b int) bool {
	ia, ib := q.heap[a], q.heap[b]
	if q.pri[ia] != q.pri[ib] {
		if q.min {
			return q.pri[ia] < q.pri[ib]
		}
		return q.pri[ia] > q.pri[ib]
	}
	return ia < ib
}

func (q *Queue) swap(a, b int) {
	q.heap[a], q.heap[b] = q.heap[b], q.heap[a]
	q.pos[q.heap[a]] = int32(a)
	q.pos[q.heap[b]] = int32(b)
}

func (q *Queue) up(h int) {
	for h > 0 {
		parent := (h - 1) / 2
		if !q.less(h, parent) {
			break
		}
		q.swap(h, parent)
		h = parent
	}
}

func (q *Queue) down(h int) {
	n := len(q.heap)
	for {
		l, r := 2*h+1, 2*h+2
		best := h
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == h {
			return
		}
		q.swap(h, best)
		h = best
	}
}

// ModeledBytes returns the deterministic size of the queue's backing arrays,
// for memory-footprint accounting.
func (q *Queue) ModeledBytes() int64 {
	return int64(cap(q.heap))*4 + int64(len(q.pos))*4 + int64(len(q.pri))*8
}
