package planqueue

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bootes/internal/faultinject"
)

func sampleRec(seq uint64) *rec {
	return &rec{
		typ:       recEnqueue,
		seq:       seq,
		state:     stateCode(StateQueued),
		flags:     flagReordered,
		k:         8,
		attempts:  1,
		enqueuedN: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC).UnixNano(),
		tenant:    "acme",
		key:       "deadbeefdeadbeef",
		optKey:    "opts-v1",
		reason:    "",
	}
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRec(42)
	want.reason = "eigensolve did not converge"
	data, err := encodeRec(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRec(data[8:]) // skip len+crc framing
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := encodeRec(sampleRec(1))
	if err != nil {
		t.Fatal(err)
	}
	payload := data[8:]
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xFF
		if r, err := decodeRec(mut); err == nil {
			// Flipping a bit inside a string body changes content without
			// breaking structure; the CRC layer catches those. Structural
			// fields must fail outright.
			if r.typ != sampleRec(1).typ && i < 2 {
				t.Fatalf("byte %d: corrupt structural field decoded silently", i)
			}
		}
	}
}

func journalRecs(t *testing.T, path string) []*rec {
	t.Helper()
	var recs []*rec
	j, _, err := openJournal(path, func(r *rec) { recs = append(recs, r) })
	if err != nil {
		t.Fatal(err)
	}
	j.close()
	return recs
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, torn, err := openJournal(path, func(*rec) { t.Fatal("fresh journal replayed records") })
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("fresh journal reported torn")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := j.append(sampleRec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	recs := journalRecs(t, path)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d (order must be append order)", i, r.seq, i+1)
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := openJournal(path, func(*rec) {})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.append(sampleRec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := j.size
	j.close()
	// Simulate a torn append: garbage bytes that parse as neither a full
	// frame nor a valid CRC.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var n int
	j2, torn, err := openJournal(path, func(*rec) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !torn {
		t.Fatal("torn tail not reported")
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want the 3 intact ones", n)
	}
	if j2.size != goodSize {
		t.Fatalf("journal size %d after truncation, want %d", j2.size, goodSize)
	}
	// The truncated journal must accept appends again.
	if err := j2.append(sampleRec(4)); err != nil {
		t.Fatal(err)
	}
	if got := len(journalRecs(t, path)); got != 4 {
		t.Fatalf("after post-truncation append: %d records, want 4", got)
	}
}

// TestJournalCrashMidWrite drives the JournalAppendWrite injection point:
// the append fails with a torn half-record on disk, and recovery truncates it
// without losing any previously acked record.
func TestJournalCrashMidWrite(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := openJournal(path, func(*rec) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(sampleRec(1)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.JournalAppendWrite); err != nil {
		t.Fatal(err)
	}
	if err := j.append(sampleRec(2)); err != ErrJournalCrash {
		t.Fatalf("append under injected crash returned %v, want ErrJournalCrash", err)
	}
	j.close()

	var seqs []uint64
	j2, torn, err := openJournal(path, func(r *rec) { seqs = append(seqs, r.seq) })
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !torn {
		t.Fatal("crash mid-write left no torn tail to truncate")
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("recovered seqs %v, want [1] (acked record only)", seqs)
	}
}

// TestJournalCrashBeforeFsync drives JournalAppendFsync: the record's bytes
// are fully written but unsynced, so it may or may not survive — both
// outcomes must recover cleanly and keep every earlier acked record.
func TestJournalCrashBeforeFsync(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := openJournal(path, func(*rec) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(sampleRec(1)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.JournalAppendFsync); err != nil {
		t.Fatal(err)
	}
	if err := j.append(sampleRec(2)); err != ErrJournalCrash {
		t.Fatalf("append under injected crash returned %v, want ErrJournalCrash", err)
	}
	j.close()

	var seqs []uint64
	j2, _, err := openJournal(path, func(r *rec) { seqs = append(seqs, r.seq) })
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(seqs) == 0 || seqs[0] != 1 {
		t.Fatalf("recovered seqs %v: acked record 1 must survive", seqs)
	}
	if len(seqs) > 2 {
		t.Fatalf("recovered seqs %v: at most records 1 and 2 can exist", seqs)
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := openJournal(path, func(*rec) {})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 100; seq++ {
		if err := j.append(sampleRec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	big := j.size
	snap := sampleRec(100)
	snap.typ = recSnap
	if err := j.rewrite([]*rec{snap}); err != nil {
		t.Fatal(err)
	}
	if j.size >= big {
		t.Fatalf("rewrite did not shrink the journal: %d → %d", big, j.size)
	}
	// The reopened handle must stay appendable on the *new* file.
	if err := j.append(sampleRec(101)); err != nil {
		t.Fatal(err)
	}
	j.close()
	recs := journalRecs(t, path)
	if len(recs) != 2 || recs[0].seq != 100 || recs[1].seq != 101 {
		t.Fatalf("after rewrite+append journal holds %d records (want snap 100 then 101)", len(recs))
	}
}
