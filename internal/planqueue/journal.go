// Journal: the queue's write-ahead log. One file, append-only, fsynced per
// record; a job is acknowledged to the client only after its enqueue record's
// fsync returns, so every acked job survives a crash at any instant.
//
// Layout:
//
//	header   magic "BQWL" + version uint32
//	records  recLen uint32 | crc32 uint32 (IEEE, over payload) | payload
//
// Each payload carries a full job image (seq, state, tenant, keys, attempts,
// outcome fields), so any record can be replayed standalone — compaction
// rewrites the file as one snapshot record per job it keeps.
//
// Recovery discipline: records are replayed in order until the first record
// that fails its length or CRC check. Because appends are sequential and
// fsynced, a bad record can only be the torn tail of an interrupted append;
// the file is truncated at the last good offset and the loss is counted
// (TornTails). A torn record was by construction never acknowledged, so
// truncation never loses an acked job. The faultinject points
// JournalAppendWrite/JournalAppendFsync simulate crashes at the two syscall
// boundaries of an append; compaction goes through atomicio.WriteFile and
// inherits its CacheWriteTemp/CacheWriteFsync/CacheWriteRename crash points.
package planqueue

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"bootes/internal/faultinject"
	"bootes/internal/plancache/atomicio"
)

var journalMagic = [4]byte{'B', 'Q', 'W', 'L'}

// journalVersion is the on-disk journal format version.
const journalVersion = 1

// maxRecLen bounds a record payload so a corrupt length field cannot demand
// an unbounded allocation during replay.
const maxRecLen = 1 << 20

// ErrJournalCrash is returned when a faultinject point simulates a crash
// mid-append. The file is left exactly as the crash would leave it.
var ErrJournalCrash = errors.New("planqueue: injected journal crash")

// record types. Every record carries a full job image; the type records which
// transition wrote it (useful in postmortems), not extra schema.
const (
	recEnqueue = uint8(1) // job acknowledged
	recDone    = uint8(2) // job completed (possibly degraded, possibly via cache)
	recFailed  = uint8(3) // attempt failed, retry scheduled
	recDead    = uint8(4) // poisoned: retries exhausted, parked
	recSnap    = uint8(5) // compaction snapshot of a live or retained job
)

// rec is the wire image of a job. It mirrors Job but with fixed-width types.
type rec struct {
	typ       uint8
	seq       uint64
	state     uint8 // stateCode(...)
	flags     uint8 // bit0 reordered, bit1 degraded, bit2 cached
	k         uint16
	attempts  uint16
	enqueuedN int64 // unix nanos
	tenant    string
	key       string
	optKey    string
	reason    string
}

const (
	flagReordered = 1 << 0
	flagDegraded  = 1 << 1
	flagCached    = 1 << 2
)

func encodeRec(r *rec) ([]byte, error) {
	for _, s := range []string{r.tenant, r.key, r.optKey, r.reason} {
		if len(s) > math.MaxUint16 {
			return nil, fmt.Errorf("planqueue: record string field too long (%d bytes)", len(s))
		}
	}
	var p bytes.Buffer
	p.WriteByte(journalVersion)
	p.WriteByte(r.typ)
	_ = binary.Write(&p, binary.LittleEndian, r.seq)
	p.WriteByte(r.state)
	p.WriteByte(r.flags)
	_ = binary.Write(&p, binary.LittleEndian, r.k)
	_ = binary.Write(&p, binary.LittleEndian, r.attempts)
	_ = binary.Write(&p, binary.LittleEndian, r.enqueuedN)
	for _, s := range []string{r.tenant, r.key, r.optKey, r.reason} {
		_ = binary.Write(&p, binary.LittleEndian, uint16(len(s)))
		p.WriteString(s)
	}
	if p.Len() > maxRecLen {
		return nil, fmt.Errorf("planqueue: record %d bytes over limit", p.Len())
	}
	out := bytes.NewBuffer(make([]byte, 0, 8+p.Len()))
	_ = binary.Write(out, binary.LittleEndian, uint32(p.Len()))
	_ = binary.Write(out, binary.LittleEndian, crc32.ChecksumIEEE(p.Bytes()))
	out.Write(p.Bytes())
	return out.Bytes(), nil
}

// errRecCorrupt marks an undecodable record — during a sequential replay it
// means "torn tail here, truncate".
var errRecCorrupt = errors.New("planqueue: corrupt record")

func decodeRec(data []byte) (*rec, error) {
	r := bytes.NewReader(data)
	var version, typ uint8
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: version: %v", errRecCorrupt, err)
	}
	if version != journalVersion {
		return nil, fmt.Errorf("%w: unsupported record version %d", errRecCorrupt, version)
	}
	if err := binary.Read(r, binary.LittleEndian, &typ); err != nil {
		return nil, fmt.Errorf("%w: type: %v", errRecCorrupt, err)
	}
	if typ < recEnqueue || typ > recSnap {
		return nil, fmt.Errorf("%w: unknown record type %d", errRecCorrupt, typ)
	}
	out := &rec{typ: typ}
	if err := binary.Read(r, binary.LittleEndian, &out.seq); err != nil {
		return nil, fmt.Errorf("%w: seq: %v", errRecCorrupt, err)
	}
	for _, f := range []any{&out.state, &out.flags, &out.k, &out.attempts, &out.enqueuedN} {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return nil, fmt.Errorf("%w: fixed fields: %v", errRecCorrupt, err)
		}
	}
	for _, dst := range []*string{&out.tenant, &out.key, &out.optKey, &out.reason} {
		var n uint16
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: string length: %v", errRecCorrupt, err)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%w: string body: %v", errRecCorrupt, err)
		}
		*dst = string(b)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errRecCorrupt, r.Len())
	}
	return out, nil
}

// journal is the append handle over the WAL file. Not concurrency-safe on its
// own; the Queue serializes appends under its mutex.
type journal struct {
	path string
	f    *os.File
	size int64
	// broken latches when a failed append could not be repaired: the file may
	// hold torn bytes mid-stream, so further appends would write records that
	// replay could never reach. Every append fails fast until restart.
	broken bool
}

// errJournalBroken reports appends against a journal whose tail could not be
// restored after a failed write.
var errJournalBroken = errors.New("planqueue: journal broken (unrepaired torn tail)")

// openJournal opens (or creates) the journal at path, replays every intact
// record into replay (in order), truncates a torn tail, and leaves the file
// positioned for appends. torn reports whether a tail was truncated.
func openJournal(path string, replay func(*rec)) (j *journal, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, false, err
	}
	good := int64(0)
	if len(data) == 0 {
		// Fresh journal: write and sync the header so every later append is
		// a pure record write.
		var hdr bytes.Buffer
		hdr.Write(journalMagic[:])
		_ = binary.Write(&hdr, binary.LittleEndian, uint32(journalVersion))
		if _, err := f.Write(hdr.Bytes()); err != nil {
			f.Close()
			return nil, false, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, false, err
		}
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, false, err
		}
		good = int64(hdr.Len())
		return &journal{path: path, f: f, size: good}, false, nil
	}
	if len(data) < 8 || !bytes.Equal(data[:4], journalMagic[:]) ||
		binary.LittleEndian.Uint32(data[4:]) != journalVersion {
		f.Close()
		return nil, false, fmt.Errorf("planqueue: %s is not a journal (bad header)", path)
	}
	good = 8
	for off := int64(8); off < int64(len(data)); {
		rest := data[off:]
		if len(rest) < 8 {
			break // torn length/crc prefix
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > maxRecLen || int64(len(rest)-8) < int64(n) {
			break // torn or corrupt payload length
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn payload
		}
		r, err := decodeRec(payload)
		if err != nil {
			break // structurally corrupt — treat as tail, do not replay past it
		}
		replay(r)
		off += 8 + int64(n)
		good = off
	}
	if good < int64(len(data)) {
		torn = true
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, false, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, false, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, false, err
	}
	return &journal{path: path, f: f, size: good}, torn, nil
}

// append durably adds one record: encode → write → fsync. The record is
// acknowledged (nil error) only after the fsync returns.
//
// Failure discipline: sequential replay stops at the first bad record, so a
// torn partial write mid-file would hide every later record. A real I/O error
// therefore repairs the tail (truncate back to the pre-append offset) before
// returning; if even that fails the journal latches broken and refuses all
// further appends. An injected crash (ErrJournalCrash) deliberately leaves
// the file exactly as a real crash would — torn — and the caller must treat
// the process as dead (the Queue wedges itself closed).
func (j *journal) append(r *rec) error {
	if j.broken {
		return errJournalBroken
	}
	data, err := encodeRec(r)
	if err != nil {
		return err
	}
	if faultinject.Fire(faultinject.JournalAppendWrite) {
		// Crash mid-write: half the record reaches the file, unsynced.
		_, _ = j.f.Write(data[:len(data)/2])
		return ErrJournalCrash
	}
	pre := j.size
	n, err := j.f.Write(data)
	j.size += int64(n)
	if err != nil {
		j.repair(pre)
		return err
	}
	if faultinject.Fire(faultinject.JournalAppendFsync) {
		// Crash after write, before fsync: the record's durability is
		// undecided — replay must be correct whether or not it survives.
		return ErrJournalCrash
	}
	if err := j.f.Sync(); err != nil {
		j.repair(pre)
		return err
	}
	return nil
}

// repair restores the pre-append tail after a failed write so the journal
// stays appendable; on failure the journal latches broken.
func (j *journal) repair(pre int64) {
	if j.f.Truncate(pre) != nil {
		j.broken = true
		return
	}
	if _, err := j.f.Seek(pre, io.SeekStart); err != nil {
		j.broken = true
		return
	}
	_ = j.f.Sync()
	j.size = pre
}

// rewrite compacts the journal: the full replacement content (header plus
// one snapshot record per kept job) is published through atomicio's
// temp+fsync+rename protocol, then the append handle is reopened on the new
// file. On any error the old journal (and the old handle) stay in service.
func (j *journal) rewrite(recs []*rec) error {
	var buf bytes.Buffer
	buf.Write(journalMagic[:])
	_ = binary.Write(&buf, binary.LittleEndian, uint32(journalVersion))
	for _, r := range recs {
		data, err := encodeRec(r)
		if err != nil {
			return err
		}
		buf.Write(data)
	}
	if err := atomicio.WriteFileBytes(j.path, buf.Bytes()); err != nil {
		return err
	}
	// The old handle points at the unlinked inode; swap to the new file.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f.Close()
	j.f = f
	j.size = int64(buf.Len())
	return nil
}

func (j *journal) close() error { return j.f.Close() }

// syncDir mirrors atomicio's directory fsync tolerance: filesystems that
// reject directory fsync only widen the durability window.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}
